#!/usr/bin/env bash
# Server integration smoke: start atr_server with a persistent data dir,
# drive it over TCP with atr_client, kill -TERM, restart, and verify the
# catalog resumed at its latest version with ZERO decomposition rebuilds
# and with solve results identical to the pre-restart run.
#
#   scripts/server_smoke.sh [BUILD_DIR]     (default: build)
#
# Exits non-zero (with the server log on stdout) on any failure.
set -euo pipefail

BUILD_DIR=${1:-build}
PORT=${ATR_SMOKE_PORT:-7421}
WORK=$(mktemp -d)
SERVER_PID=""
trap '[[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null; wait 2>/dev/null; rm -rf "$WORK"' EXIT

fail() {
  echo "server smoke: FAIL — $1" >&2
  echo "--- server log ---" >&2
  cat "$WORK/server.log" >&2 || true
  exit 1
}

# A 12-clique: triangle-dense, so every truss solver has real work.
: > "$WORK/clique.txt"
for ((u = 0; u < 12; ++u)); do
  for ((v = u + 1; v < 12; ++v)); do
    echo "$u $v" >> "$WORK/clique.txt"
  done
done

start_server() {
  "$BUILD_DIR/atr_server" --port "$PORT" --data-dir "$WORK/catalog" "$@" \
    > "$WORK/server.log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$WORK/server.log" 2>/dev/null && return 0
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
  done
  fail "server did not come up"
}

client() { "$BUILD_DIR/atr_client" --port "$PORT" "$@"; }

# --- First life: load, mutate, solve -------------------------------------
start_server --load smoke="$WORK/clique.txt"
client ping > /dev/null                           || fail "ping"
client list | grep -qx "smoke"                    || fail "graph not listed"
client update smoke --remove 0,1 > /dev/null      || fail "update v2"
client update smoke --add 0,1 > /dev/null         || fail "update v3"
client info smoke > "$WORK/info_before.txt"       || fail "info"
grep -q "version: *3" "$WORK/info_before.txt"     || fail "expected version 3"
client solve smoke gas 2 > "$WORK/solve_before.txt" || fail "solve"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
SERVER_PID=""

# --- Second life: no --load; everything must come from the catalog -------
start_server
client list | grep -qx "smoke"                    || fail "graph not restored"
client info smoke > "$WORK/info_after.txt"        || fail "info after restart"
grep -q "version: *3" "$WORK/info_after.txt" \
  || fail "catalog did not resume at version 3"
grep -q "decomposition_builds: *0" "$WORK/info_after.txt" \
  || fail "restore rebuilt a decomposition"
client solve smoke gas 2 > "$WORK/solve_after.txt" || fail "solve after restart"
diff <(grep -E "total_gain|anchors" "$WORK/solve_before.txt") \
     <(grep -E "total_gain|anchors" "$WORK/solve_after.txt") \
  || fail "solve results diverged across the restart"

client shutdown > /dev/null                       || fail "shutdown request"
wait "$SERVER_PID" || fail "server exited non-zero on client shutdown"
SERVER_PID=""

# --- No leaked server processes -------------------------------------------
# Both lives used this run's unique temp dir on their command line, so any
# surviving atr_server matching it is a process this script leaked.
if pgrep -f "atr_server.*$WORK" > /dev/null 2>&1; then
  fail "leaked atr_server process still running after shutdown"
fi

echo "server smoke: OK (restart resumed version 3 with zero rebuilds)"
