#!/usr/bin/env python3
"""Diff fresh bench --json rows against a committed perf-trajectory file.

Usage: bench_diff.py <committed.json> <fresh.json>

Both inputs are line-delimited JSON objects as emitted by the benches'
--json mode (bench/bench_common.h). Absolute times vary wildly across
runners, so the diff checks SHAPE, not milliseconds:

  * every committed (experiment, identity) row must still be produced —
    a missing row means a bench silently stopped covering a case;
  * every field present in the committed row must be present fresh;
  * relative "speedup"-style fields must not collapse: a fresh value may
    regress to no less than TOLERANCE x the committed value (default
    0.5, override with BENCH_DIFF_TOLERANCE). Speedups are ratios of two
    runs on the SAME machine, so they transfer across runners in a way
    raw wall times never do. When both sides are deep in clearly-winning
    territory (> CLEAR_WIN, default 10x) the ratio check is skipped —
    4700x vs 1900x is runner noise on an incremental-vs-full ratio, while
    4700x -> 1.1x still fails.

Exit status 0 = clean, 1 = regression (rows printed to stderr).
"""

import json
import os
import sys

# Fields whose values are same-machine ratios, comparable across hosts.
SPEEDUP_FIELDS = ("speedup", "speedup_vs_serial")

# Fields that identify a row within one experiment.
IDENTITY_FIELDS = ("dataset", "config", "sweep_jobs", "threads")


def load_rows(path):
    rows = []
    with open(path, "r", encoding="utf-8") as f:
        for line_number, line in enumerate(f, 1):
            line = line.strip()
            if not line or not line.startswith("{"):
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as error:
                sys.exit(f"{path}:{line_number}: unparseable bench row: {error}")
    return rows


def row_key(row):
    identity = tuple(
        (field, row[field]) for field in IDENTITY_FIELDS if field in row
    )
    return (row.get("experiment", "?"), identity)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    committed_path, fresh_path = sys.argv[1], sys.argv[2]
    tolerance = float(os.environ.get("BENCH_DIFF_TOLERANCE", "0.5"))

    committed = {}
    for row in load_rows(committed_path):
        committed[row_key(row)] = row
    fresh = {}
    for row in load_rows(fresh_path):
        fresh[row_key(row)] = row

    failures = []
    compared = 0
    for key, old in committed.items():
        experiment = key[0]
        new = fresh.get(key)
        if new is None:
            # Only require rows for experiments the fresh run attempted at
            # all: CI may run a subset of the benches.
            if any(k[0] == experiment for k in fresh):
                failures.append(f"missing row: {key}")
            continue
        missing = sorted(set(old) - set(new))
        if missing:
            failures.append(f"{key}: fields vanished: {missing}")
        for field in SPEEDUP_FIELDS:
            if field not in old or field not in new:
                continue
            compared += 1
            clear_win = float(os.environ.get("BENCH_DIFF_CLEAR_WIN", "10"))
            if float(old[field]) > clear_win and float(new[field]) > clear_win:
                continue
            floor = tolerance * float(old[field])
            if float(new[field]) < floor:
                failures.append(
                    f"{key}: {field} regressed {old[field]} -> {new[field]}"
                    f" (floor {floor:.3g} at tolerance {tolerance})"
                )

    if failures:
        print("bench_diff: PERF REGRESSION", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        sys.exit(1)
    print(
        f"bench_diff: ok — {len(fresh)} fresh rows, {compared} speedup "
        f"fields within {tolerance}x of {committed_path}"
    )


if __name__ == "__main__":
    main()
