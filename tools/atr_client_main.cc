// atr_client — command-line client for atr_server.
//
//   atr_client --port 7400 ping
//   atr_client --port 7400 list
//   atr_client --port 7400 info social
//   atr_client --port 7400 solve social gas 10
//   atr_client --port 7400 update social --add 3,9 --add 4,9 --remove 0,1
//   atr_client --port 7400 compact social
//   atr_client --port 7400 shutdown
//
// Exit status: 0 on success, 1 on a server/transport error (message on
// stderr; admission-control rejections additionally print the server's
// retry-after hint).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "net/client.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port N] COMMAND [ARGS]\n"
               "commands:\n"
               "  ping | list | info GRAPH | compact GRAPH | shutdown\n"
               "  solve GRAPH SOLVER BUDGET [--seed N] [--trials N]\n"
               "        [--plan serial|bsp|bsp-core-truss]\n"
               "  update GRAPH [--add U,V ...] [--remove U,V ...]\n",
               argv0);
  return 2;
}

bool ParseEndpointPair(const std::string& spec, atr::EdgeEndpoints* out) {
  const size_t comma = spec.find(',');
  if (comma == std::string::npos || comma == 0 || comma + 1 == spec.size()) {
    return false;
  }
  out->u = static_cast<atr::VertexId>(std::atoll(spec.substr(0, comma).c_str()));
  out->v = static_cast<atr::VertexId>(std::atoll(spec.substr(comma + 1).c_str()));
  return true;
}

int Fail(const atr::Status& status, uint32_t retry_after_ms) {
  std::fprintf(stderr, "atr_client: %s (%s)\n", status.message().c_str(),
               atr::StatusCodeName(status.code()));
  if (retry_after_ms > 0) {
    std::fprintf(stderr, "atr_client: server says retry after %u ms\n",
                 retry_after_ms);
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else {
      break;
    }
  }
  if (i >= argc || port == 0) return Usage(argv[0]);
  const std::string command = argv[i++];

  atr::net::AtrClient client;
  if (atr::Status s = client.Connect(host, port); !s.ok()) {
    return Fail(s, 0);
  }

  if (command == "ping") {
    if (atr::Status s = client.Ping(); !s.ok()) {
      return Fail(s, client.last_retry_after_ms());
    }
    std::printf("pong\n");
    return 0;
  }

  if (command == "list") {
    atr::StatusOr<std::vector<std::string>> names = client.ListGraphs();
    if (!names.ok()) return Fail(names.status(), client.last_retry_after_ms());
    for (const std::string& name : *names) std::printf("%s\n", name.c_str());
    return 0;
  }

  if (command == "info") {
    if (i >= argc) return Usage(argv[0]);
    atr::StatusOr<atr::AtrService::GraphInfo> info = client.Info(argv[i]);
    if (!info.ok()) return Fail(info.status(), client.last_retry_after_ms());
    std::printf("name:                 %s\n", info->name.c_str());
    std::printf("vertices:             %u\n", info->num_vertices);
    std::printf("edges:                %u\n", info->num_edges);
    std::printf("version:              %llu\n",
                static_cast<unsigned long long>(info->version));
    std::printf("delta_updates:        %llu\n",
                static_cast<unsigned long long>(info->delta_updates));
    std::printf("delta_chain_length:   %llu\n",
                static_cast<unsigned long long>(info->delta_chain_length));
    std::printf("decomposition_builds: %u\n", info->decomposition_builds);
    std::printf("max_trussness:        %u\n", info->max_trussness);
    std::printf("jobs_submitted:       %llu\n",
                static_cast<unsigned long long>(info->jobs_submitted));
    return 0;
  }

  if (command == "solve") {
    if (i + 2 >= argc) return Usage(argv[0]);
    const std::string graph = argv[i++];
    const std::string solver = argv[i++];
    atr::net::WireSolverOptions options;
    options.budget = static_cast<uint32_t>(std::atoi(argv[i++]));
    std::optional<atr::DecompositionPlan> plan;
    for (; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--seed" && i + 1 < argc) {
        options.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      } else if (arg == "--trials" && i + 1 < argc) {
        options.trials = static_cast<uint32_t>(std::atoi(argv[++i]));
      } else if (arg == "--plan" && i + 1 < argc) {
        atr::StatusOr<atr::DecompositionPlan> parsed =
            atr::DecompositionPlanFromName(argv[++i]);
        if (!parsed.ok()) return Fail(parsed.status(), 0);
        plan = *parsed;
      } else {
        return Usage(argv[0]);
      }
    }
    atr::StatusOr<uint64_t> job =
        client.Submit(graph, solver, options, /*tenant=*/"", /*priority=*/0,
                      plan);
    if (!job.ok()) return Fail(job.status(), client.last_retry_after_ms());
    atr::StatusOr<atr::net::WireSolveResult> result = client.Wait(*job);
    if (!result.ok()) return Fail(result.status(), client.last_retry_after_ms());
    std::printf("solver:     %s\n", result->solver.c_str());
    std::printf("total_gain: %llu\n",
                static_cast<unsigned long long>(result->total_gain));
    std::printf("seconds:    %.6f\n", result->seconds);
    std::printf("anchors:   ");
    for (const uint32_t e : result->anchor_edges) std::printf(" %u", e);
    for (const uint32_t v : result->anchor_vertices) std::printf(" v%u", v);
    std::printf("\n");
    if (result->stopped_early) std::printf("stopped_early: true\n");
    return 0;
  }

  if (command == "update") {
    if (i >= argc) return Usage(argv[0]);
    const std::string graph = argv[i++];
    atr::GraphDelta delta;
    for (; i < argc; ++i) {
      const std::string arg = argv[i];
      atr::EdgeEndpoints endpoints;
      if (arg == "--add" && i + 1 < argc &&
          ParseEndpointPair(argv[i + 1], &endpoints)) {
        delta.add.push_back(endpoints);
        ++i;
      } else if (arg == "--remove" && i + 1 < argc &&
                 ParseEndpointPair(argv[i + 1], &endpoints)) {
        delta.remove.push_back(endpoints);
        ++i;
      } else {
        return Usage(argv[0]);
      }
    }
    atr::StatusOr<atr::net::UpdateGraphResponse> response =
        client.UpdateGraph(graph, delta);
    if (!response.ok()) {
      return Fail(response.status(), client.last_retry_after_ms());
    }
    std::printf("version %llu: %u vertices, %u edges\n",
                static_cast<unsigned long long>(response->version),
                response->num_vertices, response->num_edges);
    return 0;
  }

  if (command == "compact") {
    if (i >= argc) return Usage(argv[0]);
    if (atr::Status s = client.Compact(argv[i]); !s.ok()) {
      return Fail(s, client.last_retry_after_ms());
    }
    std::printf("compacted\n");
    return 0;
  }

  if (command == "shutdown") {
    if (atr::Status s = client.Shutdown(); !s.ok()) {
      return Fail(s, client.last_retry_after_ms());
    }
    std::printf("server stopping\n");
    return 0;
  }

  return Usage(argv[0]);
}
