// Fixture: wall-clock time in a core/ path. atr_lint.py must flag every
// line marked VIOLATION under rule `determinism`.

#include <chrono>
#include <ctime>

long StampSeed() {
  auto now = std::chrono::system_clock::now();  // VIOLATION: determinism
  (void)now;
  return std::time(nullptr);                    // VIOLATION: determinism
}
