// Fixture: ambient randomness in a core/ path. atr_lint.py must flag
// every line marked VIOLATION under rule `determinism`.

#include <cstdlib>
#include <random>

int PickPivot(int n) {
  std::random_device entropy;          // VIOLATION: determinism
  (void)entropy;
  return rand() % n;                   // VIOLATION: determinism
}
