// Fixture: a core/ file that must lint CLEAN. Exercises the patterns the
// rules must NOT fire on: seeded (deterministic) randomness, the
// monotonic clock, RAII guards, banned tokens inside strings and
// comments.

#include <chrono>
#include <cstdio>
#include <random>
#include <string>

namespace {
struct Guard {
  void Lock() {}
  void Unlock() {}
};
}  // namespace

int DeterministicDraw(unsigned seed) {
  std::mt19937 gen(seed);  // explicitly seeded: allowed
  return static_cast<int>(gen());
}

long MonotonicNowMs() {
  // steady_clock is monotonic, not wall clock: allowed.
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string Describe() {
  Guard guard;
  guard.Lock();    // wrapper methods, not std::mutex::lock(): allowed
  guard.Unlock();
  // mu.lock() in a comment must not fire, nor "rand()" in a string:
  std::string text = "call rand() and fprintf(stderr, ...) at your peril";
  return text;
}
