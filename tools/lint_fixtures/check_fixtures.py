#!/usr/bin/env python3
"""Self-test for tools/atr_lint.py, registered as a tier-1 ctest.

Three properties are checked:
  1. the real tree (src/) lints clean — the baseline stays at zero,
  2. every violation fixture fires its intended rule on the intended
     lines (the `// VIOLATION: <rule>` markers are the ground truth),
  3. the clean and suppressed fixtures produce no findings.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINTER = os.path.join(REPO, "tools", "atr_lint.py")

MARKER_RE = re.compile(r"//\s*VIOLATION:\s*([a-z-]+)")
FINDING_RE = re.compile(r"^(.*):(\d+): \[([a-z-]+)\]")


def run_linter(*paths):
    proc = subprocess.run(
        [sys.executable, LINTER, *paths],
        capture_output=True, text=True, check=False)
    findings = set()
    for line in proc.stdout.splitlines():
        match = FINDING_RE.match(line)
        if match:
            findings.add((match.group(1), int(match.group(2)), match.group(3)))
    return proc.returncode, findings, proc.stdout + proc.stderr


def expected_violations(path):
    expected = set()
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            match = MARKER_RE.search(line)
            if match:
                expected.add((path, lineno, match.group(1)))
    return expected


def fail(message, output=""):
    print(f"FAIL: {message}")
    if output:
        print(output)
    sys.exit(1)


def main():
    # 1. The real tree is the zero baseline.
    code, findings, output = run_linter(os.path.join(REPO, "src"))
    if code != 0 or findings:
        fail("src/ must lint clean", output)

    # 2. Each violation fixture fires exactly its marked lines.
    violation_fixtures = [
        os.path.join(HERE, "core", "uses_rand.cc"),
        os.path.join(HERE, "core", "uses_wallclock.cc"),
        os.path.join(HERE, "naked_lock.cc"),
        os.path.join(HERE, "stray_stderr.cc"),
    ]
    for fixture in violation_fixtures:
        expected = expected_violations(fixture)
        if not expected:
            fail(f"{fixture} has no VIOLATION markers — fixture rot")
        code, findings, output = run_linter(fixture)
        if code != 1:
            fail(f"{fixture}: expected exit 1, got {code}", output)
        if findings != expected:
            fail(
                f"{fixture}: findings mismatch\n"
                f"  expected: {sorted(expected)}\n"
                f"  got:      {sorted(findings)}", output)

    # 3. Clean and suppressed fixtures stay silent.
    for fixture in [os.path.join(HERE, "core", "clean.cc"),
                    os.path.join(HERE, "suppressed.cc")]:
        code, findings, output = run_linter(fixture)
        if code != 0 or findings:
            fail(f"{fixture}: expected no findings", output)

    print("atr_lint fixture corpus: all checks passed")


if __name__ == "__main__":
    main()
