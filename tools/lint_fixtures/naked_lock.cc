// Fixture: naked mutex manipulation outside util/mutex.h. atr_lint.py
// must flag every line marked VIOLATION under rule `raii-lock`.

#include <mutex>

static std::mutex g_mu;
static int g_count = 0;

void Bump() {
  g_mu.lock();              // VIOLATION: raii-lock
  ++g_count;
  g_mu.unlock();            // VIOLATION: raii-lock
}

bool TryBump() {
  if (!g_mu.try_lock()) {   // VIOLATION: raii-lock
    return false;
  }
  ++g_count;
  g_mu.unlock();            // VIOLATION: raii-lock
  return true;
}
