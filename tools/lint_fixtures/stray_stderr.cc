// Fixture: raw stderr logging outside the sanctioned files. atr_lint.py
// must flag the line marked VIOLATION under rule `stderr`.

#include <cstdio>

void Complain(int code) {
  std::fprintf(stderr, "something went wrong: %d\n", code);  // VIOLATION: stderr
}
