// Fixture: violations carrying reviewed suppressions — must lint CLEAN.
// Both suppression placements are exercised: trailing comment and a
// comment alone on the line above.

#include <cstdio>
#include <mutex>

static std::mutex g_mu;

void LogFatalishThing(int code) {
  std::fprintf(stderr, "boom %d\n", code);  // atr-lint: allow(stderr)
}

void AdoptForeignLock() {
  // atr-lint: allow(raii-lock)
  g_mu.lock();
  // atr-lint: allow(raii-lock)
  g_mu.unlock();
}
