// atr_server — the networked ATR service daemon.
//
//   atr_server --data-dir /var/lib/atr --port 7400 \
//              --load social=data/social.txt --load road=data/road.txt
//
// Starts an AtrServer (net/server.h): restores every graph found under
// --data-dir without recomputing a decomposition, registers any --load
// graphs that are not already in the catalog, prints the bound port, and
// serves until SIGTERM/SIGINT or a client Shutdown request. A signal
// triggers the graceful path: drain in-flight jobs, compact every graph
// to a fresh base snapshot, exit 0.
//
// Flags:
//   --port N               TCP port (default 0 = ephemeral, printed)
//   --host H               bind address (default 127.0.0.1)
//   --data-dir DIR         persistence root; omit to run in-memory
//   --workers N            solve worker threads (0 = service default)
//   --queue-capacity N     pending-job bound (0 = service default)
//   --compact-threshold N  auto-compact after N deltas (default 64)
//   --load NAME=PATH       register edge-list PATH as graph NAME
//                          (skipped with a notice when NAME was restored)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "graph/edge_list_io.h"
#include "net/server.h"

namespace {

atr::net::AtrServer* g_server = nullptr;

void HandleStopSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();  // async-signal-safe
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--host H] [--data-dir DIR]\n"
               "          [--workers N] [--queue-capacity N]\n"
               "          [--compact-threshold N] [--load NAME=PATH ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  atr::net::AtrServer::Options options;
  std::vector<std::pair<std::string, std::string>> loads;  // (name, path)

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.host = v;
    } else if (arg == "--data-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.data_dir = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.workers = std::atoi(v);
    } else if (arg == "--queue-capacity") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.queue_capacity = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--compact-threshold") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.compact_threshold = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--load") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      const std::string spec = v;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "atr_server: --load wants NAME=PATH, got %s\n",
                     spec.c_str());
        return 2;
      }
      loads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      return Usage(argv[0]);
    }
  }

  atr::net::AtrServer server(options);
  atr::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "atr_server: start failed: %s\n",
                 started.message().c_str());
    return 1;
  }

  if (server.catalog() != nullptr) {
    const auto& stats = server.catalog()->restore_stats();
    std::printf("restored %zu graph(s), %zu delta(s) replayed\n",
                stats.graphs_restored, stats.deltas_replayed);
  }

  for (const auto& [name, path] : loads) {
    atr::StatusOr<atr::Graph> graph = atr::LoadSnapEdgeList(path);
    if (!graph.ok()) {
      std::fprintf(stderr, "atr_server: loading %s failed: %s\n", path.c_str(),
                   graph.status().message().c_str());
      return 1;
    }
    atr::Status added = server.AddGraph(name, *std::move(graph));
    if (added.code() == atr::StatusCode::kFailedPrecondition) {
      std::printf("graph %s already in the catalog (restored); skipping %s\n",
                  name.c_str(), path.c_str());
    } else if (!added.ok()) {
      std::fprintf(stderr, "atr_server: adding %s failed: %s\n", name.c_str(),
                   added.message().c_str());
      return 1;
    } else {
      std::printf("loaded graph %s from %s\n", name.c_str(), path.c_str());
    }
  }

  g_server = &server;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  std::printf("listening on %s:%u\n", options.host.c_str(), server.port());
  std::fflush(stdout);

  server.Join();
  g_server = nullptr;
  atr::Status stopped = server.Stop();
  if (!stopped.ok()) {
    std::fprintf(stderr, "atr_server: shutdown persistence failed: %s\n",
                 stopped.message().c_str());
    return 1;
  }
  std::printf("stopped\n");
  return 0;
}
