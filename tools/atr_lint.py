#!/usr/bin/env python3
"""ATR invariant linter — project-specific rules clang-tidy cannot express.

Rules (each with an id usable in suppressions):

  determinism   src/core/, src/graph/, and src/truss/ must stay
                bit-deterministic: no process randomness
                (rand/srand/std::random_device) and no wall clock
                (system_clock, time(), gettimeofday, localtime).
                Seeded generators (std::mt19937 with an explicit seed) and
                the monotonic steady_clock are fine — only ambient
                nondeterminism is banned.

  raii-lock     No naked .lock()/.unlock()/.try_lock() calls outside
                src/util/mutex.h. Everything else goes through the
                annotated Mutex/MutexLock wrappers so the clang
                thread-safety analysis sees every acquire and release.

  stderr        No raw fprintf(stderr, ...) outside the sanctioned files
                (util/macros.h for ATR_CHECK, net/server.cc for the two
                operational disconnect logs). Diagnostics elsewhere either
                flow through Status or carry an explicit suppression.

Suppression: append `// atr-lint: allow(<rule>)` to the offending line or
place it alone on the line directly above. Every suppression is a reviewed
exception; docs/STATIC_ANALYSIS.md has the policy.

Usage:
  tools/atr_lint.py [path ...]        lint files/trees (default: src/)
  tools/atr_lint.py --list-rules      print the rule catalog

Exit status: 0 clean, 1 violations found, 2 usage/IO error.
"""

import argparse
import os
import re
import sys

LINT_EXTENSIONS = {".cc", ".cpp", ".cxx", ".h", ".hpp"}

ALLOW_RE = re.compile(r"//\s*atr-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


def _path_parts(path):
    return os.path.normpath(path).split(os.sep)


class Rule:
    """One lint rule: a set of banned patterns scoped by path predicates."""

    def __init__(self, rule_id, summary, patterns, applies, sanctioned=()):
        self.rule_id = rule_id
        self.summary = summary
        self.patterns = [(re.compile(p), msg) for p, msg in patterns]
        self._applies = applies
        self._sanctioned = tuple(sanctioned)

    def applies_to(self, path):
        norm = os.path.normpath(path).replace(os.sep, "/")
        for suffix in self._sanctioned:
            if norm.endswith(suffix):
                return False
        return self._applies(norm, _path_parts(path))


def _in_deterministic_kernel(_norm, parts):
    return "core" in parts or "graph" in parts or "truss" in parts


RULES = [
    Rule(
        "determinism",
        "no ambient randomness or wall clock in src/core/ + src/graph/ + "
        "src/truss/",
        [
            (r"\b(?:std::)?s?rand\s*\(", "rand()/srand() is ambient randomness"),
            (r"\bstd::random_device\b", "random_device is ambient randomness"),
            (r"\bsystem_clock\b", "system_clock is wall-clock time"),
            (r"\bgettimeofday\s*\(", "gettimeofday is wall-clock time"),
            (r"\b(?:std::)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)",
             "time() is wall-clock time"),
            (r"\b(?:std::)?(?:localtime|gmtime|ctime)\s*\(",
             "calendar time is wall-clock time"),
        ],
        applies=_in_deterministic_kernel,
    ),
    Rule(
        "raii-lock",
        "no naked .lock()/.unlock()/.try_lock() outside src/util/mutex.h",
        [
            (r"\.\s*(?:try_)?lock\s*\(\s*\)",
             "use Mutex/MutexLock (util/mutex.h) so the thread-safety "
             "analysis sees the acquire"),
            (r"\.\s*unlock\s*\(\s*\)",
             "use MutexLock::Unlock() so the thread-safety analysis sees "
             "the release"),
        ],
        applies=lambda norm, parts: True,
        sanctioned=["util/mutex.h"],
    ),
    Rule(
        "stderr",
        "no raw fprintf(stderr, ...) outside sanctioned files",
        [
            (r"\bfprintf\s*\(\s*stderr\b",
             "route diagnostics through Status, or suppress with a reviewed "
             "atr-lint: allow(stderr)"),
        ],
        applies=lambda norm, parts: True,
        sanctioned=["util/macros.h", "net/server.cc"],
    ),
]


def strip_code_line(line, in_block_comment):
    """Remove comments and string/char literal contents from one line.

    Returns (stripped_line, still_in_block_comment). Deliberately simple:
    no raw strings, no line continuations — the codebase avoids both in
    the constructs these rules match.
    """
    out = []
    i = 0
    n = len(line)
    state = "block" if in_block_comment else "code"
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                break
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "dq"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "sq"
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            i += 1
        else:  # inside a string or char literal
            if c == "\\":
                i += 2
                continue
            if (state == "dq" and c == '"') or (state == "sq" and c == "'"):
                out.append(c)
                state = "code"
                i += 1
                continue
            i += 1
    return "".join(out), state == "block"


def allowed_rules(raw_line):
    match = ALLOW_RE.search(raw_line)
    if not match:
        return set()
    return {r.strip() for r in match.group(1).split(",")}


def lint_file(path):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as err:
        print(f"atr_lint: cannot read {path}: {err}", file=sys.stderr)
        return None

    active = [rule for rule in RULES if rule.applies_to(path)]
    if not active:
        return []

    findings = []
    in_block = False
    prev_allows = set()
    for lineno, raw in enumerate(raw_lines, start=1):
        code, in_block = strip_code_line(raw, in_block)
        allows = allowed_rules(raw) | prev_allows
        # An allow-comment alone on a line covers the next line.
        prev_allows = allowed_rules(raw) if not code.strip() else set()
        for rule in active:
            if rule.rule_id in allows:
                continue
            for pattern, message in rule.patterns:
                if pattern.search(code):
                    findings.append(
                        (path, lineno, rule.rule_id, message, raw.strip()))
                    break
    return findings


def collect_files(paths):
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if os.path.splitext(name)[1] in LINT_EXTENSIONS:
                        files.append(os.path.join(root, name))
        else:
            print(f"atr_lint: no such path: {path}", file=sys.stderr)
            return None
    return files


def main(argv):
    parser = argparse.ArgumentParser(
        prog="atr_lint.py",
        description="ATR invariant linter (see module docstring).")
    parser.add_argument("paths", nargs="*", help="files or trees (default: src/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id:12s} {rule.summary}")
        return 0

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or [os.path.join(repo_root, "src")]
    files = collect_files(paths)
    if files is None:
        return 2

    total = 0
    for path in files:
        findings = lint_file(path)
        if findings is None:
            return 2
        for fpath, lineno, rule_id, message, snippet in findings:
            total += 1
            print(f"{fpath}:{lineno}: [{rule_id}] {message}")
            print(f"    {snippet}")
    if total:
        print(f"atr_lint: {total} violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
