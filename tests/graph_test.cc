// Tests for the CSR graph, builder normalization, and the triangle engine.

#include "graph/graph.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "graph/triangles.h"
#include "tests/test_helpers.h"

namespace atr {
namespace {

TEST(GraphBuilder, DropsSelfLoopsAndDuplicates) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // duplicate, reversed
  b.AddEdge(2, 2);  // self loop
  b.AddEdge(1, 2);
  b.AddEdge(1, 2);  // duplicate
  const Graph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(2, 2));
}

TEST(GraphBuilder, GrowsVertexCountFromEdges) {
  GraphBuilder b;
  b.AddEdge(5, 9);
  const Graph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 10u);
  EXPECT_EQ(g.Degree(9), 1u);
  EXPECT_EQ(g.Degree(0), 0u);
}

TEST(GraphBuilder, EdgeIdsAreSortedByEndpoints) {
  GraphBuilder b(4);
  b.AddEdge(2, 3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 3);
  const Graph g = b.Build();
  EXPECT_EQ(g.Edge(0), (EdgeEndpoints{0, 1}));
  EXPECT_EQ(g.Edge(1), (EdgeEndpoints{1, 3}));
  EXPECT_EQ(g.Edge(2), (EdgeEndpoints{2, 3}));
}

TEST(Graph, FindEdgeAndNeighborsAreConsistent) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 4);
  b.AddEdge(1, 4);
  const Graph g = b.Build();
  EXPECT_NE(g.FindEdge(0, 4), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(4, 0), g.FindEdge(0, 4));
  EXPECT_EQ(g.FindEdge(2, 4), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(0, 0), kInvalidEdge);

  VertexId prev = 0;
  bool first = true;
  for (const AdjEntry& a : g.Neighbors(0)) {
    if (!first) {
      EXPECT_GT(a.neighbor, prev);
    }
    prev = a.neighbor;
    first = false;
    const EdgeEndpoints ends = g.Edge(a.edge);
    EXPECT_TRUE((ends.u == 0 && ends.v == a.neighbor) ||
                (ends.v == 0 && ends.u == a.neighbor));
  }
}

TEST(Triangles, CountsKnownShapes) {
  // Triangle: 1. K4: 4. Square: 0.
  GraphBuilder t(3);
  t.AddEdge(0, 1);
  t.AddEdge(1, 2);
  t.AddEdge(0, 2);
  EXPECT_EQ(CountTriangles(t.Build()), 1u);

  GraphBuilder k4(4);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) k4.AddEdge(u, v);
  }
  EXPECT_EQ(CountTriangles(k4.Build()), 4u);

  GraphBuilder sq(4);
  sq.AddEdge(0, 1);
  sq.AddEdge(1, 2);
  sq.AddEdge(2, 3);
  sq.AddEdge(0, 3);
  EXPECT_EQ(CountTriangles(sq.Build()), 0u);
}

TEST(Triangles, ForEachTriangleReportsEachOnce) {
  const Graph g = MakePropertyGraph(3);
  std::set<std::tuple<EdgeId, EdgeId, EdgeId>> seen;
  ForEachTriangle(g, [&](TriangleEdges t) {
    EdgeId ids[3] = {t.e1, t.e2, t.e3};
    std::sort(ids, ids + 3);
    EXPECT_TRUE(seen.insert({ids[0], ids[1], ids[2]}).second)
        << "triangle reported twice";
  });
  EXPECT_EQ(seen.size(), CountTriangles(g));
}

class TriangleConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TriangleConsistencyTest, SupportSweepMatchesPerEdgeQueries) {
  const Graph g = MakePropertyGraph(GetParam());
  const std::vector<uint32_t> sweep = ComputeSupport(g);
  uint64_t triple_sum = 0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(sweep[e], EdgeSupport(g, e)) << "edge " << e;
    triple_sum += sweep[e];
  }
  // Each triangle contributes one unit of support to three edges.
  EXPECT_EQ(triple_sum, 3 * CountTriangles(g));
}

TEST_P(TriangleConsistencyTest, PerEdgeTrianglesHaveConsistentEndpoints) {
  const Graph g = MakePropertyGraph(GetParam());
  for (EdgeId e = 0; e < g.NumEdges(); e += 3) {
    const EdgeEndpoints ends = g.Edge(e);
    ForEachTriangleOfEdge(g, e, [&](VertexId w, EdgeId eu, EdgeId ev) {
      EXPECT_EQ(g.FindEdge(ends.u, w), eu);
      EXPECT_EQ(g.FindEdge(ends.v, w), ev);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleConsistencyTest,
                         ::testing::Range<uint64_t>(0, 10));

// RAII override for the adaptive walk-vs-merge cutoff factor so every
// test restores the production value.
class ScopedTriangleCutoff {
 public:
  explicit ScopedTriangleCutoff(double cutoff)
      : previous_(internal::SetTriangleCutoffForTest(cutoff)) {}
  ~ScopedTriangleCutoff() { internal::SetTriangleCutoffForTest(previous_); }

 private:
  double previous_;
};

TEST_P(TriangleConsistencyTest, AdaptiveCutoffSweepIsPathInvariant) {
  // 0.0 forces the merge intersection everywhere, the huge factor forces
  // the binary-search walk, and the default mixes per edge. All three must
  // report byte-identical (w, ew_u, ew_v) sequences for every edge — the
  // cutoff is a performance knob, never a semantic one.
  const Graph g = MakePropertyGraph(GetParam());
  std::vector<std::vector<std::tuple<VertexId, EdgeId, EdgeId>>> runs;
  for (const double cutoff : {0.0, kDefaultTriangleCutoff, 1e12}) {
    ScopedTriangleCutoff scoped(cutoff);
    std::vector<std::tuple<VertexId, EdgeId, EdgeId>> seen;
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      ForEachTriangleOfEdgeAdaptive(
          g, e, [&](VertexId w, EdgeId eu, EdgeId ev) {
            seen.emplace_back(w, eu, ev);
          });
    }
    runs.push_back(std::move(seen));
  }
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], runs[1]) << "merge-only vs default diverged";
  EXPECT_EQ(runs[0], runs[2]) << "merge-only vs walk-only diverged";
}

// --- Graph::ApplyEdits ----------------------------------------------------

TEST(ApplyEdits, ProducesEditedSnapshotWithStableRemap) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  const Graph g = b.Build();

  GraphDelta delta;
  delta.remove.push_back(g.Edge(g.FindEdge(1, 2)));
  delta.add.push_back(EdgeEndpoints{4, 0});  // either orientation
  delta.add.push_back(EdgeEndpoints{2, 4});
  StatusOr<GraphEditResult> edited = g.ApplyEdits(delta);
  ASSERT_TRUE(edited.ok()) << edited.status().message();

  const Graph& next = edited->graph;
  EXPECT_EQ(next.NumVertices(), 5u);
  EXPECT_EQ(next.NumEdges(), 5u);
  EXPECT_FALSE(next.HasEdge(1, 2));
  EXPECT_TRUE(next.HasEdge(0, 4));
  EXPECT_TRUE(next.HasEdge(2, 4));

  // Surviving edges map to the id carrying the same endpoints; removed
  // edges read the sentinel.
  ASSERT_EQ(edited->edge_remap.size(), g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const EdgeId mapped = edited->edge_remap[e];
    if (e == g.FindEdge(1, 2)) {
      EXPECT_EQ(mapped, kInvalidEdge);
    } else {
      ASSERT_NE(mapped, kInvalidEdge);
      EXPECT_EQ(next.Edge(mapped), g.Edge(e));
    }
  }
  // Added edges are reported under their new ids, ascending.
  ASSERT_EQ(edited->added_edges.size(), 2u);
  EXPECT_LT(edited->added_edges[0], edited->added_edges[1]);
  for (const EdgeId e : edited->added_edges) {
    EXPECT_EQ(g.FindEdge(next.Edge(e).u, next.Edge(e).v), kInvalidEdge);
  }

  // The snapshot is byte-identical to building the edited edge list from
  // scratch (same normalization, same (u, v)-sorted id assignment).
  GraphBuilder fresh(5);
  fresh.AddEdge(0, 1);
  fresh.AddEdge(2, 3);
  fresh.AddEdge(3, 4);
  fresh.AddEdge(0, 4);
  fresh.AddEdge(2, 4);
  EXPECT_EQ(next.edges(), fresh.Build().edges());
}

TEST(ApplyEdits, GrowsVertexSetForNewEndpoints) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  const Graph g = b.Build();
  GraphDelta delta;
  delta.add.push_back(EdgeEndpoints{1, 7});
  StatusOr<GraphEditResult> edited = g.ApplyEdits(delta);
  ASSERT_TRUE(edited.ok());
  EXPECT_EQ(edited->graph.NumVertices(), 8u);
  EXPECT_TRUE(edited->graph.HasEdge(1, 7));
}

TEST(ApplyEdits, ReAddingAnExistingEdgeIsIdempotent) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  const Graph g = b.Build();
  GraphDelta delta;
  delta.add.push_back(EdgeEndpoints{1, 0});
  delta.add.push_back(EdgeEndpoints{0, 2});
  delta.add.push_back(EdgeEndpoints{2, 0});  // duplicate within the batch
  StatusOr<GraphEditResult> edited = g.ApplyEdits(delta);
  ASSERT_TRUE(edited.ok());
  EXPECT_EQ(edited->graph.NumEdges(), 3u);
  EXPECT_EQ(edited->added_edges.size(), 1u);  // only {0, 2} is new
}

TEST(ApplyEdits, RejectsInvalidDeltas) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  const Graph g = b.Build();

  GraphDelta absent;
  absent.remove.push_back(EdgeEndpoints{1, 2});
  EXPECT_EQ(g.ApplyEdits(absent).status().code(),
            StatusCode::kInvalidArgument);

  GraphDelta self_loop;
  self_loop.add.push_back(EdgeEndpoints{2, 2});
  EXPECT_EQ(g.ApplyEdits(self_loop).status().code(),
            StatusCode::kInvalidArgument);

  GraphDelta add_and_remove;
  add_and_remove.add.push_back(EdgeEndpoints{0, 1});
  add_and_remove.remove.push_back(EdgeEndpoints{0, 1});
  EXPECT_EQ(g.ApplyEdits(add_and_remove).status().code(),
            StatusCode::kInvalidArgument);

  GraphDelta overflow;
  overflow.add.push_back(EdgeEndpoints{0, kInvalidVertex});
  EXPECT_EQ(g.ApplyEdits(overflow).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphBuilderDeath, RejectsVertexIdOverflow) {
  // v + 1 on the sentinel id would wrap num_vertices_ to 0 and silently
  // corrupt the builder; the contract is a hard CHECK.
  EXPECT_DEATH(
      {
        GraphBuilder b;
        b.AddEdge(0, kInvalidVertex);
      },
      "overflows the VertexId space");
}

}  // namespace
}  // namespace atr
