// Tests for the CSR graph, builder normalization, and the triangle engine.

#include "graph/graph.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/triangles.h"
#include "tests/test_helpers.h"

namespace atr {
namespace {

TEST(GraphBuilder, DropsSelfLoopsAndDuplicates) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // duplicate, reversed
  b.AddEdge(2, 2);  // self loop
  b.AddEdge(1, 2);
  b.AddEdge(1, 2);  // duplicate
  const Graph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(2, 2));
}

TEST(GraphBuilder, GrowsVertexCountFromEdges) {
  GraphBuilder b;
  b.AddEdge(5, 9);
  const Graph g = b.Build();
  EXPECT_EQ(g.NumVertices(), 10u);
  EXPECT_EQ(g.Degree(9), 1u);
  EXPECT_EQ(g.Degree(0), 0u);
}

TEST(GraphBuilder, EdgeIdsAreSortedByEndpoints) {
  GraphBuilder b(4);
  b.AddEdge(2, 3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 3);
  const Graph g = b.Build();
  EXPECT_EQ(g.Edge(0), (EdgeEndpoints{0, 1}));
  EXPECT_EQ(g.Edge(1), (EdgeEndpoints{1, 3}));
  EXPECT_EQ(g.Edge(2), (EdgeEndpoints{2, 3}));
}

TEST(Graph, FindEdgeAndNeighborsAreConsistent) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 4);
  b.AddEdge(1, 4);
  const Graph g = b.Build();
  EXPECT_NE(g.FindEdge(0, 4), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(4, 0), g.FindEdge(0, 4));
  EXPECT_EQ(g.FindEdge(2, 4), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(0, 0), kInvalidEdge);

  VertexId prev = 0;
  bool first = true;
  for (const AdjEntry& a : g.Neighbors(0)) {
    if (!first) {
      EXPECT_GT(a.neighbor, prev);
    }
    prev = a.neighbor;
    first = false;
    const EdgeEndpoints ends = g.Edge(a.edge);
    EXPECT_TRUE((ends.u == 0 && ends.v == a.neighbor) ||
                (ends.v == 0 && ends.u == a.neighbor));
  }
}

TEST(Triangles, CountsKnownShapes) {
  // Triangle: 1. K4: 4. Square: 0.
  GraphBuilder t(3);
  t.AddEdge(0, 1);
  t.AddEdge(1, 2);
  t.AddEdge(0, 2);
  EXPECT_EQ(CountTriangles(t.Build()), 1u);

  GraphBuilder k4(4);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) k4.AddEdge(u, v);
  }
  EXPECT_EQ(CountTriangles(k4.Build()), 4u);

  GraphBuilder sq(4);
  sq.AddEdge(0, 1);
  sq.AddEdge(1, 2);
  sq.AddEdge(2, 3);
  sq.AddEdge(0, 3);
  EXPECT_EQ(CountTriangles(sq.Build()), 0u);
}

TEST(Triangles, ForEachTriangleReportsEachOnce) {
  const Graph g = MakePropertyGraph(3);
  std::set<std::tuple<EdgeId, EdgeId, EdgeId>> seen;
  ForEachTriangle(g, [&](TriangleEdges t) {
    EdgeId ids[3] = {t.e1, t.e2, t.e3};
    std::sort(ids, ids + 3);
    EXPECT_TRUE(seen.insert({ids[0], ids[1], ids[2]}).second)
        << "triangle reported twice";
  });
  EXPECT_EQ(seen.size(), CountTriangles(g));
}

class TriangleConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TriangleConsistencyTest, SupportSweepMatchesPerEdgeQueries) {
  const Graph g = MakePropertyGraph(GetParam());
  const std::vector<uint32_t> sweep = ComputeSupport(g);
  uint64_t triple_sum = 0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(sweep[e], EdgeSupport(g, e)) << "edge " << e;
    triple_sum += sweep[e];
  }
  // Each triangle contributes one unit of support to three edges.
  EXPECT_EQ(triple_sum, 3 * CountTriangles(g));
}

TEST_P(TriangleConsistencyTest, PerEdgeTrianglesHaveConsistentEndpoints) {
  const Graph g = MakePropertyGraph(GetParam());
  for (EdgeId e = 0; e < g.NumEdges(); e += 3) {
    const EdgeEndpoints ends = g.Edge(e);
    ForEachTriangleOfEdge(g, e, [&](VertexId w, EdgeId eu, EdgeId ev) {
      EXPECT_EQ(g.FindEdge(ends.u, w), eu);
      EXPECT_EQ(g.FindEdge(ends.v, w), ev);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleConsistencyTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace atr
