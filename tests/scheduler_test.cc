// Tests for the FairScheduler (util/scheduler.h) and its integration into
// the sharded AtrService: FIFO-within-tenant dispatch, priority buckets,
// weighted deficit round-robin fairness (including a flood/starvation
// scenario), capacity backpressure, shutdown semantics, batch-fusion
// grouping, and — at the service layer — the differential guarantee that
// fused and sharded execution stays byte-identical to a serial AtrEngine
// oracle for every registered solver.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/service.h"
#include "graph/generators/generators.h"
#include "util/scheduler.h"
#include "util/status.h"

namespace atr {
namespace {

// One-shot signal for deterministic cross-thread choreography.
class Latch {
 public:
  void Set() {
    std::lock_guard<std::mutex> lock(mu_);
    set_ = true;
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return set_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool set_ = false;
};

// Payload for unit tests: an id the recorder logs, plus an optional body
// the runner executes (used by the blocker job that parks the worker).
struct TestJob {
  int id = 0;
  std::function<void()> body;
};

// Single-worker harness: a blocker job parks the lone worker on a latch
// while the test enqueues its real jobs, so the dispatch order observed
// after release is exactly the scheduler's queueing policy with no races.
class SchedulerHarness {
 public:
  explicit SchedulerHarness(FairScheduler::Options options) {
    options.workers = 1;
    scheduler_ = std::make_unique<FairScheduler>(
        options, [this](std::vector<FairScheduler::Job> batch) {
          std::vector<int> ids;
          for (FairScheduler::Job& job : batch) {
            auto* payload = static_cast<TestJob*>(job.payload.get());
            ids.push_back(payload->id);
            if (payload->body) payload->body();
          }
          std::lock_guard<std::mutex> lock(mu_);
          batches_.push_back(std::move(ids));
        }
  );
  }

  FairScheduler& scheduler() { return *scheduler_; }

  // Submits the parking job and returns once the worker is inside it.
  void Block() {
    auto payload = std::make_shared<TestJob>();
    payload->id = kBlockerId;
    payload->body = [this] {
      entered_.Set();
      gate_.Wait();
    };
    ASSERT_TRUE(scheduler_->Submit({"", 0, "", payload}).ok());
    entered_.Wait();
  }

  void Release() { gate_.Set(); }

  Status Submit(const std::string& tenant, int priority, int id,
                const std::string& batch_key = "") {
    auto payload = std::make_shared<TestJob>();
    payload->id = id;
    return scheduler_->Submit({tenant, priority, batch_key, payload});
  }

  // Executed ids in dispatch order, with the blocker filtered out.
  std::vector<int> Order() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<int> order;
    for (const std::vector<int>& batch : batches_) {
      for (int id : batch) {
        if (id != kBlockerId) order.push_back(id);
      }
    }
    return order;
  }

  // All executed batches (including the blocker's singleton).
  std::vector<std::vector<int>> Batches() {
    std::lock_guard<std::mutex> lock(mu_);
    return batches_;
  }

  static constexpr int kBlockerId = -1;

 private:
  std::unique_ptr<FairScheduler> scheduler_;
  Latch entered_;
  Latch gate_;
  std::mutex mu_;
  std::vector<std::vector<int>> batches_;
};

TEST(FairSchedulerDispatch, FifoWithinOneTenant) {
  SchedulerHarness h({.capacity = 64});
  h.Block();
  for (int id = 1; id <= 5; ++id) {
    ASSERT_TRUE(h.Submit("acme", 0, id).ok());
  }
  h.Release();
  h.scheduler().WaitIdle();
  EXPECT_EQ(h.Order(), (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(FairSchedulerDispatch, HigherPriorityDrainsFirstFifoWithinBucket) {
  SchedulerHarness h({.capacity = 64});
  h.Block();
  ASSERT_TRUE(h.Submit("acme", 0, 1).ok());
  ASSERT_TRUE(h.Submit("acme", 5, 2).ok());
  ASSERT_TRUE(h.Submit("acme", 5, 3).ok());
  ASSERT_TRUE(h.Submit("acme", -1, 4).ok());
  ASSERT_TRUE(h.Submit("acme", 0, 5).ok());
  h.Release();
  h.scheduler().WaitIdle();
  // Bucket 5 FIFO, then bucket 0 FIFO, then bucket -1.
  EXPECT_EQ(h.Order(), (std::vector<int>{2, 3, 1, 5, 4}));
}

TEST(FairSchedulerDispatch, WeightedDeficitRoundRobin) {
  SchedulerHarness h({.capacity = 64, .quantum = 1});
  h.scheduler().SetTenantWeight("heavy", 2);
  h.Block();
  // heavy enters the ring first, then light.
  ASSERT_TRUE(h.Submit("heavy", 0, 10).ok());
  ASSERT_TRUE(h.Submit("light", 0, 20).ok());
  for (int id = 11; id <= 15; ++id) ASSERT_TRUE(h.Submit("heavy", 0, id).ok());
  for (int id = 21; id <= 22; ++id) ASSERT_TRUE(h.Submit("light", 0, id).ok());
  h.Release();
  h.scheduler().WaitIdle();
  // Weight 2 vs 1 with quantum 1: two heavy jobs per visit, one light.
  EXPECT_EQ(h.Order(),
            (std::vector<int>{10, 11, 20, 12, 13, 21, 14, 15, 22}));
}

TEST(FairSchedulerDispatch, FloodingTenantCannotStarveLightTenant) {
  SchedulerHarness h({.capacity = 256});
  h.Block();
  for (int id = 100; id < 150; ++id) {
    ASSERT_TRUE(h.Submit("flood", 0, id).ok());
  }
  ASSERT_TRUE(h.Submit("light", 0, 1).ok());
  h.Release();
  h.scheduler().WaitIdle();
  const std::vector<int> order = h.Order();
  ASSERT_EQ(order.size(), 51u);
  const auto it = std::find(order.begin(), order.end(), 1);
  ASSERT_NE(it, order.end());
  // The light tenant's job dispatches within one DRR cycle of the flood
  // (one flood job per visit), not after the 50-job backlog drains.
  EXPECT_LE(it - order.begin(), 2) << "light tenant starved by flood";
}

TEST(FairSchedulerBackpressure, TrySubmitFailsFastAtCapacity) {
  SchedulerHarness h({.capacity = 2});
  h.Block();
  ASSERT_TRUE(h.Submit("acme", 0, 1).ok());
  ASSERT_TRUE(h.Submit("acme", 0, 2).ok());
  auto payload = std::make_shared<TestJob>();
  payload->id = 3;
  const Status overflow = h.scheduler().TrySubmit({"acme", 0, "", payload});
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted);
  h.Release();
  h.scheduler().WaitIdle();
  // Capacity freed: the same job is admitted now.
  EXPECT_TRUE(h.scheduler().TrySubmit({"acme", 0, "", payload}).ok());
  h.scheduler().WaitIdle();
  EXPECT_EQ(h.Order(), (std::vector<int>{1, 2, 3}));
}

TEST(FairSchedulerBackpressure, SubmitBlocksUntilCapacityFrees) {
  SchedulerHarness h({.capacity = 1});
  h.Block();
  ASSERT_TRUE(h.Submit("acme", 0, 1).ok());
  std::atomic<bool> second_admitted{false};
  std::thread submitter([&] {
    ASSERT_TRUE(h.Submit("acme", 0, 2).ok());
    second_admitted.store(true);
  });
  // The queue is full; the submitter must still be blocked.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_admitted.load());
  h.Release();
  submitter.join();
  EXPECT_TRUE(second_admitted.load());
  h.scheduler().WaitIdle();
  EXPECT_EQ(h.Order(), (std::vector<int>{1, 2}));
}

TEST(FairSchedulerShutdown, RejectsSubmitsAfterShutdown) {
  SchedulerHarness h({.capacity = 8});
  ASSERT_TRUE(h.Submit("acme", 0, 1).ok());
  h.scheduler().Shutdown();
  auto payload = std::make_shared<TestJob>();
  payload->id = 2;
  EXPECT_EQ(h.scheduler().Submit({"acme", 0, "", payload}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.scheduler().TrySubmit({"acme", 0, "", payload}).code(),
            StatusCode::kFailedPrecondition);
  // The pre-shutdown job still drained.
  EXPECT_EQ(h.Order(), (std::vector<int>{1}));
}

TEST(FairSchedulerFusion, MatchingKeysFuseAcrossTenantsAndBuckets) {
  SchedulerHarness h({.capacity = 64, .max_batch = 8});
  h.Block();
  ASSERT_TRUE(h.Submit("a", 0, 1, "k").ok());
  ASSERT_TRUE(h.Submit("a", 0, 2, "k").ok());
  ASSERT_TRUE(h.Submit("a", 3, 3, "k").ok());  // different bucket, same key
  ASSERT_TRUE(h.Submit("b", 0, 4, "k").ok());  // different tenant, same key
  ASSERT_TRUE(h.Submit("b", 0, 5, "k").ok());
  ASSERT_TRUE(h.Submit("c", 0, 6, "other").ok());
  ASSERT_TRUE(h.Submit("c", 0, 7).ok());  // empty key: never fused
  h.Release();
  h.scheduler().WaitIdle();

  std::vector<std::vector<int>> batches = h.Batches();
  // blocker + the fused five + two singletons.
  ASSERT_EQ(batches.size(), 4u);
  std::vector<int> fused;
  for (std::vector<int>& batch : batches) {
    if (batch.size() > 1) fused = batch;
  }
  std::sort(fused.begin(), fused.end());
  EXPECT_EQ(fused, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(h.scheduler().jobs_executed(), 8u);
  EXPECT_EQ(h.scheduler().batches_executed(), 4u);
  EXPECT_EQ(h.scheduler().jobs_fused(), 5u);
}

TEST(FairSchedulerFusion, MaxBatchCapsOneSweep) {
  SchedulerHarness h({.capacity = 64, .max_batch = 2});
  h.Block();
  for (int id = 1; id <= 4; ++id) {
    ASSERT_TRUE(h.Submit("a", 0, id, "k").ok());
  }
  h.Release();
  h.scheduler().WaitIdle();
  std::vector<std::vector<int>> batches = h.Batches();
  ASSERT_EQ(batches.size(), 3u);  // blocker + two capped batches
  EXPECT_EQ(batches[1], (std::vector<int>{1, 2}));
  EXPECT_EQ(batches[2], (std::vector<int>{3, 4}));
  EXPECT_EQ(h.scheduler().jobs_fused(), 4u);
}

TEST(FairSchedulerFusion, MaxBatchOneDisablesFusion) {
  SchedulerHarness h({.capacity = 64, .max_batch = 1});
  h.Block();
  for (int id = 1; id <= 3; ++id) {
    ASSERT_TRUE(h.Submit("a", 0, id, "k").ok());
  }
  h.Release();
  h.scheduler().WaitIdle();
  EXPECT_EQ(h.Order(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(h.scheduler().batches_executed(), 4u);
  EXPECT_EQ(h.scheduler().jobs_fused(), 0u);
}

// --- Service integration: batch fusion vs the serial oracle ---------------

Graph SchedGraph(uint64_t seed = 11) { return HolmeKimGraph(60, 4, 0.7, seed); }

void ExpectSameResult(const SolveResult& expected, const SolveResult& actual,
                      const std::string& label) {
  EXPECT_EQ(expected.anchor_edges, actual.anchor_edges) << label;
  EXPECT_EQ(expected.anchor_vertices, actual.anchor_vertices) << label;
  EXPECT_EQ(expected.total_gain, actual.total_gain) << label;
  EXPECT_EQ(expected.gain_at_checkpoint, actual.gain_at_checkpoint) << label;
  EXPECT_EQ(expected.stopped_early, actual.stopped_early) << label;
  ASSERT_EQ(expected.rounds.size(), actual.rounds.size()) << label;
  for (size_t i = 0; i < expected.rounds.size(); ++i) {
    EXPECT_EQ(expected.rounds[i].anchor, actual.rounds[i].anchor)
        << label << " round " << i;
    EXPECT_EQ(expected.rounds[i].gain, actual.rounds[i].gain)
        << label << " round " << i;
  }
}

// Parks the single service worker inside a NON-fusable job (a progress
// callback makes a job ineligible for fusion), queues `specs` behind it,
// releases, and returns the per-spec results.
std::vector<SolveResult> RunBehindBlocker(AtrService& service,
                                          const std::vector<SolverOptions>& specs,
                                          const std::string& solver) {
  Latch entered, gate;
  SolverOptions blocker;
  blocker.budget = 1;
  blocker.progress = [&](const SolveProgress&) {
    entered.Set();
    gate.Wait();
    return true;
  };
  StatusOr<JobHandle> blocker_job = service.Submit("g", "gas", blocker);
  EXPECT_TRUE(blocker_job.ok()) << blocker_job.status().message();
  entered.Wait();

  std::vector<JobHandle> handles;
  for (const SolverOptions& options : specs) {
    StatusOr<JobHandle> job = service.Submit("g", solver, options);
    EXPECT_TRUE(job.ok()) << job.status().message();
    handles.push_back(*job);
  }
  gate.Set();
  EXPECT_TRUE(blocker_job->Wait().ok());

  std::vector<SolveResult> results;
  for (JobHandle& handle : handles) {
    StatusOr<SolveResult> result = handle.Wait();
    EXPECT_TRUE(result.ok()) << result.status().message();
    results.push_back(result.ok() ? *result : SolveResult{});
  }
  return results;
}

TEST(ServiceBatchFusion, FusedGreedySweepMatchesSerialOracle) {
  AtrService::Options options;
  options.workers = 1;
  options.shards = 1;
  options.max_batch = 8;
  options.queue_capacity = 64;
  AtrService service(options);
  ASSERT_TRUE(service.AddGraph("g", SchedGraph()).ok());

  // A budget sweep over one graph version: classic dashboard shape.
  std::vector<SolverOptions> specs(4);
  specs[0].budget = 1;
  specs[1].budget = 2;
  specs[2].budget = 3;
  specs[3].budget = 3;
  specs[3].budget_checkpoints = {1, 3};
  const std::vector<SolveResult> fused = RunBehindBlocker(service, specs, "gas");

  AtrEngine engine(SchedGraph());
  for (size_t i = 0; i < specs.size(); ++i) {
    StatusOr<SolveResult> oracle = engine.Run("gas", specs[i]);
    ASSERT_TRUE(oracle.ok());
    ExpectSameResult(*oracle, fused[i], "gas sweep spec " + std::to_string(i));
  }

  const AtrService::SchedulerStats stats = service.Stats();
  EXPECT_EQ(stats.jobs_fused, 4u);
  // Blocker + one fused batch: the whole sweep cost one solver dispatch.
  EXPECT_EQ(stats.batches_executed, 2u);
  EXPECT_EQ(stats.jobs_executed, 5u);

  StatusOr<AtrService::GraphInfo> info = service.Info("g");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->decomposition_builds, 1u);
}

TEST(ServiceBatchFusion, FusedExactJobsShareOneEnumeration) {
  AtrService::Options options;
  options.workers = 1;
  options.shards = 1;
  options.max_batch = 8;
  options.queue_capacity = 64;
  AtrService service(options);
  ASSERT_TRUE(service.AddGraph("g", SchedGraph()).ok());

  std::vector<SolverOptions> specs(3);
  specs[0].budget = 1;
  specs[1].budget = 1;
  specs[2].budget = 1;
  const std::vector<SolveResult> fused =
      RunBehindBlocker(service, specs, "exact");

  AtrEngine engine(SchedGraph());
  for (size_t i = 0; i < specs.size(); ++i) {
    StatusOr<SolveResult> oracle = engine.Run("exact", specs[i]);
    ASSERT_TRUE(oracle.ok());
    ExpectSameResult(*oracle, fused[i], "exact spec " + std::to_string(i));
  }
  EXPECT_EQ(service.Stats().jobs_fused, 3u);
}

TEST(ServiceBatchFusion, NonFusableSolversNeverFuse) {
  AtrService::Options options;
  options.workers = 1;
  options.shards = 1;
  options.max_batch = 8;
  options.queue_capacity = 64;
  AtrService service(options);
  ASSERT_TRUE(service.AddGraph("g", SchedGraph()).ok());

  // Randomized baselines are excluded from fusion (their trial streams
  // are not prefix-consistent across budgets).
  std::vector<SolverOptions> specs(3);
  for (SolverOptions& o : specs) {
    o.budget = 2;
    o.trials = 10;
    o.seed = 7;
  }
  const std::vector<SolveResult> results =
      RunBehindBlocker(service, specs, "rand");

  AtrEngine engine(SchedGraph());
  for (size_t i = 0; i < specs.size(); ++i) {
    StatusOr<SolveResult> oracle = engine.Run("rand", specs[i]);
    ASSERT_TRUE(oracle.ok());
    ExpectSameResult(*oracle, results[i], "rand spec " + std::to_string(i));
  }
  EXPECT_EQ(service.Stats().jobs_fused, 0u);
}

// --- Sharded differential: every solver, every shard, mixed tenants -------

struct JobSpec {
  const char* solver;
  SolverOptions options;
};

std::vector<JobSpec> AllSolverSpecs() {
  std::vector<JobSpec> specs;
  {
    SolverOptions o;
    o.budget = 3;
    specs.push_back({"gas", o});
  }
  {
    SolverOptions o;
    o.budget = 2;
    specs.push_back({"base+", o});
  }
  {
    SolverOptions o;
    o.budget = 2;
    o.use_incremental = true;
    specs.push_back({"base", o});
  }
  {
    SolverOptions o;
    o.budget = 4;
    o.budget_checkpoints = {1, 2, 4};
    specs.push_back({"gas", o});
  }
  {
    SolverOptions o;
    o.budget = 1;
    specs.push_back({"exact", o});
  }
  {
    SolverOptions o;
    o.budget = 2;
    o.trials = 40;
    o.seed = 9;
    specs.push_back({"rand", o});
  }
  {
    SolverOptions o;
    o.budget = 2;
    o.trials = 25;
    o.seed = 5;
    specs.push_back({"sup", o});
  }
  {
    SolverOptions o;
    o.budget = 2;
    o.trials = 25;
    o.seed = 6;
    specs.push_back({"tur", o});
  }
  {
    SolverOptions o;
    o.budget = 2;
    specs.push_back({"akt:4", o});
  }
  return specs;
}

TEST(ShardedServiceDifferential, AllSolversMatchSerialOracleAcrossShards) {
  constexpr int kGraphs = 4;
  constexpr int kSubmitters = 3;

  AtrService::Options options;
  options.workers = 4;
  options.shards = 4;
  options.max_batch = 8;
  options.queue_capacity = 128;
  AtrService service(options);
  ASSERT_EQ(service.Shards(), 4);

  std::vector<std::string> names;
  for (int g = 0; g < kGraphs; ++g) {
    names.push_back("g" + std::to_string(g));
    ASSERT_TRUE(service.AddGraph(names.back(), SchedGraph(100 + g)).ok());
  }
  const std::vector<JobSpec> specs = AllSolverSpecs();

  // Serial oracle: one private engine per graph.
  std::vector<std::vector<SolveResult>> oracle(kGraphs);
  for (int g = 0; g < kGraphs; ++g) {
    AtrEngine engine(SchedGraph(100 + g));
    for (const JobSpec& spec : specs) {
      StatusOr<SolveResult> result = engine.Run(spec.solver, spec.options);
      ASSERT_TRUE(result.ok()) << spec.solver;
      oracle[g].push_back(*result);
    }
  }

  // kSubmitters threads submit every (graph, spec) pair under distinct
  // tenants and rotating priorities — fusion, sharding and fair-share
  // dispatch all engage at once.
  std::vector<std::vector<std::vector<JobHandle>>> handles(
      kSubmitters,
      std::vector<std::vector<JobHandle>>(kGraphs));
  std::vector<std::thread> submitters;
  std::atomic<int> failures{0};
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      AtrService::SubmitOptions submit;
      submit.tenant = "tenant-" + std::to_string(t);
      for (int g = 0; g < kGraphs; ++g) {
        for (size_t s = 0; s < specs.size(); ++s) {
          submit.priority = static_cast<int>(s % 3) - 1;
          StatusOr<JobHandle> job = service.Submit(
              names[g], specs[s].solver, specs[s].options, submit);
          if (!job.ok()) {
            ++failures;
            continue;
          }
          handles[t][g].push_back(*job);
        }
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  ASSERT_EQ(failures.load(), 0);

  for (int t = 0; t < kSubmitters; ++t) {
    for (int g = 0; g < kGraphs; ++g) {
      ASSERT_EQ(handles[t][g].size(), specs.size());
      for (size_t s = 0; s < specs.size(); ++s) {
        StatusOr<SolveResult> result = handles[t][g][s].Wait();
        ASSERT_TRUE(result.ok()) << result.status().message();
        ExpectSameResult(oracle[g][s], *result,
                         std::string(specs[s].solver) + " on " + names[g] +
                             " from submitter " + std::to_string(t));
      }
    }
  }

  // Sharding and fusion never re-run the one decomposition per graph.
  for (const std::string& name : names) {
    StatusOr<AtrService::GraphInfo> info = service.Info(name);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->decomposition_builds, 1u) << name;
  }
  // The executed counter is bumped by the worker just after a job's
  // result becomes observable, so give the last bump a moment to land.
  const uint64_t expected_jobs =
      static_cast<uint64_t>(kSubmitters * kGraphs * specs.size());
  for (int spin = 0; spin < 200 && service.Stats().jobs_executed < expected_jobs;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(service.Stats().jobs_executed, expected_jobs);
}

}  // namespace
}  // namespace atr
