// Tests for the evaluation substrate: dataset registry and route-size stats.

#include <gtest/gtest.h>

#include "eval/datasets.h"
#include "eval/route_stats.h"
#include "route/follower_search.h"
#include "tests/paper_fixtures.h"
#include "tests/test_helpers.h"

namespace atr {
namespace {

TEST(Datasets, InstanceCarriesConsistentStats) {
  const DatasetInstance instance = MakeDataset("college", 0.05);
  EXPECT_EQ(instance.name, "college");
  EXPECT_GT(instance.graph.NumEdges(), 0u);
  EXPECT_EQ(instance.k_max, instance.decomposition.max_trussness);
  EXPECT_GT(instance.k_max, 2u);
  EXPECT_GT(instance.sup_max, 0u);
}

TEST(Datasets, LimitRestrictsTheRegistry) {
  const std::vector<DatasetInstance> two = MakeBenchmarkDatasets(0.02, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].name, "college");
  EXPECT_EQ(two[1].name, "facebook");
}

TEST(RouteStats, MatchesDirectRouteQueries) {
  const Graph g = MakeFig3Graph();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  const std::vector<uint32_t> sizes = ComputeAllRouteSizes(g, d);
  FollowerSearch search(g);
  search.SetState(&d, nullptr);
  ASSERT_EQ(sizes.size(), g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(sizes[e], search.RouteSize(e)) << "edge " << e;
  }
}

TEST(RouteStats, SummaryIsConsistent) {
  const Graph g = MakePropertyGraph(5);
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  const std::vector<uint32_t> sizes = ComputeAllRouteSizes(g, d);
  const RouteSizeStats stats = SummarizeRouteSizes(sizes);
  uint64_t sum = 0;
  uint32_t max = 0;
  uint32_t min = sizes.empty() ? 0 : sizes[0];
  for (uint32_t s : sizes) {
    sum += s;
    max = std::max(max, s);
    min = std::min(min, s);
  }
  EXPECT_EQ(stats.sum_size, sum);
  EXPECT_EQ(stats.max_size, max);
  EXPECT_EQ(stats.min_size, min);
  EXPECT_DOUBLE_EQ(stats.average_size,
                   static_cast<double>(sum) / sizes.size());
}

}  // namespace
}  // namespace atr
