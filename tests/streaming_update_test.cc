// Randomized streaming differential harness for the dynamic-update
// subsystem: on seeded random graphs (Erdős–Rényi and power-law families),
// interleave InsertEdge / RemoveEdge / ApplyAnchor / rollback operations
// and assert after EVERY step that the maintained decomposition —
// trussness, layer, and max_trussness — is byte-identical to a
// from-scratch ComputeTrussDecompositionOnSubset over the same anchors and
// alive edges. Episodes run at thread counts {1, 8} (the oracle and the
// engine's full-rebuild fallback dispatch through the parallel peel, so
// the streaming path is exercised against both engines), with the fan-out
// cutoff lowered so the parallel engine engages on these small graphs.
//
// The Graph::ApplyEdits carry differential replays what
// AtrService::UpdateGraph does — retire removed edges on the old topology,
// re-home the state across the edge-id remap, stream the added edges in —
// and checks the result against a from-scratch decomposition of the new
// snapshot.
//
// Stress knobs (the CI nightly job turns these up):
//   ATR_STRESS_ITERS — multiplies the number of random graphs (default 1)
//   ATR_STRESS_SEED  — offsets every graph seed (default 0)

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "api/engine.h"
#include "graph/generators/generators.h"
#include "graph/graph.h"
#include "tests/paper_fixtures.h"
#include "truss/decomposition.h"
#include "truss/incremental.h"
#include "truss/parallel_peel.h"
#include "util/env.h"
#include "util/parallel_for.h"
#include "util/prng.h"

namespace atr {
namespace {

uint64_t StressIters() {
  return static_cast<uint64_t>(
      std::max<int64_t>(1, GetEnvInt64("ATR_STRESS_ITERS", 1)));
}

uint64_t StressSeed() {
  return static_cast<uint64_t>(
      std::max<int64_t>(0, GetEnvInt64("ATR_STRESS_SEED", 0)));
}

// RAII cutoff override so every test restores the production value.
class ScopedPeelCutoff {
 public:
  explicit ScopedPeelCutoff(size_t cutoff)
      : previous_(internal::SetParallelPeelMinFrontierForTest(cutoff)) {}
  ~ScopedPeelCutoff() {
    internal::SetParallelPeelMinFrontierForTest(previous_);
  }

 private:
  size_t previous_;
};

Graph MakeStreamingGraph(uint64_t seed) {
  if (seed % 2 == 0) {
    return ErdosRenyiGraph(25 + seed % 30, 60 + (seed * 13) % 120, seed);
  }
  return HolmeKimGraph(30 + seed % 25, 2 + seed % 3,
                       0.3 + 0.1 * (seed % 6), seed);
}

TrussDecomposition Oracle(const IncrementalTruss& inc) {
  return ComputeTrussDecompositionOnSubset(inc.graph(), inc.anchored(),
                                           inc.AliveEdges());
}

void ExpectByteIdentical(const IncrementalTruss& inc, uint64_t seed,
                         int step) {
  const TrussDecomposition oracle = Oracle(inc);
  const TrussDecomposition& maintained = inc.decomposition();
  ASSERT_EQ(maintained.trussness, oracle.trussness)
      << "trussness diverged, seed " << seed << " step " << step;
  ASSERT_EQ(maintained.layer, oracle.layer)
      << "layer diverged, seed " << seed << " step " << step;
  ASSERT_EQ(maintained.max_trussness, oracle.max_trussness)
      << "max_trussness diverged, seed " << seed << " step " << step;
}

struct StateSnapshot {
  std::vector<uint32_t> trussness;
  std::vector<uint32_t> layer;
  uint32_t max_trussness;
  std::vector<bool> anchored;
  uint64_t total_trussness;

  explicit StateSnapshot(const IncrementalTruss& inc)
      : trussness(inc.decomposition().trussness),
        layer(inc.decomposition().layer),
        max_trussness(inc.decomposition().max_trussness),
        anchored(inc.anchored()),
        total_trussness(inc.total_trussness()) {}

  void ExpectEquals(const IncrementalTruss& inc, uint64_t seed) const {
    EXPECT_EQ(trussness, inc.decomposition().trussness) << "seed " << seed;
    EXPECT_EQ(layer, inc.decomposition().layer) << "seed " << seed;
    EXPECT_EQ(max_trussness, inc.decomposition().max_trussness)
        << "seed " << seed;
    EXPECT_EQ(anchored, inc.anchored()) << "seed " << seed;
    EXPECT_EQ(total_trussness, inc.total_trussness()) << "seed " << seed;
  }
};

EdgeId PickEdge(const std::vector<EdgeId>& pool, Rng& rng) {
  return pool.empty() ? kInvalidEdge : pool[rng.NextBounded(pool.size())];
}

std::vector<EdgeId> MutableEdges(const IncrementalTruss& inc) {
  std::vector<EdgeId> pool;
  for (EdgeId e = 0; e < inc.graph().NumEdges(); ++e) {
    if (inc.IsAlive(e) && !inc.IsAnchored(e)) pool.push_back(e);
  }
  return pool;
}

std::vector<EdgeId> DeadEdges(const IncrementalTruss& inc) {
  std::vector<EdgeId> pool;
  for (EdgeId e = 0; e < inc.graph().NumEdges(); ++e) {
    if (!inc.IsAlive(e)) pool.push_back(e);
  }
  return pool;
}

// Applies one random operation; returns false when nothing was eligible.
bool RandomOp(IncrementalTruss& inc, Rng& rng) {
  const std::vector<EdgeId> dead = DeadEdges(inc);
  const uint64_t roll = rng.NextBounded(100);
  if (roll < 35 && !dead.empty()) {
    const EdgeId e = PickEdge(dead, rng);
    const EdgeEndpoints ends = inc.graph().Edge(e);
    StatusOr<EdgeId> inserted = inc.InsertEdge(ends.u, ends.v);
    if (!inserted.ok()) {
      // Keep the episode's seed/step diagnostics: dereferencing an error
      // StatusOr would abort the whole sweep.
      ADD_FAILURE() << "InsertEdge failed: " << inserted.status().message();
      return false;
    }
    EXPECT_EQ(*inserted, e);
    return true;
  }
  const std::vector<EdgeId> eligible = MutableEdges(inc);
  const EdgeId e = PickEdge(eligible, rng);
  if (e == kInvalidEdge) return false;
  if (roll < 65) {
    inc.RemoveEdge(e);
  } else {
    inc.ApplyAnchor(e);
  }
  return true;
}

// One randomized episode: interleaved inserts/removals/anchors with a full
// oracle comparison after every step, plus one rollback round-trip whose
// speculative window itself mixes all three operations.
void RunEpisode(uint64_t seed) {
  const Graph g = MakeStreamingGraph(seed);
  if (g.NumEdges() == 0) return;
  IncrementalTruss inc(g);
  ExpectByteIdentical(inc, seed, -1);

  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);
  // Open with a removal burst so the insert pool is non-trivial from the
  // start (later steps keep churning the same slots).
  const int burst = 2 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i < burst; ++i) {
    const EdgeId e = PickEdge(MutableEdges(inc), rng);
    if (e == kInvalidEdge) break;
    inc.RemoveEdge(e);
    ASSERT_NO_FATAL_FAILURE(ExpectByteIdentical(inc, seed, -2));
  }

  const int steps = 10 + static_cast<int>(rng.NextBounded(8));
  for (int step = 0; step < steps; ++step) {
    if (!RandomOp(inc, rng)) break;
    ASSERT_NO_FATAL_FAILURE(ExpectByteIdentical(inc, seed, step));
  }
  EXPECT_EQ(inc.stats().follower_mismatches, 0u) << "seed " << seed;

  // Rollback round-trip across a speculative window of streaming ops.
  const StateSnapshot snapshot(inc);
  const IncrementalTruss::Checkpoint cp = inc.MarkRollbackPoint();
  Rng spec_rng(seed ^ 0x5ca1ab1e0ddba11ULL);
  for (int i = 0; i < 5; ++i) {
    if (!RandomOp(inc, spec_rng)) break;
  }
  inc.RollbackTo(cp);
  snapshot.ExpectEquals(inc, seed);
  ASSERT_NO_FATAL_FAILURE(ExpectByteIdentical(inc, seed, steps));
}

// The issue's required thread counts: the oracle and the engine's
// full-rebuild fallback dispatch serial at 1 worker and through the
// round-synchronous parallel peel at 8.
void RunSweep(uint64_t episodes, uint64_t base, int threads) {
  ScopedParallelism parallelism(threads);
  // Force the fan-out path on these sub-cutoff graphs when sweeping with
  // workers; the single-thread leg keeps the production cutoff (serial).
  std::optional<ScopedPeelCutoff> cutoff;
  if (threads > 1) cutoff.emplace(1);
  for (uint64_t i = 0; i < episodes; ++i) {
    ASSERT_NO_FATAL_FAILURE(RunEpisode(base + i))
        << "episode " << i << " threads " << threads;
  }
}

TEST(StreamingDifferential, InterleavedOpsMatchOracleSingleThread) {
  const uint64_t episodes = 60 * StressIters();
  RunSweep(episodes, StressSeed() * 1000003ULL, 1);
}

TEST(StreamingDifferential, InterleavedOpsMatchOracleEightThreads) {
  const uint64_t episodes = 60 * StressIters();
  RunSweep(episodes, StressSeed() * 1000003ULL + 500000ULL, 8);
}

TEST(StreamingInsert, RemoveThenReinsertRestoresByteIdenticalState) {
  const Graph g = MakeFig3Graph();
  IncrementalTruss inc(g);
  const StateSnapshot pristine(inc);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    inc.RemoveEdge(e);
    EXPECT_FALSE(inc.IsAlive(e));
    const uint32_t t = inc.InsertEdge(e);
    EXPECT_TRUE(inc.IsAlive(e));
    EXPECT_EQ(t, pristine.trussness[e]);
    // Same alive set as before the churn => the exact same decomposition.
    pristine.ExpectEquals(inc, e);
  }
  EXPECT_EQ(inc.stats().edges_inserted, g.NumEdges());
}

TEST(StreamingInsert, EndpointFlavorValidates) {
  const Graph g = MakeFig3Graph();
  IncrementalTruss inc(g);
  // Alive edge: precondition failure.
  const EdgeEndpoints alive = g.Edge(0);
  StatusOr<EdgeId> already = inc.InsertEdge(alive.u, alive.v);
  ASSERT_FALSE(already.ok());
  EXPECT_EQ(already.status().code(), StatusCode::kFailedPrecondition);
  // No slot in the topology: not found.
  StatusOr<EdgeId> missing = inc.InsertEdge(0, g.NumVertices() + 5);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // Removed edge: revives under either endpoint order.
  inc.RemoveEdge(0);
  StatusOr<EdgeId> revived = inc.InsertEdge(g.Edge(0).v, g.Edge(0).u);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ(*revived, 0u);
  EXPECT_TRUE(inc.IsAlive(0));
}

TEST(StreamingInsert, InsertNearAnchorsMatchesOracle) {
  const Graph g = MakeFig3Graph();
  IncrementalTruss inc(g);
  inc.ApplyAnchor(Fig3Edge(g, 5, 8));
  const EdgeId victim = Fig3Edge(g, 3, 4);
  ASSERT_NE(victim, kInvalidEdge);
  inc.RemoveEdge(victim);
  ASSERT_NO_FATAL_FAILURE(ExpectByteIdentical(inc, 0, 0));
  inc.InsertEdge(victim);
  ASSERT_NO_FATAL_FAILURE(ExpectByteIdentical(inc, 0, 1));
}

// --- Graph::ApplyEdits carry differential --------------------------------

// Replays the UpdateGraph seeding recipe for one delta and asserts the
// carried + maintained decomposition is byte-identical to a from-scratch
// decomposition of the new snapshot.
void RunCarryEpisode(uint64_t seed) {
  const Graph g = MakeStreamingGraph(seed);
  if (g.NumEdges() < 4) return;
  Rng rng(seed * 0x2545f4914f6cdd1dULL + 3);

  GraphDelta delta;
  const uint32_t removals = 1 + static_cast<uint32_t>(rng.NextBounded(3));
  std::vector<bool> chosen(g.NumEdges(), false);
  for (uint32_t i = 0; i < removals; ++i) {
    const EdgeId e = static_cast<EdgeId>(rng.NextBounded(g.NumEdges()));
    if (chosen[e]) continue;
    chosen[e] = true;
    delta.remove.push_back(g.Edge(e));
  }
  const uint32_t additions = 1 + static_cast<uint32_t>(rng.NextBounded(4));
  for (uint32_t i = 0; i < additions; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const VertexId v =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices() + 2));
    if (u == v) continue;
    if (g.FindEdge(u, v) != kInvalidEdge && chosen[g.FindEdge(u, v)]) {
      continue;  // add+remove of one edge in a delta is rejected by design
    }
    delta.add.push_back(EdgeEndpoints{u, v});
  }

  StatusOr<GraphEditResult> edited = g.ApplyEdits(delta);
  ASSERT_TRUE(edited.ok()) << edited.status().message() << " seed " << seed;

  // Retire removals on the old topology, carry across the remap, stream
  // the additions in — the UpdateGraph recipe.
  IncrementalTruss retire(g);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (edited->edge_remap[e] == kInvalidEdge) retire.RemoveEdge(e);
  }
  const uint32_t next_m = edited->graph.NumEdges();
  TrussDecomposition carried;
  carried.trussness.assign(next_m, kTrussnessNotComputed);
  carried.layer.assign(next_m, 0);
  carried.max_trussness = retire.decomposition().max_trussness;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const EdgeId mapped = edited->edge_remap[e];
    if (mapped == kInvalidEdge) continue;
    carried.trussness[mapped] = retire.decomposition().trussness[e];
    carried.layer[mapped] = retire.decomposition().layer[e];
  }
  IncrementalTruss maintained(edited->graph, std::move(carried));
  for (const EdgeId e : edited->added_edges) maintained.InsertEdge(e);

  const TrussDecomposition oracle =
      ComputeTrussDecomposition(edited->graph);
  EXPECT_EQ(maintained.decomposition().trussness, oracle.trussness)
      << "seed " << seed;
  EXPECT_EQ(maintained.decomposition().layer, oracle.layer)
      << "seed " << seed;
  EXPECT_EQ(maintained.decomposition().max_trussness, oracle.max_trussness)
      << "seed " << seed;
}

TEST(ApplyEditsCarry, PreDeclaredArrivalThroughEngineFacade) {
  // The pre-declared flow: ApplyEdits materializes the slot up front, the
  // carried seed leaves it dead, and the arrival later streams in through
  // AtrEngine::InsertEdge on a pristine (sessionless) engine.
  const Graph g = MakeFig3Graph();
  GraphDelta delta;
  delta.add.push_back(EdgeEndpoints{0, g.NumVertices() - 1});
  StatusOr<GraphEditResult> edited = g.ApplyEdits(delta);
  ASSERT_TRUE(edited.ok());
  ASSERT_EQ(edited->added_edges.size(), 1u);
  const EdgeId slot = edited->added_edges[0];

  const TrussDecomposition base = ComputeTrussDecomposition(g);
  TrussDecomposition carried;
  const uint32_t next_m = edited->graph.NumEdges();
  carried.trussness.assign(next_m, kTrussnessNotComputed);
  carried.layer.assign(next_m, 0);
  carried.max_trussness = base.max_trussness;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    carried.trussness[edited->edge_remap[e]] = base.trussness[e];
    carried.layer[edited->edge_remap[e]] = base.layer[e];
  }

  AtrEngine engine(edited->graph, std::move(carried));
  const EdgeEndpoints ends = edited->graph.Edge(slot);
  StatusOr<uint32_t> trussness = engine.InsertEdge(ends.u, ends.v);
  ASSERT_TRUE(trussness.ok()) << trussness.status().message();
  const TrussDecomposition oracle =
      ComputeTrussDecomposition(edited->graph);
  EXPECT_EQ(*trussness, oracle.trussness[slot]);
  EXPECT_EQ(engine.Decomposition().trussness, oracle.trussness);
  EXPECT_EQ(engine.Decomposition().layer, oracle.layer);
}

TEST(ApplyEditsCarry, SeededMaintenanceMatchesFromScratch) {
  const uint64_t episodes = 80 * StressIters();
  const uint64_t base = StressSeed() * 1000003ULL;
  for (uint64_t i = 0; i < episodes; ++i) {
    ASSERT_NO_FATAL_FAILURE(RunCarryEpisode(base + i)) << "episode " << i;
  }
}

}  // namespace
}  // namespace atr
