// Randomized differential harness for the incremental truss maintenance
// engine: on hundreds of seeded random graphs (Erdős–Rényi and power-law
// families), interleave ApplyAnchor / RemoveEdge operations and assert
// after EVERY step that the maintained decomposition — trussness, layer,
// and max_trussness — is byte-identical to a from-scratch
// ComputeTrussDecompositionOnSubset over the same anchors and alive
// edges. Undo round-trips are checked by snapshotting, applying more
// operations, rolling back, and comparing the full state.
//
// Stress knobs (the CI nightly job turns these up):
//   ATR_STRESS_ITERS — multiplies the number of random graphs (default 1)
//   ATR_STRESS_SEED  — offsets every graph seed (default 0), so each
//                      nightly run explores a fresh slice of the space

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/generators/generators.h"
#include "graph/graph.h"
#include "tests/paper_fixtures.h"
#include "truss/decomposition.h"
#include "truss/gain.h"
#include "truss/incremental.h"
#include "util/env.h"
#include "util/prng.h"

namespace atr {
namespace {

uint64_t StressIters() {
  return static_cast<uint64_t>(std::max<int64_t>(1, GetEnvInt64("ATR_STRESS_ITERS", 1)));
}

uint64_t StressSeed() {
  return static_cast<uint64_t>(std::max<int64_t>(0, GetEnvInt64("ATR_STRESS_SEED", 0)));
}

// The issue's two required families plus their parameter spread.
Graph MakeDifferentialGraph(uint64_t seed) {
  if (seed % 2 == 0) {
    return ErdosRenyiGraph(25 + seed % 30, 60 + (seed * 13) % 120, seed);
  }
  // Power-law with triad closure so the truss structure is non-trivial.
  return HolmeKimGraph(30 + seed % 25, 2 + seed % 3,
                       0.3 + 0.1 * (seed % 6), seed);
}

// From-scratch oracle over the engine's current anchor + alive state.
TrussDecomposition Oracle(const IncrementalTruss& inc) {
  return ComputeTrussDecompositionOnSubset(inc.graph(), inc.anchored(),
                                           inc.AliveEdges());
}

void ExpectByteIdentical(const IncrementalTruss& inc, uint64_t seed,
                         int step) {
  const TrussDecomposition oracle = Oracle(inc);
  const TrussDecomposition& maintained = inc.decomposition();
  ASSERT_EQ(maintained.trussness, oracle.trussness)
      << "trussness diverged, seed " << seed << " step " << step;
  ASSERT_EQ(maintained.layer, oracle.layer)
      << "layer diverged, seed " << seed << " step " << step;
  ASSERT_EQ(maintained.max_trussness, oracle.max_trussness)
      << "max_trussness diverged, seed " << seed << " step " << step;
}

struct StateSnapshot {
  std::vector<uint32_t> trussness;
  std::vector<uint32_t> layer;
  uint32_t max_trussness;
  std::vector<bool> anchored;
  uint64_t total_trussness;

  explicit StateSnapshot(const IncrementalTruss& inc)
      : trussness(inc.decomposition().trussness),
        layer(inc.decomposition().layer),
        max_trussness(inc.decomposition().max_trussness),
        anchored(inc.anchored()),
        total_trussness(inc.total_trussness()) {}

  void ExpectEquals(const IncrementalTruss& inc, uint64_t seed) const {
    EXPECT_EQ(trussness, inc.decomposition().trussness) << "seed " << seed;
    EXPECT_EQ(layer, inc.decomposition().layer) << "seed " << seed;
    EXPECT_EQ(max_trussness, inc.decomposition().max_trussness)
        << "seed " << seed;
    EXPECT_EQ(anchored, inc.anchored()) << "seed " << seed;
    EXPECT_EQ(total_trussness, inc.total_trussness()) << "seed " << seed;
  }
};

// Picks a random alive, non-anchored edge; kInvalidEdge when none remain.
EdgeId PickMutableEdge(const IncrementalTruss& inc, Rng& rng) {
  std::vector<EdgeId> eligible;
  for (EdgeId e = 0; e < inc.graph().NumEdges(); ++e) {
    if (inc.IsAlive(e) && !inc.IsAnchored(e)) eligible.push_back(e);
  }
  if (eligible.empty()) return kInvalidEdge;
  return eligible[rng.NextBounded(eligible.size())];
}

// One randomized episode: interleaved anchors/removals with a full oracle
// comparison after every step, plus one mid-episode rollback round-trip.
void RunEpisode(uint64_t seed) {
  const Graph g = MakeDifferentialGraph(seed);
  if (g.NumEdges() == 0) return;
  IncrementalTruss inc(g);
  ExpectByteIdentical(inc, seed, -1);

  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const int steps = 8 + static_cast<int>(rng.NextBounded(8));
  for (int step = 0; step < steps; ++step) {
    const EdgeId e = PickMutableEdge(inc, rng);
    if (e == kInvalidEdge) break;
    if (rng.NextBounded(100) < 55) {
      const TrussDecomposition before = inc.decomposition();
      const std::vector<bool> anchored_before = inc.anchored();
      const uint32_t gain = inc.ApplyAnchor(e);
      // The reported gain is the trussness-gain oracle of Definition 4.
      EXPECT_EQ(gain, TrussnessGain(g, before, anchored_before, {e}))
          << "seed " << seed << " step " << step;
    } else {
      inc.RemoveEdge(e);
    }
    ASSERT_NO_FATAL_FAILURE(ExpectByteIdentical(inc, seed, step));
  }

  // FollowerSearch and the affected-region re-peel must have agreed on
  // every ApplyAnchor (mismatches fall back to a correct full rebuild, but
  // are a bug in one of the two engines).
  EXPECT_EQ(inc.stats().follower_mismatches, 0u) << "seed " << seed;

  // Rollback round-trip: speculate a few more operations, then undo them.
  const StateSnapshot snapshot(inc);
  const IncrementalTruss::Checkpoint cp = inc.MarkRollbackPoint();
  Rng spec_rng(seed ^ 0xabcdef12345678ULL);
  for (int i = 0; i < 4; ++i) {
    const EdgeId e = PickMutableEdge(inc, spec_rng);
    if (e == kInvalidEdge) break;
    if (spec_rng.NextBounded(2) == 0) {
      inc.ApplyAnchor(e);
    } else {
      inc.RemoveEdge(e);
    }
  }
  inc.RollbackTo(cp);
  snapshot.ExpectEquals(inc, seed);
  ASSERT_NO_FATAL_FAILURE(ExpectByteIdentical(inc, seed, steps));
}

TEST(IncrementalDifferential, RandomizedInterleavedOpsMatchOracle) {
  // ~200 graphs at the default multiplier: 100 ER + 100 power-law.
  const uint64_t episodes = 200 * StressIters();
  const uint64_t base = StressSeed() * 1000003ULL;
  for (uint64_t i = 0; i < episodes; ++i) {
    ASSERT_NO_FATAL_FAILURE(RunEpisode(base + i)) << "episode " << i;
  }
}

TEST(IncrementalTruss, Fig3AnchorMatchesOracleAndGain) {
  const Graph g = MakeFig3Graph();
  IncrementalTruss inc(g);
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  EXPECT_EQ(inc.decomposition().trussness, base.trussness);
  EXPECT_EQ(inc.decomposition().layer, base.layer);

  // Anchoring (v5, v8) — the paper's running example — lifts the 3-hull.
  const EdgeId x = Fig3Edge(g, 5, 8);
  ASSERT_NE(x, kInvalidEdge);
  std::vector<EdgeId> followers;
  const uint32_t gain = inc.ApplyAnchor(x, &followers);
  EXPECT_EQ(gain, TrussnessGain(g, base, {}, {x}));
  EXPECT_EQ(gain, followers.size());
  EXPECT_TRUE(inc.IsAnchored(x));
  EXPECT_EQ(inc.decomposition().trussness[x], kAnchoredTrussness);
  for (const EdgeId f : followers) {
    EXPECT_EQ(inc.decomposition().trussness[f], base.trussness[f] + 1);
  }
  const TrussDecomposition oracle = ComputeTrussDecomposition(
      g, inc.anchored());
  EXPECT_EQ(inc.decomposition().trussness, oracle.trussness);
  EXPECT_EQ(inc.decomposition().layer, oracle.layer);
  EXPECT_EQ(inc.decomposition().max_trussness, oracle.max_trussness);
}

TEST(IncrementalTruss, RemoveEdgeReportsTrussnessLoss) {
  const Graph g = MakeFig3Graph();
  IncrementalTruss inc(g);
  const uint64_t total_before = inc.total_trussness();
  const EdgeId x = Fig3Edge(g, 3, 4);  // edge of the 5-truss clique
  ASSERT_NE(x, kInvalidEdge);
  const uint32_t own = inc.decomposition().trussness[x];
  const uint64_t loss = inc.RemoveEdge(x);
  EXPECT_FALSE(inc.IsAlive(x));
  EXPECT_EQ(inc.decomposition().trussness[x], kTrussnessNotComputed);
  EXPECT_EQ(inc.total_trussness(), total_before - own - loss);
  // The 5-clique loses an edge: the remaining clique edges drop a level.
  EXPECT_GT(loss, 0u);
}

TEST(IncrementalTruss, SpeculativeApplyRollbackIsByteExact) {
  const Graph g = MakeFig3Graph();
  IncrementalTruss inc(g);
  const StateSnapshot snapshot(inc);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const IncrementalTruss::Checkpoint cp = inc.MarkRollbackPoint();
    inc.ApplyAnchor(e);
    inc.RollbackTo(cp);
  }
  snapshot.ExpectEquals(inc, 0);
  EXPECT_EQ(inc.stats().rollbacks, g.NumEdges());
}

TEST(IncrementalTruss, ClearUndoLogInvalidatesAllCheckpoints) {
  // Regression: the pristine {0, 0} checkpoint must not survive a
  // ClearUndoLog — rolling back to it afterwards would only unwind the
  // post-clear mutations and leave the caller believing it restored the
  // checkpointed state.
  const Graph g = MakeFig3Graph();
  IncrementalTruss inc(g);
  const IncrementalTruss::Checkpoint pristine = inc.MarkRollbackPoint();
  inc.ApplyAnchor(0);
  const IncrementalTruss::Checkpoint mid = inc.MarkRollbackPoint();
  inc.ClearUndoLog();
  EXPECT_FALSE(inc.IsValidCheckpoint(pristine));
  EXPECT_FALSE(inc.IsValidCheckpoint(mid));
  const IncrementalTruss::Checkpoint fresh = inc.MarkRollbackPoint();
  inc.ApplyAnchor(1);
  ASSERT_TRUE(inc.IsValidCheckpoint(fresh));
  inc.RollbackTo(fresh);
  EXPECT_TRUE(inc.IsAnchored(0));  // the cleared commit is the new floor
  EXPECT_FALSE(inc.IsAnchored(1));
}

TEST(IncrementalTruss, CopiesAreIndependent) {
  const Graph g = MakeFig3Graph();
  IncrementalTruss inc(g);
  IncrementalTruss copy(inc);
  copy.ApplyAnchor(0);
  EXPECT_TRUE(copy.IsAnchored(0));
  EXPECT_FALSE(inc.IsAnchored(0));
  EXPECT_EQ(inc.decomposition().trussness,
            ComputeTrussDecomposition(g).trussness);
}

TEST(IncrementalTruss, SeededConstructorAdoptsDecomposition) {
  const Graph g = MakeFig3Graph();
  TrussDecomposition seed = ComputeTrussDecomposition(g);
  IncrementalTruss inc(g, seed);
  EXPECT_EQ(inc.decomposition().trussness, seed.trussness);
  const uint32_t gain = inc.ApplyAnchor(Fig3Edge(g, 5, 8));
  EXPECT_EQ(gain, TrussnessGain(g, seed, {}, {Fig3Edge(g, 5, 8)}));
}

}  // namespace
}  // namespace atr
