// Shared helpers for the test suites: random test graphs and slow reference
// implementations used as oracles.

#ifndef ATR_TESTS_TEST_HELPERS_H_
#define ATR_TESTS_TEST_HELPERS_H_

#include <cstdint>
#include <vector>

#include "graph/generators/generators.h"
#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

// A varied family of small graphs for property sweeps, indexed by seed.
// Mixes density regimes and generator families so sweeps hit triangle-rich,
// triangle-poor, and clustered structures.
inline Graph MakePropertyGraph(uint64_t seed) {
  switch (seed % 5) {
    case 0:
      return ErdosRenyiGraph(30 + seed % 21, 80 + (seed * 7) % 90, seed);
    case 1:
      return HolmeKimGraph(40 + seed % 25, 3 + seed % 3, 0.7, seed);
    case 2:
      return PlantedCommunitiesGraph(45 + seed % 12, 4, 7, 0.85,
                                     30 + seed % 40, seed);
    case 3:
      return BarabasiAlbertGraph(35 + seed % 20, 2 + seed % 3, seed);
    default:
      return WattsStrogatzGraph(40 + seed % 15, 6, 0.2, seed);
  }
}

// O(m^2)-ish reference trussness: repeatedly strips min-support edges with
// no clever bookkeeping. Anchored edges are never stripped.
inline std::vector<uint32_t> NaiveTrussness(const Graph& g,
                                            const std::vector<bool>& anchored =
                                                {}) {
  const uint32_t m = g.NumEdges();
  std::vector<bool> alive(m, true);
  std::vector<uint32_t> trussness(m, 0);
  auto is_anchored = [&](EdgeId e) {
    return !anchored.empty() && anchored[e];
  };
  auto support_of = [&](EdgeId e) {
    const EdgeEndpoints ends = g.Edge(e);
    uint32_t s = 0;
    for (const AdjEntry& a : g.Neighbors(ends.u)) {
      if (a.neighbor == ends.v || !alive[a.edge]) continue;
      const EdgeId other = g.FindEdge(ends.v, a.neighbor);
      if (other != kInvalidEdge && alive[other]) ++s;
    }
    return s;
  };
  uint32_t remaining = 0;
  for (EdgeId e = 0; e < m; ++e) {
    if (!is_anchored(e)) ++remaining;
  }
  uint32_t k = 2;
  while (remaining > 0) {
    bool removed_any = true;
    while (removed_any) {
      removed_any = false;
      for (EdgeId e = 0; e < m; ++e) {
        if (!alive[e] || is_anchored(e)) continue;
        if (support_of(e) <= k - 2) {
          alive[e] = false;
          trussness[e] = k;
          --remaining;
          removed_any = true;
        }
      }
    }
    ++k;
  }
  for (EdgeId e = 0; e < m; ++e) {
    if (is_anchored(e)) trussness[e] = kAnchoredTrussness;
  }
  return trussness;
}

}  // namespace atr

#endif  // ATR_TESTS_TEST_HELPERS_H_
