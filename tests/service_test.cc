// Tests for the AtrService multi-graph service layer: snapshot isolation
// (concurrent mixed jobs byte-identical to serial AtrEngine runs, exactly
// one decomposition build per graph), the async job lifecycle (Wait /
// TryGet / Cancel / Progress), cancellation and wall-clock early stop
// across every registered solver, graph catalog semantics under eviction,
// and copy-on-write session checkouts. The whole file runs under the
// nightly TSan leg.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/service.h"
#include "graph/generators/generators.h"
#include "tests/test_helpers.h"
#include "truss/gain.h"

namespace atr {
namespace {

// One-shot signal for deterministic cross-thread choreography (progress
// callbacks run on pool workers).
class Latch {
 public:
  void Set() {
    std::lock_guard<std::mutex> lock(mu_);
    set_ = true;
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return set_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool set_ = false;
};

// A clustered graph big enough that every solver (including sup/tur's
// top-20% pools) has room to work.
Graph MakeServiceGraph(uint64_t seed = 11) {
  return HolmeKimGraph(60, 4, 0.7, seed);
}

struct JobSpec {
  const char* solver;
  SolverOptions options;
};

std::vector<JobSpec> MixedSpecs() {
  std::vector<JobSpec> specs;
  {
    SolverOptions o;
    o.budget = 3;
    specs.push_back({"gas", o});
  }
  {
    SolverOptions o;
    o.budget = 2;
    specs.push_back({"base+", o});
  }
  {
    SolverOptions o;
    o.budget = 2;
    o.use_incremental = true;
    specs.push_back({"base", o});
  }
  {
    SolverOptions o;
    o.budget = 4;
    o.budget_checkpoints = {1, 2, 4};
    specs.push_back({"gas", o});
  }
  {
    SolverOptions o;
    o.budget = 1;
    specs.push_back({"exact", o});
  }
  {
    SolverOptions o;
    o.budget = 2;
    o.trials = 40;
    o.seed = 9;
    specs.push_back({"rand", o});
  }
  {
    SolverOptions o;
    o.budget = 2;
    o.trials = 25;
    o.seed = 5;
    specs.push_back({"sup", o});
  }
  {
    SolverOptions o;
    o.budget = 2;
    o.trials = 25;
    o.seed = 6;
    specs.push_back({"tur", o});
  }
  {
    SolverOptions o;
    o.budget = 2;
    specs.push_back({"akt:4", o});
  }
  return specs;
}

void ExpectSameResult(const SolveResult& expected, const SolveResult& actual,
                      const std::string& label) {
  EXPECT_EQ(expected.anchor_edges, actual.anchor_edges) << label;
  EXPECT_EQ(expected.anchor_vertices, actual.anchor_vertices) << label;
  EXPECT_EQ(expected.total_gain, actual.total_gain) << label;
  EXPECT_EQ(expected.gain_at_checkpoint, actual.gain_at_checkpoint) << label;
  ASSERT_EQ(expected.rounds.size(), actual.rounds.size()) << label;
  for (size_t i = 0; i < expected.rounds.size(); ++i) {
    EXPECT_EQ(expected.rounds[i].anchor, actual.rounds[i].anchor)
        << label << " round " << i;
    EXPECT_EQ(expected.rounds[i].gain, actual.rounds[i].gain)
        << label << " round " << i;
  }
}

// --- Catalog --------------------------------------------------------------

TEST(ServiceCatalog, AddRemoveAndLookupErrors) {
  AtrService service;
  ASSERT_TRUE(service.AddGraph("a", MakeServiceGraph(1)).ok());
  ASSERT_TRUE(service.AddGraph("b", MakeServiceGraph(2)).ok());

  EXPECT_EQ(service.AddGraph("a", MakeServiceGraph(3)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.GraphNames(), (std::vector<std::string>{"a", "b"}));

  SolverOptions options;
  options.budget = 1;
  EXPECT_EQ(service.Submit("nope", "gas", options).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Submit("a", "no-such-solver", options).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Submit("a", "akt:x", options).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_TRUE(service.RemoveGraph("a").ok());
  EXPECT_EQ(service.RemoveGraph("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(service.GraphNames(), (std::vector<std::string>{"b"}));
}

TEST(ServiceCatalog, InfoTracksLazySingleBuild) {
  AtrService service;
  const Graph g = MakeServiceGraph();
  const uint32_t expected_max = ComputeTrussDecomposition(g).max_trussness;
  ASSERT_TRUE(service.AddGraph("g", g).ok());

  StatusOr<AtrService::GraphInfo> before = service.Info("g");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->decomposition_builds, 0u);  // AddGraph computes nothing
  EXPECT_EQ(before->num_edges, g.NumEdges());

  SolverOptions options;
  options.budget = 1;
  StatusOr<JobHandle> job = service.Submit("g", "gas", options);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(job->Wait().ok());

  StatusOr<AtrService::GraphInfo> after = service.Info("g");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->decomposition_builds, 1u);
  EXPECT_EQ(after->max_trussness, expected_max);
  EXPECT_EQ(after->jobs_submitted, 1u);
}

// --- Snapshot isolation (the acceptance property) -------------------------

TEST(ServiceSnapshotIsolation, ConcurrentMixedJobsMatchSerialEngine) {
  const Graph g = MakeServiceGraph();
  const std::vector<JobSpec> specs = MixedSpecs();

  // Serial oracle: one single-session engine, one solve per spec.
  std::vector<SolveResult> oracle;
  {
    AtrEngine engine(MakeServiceGraph());
    for (const JobSpec& spec : specs) {
      StatusOr<SolveResult> result = engine.Run(spec.solver, spec.options);
      ASSERT_TRUE(result.ok()) << spec.solver << ": "
                               << result.status().message();
      oracle.push_back(*std::move(result));
    }
  }

  AtrService::Options service_options;
  service_options.workers = 4;
  service_options.queue_capacity = 128;
  AtrService service(service_options);
  ASSERT_TRUE(service.AddGraph("g", g).ok());

  // 6 submitter threads x all specs, all against one graph.
  constexpr int kSubmitters = 6;
  std::vector<std::vector<JobHandle>> handles(kSubmitters);
  {
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (const JobSpec& spec : specs) {
          StatusOr<JobHandle> job =
              service.Submit("g", spec.solver, spec.options);
          ASSERT_TRUE(job.ok()) << job.status().message();
          handles[t].push_back(*job);
        }
      });
    }
    for (std::thread& t : submitters) t.join();
  }

  for (int t = 0; t < kSubmitters; ++t) {
    for (size_t s = 0; s < specs.size(); ++s) {
      StatusOr<SolveResult> result = handles[t][s].Wait();
      ASSERT_TRUE(result.ok()) << specs[s].solver << ": "
                               << result.status().message();
      EXPECT_FALSE(result->stopped_early) << specs[s].solver;
      ExpectSameResult(oracle[s], *result,
                       std::string(specs[s].solver) + " submitter " +
                           std::to_string(t));
    }
  }

  // The whole barrage paid for exactly one decomposition.
  StatusOr<AtrService::GraphInfo> info = service.Info("g");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->decomposition_builds, 1u);
  EXPECT_EQ(info->jobs_submitted,
            static_cast<uint64_t>(kSubmitters * specs.size()));
}

// The CI concurrency smoke: 8 jobs across 2 graphs, asserted quickly.
TEST(ServiceSmoke, EightJobsTwoGraphs) {
  AtrService::Options options;
  options.workers = 8;
  AtrService service(options);
  ASSERT_TRUE(service.AddGraph("one", MakeServiceGraph(21)).ok());
  ASSERT_TRUE(service.AddGraph("two", MakeServiceGraph(22)).ok());

  std::vector<JobHandle> jobs;
  for (const char* graph : {"one", "two"}) {
    for (const char* solver : {"gas", "base+", "tur", "akt:4"}) {
      SolverOptions o;
      o.budget = 2;
      StatusOr<JobHandle> job = service.Submit(graph, solver, o);
      ASSERT_TRUE(job.ok()) << job.status().message();
      jobs.push_back(*job);
    }
  }
  for (JobHandle& job : jobs) {
    StatusOr<SolveResult> result = job.Wait();
    ASSERT_TRUE(result.ok()) << job.solver_name() << " on "
                             << job.graph_name() << ": "
                             << result.status().message();
    EXPECT_GT(result->total_gain, 0u);
  }
  for (const char* graph : {"one", "two"}) {
    StatusOr<AtrService::GraphInfo> info = service.Info(graph);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->decomposition_builds, 1u) << graph;
  }
}

// --- Job lifecycle --------------------------------------------------------

TEST(ServiceJobs, WaitTryGetAndProgress) {
  AtrService service;
  ASSERT_TRUE(service.AddGraph("g", MakeServiceGraph()).ok());

  Latch running;
  Latch release;
  SolverOptions options;
  options.budget = 2;
  options.progress = [&](const SolveProgress& progress) {
    if (progress.round == 1) {
      running.Set();
      release.Wait();
    }
    return true;
  };
  StatusOr<JobHandle> job = service.Submit("g", "gas", options);
  ASSERT_TRUE(job.ok());
  EXPECT_GT(job->id(), 0u);
  EXPECT_EQ(job->graph_name(), "g");
  EXPECT_EQ(job->solver_name(), "gas");

  running.Wait();  // the job is mid-solve, parked in round 1's callback
  EXPECT_FALSE(job->Done());
  EXPECT_EQ(job->TryGet(), std::nullopt);
  EXPECT_EQ(job->state(), JobHandle::State::kRunning);

  release.Set();
  StatusOr<SolveResult> result = job->Wait();
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(job->Done());
  EXPECT_EQ(job->state(), JobHandle::State::kDone);
  ASSERT_TRUE(job->TryGet().has_value());
  EXPECT_EQ((*job->TryGet())->total_gain, result->total_gain);

  // The polled snapshot saw the final round.
  const SolveProgress last = job->Progress();
  EXPECT_EQ(last.solver, "gas");
  EXPECT_EQ(last.round, 2u);
  EXPECT_EQ(last.budget, 2u);
}

TEST(ServiceJobs, EmptyHandleIsInert) {
  JobHandle empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.Done());
  EXPECT_FALSE(empty.Cancel());
  EXPECT_EQ(empty.TryGet(), std::nullopt);
  EXPECT_EQ(empty.Wait().status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceJobs, CancelledWhileQueuedNeverRuns) {
  AtrService::Options options;
  options.workers = 1;  // serialize: the latch job occupies the one worker
  AtrService service(options);
  ASSERT_TRUE(service.AddGraph("g", MakeServiceGraph()).ok());

  Latch running;
  Latch release;
  SolverOptions blocker_options;
  blocker_options.budget = 1;
  blocker_options.progress = [&](const SolveProgress&) {
    running.Set();
    release.Wait();
    return true;
  };
  StatusOr<JobHandle> blocker = service.Submit("g", "gas", blocker_options);
  ASSERT_TRUE(blocker.ok());
  running.Wait();

  SolverOptions queued_options;
  queued_options.budget = 1;
  StatusOr<JobHandle> queued = service.Submit("g", "base+", queued_options);
  ASSERT_TRUE(queued.ok());
  EXPECT_EQ(queued->state(), JobHandle::State::kQueued);
  EXPECT_TRUE(queued->Cancel());

  release.Set();
  ASSERT_TRUE(blocker->Wait().ok());
  StatusOr<SolveResult> cancelled = queued->Wait();
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(queued->state(), JobHandle::State::kCancelled);
  EXPECT_FALSE(queued->Cancel());  // already finished
}

// --- Cancellation and early stop across every registered solver -----------

// JobHandle::Cancel raised between rounds: every round-structured solver
// stops after the round in flight and returns a valid prefix of its full
// run.
TEST(ServiceCancellation, MidRoundCancelLeavesValidPrefix) {
  // Small graph: the test also runs the full-budget oracle for BASE (every
  // candidate brute-forced) and Exact (subset enumeration per checkpoint).
  const Graph g = HolmeKimGraph(30, 3, 0.7, 11);
  const TrussDecomposition base = ComputeTrussDecomposition(g);

  struct Case {
    const char* solver;
    SolverOptions options;
  };
  std::vector<Case> cases;
  for (const char* solver : {"base", "base+", "gas", "akt:4"}) {
    SolverOptions o;
    o.budget = 4;
    cases.push_back({solver, o});
  }
  {
    SolverOptions o;
    o.budget = 2;
    o.budget_checkpoints = {1, 2};
    cases.push_back({"exact", o});
  }

  for (Case& c : cases) {
    AtrService service;
    ASSERT_TRUE(service.AddGraph("g", g).ok());

    // Full-run oracle for prefix checks.
    AtrEngine engine(g, base);
    StatusOr<SolveResult> full = engine.Run(c.solver, c.options);
    ASSERT_TRUE(full.ok()) << c.solver;

    Latch first_round;
    Latch cancel_issued;
    c.options.progress = [&](const SolveProgress& progress) {
      if (progress.round == 1) {
        first_round.Set();
        cancel_issued.Wait();
      }
      return true;
    };
    StatusOr<JobHandle> job = service.Submit("g", c.solver, c.options);
    ASSERT_TRUE(job.ok()) << c.solver;
    first_round.Wait();
    EXPECT_TRUE(job->Cancel()) << c.solver;
    cancel_issued.Set();

    StatusOr<SolveResult> result = job->Wait();
    ASSERT_TRUE(result.ok()) << c.solver << ": "
                             << result.status().message();
    EXPECT_TRUE(result->stopped_early) << c.solver;

    if (std::string(c.solver) == "exact") {
      // Independent checkpoint runs: the completed prefix matches.
      ASSERT_EQ(result->gain_at_checkpoint.size(), 1u);
      EXPECT_EQ(result->gain_at_checkpoint[0], full->gain_at_checkpoint[0]);
    } else if (std::string(c.solver) == "akt:4") {
      ASSERT_EQ(result->anchor_vertices.size(), 1u);
      EXPECT_EQ(result->anchor_vertices[0], full->anchor_vertices[0]);
    } else {
      // The greedy prefix equals the full run's first round, and its
      // reported gain is the true trussness gain of that prefix.
      ASSERT_EQ(result->anchor_edges.size(), 1u);
      EXPECT_EQ(result->anchor_edges[0], full->anchor_edges[0]) << c.solver;
      EXPECT_EQ(result->total_gain,
                TrussnessGain(g, base, {}, result->anchor_edges))
          << c.solver;
    }
  }
}

// A caller-owned SolverOptions::cancel raised before the job runs stops
// every solver — including the randomized trial loops, which have no round
// structure — with a valid stopped_early result.
TEST(ServiceCancellation, PresetUserCancelFlagStopsEverySolver) {
  const Graph g = MakeServiceGraph();
  AtrService service;
  ASSERT_TRUE(service.AddGraph("g", g).ok());

  std::atomic<bool> cancel{true};
  for (const char* solver :
       {"base", "base+", "gas", "exact", "rand", "sup", "tur", "akt:4"}) {
    SolverOptions options;
    options.budget = 2;
    options.trials = 30;
    options.cancel = &cancel;
    StatusOr<JobHandle> job = service.Submit("g", solver, options);
    ASSERT_TRUE(job.ok()) << solver;
    StatusOr<SolveResult> result = job->Wait();
    ASSERT_TRUE(result.ok()) << solver << ": " << result.status().message();
    EXPECT_TRUE(result->stopped_early) << solver;
    EXPECT_TRUE(result->anchor_edges.empty()) << solver;
    EXPECT_TRUE(result->anchor_vertices.empty()) << solver;
    EXPECT_EQ(result->total_gain, 0u) << solver;
  }
}

// An effectively-zero wall clock budget early-stops every solver while
// still returning a structurally valid (possibly empty) prefix.
TEST(ServiceCancellation, WallClockLimitStopsEverySolver) {
  const Graph g = MakeServiceGraph();
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  AtrService service;
  ASSERT_TRUE(service.AddGraph("g", g).ok());

  for (const char* solver :
       {"base", "base+", "gas", "rand", "sup", "tur", "akt:4"}) {
    SolverOptions options;
    options.budget = 4;
    options.trials = 30;
    options.wall_clock_limit_seconds = 1e-9;
    StatusOr<JobHandle> job = service.Submit("g", solver, options);
    ASSERT_TRUE(job.ok()) << solver;
    StatusOr<SolveResult> result = job->Wait();
    ASSERT_TRUE(result.ok()) << solver << ": " << result.status().message();
    EXPECT_TRUE(result->stopped_early) << solver;
    EXPECT_LE(result->anchor_edges.size(), 4u) << solver;
    if (!result->anchor_edges.empty()) {
      EXPECT_EQ(result->total_gain,
                TrussnessGain(g, base, {}, result->anchor_edges))
          << solver;
    }
  }
}

// --- Eviction vs. in-flight work ------------------------------------------

TEST(ServiceCatalog, RemoveGraphKeepsInFlightJobsAlive) {
  AtrService service;
  ASSERT_TRUE(service.AddGraph("g", MakeServiceGraph()).ok());

  Latch running;
  Latch release;
  SolverOptions options;
  options.budget = 2;
  options.progress = [&](const SolveProgress& progress) {
    if (progress.round == 1) {
      running.Set();
      release.Wait();
    }
    return true;
  };
  StatusOr<JobHandle> job = service.Submit("g", "gas", options);
  ASSERT_TRUE(job.ok());
  running.Wait();

  // Evict mid-solve: the job's shared snapshot keeps graph + decomposition
  // alive; only new submissions observe the removal.
  ASSERT_TRUE(service.RemoveGraph("g").ok());
  SolverOptions retry;
  retry.budget = 1;
  EXPECT_EQ(service.Submit("g", "gas", retry).status().code(),
            StatusCode::kNotFound);
  release.Set();

  StatusOr<SolveResult> result = job->Wait();
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->anchor_edges.size(), 2u);
}

// --- Copy-on-write session checkouts --------------------------------------

TEST(ServiceSessions, CheckoutIsCopyOnWriteAndIsolated) {
  const Graph g = MakeServiceGraph();
  AtrService service;
  ASSERT_TRUE(service.AddGraph("g", g).ok());

  StatusOr<std::unique_ptr<AtrEngine>> a = service.CheckoutSession("g");
  StatusOr<std::unique_ptr<AtrEngine>> b = service.CheckoutSession("g");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Checkouts are primed from the shared snapshot: no private builds.
  EXPECT_EQ((*a)->decomposition_builds(), 0u);
  EXPECT_EQ((*b)->decomposition_builds(), 0u);

  // Mutate session a; session b and the served snapshot stay pristine.
  ASSERT_TRUE((*a)->ApplyAnchor(0).ok());
  EXPECT_EQ((*a)->Decomposition().trussness[0], kAnchoredTrussness);
  EXPECT_NE((*b)->Decomposition().trussness[0], kAnchoredTrussness);

  StatusOr<GraphSnapshot> snapshot = service.Snapshot("g");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_NE(snapshot->decomposition->trussness[0], kAnchoredTrussness);

  // Reader jobs submitted while a mutated session exists are untouched.
  SolverOptions options;
  options.budget = 2;
  StatusOr<JobHandle> job = service.Submit("g", "gas", options);
  ASSERT_TRUE(job.ok());
  StatusOr<SolveResult> via_service = job->Wait();
  ASSERT_TRUE(via_service.ok());
  AtrEngine oracle(MakeServiceGraph());
  StatusOr<SolveResult> direct = oracle.Run("gas", options);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_service->anchor_edges, direct->anchor_edges);

  // The session solves its own residual problem on the committed state.
  StatusOr<SolveResult> residual = (*a)->Run("gas", options);
  ASSERT_TRUE(residual.ok()) << residual.status().message();

  // Still exactly one service-side build, ever.
  StatusOr<AtrService::GraphInfo> info = service.Info("g");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->decomposition_builds, 1u);
}

TEST(ServiceSessions, CheckoutSurvivesGraphRemoval) {
  AtrService service;
  ASSERT_TRUE(service.AddGraph("g", MakeServiceGraph()).ok());
  StatusOr<std::unique_ptr<AtrEngine>> session = service.CheckoutSession("g");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(service.RemoveGraph("g").ok());
  // The checkout owns its snapshot; the catalog entry is gone.
  ASSERT_TRUE((*session)->ApplyAnchor(0).ok());
  SolverOptions options;
  options.budget = 1;
  EXPECT_TRUE((*session)->Run("gas", options).ok());
  EXPECT_EQ(service.CheckoutSession("g").status().code(),
            StatusCode::kNotFound);
}

// A finished job must pin only its result: once the graph is removed,
// outstanding JobHandle copies do not keep the snapshot (graph +
// decomposition) or the solver alive.
TEST(ServiceJobs, FinishedJobsReleaseTheirSnapshot) {
  AtrService service;
  ASSERT_TRUE(service.AddGraph("g", MakeServiceGraph()).ok());
  std::weak_ptr<const Graph> graph_alive;
  {
    StatusOr<GraphSnapshot> snapshot = service.Snapshot("g");
    ASSERT_TRUE(snapshot.ok());
    graph_alive = snapshot->graph;
  }

  SolverOptions options;
  options.budget = 1;
  StatusOr<JobHandle> job = service.Submit("g", "gas", options);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(job->Wait().ok());
  service.Drain();  // the worker's stack references are gone too

  ASSERT_TRUE(service.RemoveGraph("g").ok());
  EXPECT_TRUE(graph_alive.expired());  // despite `job` still being held
  EXPECT_TRUE(job->Done());
  ASSERT_TRUE(job->TryGet().has_value());  // the result itself is retained
  EXPECT_EQ((*job->TryGet())->anchor_edges.size(), 1u);
}

// --- Streaming updates (UpdateGraph versioning) ---------------------------

// A delta against MakeServiceGraph: removes two existing edges and adds
// two absent ones (found by scanning vertex pairs).
GraphDelta MakeServiceDelta(const Graph& g) {
  GraphDelta delta;
  delta.remove.push_back(g.Edge(0));
  delta.remove.push_back(g.Edge(g.NumEdges() / 2));
  uint32_t found = 0;
  for (VertexId u = 0; u < g.NumVertices() && found < 2; ++u) {
    for (VertexId v = u + 1; v < g.NumVertices() && found < 2; ++v) {
      if (!g.HasEdge(u, v)) {
        delta.add.push_back(EdgeEndpoints{u, v});
        ++found;
      }
    }
  }
  return delta;
}

TEST(ServiceStreaming, UpdateGraphSeedsWithoutRebuilding) {
  AtrService service;
  const Graph original = MakeServiceGraph();
  ASSERT_TRUE(service.AddGraph("g", original).ok());

  // First use pays the one lazy build.
  StatusOr<GraphSnapshot> v1 = service.Snapshot("g");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->version, 1u);
  ASSERT_TRUE(service.Info("g").ok());
  EXPECT_EQ(service.Info("g")->decomposition_builds, 1u);

  const GraphDelta delta = MakeServiceDelta(*v1->graph);
  StatusOr<GraphSnapshot> v2 = service.UpdateGraph("g", delta);
  ASSERT_TRUE(v2.ok()) << v2.status().message();
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(v2->graph->NumEdges(), original.NumEdges());  // -2 +2

  // The seeded decomposition is byte-identical to a from-scratch one...
  const TrussDecomposition oracle = ComputeTrussDecomposition(*v2->graph);
  EXPECT_EQ(v2->decomposition->trussness, oracle.trussness);
  EXPECT_EQ(v2->decomposition->layer, oracle.layer);
  EXPECT_EQ(v2->decomposition->max_trussness, oracle.max_trussness);

  // ...yet the build counter did not move: the update reused the previous
  // version's state via the remap + incremental maintenance.
  StatusOr<AtrService::GraphInfo> info = service.Info("g");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->decomposition_builds, 1u);
  EXPECT_EQ(info->version, 2u);
  EXPECT_EQ(info->delta_updates, 1u);

  // The caller-held v1 snapshot still serves the old topology.
  EXPECT_EQ(v1->graph->NumEdges(), original.NumEdges());
  EXPECT_TRUE(v1->graph->HasEdge(original.Edge(0).u, original.Edge(0).v));
  EXPECT_FALSE(v2->graph->HasEdge(original.Edge(0).u, original.Edge(0).v));

  // A second update stacks on the first.
  StatusOr<GraphSnapshot> v3 =
      service.UpdateGraph("g", MakeServiceDelta(*v2->graph));
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3->version, 3u);
  EXPECT_EQ(service.Info("g")->decomposition_builds, 1u);
  EXPECT_EQ(service.Info("g")->delta_updates, 2u);
}

TEST(ServiceStreaming, UpdateGraphRejectsBadDeltasAndUnknownNames) {
  AtrService service;
  ASSERT_TRUE(service.AddGraph("g", MakeServiceGraph()).ok());
  GraphDelta delta;
  EXPECT_EQ(service.UpdateGraph("missing", delta).status().code(),
            StatusCode::kNotFound);
  delta.remove.push_back(EdgeEndpoints{0, 0});  // not an edge
  StatusOr<GraphSnapshot> bad = service.UpdateGraph("g", delta);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // The failed update published nothing — and validated the delta before
  // anything expensive: the never-used graph's lazy build did not run.
  EXPECT_EQ(service.Info("g")->version, 1u);
  EXPECT_EQ(service.Info("g")->delta_updates, 0u);
  EXPECT_EQ(service.Info("g")->decomposition_builds, 0u);
}

TEST(ServiceStreaming, JobsPinTheVersionCurrentAtSubmit) {
  AtrService::Options options;
  options.workers = 1;  // force strict queueing behind the running job
  AtrService service(options);
  const Graph original = MakeServiceGraph();
  ASSERT_TRUE(service.AddGraph("g", original).ok());

  // Job A blocks mid-run on a latch so jobs submitted after it stay
  // queued across the update.
  Latch started;
  Latch release;
  SolverOptions held;
  held.budget = 2;
  bool signalled = false;
  held.progress = [&](const SolveProgress&) {
    if (!signalled) {
      signalled = true;
      started.Set();
      release.Wait();
    }
    return true;
  };
  StatusOr<JobHandle> job_a = service.Submit("g", "gas", held);
  ASSERT_TRUE(job_a.ok());
  started.Wait();

  // Submitted while v1 is current: stays pinned to v1 even though it only
  // runs after the update lands.
  SolverOptions plain;
  plain.budget = 2;
  StatusOr<JobHandle> job_old = service.Submit("g", "gas", plain);
  ASSERT_TRUE(job_old.ok());

  StatusOr<GraphSnapshot> v2 =
      service.UpdateGraph("g", MakeServiceDelta(original));
  ASSERT_TRUE(v2.ok());

  StatusOr<JobHandle> job_new = service.Submit("g", "gas", plain);
  ASSERT_TRUE(job_new.ok());
  release.Set();

  StatusOr<SolveResult> old_result = job_old->Wait();
  ASSERT_TRUE(old_result.ok());
  StatusOr<SolveResult> new_result = job_new->Wait();
  ASSERT_TRUE(new_result.ok());

  // Serial engines over the pinned snapshots are the oracles.
  AtrEngine old_engine(original);
  StatusOr<SolveResult> old_expected = old_engine.Run("gas", plain);
  ASSERT_TRUE(old_expected.ok());
  ExpectSameResult(*old_expected, *old_result, "pinned v1 job");

  AtrEngine new_engine(*v2->graph,
                       TrussDecomposition(*v2->decomposition));
  StatusOr<SolveResult> new_expected = new_engine.Run("gas", plain);
  ASSERT_TRUE(new_expected.ok());
  ExpectSameResult(*new_expected, *new_result, "post-update job");
}

// Raced updates and submits must be linearizable and TSan-clean (this
// whole file runs under the nightly TSan leg): the updater publishes a
// chain of versions while submitters fire jobs; every job must complete
// ok against whichever version it pinned.
TEST(ServiceStreaming, ConcurrentUpdateGraphAndSubmit) {
  AtrService::Options service_options;
  service_options.workers = 3;
  AtrService service(service_options);
  const Graph original = MakeServiceGraph();
  ASSERT_TRUE(service.AddGraph("g", original).ok());
  ASSERT_TRUE(service.Snapshot("g").ok());  // pay the lazy build up front

  // The updater alternately removes and re-adds the same two edges, so
  // every delta is valid against the version it sees (updates serialize).
  const EdgeEndpoints ea = original.Edge(1);
  const EdgeEndpoints eb = original.Edge(2);
  std::atomic<bool> stop{false};
  std::thread updater([&] {
    bool removed = false;
    for (int i = 0; i < 12; ++i) {
      GraphDelta delta;
      if (removed) {
        delta.add = {ea, eb};
      } else {
        delta.remove = {ea, eb};
      }
      StatusOr<GraphSnapshot> next = service.UpdateGraph("g", delta);
      if (!next.ok()) {
        // Record and bail without skipping the stop below — an early
        // ASSERT return here would leave the submitters spinning forever.
        ADD_FAILURE() << next.status().message();
        break;
      }
      removed = !removed;
    }
    stop.store(true);
  });

  std::vector<std::thread> submitters;
  std::mutex jobs_mu;
  std::vector<JobHandle> jobs;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&, t] {
      SolverOptions o;
      o.budget = 1 + t;
      while (!stop.load()) {
        StatusOr<JobHandle> job = service.Submit("g", "gas", o);
        ASSERT_TRUE(job.ok());
        std::lock_guard<std::mutex> lock(jobs_mu);
        jobs.push_back(*job);
      }
    });
  }
  updater.join();
  for (std::thread& t : submitters) t.join();
  service.Drain();

  for (JobHandle& job : jobs) {
    StatusOr<SolveResult> result = job.Wait();
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_FALSE(result->anchor_edges.empty());
  }
  // Every job forked from a seeded snapshot; the one from-scratch build
  // stays the one from-scratch build.
  EXPECT_EQ(service.Info("g")->decomposition_builds, 1u);
  EXPECT_EQ(service.Info("g")->delta_updates, 12u);
}

TEST(ServiceStreaming, CheckoutSessionInsertEdgeRoundTrip) {
  AtrService service;
  ASSERT_TRUE(service.AddGraph("g", MakeServiceGraph()).ok());
  StatusOr<std::unique_ptr<AtrEngine>> session = service.CheckoutSession("g");
  ASSERT_TRUE(session.ok());
  AtrEngine& engine = **session;
  const EdgeEndpoints ends = engine.graph().Edge(3);
  ASSERT_TRUE(engine.RemoveEdge(3).ok());
  StatusOr<uint32_t> trussness = engine.InsertEdge(ends.u, ends.v);
  ASSERT_TRUE(trussness.ok());
  // Same alive set again: the session matches the untouched snapshot.
  StatusOr<GraphSnapshot> snapshot = service.Snapshot("g");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(engine.Decomposition().trussness, snapshot->decomposition->trussness);
  EXPECT_EQ(*trussness, snapshot->decomposition->trussness[3]);
}

TEST(ServiceStreaming, FailedInsertProbeLeavesSessionPristine) {
  // The documented arrival flow probes InsertEdge and falls back to
  // Graph::ApplyEdits on kNotFound; the failed probe must not create a
  // session (which would make non-greedy solvers reject the engine).
  AtrService service;
  ASSERT_TRUE(service.AddGraph("g", MakeServiceGraph()).ok());
  StatusOr<std::unique_ptr<AtrEngine>> session = service.CheckoutSession("g");
  ASSERT_TRUE(session.ok());
  AtrEngine& engine = **session;
  StatusOr<uint32_t> no_slot =
      engine.InsertEdge(0, engine.graph().NumVertices() + 3);
  EXPECT_EQ(no_slot.status().code(), StatusCode::kNotFound);
  const EdgeEndpoints alive = engine.graph().Edge(0);
  StatusOr<uint32_t> already = engine.InsertEdge(alive.u, alive.v);
  EXPECT_EQ(already.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(engine.HasSessionMutations());
  SolverOptions options;
  options.budget = 1;
  EXPECT_TRUE(engine.Run("exact", options).ok());  // not a mutated session
}

// Drain really waits for everything submitted so far.
TEST(ServiceJobs, DrainWaitsForAllJobs) {
  AtrService::Options options;
  options.workers = 2;
  AtrService service(options);
  ASSERT_TRUE(service.AddGraph("g", MakeServiceGraph()).ok());

  std::vector<JobHandle> jobs;
  for (int i = 0; i < 6; ++i) {
    SolverOptions o;
    o.budget = 1 + i % 3;
    StatusOr<JobHandle> job = service.Submit("g", "gas", o);
    ASSERT_TRUE(job.ok());
    jobs.push_back(*job);
  }
  service.Drain();
  for (JobHandle& job : jobs) EXPECT_TRUE(job.Done());
}

TEST(ServiceStreaming, DeltaChainLengthGrowsUntilReset) {
  AtrService service;
  const Graph g = MakeServiceGraph();
  ASSERT_TRUE(service.AddGraph("g", g).ok());
  EXPECT_EQ(service.Info("g")->delta_chain_length, 0u);

  StatusOr<GraphSnapshot> v2 = service.UpdateGraph("g", MakeServiceDelta(g));
  ASSERT_TRUE(v2.ok());
  StatusOr<GraphSnapshot> v3 =
      service.UpdateGraph("g", MakeServiceDelta(*v2->graph));
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(service.Info("g")->delta_chain_length, 2u);

  // The compaction hook resets the chain counter, not the version.
  ASSERT_TRUE(service.ResetDeltaChain("g").ok());
  EXPECT_EQ(service.Info("g")->delta_chain_length, 0u);
  EXPECT_EQ(service.Info("g")->version, 3u);

  StatusOr<GraphSnapshot> v4 =
      service.UpdateGraph("g", MakeServiceDelta(*v3->graph));
  ASSERT_TRUE(v4.ok());
  EXPECT_EQ(service.Info("g")->delta_chain_length, 1u);

  EXPECT_EQ(service.ResetDeltaChain("absent").code(), StatusCode::kNotFound);
}

TEST(ServiceStreaming, UpdateListenerIsWriteAhead) {
  AtrService service;
  const Graph g = MakeServiceGraph();
  ASSERT_TRUE(service.AddGraph("g", g).ok());

  // A failing listener aborts the update: the version is never published.
  std::vector<uint64_t> seen;
  service.SetUpdateListener(
      [&seen](const std::string&, uint64_t version, const GraphDelta&) {
        seen.push_back(version);
        return Status::Internal("log append failed");
      });
  StatusOr<GraphSnapshot> rejected =
      service.UpdateGraph("g", MakeServiceDelta(g));
  EXPECT_EQ(rejected.status().code(), StatusCode::kInternal);
  EXPECT_EQ(seen, std::vector<uint64_t>{2});
  EXPECT_EQ(service.Info("g")->version, 1u);
  EXPECT_EQ(service.Info("g")->delta_chain_length, 0u);

  // A succeeding listener observes the version about to be published.
  service.SetUpdateListener(
      [&seen](const std::string&, uint64_t version, const GraphDelta&) {
        seen.push_back(version);
        return Status::Ok();
      });
  ASSERT_TRUE(service.UpdateGraph("g", MakeServiceDelta(g)).ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{2, 2}));
  EXPECT_EQ(service.Info("g")->version, 2u);
  service.SetUpdateListener(nullptr);
}

TEST(ServiceCatalog, RestoreGraphIsBornBuilt) {
  const Graph g = MakeServiceGraph();
  TrussDecomposition decomposition = ComputeTrussDecomposition(g);
  const TrussDecomposition oracle = decomposition;

  AtrService service;
  ASSERT_TRUE(service
                  .RestoreGraph("g", std::make_shared<const Graph>(g),
                                std::move(decomposition), /*version=*/5,
                                /*delta_chain_length=*/2)
                  .ok());

  StatusOr<AtrService::GraphInfo> info = service.Info("g");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 5u);
  EXPECT_EQ(info->delta_chain_length, 2u);
  // The restore contract: the decomposition arrived precomputed, so the
  // builds counter must never move — not on restore, not on first use.
  EXPECT_EQ(info->decomposition_builds, 0u);

  StatusOr<GraphSnapshot> snapshot = service.Snapshot("g");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->version, 5u);
  EXPECT_EQ(snapshot->decomposition->trussness, oracle.trussness);
  EXPECT_EQ(service.Info("g")->decomposition_builds, 0u);

  // Updates on a restored graph seed incrementally, like any other.
  ASSERT_TRUE(service.UpdateGraph("g", MakeServiceDelta(g)).ok());
  EXPECT_EQ(service.Info("g")->version, 6u);
  EXPECT_EQ(service.Info("g")->delta_chain_length, 3u);
  EXPECT_EQ(service.Info("g")->decomposition_builds, 0u);

  // Name collisions and shape mismatches are rejected up front.
  EXPECT_EQ(service
                .RestoreGraph("g", std::make_shared<const Graph>(g),
                              ComputeTrussDecomposition(g), 1)
                .code(),
            StatusCode::kFailedPrecondition);
  TrussDecomposition wrong_shape = ComputeTrussDecomposition(g);
  wrong_shape.trussness.pop_back();
  EXPECT_EQ(service
                .RestoreGraph("other", std::make_shared<const Graph>(g),
                              std::move(wrong_shape), 1)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ServiceJobs, TrySubmitRejectsOnlyWhileSaturated) {
  AtrService::Options options;
  options.workers = 1;
  options.queue_capacity = 1;
  AtrService service(options);
  ASSERT_TRUE(service.AddGraph("g", MakeServiceGraph()).ok());

  // Park the lone worker inside a solve so the queue backs up.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  SolverOptions blocked;
  blocked.budget = 2;
  blocked.progress = [&](const SolveProgress&) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    return true;
  };
  StatusOr<JobHandle> running = service.Submit("g", "gas", blocked);
  ASSERT_TRUE(running.ok());
  while (running->state() == JobHandle::State::kQueued) {
    std::this_thread::yield();
  }

  SolverOptions quick;
  quick.budget = 1;
  StatusOr<JobHandle> pending = service.TrySubmit("g", "gas", quick);
  ASSERT_TRUE(pending.ok());  // fills the single pending slot
  EXPECT_EQ(service.TrySubmit("g", "gas", quick).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(service.QueueLoad(), 2u);  // one running + one pending

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  ASSERT_TRUE(running->Wait().ok());
  ASSERT_TRUE(pending->Wait().ok());

  StatusOr<JobHandle> after = service.TrySubmit("g", "gas", quick);
  ASSERT_TRUE(after.ok());  // space again
  EXPECT_TRUE(after->Wait().ok());
}

}  // namespace
}  // namespace atr
