// Unit and property tests for truss decomposition (t(e), l(e), anchors).

#include "truss/decomposition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/generators/generators.h"
#include "graph/graph.h"
#include "graph/triangles.h"
#include "tests/paper_fixtures.h"
#include "tests/test_helpers.h"
#include "truss/core_decompose.h"

namespace atr {
namespace {

TEST(TrussDecomposition, EmptyGraph) {
  Graph g = GraphBuilder(3).Build();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  EXPECT_EQ(d.trussness.size(), 0u);
  EXPECT_EQ(d.max_trussness, 2u);
}

TEST(TrussDecomposition, SingleEdgeHasTrussnessTwo) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  EXPECT_EQ(d.trussness[0], 2u);
  EXPECT_EQ(d.max_trussness, 2u);
}

TEST(TrussDecomposition, TriangleHasTrussnessThree) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  Graph g = b.Build();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_EQ(d.trussness[e], 3u);
  EXPECT_EQ(d.max_trussness, 3u);
}

TEST(TrussDecomposition, CliqueTrussnessEqualsSize) {
  // A k-clique is a k-truss: every edge has trussness k.
  for (uint32_t k = 3; k <= 8; ++k) {
    GraphBuilder b(k);
    for (VertexId u = 0; u < k; ++u) {
      for (VertexId v = u + 1; v < k; ++v) b.AddEdge(u, v);
    }
    Graph g = b.Build();
    const TrussDecomposition d = ComputeTrussDecomposition(g);
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      EXPECT_EQ(d.trussness[e], k) << "clique size " << k;
    }
  }
}

TEST(TrussDecomposition, Fig3TrussnessValues) {
  const Graph g = MakeFig3Graph();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  // 3-hull.
  EXPECT_EQ(d.trussness[Fig3Edge(g, 5, 8)], 3u);
  EXPECT_EQ(d.trussness[Fig3Edge(g, 7, 8)], 3u);
  EXPECT_EQ(d.trussness[Fig3Edge(g, 8, 9)], 3u);
  EXPECT_EQ(d.trussness[Fig3Edge(g, 9, 10)], 3u);
  // 4-truss components.
  EXPECT_EQ(d.trussness[Fig3Edge(g, 1, 2)], 4u);
  EXPECT_EQ(d.trussness[Fig3Edge(g, 5, 7)], 4u);
  EXPECT_EQ(d.trussness[Fig3Edge(g, 8, 10)], 4u);
  EXPECT_EQ(d.trussness[Fig3Edge(g, 11, 12)], 4u);
  // 5-truss clique.
  EXPECT_EQ(d.trussness[Fig3Edge(g, 3, 4)], 5u);
  EXPECT_EQ(d.trussness[Fig3Edge(g, 5, 13)], 5u);
  EXPECT_EQ(d.max_trussness, 5u);
}

TEST(TrussDecomposition, Fig3DeletionLayers) {
  // The paper's Example 2: L1={(v9,v10)}, L2={(v8,v9)}, L3={(v7,v8)},
  // L4={(v5,v8)} within the 3-hull.
  const Graph g = MakeFig3Graph();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  EXPECT_EQ(d.layer[Fig3Edge(g, 9, 10)], 1u);
  EXPECT_EQ(d.layer[Fig3Edge(g, 8, 9)], 2u);
  EXPECT_EQ(d.layer[Fig3Edge(g, 7, 8)], 3u);
  EXPECT_EQ(d.layer[Fig3Edge(g, 5, 8)], 4u);
}

TEST(TrussDecomposition, Fig3PrecedenceOrder) {
  const Graph g = MakeFig3Graph();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  const EdgeId e910 = Fig3Edge(g, 9, 10);
  const EdgeId e89 = Fig3Edge(g, 8, 9);
  const EdgeId e34 = Fig3Edge(g, 3, 4);
  EXPECT_TRUE(d.Precedes(e910, e89));
  EXPECT_FALSE(d.Precedes(e89, e910));
  EXPECT_TRUE(d.Precedes(e910, e34));  // lower trussness precedes
  EXPECT_TRUE(d.StrictlyPrecedes(e910, e89));
  EXPECT_FALSE(d.StrictlyPrecedes(e910, e910));
  EXPECT_TRUE(d.Precedes(e910, e910));  // non-strict admits equality
}

TEST(TrussDecomposition, AnchoredEdgeIsNeverPeeled) {
  // Path of triangles: anchoring the weakest edge keeps it out of hulls.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  std::vector<bool> anchored(g.NumEdges(), false);
  const EdgeId dangling = g.FindEdge(2, 3);
  anchored[dangling] = true;
  const TrussDecomposition d = ComputeTrussDecomposition(g, anchored);
  EXPECT_TRUE(d.IsAnchored(dangling));
  EXPECT_EQ(d.trussness[dangling], kAnchoredTrussness);
}

TEST(TrussDecomposition, AnchoringRaisesNeighborTrussness) {
  // Two triangles sharing edge (0,1); all edges trussness 3. Anchoring one
  // edge of the first triangle cannot raise anything (supports unchanged),
  // but anchored support semantics must keep the anchor countable forever.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 3);
  Graph g = b.Build();
  const TrussDecomposition before = ComputeTrussDecomposition(g);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(before.trussness[e], 3u);
  }
}

// Property sweep: fast decomposition equals the naive reference, with and
// without anchors.
class DecompositionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecompositionPropertyTest, MatchesNaiveReference) {
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  const TrussDecomposition fast = ComputeTrussDecomposition(g);
  const std::vector<uint32_t> naive = NaiveTrussness(g);
  ASSERT_EQ(fast.trussness.size(), naive.size());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(fast.trussness[e], naive[e]) << "edge " << e << " seed " << seed;
  }
}

TEST_P(DecompositionPropertyTest, MatchesNaiveReferenceWithAnchors) {
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  if (g.NumEdges() < 4) return;
  std::vector<bool> anchored(g.NumEdges(), false);
  // Deterministic pseudo-random anchor picks.
  anchored[seed % g.NumEdges()] = true;
  anchored[(seed * 31 + 7) % g.NumEdges()] = true;
  const TrussDecomposition fast = ComputeTrussDecomposition(g, anchored);
  const std::vector<uint32_t> naive = NaiveTrussness(g, anchored);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(fast.trussness[e], naive[e]) << "edge " << e << " seed " << seed;
  }
}

TEST_P(DecompositionPropertyTest, LayersPartitionHullsContiguously) {
  // Within every k-hull, layers are 1..max and every layer is non-empty.
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  std::vector<std::vector<uint32_t>> layers_by_k(d.max_trussness + 1);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_GE(d.trussness[e], 2u);
    EXPECT_GE(d.layer[e], 1u);
    layers_by_k[d.trussness[e]].push_back(d.layer[e]);
  }
  for (uint32_t k = 2; k <= d.max_trussness; ++k) {
    if (layers_by_k[k].empty()) continue;
    uint32_t max_layer = 0;
    for (uint32_t l : layers_by_k[k]) max_layer = std::max(max_layer, l);
    std::vector<bool> seen(max_layer + 1, false);
    for (uint32_t l : layers_by_k[k]) seen[l] = true;
    for (uint32_t l = 1; l <= max_layer; ++l) {
      EXPECT_TRUE(seen[l]) << "k=" << k << " layer " << l << " empty";
    }
  }
}

TEST_P(DecompositionPropertyTest, SubsetDecompositionMatchesInducedGraph) {
  // Decomposition restricted to an edge subset must match decomposing the
  // subset as its own graph.
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  if (g.NumEdges() < 10) return;
  std::vector<EdgeId> subset;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if ((seed + e) % 3 != 0) subset.push_back(e);
  }
  const TrussDecomposition on_subset =
      ComputeTrussDecompositionOnSubset(g, {}, subset);
  GraphBuilder b(g.NumVertices());
  for (EdgeId e : subset) b.AddEdge(g.Edge(e).u, g.Edge(e).v);
  Graph sub = b.Build();
  const TrussDecomposition direct = ComputeTrussDecomposition(sub);
  for (EdgeId e : subset) {
    const EdgeId in_sub = sub.FindEdge(g.Edge(e).u, g.Edge(e).v);
    ASSERT_NE(in_sub, kInvalidEdge);
    EXPECT_EQ(on_subset.trussness[e], direct.trussness[in_sub]);
    EXPECT_EQ(on_subset.layer[e], direct.layer[in_sub]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionPropertyTest,
                         ::testing::Range<uint64_t>(0, 24));

TEST(TrussDecomposition, SubsetSentinelNeverAliasesRealTrussness) {
  // kTrussnessNotComputed is 0, and real trussness of any decomposed edge
  // is >= 2 (a triangle-free edge still sits in the trivial 2-truss), so a
  // subset re-decompose must report the sentinel exactly on the removed
  // edges — never 0 for an in-subset edge, never a real value for an
  // out-of-subset one.
  const Graph g = MakeFig3Graph();
  std::vector<EdgeId> subset;
  std::vector<bool> in_subset(g.NumEdges(), false);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (e % 3 != 0) {
      subset.push_back(e);
      in_subset[e] = true;
    }
  }
  const TrussDecomposition d =
      ComputeTrussDecompositionOnSubset(g, {}, subset);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (in_subset[e]) {
      EXPECT_TRUE(d.IsComputed(e)) << "edge " << e;
      EXPECT_GE(d.trussness[e], 2u) << "edge " << e;
      EXPECT_GE(d.layer[e], 1u) << "edge " << e;
    } else {
      EXPECT_FALSE(d.IsComputed(e)) << "edge " << e;
      EXPECT_EQ(d.trussness[e], kTrussnessNotComputed) << "edge " << e;
      EXPECT_EQ(d.layer[e], 0u) << "edge " << e;
    }
  }
  // AliveSubsetOf round-trips the subset it was computed over.
  EXPECT_EQ(AliveSubsetOf(d), subset);
}

TEST(TrussDecomposition, TriangleFreeSubsetEdgeReadsTwoNotSentinel) {
  // Regression for the aliasing trap: an in-subset edge whose triangles
  // were all cut away by the subset must read trussness 2, not the
  // sentinel 0 a naive "no support => not computed" implementation yields.
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  const Graph g = b.Build();
  const std::vector<EdgeId> subset = {g.FindEdge(0, 1), g.FindEdge(1, 2)};
  const TrussDecomposition d =
      ComputeTrussDecompositionOnSubset(g, {}, subset);
  for (EdgeId e : subset) {
    EXPECT_TRUE(d.IsComputed(e));
    EXPECT_EQ(d.trussness[e], 2u);
  }
  EXPECT_FALSE(d.IsComputed(g.FindEdge(0, 2)));
}

TEST(TrussDecomposition, AnchoredSubsetEdgeKeepsAnchorSentinel) {
  // Anchored edges inside the subset read kAnchoredTrussness; anchored
  // edges OUTSIDE the subset are absent and read kTrussnessNotComputed
  // (being anchored cannot resurrect a removed edge).
  const Graph g = MakeFig3Graph();
  std::vector<bool> anchored(g.NumEdges(), false);
  const EdgeId in_subset_anchor = Fig3Edge(g, 3, 4);
  const EdgeId out_of_subset_anchor = Fig3Edge(g, 9, 10);
  anchored[in_subset_anchor] = true;
  anchored[out_of_subset_anchor] = true;
  std::vector<EdgeId> subset;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (e != out_of_subset_anchor) subset.push_back(e);
  }
  const TrussDecomposition d =
      ComputeTrussDecompositionOnSubset(g, anchored, subset);
  EXPECT_EQ(d.trussness[in_subset_anchor], kAnchoredTrussness);
  EXPECT_TRUE(d.IsComputed(in_subset_anchor));
  EXPECT_EQ(d.trussness[out_of_subset_anchor], kTrussnessNotComputed);
  EXPECT_FALSE(d.IsComputed(out_of_subset_anchor));
}

TEST(HullSizes, CountsPerLevel) {
  const Graph g = MakeFig3Graph();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  const std::vector<uint32_t> hulls = HullSizes(d);
  ASSERT_EQ(hulls.size(), 6u);
  EXPECT_EQ(hulls[2], 0u);
  EXPECT_EQ(hulls[3], 4u);
  EXPECT_EQ(hulls[4], 18u);
  EXPECT_EQ(hulls[5], 10u);
}

// --- k-core decomposition (truss/core_decompose.h) ------------------------

// Reference peel: remove vertices of (masked) degree <= k until none
// remain, assigning core = k at removal time.
std::vector<uint32_t> BruteForceCores(const Graph& g,
                                      const std::vector<uint8_t>& alive) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> deg(n, 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!alive.empty() && !alive[e]) continue;
    ++deg[g.Edge(e).u];
    ++deg[g.Edge(e).v];
  }
  std::vector<uint8_t> removed(n, 0);
  std::vector<uint32_t> core(n, 0);
  uint32_t left = n;
  for (uint32_t k = 0; left > 0; ++k) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId v = 0; v < n; ++v) {
        if (removed[v] || deg[v] > k) continue;
        removed[v] = 1;
        core[v] = k;
        --left;
        changed = true;
        for (const AdjEntry& a : g.Neighbors(v)) {
          if (removed[a.neighbor]) continue;
          if (!alive.empty() && !alive[a.edge]) continue;
          --deg[a.neighbor];
        }
      }
    }
  }
  return core;
}

TEST(CoreDecomposition, KnownShapes) {
  // Triangle with a pendant: triangle vertices core 2, pendant core 1.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  const CoreDecomposition tri = ComputeCoreDecomposition(b.Build());
  EXPECT_EQ(tri.core[0], 2u);
  EXPECT_EQ(tri.core[1], 2u);
  EXPECT_EQ(tri.core[2], 2u);
  EXPECT_EQ(tri.core[3], 1u);
  EXPECT_EQ(tri.max_core, 2u);

  // K5: every vertex core 4. An isolated vertex stays core 0.
  GraphBuilder k5(6);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) k5.AddEdge(u, v);
  }
  const CoreDecomposition clique = ComputeCoreDecomposition(k5.Build());
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(clique.core[v], 4u);
  EXPECT_EQ(clique.core[5], 0u);
  EXPECT_EQ(clique.max_core, 4u);
}

TEST(CoreDecomposition, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    const Graph g = seed % 2 == 0
                        ? ErdosRenyiGraph(30 + seed, 70 + seed * 11, seed)
                        : HolmeKimGraph(35, 3, 0.4, seed);
    const std::vector<uint32_t> expected = BruteForceCores(g, {});
    const CoreDecomposition got = ComputeCoreDecomposition(g);
    ASSERT_EQ(got.core, expected) << "seed " << seed;
    const uint32_t max_core =
        g.NumVertices() == 0
            ? 0
            : *std::max_element(expected.begin(), expected.end());
    EXPECT_EQ(got.max_core, max_core) << "seed " << seed;

    // Masked variant: drop a deterministic third of the edges; masked-out
    // edges must contribute to no vertex's degree.
    std::vector<uint8_t> alive(g.NumEdges(), 1);
    for (EdgeId e = 0; e < g.NumEdges(); e += 3) alive[e] = 0;
    const std::vector<uint32_t> masked_expected = BruteForceCores(g, alive);
    const CoreDecomposition masked = ComputeCoreDecomposition(g, alive);
    ASSERT_EQ(masked.core, masked_expected) << "seed " << seed << " masked";
  }
}

}  // namespace
}  // namespace atr
