// Tests for the unified solver API: registry lookup, options validation,
// AtrEngine decomposition-cache reuse, sweeps, cancellation, and the
// BASE / BASE+ / GAS identical-anchor-sequence property exercised through
// the registry.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "api/engine.h"
#include "api/registry.h"
#include "api/solver.h"
#include "core/gas.h"
#include "tests/paper_fixtures.h"
#include "tests/test_helpers.h"
#include "truss/gain.h"

namespace atr {
namespace {

SolveResult MustSolve(const std::string& name, const Graph& g,
                      const SolverOptions& options) {
  StatusOr<std::unique_ptr<Solver>> solver = SolverRegistry::Create(name);
  EXPECT_TRUE(solver.ok()) << solver.status().message();
  StatusOr<SolveResult> result = (*solver)->Solve(g, options);
  EXPECT_TRUE(result.ok()) << result.status().message();
  return *std::move(result);
}

TEST(Registry, CreatesEveryBuiltinSolver) {
  for (const char* name :
       {"base", "base+", "gas", "exact", "rand", "sup", "tur", "akt:4"}) {
    StatusOr<std::unique_ptr<Solver>> solver = SolverRegistry::Create(name);
    ASSERT_TRUE(solver.ok()) << name << ": " << solver.status().message();
    EXPECT_EQ((*solver)->Name(), name);
  }
}

TEST(Registry, KnownSolversListsTheBuiltins) {
  const std::vector<std::string> names = SolverRegistry::KnownSolvers();
  for (const char* expected :
       {"base", "base+", "gas", "exact", "rand", "sup", "tur", "akt:<k>"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

// Registration and lookup are thread-safe: concurrent Create / KnownSolvers
// / Register calls from many threads (including first-touch builtin
// registration) must neither race nor miss solvers. Run under TSan in the
// nightly leg.
TEST(Registry, ConcurrentCreateAndRegisterAreSafe) {
  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      const std::string mine = "custom-" + std::to_string(t);
      SolverRegistry::Register(
          mine, [](const std::string&) -> StatusOr<std::unique_ptr<Solver>> {
            return SolverRegistry::Create("gas");
          });
      for (int i = 0; i < kIters; ++i) {
        for (const char* name : {"gas", "base+", "akt:5", "rand"}) {
          if (!SolverRegistry::Create(name).ok()) failures.fetch_add(1);
        }
        if (!SolverRegistry::Create(mine).ok()) failures.fetch_add(1);
        if (SolverRegistry::Create("missing-" + std::to_string(i)).ok()) {
          failures.fetch_add(1);
        }
        const std::vector<std::string> known = SolverRegistry::KnownSolvers();
        if (std::find(known.begin(), known.end(), "gas") == known.end()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Registry, UnknownNameIsNotFound) {
  StatusOr<std::unique_ptr<Solver>> solver =
      SolverRegistry::Create("does-not-exist");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), StatusCode::kNotFound);
  // The error lists the known solvers to aid discovery.
  EXPECT_NE(solver.status().message().find("gas"), std::string::npos);
}

TEST(Registry, MalformedAktParameterIsInvalidArgument) {
  for (const char* name : {"akt:", "akt:x", "akt:2", "akt:4x", "akt:-3"}) {
    StatusOr<std::unique_ptr<Solver>> solver = SolverRegistry::Create(name);
    ASSERT_FALSE(solver.ok()) << name;
    EXPECT_EQ(solver.status().code(), StatusCode::kInvalidArgument) << name;
  }
}

TEST(Options, BudgetOutOfRangeIsRejected) {
  const Graph g = MakeFig3Graph();
  StatusOr<std::unique_ptr<Solver>> solver = SolverRegistry::Create("gas");
  ASSERT_TRUE(solver.ok());

  SolverOptions zero;
  zero.budget = 0;
  EXPECT_EQ((*solver)->Solve(g, zero).status().code(),
            StatusCode::kInvalidArgument);

  SolverOptions huge;
  huge.budget = g.NumEdges() + 1;
  EXPECT_EQ((*solver)->Solve(g, huge).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Options, CheckpointRulesAreEnforced) {
  const Graph g = MakeFig3Graph();
  StatusOr<std::unique_ptr<Solver>> solver = SolverRegistry::Create("gas");
  ASSERT_TRUE(solver.ok());

  SolverOptions not_ascending;
  not_ascending.budget = 4;
  not_ascending.budget_checkpoints = {2, 2, 4};
  EXPECT_EQ((*solver)->Solve(g, not_ascending).status().code(),
            StatusCode::kInvalidArgument);

  SolverOptions wrong_tail;
  wrong_tail.budget = 4;
  wrong_tail.budget_checkpoints = {1, 3};
  EXPECT_EQ((*solver)->Solve(g, wrong_tail).status().code(),
            StatusCode::kInvalidArgument);

  SolverOptions ok;
  ok.budget = 4;
  ok.budget_checkpoints = {1, 2, 4};
  EXPECT_TRUE((*solver)->Solve(g, ok).ok());
}

TEST(Options, RandomBaselineRejectsZeroTrials) {
  const Graph g = MakeFig3Graph();
  SolverOptions options;
  options.budget = 2;
  options.trials = 0;
  StatusOr<std::unique_ptr<Solver>> solver = SolverRegistry::Create("rand");
  ASSERT_TRUE(solver.ok());
  EXPECT_EQ((*solver)->Solve(g, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Api, GasThroughRegistryMatchesDirectCall) {
  const Graph g = MakeFig3Graph();
  SolverOptions options;
  options.budget = 3;
  const SolveResult via_api = MustSolve("gas", g, options);
  const AnchorResult direct = RunGas(g, 3);
  EXPECT_EQ(via_api.anchor_edges, direct.anchors);
  EXPECT_EQ(via_api.total_gain, direct.total_gain);
  ASSERT_EQ(via_api.rounds.size(), direct.rounds.size());
  for (size_t i = 0; i < direct.rounds.size(); ++i) {
    EXPECT_EQ(via_api.rounds[i].gain, direct.rounds[i].gain);
  }
}

TEST(Api, TotalGainMatchesRedecomposition) {
  const Graph g = MakeFig3Graph();
  SolverOptions options;
  options.budget = 3;
  const SolveResult gas = MustSolve("gas", g, options);
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  EXPECT_EQ(gas.total_gain, TrussnessGain(g, base, {}, gas.anchor_edges));
}

TEST(Api, ExactReportsOneRunPerCheckpoint) {
  const Graph g = MakeFig3Graph();
  SolverOptions options;
  options.budget = 2;
  options.budget_checkpoints = {1, 2};
  const SolveResult exact = MustSolve("exact", g, options);
  ASSERT_EQ(exact.gain_at_checkpoint.size(), 2u);
  // C(32, 1) + C(32, 2) subsets scored across the two checkpoints.
  EXPECT_EQ(exact.subsets_evaluated, 32u + 32u * 31u / 2u);
  EXPECT_GE(exact.gain_at_checkpoint[1], exact.gain_at_checkpoint[0]);
  EXPECT_EQ(exact.total_gain, exact.gain_at_checkpoint.back());
}

TEST(Api, AktSolverAnchorsVertices) {
  const Graph g = MakeFig3Graph();
  SolverOptions options;
  options.budget = 2;
  const SolveResult akt = MustSolve("akt:4", g, options);
  EXPECT_TRUE(akt.anchor_edges.empty());
  EXPECT_EQ(akt.anchor_vertices.size(), 2u);
  EXPECT_GT(akt.total_gain, 0u);
}

TEST(Api, ProgressCallbackSeesEveryRound) {
  const Graph g = MakeFig3Graph();
  SolverOptions options;
  options.budget = 3;
  std::vector<uint32_t> rounds_seen;
  options.progress = [&](const SolveProgress& progress) {
    EXPECT_EQ(progress.solver, "gas");
    EXPECT_EQ(progress.budget, 3u);
    rounds_seen.push_back(progress.round);
    return true;
  };
  const SolveResult gas = MustSolve("gas", g, options);
  EXPECT_FALSE(gas.stopped_early);
  EXPECT_EQ(rounds_seen, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(Api, ProgressCallbackCanCancelAfterFirstRound) {
  const Graph g = MakeFig3Graph();
  SolverOptions options;
  options.budget = 5;
  options.progress = [](const SolveProgress& progress) {
    return progress.round < 1;  // stop after round 1
  };
  const SolveResult gas = MustSolve("gas", g, options);
  EXPECT_TRUE(gas.stopped_early);
  EXPECT_EQ(gas.anchor_edges.size(), 1u);
  // The single selected anchor is still the greedy's first choice.
  EXPECT_EQ(gas.anchor_edges[0], RunGas(g, 1).anchors[0]);
}

TEST(Api, CancelFlagStopsBeforeAnyRound) {
  const Graph g = MakeFig3Graph();
  std::atomic<bool> cancel{true};
  SolverOptions options;
  options.budget = 3;
  options.cancel = &cancel;
  const SolveResult gas = MustSolve("gas", g, options);
  EXPECT_TRUE(gas.stopped_early);
  EXPECT_TRUE(gas.anchor_edges.empty());
}

TEST(Engine, DecompositionIsComputedOnceAcrossSolvers) {
  AtrEngine engine(MakeFig3Graph());
  EXPECT_EQ(engine.decomposition_builds(), 0u);  // lazy until needed

  SolverOptions options;
  options.budget = 2;
  ASSERT_TRUE(engine.Run("akt:4", options).ok());
  EXPECT_EQ(engine.decomposition_builds(), 1u);

  // Every further consumer — including the greedy family, which seeds its
  // round-1 state from the cache — reuses the cached decomposition.
  ASSERT_TRUE(engine.Run("akt:5", options).ok());
  ASSERT_TRUE(engine.Run("tur", options).ok());
  ASSERT_TRUE(engine.Run("gas", options).ok());
  ASSERT_TRUE(engine.Run("exact", options).ok());
  engine.Decomposition();
  EXPECT_EQ(engine.decomposition_builds(), 1u);
  EXPECT_GE(engine.decomposition_reuses(), 5u);
}

TEST(Api, AktHonorsCancellationBetweenRounds) {
  const Graph g = MakeFig3Graph();
  SolverOptions options;
  options.budget = 4;
  options.progress = [](const SolveProgress& progress) {
    return progress.round < 1;  // stop after the first vertex
  };
  StatusOr<std::unique_ptr<Solver>> solver = SolverRegistry::Create("akt:4");
  ASSERT_TRUE(solver.ok());
  StatusOr<SolveResult> result = (*solver)->Solve(g, options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result->stopped_early);
  EXPECT_EQ(result->anchor_vertices.size(), 1u);
}

// SolverOptions::cancel raised mid-run (from the progress callback after
// the first round/checkpoint): every round-structured solver stops at its
// next check and returns a valid prefix of its full run.
TEST(Api, CancelFlagRaisedMidRunLeavesValidPrefixOnEverySolver) {
  const Graph g = MakeFig3Graph();
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  for (const char* solver : {"base", "base+", "gas", "exact", "akt:4"}) {
    SolverOptions full_options;
    full_options.budget = 3;
    if (std::string(solver) == "exact") {
      // Independent exhaustive runs per checkpoint; keep them tiny.
      full_options.budget = 2;
      full_options.budget_checkpoints = {1, 2};
    }
    const SolveResult full = MustSolve(solver, g, full_options);

    std::atomic<bool> cancel{false};
    SolverOptions options = full_options;
    options.cancel = &cancel;
    options.progress = [&cancel](const SolveProgress& progress) {
      if (progress.round == 1) cancel.store(true);
      return true;  // cancellation flows through the flag, not the return
    };
    const SolveResult stopped = MustSolve(solver, g, options);
    EXPECT_TRUE(stopped.stopped_early) << solver;
    if (std::string(solver) == "exact") {
      ASSERT_EQ(stopped.gain_at_checkpoint.size(), 1u) << solver;
      EXPECT_EQ(stopped.gain_at_checkpoint[0], full.gain_at_checkpoint[0]);
    } else if (std::string(solver) == "akt:4") {
      ASSERT_EQ(stopped.anchor_vertices.size(), 1u) << solver;
      EXPECT_EQ(stopped.anchor_vertices[0], full.anchor_vertices[0]);
    } else {
      ASSERT_EQ(stopped.anchor_edges.size(), 1u) << solver;
      EXPECT_EQ(stopped.anchor_edges[0], full.anchor_edges[0]) << solver;
      EXPECT_EQ(stopped.total_gain,
                TrussnessGain(g, base, {}, stopped.anchor_edges))
          << solver;
    }
  }
}

TEST(Api, RandomBaselineHonorsCancelFlag) {
  const Graph g = MakeFig3Graph();
  std::atomic<bool> cancel{true};
  SolverOptions options;
  options.budget = 2;
  options.trials = 50;
  options.cancel = &cancel;
  const SolveResult rand = MustSolve("rand", g, options);
  EXPECT_TRUE(rand.stopped_early);
  EXPECT_EQ(rand.total_gain, 0u);  // cancelled before any trial completed
}

TEST(Api, SupBudgetBeyondPoolIsRejected) {
  // Sup draws from the top-20% support pool; a budget beyond that pool
  // would silently under-deliver anchors, so it is an error.
  const Graph g = MakeFig3Graph();
  SolverOptions options;
  options.budget = g.NumEdges();  // valid vs |E|, far beyond the 20% pool
  StatusOr<std::unique_ptr<Solver>> solver = SolverRegistry::Create("sup");
  ASSERT_TRUE(solver.ok());
  EXPECT_EQ((*solver)->Solve(g, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Engine, PrimedDecompositionIsNeverRecomputed) {
  Graph g = MakeFig3Graph();
  TrussDecomposition decomp = ComputeTrussDecomposition(g);
  AtrEngine engine(g, decomp);
  SolverOptions options;
  options.budget = 2;
  ASSERT_TRUE(engine.Run("akt:4", options).ok());
  ASSERT_TRUE(engine.Run("sup", options).ok());
  EXPECT_EQ(engine.decomposition_builds(), 0u);
  EXPECT_GE(engine.decomposition_reuses(), 2u);
  EXPECT_EQ(engine.MaxTrussness(), decomp.max_trussness);
}

TEST(Engine, RunSweepReportsPrefixGains) {
  AtrEngine engine(MakeFig3Graph());
  StatusOr<SolveResult> sweep = engine.RunSweep("gas", {1, 2, 4});
  ASSERT_TRUE(sweep.ok()) << sweep.status().message();
  ASSERT_EQ(sweep->gain_at_checkpoint.size(), 3u);
  ASSERT_EQ(sweep->rounds.size(), 4u);
  EXPECT_EQ(sweep->gain_at_checkpoint[0], sweep->rounds[0].gain);
  EXPECT_EQ(sweep->gain_at_checkpoint[1],
            sweep->rounds[0].gain + sweep->rounds[1].gain);
  EXPECT_EQ(sweep->gain_at_checkpoint[2], sweep->total_gain);
}

TEST(Engine, RunSweepOnRandomBaselineTracksCheckpoints) {
  AtrEngine engine(MakeFig3Graph());
  SolverOptions options;
  options.trials = 30;
  options.seed = 7;
  StatusOr<SolveResult> sweep = engine.RunSweep("rand", {1, 2, 3}, options);
  ASSERT_TRUE(sweep.ok()) << sweep.status().message();
  ASSERT_EQ(sweep->gain_at_checkpoint.size(), 3u);
  EXPECT_EQ(sweep->gain_at_checkpoint.back(), sweep->total_gain);
  EXPECT_EQ(sweep->trials, 30u);
}

TEST(Engine, UnknownSolverNameFlowsBackAsStatus) {
  AtrEngine engine(MakeFig3Graph());
  SolverOptions options;
  options.budget = 1;
  EXPECT_EQ(engine.Run("nope", options).status().code(),
            StatusCode::kNotFound);
}

// --- Mutable session mode -----------------------------------------------

TEST(Session, DecompositionCacheSurvivesAnchorCommits) {
  AtrEngine engine(MakeFig3Graph());
  const Graph& g = engine.graph();
  const TrussDecomposition before = engine.Decomposition();
  EXPECT_EQ(engine.decomposition_builds(), 1u);

  const EdgeId x = Fig3Edge(g, 5, 8);
  StatusOr<uint32_t> gain = engine.ApplyAnchor(x);
  ASSERT_TRUE(gain.ok()) << gain.status().message();
  EXPECT_EQ(*gain, TrussnessGain(g, before, {}, {x}));

  // The cache was updated in place, not invalidated: no rebuild, and the
  // served decomposition reflects the committed anchor.
  EXPECT_EQ(engine.decomposition_builds(), 1u);
  EXPECT_EQ(engine.Decomposition().trussness[x], kAnchoredTrussness);
  const TrussDecomposition oracle =
      ComputeTrussDecomposition(g, engine.session()->anchored());
  EXPECT_EQ(engine.Decomposition().trussness, oracle.trussness);
  EXPECT_EQ(engine.Decomposition().layer, oracle.layer);
  EXPECT_EQ(engine.decomposition_builds(), 1u);
}

TEST(Session, ApplyAnchorValidatesItsEdge) {
  AtrEngine engine(MakeFig3Graph());
  EXPECT_EQ(engine.ApplyAnchor(engine.graph().NumEdges()).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(engine.ApplyAnchor(0).ok());
  EXPECT_EQ(engine.ApplyAnchor(0).status().code(),
            StatusCode::kInvalidArgument);  // already anchored
  ASSERT_TRUE(engine.RemoveEdge(1).ok());
  EXPECT_EQ(engine.ApplyAnchor(1).status().code(),
            StatusCode::kInvalidArgument);  // removed
  EXPECT_EQ(engine.RemoveEdge(0).status().code(),
            StatusCode::kInvalidArgument);  // anchored edges stay
}

TEST(Session, RollbackRestoresThePristineState) {
  AtrEngine engine(MakeFig3Graph());
  const TrussDecomposition before = engine.Decomposition();
  const AtrEngine::SessionCheckpoint cp = engine.MarkRollbackPoint();
  EXPECT_EQ(cp.position, 0u);
  ASSERT_TRUE(engine.ApplyAnchor(3).ok());
  ASSERT_TRUE(engine.RemoveEdge(7).ok());
  ASSERT_TRUE(engine.RollbackTo(cp).ok());
  EXPECT_EQ(engine.Decomposition().trussness, before.trussness);
  EXPECT_EQ(engine.Decomposition().layer, before.layer);
  EXPECT_EQ(engine.decomposition_builds(), 1u);
}

TEST(Session, StaleCheckpointsAreRejectedNotRestored) {
  // A checkpoint invalidated by a deeper rollback must not validate again
  // once the undo log regrows past its position — restoring it would land
  // the cached decomposition mid-mutation.
  AtrEngine engine(MakeFig3Graph());
  ASSERT_TRUE(engine.ApplyAnchor(0).ok());
  const AtrEngine::SessionCheckpoint cp = engine.MarkRollbackPoint();
  ASSERT_TRUE(engine.ApplyAnchor(1).ok());
  ASSERT_TRUE(engine.RollbackTo(AtrEngine::SessionCheckpoint{}).ok());
  ASSERT_TRUE(engine.ApplyAnchor(2).ok());  // fresh history past cp
  EXPECT_EQ(engine.RollbackTo(cp).code(), StatusCode::kInvalidArgument);
  // The session state is still coherent.
  const TrussDecomposition oracle = ComputeTrussDecomposition(
      engine.graph(), engine.session()->anchored());
  EXPECT_EQ(engine.Decomposition().trussness, oracle.trussness);
  EXPECT_EQ(engine.Decomposition().layer, oracle.layer);
}

TEST(Session, NestedRollbacksStayValid) {
  // Rolling back to a later checkpoint keeps earlier ones usable.
  AtrEngine engine(MakeFig3Graph());
  ASSERT_TRUE(engine.ApplyAnchor(0).ok());
  const AtrEngine::SessionCheckpoint outer = engine.MarkRollbackPoint();
  ASSERT_TRUE(engine.ApplyAnchor(1).ok());
  const AtrEngine::SessionCheckpoint inner = engine.MarkRollbackPoint();
  ASSERT_TRUE(engine.ApplyAnchor(2).ok());
  ASSERT_TRUE(engine.RollbackTo(inner).ok());
  ASSERT_TRUE(engine.RollbackTo(outer).ok());
  EXPECT_TRUE(engine.session()->IsAnchored(0));
  EXPECT_FALSE(engine.session()->IsAnchored(1));
  EXPECT_FALSE(engine.session()->IsAnchored(2));
}

TEST(Session, GreedySolversRunOnTheCommittedState) {
  // Committing the greedy's first pick and then solving for budget b-1
  // must line up with a fresh budget-b solve of the full problem.
  const Graph g = MakeFig3Graph();
  SolverOptions options;
  options.budget = 3;
  const SolveResult fresh = MustSolve("gas", g, options);

  AtrEngine engine(MakeFig3Graph());
  StatusOr<uint32_t> gain = engine.ApplyAnchor(fresh.anchor_edges[0]);
  ASSERT_TRUE(gain.ok());
  EXPECT_EQ(*gain, fresh.rounds[0].gain);
  for (const char* solver : {"base", "base+", "gas"}) {
    SolverOptions rest;
    rest.budget = 2;
    StatusOr<SolveResult> result = engine.Run(solver, rest);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result->anchor_edges,
              (std::vector<EdgeId>{fresh.anchor_edges[1],
                                   fresh.anchor_edges[2]}))
        << solver;
    EXPECT_EQ(result->total_gain,
              fresh.rounds[1].gain + fresh.rounds[2].gain)
        << solver;
  }
  EXPECT_EQ(engine.decomposition_builds(), 1u);
}

TEST(Session, NonGreedySolversRejectMutatedSessions) {
  AtrEngine engine(MakeFig3Graph());
  ASSERT_TRUE(engine.ApplyAnchor(0).ok());
  SolverOptions options;
  options.budget = 2;
  for (const char* solver : {"exact", "rand", "sup", "tur", "akt:4"}) {
    EXPECT_EQ(engine.Run(solver, options).status().code(),
              StatusCode::kFailedPrecondition)
        << solver;
  }
  // The greedy family still runs.
  EXPECT_TRUE(engine.Run("base+", options).ok());
}

// --- The incremental solver path ----------------------------------------

// On the paper fixture and the property graphs, the incremental path must
// reproduce the full-recompute path exactly: same anchors, same per-round
// gains, for BASE, BASE+, and GAS.
class IncrementalPathEquivalence : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(IncrementalPathEquivalence, MatchesFullRecomputePath) {
  const uint64_t seed = GetParam();
  const Graph g = seed == 0 ? MakeFig3Graph() : MakePropertyGraph(seed);
  SolverOptions full;
  full.budget = 3;
  SolverOptions incremental = full;
  incremental.use_incremental = true;

  for (const char* solver : {"base", "base+", "gas"}) {
    const SolveResult a = MustSolve(solver, g, full);
    const SolveResult b = MustSolve(solver, g, incremental);
    EXPECT_EQ(a.anchor_edges, b.anchor_edges)
        << solver << " seed " << seed;
    EXPECT_EQ(a.total_gain, b.total_gain) << solver << " seed " << seed;
    ASSERT_EQ(a.rounds.size(), b.rounds.size()) << solver;
    for (size_t i = 0; i < a.rounds.size(); ++i) {
      EXPECT_EQ(a.rounds[i].gain, b.rounds[i].gain)
          << solver << " seed " << seed << " round " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalPathEquivalence,
                         ::testing::Range<uint64_t>(0, 6));

TEST(Session, IncrementalAndFullPathsAgreeOnMutatedSessions) {
  // A session with a committed anchor AND a removed edge, solved both
  // ways: the residual problems must line up.
  for (const char* solver : {"base", "base+", "gas"}) {
    SolveResult results[2];
    for (int mode = 0; mode < 2; ++mode) {
      AtrEngine engine(MakeFig3Graph());
      const Graph& g = engine.graph();
      ASSERT_TRUE(engine.ApplyAnchor(Fig3Edge(g, 5, 8)).ok());
      ASSERT_TRUE(engine.RemoveEdge(Fig3Edge(g, 9, 10)).ok());
      SolverOptions options;
      options.budget = 2;
      options.use_incremental = mode == 1;
      StatusOr<SolveResult> result = engine.Run(solver, options);
      ASSERT_TRUE(result.ok()) << solver << ": "
                               << result.status().message();
      results[mode] = *std::move(result);
    }
    EXPECT_EQ(results[0].anchor_edges, results[1].anchor_edges) << solver;
    EXPECT_EQ(results[0].total_gain, results[1].total_gain) << solver;
  }
}

// The repository's central property, exercised end-to-end through the
// registry: BASE, BASE+, and GAS are one greedy algorithm and must select
// identical anchor sequences with identical per-round gains.
class RegistryEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RegistryEquivalenceProperty, BaseBasePlusGasAgreeThroughRegistry) {
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  SolverOptions options;
  options.budget = 3 + seed % 3;

  const SolveResult base = MustSolve("base", g, options);
  const SolveResult plus = MustSolve("base+", g, options);
  const SolveResult gas = MustSolve("gas", g, options);

  EXPECT_EQ(base.anchor_edges, plus.anchor_edges) << "seed " << seed;
  EXPECT_EQ(base.anchor_edges, gas.anchor_edges) << "seed " << seed;
  EXPECT_EQ(base.total_gain, plus.total_gain) << "seed " << seed;
  EXPECT_EQ(base.total_gain, gas.total_gain) << "seed " << seed;
  ASSERT_EQ(base.rounds.size(), gas.rounds.size());
  for (size_t i = 0; i < base.rounds.size(); ++i) {
    EXPECT_EQ(base.rounds[i].gain, plus.rounds[i].gain)
        << "seed " << seed << " round " << i;
    EXPECT_EQ(base.rounds[i].gain, gas.rounds[i].gain)
        << "seed " << seed << " round " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryEquivalenceProperty,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace atr
