// Deterministic connection-state-machine tests for AtrServer, driven
// through SimTransport (net/sim_transport.h) instead of TCP. Every case
// here pins down an edge the TCP integration tests cannot reach
// reliably: frames torn at every byte boundary, short writes resumed
// across POLLOUT rounds without duplicating or dropping bytes, EMFILE at
// accept, EOF racing pipelined requests, the output high-water mark at
// its exact boundary, millisecond-exact idle reaping on a virtual clock,
// and injected EINTR/EPIPE/ECONNRESET faults. No sleeps, no timing
// assumptions: the only real-time waits are bounded rendezvous with the
// server's loop thread.

#include <gtest/gtest.h>

#include <cerrno>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "graph/generators/generators.h"
#include "net/server.h"
#include "net/sim_transport.h"
#include "net/wire.h"

namespace atr {
namespace net {
namespace {

Graph ServedGraph(uint64_t seed = 11) { return HolmeKimGraph(60, 4, 0.7, seed); }

// A server wired to a SimTransport. The transport member is declared
// first so it outlives the server (destruction runs in reverse order).
struct SimFixture {
  SimTransport sim;
  AtrServer server;

  explicit SimFixture(AtrServer::Options options = {})
      : server(WithTransport(std::move(options), &sim)) {}

  ~SimFixture() {
    // Teardown is best-effort: tests that care about Stop's status call it
    // themselves before the fixture unwinds.
    (void)server.Stop();
    // Connection-hygiene invariant: once the loop exits and the server is
    // destroyed/stopped, no simulated connection descriptor may leak.
    EXPECT_EQ(sim.open_connection_fds(), 0);
  }

  static AtrServer::Options WithTransport(AtrServer::Options options,
                                          SimTransport* transport) {
    options.transport = transport;
    return options;
  }

  void StartWithGraph() {
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.AddGraph("social", ServedGraph()).ok());
  }
};

std::vector<uint8_t> PingFrame(uint64_t id) {
  PingRequest request;
  request.request_id = id;
  return request.EncodeFrame();
}

// Pumps frames and asserts exactly `want` arrived.
std::vector<Frame> ExpectFrames(SimTransport::Connection& conn,
                                FrameParser& parser, size_t want) {
  std::vector<Frame> frames;
  EXPECT_TRUE(PumpFrames(conn, parser, want, &frames))
      << "expected " << want << " frames, got " << frames.size();
  return frames;
}

uint64_t ResponseRequestId(const Frame& frame) {
  switch (frame.type) {
    case MsgType::kPingResponse: {
      StatusOr<PingResponse> r = PingResponse::Decode(frame.payload);
      EXPECT_TRUE(r.ok());
      return r.ok() ? r->request_id : 0;
    }
    case MsgType::kInfoResponse: {
      StatusOr<InfoResponse> r = InfoResponse::Decode(frame.payload);
      EXPECT_TRUE(r.ok());
      return r.ok() ? r->request_id : 0;
    }
    case MsgType::kListGraphsResponse: {
      StatusOr<ListGraphsResponse> r =
          ListGraphsResponse::Decode(frame.payload);
      EXPECT_TRUE(r.ok());
      return r.ok() ? r->request_id : 0;
    }
    default:
      ADD_FAILURE() << "unexpected frame type "
                    << static_cast<uint32_t>(frame.type);
      return 0;
  }
}

// Occupies one worker with a job parked inside its progress callback
// until Release() is called; used to make admission-control and parked-
// waiter states fully deterministic (net_test.cc uses the same pattern
// over TCP).
class WorkerJam {
 public:
  explicit WorkerJam(AtrService& service) {
    SolverOptions blocker;
    blocker.budget = 2;
    blocker.progress = [this](const SolveProgress&) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return release_; });
      return true;
    };
    StatusOr<JobHandle> running = service.Submit("social", "gas", blocker);
    EXPECT_TRUE(running.ok());
    if (!running.ok()) return;
    handle_ = *running;
    while (handle_.state() == JobHandle::State::kQueued) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      release_ = true;
    }
    cv_.notify_all();
    ASSERT_TRUE(handle_.Wait().ok());
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool release_ = false;
  JobHandle handle_;
};

TEST(ServerSim, PingRoundTripIsByteExact) {
  SimFixture fixture;
  fixture.StartWithGraph();

  auto conn = fixture.sim.Connect();
  conn->Send(PingFrame(42));

  ASSERT_TRUE(conn->WaitForOutput(1));
  PingResponse expected;
  expected.request_id = 42;
  EXPECT_EQ(conn->TakeOutput(), expected.EncodeFrame());
}

// Three pipelined requests, re-sent once per possible byte boundary: the
// prefix is guaranteed to be consumed by the server (a torn read) before
// the suffix is queued, so the parser really does see every partial
// header and partial payload.
TEST(ServerSim, FrameStreamTornAtEveryByteBoundary) {
  SimFixture fixture;
  fixture.StartWithGraph();

  InfoRequest info;
  info.graph = "social";
  ListGraphsRequest list;

  std::vector<uint8_t> stream;
  {
    info.request_id = 2;
    list.request_id = 3;
    const std::vector<uint8_t> a = PingFrame(1);
    const std::vector<uint8_t> b = info.EncodeFrame();
    const std::vector<uint8_t> c = list.EncodeFrame();
    stream.insert(stream.end(), a.begin(), a.end());
    stream.insert(stream.end(), b.begin(), b.end());
    stream.insert(stream.end(), c.begin(), c.end());
  }

  for (size_t split = 1; split < stream.size(); ++split) {
    auto conn = fixture.sim.Connect();
    conn->Send(stream.data(), split);
    ASSERT_TRUE(conn->WaitForInputDrained()) << "split " << split;
    conn->Send(stream.data() + split, stream.size() - split);

    FrameParser parser;
    std::vector<Frame> frames = ExpectFrames(*conn, parser, 3);
    ASSERT_EQ(frames.size(), 3u) << "split " << split;
    EXPECT_EQ(frames[0].type, MsgType::kPingResponse);
    EXPECT_EQ(frames[1].type, MsgType::kInfoResponse);
    EXPECT_EQ(frames[2].type, MsgType::kListGraphsResponse);
    EXPECT_EQ(ResponseRequestId(frames[0]), 1u);
    EXPECT_EQ(ResponseRequestId(frames[1]), 2u);
    EXPECT_EQ(ResponseRequestId(frames[2]), 3u);
    conn->Close();
  }
}

// The degenerate read path: the server's recv never returns more than
// one byte, so every header and payload arrives maximally fragmented.
TEST(ServerSim, SingleByteReadsPreserveThePipeline) {
  SimFixture fixture;
  fixture.StartWithGraph();

  auto conn = fixture.sim.Connect();
  conn->set_max_read_chunk(1);
  std::vector<uint8_t> stream;
  for (uint64_t id = 1; id <= 8; ++id) {
    const std::vector<uint8_t> frame = PingFrame(id);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  conn->Send(stream);

  FrameParser parser;
  std::vector<Frame> frames = ExpectFrames(*conn, parser, 8);
  ASSERT_EQ(frames.size(), 8u);
  for (uint64_t id = 1; id <= 8; ++id) {
    EXPECT_EQ(frames[id - 1].type, MsgType::kPingResponse);
    EXPECT_EQ(ResponseRequestId(frames[id - 1]), id);
  }
}

// Short-write-then-POLLOUT resume: the simulated kernel buffer holds 8
// bytes and each send accepts at most 3, so one response crosses many
// poll rounds. The reassembled client-side bytes must be identical to
// the response encoded in one piece — no duplicated, dropped, or
// reordered chunk.
TEST(ServerSim, ShortWritesReassembleByteIdentical) {
  SimFixture fixture;
  ASSERT_TRUE(fixture.server.Start().ok());
  ASSERT_TRUE(fixture.server.AddGraph("alpha", ServedGraph(1)).ok());
  ASSERT_TRUE(fixture.server.AddGraph("beta", ServedGraph(2)).ok());
  ASSERT_TRUE(fixture.server.AddGraph("gamma", ServedGraph(3)).ok());

  ListGraphsResponse expected;
  expected.request_id = 7;
  expected.names = fixture.server.service().GraphNames();
  const std::vector<uint8_t> expected_bytes = expected.EncodeFrame();
  ASSERT_GT(expected_bytes.size(), 16u);  // must actually span many writes

  auto conn = fixture.sim.Connect();
  conn->set_max_write_chunk(3);
  conn->set_write_space(8);
  ListGraphsRequest request;
  request.request_id = 7;
  conn->Send(request.EncodeFrame());

  std::vector<uint8_t> got;
  while (got.size() < expected_bytes.size()) {
    ASSERT_TRUE(conn->WaitForOutput(1)) << "stalled after " << got.size()
                                        << " of " << expected_bytes.size();
    const std::vector<uint8_t> chunk = conn->TakeOutput();
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(got, expected_bytes);
}

// Regression: a peer that pipelines requests and immediately half-closes
// must still receive every response before the server closes. (The read
// path used to drop the connection on EOF before flushing the responses
// to the frames it had just dispatched.)
TEST(ServerSim, EofAfterPipelinedRequestsStillAnswers) {
  SimFixture fixture;
  fixture.StartWithGraph();

  auto conn = fixture.sim.Connect();
  conn->set_write_space(4);  // flush must survive trickling out too
  std::vector<uint8_t> stream;
  for (uint64_t id = 1; id <= 3; ++id) {
    const std::vector<uint8_t> frame = PingFrame(id);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  conn->Send(stream);
  conn->Close();  // EOF is already queued behind the three requests

  FrameParser parser;
  std::vector<Frame> frames = ExpectFrames(*conn, parser, 3);
  ASSERT_EQ(frames.size(), 3u);
  for (uint64_t id = 1; id <= 3; ++id) {
    EXPECT_EQ(frames[id - 1].type, MsgType::kPingResponse);
    EXPECT_EQ(ResponseRequestId(frames[id - 1]), id);
  }
  EXPECT_TRUE(conn->WaitClosedByServer());
}

TEST(ServerSim, EmfileAtAcceptShedsWithStructuredError) {
  SimFixture fixture;
  fixture.StartWithGraph();

  fixture.sim.InjectAcceptError(EMFILE);
  auto shed = fixture.sim.Connect();

  // The shed connection gets a structured kResourceExhausted with a
  // retry hint, then the server closes it.
  FrameParser parser;
  std::vector<Frame> frames = ExpectFrames(*shed, parser, 1);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, MsgType::kError);
  StatusOr<ErrorResponse> error = ErrorResponse::Decode(frames[0].payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, StatusCode::kResourceExhausted);
  EXPECT_GT(error->retry_after_ms, 0u);
  EXPECT_TRUE(shed->WaitClosedByServer());
  EXPECT_EQ(fixture.server.accept_sheds(), 1u);

  // The descriptor pressure was transient: the next connection is served.
  auto conn = fixture.sim.Connect();
  conn->Send(PingFrame(5));
  FrameParser parser2;
  std::vector<Frame> ok = ExpectFrames(*conn, parser2, 1);
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(ok[0].type, MsgType::kPingResponse);
}

TEST(ServerSim, MidFrameDisconnectIsCleanedUp) {
  SimFixture fixture;
  fixture.StartWithGraph();

  auto conn = fixture.sim.Connect();
  const std::vector<uint8_t> frame = PingFrame(9);
  conn->Send(frame.data(), frame.size() - 6);  // half the payload missing
  ASSERT_TRUE(conn->WaitForInputDrained());
  conn->Close();
  EXPECT_TRUE(conn->WaitClosedByServer());

  // The half-frame neither crashed the parser nor wedged the server.
  auto conn2 = fixture.sim.Connect();
  conn2->Send(PingFrame(10));
  FrameParser parser;
  std::vector<Frame> frames = ExpectFrames(*conn2, parser, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(ResponseRequestId(frames[0]), 10u);
}

// The output high-water mark is exclusive: unsent bytes exactly AT the
// mark keep the connection alive; one more response tips it over. The
// peer never grants write space, so nothing can flush in between.
TEST(ServerSim, OutputHighWaterMarkBoundaryIsExclusive) {
  const std::vector<uint8_t> one_response = [] {
    PingResponse r;
    r.request_id = 1;
    return r.EncodeFrame();
  }();

  AtrServer::Options options;
  options.max_output_buffer_bytes = one_response.size();
  SimFixture fixture(options);
  fixture.StartWithGraph();

  auto conn = fixture.sim.Connect();
  conn->set_write_space(0);  // the peer reads nothing, ever

  conn->Send(PingFrame(1));
  // Rendezvous: the server consumed the first ping, so its response (16
  // unsent bytes == the mark) has been through at least one high-water
  // check by the time the second ping can possibly be read.
  ASSERT_TRUE(conn->WaitForInputDrained());
  conn->Send(PingFrame(2));

  EXPECT_TRUE(conn->WaitClosedByServer());
  EXPECT_EQ(fixture.server.slow_consumer_disconnects(), 1u);
  // Both pings were read: the connection survived the first response
  // sitting exactly at the mark (an inclusive check would have closed it
  // before the second ping could be consumed).
  EXPECT_EQ(conn->pending_input(), 0u);
  EXPECT_EQ(conn->total_output_bytes(), 0u);  // peer never granted space
}

// Idle reaping on the virtual clock, exact at the millisecond: 99 ms of
// silence survives a 100 ms timeout, 100 ms does not.
TEST(ServerSim, VirtualTimeIdleReapIsMillisecondExact) {
  AtrServer::Options options;
  options.idle_timeout_ms = 100;
  SimFixture fixture(options);
  fixture.StartWithGraph();

  auto conn = fixture.sim.Connect();
  conn->Send(PingFrame(1));
  FrameParser parser;
  ASSERT_EQ(ExpectFrames(*conn, parser, 1).size(), 1u);  // active at t=0

  fixture.sim.AdvanceTimeMs(99);  // one short of the timeout
  conn->Send(PingFrame(2));
  std::vector<Frame> second = ExpectFrames(*conn, parser, 1);
  ASSERT_EQ(second.size(), 1u);  // still connected at t=99
  EXPECT_EQ(ResponseRequestId(second[0]), 2u);
  EXPECT_EQ(fixture.server.idle_disconnects(), 0u);

  fixture.sim.AdvanceTimeMs(100);  // t=199: exactly 100 ms since activity
  EXPECT_TRUE(conn->WaitClosedByServer());
  EXPECT_EQ(fixture.server.idle_disconnects(), 1u);
}

// A connection parked on a Wait is waiting on the server, not idling:
// it survives any amount of virtual time while a plain idle connection
// next to it is reaped.
TEST(ServerSim, ParkedWaiterOutlivesIdleTimeout) {
  AtrServer::Options options;
  options.workers = 1;
  options.idle_timeout_ms = 50;
  SimFixture fixture(options);
  fixture.StartWithGraph();

  WorkerJam jam(fixture.server.service());

  // Submit over the wire (queued behind the jam), then park a Wait on it.
  auto waiter = fixture.sim.Connect();
  SubmitRequest submit;
  submit.request_id = 1;
  submit.graph = "social";
  submit.solver = "gas";
  submit.options.budget = 1;
  waiter->Send(submit.EncodeFrame());
  FrameParser parser;
  std::vector<Frame> frames = ExpectFrames(*waiter, parser, 1);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, MsgType::kSubmitResponse);
  StatusOr<SubmitResponse> submitted = SubmitResponse::Decode(frames[0].payload);
  ASSERT_TRUE(submitted.ok());

  WaitRequest wait;
  wait.request_id = 2;
  wait.job_id = submitted->job_id;
  waiter->Send(wait.EncodeFrame());
  ASSERT_TRUE(waiter->WaitForInputDrained());  // the Wait is parked

  auto idler = fixture.sim.Connect();
  idler->Send(PingFrame(1));
  FrameParser idler_parser;
  ASSERT_EQ(ExpectFrames(*idler, idler_parser, 1).size(), 1u);

  fixture.sim.AdvanceTimeMs(10'000);  // 200× the idle timeout
  EXPECT_TRUE(idler->WaitClosedByServer());
  EXPECT_FALSE(waiter->closed_by_server());
  EXPECT_EQ(fixture.server.idle_disconnects(), 1u);

  jam.Release();
  std::vector<Frame> done = ExpectFrames(*waiter, parser, 1);
  ASSERT_EQ(done.size(), 1u);
  ASSERT_EQ(done[0].type, MsgType::kWaitResponse);
  StatusOr<WaitResponse> result = WaitResponse::Decode(done[0].payload);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->request_id, 2u);
  EXPECT_EQ(result->job_id, submitted->job_id);
}

// Admission-control rejections carry a deterministic, per-tenant
// retry_after_ms: a tenant with no backlog of its own gets exactly the
// base hint even while the global queue is jammed.
TEST(ServerSim, RetryAfterHintIsDeterministicPerTenant) {
  AtrServer::Options options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.retry_after_base_ms = 50;
  SimFixture fixture(options);
  fixture.StartWithGraph();

  AtrService& service = fixture.server.service();
  WorkerJam jam(service);
  SolverOptions pending_options;
  pending_options.budget = 1;
  StatusOr<JobHandle> pending =
      service.Submit("social", "gas", pending_options);  // fills the queue
  ASSERT_TRUE(pending.ok());

  auto submit_rejected = [&](const std::string& tenant) -> uint32_t {
    auto conn = fixture.sim.Connect();
    SubmitRequest submit;
    submit.request_id = 1;
    submit.graph = "social";
    submit.solver = "gas";
    submit.options.budget = 1;
    submit.tenant = tenant;
    conn->Send(submit.EncodeFrame());
    FrameParser parser;
    std::vector<Frame> frames = ExpectFrames(*conn, parser, 1);
    if (frames.size() != 1 || frames[0].type != MsgType::kError) {
      ADD_FAILURE() << "expected a kError rejection";
      return 0;
    }
    StatusOr<ErrorResponse> error = ErrorResponse::Decode(frames[0].payload);
    EXPECT_TRUE(error.ok());
    EXPECT_EQ(error->code, StatusCode::kResourceExhausted);
    conn->Close();
    return error.ok() ? error->retry_after_ms : 0;
  };

  // "acme" has no jobs anywhere: its hint is exactly the base.
  EXPECT_EQ(submit_rejected("acme"), 50u);
  // The default tenant owns the whole jammed queue; its hint follows the
  // documented load formula. Nothing can drain while the jam holds, so
  // the load observed here is the load the server used.
  const uint32_t expected =
      50u * (1 + static_cast<uint32_t>(service.QueueLoad()) /
                     std::max(1, service.Workers()));
  EXPECT_EQ(submit_rejected(""), expected);
  EXPECT_GT(expected, 50u);

  jam.Release();
  ASSERT_TRUE(pending->Wait().ok());
}

// One-shot EINTR on read and on write must be invisible; EPIPE on write
// must cost exactly that connection and nothing else.
TEST(ServerSim, TransientFaultsAreRetriedFatalOnesAreNot) {
  SimFixture fixture;
  fixture.StartWithGraph();

  auto conn = fixture.sim.Connect();
  FrameParser parser;

  conn->FailNextRead(EINTR);
  conn->Send(PingFrame(1));
  std::vector<Frame> first = ExpectFrames(*conn, parser, 1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(ResponseRequestId(first[0]), 1u);

  conn->FailNextWrite(EINTR);
  conn->Send(PingFrame(2));
  std::vector<Frame> second = ExpectFrames(*conn, parser, 1);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(ResponseRequestId(second[0]), 2u);

  conn->FailNextWrite(EPIPE);
  conn->Send(PingFrame(3));
  EXPECT_TRUE(conn->WaitClosedByServer());

  // The EPIPE cost one connection, not the server.
  auto conn2 = fixture.sim.Connect();
  conn2->Send(PingFrame(4));
  FrameParser parser2;
  std::vector<Frame> after = ExpectFrames(*conn2, parser2, 1);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(ResponseRequestId(after[0]), 4u);
}

TEST(ServerSim, ConnectionResetDropsOnlyThatPeer) {
  SimFixture fixture;
  fixture.StartWithGraph();

  auto doomed = fixture.sim.Connect();
  doomed->Send(PingFrame(1));
  FrameParser parser;
  ASSERT_EQ(ExpectFrames(*doomed, parser, 1).size(), 1u);
  doomed->Reset(ECONNRESET);
  EXPECT_TRUE(doomed->WaitClosedByServer());

  auto conn = fixture.sim.Connect();
  conn->Send(PingFrame(2));
  FrameParser parser2;
  std::vector<Frame> frames = ExpectFrames(*conn, parser2, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(ResponseRequestId(frames[0]), 2u);
}

// A zero-length payload is a well-formed frame whose body fails request
// decoding: the server answers a structured error (request id 0 — there
// was nothing to echo) and the connection survives.
TEST(ServerSim, ZeroLengthPayloadFrameAnswersStructuredError) {
  SimFixture fixture;
  fixture.StartWithGraph();

  auto conn = fixture.sim.Connect();
  conn->Send(EncodeFrame(MsgType::kPing, {}));

  FrameParser parser;
  std::vector<Frame> frames = ExpectFrames(*conn, parser, 1);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, MsgType::kError);
  StatusOr<ErrorResponse> error = ErrorResponse::Decode(frames[0].payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->request_id, 0u);
  EXPECT_EQ(error->code, StatusCode::kInvalidArgument);

  conn->Send(PingFrame(11));
  std::vector<Frame> after = ExpectFrames(*conn, parser, 1);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(ResponseRequestId(after[0]), 11u);
}

}  // namespace
}  // namespace net
}  // namespace atr
