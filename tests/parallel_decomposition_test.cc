// Thread-sweep differential suite for the round-synchronous parallel truss
// decomposition (truss/parallel_peel.h) and the flat SoA peel engines
// behind DecompositionPlan (truss/plan.h, truss/flat_peel.h): on 100+
// seeded random graphs (Erdős–Rényi and power-law families), with and
// without anchored-edge sets and edge subsets, assert that every engine —
// and the dispatching ComputeTrussDecomposition entry points, under every
// plan — produce trussness, layer, and max_trussness vectors
// byte-identical to the serial Algorithm 1 peel for every thread count in
// {1, 2, 3, 4, 8, 16} (the plan matrix sweeps {1, 2, 8} per plan).
//
// The parallel fan-out cutoff is lowered to 1 for the sweep so even the
// small differential graphs exercise real multi-chunk rounds; a separate
// test runs larger graphs at the production cutoff so both the inline and
// fan-out paths are covered at realistic frontier sizes.
//
// Stress knobs (the CI nightly job turns these up, including under TSan):
//   ATR_STRESS_ITERS — multiplies the number of random graphs (default 1)
//   ATR_STRESS_SEED  — offsets every graph seed (default 0), so each
//                      nightly run explores a fresh slice of the space

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/flat_view.h"
#include "graph/generators/generators.h"
#include "graph/graph.h"
#include "tests/paper_fixtures.h"
#include "truss/decomposition.h"
#include "truss/flat_peel.h"
#include "truss/parallel_peel.h"
#include "truss/plan.h"
#include "util/env.h"
#include "util/parallel_for.h"

namespace atr {
namespace {

constexpr int kThreadSweep[] = {1, 2, 3, 4, 8, 16};

uint64_t StressIters() {
  return static_cast<uint64_t>(
      std::max<int64_t>(1, GetEnvInt64("ATR_STRESS_ITERS", 1)));
}

uint64_t StressSeed() {
  return static_cast<uint64_t>(
      std::max<int64_t>(0, GetEnvInt64("ATR_STRESS_SEED", 0)));
}

// RAII cutoff override so every test restores the production value.
class ScopedPeelCutoff {
 public:
  explicit ScopedPeelCutoff(size_t cutoff)
      : previous_(internal::SetParallelPeelMinFrontierForTest(cutoff)) {}
  ~ScopedPeelCutoff() {
    internal::SetParallelPeelMinFrontierForTest(previous_);
  }

 private:
  size_t previous_;
};

// The two required families plus their parameter spread (mirrors the
// incremental differential harness).
Graph MakeDifferentialGraph(uint64_t seed) {
  if (seed % 2 == 0) {
    return ErdosRenyiGraph(25 + seed % 30, 60 + (seed * 13) % 120, seed);
  }
  // Power-law with triad closure so the truss structure is non-trivial.
  return HolmeKimGraph(30 + seed % 25, 2 + seed % 3, 0.3 + 0.1 * (seed % 6),
                       seed);
}

// Seed-derived anchored-edge mask; empty on a quarter of the seeds.
std::vector<bool> MakeAnchors(const Graph& g, uint64_t seed) {
  if (seed % 4 == 0 || g.NumEdges() == 0) return {};
  std::vector<bool> anchored(g.NumEdges(), false);
  const uint32_t count = 1 + seed % 4;
  for (uint32_t i = 0; i < count; ++i) {
    anchored[(seed * 31 + i * 1009) % g.NumEdges()] = true;
  }
  return anchored;
}

// Seed-derived edge subset (anchored edges included); empty vector means
// "decompose the full graph".
std::vector<EdgeId> MakeSubset(const Graph& g,
                               const std::vector<bool>& anchored,
                               uint64_t seed) {
  if (seed % 3 == 0) return {};
  std::vector<EdgeId> subset;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const bool keep = ((seed + e) % 5 != 0) || (!anchored.empty() && anchored[e]);
    if (keep) subset.push_back(e);
  }
  return subset;
}

void ExpectIdentical(const TrussDecomposition& expected,
                     const TrussDecomposition& actual, uint64_t seed,
                     int threads, const char* label) {
  ASSERT_EQ(expected.trussness, actual.trussness)
      << label << " trussness diverged, seed " << seed << " threads "
      << threads;
  ASSERT_EQ(expected.layer, actual.layer)
      << label << " layer diverged, seed " << seed << " threads " << threads;
  ASSERT_EQ(expected.max_trussness, actual.max_trussness)
      << label << " max_trussness diverged, seed " << seed << " threads "
      << threads;
}

// One graph: serial oracle once, then the parallel engine and the
// dispatching entry point at every sweep thread count.
void RunEpisode(uint64_t seed) {
  const Graph g = MakeDifferentialGraph(seed);
  if (g.NumEdges() == 0) return;
  const std::vector<bool> anchored = MakeAnchors(g, seed);
  const std::vector<EdgeId> subset = MakeSubset(g, anchored, seed);

  const TrussDecomposition oracle =
      subset.empty()
          ? ComputeTrussDecompositionSerial(g, anchored)
          : ComputeTrussDecompositionOnSubsetSerial(g, anchored, subset);

  for (const int threads : kThreadSweep) {
    ScopedParallelism parallelism(threads);
    const TrussDecomposition parallel =
        subset.empty()
            ? ComputeTrussDecompositionParallel(g, anchored)
            : ComputeTrussDecompositionOnSubsetParallel(g, anchored, subset);
    ASSERT_NO_FATAL_FAILURE(
        ExpectIdentical(oracle, parallel, seed, threads, "parallel"));
    const TrussDecomposition dispatched =
        subset.empty()
            ? ComputeTrussDecomposition(g, anchored)
            : ComputeTrussDecompositionOnSubset(g, anchored, subset);
    ASSERT_NO_FATAL_FAILURE(
        ExpectIdentical(oracle, dispatched, seed, threads, "dispatch"));
  }
}

TEST(ParallelDecompositionDifferential, ThreadSweepMatchesSerialOracle) {
  // 120 graphs at the default multiplier: 60 ER + 60 power-law, each
  // decomposed at 6 thread counts through both entry points. The fan-out
  // cutoff of 1 forces multi-chunk rounds even on these small graphs.
  ScopedPeelCutoff cutoff(1);
  const uint64_t episodes = 120 * StressIters();
  const uint64_t base = StressSeed() * 1000003ULL;
  for (uint64_t i = 0; i < episodes; ++i) {
    ASSERT_NO_FATAL_FAILURE(RunEpisode(base + i)) << "episode " << i;
  }
}

TEST(ParallelDecompositionDifferential, LargeGraphsAtProductionCutoff) {
  // Frontiers on these graphs exceed the production fan-out cutoff, so the
  // real chunked path runs with realistic chunk boundaries.
  const uint64_t base = StressSeed() * 7919ULL;
  const std::pair<uint64_t, Graph> graphs[] = {
      {base + 1, ErdosRenyiGraph(600, 6000, base + 1)},
      {base + 2, HolmeKimGraph(1500, 4, 0.6, base + 2)},
      {base + 3, BarabasiAlbertGraph(1200, 5, base + 3)},
  };
  for (const auto& [seed, g] : graphs) {
    const TrussDecomposition oracle = ComputeTrussDecompositionSerial(g);
    for (const int threads : {2, 4, 16}) {
      ScopedParallelism parallelism(threads);
      const TrussDecomposition parallel =
          ComputeTrussDecompositionParallel(g);
      ASSERT_NO_FATAL_FAILURE(
          ExpectIdentical(oracle, parallel, seed, threads, "large"));
    }
  }
}

TEST(ParallelDecompositionDifferential, AnchoredLargeGraphAgrees) {
  const Graph g = HolmeKimGraph(1200, 4, 0.7, 42 + StressSeed());
  std::vector<bool> anchored(g.NumEdges(), false);
  for (EdgeId e = 0; e < g.NumEdges(); e += 97) anchored[e] = true;
  const TrussDecomposition oracle =
      ComputeTrussDecompositionSerial(g, anchored);
  for (const int threads : {3, 8}) {
    ScopedParallelism parallelism(threads);
    const TrussDecomposition parallel =
        ComputeTrussDecompositionParallel(g, anchored);
    ASSERT_NO_FATAL_FAILURE(
        ExpectIdentical(oracle, parallel, 42, threads, "anchored-large"));
  }
}

TEST(ParallelDecomposition, Fig3MatchesSerialAtEveryThreadCount) {
  ScopedPeelCutoff cutoff(1);
  const Graph g = MakeFig3Graph();
  const TrussDecomposition oracle = ComputeTrussDecompositionSerial(g);
  for (const int threads : kThreadSweep) {
    ScopedParallelism parallelism(threads);
    const TrussDecomposition parallel = ComputeTrussDecompositionParallel(g);
    ASSERT_NO_FATAL_FAILURE(
        ExpectIdentical(oracle, parallel, 0, threads, "fig3"));
  }
}

// The plan sweep: every algorithm plus knob variants that pin the
// partition (chunk_size) or force / suppress the fan-out (fanout_cutoff).
std::vector<std::pair<const char*, DecompositionPlan>> PlanMatrix() {
  DecompositionPlan bsp_chunk1 = DecompositionPlan::Bsp();
  bsp_chunk1.chunk_size = 1;
  DecompositionPlan bsp_chunk3 = DecompositionPlan::Bsp();
  bsp_chunk3.chunk_size = 3;
  DecompositionPlan bsp_inline = DecompositionPlan::Bsp();
  bsp_inline.fanout_cutoff = 1u << 30;  // every round runs inline
  DecompositionPlan core_chunk2 = DecompositionPlan::BspCoreThenTruss();
  core_chunk2.chunk_size = 2;
  return {{"serial", DecompositionPlan::Serial()},
          {"bsp", DecompositionPlan::Bsp()},
          {"bsp-core-truss", DecompositionPlan::BspCoreThenTruss()},
          {"bsp/c1", bsp_chunk1},
          {"bsp/c3", bsp_chunk3},
          {"bsp/inline", bsp_inline},
          {"bsp-core-truss/c2", core_chunk2}};
}

constexpr int kPlanThreadSweep[] = {1, 2, 8};

// One graph through the whole plan matrix: serial oracle once, then
// every (plan, thread count) pair through the WithPlan entry points.
void RunPlanEpisode(uint64_t seed) {
  const Graph g = MakeDifferentialGraph(seed);
  if (g.NumEdges() == 0) return;
  const std::vector<bool> anchored = MakeAnchors(g, seed);
  const std::vector<EdgeId> subset = MakeSubset(g, anchored, seed);

  const TrussDecomposition oracle =
      subset.empty()
          ? ComputeTrussDecompositionSerial(g, anchored)
          : ComputeTrussDecompositionOnSubsetSerial(g, anchored, subset);

  for (const auto& [label, plan] : PlanMatrix()) {
    for (const int threads : kPlanThreadSweep) {
      ScopedParallelism parallelism(threads);
      const TrussDecomposition got =
          subset.empty()
              ? ComputeTrussDecompositionWithPlan(g, anchored, plan)
              : ComputeTrussDecompositionOnSubsetWithPlan(g, anchored, subset,
                                                          plan);
      ASSERT_NO_FATAL_FAILURE(
          ExpectIdentical(oracle, got, seed, threads, label));
    }
  }
}

TEST(PlanDifferential, PlanMatrixMatchesSerialOracle) {
  // 60 graphs at the default multiplier, each decomposed under 7 plans at
  // 3 thread counts (anchored + subset variants folded in by seed). The
  // fan-out cutoff of 1 forces real multi-chunk rounds for the plans that
  // don't override fanout_cutoff themselves.
  ScopedPeelCutoff cutoff(1);
  const uint64_t episodes = 60 * StressIters();
  const uint64_t base = StressSeed() * 1000003ULL;
  for (uint64_t i = 0; i < episodes; ++i) {
    ASSERT_NO_FATAL_FAILURE(RunPlanEpisode(base + i)) << "episode " << i;
  }
}

TEST(PlanDifferential, AmbientScopeGovernsPlanLessEntryPoints) {
  // ScopedDecompositionPlan is how SolverOptions::plan reaches the
  // plan-less call sites; the dispatch must honor the innermost scope.
  ScopedPeelCutoff cutoff(1);
  const Graph g = MakeDifferentialGraph(7 + StressSeed());
  const TrussDecomposition oracle = ComputeTrussDecompositionSerial(g);
  for (const auto& [label, plan] : PlanMatrix()) {
    ScopedDecompositionPlan scope(plan);
    ASSERT_EQ(DecompositionPlan::Ambient(), plan) << label;
    ScopedParallelism parallelism(4);
    const TrussDecomposition got = ComputeTrussDecomposition(g);
    ASSERT_NO_FATAL_FAILURE(ExpectIdentical(oracle, got, 7, 4, label));
  }
  // Scopes nest: the innermost wins, and unwinding restores the outer.
  ScopedDecompositionPlan outer(DecompositionPlan::Serial());
  {
    ScopedDecompositionPlan inner(DecompositionPlan::BspCoreThenTruss());
    EXPECT_EQ(DecompositionPlan::Ambient(),
              DecompositionPlan::BspCoreThenTruss());
  }
  EXPECT_EQ(DecompositionPlan::Ambient(), DecompositionPlan::Serial());
}

TEST(PlanDifferential, LargeGraphsAtProductionCutoff) {
  // Frontiers exceed the production fan-out cutoff, so the flat engine's
  // real chunked rounds run with realistic chunk boundaries under every
  // non-serial plan.
  const uint64_t base = StressSeed() * 104729ULL;
  const std::pair<uint64_t, Graph> graphs[] = {
      {base + 1, ErdosRenyiGraph(600, 6000, base + 1)},
      {base + 2, HolmeKimGraph(1500, 4, 0.6, base + 2)},
  };
  for (const auto& [seed, g] : graphs) {
    const TrussDecomposition oracle = ComputeTrussDecompositionSerial(g);
    for (const DecompositionPlan& plan :
         {DecompositionPlan::Bsp(), DecompositionPlan::BspCoreThenTruss()}) {
      for (const int threads : {1, 8}) {
        ScopedParallelism parallelism(threads);
        const TrussDecomposition got =
            ComputeTrussDecompositionWithPlan(g, {}, plan);
        ASSERT_NO_FATAL_FAILURE(ExpectIdentical(oracle, got, seed, threads,
                                                plan.Name().c_str()));
      }
    }
  }
}

TEST(PlanDifferential, SharedFlatViewReusedAcrossCalls) {
  // The service snapshot path builds one FlatGraphView per graph version
  // and reuses it for every decomposition; the view-taking overloads must
  // agree with the build-per-call ones.
  ScopedPeelCutoff cutoff(1);
  const Graph g = MakeDifferentialGraph(11 + StressSeed());
  const std::vector<bool> anchored = MakeAnchors(g, 11);
  const std::vector<EdgeId> subset = MakeSubset(g, anchored, 11);
  const FlatGraphView view = FlatGraphView::Build(g);

  const TrussDecomposition full_oracle =
      ComputeTrussDecompositionSerial(g, anchored);
  const TrussDecomposition subset_oracle =
      ComputeTrussDecompositionOnSubsetSerial(g, anchored, subset);
  for (const DecompositionPlan& plan :
       {DecompositionPlan::Bsp(), DecompositionPlan::BspCoreThenTruss()}) {
    ScopedParallelism parallelism(3);
    const TrussDecomposition full =
        ComputeTrussDecompositionFlat(g, view, anchored, plan);
    ASSERT_NO_FATAL_FAILURE(
        ExpectIdentical(full_oracle, full, 11, 3, "shared-view"));
    const TrussDecomposition sub =
        ComputeTrussDecompositionOnSubsetFlat(g, view, anchored, subset, plan);
    ASSERT_NO_FATAL_FAILURE(
        ExpectIdentical(subset_oracle, sub, 11, 3, "shared-view-subset"));
  }
}

TEST(PlanDifferential, FlatEngineEdgeCases) {
  ScopedParallelism parallelism(8);
  for (const DecompositionPlan& plan :
       {DecompositionPlan::Bsp(), DecompositionPlan::BspCoreThenTruss()}) {
    const Graph empty = GraphBuilder(3).Build();
    const TrussDecomposition d = ComputeTrussDecompositionFlat(empty, {}, plan);
    EXPECT_EQ(d.trussness.size(), 0u);
    EXPECT_EQ(d.max_trussness, 2u);

    GraphBuilder b(2);
    b.AddEdge(0, 1);
    const Graph single = b.Build();
    const TrussDecomposition s =
        ComputeTrussDecompositionFlat(single, {}, plan);
    EXPECT_EQ(s.trussness[0], 2u);
    EXPECT_EQ(s.layer[0], 1u);

    // All edges anchored: nothing peels, max_trussness stays the floor.
    const Graph fig3 = MakeFig3Graph();
    const std::vector<bool> all(fig3.NumEdges(), true);
    const TrussDecomposition a =
        ComputeTrussDecompositionFlat(fig3, all, plan);
    for (EdgeId e = 0; e < fig3.NumEdges(); ++e) {
      EXPECT_EQ(a.trussness[e], kAnchoredTrussness) << "edge " << e;
    }
    EXPECT_EQ(a.max_trussness, 2u);
  }
}

TEST(PlanDifferential, PlanNamesRoundTrip) {
  for (const DecompositionPlan& plan :
       {DecompositionPlan::Serial(), DecompositionPlan::Bsp(),
        DecompositionPlan::BspCoreThenTruss()}) {
    const StatusOr<DecompositionPlan> parsed =
        DecompositionPlanFromName(plan.Name());
    ASSERT_TRUE(parsed.ok()) << plan.Name();
    EXPECT_EQ(parsed->algorithm, plan.algorithm);
  }
  EXPECT_FALSE(DecompositionPlanFromName("turbo").ok());
}

TEST(ParallelDecomposition, EmptyAndEdgelessGraphs) {
  ScopedParallelism parallelism(8);
  const Graph empty = GraphBuilder(3).Build();
  const TrussDecomposition d = ComputeTrussDecompositionParallel(empty);
  EXPECT_EQ(d.trussness.size(), 0u);
  EXPECT_EQ(d.max_trussness, 2u);

  GraphBuilder b(2);
  b.AddEdge(0, 1);
  const Graph single = b.Build();
  const TrussDecomposition s = ComputeTrussDecompositionParallel(single);
  EXPECT_EQ(s.trussness[0], 2u);
  EXPECT_EQ(s.layer[0], 1u);
}

}  // namespace
}  // namespace atr
