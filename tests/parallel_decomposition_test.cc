// Thread-sweep differential suite for the round-synchronous parallel truss
// decomposition (truss/parallel_peel.h): on 100+ seeded random graphs
// (Erdős–Rényi and power-law families), with and without anchored-edge
// sets and edge subsets, assert that the parallel engine — and the
// dispatching ComputeTrussDecomposition entry points — produce trussness,
// layer, and max_trussness vectors byte-identical to the serial Algorithm 1
// peel for every thread count in {1, 2, 3, 4, 8, 16}.
//
// The parallel fan-out cutoff is lowered to 1 for the sweep so even the
// small differential graphs exercise real multi-chunk rounds; a separate
// test runs larger graphs at the production cutoff so both the inline and
// fan-out paths are covered at realistic frontier sizes.
//
// Stress knobs (the CI nightly job turns these up, including under TSan):
//   ATR_STRESS_ITERS — multiplies the number of random graphs (default 1)
//   ATR_STRESS_SEED  — offsets every graph seed (default 0), so each
//                      nightly run explores a fresh slice of the space

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/generators/generators.h"
#include "graph/graph.h"
#include "tests/paper_fixtures.h"
#include "truss/decomposition.h"
#include "truss/parallel_peel.h"
#include "util/env.h"
#include "util/parallel_for.h"

namespace atr {
namespace {

constexpr int kThreadSweep[] = {1, 2, 3, 4, 8, 16};

uint64_t StressIters() {
  return static_cast<uint64_t>(
      std::max<int64_t>(1, GetEnvInt64("ATR_STRESS_ITERS", 1)));
}

uint64_t StressSeed() {
  return static_cast<uint64_t>(
      std::max<int64_t>(0, GetEnvInt64("ATR_STRESS_SEED", 0)));
}

// RAII cutoff override so every test restores the production value.
class ScopedPeelCutoff {
 public:
  explicit ScopedPeelCutoff(size_t cutoff)
      : previous_(internal::SetParallelPeelMinFrontierForTest(cutoff)) {}
  ~ScopedPeelCutoff() {
    internal::SetParallelPeelMinFrontierForTest(previous_);
  }

 private:
  size_t previous_;
};

// The two required families plus their parameter spread (mirrors the
// incremental differential harness).
Graph MakeDifferentialGraph(uint64_t seed) {
  if (seed % 2 == 0) {
    return ErdosRenyiGraph(25 + seed % 30, 60 + (seed * 13) % 120, seed);
  }
  // Power-law with triad closure so the truss structure is non-trivial.
  return HolmeKimGraph(30 + seed % 25, 2 + seed % 3, 0.3 + 0.1 * (seed % 6),
                       seed);
}

// Seed-derived anchored-edge mask; empty on a quarter of the seeds.
std::vector<bool> MakeAnchors(const Graph& g, uint64_t seed) {
  if (seed % 4 == 0 || g.NumEdges() == 0) return {};
  std::vector<bool> anchored(g.NumEdges(), false);
  const uint32_t count = 1 + seed % 4;
  for (uint32_t i = 0; i < count; ++i) {
    anchored[(seed * 31 + i * 1009) % g.NumEdges()] = true;
  }
  return anchored;
}

// Seed-derived edge subset (anchored edges included); empty vector means
// "decompose the full graph".
std::vector<EdgeId> MakeSubset(const Graph& g,
                               const std::vector<bool>& anchored,
                               uint64_t seed) {
  if (seed % 3 == 0) return {};
  std::vector<EdgeId> subset;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const bool keep = ((seed + e) % 5 != 0) || (!anchored.empty() && anchored[e]);
    if (keep) subset.push_back(e);
  }
  return subset;
}

void ExpectIdentical(const TrussDecomposition& expected,
                     const TrussDecomposition& actual, uint64_t seed,
                     int threads, const char* label) {
  ASSERT_EQ(expected.trussness, actual.trussness)
      << label << " trussness diverged, seed " << seed << " threads "
      << threads;
  ASSERT_EQ(expected.layer, actual.layer)
      << label << " layer diverged, seed " << seed << " threads " << threads;
  ASSERT_EQ(expected.max_trussness, actual.max_trussness)
      << label << " max_trussness diverged, seed " << seed << " threads "
      << threads;
}

// One graph: serial oracle once, then the parallel engine and the
// dispatching entry point at every sweep thread count.
void RunEpisode(uint64_t seed) {
  const Graph g = MakeDifferentialGraph(seed);
  if (g.NumEdges() == 0) return;
  const std::vector<bool> anchored = MakeAnchors(g, seed);
  const std::vector<EdgeId> subset = MakeSubset(g, anchored, seed);

  const TrussDecomposition oracle =
      subset.empty()
          ? ComputeTrussDecompositionSerial(g, anchored)
          : ComputeTrussDecompositionOnSubsetSerial(g, anchored, subset);

  for (const int threads : kThreadSweep) {
    ScopedParallelism parallelism(threads);
    const TrussDecomposition parallel =
        subset.empty()
            ? ComputeTrussDecompositionParallel(g, anchored)
            : ComputeTrussDecompositionOnSubsetParallel(g, anchored, subset);
    ASSERT_NO_FATAL_FAILURE(
        ExpectIdentical(oracle, parallel, seed, threads, "parallel"));
    const TrussDecomposition dispatched =
        subset.empty()
            ? ComputeTrussDecomposition(g, anchored)
            : ComputeTrussDecompositionOnSubset(g, anchored, subset);
    ASSERT_NO_FATAL_FAILURE(
        ExpectIdentical(oracle, dispatched, seed, threads, "dispatch"));
  }
}

TEST(ParallelDecompositionDifferential, ThreadSweepMatchesSerialOracle) {
  // 120 graphs at the default multiplier: 60 ER + 60 power-law, each
  // decomposed at 6 thread counts through both entry points. The fan-out
  // cutoff of 1 forces multi-chunk rounds even on these small graphs.
  ScopedPeelCutoff cutoff(1);
  const uint64_t episodes = 120 * StressIters();
  const uint64_t base = StressSeed() * 1000003ULL;
  for (uint64_t i = 0; i < episodes; ++i) {
    ASSERT_NO_FATAL_FAILURE(RunEpisode(base + i)) << "episode " << i;
  }
}

TEST(ParallelDecompositionDifferential, LargeGraphsAtProductionCutoff) {
  // Frontiers on these graphs exceed the production fan-out cutoff, so the
  // real chunked path runs with realistic chunk boundaries.
  const uint64_t base = StressSeed() * 7919ULL;
  const std::pair<uint64_t, Graph> graphs[] = {
      {base + 1, ErdosRenyiGraph(600, 6000, base + 1)},
      {base + 2, HolmeKimGraph(1500, 4, 0.6, base + 2)},
      {base + 3, BarabasiAlbertGraph(1200, 5, base + 3)},
  };
  for (const auto& [seed, g] : graphs) {
    const TrussDecomposition oracle = ComputeTrussDecompositionSerial(g);
    for (const int threads : {2, 4, 16}) {
      ScopedParallelism parallelism(threads);
      const TrussDecomposition parallel =
          ComputeTrussDecompositionParallel(g);
      ASSERT_NO_FATAL_FAILURE(
          ExpectIdentical(oracle, parallel, seed, threads, "large"));
    }
  }
}

TEST(ParallelDecompositionDifferential, AnchoredLargeGraphAgrees) {
  const Graph g = HolmeKimGraph(1200, 4, 0.7, 42 + StressSeed());
  std::vector<bool> anchored(g.NumEdges(), false);
  for (EdgeId e = 0; e < g.NumEdges(); e += 97) anchored[e] = true;
  const TrussDecomposition oracle =
      ComputeTrussDecompositionSerial(g, anchored);
  for (const int threads : {3, 8}) {
    ScopedParallelism parallelism(threads);
    const TrussDecomposition parallel =
        ComputeTrussDecompositionParallel(g, anchored);
    ASSERT_NO_FATAL_FAILURE(
        ExpectIdentical(oracle, parallel, 42, threads, "anchored-large"));
  }
}

TEST(ParallelDecomposition, Fig3MatchesSerialAtEveryThreadCount) {
  ScopedPeelCutoff cutoff(1);
  const Graph g = MakeFig3Graph();
  const TrussDecomposition oracle = ComputeTrussDecompositionSerial(g);
  for (const int threads : kThreadSweep) {
    ScopedParallelism parallelism(threads);
    const TrussDecomposition parallel = ComputeTrussDecompositionParallel(g);
    ASSERT_NO_FATAL_FAILURE(
        ExpectIdentical(oracle, parallel, 0, threads, "fig3"));
  }
}

TEST(ParallelDecomposition, EmptyAndEdgelessGraphs) {
  ScopedParallelism parallelism(8);
  const Graph empty = GraphBuilder(3).Build();
  const TrussDecomposition d = ComputeTrussDecompositionParallel(empty);
  EXPECT_EQ(d.trussness.size(), 0u);
  EXPECT_EQ(d.max_trussness, 2u);

  GraphBuilder b(2);
  b.AddEdge(0, 1);
  const Graph single = b.Build();
  const TrussDecomposition s = ComputeTrussDecompositionParallel(single);
  EXPECT_EQ(s.trussness[0], 2u);
  EXPECT_EQ(s.layer[0], 1u);
}

}  // namespace
}  // namespace atr
