// Tests for the upward-route follower search (Algorithm 3). The linchpin
// property: CountFollowers must reproduce the brute-force oracle (anchored
// re-decomposition diff) for every candidate edge, on every graph, including
// graphs that already carry anchors.

#include "route/follower_search.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/paper_fixtures.h"
#include "tests/test_helpers.h"
#include "truss/decomposition.h"
#include "truss/gain.h"

namespace atr {
namespace {

std::vector<EdgeId> Sorted(std::vector<EdgeId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(FollowerSearch, Fig3AnchorV9V10LiftsTheThreeHullEdges) {
  // The paper's Example 4: anchoring (v9,v10) makes (v8,v9), (v7,v8) and
  // (v5,v8) followers; the level-4 route through (v8,v10) dies on the
  // support check.
  const Graph g = MakeFig3Graph();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  FollowerSearch search(g);
  search.SetState(&d, nullptr);

  std::vector<EdgeId> followers;
  const uint32_t count = search.CountFollowers(Fig3Edge(g, 9, 10), &followers);
  EXPECT_EQ(count, 3u);
  const std::vector<EdgeId> expected = Sorted(
      {Fig3Edge(g, 8, 9), Fig3Edge(g, 7, 8), Fig3Edge(g, 5, 8)});
  EXPECT_EQ(Sorted(followers), expected);
}

TEST(FollowerSearch, Fig3MatchesBruteForceForEveryAnchor) {
  const Graph g = MakeFig3Graph();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  FollowerSearch search(g);
  search.SetState(&d, nullptr);
  for (EdgeId x = 0; x < g.NumEdges(); ++x) {
    std::vector<EdgeId> fast;
    search.CountFollowers(x, &fast);
    const std::vector<EdgeId> brute = BruteForceFollowers(g, d, {}, x);
    EXPECT_EQ(Sorted(fast), Sorted(brute)) << "anchor " << x;
  }
}

TEST(FollowerSearch, RouteSizeOfFig3Anchor) {
  // From (v9,v10): seeds are (v8,v9) (same level, later layer) and (v8,v10)
  // (higher trussness). The level-3 route reaches (v7,v8) and (v5,v8); the
  // level-4 route is pure reachability (no support check), so it expands
  // from (v8,v10) through the {v6,v8,v10,v11,v12} 4-hull along
  // nondecreasing layers — 6 of its 9 edges. Total: 3 + 6 = 9.
  const Graph g = MakeFig3Graph();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  FollowerSearch search(g);
  search.SetState(&d, nullptr);
  const uint32_t size = search.RouteSize(Fig3Edge(g, 9, 10));
  EXPECT_EQ(size, 9u);
  // The route set must cover the three true followers plus the failed
  // level-4 seed (routes are a superset of followers, Lemma 2).
  EXPECT_GE(size, search.CountFollowers(Fig3Edge(g, 9, 10)) + 1);
}

TEST(FollowerSearch, NoTriangleEdgeHasNoFollowersAndEmptyRoute) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(3, 4);  // isolated edge
  const Graph g = b.Build();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  FollowerSearch search(g);
  search.SetState(&d, nullptr);
  const EdgeId isolated = g.FindEdge(3, 4);
  EXPECT_EQ(search.CountFollowers(isolated), 0u);
  EXPECT_EQ(search.RouteSize(isolated), 0u);
}

// Property sweep: exact agreement with the brute-force oracle for every
// candidate edge over a varied family of random graphs.
class FollowerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FollowerPropertyTest, MatchesBruteForceOnAllEdges) {
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  FollowerSearch search(g);
  search.SetState(&d, nullptr);
  for (EdgeId x = 0; x < g.NumEdges(); ++x) {
    std::vector<EdgeId> fast;
    search.CountFollowers(x, &fast);
    const std::vector<EdgeId> brute = BruteForceFollowers(g, d, {}, x);
    ASSERT_EQ(Sorted(fast), Sorted(brute))
        << "anchor " << x << " seed " << seed;
  }
}

TEST_P(FollowerPropertyTest, MatchesBruteForceWithExistingAnchors) {
  // The search must stay exact when the graph already carries anchors
  // (greedy rounds 2+): anchors count as permanently survived partners.
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  if (g.NumEdges() < 6) return;
  std::vector<bool> anchored(g.NumEdges(), false);
  anchored[seed % g.NumEdges()] = true;
  anchored[(seed * 17 + 3) % g.NumEdges()] = true;
  const TrussDecomposition d = ComputeTrussDecomposition(g, anchored);
  FollowerSearch search(g);
  search.SetState(&d, &anchored);
  for (EdgeId x = 0; x < g.NumEdges(); ++x) {
    if (anchored[x]) continue;
    std::vector<EdgeId> fast;
    search.CountFollowers(x, &fast);
    const std::vector<EdgeId> brute = BruteForceFollowers(g, d, anchored, x);
    ASSERT_EQ(Sorted(fast), Sorted(brute))
        << "anchor " << x << " seed " << seed;
  }
}

TEST_P(FollowerPropertyTest, FollowersRiseByExactlyOne) {
  // Lemma 1: anchoring one edge lifts every follower by exactly 1 and
  // touches nothing else.
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  const EdgeId x = seed % g.NumEdges();
  std::vector<bool> anchored(g.NumEdges(), false);
  anchored[x] = true;
  const TrussDecomposition after = ComputeTrussDecomposition(g, anchored);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (e == x) continue;
    const uint32_t delta = after.trussness[e] - base.trussness[e];
    EXPECT_LE(delta, 1u) << "edge " << e << " seed " << seed;
  }
}

TEST_P(FollowerPropertyTest, RouteSizeBoundsFollowerCount) {
  // Followers lie on upward routes (Lemma 2), so the route size is an upper
  // bound on the follower count.
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  FollowerSearch search(g);
  search.SetState(&d, nullptr);
  for (EdgeId x = 0; x < g.NumEdges(); ++x) {
    EXPECT_LE(search.CountFollowers(x), search.RouteSize(x)) << "edge " << x;
  }
}

TEST_P(FollowerPropertyTest, ScratchStateIsReusableAcrossCalls) {
  // Epoch-stamped scratch must make repeated calls independent: the same
  // query twice gives the same answer after arbitrary interleaving.
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  FollowerSearch search(g);
  search.SetState(&d, nullptr);
  const EdgeId probe = seed % g.NumEdges();
  const uint32_t first = search.CountFollowers(probe);
  for (EdgeId x = 0; x < std::min<EdgeId>(g.NumEdges(), 16); ++x) {
    search.CountFollowers(x);
    search.RouteSize(x);
  }
  EXPECT_EQ(search.CountFollowers(probe), first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FollowerPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace atr
