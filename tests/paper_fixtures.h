// Graphs lifted from the paper's figures, used as ground-truth fixtures.

#ifndef ATR_TESTS_PAPER_FIXTURES_H_
#define ATR_TESTS_PAPER_FIXTURES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace atr {

// The running-example graph of Fig. 3 / Fig. 4 (13 vertices, 32 edges):
//  * a 3-hull path (v5,v8), (v7,v8), (v8,v9), (v9,v10),
//  * a 4-truss component on {v1,v2,v5,v7,v9} (5-clique minus (v5,v9)),
//  * a 4-truss component on {v6,v8,v10,v11,v12} (5-clique minus (v6,v10)),
//  * a 5-truss clique on {v3,v4,v5,v6,v13}.
// Vertices are 0-based: paper vertex v_i is (i-1) here.
inline Graph MakeFig3Graph() {
  GraphBuilder b(13);
  auto v = [](int paper_index) {
    return static_cast<VertexId>(paper_index - 1);
  };
  // 3-hull.
  b.AddEdge(v(5), v(8));
  b.AddEdge(v(7), v(8));
  b.AddEdge(v(8), v(9));
  b.AddEdge(v(9), v(10));
  // 4-truss component {v1,v2,v5,v7,v9} minus (v5,v9).
  const int c1[] = {1, 2, 5, 7, 9};
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      if ((c1[i] == 5 && c1[j] == 9) || (c1[i] == 9 && c1[j] == 5)) continue;
      b.AddEdge(v(c1[i]), v(c1[j]));
    }
  }
  // 4-truss component {v6,v8,v10,v11,v12} minus (v6,v10).
  const int c2[] = {6, 8, 10, 11, 12};
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      if ((c2[i] == 6 && c2[j] == 10) || (c2[i] == 10 && c2[j] == 6)) continue;
      b.AddEdge(v(c2[i]), v(c2[j]));
    }
  }
  // 5-truss clique {v3,v4,v5,v6,v13}.
  const int c3[] = {3, 4, 5, 6, 13};
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      b.AddEdge(v(c3[i]), v(c3[j]));
    }
  }
  return b.Build();
}

// Paper-indexed edge lookup for the Fig. 3 graph.
inline EdgeId Fig3Edge(const Graph& g, int paper_u, int paper_v) {
  return g.FindEdge(static_cast<VertexId>(paper_u - 1),
                    static_cast<VertexId>(paper_v - 1));
}

// Hand-checked golden (trussness, layer) values for every edge of the
// Fig. 3 running example, derived by walking Algorithm 1 by hand:
//  * k=3 peels the 3-hull path one edge per round: (v9,v10) in round 1
//    (support 1), then the chain unravels toward (v5,v8) (the paper's
//    Example 2 layer sequence L1..L4).
//  * k=4 peels both 5-clique-minus-one-edge components in two rounds: the
//    six edges incident to an endpoint of the missing edge have support 2
//    (round 1); the opposite triangle — (v1,v2),(v1,v7),(v2,v7) and
//    (v8,v11),(v8,v12),(v11,v12) — survives to round 2 with support 3
//    until round 1 strips it to 1.
//  * k=5 removes the 5-clique {v3,v4,v5,v6,v13} in a single batch: every
//    clique edge has support exactly 3 = k-2 (the external triangle of
//    (v5,v6) through v8 died with (v5,v8) at k=3).
struct Fig3GoldenEdge {
  int paper_u;
  int paper_v;
  uint32_t trussness;
  uint32_t layer;
};

inline std::vector<Fig3GoldenEdge> Fig3GoldenTable() {
  std::vector<Fig3GoldenEdge> golden = {
      // 3-hull path (Example 2: L1 = {(v9,v10)}, ..., L4 = {(v5,v8)}).
      {9, 10, 3, 1},
      {8, 9, 3, 2},
      {7, 8, 3, 3},
      {5, 8, 3, 4},
      // 4-truss component on {v1,v2,v5,v7,v9} (missing edge (v5,v9)).
      {1, 5, 4, 1},
      {1, 9, 4, 1},
      {2, 5, 4, 1},
      {2, 9, 4, 1},
      {5, 7, 4, 1},
      {7, 9, 4, 1},
      {1, 2, 4, 2},
      {1, 7, 4, 2},
      {2, 7, 4, 2},
      // 4-truss component on {v6,v8,v10,v11,v12} (missing edge (v6,v10)).
      {6, 8, 4, 1},
      {6, 11, 4, 1},
      {6, 12, 4, 1},
      {8, 10, 4, 1},
      {10, 11, 4, 1},
      {10, 12, 4, 1},
      {8, 11, 4, 2},
      {8, 12, 4, 2},
      {11, 12, 4, 2},
  };
  // 5-truss clique {v3,v4,v5,v6,v13}: all ten edges leave in k=5 round 1.
  const int clique[] = {3, 4, 5, 6, 13};
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      golden.push_back({clique[i], clique[j], 5, 1});
    }
  }
  return golden;
}

// The best single anchor of the running example (Example 4): anchoring
// (v9,v10) keeps the whole 3-hull alive through the k=3 phase, so its
// remaining three edges are only peeled at k=4 — a gain of 3, which no
// other candidate matches. All three greedy solvers must select it first.
inline constexpr int kFig3BestAnchorU = 9;
inline constexpr int kFig3BestAnchorV = 10;
inline constexpr uint32_t kFig3BestAnchorGain = 3;

// Followers of that anchor (paper vertex pairs), each rising 3 -> 4.
inline std::vector<std::pair<int, int>> Fig3BestAnchorFollowers() {
  return {{5, 8}, {7, 8}, {8, 9}};
}

}  // namespace atr

#endif  // ATR_TESTS_PAPER_FIXTURES_H_
