// Graphs lifted from the paper's figures, used as ground-truth fixtures.

#ifndef ATR_TESTS_PAPER_FIXTURES_H_
#define ATR_TESTS_PAPER_FIXTURES_H_

#include "graph/graph.h"

namespace atr {

// The running-example graph of Fig. 3 / Fig. 4 (13 vertices, 32 edges):
//  * a 3-hull path (v5,v8), (v7,v8), (v8,v9), (v9,v10),
//  * a 4-truss component on {v1,v2,v5,v7,v9} (5-clique minus (v5,v9)),
//  * a 4-truss component on {v6,v8,v10,v11,v12} (5-clique minus (v6,v10)),
//  * a 5-truss clique on {v3,v4,v5,v6,v13}.
// Vertices are 0-based: paper vertex v_i is (i-1) here.
inline Graph MakeFig3Graph() {
  GraphBuilder b(13);
  auto v = [](int paper_index) {
    return static_cast<VertexId>(paper_index - 1);
  };
  // 3-hull.
  b.AddEdge(v(5), v(8));
  b.AddEdge(v(7), v(8));
  b.AddEdge(v(8), v(9));
  b.AddEdge(v(9), v(10));
  // 4-truss component {v1,v2,v5,v7,v9} minus (v5,v9).
  const int c1[] = {1, 2, 5, 7, 9};
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      if ((c1[i] == 5 && c1[j] == 9) || (c1[i] == 9 && c1[j] == 5)) continue;
      b.AddEdge(v(c1[i]), v(c1[j]));
    }
  }
  // 4-truss component {v6,v8,v10,v11,v12} minus (v6,v10).
  const int c2[] = {6, 8, 10, 11, 12};
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      if ((c2[i] == 6 && c2[j] == 10) || (c2[i] == 10 && c2[j] == 6)) continue;
      b.AddEdge(v(c2[i]), v(c2[j]));
    }
  }
  // 5-truss clique {v3,v4,v5,v6,v13}.
  const int c3[] = {3, 4, 5, 6, 13};
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      b.AddEdge(v(c3[i]), v(c3[j]));
    }
  }
  return b.Build();
}

// Paper-indexed edge lookup for the Fig. 3 graph.
inline EdgeId Fig3Edge(const Graph& g, int paper_u, int paper_v) {
  return g.FindEdge(static_cast<VertexId>(paper_u - 1),
                    static_cast<VertexId>(paper_v - 1));
}

}  // namespace atr

#endif  // ATR_TESTS_PAPER_FIXTURES_H_
