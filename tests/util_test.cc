// Tests for the utility substrate: PRNG, status, env knobs, parallel loop,
// table rendering, and the bounded task-queue worker pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <set>
#include <vector>

#include "util/env.h"
#include "util/parallel_for.h"
#include "util/prng.h"
#include "util/status.h"
#include "util/table_printer.h"
#include "util/task_queue.h"
#include "util/timer.h"

namespace atr {
namespace {

TEST(Rng, DeterministicStreams) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(124);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != c.Next());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundedValuesStayInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, SampleWithoutReplacementProperties) {
  Rng rng(21);
  const std::vector<uint32_t> sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample[i - 1], sample[i]);  // sorted, distinct
  }
  EXPECT_LT(sample.back(), 100u);
  // Full draw returns everything.
  const std::vector<uint32_t> all = rng.SampleWithoutReplacement(10, 10);
  EXPECT_EQ(all.size(), 10u);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(33);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Status, OkAndErrorStates) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status err = Status::InvalidArgument("bad input");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.message(), "bad input");
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> value(42);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  StatusOr<int> error(Status::NotFound("missing"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

TEST(Env, ParsesAndDefaults) {
  ::setenv("ATR_TEST_INT", "123", 1);
  ::setenv("ATR_TEST_BAD", "12x", 1);
  ::setenv("ATR_TEST_DBL", "0.5", 1);
  EXPECT_EQ(GetEnvInt64("ATR_TEST_INT", 7), 123);
  EXPECT_EQ(GetEnvInt64("ATR_TEST_BAD", 7), 7);
  EXPECT_EQ(GetEnvInt64("ATR_TEST_UNSET_XYZ", 7), 7);
  EXPECT_DOUBLE_EQ(GetEnvDouble("ATR_TEST_DBL", 1.0), 0.5);
  EXPECT_EQ(GetEnvString("ATR_TEST_INT", ""), "123");
  ::unsetenv("ATR_TEST_INT");
  ::unsetenv("ATR_TEST_BAD");
  ::unsetenv("ATR_TEST_DBL");
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges) {
  int calls = 0;
  ParallelFor(0, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int64_t> sum{0};
  ParallelFor(3, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ScopedParallelism, NestedOverridesRestoreInDestructionOrder) {
  const int ambient = ParallelWorkerCount();
  {
    ScopedParallelism outer(5);
    EXPECT_EQ(ParallelWorkerCount(), 5);
    {
      ScopedParallelism inner(2);
      EXPECT_EQ(ParallelWorkerCount(), 2);
      {
        ScopedParallelism noop(0);  // non-positive: leaves setting untouched
        EXPECT_EQ(ParallelWorkerCount(), 2);
        ScopedParallelism negative(-3);
        EXPECT_EQ(ParallelWorkerCount(), 2);
      }
      EXPECT_EQ(ParallelWorkerCount(), 2);
    }
    EXPECT_EQ(ParallelWorkerCount(), 5);
  }
  EXPECT_EQ(ParallelWorkerCount(), ambient);
}

TEST(ParallelFor, RangeSmallerThanWorkerCount) {
  // n < workers: at most n chunks run, still covering [0, n) exactly once.
  ScopedParallelism parallelism(16);
  constexpr int64_t kN = 5;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForChunked, ChunkOrdinalsAreDenseAndBoundariesExact) {
  // Sweep n around worker-count multiples to hit every chunk-boundary
  // shape: n % workers == 0, == 1, == workers - 1, and n < workers.
  for (const int workers : {1, 2, 3, 4, 8}) {
    ScopedParallelism parallelism(workers);
    for (const int64_t n : {0, 1, 2, 7, 8, 9, 15, 16, 17, 100}) {
      const int expected_chunks = ParallelChunkCount(n);
      std::mutex mu;
      std::vector<std::array<int64_t, 3>> seen;  // (chunk, begin, end)
      ParallelForChunked(n, [&](int chunk, int64_t begin, int64_t end) {
        std::lock_guard<std::mutex> lock(mu);
        seen.push_back({chunk, begin, end});
      });
      if (n == 0) {
        EXPECT_EQ(expected_chunks, 0);
        EXPECT_TRUE(seen.empty());
        continue;
      }
      ASSERT_EQ(static_cast<int>(seen.size()), expected_chunks)
          << "workers " << workers << " n " << n;
      std::sort(seen.begin(), seen.end());
      int64_t cursor = 0;
      for (int c = 0; c < expected_chunks; ++c) {
        EXPECT_EQ(seen[c][0], c) << "dense ordinals";
        EXPECT_EQ(seen[c][1], cursor) << "contiguous begin";
        EXPECT_LT(seen[c][1], seen[c][2]) << "non-empty chunk";
        cursor = seen[c][2];
      }
      EXPECT_EQ(cursor, n) << "chunks cover [0, n)";
    }
  }
}

TEST(ParallelChunkCount, OneNonEmptyChunkPerEffectiveWorker) {
  // The old ceil(n / workers) chunk-length rounding starved workers on
  // tiny ranges: n = 5 with 4 workers made length-2 chunks — 2/2/1 across
  // three chunks, one worker idle. The contract now is min(workers, n)
  // chunks, always all non-empty.
  {
    ScopedParallelism parallelism(4);
    EXPECT_EQ(ParallelChunkCount(5), 4);
    EXPECT_EQ(ParallelChunkCount(3), 3);
    EXPECT_EQ(ParallelChunkCount(4), 4);
    EXPECT_EQ(ParallelChunkCount(100), 4);
    EXPECT_EQ(ParallelChunkCount(1), 1);
    EXPECT_EQ(ParallelChunkCount(0), 0);
    EXPECT_EQ(ParallelChunkCount(-7), 0);
  }
  {
    ScopedParallelism parallelism(8);
    EXPECT_EQ(ParallelChunkCount(8), 8);
    EXPECT_EQ(ParallelChunkCount(9), 8);
    EXPECT_EQ(ParallelChunkCount(7), 7);
  }
}

TEST(ParallelForChunked, ChunksAreBalancedAndNonEmpty) {
  // The balanced partition: every chunk non-empty, lengths differ by at
  // most one, larger chunks first-come in index order.
  for (const int workers : {2, 3, 4, 8}) {
    ScopedParallelism parallelism(workers);
    for (const int64_t n : {1, 2, 5, 7, 9, 31}) {
      std::mutex mu;
      std::vector<int64_t> lengths(static_cast<size_t>(ParallelChunkCount(n)),
                                   -1);
      ParallelForChunked(n, [&](int chunk, int64_t begin, int64_t end) {
        std::lock_guard<std::mutex> lock(mu);
        lengths[static_cast<size_t>(chunk)] = end - begin;
      });
      int64_t lo = n;
      int64_t hi = 0;
      for (const int64_t len : lengths) {
        ASSERT_GT(len, 0) << "workers " << workers << " n " << n
                          << ": empty or unvisited chunk";
        lo = std::min(lo, len);
        hi = std::max(hi, len);
      }
      EXPECT_LE(hi - lo, 1) << "workers " << workers << " n " << n;
    }
  }
}

TEST(ParallelFor, NestedCallsRunInlineInsideWorkers) {
  // A ParallelFor issued from inside a worker body must not fan out a
  // second level of threads: the nested call sees one worker and runs
  // inline, so per-chunk state in the outer loop stays single-writer.
  ScopedParallelism parallelism(4);
  std::atomic<int> nested_violations{0};
  std::atomic<int64_t> covered{0};
  ParallelFor(8, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      if (ParallelWorkerCount() != 1) nested_violations.fetch_add(1);
      if (ParallelChunkCount(100) != 1) nested_violations.fetch_add(1);
      ParallelFor(10, [&](int64_t b, int64_t e) {
        covered.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(nested_violations.load(), 0);
  EXPECT_EQ(covered.load(), 80);  // 8 outer iterations x 10 inner elements
}

TEST(TablePrinter, AlignsColumnsAndFormatsNumbers) {
  TablePrinter t({"Dataset", "Edges"});
  t.AddRow({"college", TablePrinter::FormatInt(13838)});
  t.AddRow({"x", "1"});
  const std::string rendered = t.ToString();
  EXPECT_NE(rendered.find("13,838"), std::string::npos);
  EXPECT_NE(rendered.find("Dataset"), std::string::npos);
  EXPECT_EQ(TablePrinter::FormatInt(1234567), "1,234,567");
  EXPECT_EQ(TablePrinter::FormatInt(-42), "-42");
  EXPECT_EQ(TablePrinter::FormatPercent(0.817), "81.7%");
  EXPECT_EQ(TablePrinter::FormatSeconds(1.23456), "1.235");
}

TEST(WallTimer, IsMonotone) {
  WallTimer timer;
  const double first = timer.ElapsedSeconds();
  const double second = timer.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_GE(first, 0.0);
}

TEST(TaskQueue, RunsEveryTaskAndWaitsIdle) {
  TaskQueue::Options options;
  options.workers = 3;
  TaskQueue queue(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        queue.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); })
            .ok());
  }
  queue.WaitIdle();
  EXPECT_EQ(ran.load(), 50);
  EXPECT_EQ(queue.tasks_executed(), 50u);
  EXPECT_EQ(queue.workers(), 3);
}

TEST(TaskQueue, SingleWorkerPreservesSubmissionOrder) {
  TaskQueue::Options options;
  options.workers = 1;
  TaskQueue queue(options);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    // One worker: no race on `order`.
    ASSERT_TRUE(queue.Submit([&order, i] { order.push_back(i); }).ok());
  }
  queue.WaitIdle();
  ASSERT_EQ(order.size(), 20u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(TaskQueue, TrySubmitFailsOnlyWhileFull) {
  TaskQueue::Options options;
  options.workers = 1;
  options.capacity = 1;
  TaskQueue queue(options);

  // Park the worker so the queue backs up deterministically.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool parked = false;
  bool release = false;
  ASSERT_TRUE(queue
                  .Submit([&] {
                    std::unique_lock<std::mutex> lock(gate_mu);
                    parked = true;
                    gate_cv.notify_all();
                    gate_cv.wait(lock, [&] { return release; });
                  })
                  .ok());
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return parked; });
  }

  std::atomic<int> ran{0};
  auto count = [&ran] { ran.fetch_add(1, std::memory_order_relaxed); };
  EXPECT_TRUE(queue.TrySubmit(count).ok());  // fills the single pending slot
  EXPECT_EQ(queue.TrySubmit(count).code(),   // at capacity
            StatusCode::kResourceExhausted);
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    release = true;
    gate_cv.notify_all();
  }
  queue.WaitIdle();
  EXPECT_TRUE(queue.TrySubmit(count).ok());  // space again
  queue.WaitIdle();
  EXPECT_EQ(ran.load(), 2);
}

TEST(TaskQueue, SubmitAfterShutdownRejectsWithFailedPrecondition) {
  TaskQueue::Options options;
  options.workers = 1;
  TaskQueue queue(options);
  std::atomic<int> ran{0};
  auto count = [&ran] { ran.fetch_add(1, std::memory_order_relaxed); };
  EXPECT_TRUE(queue.Submit(count).ok());
  queue.Shutdown();

  // The pool will never drain a new task: both entry points must reject
  // instead of silently dropping (or deadlocking a blocked producer).
  EXPECT_EQ(queue.Submit(count).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(queue.TrySubmit(count).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ran.load(), 1);  // the pre-shutdown task ran, nothing else
}

TEST(TaskQueue, ComposesWithScopedParallelism) {
  // A pool built under an 8-thread budget splits it across its workers:
  // inner ParallelFor calls inside tasks must not multiply into 8 * 4.
  ScopedParallelism budget(8);
  TaskQueue::Options options;
  options.workers = 4;
  TaskQueue queue(options);
  EXPECT_EQ(queue.threads_per_task(), 2);

  std::atomic<int> seen{0};
  ASSERT_TRUE(queue.Submit([&seen] { seen.store(ParallelWorkerCount()); }).ok());
  queue.WaitIdle();
  EXPECT_EQ(seen.load(), 2);

  // An explicit per-task override (SolverOptions::threads) still wins.
  std::atomic<int> overridden{0};
  ASSERT_TRUE(queue
                  .Submit([&overridden] {
                    ScopedParallelism mine(5);
                    overridden.store(ParallelWorkerCount());
                  })
                  .ok());
  queue.WaitIdle();
  EXPECT_EQ(overridden.load(), 5);
}

TEST(TaskQueue, ShutdownDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    TaskQueue::Options options;
    options.workers = 2;
    TaskQueue queue(options);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          queue.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); })
              .ok());
    }
    // Destructor shuts down: every submitted task still runs.
  }
  EXPECT_EQ(ran.load(), 10);
}

}  // namespace
}  // namespace atr
