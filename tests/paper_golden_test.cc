// Golden tests pinning the paper's running example (Fig. 3 / Fig. 4) to
// hand-checked figures: the exact (trussness, layer) table for all 32
// edges under both peel engines, and the first-anchor behavior of BASE,
// BASE+, and GAS (anchor identity, gain, follower set, follower
// trussness). Unlike the randomized differential harnesses, a regression
// in the deletion order `≺` fails here with a named edge and an expected
// value, not a seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "api/registry.h"
#include "api/solver.h"
#include "tests/paper_fixtures.h"
#include "truss/decomposition.h"
#include "truss/gain.h"
#include "truss/parallel_peel.h"
#include "util/parallel_for.h"

namespace atr {
namespace {

void ExpectGoldenTable(const Graph& g, const TrussDecomposition& d,
                       const char* engine) {
  const std::vector<Fig3GoldenEdge> golden = Fig3GoldenTable();
  ASSERT_EQ(golden.size(), g.NumEdges()) << "golden table incomplete";
  for (const Fig3GoldenEdge& expected : golden) {
    const EdgeId e = Fig3Edge(g, expected.paper_u, expected.paper_v);
    ASSERT_NE(e, kInvalidEdge)
        << "(" << expected.paper_u << "," << expected.paper_v << ")";
    EXPECT_EQ(d.trussness[e], expected.trussness)
        << engine << " trussness of (" << expected.paper_u << ","
        << expected.paper_v << ")";
    EXPECT_EQ(d.layer[e], expected.layer)
        << engine << " layer of (" << expected.paper_u << ","
        << expected.paper_v << ")";
  }
  EXPECT_EQ(d.max_trussness, 5u) << engine;
}

TEST(PaperGolden, Fig3TrussnessAndLayerTableSerial) {
  const Graph g = MakeFig3Graph();
  ExpectGoldenTable(g, ComputeTrussDecompositionSerial(g), "serial");
}

TEST(PaperGolden, Fig3TrussnessAndLayerTableParallel) {
  const Graph g = MakeFig3Graph();
  for (const int threads : {1, 2, 4, 8}) {
    ScopedParallelism parallelism(threads);
    ExpectGoldenTable(g, ComputeTrussDecompositionParallel(g), "parallel");
  }
}

// Anchoring (v9,v10) must lift exactly {(v5,v8), (v7,v8), (v8,v9)} from
// trussness 3 to 4 (hand-checked: with the anchor alive the k=3 frontier
// is empty, so the whole hull survives to the k=4 peel).
TEST(PaperGolden, Fig3BestAnchorFollowerSet) {
  const Graph g = MakeFig3Graph();
  const TrussDecomposition base = ComputeTrussDecompositionSerial(g);
  const EdgeId anchor = Fig3Edge(g, kFig3BestAnchorU, kFig3BestAnchorV);
  ASSERT_NE(anchor, kInvalidEdge);

  std::vector<EdgeId> expected;
  for (const auto& [u, v] : Fig3BestAnchorFollowers()) {
    expected.push_back(Fig3Edge(g, u, v));
  }
  std::sort(expected.begin(), expected.end());

  const std::vector<EdgeId> followers =
      BruteForceFollowers(g, base, {}, anchor);  // returned in id order
  EXPECT_EQ(followers, expected);

  // The anchored re-decomposition agrees edge-by-edge: followers rise by
  // exactly one level, everything else is unchanged.
  std::vector<bool> anchored(g.NumEdges(), false);
  anchored[anchor] = true;
  const TrussDecomposition after = ComputeTrussDecomposition(g, anchored);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (e == anchor) {
      EXPECT_EQ(after.trussness[e], kAnchoredTrussness);
      continue;
    }
    const bool is_follower =
        std::binary_search(expected.begin(), expected.end(), e);
    EXPECT_EQ(after.trussness[e], base.trussness[e] + (is_follower ? 1 : 0))
        << "edge " << e;
  }
}

// Anchoring (v9,v10) also reshapes the k=4 deletion layers of the second
// component: (v6,v8) and (v8,v10) gain a surviving triangle through the
// anchor's endpoints, so they move from round 1 to round 2. A regression
// here means anchored peeling is reusing unanchored layer state.
TEST(PaperGolden, Fig3AnchoredLayersShift) {
  const Graph g = MakeFig3Graph();
  std::vector<bool> anchored(g.NumEdges(), false);
  anchored[Fig3Edge(g, kFig3BestAnchorU, kFig3BestAnchorV)] = true;
  const TrussDecomposition after = ComputeTrussDecomposition(g, anchored);

  // The lifted hull edges all leave in k=4 round 1.
  for (const auto& [u, v] : Fig3BestAnchorFollowers()) {
    EXPECT_EQ(after.trussness[Fig3Edge(g, u, v)], 4u);
    EXPECT_EQ(after.layer[Fig3Edge(g, u, v)], 1u);
  }
  EXPECT_EQ(after.layer[Fig3Edge(g, 6, 8)], 2u);
  EXPECT_EQ(after.layer[Fig3Edge(g, 8, 10)], 2u);
  // The component's other round-1/round-2 edges keep their layers.
  EXPECT_EQ(after.layer[Fig3Edge(g, 10, 11)], 1u);
  EXPECT_EQ(after.layer[Fig3Edge(g, 11, 12)], 2u);
}

SolveResult RunVia(const char* solver_name, const Graph& g, uint32_t budget) {
  StatusOr<std::unique_ptr<Solver>> solver =
      SolverRegistry::Create(solver_name);
  EXPECT_TRUE(solver.ok()) << solver.status().message();
  SolverOptions options;
  options.budget = budget;
  StatusOr<SolveResult> result = (*solver)->Solve(g, options);
  EXPECT_TRUE(result.ok()) << result.status().message();
  return *std::move(result);
}

// BASE, BASE+, and GAS must each open with the hand-checked best anchor
// and report the golden gain and follower trussness distribution.
TEST(PaperGolden, GreedySolversPickGoldenFirstAnchor) {
  const Graph g = MakeFig3Graph();
  const EdgeId golden_anchor =
      Fig3Edge(g, kFig3BestAnchorU, kFig3BestAnchorV);
  for (const char* name : {"base", "base+", "gas"}) {
    const SolveResult result = RunVia(name, g, 1);
    ASSERT_EQ(result.anchor_edges.size(), 1u) << name;
    EXPECT_EQ(result.anchor_edges[0], golden_anchor) << name;
    EXPECT_EQ(result.total_gain, kFig3BestAnchorGain) << name;
    ASSERT_EQ(result.rounds.size(), 1u) << name;
    EXPECT_EQ(result.rounds[0].gain, kFig3BestAnchorGain) << name;
    // All three followers sat at trussness 3 before anchoring.
    std::vector<uint32_t> follower_trussness =
        result.rounds[0].follower_trussness;
    std::sort(follower_trussness.begin(), follower_trussness.end());
    EXPECT_EQ(follower_trussness, (std::vector<uint32_t>{3, 3, 3})) << name;
  }
}

}  // namespace
}  // namespace atr
