// Tests for the durable catalog (src/persist/): snapshot encode/decode
// with corruption rejection, delta-log crash-tail tolerance, the
// CatalogStore disk layout (base ⊕ log, compaction crash-safety windows),
// and the PersistentCatalog restart-resume contract — a new process
// serves every graph at its latest version, byte-identical decomposition,
// zero rebuilds.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/service.h"
#include "graph/generators/generators.h"
#include "persist/catalog.h"
#include "persist/delta_log.h"
#include "persist/snapshot.h"
#include "truss/decomposition.h"
#include "util/binary_io.h"

namespace atr {
namespace persist {
namespace {

Graph SmallGraph(uint64_t seed = 7) { return HolmeKimGraph(40, 3, 0.6, seed); }

// A fresh directory under the gtest temp root for each test.
std::string FreshRoot(const char* name) {
  const std::string root = std::string(::testing::TempDir()) + "/" + name;
  std::system(("rm -rf " + root).c_str());
  return root;
}

void ExpectSameDecomposition(const TrussDecomposition& a,
                             const TrussDecomposition& b) {
  EXPECT_EQ(a.max_trussness, b.max_trussness);
  ASSERT_EQ(a.trussness.size(), b.trussness.size());
  ASSERT_EQ(a.layer.size(), b.layer.size());
  EXPECT_EQ(a.trussness, b.trussness);
  EXPECT_EQ(a.layer, b.layer);
}

void ExpectSameGraph(const Graph& a, const Graph& b) {
  EXPECT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.Edge(e), b.Edge(e)) << "edge id " << e;
  }
}

// --- Snapshot codec -------------------------------------------------------

TEST(Snapshot, RoundTripsGraphNameVersionAndDecomposition) {
  const Graph g = SmallGraph();
  const TrussDecomposition decomposition = ComputeTrussDecomposition(g);

  const std::vector<uint8_t> bytes = EncodeSnapshot("g1", 5, g, decomposition);
  StatusOr<SnapshotRecord> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();

  EXPECT_EQ(decoded->graph_name, "g1");
  EXPECT_EQ(decoded->version, 5u);
  ExpectSameGraph(decoded->graph, g);
  ExpectSameDecomposition(decoded->decomposition, decomposition);
}

TEST(Snapshot, RejectsCorruptionEverywhere) {
  const Graph g = SmallGraph();
  const TrussDecomposition decomposition = ComputeTrussDecomposition(g);
  const std::vector<uint8_t> bytes = EncodeSnapshot("g", 1, g, decomposition);

  // Flipping any single byte must be caught (magic, header fields, or the
  // payload CRC), never crash. Sample every 7th offset to keep it fast.
  for (size_t i = 0; i < bytes.size(); i += 7) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x20;
    StatusOr<SnapshotRecord> decoded = DecodeSnapshot(corrupt);
    EXPECT_FALSE(decoded.ok()) << "byte " << i << " flip went unnoticed";
  }

  // Truncation at every prefix length (sampled) is an error, not a crash.
  for (size_t len = 0; len < bytes.size(); len += 11) {
    StatusOr<SnapshotRecord> decoded =
        DecodeSnapshot(std::span<const uint8_t>(bytes.data(), len));
    EXPECT_FALSE(decoded.ok()) << "prefix " << len;
  }

  // Trailing garbage is rejected too.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(DecodeSnapshot(padded).ok());
}

TEST(Snapshot, RejectsSentinelTrussnessFromDisk) {
  const Graph g = SmallGraph();
  TrussDecomposition decomposition = ComputeTrussDecomposition(g);
  decomposition.trussness[0] = kTrussnessNotComputed;
  const std::vector<uint8_t> bytes = EncodeSnapshot("g", 1, g, decomposition);
  StatusOr<SnapshotRecord> decoded = DecodeSnapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(Snapshot, WriteFileAtomicRoundTrip) {
  const std::string root = FreshRoot("snapshot_io");
  ASSERT_TRUE(CatalogStore(root).Init().ok());
  const std::string path = root + "/blob.bin";

  const std::vector<uint8_t> payload = {1, 2, 3, 250, 251, 252};
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  StatusOr<std::vector<uint8_t>> read = ReadFileBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);

  EXPECT_EQ(ReadFileBytes(root + "/absent.bin").status().code(),
            StatusCode::kNotFound);
}

// --- Delta log ------------------------------------------------------------

GraphDelta MakeDelta(uint32_t salt) {
  GraphDelta delta;
  delta.add = {{salt, salt + 100}, {salt + 1, salt + 101}};
  delta.remove = {{salt + 2, salt + 102}};
  return delta;
}

TEST(DeltaLog, RoundTripsRecords) {
  std::vector<uint8_t> log;
  for (uint32_t i = 0; i < 4; ++i) {
    const std::vector<uint8_t> record = EncodeDeltaRecord(2 + i, MakeDelta(i));
    log.insert(log.end(), record.begin(), record.end());
  }
  const DeltaLogContents contents = DecodeDeltaLog(log);
  EXPECT_EQ(contents.tail_bytes_dropped, 0u);
  ASSERT_EQ(contents.records.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(contents.records[i].version, 2 + i);
    EXPECT_EQ(contents.records[i].delta.add, MakeDelta(i).add);
    EXPECT_EQ(contents.records[i].delta.remove, MakeDelta(i).remove);
  }
}

TEST(DeltaLog, DropsTornTailAtEveryCutPoint) {
  std::vector<uint8_t> log = EncodeDeltaRecord(2, MakeDelta(0));
  const size_t first_len = log.size();
  const std::vector<uint8_t> second = EncodeDeltaRecord(3, MakeDelta(1));
  log.insert(log.end(), second.begin(), second.end());

  // Cutting anywhere inside the second record keeps exactly the first.
  for (size_t len = first_len; len < log.size(); ++len) {
    const DeltaLogContents contents =
        DecodeDeltaLog(std::span<const uint8_t>(log.data(), len));
    ASSERT_EQ(contents.records.size(), 1u) << "cut at " << len;
    EXPECT_EQ(contents.records[0].version, 2u);
    EXPECT_EQ(contents.tail_bytes_dropped, len - first_len);
  }
}

TEST(DeltaLog, CorruptRecordStopsReplayCleanly) {
  std::vector<uint8_t> log = EncodeDeltaRecord(2, MakeDelta(0));
  const size_t first_len = log.size();
  const std::vector<uint8_t> second = EncodeDeltaRecord(3, MakeDelta(1));
  log.insert(log.end(), second.begin(), second.end());
  log[first_len + 9] ^= 0xff;  // corrupt the second record's payload

  const DeltaLogContents contents = DecodeDeltaLog(log);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_GT(contents.tail_bytes_dropped, 0u);
}

TEST(DeltaLog, WriterAppendsDurably) {
  const std::string root = FreshRoot("delta_writer");
  ASSERT_TRUE(CatalogStore(root).Init().ok());
  const std::string path = root + "/test.log";

  DeltaLogWriter writer;
  EXPECT_EQ(writer.Append(2, MakeDelta(0)).code(),
            StatusCode::kFailedPrecondition);  // append before open
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.Append(2, MakeDelta(0)).ok());
  ASSERT_TRUE(writer.Append(3, MakeDelta(1)).ok());
  writer.Close();

  StatusOr<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  const DeltaLogContents contents = DecodeDeltaLog(*bytes);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[0].version, 2u);
  EXPECT_EQ(contents.records[1].version, 3u);
}

// --- CatalogStore ---------------------------------------------------------

TEST(CatalogStore, ValidatesGraphNames) {
  EXPECT_TRUE(CatalogStore::ValidGraphName("social"));
  EXPECT_TRUE(CatalogStore::ValidGraphName("a-b_c.9"));
  EXPECT_FALSE(CatalogStore::ValidGraphName(""));
  EXPECT_FALSE(CatalogStore::ValidGraphName(".hidden"));
  EXPECT_FALSE(CatalogStore::ValidGraphName("has/slash"));
  EXPECT_FALSE(CatalogStore::ValidGraphName("has space"));
  EXPECT_FALSE(CatalogStore::ValidGraphName(std::string(129, 'a')));
}

TEST(CatalogStore, SaveLoadWithDeltas) {
  const std::string root = FreshRoot("store_basic");
  CatalogStore store(root);
  ASSERT_TRUE(store.Init().ok());

  const Graph g = SmallGraph();
  const TrussDecomposition decomposition = ComputeTrussDecomposition(g);
  ASSERT_TRUE(store.SaveBaseSnapshot("g", 1, g, decomposition).ok());
  ASSERT_TRUE(store.AppendDelta("g", 2, MakeDelta(0)).ok());
  ASSERT_TRUE(store.AppendDelta("g", 3, MakeDelta(1)).ok());

  StatusOr<std::vector<std::string>> names = store.ListGraphNames();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"g"});

  StatusOr<CatalogStore::LoadedGraph> loaded = store.Load("g");
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->base.version, 1u);
  ExpectSameGraph(loaded->base.graph, g);
  ASSERT_EQ(loaded->deltas.size(), 2u);
  EXPECT_EQ(loaded->deltas[0].version, 2u);
  EXPECT_EQ(loaded->deltas[1].version, 3u);
  EXPECT_EQ(loaded->log_tail_dropped, 0u);
}

TEST(CatalogStore, LoadSkipsRecordsAtOrBelowBaseAndStopsAtGaps) {
  const std::string root = FreshRoot("store_windows");
  CatalogStore store(root);
  ASSERT_TRUE(store.Init().ok());

  const Graph g = SmallGraph();
  const TrussDecomposition decomposition = ComputeTrussDecomposition(g);

  // Simulate the crash window between compaction's snapshot rename and
  // its log reset: base v3 on disk, log still holding v2..v5 — v2/v3 are
  // subsumed, v4/v5 replay.
  ASSERT_TRUE(store.SaveBaseSnapshot("g", 3, g, decomposition).ok());
  ASSERT_TRUE(store.AppendDelta("g", 2, MakeDelta(0)).ok());
  ASSERT_TRUE(store.AppendDelta("g", 3, MakeDelta(1)).ok());
  ASSERT_TRUE(store.AppendDelta("g", 4, MakeDelta(2)).ok());
  ASSERT_TRUE(store.AppendDelta("g", 5, MakeDelta(3)).ok());
  ASSERT_TRUE(store.AppendDelta("g", 7, MakeDelta(4)).ok());  // gap: ignored

  StatusOr<CatalogStore::LoadedGraph> loaded = store.Load("g");
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->deltas.size(), 2u);
  EXPECT_EQ(loaded->deltas[0].version, 4u);
  EXPECT_EQ(loaded->deltas[1].version, 5u);
}

TEST(CatalogStore, SaveBaseSnapshotResetsLogAndPrunesOldBases) {
  const std::string root = FreshRoot("store_compact");
  CatalogStore store(root);
  ASSERT_TRUE(store.Init().ok());

  const Graph g = SmallGraph();
  const TrussDecomposition decomposition = ComputeTrussDecomposition(g);
  ASSERT_TRUE(store.SaveBaseSnapshot("g", 1, g, decomposition).ok());
  ASSERT_TRUE(store.AppendDelta("g", 2, MakeDelta(0)).ok());

  ASSERT_TRUE(store.SaveBaseSnapshot("g", 2, g, decomposition).ok());

  StatusOr<CatalogStore::LoadedGraph> loaded = store.Load("g");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->base.version, 2u);
  EXPECT_TRUE(loaded->deltas.empty());

  // The v1 base file is gone.
  EXPECT_EQ(ReadFileBytes(root + "/g/snapshot-1.atrsnap").status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogStore, FallsBackToOlderBaseWhenNewestIsCorrupt) {
  const std::string root = FreshRoot("store_fallback");
  CatalogStore store(root);
  ASSERT_TRUE(store.Init().ok());

  const Graph g = SmallGraph();
  const TrussDecomposition decomposition = ComputeTrussDecomposition(g);
  ASSERT_TRUE(store.SaveBaseSnapshot("g", 1, g, decomposition).ok());

  // Drop a corrupt "newer" snapshot alongside (as a torn compaction
  // might, had WriteFileAtomic not existed); Load must fall back to v1.
  const std::vector<uint8_t> garbage = {'n', 'o', 't', 'a', 's', 'n', 'a', 'p'};
  ASSERT_TRUE(WriteFileAtomic(root + "/g/snapshot-9.atrsnap", garbage).ok());

  StatusOr<CatalogStore::LoadedGraph> loaded = store.Load("g");
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->base.version, 1u);
}

// --- PersistentCatalog: restart-resume ------------------------------------

// The decomposition actually served for `name`, by pointer-stable bytes.
TrussDecomposition ServedDecomposition(AtrService& service,
                                       const std::string& name) {
  StatusOr<GraphSnapshot> snapshot = service.Snapshot(name);
  EXPECT_TRUE(snapshot.ok());
  return *snapshot->decomposition;
}

TEST(PersistentCatalog, RestartResumesWithoutRebuilding) {
  const std::string root = FreshRoot("catalog_restart");
  TrussDecomposition before;
  uint64_t final_version = 0;

  {
    AtrService service;
    PersistentCatalog catalog(service,
                              {.root_dir = root, .compact_threshold = 0});
    ASSERT_TRUE(catalog.Open().ok());
    ASSERT_TRUE(catalog.AddGraph("g", SmallGraph()).ok());

    GraphDelta delta;
    delta.add = {{0, 25}, {1, 30}};
    ASSERT_TRUE(catalog.UpdateGraph("g", delta).ok());
    GraphDelta delta2;
    delta2.add = {{2, 35}};
    StatusOr<GraphSnapshot> updated = catalog.UpdateGraph("g", delta2);
    ASSERT_TRUE(updated.ok());
    final_version = updated->version;
    EXPECT_EQ(final_version, 3u);

    before = ServedDecomposition(service, "g");
    // First life pays exactly one build (AddGraph), never more.
    StatusOr<AtrService::GraphInfo> info = service.Info("g");
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->decomposition_builds, 1u);
    EXPECT_EQ(info->delta_chain_length, 2u);
    // No PersistAll, no Compact: this is the crash path — restore has to
    // come from base v1 ⊕ two logged deltas.
  }

  {
    AtrService service;
    PersistentCatalog catalog(service,
                              {.root_dir = root, .compact_threshold = 0});
    ASSERT_TRUE(catalog.Open().ok());
    EXPECT_EQ(catalog.restore_stats().graphs_restored, 1u);
    EXPECT_EQ(catalog.restore_stats().deltas_replayed, 2u);

    StatusOr<AtrService::GraphInfo> info = service.Info("g");
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->version, final_version);
    // The headline contract: restoring + replaying built NOTHING.
    EXPECT_EQ(info->decomposition_builds, 0u);

    ExpectSameDecomposition(ServedDecomposition(service, "g"), before);

    // And the restored graph still takes updates (version continues).
    GraphDelta delta;
    delta.add = {{3, 20}};
    StatusOr<GraphSnapshot> updated = catalog.UpdateGraph("g", delta);
    ASSERT_TRUE(updated.ok());
    EXPECT_EQ(updated->version, final_version + 1);
  }
}

TEST(PersistentCatalog, GracefulStopCompactsAndRestoreReplaysNothing) {
  const std::string root = FreshRoot("catalog_graceful");
  {
    AtrService service;
    PersistentCatalog catalog(service,
                              {.root_dir = root, .compact_threshold = 0});
    ASSERT_TRUE(catalog.Open().ok());
    ASSERT_TRUE(catalog.AddGraph("g", SmallGraph()).ok());
    GraphDelta delta;
    delta.add = {{0, 25}};
    ASSERT_TRUE(catalog.UpdateGraph("g", delta).ok());
    ASSERT_TRUE(catalog.PersistAll().ok());  // persist-on-stop

    // PersistAll folded the chain: counter reset, base at v2.
    StatusOr<AtrService::GraphInfo> info = service.Info("g");
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->delta_chain_length, 0u);
  }
  {
    AtrService service;
    PersistentCatalog catalog(service,
                              {.root_dir = root, .compact_threshold = 0});
    ASSERT_TRUE(catalog.Open().ok());
    EXPECT_EQ(catalog.restore_stats().graphs_restored, 1u);
    EXPECT_EQ(catalog.restore_stats().deltas_replayed, 0u);
    StatusOr<AtrService::GraphInfo> info = service.Info("g");
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->version, 2u);
    EXPECT_EQ(info->decomposition_builds, 0u);
  }
}

TEST(PersistentCatalog, AutoCompactsPastThreshold) {
  const std::string root = FreshRoot("catalog_auto");
  AtrService service;
  PersistentCatalog catalog(service,
                            {.root_dir = root, .compact_threshold = 3});
  ASSERT_TRUE(catalog.Open().ok());
  ASSERT_TRUE(catalog.AddGraph("g", SmallGraph()).ok());

  for (uint32_t i = 0; i < 3; ++i) {
    GraphDelta delta;
    delta.add = {{i, 30 + i}};
    ASSERT_TRUE(catalog.UpdateGraph("g", delta).ok());
  }
  // The third update tripped the threshold: chain folded, counter reset.
  StatusOr<AtrService::GraphInfo> info = service.Info("g");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->delta_chain_length, 0u);
  EXPECT_EQ(info->version, 4u);

  // On-disk state agrees: base v4, empty log.
  CatalogStore store(root);
  StatusOr<CatalogStore::LoadedGraph> loaded = store.Load("g");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->base.version, 4u);
  EXPECT_TRUE(loaded->deltas.empty());
}

TEST(PersistentCatalog, TruncatesTornLogTailOnRestore) {
  const std::string root = FreshRoot("catalog_torn");
  {
    AtrService service;
    PersistentCatalog catalog(service,
                              {.root_dir = root, .compact_threshold = 0});
    ASSERT_TRUE(catalog.Open().ok());
    ASSERT_TRUE(catalog.AddGraph("g", SmallGraph()).ok());
    GraphDelta delta;
    delta.add = {{0, 25}};
    ASSERT_TRUE(catalog.UpdateGraph("g", delta).ok());
  }
  // Tear the log mid-append: chop the last byte off.
  const std::string log_path = root + "/g/deltas.log";
  StatusOr<std::vector<uint8_t>> log_bytes = ReadFileBytes(log_path);
  ASSERT_TRUE(log_bytes.ok());
  ASSERT_FALSE(log_bytes->empty());
  std::vector<uint8_t> torn(log_bytes->begin(), log_bytes->end() - 1);
  ASSERT_TRUE(WriteFileAtomic(log_path, torn).ok());

  {
    AtrService service;
    PersistentCatalog catalog(service,
                              {.root_dir = root, .compact_threshold = 0});
    ASSERT_TRUE(catalog.Open().ok());
    // The torn record (the only one) was dropped and the file truncated.
    EXPECT_EQ(catalog.restore_stats().deltas_replayed, 0u);
    EXPECT_EQ(catalog.restore_stats().torn_tails_truncated, 1u);
    StatusOr<AtrService::GraphInfo> info = service.Info("g");
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->version, 1u);  // back to the base; the update was torn

    StatusOr<std::vector<uint8_t>> after = ReadFileBytes(log_path);
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(after->empty());
  }
}

TEST(PersistentCatalog, CorruptGraphIsSkippedNotFatal) {
  const std::string root = FreshRoot("catalog_skip");
  {
    AtrService service;
    PersistentCatalog catalog(service,
                              {.root_dir = root, .compact_threshold = 0});
    ASSERT_TRUE(catalog.Open().ok());
    ASSERT_TRUE(catalog.AddGraph("good", SmallGraph(1)).ok());
    ASSERT_TRUE(catalog.AddGraph("bad", SmallGraph(2)).ok());
  }
  // Destroy "bad"'s only snapshot beyond repair.
  StatusOr<std::vector<uint8_t>> bytes =
      ReadFileBytes(root + "/bad/snapshot-1.atrsnap");
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> mangled = *bytes;
  for (size_t i = 0; i < mangled.size(); i += 2) mangled[i] ^= 0x55;
  ASSERT_TRUE(WriteFileAtomic(root + "/bad/snapshot-1.atrsnap", mangled).ok());

  {
    AtrService service;
    PersistentCatalog catalog(service,
                              {.root_dir = root, .compact_threshold = 0});
    ASSERT_TRUE(catalog.Open().ok());
    EXPECT_EQ(catalog.restore_stats().graphs_restored, 1u);
    EXPECT_EQ(catalog.restore_stats().graphs_failed, 1u);
    EXPECT_EQ(service.GraphNames(), std::vector<std::string>{"good"});
  }
}

}  // namespace
}  // namespace persist
}  // namespace atr
