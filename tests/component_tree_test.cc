// Tests for the truss-component tree (Algorithm 4).

#include "tree/component_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>

#include "graph/triangles.h"
#include "tests/paper_fixtures.h"
#include "tests/test_helpers.h"
#include "truss/decomposition.h"

namespace atr {
namespace {

// Brute-force K-truss component of edge `e`: triangle-connected closure of e
// within edges of trussness >= k (anchored edges count as every level).
std::set<EdgeId> BruteComponent(const Graph& g, const TrussDecomposition& d,
                                EdgeId start, uint32_t k) {
  auto in_level = [&](EdgeId e) {
    return d.trussness[e] == kAnchoredTrussness || d.trussness[e] >= k;
  };
  std::set<EdgeId> seen = {start};
  std::deque<EdgeId> frontier = {start};
  while (!frontier.empty()) {
    const EdgeId e = frontier.front();
    frontier.pop_front();
    ForEachTriangleOfEdge(g, e, [&](VertexId, EdgeId e1, EdgeId e2) {
      if (!in_level(e1) || !in_level(e2)) return;
      for (EdgeId p : {e1, e2}) {
        if (seen.insert(p).second) frontier.push_back(p);
      }
    });
  }
  return seen;
}

TEST(ComponentTree, Fig4Structure) {
  // Fig. 4: one K=3 node with the 4 hull edges; two K=4 children (9 edges
  // each); one K=5 child (10 edges); all three deeper nodes hang under the
  // K=3 node.
  const Graph g = MakeFig3Graph();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  TrussComponentTree tree;
  tree.Build(g, d, {});
  tree.CheckInvariants(g, d, {});

  ASSERT_EQ(tree.nodes().size(), 4u);
  const uint32_t root_idx = tree.NodeIndexOf(Fig3Edge(g, 9, 10));
  const TrussTreeNode& root = tree.nodes()[root_idx];
  EXPECT_EQ(root.k, 3u);
  EXPECT_EQ(root.edges.size(), 4u);
  EXPECT_EQ(root.parent, -1);
  ASSERT_EQ(root.children.size(), 3u);

  std::multiset<std::pair<uint32_t, size_t>> child_shapes;
  for (int32_t c : root.children) {
    const TrussTreeNode& child = tree.nodes()[c];
    child_shapes.insert({child.k, child.edges.size()});
    EXPECT_TRUE(child.children.empty());
  }
  const std::multiset<std::pair<uint32_t, size_t>> expected = {
      {4u, 9u}, {4u, 9u}, {5u, 10u}};
  EXPECT_EQ(child_shapes, expected);

  // The two 4-truss components are distinct nodes.
  EXPECT_NE(tree.NodeIndexOf(Fig3Edge(g, 1, 2)),
            tree.NodeIndexOf(Fig3Edge(g, 11, 12)));
  // Node id is the smallest edge id of the node.
  EXPECT_EQ(tree.NodeIdOf(Fig3Edge(g, 3, 4)),
            *std::min_element(
                tree.nodes()[tree.NodeIndexOf(Fig3Edge(g, 3, 4))].edges.begin(),
                tree.nodes()[tree.NodeIndexOf(Fig3Edge(g, 3, 4))].edges.end()));
}

TEST(ComponentTree, Fig4SubtreeIsWholeGraphFromRoot) {
  const Graph g = MakeFig3Graph();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  TrussComponentTree tree;
  tree.Build(g, d, {});
  const uint32_t root_idx = tree.NodeIndexOf(Fig3Edge(g, 9, 10));
  std::vector<EdgeId> subtree = tree.SubtreeEdges(root_idx);
  EXPECT_EQ(subtree.size(), g.NumEdges());
}

TEST(ComponentTree, AnchoredEdgesHaveNoNode) {
  const Graph g = MakeFig3Graph();
  std::vector<bool> anchored(g.NumEdges(), false);
  const EdgeId x = Fig3Edge(g, 9, 10);
  anchored[x] = true;
  const TrussDecomposition d = ComputeTrussDecomposition(g, anchored);
  TrussComponentTree tree;
  tree.Build(g, d, anchored);
  tree.CheckInvariants(g, d, anchored);
  EXPECT_EQ(tree.NodeIdOf(x), kNoTreeNode);
  EXPECT_EQ(tree.edge_node_ids()[x], kNoTreeNode);
}

TEST(ComponentTree, AnchorMediatedTriangleConnectsComponents) {
  // Two triangles sharing only the anchored edge: with the anchor excluded
  // from nodes, its triangles still connect the remaining edges at level 3.
  GraphBuilder b(4);
  b.AddEdge(0, 1);  // shared edge, to be anchored
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 3);
  const Graph g = b.Build();
  std::vector<bool> anchored(g.NumEdges(), false);
  anchored[g.FindEdge(0, 1)] = true;
  const TrussDecomposition d = ComputeTrussDecomposition(g, anchored);
  TrussComponentTree tree;
  tree.Build(g, d, anchored);
  tree.CheckInvariants(g, d, anchored);
  // All four non-anchored edges are triangle-connected through the anchor,
  // so they share one node.
  EXPECT_EQ(tree.NodeIndexOf(g.FindEdge(0, 2)),
            tree.NodeIndexOf(g.FindEdge(1, 3)));
}

class TreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreePropertyTest, InvariantsHold) {
  const Graph g = MakePropertyGraph(GetParam());
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  TrussComponentTree tree;
  tree.Build(g, d, {});
  tree.CheckInvariants(g, d, {});
}

TEST_P(TreePropertyTest, InvariantsHoldWithAnchors) {
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  if (g.NumEdges() < 4) return;
  std::vector<bool> anchored(g.NumEdges(), false);
  anchored[seed % g.NumEdges()] = true;
  anchored[(seed * 13 + 5) % g.NumEdges()] = true;
  const TrussDecomposition d = ComputeTrussDecomposition(g, anchored);
  TrussComponentTree tree;
  tree.Build(g, d, anchored);
  tree.CheckInvariants(g, d, anchored);
}

TEST_P(TreePropertyTest, SubtreeMatchesBruteForceComponent) {
  // The subtree rooted at an edge's node is exactly the K-truss component
  // of that edge at the node's level.
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  TrussComponentTree tree;
  tree.Build(g, d, {});
  // Probe a handful of edges.
  for (EdgeId e = 0; e < g.NumEdges(); e += 1 + g.NumEdges() / 7) {
    const uint32_t idx = tree.NodeIndexOf(e);
    const TrussTreeNode& node = tree.nodes()[idx];
    std::vector<EdgeId> subtree = tree.SubtreeEdges(idx);
    std::set<EdgeId> from_tree(subtree.begin(), subtree.end());
    const std::set<EdgeId> brute = BruteComponent(g, d, e, node.k);
    EXPECT_EQ(from_tree, brute) << "edge " << e << " level " << node.k;
  }
}

TEST_P(TreePropertyTest, ParentChainLevelsStrictlyDecrease) {
  const Graph g = MakePropertyGraph(GetParam());
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  TrussComponentTree tree;
  tree.Build(g, d, {});
  for (const TrussTreeNode& node : tree.nodes()) {
    int32_t parent = node.parent;
    uint32_t k = node.k;
    while (parent >= 0) {
      EXPECT_LT(tree.nodes()[parent].k, k);
      k = tree.nodes()[parent].k;
      parent = tree.nodes()[parent].parent;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreePropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace atr
