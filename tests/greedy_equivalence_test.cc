// The central correctness property of the repository: BASE (brute force),
// BASE+ (upward-route search) and GAS (route search + tree reuse) are three
// implementations of the same greedy algorithm and must select identical
// anchor sequences with identical per-round gains. All solvers run through
// the unified registry API (api/registry.h) — the same code path benches
// and services use. Also checks the reported total gain against an
// independent anchored re-decomposition.

#include <gtest/gtest.h>

#include "api/registry.h"
#include "api/solver.h"
#include "graph/generators/social_profiles.h"
#include "tests/paper_fixtures.h"
#include "tests/test_helpers.h"
#include "truss/decomposition.h"
#include "truss/gain.h"

namespace atr {
namespace {

SolveResult RunVia(const char* solver_name, const Graph& g, uint32_t budget) {
  StatusOr<std::unique_ptr<Solver>> solver =
      SolverRegistry::Create(solver_name);
  EXPECT_TRUE(solver.ok()) << solver.status().message();
  SolverOptions options;
  options.budget = budget;
  StatusOr<SolveResult> result = (*solver)->Solve(g, options);
  EXPECT_TRUE(result.ok()) << result.status().message();
  return *std::move(result);
}

void ExpectSameSelections(const SolveResult& a, const SolveResult& b,
                          const char* label) {
  ASSERT_EQ(a.anchor_edges.size(), b.anchor_edges.size()) << label;
  for (size_t i = 0; i < a.anchor_edges.size(); ++i) {
    EXPECT_EQ(a.anchor_edges[i], b.anchor_edges[i]) << label << " round " << i;
    EXPECT_EQ(a.rounds[i].gain, b.rounds[i].gain) << label << " round " << i;
  }
  EXPECT_EQ(a.total_gain, b.total_gain) << label;
}

TEST(GreedyEquivalence, Fig3AllThreeAgree) {
  const Graph g = MakeFig3Graph();
  const SolveResult base = RunVia("base", g, 4);
  const SolveResult plus = RunVia("base+", g, 4);
  const SolveResult gas = RunVia("gas", g, 4);
  ExpectSameSelections(base, plus, "BASE vs BASE+");
  ExpectSameSelections(base, gas, "BASE vs GAS");
}

TEST(GreedyEquivalence, Fig3FirstAnchorLiftsThreeEdges) {
  // On the running example the best single anchor gains 3 (the 3-hull route
  // of Example 4 — no other edge does better).
  const Graph g = MakeFig3Graph();
  const SolveResult gas = RunVia("gas", g, 1);
  EXPECT_EQ(gas.rounds[0].gain, 3u);
}

TEST(GreedyEquivalence, TotalGainMatchesRedecomposition) {
  const Graph g = MakeFig3Graph();
  const SolveResult gas = RunVia("gas", g, 3);
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  EXPECT_EQ(gas.total_gain, TrussnessGain(g, base, {}, gas.anchor_edges));
}

TEST(GreedyEquivalence, ReuseStatsCoverAllCandidates) {
  const Graph g = MakeFig3Graph();
  const SolveResult gas = RunVia("gas", g, 3);
  uint64_t classified_total = 0;
  for (size_t r = 0; r < gas.rounds.size(); ++r) {
    const AnchorRound& round = gas.rounds[r];
    const uint32_t classified = round.fully_reusable +
                                round.partially_reusable +
                                round.non_reusable;
    EXPECT_EQ(classified, g.NumEdges() - r) << "round " << r;
    classified_total += classified;
    if (r == 0) {
      // Round 1 computes everything from scratch.
      EXPECT_EQ(round.fully_reusable, 0u);
      EXPECT_EQ(round.partially_reusable, 0u);
    }
  }
  // The SolveResult reuse totals aggregate the per-round counters.
  EXPECT_EQ(gas.fully_reusable + gas.partially_reusable + gas.non_reusable,
            classified_total);
}

class GreedyEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyEquivalenceProperty, BasePlusEqualsBase) {
  const Graph g = MakePropertyGraph(GetParam());
  const uint32_t budget = 3 + GetParam() % 3;
  ExpectSameSelections(RunVia("base", g, budget), RunVia("base+", g, budget),
                       "BASE vs BASE+");
}

TEST_P(GreedyEquivalenceProperty, GasEqualsBasePlus) {
  // The deeper budget stresses multi-round cache reuse in GAS.
  const Graph g = MakePropertyGraph(GetParam());
  const uint32_t budget = 5 + GetParam() % 4;
  ExpectSameSelections(RunVia("base+", g, budget), RunVia("gas", g, budget),
                       "BASE+ vs GAS");
}

TEST_P(GreedyEquivalenceProperty, GasTotalGainMatchesRedecomposition) {
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  const SolveResult gas = RunVia("gas", g, 4);
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  EXPECT_EQ(gas.total_gain, TrussnessGain(g, base, {}, gas.anchor_edges))
      << "seed " << seed;
}

TEST_P(GreedyEquivalenceProperty, MarginalGainsAreFollowerCounts) {
  // Every reported round gain must equal the marginal gain of that anchor
  // given the previous ones (checked by incremental re-decomposition).
  const uint64_t seed = GetParam();
  const Graph g = MakePropertyGraph(seed);
  const SolveResult gas = RunVia("gas", g, 4);
  std::vector<bool> anchored(g.NumEdges(), false);
  TrussDecomposition current = ComputeTrussDecomposition(g, anchored);
  for (const AnchorRound& round : gas.rounds) {
    const uint64_t marginal =
        TrussnessGain(g, current, anchored, {round.anchor});
    EXPECT_EQ(marginal, round.gain) << "seed " << seed;
    anchored[round.anchor] = true;
    current = ComputeTrussDecomposition(g, anchored);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyEquivalenceProperty,
                         ::testing::Range<uint64_t>(0, 20));

// Regression for the level-group coupling bug: geometric graphs at this
// size produce candidates whose seed nodes sit in different same-level
// truss components coupled only through the candidate edge itself, which
// per-node (instead of per-level-group) reuse gets wrong.
TEST(GreedyEquivalence, GeometricProfileDeepBudget) {
  const Graph g = MakeSocialProfile("gowalla", 0.05, 0);
  ExpectSameSelections(RunVia("base+", g, 10), RunVia("gas", g, 10),
                       "BASE+ vs GAS (gowalla stand-in)");
}

TEST(GreedyEquivalence, WebProfileDeepBudget) {
  const Graph g = MakeSocialProfile("google", 0.03, 0);
  ExpectSameSelections(RunVia("base+", g, 10), RunVia("gas", g, 10),
                       "BASE+ vs GAS (google stand-in)");
}

}  // namespace
}  // namespace atr
