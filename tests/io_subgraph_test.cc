// Tests for edge-list I/O, subgraph extraction, and sampling.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "graph/edge_list_io.h"
#include "graph/subgraph.h"
#include "tests/test_helpers.h"
#include "truss/decomposition.h"

namespace atr {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(EdgeListIo, RoundTripsAGraphUpToVertexRelabeling) {
  // The loader remaps vertex ids densely by first appearance (SNAP files
  // have sparse ids), so a roundtrip preserves the graph only up to
  // relabeling. Compare label-invariant structure, then check the second
  // roundtrip is exact (the relabeling is idempotent).
  const Graph original = MakePropertyGraph(4);
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(SaveEdgeList(original, path).ok());
  StatusOr<Graph> loaded = LoadSnapEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->NumEdges(), original.NumEdges());
  ASSERT_EQ(loaded->NumVertices(), original.NumVertices());
  auto degree_histogram = [](const Graph& g) {
    std::vector<uint32_t> degrees;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      degrees.push_back(g.Degree(v));
    }
    std::sort(degrees.begin(), degrees.end());
    return degrees;
  };
  EXPECT_EQ(degree_histogram(original), degree_histogram(*loaded));
  const std::vector<uint32_t> h_orig =
      HullSizes(ComputeTrussDecomposition(original));
  const std::vector<uint32_t> h_loaded =
      HullSizes(ComputeTrussDecomposition(*loaded));
  EXPECT_EQ(h_orig, h_loaded);
  std::remove(path.c_str());
}

TEST(EdgeListIo, ParsesSnapFormatWithCommentsAndRemap) {
  const std::string path = TempPath("snap.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# Directed graph: test\n", f);
  std::fputs("# FromNodeId\tToNodeId\n", f);
  std::fputs("1000 2000\n", f);
  std::fputs("2000\t1000\n", f);  // reverse duplicate
  std::fputs("1000 3000\n", f);
  std::fputs("3000 3000\n", f);  // self loop
  std::fclose(f);
  StatusOr<Graph> g = LoadSnapEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3u);  // dense remap
  EXPECT_EQ(g->NumEdges(), 2u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, ReportsMissingFile) {
  StatusOr<Graph> g = LoadSnapEdgeList("/nonexistent/path/graph.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kNotFound);
}

TEST(EdgeListIo, ReportsMalformedLine) {
  const std::string path = TempPath("bad.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1 2\n", f);
  std::fputs("3 oops\n", f);
  std::fclose(f);
  StatusOr<Graph> g = LoadSnapEdgeList(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(EdgeListIo, LongCommentLinesAreNotSplitIntoBogusEdges) {
  // Regression: a fixed 512-byte fgets buffer split any longer line, and
  // the tail of this comment ("... 777 888") would come back as an edge.
  const std::string path = TempPath("long_comment.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::string comment = "# ";
  comment.append(1500, 'x');
  comment += " 777 888\n";
  std::fputs(comment.c_str(), f);
  std::fputs("1 2\n", f);
  std::fclose(f);
  StatusOr<Graph> g = LoadSnapEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status().message();
  EXPECT_EQ(g->NumVertices(), 2u);
  EXPECT_EQ(g->NumEdges(), 1u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, LongEdgeLinesParseAcrossTheOldBufferBoundary) {
  // Regression: ">= 512 chars before the second endpoint" used to split
  // the line so the first chunk held only one integer (malformed) and the
  // tail re-parsed as a bogus extra edge.
  const std::string path = TempPath("long_edge.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::string line = "5";
  line.append(1000, ' ');
  line += "6\n";
  std::fputs(line.c_str(), f);
  std::fputs("5 7\n", f);
  std::fclose(f);
  StatusOr<Graph> g = LoadSnapEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status().message();
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 2u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, AcceptsCrlfLineEndingsAndNoTrailingNewline) {
  const std::string path = TempPath("crlf.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# windows export\r\n", f);
  std::fputs("1 2\r\n", f);
  std::fputs("2 3", f);  // unterminated final line
  std::fclose(f);
  StatusOr<Graph> g = LoadSnapEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status().message();
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 2u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, EmbeddedNulDoesNotMergePhysicalLines) {
  // A NUL inside a line must not swallow its newline and splice the next
  // line's digits onto this one ("1 2<NUL>junk" + "3 4" -> "1 23 4").
  const std::string path = TempPath("nul.txt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char data[] = "1 2\0junk\n3 4\n";
  std::fwrite(data, 1, sizeof(data) - 1, f);
  std::fclose(f);
  StatusOr<Graph> g = LoadSnapEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status().message();
  EXPECT_EQ(g->NumVertices(), 4u);
  EXPECT_EQ(g->NumEdges(), 2u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, NearMaxRawIdsRemapDensely) {
  // Raw SNAP ids close to UINT32_MAX (and above it, as 64-bit values) must
  // remap to dense ids instead of feeding the builder values that wrap its
  // vertex count.
  const std::string path = TempPath("big_ids.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("4294967295 4294967294\n", f);
  std::fputs("4294967295 4294967296\n", f);
  std::fputs("4294967294 18446744073709551609\n", f);
  std::fclose(f);
  StatusOr<Graph> g = LoadSnapEdgeList(path);
  ASSERT_TRUE(g.ok()) << g.status().message();
  EXPECT_EQ(g->NumVertices(), 4u);
  EXPECT_EQ(g->NumEdges(), 3u);
  std::remove(path.c_str());
}

TEST(EdgeListIo, SaveReportsWriteFailure) {
  // /dev/full accepts the fopen but fails the flush, which only fclose
  // observes — the regression was checking ferror alone and returning Ok.
  std::FILE* probe = std::fopen("/dev/full", "w");
  if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
  std::fclose(probe);
  const Graph g = MakePropertyGraph(3);
  const Status status = SaveEdgeList(g, "/dev/full");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(EdgeListIo, RoundTripIsExactOnScanMonotoneGraphs) {
  // Load -> Save -> Load equality. The loader relabels by first appearance
  // over the (u, v)-sorted edge list the writer emits, so ids are a fixed
  // point whenever that scan meets vertices in increasing order — a path
  // with (i, i+2) chords is such a graph. On it the loader and writer are
  // exact inverses, byte for byte on the edge list.
  GraphBuilder b(12);
  for (VertexId v = 0; v + 1 < 12; ++v) b.AddEdge(v, v + 1);
  for (VertexId v = 0; v + 2 < 12; ++v) b.AddEdge(v, v + 2);
  const Graph original = b.Build();
  const std::string path_a = TempPath("exact_a.txt");
  const std::string path_b = TempPath("exact_b.txt");
  ASSERT_TRUE(SaveEdgeList(original, path_a).ok());
  StatusOr<Graph> first = LoadSnapEdgeList(path_a);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->edges(), original.edges());
  ASSERT_TRUE(SaveEdgeList(*first, path_b).ok());
  StatusOr<Graph> second = LoadSnapEdgeList(path_b);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->NumVertices(), first->NumVertices());
  EXPECT_EQ(second->edges(), first->edges());
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(Subgraph, InducedKeepsInternalEdgesOnly) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  const Graph g = b.Build();
  std::vector<VertexId> old_to_new;
  const Graph sub = InducedSubgraph(g, {0, 1, 2}, &old_to_new);
  EXPECT_EQ(sub.NumVertices(), 3u);
  EXPECT_EQ(sub.NumEdges(), 2u);
  EXPECT_EQ(old_to_new[3], kInvalidVertex);
  EXPECT_NE(old_to_new[1], kInvalidVertex);
}

TEST(Subgraph, EdgeSubgraphPreservesVertexIds) {
  const Graph g = MakePropertyGraph(2);
  std::vector<EdgeId> keep;
  for (EdgeId e = 0; e < g.NumEdges(); e += 2) keep.push_back(e);
  const Graph sub = EdgeSubgraph(g, keep);
  EXPECT_EQ(sub.NumVertices(), g.NumVertices());
  EXPECT_EQ(sub.NumEdges(), keep.size());
  for (EdgeId e : keep) {
    EXPECT_TRUE(sub.HasEdge(g.Edge(e).u, g.Edge(e).v));
  }
}

TEST(Subgraph, SamplingHitsRequestedFractions) {
  const Graph g = MakePropertyGraph(6);
  Rng rng(5);
  const Graph half_edges = SampleEdges(g, 0.5, rng);
  EXPECT_NEAR(half_edges.NumEdges(), g.NumEdges() * 0.5, 1.0);
  Rng rng2(5);
  const Graph most_vertices = SampleVertices(g, 0.8, rng2);
  EXPECT_NEAR(most_vertices.NumVertices(), g.NumVertices() * 0.8, 1.0);
  EXPECT_LE(most_vertices.NumEdges(), g.NumEdges());
}

TEST(Subgraph, EgoBallLandsInsideTheRequestedWindow) {
  // The paper's Exp-2 extraction: 150-250 edges when the component allows.
  const Graph g = ErdosRenyiGraph(400, 2400, 12);
  const Graph ball = ExtractEgoBall(g, 0, 150, 250);
  EXPECT_GE(ball.NumEdges(), 150u);
  EXPECT_LE(ball.NumEdges(), 260u);  // one vertex may overshoot slightly
}

TEST(Subgraph, EgoBallOnTinyComponentReturnsComponent) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);  // unreachable from 0
  const Graph g = b.Build();
  const Graph ball = ExtractEgoBall(g, 0, 150, 250);
  EXPECT_EQ(ball.NumEdges(), 2u);
}

}  // namespace
}  // namespace atr
