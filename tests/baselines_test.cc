// Tests for Exact, the randomized baselines (Rand/Sup/Tur), the AKT
// vertex-anchoring baseline, the edge-deletion baseline, and the
// non-submodularity of the gain function (Theorem 2).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/akt.h"
#include "core/edge_deletion.h"
#include "core/exact.h"
#include "core/gas.h"
#include "core/random_baselines.h"
#include "graph/triangles.h"
#include "route/follower_search.h"
#include "tests/paper_fixtures.h"
#include "tests/test_helpers.h"
#include "truss/decomposition.h"
#include "truss/gain.h"
#include "truss/incremental.h"

namespace atr {
namespace {

TEST(Exact, MatchesGreedyOnFig3ForBudgetOne) {
  // With b = 1 greedy is optimal by definition of the greedy step.
  const Graph g = MakeFig3Graph();
  const ExactResult exact = RunExact(g, 1);
  const AnchorResult gas = RunGas(g, 1);
  EXPECT_EQ(exact.gain, gas.total_gain);
  EXPECT_EQ(exact.subsets_evaluated, g.NumEdges());
}

TEST(Exact, BudgetTwoDominatesGreedy) {
  const Graph g = MakeFig3Graph();
  const ExactResult exact = RunExact(g, 2);
  const AnchorResult gas = RunGas(g, 2);
  EXPECT_GE(exact.gain, gas.total_gain);
  // C(32, 2) subsets.
  EXPECT_EQ(exact.subsets_evaluated, 32u * 31u / 2u);
  // The exact answer itself must be reproducible by re-decomposition.
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  EXPECT_EQ(exact.gain, TrussnessGain(g, base, {}, exact.anchors));
}

// Witness graph for Theorem 2 (non-submodularity), in the spirit of the
// paper's Fig. 1(a): a trussness-3 edge c = (u, v) with exactly two
// triangles, each containing one trussness-3 partner (p1, p2) and one
// trussness-4 partner (q1, q2, pinned by a K4). Anchoring p1 or p2 alone
// leaves c one effective triangle short; anchoring both lifts c.
struct NonSubmodularWitness {
  Graph graph;
  EdgeId c, p1, p2;
};

NonSubmodularWitness MakeNonSubmodularWitness() {
  GraphBuilder b(10);
  const VertexId u = 0, v = 1, w1 = 2, w2 = 3;
  b.AddEdge(u, v);    // c
  b.AddEdge(u, w1);   // p1
  b.AddEdge(v, w1);   // q1
  b.AddEdge(u, w2);   // p2
  b.AddEdge(v, w2);   // q2
  // K4 {v, w1, 4, 5} pins t(q1) = 4; K4 {v, w2, 6, 7} pins t(q2) = 4.
  const VertexId k1[] = {v, w1, 4, 5};
  const VertexId k2[] = {v, w2, 6, 7};
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      b.AddEdge(k1[i], k1[j]);
      b.AddEdge(k2[i], k2[j]);
    }
  }
  NonSubmodularWitness w;
  w.graph = b.Build();
  w.c = w.graph.FindEdge(u, v);
  w.p1 = w.graph.FindEdge(u, w1);
  w.p2 = w.graph.FindEdge(u, w2);
  return w;
}

TEST(GainFunction, IsNotSubmodularOnCraftedWitness) {
  const NonSubmodularWitness w = MakeNonSubmodularWitness();
  const TrussDecomposition base = ComputeTrussDecomposition(w.graph);
  ASSERT_EQ(base.trussness[w.c], 3u);
  ASSERT_EQ(base.trussness[w.p1], 3u);
  ASSERT_EQ(base.trussness[w.p2], 3u);
  const uint64_t gain_a = TrussnessGain(w.graph, base, {}, {w.p1});
  const uint64_t gain_b = TrussnessGain(w.graph, base, {}, {w.p2});
  const uint64_t gain_ab = TrussnessGain(w.graph, base, {}, {w.p1, w.p2});
  EXPECT_EQ(gain_a, 0u);
  EXPECT_EQ(gain_b, 0u);
  EXPECT_EQ(gain_ab, 1u);  // c rises: submodularity would force <= 0
  EXPECT_LT(gain_a + gain_b, gain_ab);
}

TEST(GainFunction, WitnessJointAnchorLiftsTheSharedEdge) {
  const NonSubmodularWitness w = MakeNonSubmodularWitness();
  const TrussDecomposition base = ComputeTrussDecomposition(w.graph);
  std::vector<bool> anchored(w.graph.NumEdges(), false);
  anchored[w.p1] = true;
  anchored[w.p2] = true;
  const TrussDecomposition after =
      ComputeTrussDecomposition(w.graph, anchored);
  EXPECT_EQ(after.trussness[w.c], 4u);
}

TEST(RandomBaselines, PoolsMatchTheirDefinitions) {
  const Graph g = MakeFig3Graph();
  const std::vector<EdgeId> all = BaselinePool(g, RandomPoolKind::kAllEdges);
  EXPECT_EQ(all.size(), g.NumEdges());

  const std::vector<EdgeId> sup = BaselinePool(g, RandomPoolKind::kTopSupport);
  EXPECT_EQ(sup.size(), static_cast<size_t>(g.NumEdges() * 0.2));
  const std::vector<uint32_t> support = ComputeSupport(g);
  uint32_t min_in_pool = 0xffffffffu;
  for (EdgeId e : sup) min_in_pool = std::min(min_in_pool, support[e]);
  uint32_t excluded_max = 0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (std::find(sup.begin(), sup.end(), e) == sup.end()) {
      excluded_max = std::max(excluded_max, support[e]);
    }
  }
  EXPECT_GE(min_in_pool, excluded_max > 0 ? excluded_max - 1 : 0);

  const std::vector<EdgeId> tur =
      BaselinePool(g, RandomPoolKind::kTopRouteSize);
  EXPECT_EQ(tur.size(), static_cast<size_t>(g.NumEdges() * 0.2));
}

TEST(RandomBaselines, BestGainIsReproducible) {
  const Graph g = MakeFig3Graph();
  const RandomBaselineResult r1 =
      *RunRandomBaseline(g, RandomPoolKind::kAllEdges, {2}, 50, 99);
  const RandomBaselineResult r2 =
      *RunRandomBaseline(g, RandomPoolKind::kAllEdges, {2}, 50, 99);
  EXPECT_EQ(r1.best_gain, r2.best_gain);
  EXPECT_EQ(r1.best_anchors, r2.best_anchors);
  // Reported gain matches a re-decomposition of the reported anchors.
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  EXPECT_EQ(r1.best_gain, TrussnessGain(g, base, {}, r1.best_anchors));
}

TEST(RandomBaselines, CheckpointsTrackPrefixes) {
  const Graph g = MakeFig3Graph();
  const RandomBaselineResult r =
      *RunRandomBaseline(g, RandomPoolKind::kAllEdges, {1, 2, 3}, 30, 7);
  ASSERT_EQ(r.gain_at_checkpoint.size(), 3u);
  EXPECT_EQ(r.gain_at_checkpoint.back(), r.best_gain);
}

TEST(RandomBaselines, InvalidInputsAreRejectedWithStatus) {
  const Graph g = MakeFig3Graph();
  // Empty checkpoints.
  EXPECT_EQ(RunRandomBaseline(g, RandomPoolKind::kAllEdges, {}, 10, 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Not strictly ascending.
  EXPECT_EQ(RunRandomBaseline(g, RandomPoolKind::kAllEdges, {2, 2}, 10, 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Budget beyond |E|.
  EXPECT_EQ(RunRandomBaseline(g, RandomPoolKind::kAllEdges,
                              {g.NumEdges() + 1}, 10, 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Zero checkpoint.
  EXPECT_EQ(RunRandomBaseline(g, RandomPoolKind::kAllEdges, {0, 2}, 10, 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Zero trials.
  EXPECT_EQ(RunRandomBaseline(g, RandomPoolKind::kAllEdges, {2}, 0, 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RandomBaselines, PrecomputedDecompositionMatchesFreshOne) {
  const Graph g = MakeFig3Graph();
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  const RandomBaselineResult fresh =
      *RunRandomBaseline(g, RandomPoolKind::kTopRouteSize, {2}, 25, 3);
  const RandomBaselineResult reused =
      *RunRandomBaseline(g, base, RandomPoolKind::kTopRouteSize, {2}, 25, 3);
  EXPECT_EQ(fresh.best_gain, reused.best_gain);
  EXPECT_EQ(fresh.best_anchors, reused.best_anchors);
}

TEST(Akt, FollowersAreHullEdgesInsideAnchoredKTruss) {
  const Graph g = MakeFig3Graph();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  // k = 4: anchoring v8 (paper index) retains 3-hull edges at v8.
  const VertexId v8 = 7;
  const std::vector<EdgeId> followers = AktFollowers(g, d, 4, {v8});
  EXPECT_FALSE(followers.empty());
  for (EdgeId e : followers) EXPECT_EQ(d.trussness[e], 3u);
}

TEST(Akt, NoAnchorsMeansNoFollowers) {
  const Graph g = MakeFig3Graph();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  for (uint32_t k = 4; k <= d.max_trussness + 1; ++k) {
    EXPECT_TRUE(AktFollowers(g, d, k, {}).empty()) << "k=" << k;
  }
}

TEST(Akt, GreedyGainIsMonotoneInRounds) {
  const Graph g = MakePropertyGraph(1);
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  const AktResult result = RunAkt(g, d, 4, 4);
  for (size_t i = 1; i < result.gain_after.size(); ++i) {
    EXPECT_GE(result.gain_after[i], result.gain_after[i - 1]);
  }
}

TEST(Akt, AnchoringV8AtKFourRetainsItsIncidentHullEdges) {
  // The paper's Example 1 mechanism: anchoring v8 keeps its incident
  // trussness-3 edges in the 4-truss for as long as they close a triangle;
  // (v9,v10) is not incident and loses its last triangle, so it falls.
  const Graph g = MakeFig3Graph();
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  const VertexId v8 = 7;
  std::vector<EdgeId> followers = AktFollowers(g, d, 4, {v8});
  std::sort(followers.begin(), followers.end());
  std::vector<EdgeId> expected = {Fig3Edge(g, 5, 8), Fig3Edge(g, 7, 8),
                                  Fig3Edge(g, 8, 9)};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(followers, expected);
}

TEST(Akt, LiftsOnlyTheSingleHullLevel) {
  // The limitation the ATR problem removes: AKT at level k can only lift
  // (k-1)-trussness edges, whatever vertices it anchors.
  const Graph g = MakePropertyGraph(2);
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  const AktResult result = RunAkt(g, d, 4, 3);
  const std::vector<EdgeId> followers = AktFollowers(g, d, 4, result.anchors);
  for (EdgeId e : followers) EXPECT_EQ(d.trussness[e], 3u);
  EXPECT_EQ(result.total_gain, followers.size());
}

TEST(EdgeDeletion, SelectsDistinctEdgesAndReportsTrueGain) {
  const Graph g = MakeFig3Graph();
  const EdgeDeletionResult result = RunEdgeDeletionBaseline(g, 3);
  ASSERT_EQ(result.anchors.size(), 3u);
  std::vector<EdgeId> unique_anchors = result.anchors;
  std::sort(unique_anchors.begin(), unique_anchors.end());
  unique_anchors.erase(
      std::unique(unique_anchors.begin(), unique_anchors.end()),
      unique_anchors.end());
  EXPECT_EQ(unique_anchors.size(), 3u);
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  EXPECT_EQ(result.total_gain, TrussnessGain(g, base, {}, result.anchors));
}

TEST(EdgeDeletion, IsWeakerThanGasOnClusteredGraphs) {
  // The case-study claim: deletion-critical edges are poor anchors.
  const Graph g = MakePropertyGraph(2);
  const EdgeDeletionResult deletion = RunEdgeDeletionBaseline(g, 3);
  const AnchorResult gas = RunGas(g, 3);
  EXPECT_GE(gas.total_gain, deletion.total_gain);
}

TEST(EdgeDeletion, MatchesBruteForcePerCandidateRecomputation) {
  // The baseline now scores candidates with speculative incremental
  // RemoveEdge + rollback; the selection must equal the historical
  // brute-force ranking (one subset decomposition per candidate).
  for (uint64_t seed : {0ull, 1ull, 3ull}) {
    const Graph g = MakePropertyGraph(seed);
    const uint32_t m = g.NumEdges();
    const TrussDecomposition base = ComputeTrussDecomposition(g);
    uint64_t baseline_total = 0;
    for (EdgeId e = 0; e < m; ++e) baseline_total += base.trussness[e];
    std::vector<uint64_t> impact(m, 0);
    for (EdgeId deleted = 0; deleted < m; ++deleted) {
      std::vector<EdgeId> subset;
      for (EdgeId e = 0; e < m; ++e) {
        if (e != deleted) subset.push_back(e);
      }
      const TrussDecomposition without =
          ComputeTrussDecompositionOnSubset(g, {}, subset);
      uint64_t remaining = 0;
      for (EdgeId e : subset) remaining += without.trussness[e];
      impact[deleted] = baseline_total - remaining - base.trussness[deleted];
    }
    std::vector<EdgeId> order(m);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&impact](EdgeId a, EdgeId b) {
      return impact[a] != impact[b] ? impact[a] > impact[b] : a < b;
    });
    const EdgeDeletionResult result = RunEdgeDeletionBaseline(g, 3);
    EXPECT_EQ(result.anchors,
              std::vector<EdgeId>(order.begin(), order.begin() + 3))
        << "seed " << seed;
  }
}

TEST(EdgeDeletion, DuplicateCandidateEvaluationIsStable) {
  // Regression for the duplicate-candidate case: scoring the same edge
  // twice in one round (as a chunk does after a rollback) must read
  // identical support state both times, not the remnants of the first
  // evaluation.
  const Graph g = MakeFig3Graph();
  IncrementalTruss engine(g);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const IncrementalTruss::Checkpoint cp = engine.MarkRollbackPoint();
    const uint64_t first = engine.RemoveEdge(e);
    engine.RollbackTo(cp);
    const uint64_t second = engine.RemoveEdge(e);
    engine.RollbackTo(cp);
    EXPECT_EQ(first, second) << "edge " << e;
  }
}

TEST(Gain, DuplicateAnchorsInOneRoundCountOnce) {
  // TrussnessGain must treat {e, e} exactly like {e} — a duplicated
  // candidate in one round neither double-counts its followers nor trips
  // the anchored-edge bookkeeping.
  const Graph g = MakeFig3Graph();
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  const EdgeId e = Fig3Edge(g, 5, 8);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_EQ(TrussnessGain(g, base, {}, {e, e}),
            TrussnessGain(g, base, {}, {e}));
}

TEST(Gain, RespectsRemovedEdgesInsteadOfResurrectingThem) {
  // Regression for the stale-support read: when `base` was computed over a
  // subset (removed edges report kTrussnessNotComputed), the gain oracle
  // must re-decompose over that same subset. The historical full-graph
  // recompute silently resurrected removed edges and credited their
  // trussness as gain.
  const Graph g = MakeFig3Graph();
  const uint32_t m = g.NumEdges();
  // Remove one edge of the 5-clique; anchor another clique edge.
  const EdgeId removed = Fig3Edge(g, 3, 4);
  const EdgeId anchor = Fig3Edge(g, 3, 5);
  ASSERT_NE(removed, kInvalidEdge);
  ASSERT_NE(anchor, kInvalidEdge);
  std::vector<EdgeId> subset;
  for (EdgeId e = 0; e < m; ++e) {
    if (e != removed) subset.push_back(e);
  }
  const TrussDecomposition base =
      ComputeTrussDecompositionOnSubset(g, {}, subset);

  // Independent oracle: rebuild the graph without the removed edge and
  // compute the gain there.
  GraphBuilder builder(g.NumVertices());
  for (EdgeId e = 0; e < m; ++e) {
    if (e == removed) continue;
    builder.AddEdge(g.Edge(e).u, g.Edge(e).v);
  }
  const Graph rebuilt = builder.Build();
  const EdgeId rebuilt_anchor =
      rebuilt.FindEdge(g.Edge(anchor).u, g.Edge(anchor).v);
  ASSERT_NE(rebuilt_anchor, kInvalidEdge);
  const TrussDecomposition rebuilt_base = ComputeTrussDecomposition(rebuilt);

  EXPECT_EQ(TrussnessGain(g, base, {}, {anchor}),
            TrussnessGain(rebuilt, rebuilt_base, {}, {rebuilt_anchor}));
  EXPECT_EQ(BruteForceFollowers(g, base, {}, anchor).size(),
            BruteForceFollowers(rebuilt, rebuilt_base, {}, rebuilt_anchor)
                .size());
}

}  // namespace
}  // namespace atr
