// Tests for the synthetic graph generators and the SNAP stand-in profiles.

#include "graph/generators/generators.h"

#include <gtest/gtest.h>

#include "graph/generators/social_profiles.h"
#include "graph/triangles.h"

namespace atr {
namespace {

void ExpectSimpleGraph(const Graph& g) {
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const EdgeEndpoints ends = g.Edge(e);
    EXPECT_LT(ends.u, ends.v);
    EXPECT_LT(ends.v, g.NumVertices());
  }
}

bool SameEdges(const Graph& a, const Graph& b) {
  if (a.NumEdges() != b.NumEdges()) return false;
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    if (!(a.Edge(e) == b.Edge(e))) return false;
  }
  return true;
}

TEST(Generators, ErdosRenyiExactEdgeCount) {
  const Graph g = ErdosRenyiGraph(100, 300, 7);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 300u);
  ExpectSimpleGraph(g);
}

TEST(Generators, ErdosRenyiCompleteGraphBoundary) {
  const Graph g = ErdosRenyiGraph(6, 15, 1);  // K6 has exactly 15 edges
  EXPECT_EQ(g.NumEdges(), 15u);
}

TEST(Generators, BarabasiAlbertDegreesAndSize) {
  const uint32_t n = 200;
  const uint32_t m_per = 3;
  const Graph g = BarabasiAlbertGraph(n, m_per, 11);
  EXPECT_EQ(g.NumVertices(), n);
  // Seed clique of m_per+1 vertices plus m_per edges per later vertex.
  const uint32_t expected = m_per * (m_per + 1) / 2 + (n - m_per - 1) * m_per;
  EXPECT_EQ(g.NumEdges(), expected);
  for (VertexId v = 0; v < n; ++v) EXPECT_GE(g.Degree(v), m_per);
}

TEST(Generators, HolmeKimIsTriangleRich) {
  const Graph clustered = HolmeKimGraph(300, 4, 0.9, 5);
  const Graph plain = BarabasiAlbertGraph(300, 4, 5);
  ExpectSimpleGraph(clustered);
  // Triad closure must produce far more triangles than plain preferential
  // attachment at the same density.
  EXPECT_GT(CountTriangles(clustered), 2 * CountTriangles(plain));
}

TEST(Generators, WattsStrogatzZeroRewireIsRingLattice) {
  const Graph g = WattsStrogatzGraph(40, 6, 0.0, 3);
  EXPECT_EQ(g.NumEdges(), 40u * 3u);
  for (VertexId v = 0; v < 40; ++v) EXPECT_EQ(g.Degree(v), 6u);
}

TEST(Generators, RandomGeometricEdgesRespectRadius) {
  const Graph g = RandomGeometricGraph(500, 0.08, 9);
  ExpectSimpleGraph(g);
  EXPECT_GT(g.NumEdges(), 0u);
  // Geometric graphs are triangle-rich by construction.
  EXPECT_GT(CountTriangles(g), 0u);
}

TEST(Generators, RMatRespectsVertexBound) {
  const Graph g = RMatGraph(10, 3000, 0.57, 0.19, 0.19, 13);
  EXPECT_LE(g.NumVertices(), 1u << 10);
  ExpectSimpleGraph(g);
}

TEST(Generators, PlantedCommunitiesContainDenseBlocks) {
  const Graph g = PlantedCommunitiesGraph(100, 5, 10, 1.0, 0, 17);
  // Five disjoint 10-cliques, no background.
  EXPECT_EQ(g.NumEdges(), 5u * 45u);
}

TEST(Generators, DeterministicAcrossCalls) {
  EXPECT_TRUE(SameEdges(ErdosRenyiGraph(60, 150, 42),
                        ErdosRenyiGraph(60, 150, 42)));
  EXPECT_TRUE(SameEdges(HolmeKimGraph(80, 3, 0.7, 42),
                        HolmeKimGraph(80, 3, 0.7, 42)));
  EXPECT_TRUE(SameEdges(RMatGraph(8, 500, 0.6, 0.15, 0.15, 42),
                        RMatGraph(8, 500, 0.6, 0.15, 0.15, 42)));
  EXPECT_FALSE(SameEdges(ErdosRenyiGraph(60, 150, 42),
                         ErdosRenyiGraph(60, 150, 43)));
}

TEST(SocialProfiles, SpecsListTheEightPaperDatasets) {
  const std::vector<DatasetSpec> specs = SocialProfileSpecs();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs[0].name, "college");
  EXPECT_EQ(specs[7].name, "pokec");
  for (const DatasetSpec& spec : specs) {
    EXPECT_FALSE(spec.provenance.empty()) << spec.name;
  }
}

TEST(SocialProfiles, AllBuildAtTinyScaleAndAreDeterministic) {
  for (const DatasetSpec& spec : SocialProfileSpecs()) {
    const Graph g1 = MakeSocialProfile(spec.name, 0.02, 0);
    const Graph g2 = MakeSocialProfile(spec.name, 0.02, 0);
    EXPECT_GT(g1.NumEdges(), 0u) << spec.name;
    EXPECT_TRUE(SameEdges(g1, g2)) << spec.name;
    ExpectSimpleGraph(g1);
  }
}

TEST(SocialProfiles, ScaleGrowsTheGraph) {
  const Graph small = MakeSocialProfile("youtube", 0.02, 0);
  const Graph larger = MakeSocialProfile("youtube", 0.06, 0);
  EXPECT_GT(larger.NumVertices(), small.NumVertices());
  EXPECT_GT(larger.NumEdges(), small.NumEdges());
}

}  // namespace
}  // namespace atr
