// End-to-end validation of the NP-hardness reduction (Theorem 1 / Fig. 2):
// the gadget's trussness structure must match the proof's claims, and the
// optimal ATR solution must equal the optimal max-coverage solution.

#include "core/max_coverage_gadget.h"

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/gas.h"
#include "truss/decomposition.h"
#include "truss/gain.h"

namespace atr {
namespace {

// The paper's running instance (Fig. 2): s = 3 sets over t = 4 elements.
// T1 = {e1, e3}, T2 = {e1, e2, e3}, T3 = {e3, e4} (0-based below).
MaxCoverageGadget MakePaperInstance() {
  return BuildMaxCoverageGadget({{0, 2}, {0, 1, 2}, {2, 3}}, 4);
}

TEST(MaxCoverageGadget, TrussnessMatchesProofClaims) {
  const MaxCoverageGadget gadget = MakePaperInstance();
  const Graph& g = gadget.graph;
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  const uint32_t t = gadget.num_elements;
  // Claim (i): t(a_i) = |T_i| + 2.
  EXPECT_EQ(d.trussness[gadget.set_edges[0]], 2u + 2u);
  EXPECT_EQ(d.trussness[gadget.set_edges[1]], 3u + 2u);
  EXPECT_EQ(d.trussness[gadget.set_edges[2]], 2u + 2u);
  // Claim (ii): t(f_j) = t + 2 for every element edge.
  for (EdgeId f : gadget.element_edges) {
    EXPECT_EQ(d.trussness[f], t + 2u);
  }
  // Clique edges all have trussness t + 3.
  uint32_t clique_edges = 0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (d.trussness[e] == t + 3u) ++clique_edges;
  }
  EXPECT_GT(clique_edges, 0u);
  EXPECT_EQ(d.max_trussness, t + 3u);
}

TEST(MaxCoverageGadget, AnchoringASetEdgeLiftsExactlyItsElements) {
  // Claim (iii): anchoring a_i raises precisely the covered f_j, by 1 each.
  const MaxCoverageGadget gadget = MakePaperInstance();
  const Graph& g = gadget.graph;
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  const std::vector<std::vector<uint32_t>> sets = {{0, 2}, {0, 1, 2}, {2, 3}};
  for (size_t i = 0; i < sets.size(); ++i) {
    const std::vector<EdgeId> followers =
        BruteForceFollowers(g, base, {}, gadget.set_edges[i]);
    std::vector<EdgeId> expected;
    for (uint32_t j : sets[i]) expected.push_back(gadget.element_edges[j]);
    std::sort(expected.begin(), expected.end());
    std::vector<EdgeId> actual = followers;
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "set " << i;
  }
}

TEST(MaxCoverageGadget, AnchoringElementOrCliqueEdgesGainsNothing) {
  // Claim (v): only set edges produce trussness gain.
  const MaxCoverageGadget gadget = MakePaperInstance();
  const Graph& g = gadget.graph;
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  for (EdgeId f : gadget.element_edges) {
    EXPECT_EQ(TrussnessGain(g, base, {}, {f}), 0u) << "element edge " << f;
  }
  // Probe a few non-set, non-element edges (cliques).
  uint32_t probed = 0;
  for (EdgeId e = 0; e < g.NumEdges() && probed < 12; e += 37) {
    bool special = false;
    for (EdgeId a : gadget.set_edges) special |= (a == e);
    for (EdgeId f : gadget.element_edges) special |= (f == e);
    if (special) continue;
    EXPECT_EQ(TrussnessGain(g, base, {}, {e}), 0u) << "edge " << e;
    ++probed;
  }
}

TEST(MaxCoverageGadget, ExactBudgetOneSolvesMaxCoverage) {
  // Best single set is T2 with 3 elements; the ATR optimum must match.
  const MaxCoverageGadget gadget = MakePaperInstance();
  const ExactResult exact = RunExact(gadget.graph, 1);
  EXPECT_EQ(exact.gain, 3u);
  ASSERT_EQ(exact.anchors.size(), 1u);
  EXPECT_EQ(exact.anchors[0], gadget.set_edges[1]);
}

TEST(MaxCoverageGadget, GreedyBudgetTwoCoversAllElements) {
  // Greedy coverage: T2 (3 elements) then T3 (adds e4) = 4 = optimum.
  const MaxCoverageGadget gadget = MakePaperInstance();
  const AnchorResult gas = RunGas(gadget.graph, 2);
  EXPECT_EQ(gas.total_gain, 4u);
  EXPECT_EQ(gas.anchors[0], gadget.set_edges[1]);
  EXPECT_EQ(gas.anchors[1], gadget.set_edges[2]);
}

TEST(MaxCoverageGadget, OverlappingSetsDoNotDoubleCount)  {
  // Claim (iv): an element edge covered by several anchored sets still
  // rises by exactly 1.
  const MaxCoverageGadget gadget = MakePaperInstance();
  const Graph& g = gadget.graph;
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  // T1 and T2 overlap on elements {e1, e3}; union covers {e1, e2, e3}.
  const uint64_t gain =
      TrussnessGain(g, base, {}, {gadget.set_edges[0], gadget.set_edges[1]});
  EXPECT_EQ(gain, 3u);
}

}  // namespace
}  // namespace atr
