// Tests for the networked front end (src/net/): wire codec round trips,
// the incremental frame parser's hostile-input handling, and TCP
// integration — submit/wait results byte-identical to a local engine run,
// structured admission-control rejection with a retry-after hint, and the
// kill-and-restart resume contract over a persistent data dir (both the
// graceful and the crash path restart with zero decomposition rebuilds).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/service.h"
#include "graph/generators/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "persist/snapshot.h"

namespace atr {
namespace net {
namespace {

Graph ServedGraph(uint64_t seed = 11) { return HolmeKimGraph(60, 4, 0.7, seed); }

std::string FreshRoot(const char* name) {
  const std::string root = std::string(::testing::TempDir()) + "/" + name;
  std::system(("rm -rf " + root).c_str());
  return root;
}

// --- Wire codec -----------------------------------------------------------

// Strips the 8-byte frame header, checking the type on the way.
std::vector<uint8_t> PayloadOf(const std::vector<uint8_t>& frame,
                               MsgType expected) {
  FrameParser parser;
  EXPECT_GE(frame.size(), 8u);
  parser.Feed(frame.data(), frame.size());
  std::optional<Frame> next = parser.Next();
  EXPECT_TRUE(next.has_value());
  if (!next.has_value()) return {};
  EXPECT_EQ(next->type, expected);
  return std::move(next->payload);
}

TEST(WireCodec, SubmitRequestRoundTrips) {
  SubmitRequest request;
  request.request_id = 42;
  request.graph = "social";
  request.solver = "gas";
  request.options.budget = 7;
  request.options.budget_checkpoints = {2, 5, 7};
  request.options.seed = 99;
  request.options.trials = 17;
  request.options.use_incremental = true;

  StatusOr<SubmitRequest> decoded =
      SubmitRequest::Decode(PayloadOf(request.EncodeFrame(), MsgType::kSubmit));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->request_id, 42u);
  EXPECT_EQ(decoded->graph, "social");
  EXPECT_EQ(decoded->solver, "gas");
  EXPECT_EQ(decoded->options.budget, 7u);
  EXPECT_EQ(decoded->options.budget_checkpoints, (std::vector<uint32_t>{2, 5, 7}));
  EXPECT_EQ(decoded->options.seed, 99u);
  EXPECT_EQ(decoded->options.trials, 17u);
  EXPECT_TRUE(decoded->options.use_incremental);
  EXPECT_EQ(decoded->tenant, "");
  EXPECT_EQ(decoded->priority, 0);
}

TEST(WireCodec, SubmitRequestCarriesTenantAndPriority) {
  SubmitRequest request;
  request.request_id = 43;
  request.graph = "social";
  request.solver = "gas";
  request.options.budget = 2;
  request.tenant = "acme";
  request.priority = -3;

  StatusOr<SubmitRequest> decoded =
      SubmitRequest::Decode(PayloadOf(request.EncodeFrame(), MsgType::kSubmit));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->tenant, "acme");
  EXPECT_EQ(decoded->priority, -3);
}

TEST(WireCodec, SubmitRequestCarriesPlan) {
  SubmitRequest request;
  request.request_id = 44;
  request.graph = "social";
  request.solver = "gas";
  request.options.budget = 2;
  request.tenant = "acme";
  request.priority = 1;
  DecompositionPlan plan = DecompositionPlan::BspCoreThenTruss();
  plan.chunk_size = 512;
  plan.fanout_cutoff = 1024;
  plan.prefilter = true;
  request.plan = plan;

  StatusOr<SubmitRequest> decoded =
      SubmitRequest::Decode(PayloadOf(request.EncodeFrame(), MsgType::kSubmit));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  ASSERT_TRUE(decoded->plan.has_value());
  EXPECT_EQ(decoded->plan->algorithm, PeelAlgorithm::kBspCoreThenTruss);
  EXPECT_EQ(decoded->plan->chunk_size, 512u);
  EXPECT_EQ(decoded->plan->fanout_cutoff, 1024u);
  EXPECT_TRUE(decoded->plan->prefilter);
  EXPECT_EQ(decoded->tenant, "acme");

  // Without an explicit plan the frame stays byte-identical to revision 2
  // and decodes to "unset" (server default), never to some plan value.
  request.plan.reset();
  StatusOr<SubmitRequest> plain =
      SubmitRequest::Decode(PayloadOf(request.EncodeFrame(), MsgType::kSubmit));
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->plan.has_value());
}

TEST(WireCodec, SubmitRequestRev2PrefixDecodesWithoutPlan) {
  // A revision-2 client's frame is exactly a revision-3 frame minus the
  // 10-byte plan trailer; the server must decode it with the plan unset
  // while keeping the rev-2 fields.
  SubmitRequest request;
  request.request_id = 45;
  request.graph = "g";
  request.solver = "gas";
  request.tenant = "acme";
  request.priority = -2;
  request.plan = DecompositionPlan::Bsp();
  const std::vector<uint8_t> frame = request.EncodeFrame();
  const std::span<const uint8_t> payload(frame.data() + 8, frame.size() - 8);

  StatusOr<SubmitRequest> rev2 =
      SubmitRequest::Decode(payload.subspan(0, payload.size() - 10));
  ASSERT_TRUE(rev2.ok()) << rev2.status().message();
  EXPECT_FALSE(rev2->plan.has_value());
  EXPECT_EQ(rev2->tenant, "acme");
  EXPECT_EQ(rev2->priority, -2);

  // Every other strict prefix of the trailer is a malformed frame.
  for (size_t cut = 1; cut < 10; ++cut) {
    EXPECT_FALSE(
        SubmitRequest::Decode(payload.subspan(0, payload.size() - cut)).ok())
        << "trailer cut " << cut;
  }
}

TEST(WireCodec, SubmitRequestRejectsUnknownPlanAlgorithm) {
  SubmitRequest request;
  request.request_id = 46;
  request.graph = "g";
  request.solver = "gas";
  request.plan = DecompositionPlan::Serial();
  std::vector<uint8_t> frame = request.EncodeFrame();
  // The algorithm id leads the 10-byte plan trailer at the payload tail.
  const size_t algorithm_at = frame.size() - 10;
  for (const uint8_t bogus : {3, 7, 255}) {
    frame[algorithm_at] = bogus;
    const std::span<const uint8_t> payload(frame.data() + 8, frame.size() - 8);
    EXPECT_FALSE(SubmitRequest::Decode(payload).ok())
        << "algorithm id " << static_cast<int>(bogus);
  }
}

TEST(WireCodec, WaitResponseRoundTrips) {
  WaitResponse response;
  response.request_id = 3;
  response.job_id = 12;
  response.result.solver = "base+";
  response.result.anchor_edges = {5, 9, 1};
  response.result.total_gain = 77;
  response.result.gain_at_checkpoint = {30, 77};
  response.result.seconds = 1.5;
  response.result.stopped_early = true;

  StatusOr<WaitResponse> decoded = WaitResponse::Decode(
      PayloadOf(response.EncodeFrame(), MsgType::kWaitResponse));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->job_id, 12u);
  EXPECT_EQ(decoded->result.solver, "base+");
  EXPECT_EQ(decoded->result.anchor_edges, (std::vector<uint32_t>{5, 9, 1}));
  EXPECT_EQ(decoded->result.total_gain, 77u);
  EXPECT_EQ(decoded->result.gain_at_checkpoint, (std::vector<uint64_t>{30, 77}));
  EXPECT_DOUBLE_EQ(decoded->result.seconds, 1.5);
  EXPECT_TRUE(decoded->result.stopped_early);
}

TEST(WireCodec, ErrorResponseRoundTripsAndRejectsUnknownCodes) {
  ErrorResponse error;
  error.request_id = 8;
  error.code = StatusCode::kResourceExhausted;
  error.message = "queue full";
  error.retry_after_ms = 125;

  StatusOr<ErrorResponse> decoded =
      ErrorResponse::Decode(PayloadOf(error.EncodeFrame(), MsgType::kError));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded->retry_after_ms, 125u);
  EXPECT_EQ(decoded->ToStatus().code(), StatusCode::kResourceExhausted);

  // A forged code outside the enum is a decode error, not a cast.
  ByteWriter forged;
  forged.WriteU64(8);
  forged.WriteU32(200);
  forged.WriteString("x");
  forged.WriteU32(0);
  EXPECT_FALSE(ErrorResponse::Decode(forged.buffer()).ok());
}

TEST(WireCodec, UpdateGraphRequestRoundTrips) {
  UpdateGraphRequest request;
  request.request_id = 5;
  request.graph = "g";
  request.delta.add = {{1, 9}, {2, 8}};
  request.delta.remove = {{3, 7}};

  StatusOr<UpdateGraphRequest> decoded = UpdateGraphRequest::Decode(
      PayloadOf(request.EncodeFrame(), MsgType::kUpdateGraph));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->delta.add, request.delta.add);
  EXPECT_EQ(decoded->delta.remove, request.delta.remove);
}

TEST(WireCodec, DecodersRejectTruncationAndTrailingBytes) {
  SubmitRequest request;
  request.request_id = 1;
  request.graph = "g";
  request.solver = "gas";
  const std::vector<uint8_t> frame = request.EncodeFrame();
  const std::span<const uint8_t> payload(frame.data() + 8, frame.size() - 8);

  // One prefix is legitimately decodable: the frame minus the revision-2
  // tenant + priority trailer IS a well-formed revision-1 SubmitRequest
  // (old clients still speak it), and must decode to the defaults.
  const size_t rev1_len = payload.size() - 8;
  for (size_t len = 0; len < payload.size(); ++len) {
    StatusOr<SubmitRequest> truncated =
        SubmitRequest::Decode(payload.subspan(0, len));
    if (len == rev1_len) {
      ASSERT_TRUE(truncated.ok()) << "rev-1 prefix " << len;
      EXPECT_EQ(truncated->tenant, "");
      EXPECT_EQ(truncated->priority, 0);
    } else {
      EXPECT_FALSE(truncated.ok()) << "prefix " << len;
    }
  }
  std::vector<uint8_t> padded(payload.begin(), payload.end());
  padded.push_back(0);
  EXPECT_FALSE(SubmitRequest::Decode(padded).ok());
}

// --- FrameParser ----------------------------------------------------------

TEST(FrameParser, ReassemblesFramesFedByteByByte) {
  PingRequest ping;
  ping.request_id = 2;
  SubmitRequest submit;
  submit.request_id = 3;
  submit.graph = "g";
  submit.solver = "gas";
  std::vector<uint8_t> stream = ping.EncodeFrame();
  const std::vector<uint8_t> second = submit.EncodeFrame();
  stream.insert(stream.end(), second.begin(), second.end());

  FrameParser parser;
  std::vector<Frame> frames;
  for (const uint8_t byte : stream) {
    parser.Feed(&byte, 1);
    while (std::optional<Frame> frame = parser.Next()) {
      frames.push_back(std::move(*frame));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MsgType::kPing);
  EXPECT_EQ(frames[1].type, MsgType::kSubmit);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameParser, ZeroLengthPayloadIsAValidFrame) {
  const std::vector<uint8_t> frame = EncodeFrame(MsgType::kPing, {});
  ASSERT_EQ(frame.size(), 8u);  // header only

  FrameParser parser;
  parser.Feed(frame.data(), frame.size());
  std::optional<Frame> parsed = parser.Next();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, MsgType::kPing);
  EXPECT_TRUE(parsed->payload.empty());
  EXPECT_TRUE(parser.ok());
  EXPECT_EQ(parser.buffered(), 0u);

  // And a zero-length frame between two real ones doesn't desynchronize
  // the stream.
  PingRequest ping;
  ping.request_id = 5;
  std::vector<uint8_t> stream = ping.EncodeFrame();
  const std::vector<uint8_t> empty = EncodeFrame(MsgType::kListGraphs, {});
  stream.insert(stream.end(), empty.begin(), empty.end());
  const std::vector<uint8_t> tail = ping.EncodeFrame();
  stream.insert(stream.end(), tail.begin(), tail.end());
  parser.Feed(stream.data(), stream.size());
  int frames = 0;
  while (parser.Next()) ++frames;
  EXPECT_EQ(frames, 3);
  EXPECT_TRUE(parser.ok());
}

TEST(FrameParser, LengthExactlyAtTheCapIsNotPoison) {
  // kMaxFramePayload itself is the largest legal frame: the parser must
  // keep waiting for the payload, not reject the stream. (One past it is
  // poison — covered below.) Only the header is fed; materializing the
  // 64 MiB body would test the allocator, not the boundary.
  ByteWriter writer;
  writer.WriteU32(kMaxFramePayload);
  writer.WriteU32(static_cast<uint32_t>(MsgType::kPing));
  FrameParser parser;
  parser.Feed(writer.buffer().data(), writer.size());
  EXPECT_FALSE(parser.Next().has_value());  // incomplete, not invalid
  EXPECT_TRUE(parser.ok());
  EXPECT_EQ(parser.buffered(), 8u);
}

TEST(FrameParser, OversizeLengthPoisonsTheParser) {
  ByteWriter writer;
  writer.WriteU32(kMaxFramePayload + 1);
  writer.WriteU32(static_cast<uint32_t>(MsgType::kPing));
  FrameParser parser;
  parser.Feed(writer.buffer().data(), writer.size());
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_FALSE(parser.ok());

  // Sticky: even a valid frame afterwards is refused.
  PingRequest ping;
  const std::vector<uint8_t> valid = ping.EncodeFrame();
  parser.Feed(valid.data(), valid.size());
  EXPECT_FALSE(parser.Next().has_value());
}

// --- TCP integration ------------------------------------------------------

class ServerFixture {
 public:
  explicit ServerFixture(AtrServer::Options options = {}) : server_(options) {
    Status started = server_.Start();
    EXPECT_TRUE(started.ok()) << started.message();
  }

  AtrServer& server() { return server_; }

  AtrClient MakeClient() {
    AtrClient client;
    Status connected = client.Connect("127.0.0.1", server_.port());
    EXPECT_TRUE(connected.ok()) << connected.message();
    return client;
  }

 private:
  AtrServer server_;
};

TEST(ServerIntegration, PingListInfoOverTcp) {
  ServerFixture fixture;
  ASSERT_TRUE(fixture.server().AddGraph("social", ServedGraph()).ok());
  AtrClient client = fixture.MakeClient();

  EXPECT_TRUE(client.Ping().ok());

  StatusOr<std::vector<std::string>> names = client.ListGraphs();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"social"});

  StatusOr<AtrService::GraphInfo> info = client.Info("social");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->name, "social");
  EXPECT_GT(info->num_edges, 0u);
  EXPECT_EQ(info->version, 1u);

  EXPECT_EQ(client.Info("absent").status().code(), StatusCode::kNotFound);
}

TEST(ServerIntegration, SolveOverTcpMatchesLocalEngine) {
  ServerFixture fixture;
  ASSERT_TRUE(fixture.server().AddGraph("social", ServedGraph()).ok());
  AtrClient client = fixture.MakeClient();

  WireSolverOptions options;
  options.budget = 4;
  StatusOr<uint64_t> job = client.Submit("social", "gas", options);
  ASSERT_TRUE(job.ok()) << job.status().message();
  StatusOr<WireSolveResult> remote = client.Wait(*job);
  ASSERT_TRUE(remote.ok()) << remote.status().message();

  AtrEngine engine(ServedGraph());
  StatusOr<SolveResult> local =
      engine.Run("gas", options.ToSolverOptions());
  ASSERT_TRUE(local.ok());

  EXPECT_EQ(remote->solver, local->solver);
  EXPECT_EQ(remote->total_gain, local->total_gain);
  ASSERT_EQ(remote->anchor_edges.size(), local->anchor_edges.size());
  for (size_t i = 0; i < remote->anchor_edges.size(); ++i) {
    EXPECT_EQ(remote->anchor_edges[i], local->anchor_edges[i]);
  }
  EXPECT_EQ(remote->gain_at_checkpoint,
            std::vector<uint64_t>(local->gain_at_checkpoint.begin(),
                                  local->gain_at_checkpoint.end()));
}

TEST(ServerIntegration, PipelinedSubmitsResolveOutOfOrder) {
  ServerFixture fixture;
  ASSERT_TRUE(fixture.server().AddGraph("social", ServedGraph()).ok());
  AtrClient client = fixture.MakeClient();

  WireSolverOptions options;
  options.budget = 2;
  std::vector<uint64_t> request_ids;
  for (int i = 0; i < 3; ++i) {
    StatusOr<uint64_t> sent = client.SendSubmit("social", "gas", options);
    ASSERT_TRUE(sent.ok());
    request_ids.push_back(*sent);
  }
  // Collect in reverse order: the stash matches responses to ids.
  std::vector<uint64_t> jobs;
  for (auto it = request_ids.rbegin(); it != request_ids.rend(); ++it) {
    StatusOr<uint64_t> job = client.ReceiveSubmit(*it);
    ASSERT_TRUE(job.ok());
    jobs.push_back(*job);
  }
  for (const uint64_t job : jobs) {
    StatusOr<WireSolveResult> result = client.Wait(job);
    EXPECT_TRUE(result.ok()) << result.status().message();
  }
}

TEST(ServerIntegration, ErrorsForUnknownGraphSolverAndJob) {
  ServerFixture fixture;
  ASSERT_TRUE(fixture.server().AddGraph("social", ServedGraph()).ok());
  AtrClient client = fixture.MakeClient();

  WireSolverOptions options;
  EXPECT_EQ(client.Submit("absent", "gas", options).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client.Submit("social", "no-such-solver", options).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client.Wait(999).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client.Cancel(999).status().code(), StatusCode::kNotFound);
}

TEST(ServerIntegration, CancelAfterCompletionReportsTooLate) {
  ServerFixture fixture;
  ASSERT_TRUE(fixture.server().AddGraph("social", ServedGraph()).ok());
  AtrClient client = fixture.MakeClient();

  WireSolverOptions options;
  options.budget = 1;
  StatusOr<uint64_t> job = client.Submit("social", "gas", options);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(client.Wait(*job).ok());

  StatusOr<bool> cancelled = client.Cancel(*job);
  ASSERT_TRUE(cancelled.ok());
  EXPECT_FALSE(*cancelled);
}

TEST(ServerIntegration, SaturatedQueueAnswersRetryAfter) {
  AtrServer::Options options;
  options.workers = 1;
  options.queue_capacity = 1;
  ServerFixture fixture(options);
  ASSERT_TRUE(fixture.server().AddGraph("social", ServedGraph()).ok());

  // Deterministically jam the service: one job blocked mid-solve in its
  // progress callback (occupies the lone worker), one job pending (fills
  // the queue). Submitted in-process; the wire path is then guaranteed to
  // hit admission control.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  SolverOptions blocker;
  blocker.budget = 2;
  blocker.progress = [&](const SolveProgress&) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    return true;
  };
  AtrService& service = fixture.server().service();
  StatusOr<JobHandle> running = service.Submit("social", "gas", blocker);
  ASSERT_TRUE(running.ok());
  // Wait until the worker is actually inside the progress callback
  // (queue load stays 1 while running) then fill the pending slot.
  while (running->state() == JobHandle::State::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  SolverOptions pending_options;
  pending_options.budget = 1;
  StatusOr<JobHandle> pending = service.Submit("social", "gas", pending_options);
  ASSERT_TRUE(pending.ok());

  AtrClient client = fixture.MakeClient();
  WireSolverOptions wire_options;
  wire_options.budget = 1;
  StatusOr<uint64_t> rejected = client.Submit("social", "gas", wire_options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(client.last_retry_after_ms(), 0u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  ASSERT_TRUE(running->Wait().ok());
  ASSERT_TRUE(pending->Wait().ok());

  // With the jam cleared the same wire submit is accepted.
  StatusOr<uint64_t> accepted = client.Submit("social", "gas", wire_options);
  EXPECT_TRUE(accepted.ok()) << accepted.status().message();
  EXPECT_TRUE(client.Wait(*accepted).ok());
}

TEST(ServerIntegration, UpdateGraphOverTcpBumpsVersion) {
  ServerFixture fixture;
  ASSERT_TRUE(fixture.server().AddGraph("social", ServedGraph()).ok());
  AtrClient client = fixture.MakeClient();

  GraphDelta delta;
  delta.add = {{0, 40}, {1, 45}};
  StatusOr<UpdateGraphResponse> updated = client.UpdateGraph("social", delta);
  ASSERT_TRUE(updated.ok()) << updated.status().message();
  EXPECT_EQ(updated->version, 2u);

  StatusOr<AtrService::GraphInfo> info = client.Info("social");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 2u);
  EXPECT_EQ(info->delta_updates, 1u);
  // In-memory server: the decomposition still carried incrementally.
  EXPECT_LE(info->decomposition_builds, 1u);
}

TEST(ServerIntegration, OversizeFrameDropsConnectionButServerSurvives) {
  ServerFixture fixture;
  ASSERT_TRUE(fixture.server().AddGraph("social", ServedGraph()).ok());

  // Hand-roll the poison on a plain socket: a header whose length field
  // exceeds kMaxFramePayload must cost the connection, nothing more.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fixture.server().port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ByteWriter writer;
  writer.WriteU32(kMaxFramePayload + 7);
  writer.WriteU32(static_cast<uint32_t>(MsgType::kPing));
  ASSERT_EQ(::send(fd, writer.buffer().data(), writer.size(), 0),
            static_cast<ssize_t>(writer.size()));
  // The server answers a protocol violation by closing: EOF, no frame.
  uint8_t byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);

  // Fresh connections are unaffected.
  AtrClient after = fixture.MakeClient();
  EXPECT_TRUE(after.Ping().ok());
}

// A raw blocking TCP connection to the fixture's port.
int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

TEST(ServerIntegration, SlowConsumerIsDisconnected) {
  AtrServer::Options options;
  options.max_output_buffer_bytes = 256u << 10;
  ServerFixture fixture(options);
  // Many long graph names make each ListGraphs response a few KB, so the
  // non-reading client below fills the kernel buffers and then the
  // server-side output buffer quickly.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(fixture.server()
                    .AddGraph(std::string(180, 'a') + std::to_string(i),
                              ServedGraph(uint64_t(i)))
                    .ok());
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  // A tiny receive buffer keeps the in-flight TCP window small: almost
  // all response bytes stay server-side, first in its socket buffer, then
  // in the connection's output buffer.
  const int rcvbuf = 8 << 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fixture.server().port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // Fire ListGraphs requests in waves and never read a byte back. The
  // server must cut the connection once its unsent output passes the
  // high-water mark instead of buffering forever.
  ListGraphsRequest request;
  std::vector<uint8_t> wave;
  for (int i = 0; i < 200; ++i) {
    request.request_id = uint64_t(i) + 1;
    const std::vector<uint8_t> frame = request.EncodeFrame();
    wave.insert(wave.end(), frame.begin(), frame.end());
  }
  bool disconnected = false;
  for (int round = 0; round < 40 && !disconnected; ++round) {
    size_t sent = 0;
    while (sent < wave.size()) {
      const ssize_t n = ::send(fd, wave.data() + sent, wave.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        disconnected = true;  // RST from the server's close
        break;
      }
      sent += static_cast<size_t>(n);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(disconnected);
  ::close(fd);

  EXPECT_GE(fixture.server().slow_consumer_disconnects(), 1u);
  // The server itself is unharmed.
  AtrClient after = fixture.MakeClient();
  EXPECT_TRUE(after.Ping().ok());
}

TEST(ServerIntegration, IdleConnectionIsReaped) {
  AtrServer::Options options;
  options.idle_timeout_ms = 100;
  ServerFixture fixture(options);

  const int fd = RawConnect(fixture.server().port());
  PingRequest ping;
  ping.request_id = 1;
  const std::vector<uint8_t> frame = ping.EncodeFrame();
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  uint8_t buffer[64];
  ASSERT_GT(::recv(fd, buffer, sizeof(buffer), 0), 0);  // the PingResponse

  // Then go quiet. The server reaps the connection after idle_timeout_ms:
  // the blocking recv returns EOF instead of hanging.
  EXPECT_EQ(::recv(fd, buffer, sizeof(buffer), 0), 0);
  ::close(fd);
  EXPECT_GE(fixture.server().idle_disconnects(), 1u);

  // The other half of the contract — an ACTIVE client is never reaped —
  // used to live here as "ping every 60 ms against a 100 ms timeout",
  // which falsely reaps under CI scheduling stalls. It is now exact on a
  // virtual clock in server_sim_test.cc
  // (ServerSim.VirtualTimeIdleReapIsMillisecondExact and
  // ServerSim.ParkedWaiterOutlivesIdleTimeout).
}

TEST(ServerIntegration, TenantAndPrioritySubmitOverTcp) {
  ServerFixture fixture;
  ASSERT_TRUE(fixture.server().AddGraph("social", ServedGraph()).ok());
  AtrClient client = fixture.MakeClient();

  WireSolverOptions options;
  options.budget = 3;
  StatusOr<uint64_t> plain = client.Submit("social", "gas", options);
  ASSERT_TRUE(plain.ok());
  StatusOr<WireSolveResult> plain_result = client.Wait(*plain);
  ASSERT_TRUE(plain_result.ok());

  StatusOr<uint64_t> tenant_job =
      client.Submit("social", "gas", options, "acme", 7);
  ASSERT_TRUE(tenant_job.ok());
  StatusOr<WireSolveResult> tenant_result = client.Wait(*tenant_job);
  ASSERT_TRUE(tenant_result.ok());

  // Tenancy routes scheduling, never results.
  EXPECT_EQ(tenant_result->anchor_edges, plain_result->anchor_edges);
  EXPECT_EQ(tenant_result->total_gain, plain_result->total_gain);
}

TEST(ServerIntegration, PlanSubmitOverTcp) {
  // The plan rides the wire to the worker thread; every plan is
  // byte-identical in decomposition output, so solve results must match
  // the plan-less submit exactly.
  ServerFixture fixture;
  ASSERT_TRUE(fixture.server().AddGraph("social", ServedGraph()).ok());
  AtrClient client = fixture.MakeClient();

  WireSolverOptions options;
  options.budget = 3;
  StatusOr<uint64_t> plain = client.Submit("social", "gas", options);
  ASSERT_TRUE(plain.ok());
  StatusOr<WireSolveResult> plain_result = client.Wait(*plain);
  ASSERT_TRUE(plain_result.ok());

  for (const DecompositionPlan& plan :
       {DecompositionPlan::Serial(), DecompositionPlan::Bsp(),
        DecompositionPlan::BspCoreThenTruss()}) {
    StatusOr<uint64_t> job = client.Submit("social", "gas", options,
                                           /*tenant=*/"", /*priority=*/0, plan);
    ASSERT_TRUE(job.ok()) << plan.Name();
    StatusOr<WireSolveResult> result = client.Wait(*job);
    ASSERT_TRUE(result.ok()) << plan.Name();
    EXPECT_EQ(result->anchor_edges, plain_result->anchor_edges) << plan.Name();
    EXPECT_EQ(result->total_gain, plain_result->total_gain) << plan.Name();
  }
}

TEST(ClientDeadline, SilentServerYieldsDeadlineExceeded) {
  // A socket that accepts the TCP handshake (listen backlog) but never
  // reads or answers: without a deadline the client would block forever.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 4), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len),
            0);

  AtrClientOptions client_options;
  client_options.io_timeout_ms = 200;
  AtrClient client(client_options);
  ASSERT_TRUE(client.Connect("127.0.0.1", ntohs(bound.sin_port)).ok());

  const auto start = std::chrono::steady_clock::now();
  const Status status = client.Ping();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << status.message();
  // Bounded wait, not a hang: generous upper bound for slow CI machines.
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  ::close(listener);
}

// --- Restart-resume over the wire (satellite: kill and resume) ------------

TrussDecomposition ServedDecomposition(AtrService& service,
                                       const std::string& name) {
  StatusOr<GraphSnapshot> snapshot = service.Snapshot(name);
  EXPECT_TRUE(snapshot.ok());
  return *snapshot->decomposition;
}

class RestartTest : public ::testing::TestWithParam<bool> {};

TEST_P(RestartTest, ServerResumesCatalogAfterRestart) {
  const bool graceful = GetParam();
  const std::string root =
      FreshRoot(graceful ? "net_restart_graceful" : "net_restart_crash");

  TrussDecomposition before;
  WireSolveResult result_before;
  uint64_t version_before = 0;

  {
    AtrServer::Options options;
    options.data_dir = root;
    AtrServer server(options);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.AddGraph("social", ServedGraph()).ok());

    AtrClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

    GraphDelta delta;
    delta.add = {{0, 40}, {2, 50}};
    ASSERT_TRUE(client.UpdateGraph("social", delta).ok());
    GraphDelta delta2;
    delta2.add = {{5, 41}};
    StatusOr<UpdateGraphResponse> updated =
        client.UpdateGraph("social", delta2);
    ASSERT_TRUE(updated.ok());
    version_before = updated->version;
    EXPECT_EQ(version_before, 3u);

    WireSolverOptions wire_options;
    wire_options.budget = 3;
    StatusOr<uint64_t> job = client.Submit("social", "gas", wire_options);
    ASSERT_TRUE(job.ok());
    StatusOr<WireSolveResult> result = client.Wait(*job);
    ASSERT_TRUE(result.ok());
    result_before = *result;

    before = ServedDecomposition(server.service(), "social");
    client.Close();
    if (graceful) {
      ASSERT_TRUE(server.Stop().ok());
    } else {
      ASSERT_TRUE(server.StopWithoutPersist().ok());
    }
  }

  {
    AtrServer::Options options;
    options.data_dir = root;
    AtrServer server(options);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_NE(server.catalog(), nullptr);
    EXPECT_EQ(server.catalog()->restore_stats().graphs_restored, 1u);
    // Graceful stop compacted (no deltas to replay); the crash path must
    // replay both logged deltas.
    EXPECT_EQ(server.catalog()->restore_stats().deltas_replayed,
              graceful ? 0u : 2u);

    AtrClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

    StatusOr<AtrService::GraphInfo> info = client.Info("social");
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->version, version_before);
    // The headline restart contract: nothing was rebuilt.
    EXPECT_EQ(info->decomposition_builds, 0u);

    // Byte-identical decomposition across the restart.
    const TrussDecomposition after =
        ServedDecomposition(server.service(), "social");
    EXPECT_EQ(after.trussness, before.trussness);
    EXPECT_EQ(after.layer, before.layer);
    EXPECT_EQ(after.max_trussness, before.max_trussness);
    // decomposition_builds must STILL be 0 after serving a snapshot.
    info = client.Info("social");
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->decomposition_builds, 0u);

    // Solves against the restored graph reproduce pre-restart results.
    WireSolverOptions wire_options;
    wire_options.budget = 3;
    StatusOr<uint64_t> job = client.Submit("social", "gas", wire_options);
    ASSERT_TRUE(job.ok());
    StatusOr<WireSolveResult> result = client.Wait(*job);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->total_gain, result_before.total_gain);
    EXPECT_EQ(result->anchor_edges, result_before.anchor_edges);

    client.Close();
    ASSERT_TRUE(server.Stop().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(GracefulAndCrash, RestartTest, ::testing::Bool());

TEST(ServerIntegration, ClientShutdownStopsTheServer) {
  const std::string root = FreshRoot("net_shutdown");
  AtrServer::Options options;
  options.data_dir = root;
  AtrServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.AddGraph("social", ServedGraph()).ok());

  AtrClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(client.Shutdown().ok());
  server.Join();  // returns because the loop exited on the request
  EXPECT_TRUE(server.Stop().ok());
}

}  // namespace
}  // namespace net
}  // namespace atr
