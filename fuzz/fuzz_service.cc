// Fuzz harness for the text edge-list loader and the streaming-update
// path through a full AtrService: hostile bytes become (1) an edge-list
// file fed to LoadSnapEdgeList, (2) a wire UpdateGraphRequest decoded and
// applied, and (3) a raw GraphDelta applied through UpdateGraph so the
// incremental truss maintenance behind version publication runs on every
// mutation. Pass criterion: malformed input comes back as a Status error
// — never a crash, never a sanitizer report, never unbounded growth (the
// harness re-seeds the service graph when edits accumulate).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <unistd.h>

#include "api/service.h"
#include "graph/edge_list_io.h"
#include "graph/graph.h"
#include "net/wire.h"

#include "fuzz/standalone_driver.h"

using namespace atr;

namespace {

constexpr char kGraphName[] = "g";

Graph SeedGraph() {
  GraphBuilder builder;
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) {
      if ((u * 3 + v) % 5 != 0) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

AtrService& Service() {
  static AtrService* service = [] {
    AtrService::Options options;
    options.workers = 1;
    options.shards = 2;  // exercise the sharded catalog path too
    auto* s = new AtrService(options);
    if (!s->AddGraph(kGraphName, SeedGraph()).ok()) std::abort();
    return s;
  }();
  return *service;
}

// Applying adds forever would grow the graph without bound; re-seed once
// the topology drifts far from the base.
void ReseedIfLarge(AtrService& service) {
  StatusOr<AtrService::GraphInfo> info = service.Info(kGraphName);
  if (info.ok() && (info->num_edges > 512 || info->num_vertices > 256)) {
    (void)service.RemoveGraph(kGraphName);
    if (!service.AddGraph(kGraphName, SeedGraph()).ok()) std::abort();
  }
}

// Interprets the raw bytes as a small GraphDelta: byte triples
// (op, u, v) with vertex ids folded into [0, 64) so a healthy fraction
// of edits is valid and the incremental maintenance really runs.
GraphDelta DeltaFromBytes(std::span<const uint8_t> bytes) {
  GraphDelta delta;
  for (size_t i = 0; i + 2 < bytes.size() && i < 3 * 24; i += 3) {
    const VertexId u = bytes[i + 1] % 64;
    const VertexId v = bytes[i + 2] % 64;
    if (bytes[i] % 2 == 0) {
      delta.add.push_back({u, v});
    } else {
      delta.remove.push_back({u, v});
    }
  }
  return delta;
}

void WriteTempFile(const std::string& path, std::span<const uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) std::abort();
  if (!bytes.empty()) std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> bytes(data, size);

  // 1) Text edge-list loader (path-based, so the bytes go through a file).
  static const std::string path =
      "/tmp/atr_fuzz_service_" + std::to_string(::getpid()) + ".txt";
  WriteTempFile(path, bytes);
  // Dropped on purpose: only crash-safety of the loader is under test.
  (void)LoadSnapEdgeList(path);

  AtrService& service = Service();
  ReseedIfLarge(service);

  // 2) Hostile wire bytes: most fail Decode; the survivors must apply (or
  //    reject) cleanly through the service.
  if (StatusOr<net::UpdateGraphRequest> request =
          net::UpdateGraphRequest::Decode(bytes);
      request.ok()) {
    // A decoded delta may reference absurd vertex ids or huge edit lists;
    // only size is capped here — validation is ApplyEdits' job.
    if (request->delta.add.size() + request->delta.remove.size() <= 256) {
      // A rejected hostile delta is a pass, not a failure to report.
      (void)service.UpdateGraph(kGraphName, request->delta);
    }
  }

  // 3) Raw-interpreted delta: dense valid mutations so every iteration
  //    drives Graph::ApplyEdits + incremental truss maintenance.
  // Dropped on purpose: both accept and reject are valid outcomes here.
  (void)service.UpdateGraph(kGraphName, DeltaFromBytes(bytes));

  // Periodically solve on the mutated snapshot: the published version
  // must always be a decomposition a solver can run on.
  static uint64_t iteration = 0;
  if (++iteration % 64 == 0) {
    SolverOptions options;
    options.budget = 1;
    if (StatusOr<JobHandle> job = service.Submit(kGraphName, "gas", options);
        job.ok()) {
      (void)job->Wait();  // only completion matters; the result is discarded
    }
  }
  return 0;
}

std::vector<std::vector<uint8_t>> FuzzSeedCorpus() {
  std::vector<std::vector<uint8_t>> corpus;

  // A well-formed SNAP-style edge list with comments and blank lines.
  const std::string edge_list =
      "# Nodes: 5 Edges: 6\n"
      "0 1\n"
      "0\t2\n"
      "1 2\n"
      "\n"
      "2 3\n"
      "3 4\n"
      "1 4\n";
  corpus.emplace_back(edge_list.begin(), edge_list.end());

  // A valid UpdateGraphRequest wire frame payload.
  {
    net::UpdateGraphRequest request;
    request.request_id = 7;
    request.graph = kGraphName;
    request.delta.add = {{0, 9}, {9, 10}};
    request.delta.remove = {{0, 1}};
    const std::vector<uint8_t> frame = request.EncodeFrame();
    corpus.push_back(frame);
    // Also seed the bare payload (what Decode actually consumes).
    net::FrameParser parser;
    parser.Feed(frame.data(), frame.size());
    if (std::optional<net::Frame> parsed = parser.Next()) {
      corpus.push_back(parsed->payload);
    }
  }

  // Raw delta triples: (op, u, v) bytes for DeltaFromBytes.
  corpus.push_back({0, 1, 9, 0, 9, 17, 1, 0, 1, 0, 3, 3, 1, 60, 61});

  return corpus;
}
