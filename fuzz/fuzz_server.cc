// Fuzz harness for the server's connection state machine: every input is
// a small op program driving a LIVE AtrServer (sharded service, worker
// pool, wake pipe, idle reaping) through a SimTransport — multi-
// connection frame soup, torn reads, short writes, injected errno
// faults, EMFILE accepts, resets, mid-frame disconnects, and virtual
// time jumps, all interleaved however the mutation engine likes.
//
// Pass criteria, checked every iteration:
//   - no crash, no sanitizer report (the nightly CI leg runs this under
//     ASan/UBSan; the churn soak covers TSan);
//   - the server never emits a malformed frame (every drained byte goes
//     through a client-side FrameParser that must stay ok());
//   - no leaked connections: after Stop every simulated connection
//     descriptor is closed, and after destruction every descriptor is.
//
// Op encoding (2 bytes per op — op byte, arg byte — so byte-level
// mutations stay syntactically valid):
//
//   0  ping              valid PingRequest on connection arg%4
//   1  noise             arg%48 raw stream bytes onto connection arg%4
//   2  submit            valid SubmitRequest ("g" or a missing graph)
//   3  wait              WaitRequest for job id 1+arg%4 (often unknown)
//   4  close             client half-close of connection arg%4
//   5  reset             sticky ECONNRESET on connection arg%4
//   6  read_chunk        max_read_chunk = 1+arg%7 (torn reads)
//   7  write_chunk       max_write_chunk = 1+arg%7 (short writes)
//   8  write_space       simulated kernel buffer = arg%64 bytes
//   9  fail_read         one-shot EINTR/ECONNRESET/ETIMEDOUT on read
//   10 fail_write        one-shot EINTR/EPIPE/ECONNRESET on write
//   11 emfile            next accept fails EMFILE, then connect
//   12 advance           virtual clock += arg*16 ms (reaps may fire)
//   13 drain             TakeOutput through the checking parser
//   14 connect           (re)open connection slot arg%4
//   15 partial           first arg%16 bytes of a ping frame (mid-frame)
//
// A ShutdownRequest is deliberately absent: Stop() runs at the end of
// every program anyway, and the graceful-shutdown protocol has its own
// deterministic tests.

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "api/service.h"
#include "graph/graph.h"
#include "net/server.h"
#include "net/sim_transport.h"
#include "net/wire.h"

#include "fuzz/standalone_driver.h"

using namespace atr;
using namespace atr::net;

namespace {

constexpr size_t kSlots = 4;
constexpr size_t kMaxOps = 128;

Graph SeedGraph() {
  GraphBuilder builder;
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) {
      if ((u * 3 + v) % 5 != 0) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

struct Client {
  std::shared_ptr<SimTransport::Connection> conn;
  FrameParser parser;  // checks everything the server sends back
};

void Drain(Client& client) {
  const std::vector<uint8_t> bytes = client.conn->TakeOutput();
  if (!bytes.empty()) client.parser.Feed(bytes.data(), bytes.size());
  while (client.parser.Next()) {
  }
  if (!client.parser.ok()) {
    std::fprintf(stderr,
                 "fuzz_server: server emitted a malformed frame: %s\n",
                 client.parser.status().message().c_str());
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  SimTransport sim;
  sim.set_idle_poll_real_ms(1);  // keep frozen-clock poll rounds snappy

  AtrServer::Options options;
  options.workers = 1;
  options.shards = 2;
  options.queue_capacity = 4;
  options.idle_timeout_ms = 32;          // advance ops can trigger reaps
  options.max_output_buffer_bytes = 512;  // and the high-water mark is near
  options.retry_after_base_ms = 5;
  options.transport = &sim;
  {
    AtrServer server(options);
    if (!server.Start().ok()) std::abort();
    if (!server.AddGraph("g", SeedGraph()).ok()) std::abort();

    Client clients[kSlots];
    auto client_at = [&](uint8_t arg) -> Client& {
      Client& client = clients[arg % kSlots];
      if (client.conn == nullptr) {
        client.conn = sim.Connect();
        client.parser = FrameParser();
      }
      return client;
    };

    size_t pos = 0;
    size_t ops = 0;
    uint64_t request_id = 1;
    while (pos < size && ops < kMaxOps) {
      const uint8_t op = data[pos++] % 16;
      const uint8_t arg = pos < size ? data[pos++] : 0;
      ++ops;
      switch (op) {
        case 0: {
          PingRequest ping;
          ping.request_id = request_id++;
          client_at(arg).conn->Send(ping.EncodeFrame());
          break;
        }
        case 1: {
          const size_t len = arg % 48;
          std::vector<uint8_t> noise(len);
          for (size_t i = 0; i < len; ++i) {
            noise[i] = pos < size ? data[pos++] : uint8_t(arg + i);
          }
          client_at(arg).conn->Send(noise);
          break;
        }
        case 2: {
          SubmitRequest submit;
          submit.request_id = request_id++;
          submit.graph = arg % 8 == 0 ? "missing" : "g";
          submit.solver = "gas";
          submit.options.budget = 1;
          submit.tenant = arg % 4 == 0 ? "acme" : "";
          client_at(arg).conn->Send(submit.EncodeFrame());
          break;
        }
        case 3: {
          WaitRequest wait;
          wait.request_id = request_id++;
          wait.job_id = 1 + arg % kSlots;
          client_at(arg).conn->Send(wait.EncodeFrame());
          break;
        }
        case 4:
          client_at(arg).conn->Close();
          break;
        case 5:
          client_at(arg).conn->Reset(ECONNRESET);
          break;
        case 6:
          client_at(arg).conn->set_max_read_chunk(1 + arg % 7);
          break;
        case 7:
          client_at(arg).conn->set_max_write_chunk(1 + arg % 7);
          break;
        case 8:
          client_at(arg).conn->set_write_space(arg % 64);
          break;
        case 9: {
          static const int kReadErrs[] = {EINTR, ECONNRESET, ETIMEDOUT};
          client_at(arg).conn->FailNextRead(kReadErrs[arg % 3]);
          break;
        }
        case 10: {
          static const int kWriteErrs[] = {EINTR, EPIPE, ECONNRESET};
          client_at(arg).conn->FailNextWrite(kWriteErrs[arg % 3]);
          break;
        }
        case 11:
          sim.InjectAcceptError(EMFILE);
          clients[arg % kSlots].conn = sim.Connect();
          clients[arg % kSlots].parser = FrameParser();
          break;
        case 12:
          sim.AdvanceTimeMs(int64_t(arg) * 16);
          break;
        case 13:
          Drain(client_at(arg));
          break;
        case 14:
          clients[arg % kSlots].conn = sim.Connect();
          clients[arg % kSlots].parser = FrameParser();
          break;
        case 15: {
          PingRequest ping;
          ping.request_id = request_id++;
          const std::vector<uint8_t> frame = ping.EncodeFrame();
          client_at(arg).conn->Send(frame.data(), arg % frame.size());
          break;
        }
      }
    }

    // Rendezvous with the loop: every byte the program queued must be
    // consumed (or the connection dropped) before the program counts as
    // executed — otherwise Stop() races ahead of the state machine and
    // the ops never reach it. Bounded: a read fault, a poisoned parser,
    // an overflow, or a reap all close the connection, which also
    // satisfies the wait.
    for (Client& client : clients) {
      if (client.conn == nullptr) continue;
      if (!client.conn->WaitForInputDrained(2000)) {
        std::fprintf(stderr, "fuzz_server: server wedged with unread input\n");
        std::abort();
      }
    }
    // Unjam every peer so the shutdown flush terminates fast, drain the
    // bytes so far through the checking parsers, then stop.
    for (Client& client : clients) {
      if (client.conn == nullptr) continue;
      client.conn->set_write_space(SIZE_MAX);
      client.conn->set_max_write_chunk(SIZE_MAX);
      Drain(client);
    }
    if (!server.Stop().ok()) std::abort();
    // The shutdown flush may have pushed more bytes; check those too.
    for (Client& client : clients) {
      if (client.conn != nullptr) Drain(client);
    }
    if (sim.open_connection_fds() != 0) {
      std::fprintf(stderr, "fuzz_server: %d leaked connection fds after Stop\n",
                   sim.open_connection_fds());
      std::abort();
    }
  }
  // The server's destructor must return every remaining descriptor
  // (listener, wake pipe, spare) too.
  if (sim.open_fds() != 0) {
    std::fprintf(stderr, "fuzz_server: %d leaked fds after destruction\n",
                 sim.open_fds());
    std::abort();
  }
  return 0;
}

std::vector<std::vector<uint8_t>> FuzzSeedCorpus() {
  std::vector<std::vector<uint8_t>> corpus;

  // A calm session: four pings on two connections, drained.
  corpus.push_back({14, 0, 14, 1, 0, 0, 0, 1, 0, 0, 0, 1, 13, 0, 13, 1});

  // Torn reads + short writes around a submit/wait pair, time advancing.
  corpus.push_back({14, 0, 6,  0, 7,  0, 8,  9, 2, 1, 3, 1,
                    12, 4, 13, 0, 12, 8, 13, 0, 4, 0});

  // Fault storm: EMFILE accept, resets, one-shot errno faults, noise.
  corpus.push_back({11, 0, 14, 1, 9,  1, 0,  1, 10, 4, 0, 1,
                    1,  9, 5,  2, 15, 3, 12, 16, 13, 1});

  // Slow consumer: no write space, pings pile into the output buffer.
  corpus.push_back({14, 2, 8, 0, 0, 2, 0, 2, 0, 2, 0, 2, 12, 4, 13, 2});

  return corpus;
}
