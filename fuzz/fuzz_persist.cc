// Fuzz harness for the on-disk readers: snapshot files
// (persist/snapshot.h), delta-log images (persist/delta_log.h), and the
// underlying Graph / TrussDecomposition deserializers. Pass criterion:
// truncated files, oversize length fields, and corrupt checksums come
// back as Status errors (or cleanly dropped log tails) — never a crash,
// never a sanitizer report, never an unbounded allocation.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "persist/delta_log.h"
#include "persist/snapshot.h"
#include "truss/decomposition.h"
#include "util/binary_io.h"

#include "fuzz/standalone_driver.h"

using namespace atr;
using namespace atr::persist;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> bytes(data, size);

  // Snapshot reader: full-file validation (magic, format, CRC, payload).
  // Results are dropped on purpose throughout: the harness only checks that
  // hostile bytes cannot crash a reader.
  (void)DecodeSnapshot(bytes);

  // Delta-log reader: must never fail, only drop a tail.
  const DeltaLogContents log = DecodeDeltaLog(bytes);
  (void)log;

  // The component deserializers, driven directly (a snapshot whose CRC
  // happens to match still has to survive a hostile payload).
  {
    ByteReader reader(data, size);
    (void)Graph::DeserializeFrom(reader);
  }
  {
    ByteReader reader(data, size);
    (void)DeserializeTrussDecomposition(reader, /*num_edges=*/8);
  }
  return 0;
}

std::vector<std::vector<uint8_t>> FuzzSeedCorpus() {
  std::vector<std::vector<uint8_t>> corpus;

  // A real snapshot of a small graph with a computed decomposition.
  GraphBuilder builder;
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) {
      if ((u + v) % 4 != 0) builder.AddEdge(u, v);
    }
  }
  const Graph graph = builder.Build();
  const TrussDecomposition decomposition = ComputeTrussDecomposition(graph);
  corpus.push_back(EncodeSnapshot("fuzzgraph", 3, graph, decomposition));

  // A clean two-record delta log.
  GraphDelta first;
  first.add = {{0, 4}, {2, 5}};
  GraphDelta second;
  second.remove = {{1, 2}};
  std::vector<uint8_t> log = EncodeDeltaRecord(4, first);
  const std::vector<uint8_t> tail = EncodeDeltaRecord(5, second);
  log.insert(log.end(), tail.begin(), tail.end());
  corpus.push_back(std::move(log));

  // A log with a torn tail: a full record plus half of another.
  std::vector<uint8_t> torn = EncodeDeltaRecord(4, first);
  const std::vector<uint8_t> half = EncodeDeltaRecord(5, second);
  torn.insert(torn.end(), half.begin(), half.begin() + half.size() / 2);
  corpus.push_back(std::move(torn));

  // Bare serialized graph + decomposition (component decoders).
  {
    ByteWriter writer;
    graph.SerializeTo(writer);
    corpus.push_back(writer.TakeBuffer());
  }
  {
    ByteWriter writer;
    SerializeTrussDecomposition(decomposition, writer);
    corpus.push_back(writer.TakeBuffer());
  }

  return corpus;
}
