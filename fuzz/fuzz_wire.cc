// Fuzz harness for the wire-frame parser and every payload decoder
// (net/wire.h). Pass criterion: no crash, no sanitizer report — hostile
// bytes must come back as Status errors or parse failures.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/wire.h"

#include "fuzz/standalone_driver.h"

using namespace atr::net;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // The stream path: feed the bytes in two chunks (exercises incremental
  // reassembly), pop frames, run each through its type's decoder.
  FrameParser parser;
  const size_t split = size / 2;
  parser.Feed(data, split);
  parser.Feed(data + split, size - split);
  while (std::optional<Frame> frame = parser.Next()) {
    const std::span<const uint8_t> payload(frame->payload);
    // Results are dropped on purpose: the harness only checks that hostile
    // payloads cannot crash a decoder, not what they decode to.
    switch (frame->type) {
      case MsgType::kPing: (void)PingRequest::Decode(payload); break;
      case MsgType::kListGraphs: (void)ListGraphsRequest::Decode(payload); break;
      case MsgType::kInfo: (void)InfoRequest::Decode(payload); break;
      case MsgType::kSubmit: (void)SubmitRequest::Decode(payload); break;
      case MsgType::kWait: (void)WaitRequest::Decode(payload); break;
      case MsgType::kCancel: (void)CancelRequest::Decode(payload); break;
      case MsgType::kUpdateGraph: (void)UpdateGraphRequest::Decode(payload); break;
      case MsgType::kCompact: (void)CompactRequest::Decode(payload); break;
      case MsgType::kShutdown: (void)ShutdownRequest::Decode(payload); break;
      case MsgType::kPingResponse: (void)PingResponse::Decode(payload); break;
      case MsgType::kListGraphsResponse:
        (void)ListGraphsResponse::Decode(payload);
        break;
      case MsgType::kInfoResponse: (void)InfoResponse::Decode(payload); break;
      case MsgType::kSubmitResponse: (void)SubmitResponse::Decode(payload); break;
      case MsgType::kWaitResponse: (void)WaitResponse::Decode(payload); break;
      case MsgType::kCancelResponse: (void)CancelResponse::Decode(payload); break;
      case MsgType::kUpdateGraphResponse:
        (void)UpdateGraphResponse::Decode(payload);
        break;
      case MsgType::kCompactResponse: (void)CompactResponse::Decode(payload); break;
      case MsgType::kShutdownResponse:
        (void)ShutdownResponse::Decode(payload);
        break;
      case MsgType::kError: (void)ErrorResponse::Decode(payload); break;
      default: break;
    }
  }

  // The raw-payload path: the whole input as a payload for the decoders
  // whose frames the stream path may never assemble.
  const std::span<const uint8_t> raw(data, size);
  (void)SubmitRequest::Decode(raw);
  (void)WaitResponse::Decode(raw);
  (void)InfoResponse::Decode(raw);
  (void)ListGraphsResponse::Decode(raw);
  (void)UpdateGraphRequest::Decode(raw);
  (void)ErrorResponse::Decode(raw);
  return 0;
}

std::vector<std::vector<uint8_t>> FuzzSeedCorpus() {
  std::vector<std::vector<uint8_t>> corpus;

  PingRequest ping;
  ping.request_id = 7;
  corpus.push_back(ping.EncodeFrame());

  SubmitRequest submit;
  submit.request_id = 11;
  submit.graph = "social";
  submit.solver = "gas";
  submit.options.budget = 5;
  submit.options.budget_checkpoints = {1, 3, 5};
  corpus.push_back(submit.EncodeFrame());

  WaitResponse wait;
  wait.request_id = 12;
  wait.job_id = 4;
  wait.result.solver = "gas";
  wait.result.anchor_edges = {1, 2, 3};
  wait.result.total_gain = 42;
  wait.result.gain_at_checkpoint = {10, 30, 42};
  wait.result.seconds = 0.25;
  corpus.push_back(wait.EncodeFrame());

  UpdateGraphRequest update;
  update.request_id = 13;
  update.graph = "social";
  update.delta.add = {{1, 2}, {3, 4}};
  update.delta.remove = {{0, 5}};
  corpus.push_back(update.EncodeFrame());

  ErrorResponse error;
  error.request_id = 14;
  error.code = atr::StatusCode::kResourceExhausted;
  error.message = "queue full";
  error.retry_after_ms = 150;
  corpus.push_back(error.EncodeFrame());

  ListGraphsResponse list;
  list.request_id = 15;
  list.names = {"a", "bb", "ccc"};
  corpus.push_back(list.EncodeFrame());

  // Two frames back to back (stream reassembly across a split point).
  std::vector<uint8_t> pair = ping.EncodeFrame();
  const std::vector<uint8_t> second = submit.EncodeFrame();
  pair.insert(pair.end(), second.begin(), second.end());
  corpus.push_back(std::move(pair));

  return corpus;
}
