// Standalone driver for the fuzz harnesses when libFuzzer is not
// available (this container ships gcc only; -fsanitize=fuzzer is a clang
// feature). Each harness defines the standard entry point
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//
// plus FuzzSeedCorpus() returning valid encodings to mutate. Built with
// clang and -DATR_FUZZ=ON the harness links against real libFuzzer and
// this header contributes nothing; built plain (the default, and what CI
// runs as a smoke test) this main() replays the seed corpus and a
// deterministic storm of byte-level mutations of it — no crash and no
// sanitizer report is the pass criterion.
//
//   ./fuzz_wire                 # seeded mutation smoke run
//   ./fuzz_wire file1 file2     # replay specific inputs (crash repro)
//   ATR_FUZZ_ITERS=100000 ./fuzz_wire
//   ATR_FUZZ_CORPUS=fuzz/corpus/wire ./fuzz_wire    # extra on-disk seeds
//   ./fuzz_wire --dump-corpus fuzz/corpus/wire      # write built-in seeds
//
// The on-disk corpus under fuzz/corpus/<harness>/ is shared with real
// libFuzzer runs (-DATR_FUZZ=ON builds take corpus directories as
// positional arguments: `./fuzz_wire fuzz/corpus/wire`). The standalone
// driver merges it with the built-in FuzzSeedCorpus() when
// ATR_FUZZ_CORPUS names a directory; the ctest smoke registrations do.
//
// The mutation engine is intentionally simple (bit flips, byte writes,
// truncations, duplications of seed inputs) — the decoders' attack
// surface is length/count fields and checksums, which byte-level noise
// reaches fine.

#ifndef ATR_FUZZ_STANDALONE_DRIVER_H_
#define ATR_FUZZ_STANDALONE_DRIVER_H_

#include <cstdint>
#include <cstdio>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

// Defined by each harness: well-formed encodings for the mutation engine
// to start from.
std::vector<std::vector<uint8_t>> FuzzSeedCorpus();

#ifndef ATR_FUZZ_WITH_LIBFUZZER

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include <dirent.h>

namespace atr_fuzz {

inline bool ReadFileBytes(const std::string& path,
                          std::vector<uint8_t>* bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  bytes->clear();
  uint8_t chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes->insert(bytes->end(), chunk, chunk + n);
  }
  std::fclose(f);
  return true;
}

// Regular files in `dir`, sorted by name for determinism; missing or
// empty directories contribute nothing (the built-in seeds still run).
inline std::vector<std::vector<uint8_t>> LoadCorpusDir(
    const std::string& dir) {
  std::vector<std::string> names;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == ".." || name == "README.md") continue;
      names.push_back(name);
    }
    ::closedir(d);
  }
  std::sort(names.begin(), names.end());
  std::vector<std::vector<uint8_t>> corpus;
  for (const std::string& name : names) {
    std::vector<uint8_t> bytes;
    if (ReadFileBytes(dir + "/" + name, &bytes)) {
      corpus.push_back(std::move(bytes));
    }
  }
  return corpus;
}

// xorshift64* — deterministic, seedable, no <random> needed.
inline uint64_t NextRand(uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dULL;
}

inline void MutateAndRun(const std::vector<std::vector<uint8_t>>& corpus,
                         uint64_t iterations, uint64_t seed) {
  uint64_t rng = seed;
  for (uint64_t iter = 0; iter < iterations; ++iter) {
    std::vector<uint8_t> input;
    if (corpus.empty() || NextRand(rng) % 8 == 0) {
      // Pure noise input.
      input.resize(NextRand(rng) % 512);
      for (uint8_t& b : input) b = uint8_t(NextRand(rng));
    } else {
      input = corpus[NextRand(rng) % corpus.size()];
      const uint64_t mutations = 1 + NextRand(rng) % 8;
      for (uint64_t m = 0; m < mutations && !input.empty(); ++m) {
        switch (NextRand(rng) % 4) {
          case 0:  // flip one bit
            input[NextRand(rng) % input.size()] ^=
                uint8_t(1u << (NextRand(rng) % 8));
            break;
          case 1:  // overwrite one byte
            input[NextRand(rng) % input.size()] = uint8_t(NextRand(rng));
            break;
          case 2:  // truncate
            input.resize(NextRand(rng) % (input.size() + 1));
            break;
          case 3: {  // duplicate a slice onto the end
            const size_t from = NextRand(rng) % input.size();
            const size_t len =
                NextRand(rng) % (input.size() - from) % 64;
            input.insert(input.end(), input.begin() + from,
                         input.begin() + from + len);
            break;
          }
        }
      }
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
}

}  // namespace atr_fuzz

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--dump-corpus") == 0) {
    // Regenerate the checked-in seed files from the built-in corpus.
    const std::vector<std::vector<uint8_t>> corpus = FuzzSeedCorpus();
    for (size_t i = 0; i < corpus.size(); ++i) {
      char path[512];
      std::snprintf(path, sizeof(path), "%s/seed-%02zu.bin", argv[2], i);
      std::FILE* f = std::fopen(path, "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
      }
      std::fwrite(corpus[i].data(), 1, corpus[i].size(), f);
      std::fclose(f);
    }
    std::printf("wrote %zu seed(s) to %s\n", corpus.size(), argv[2]);
    return 0;
  }
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::FILE* f = std::fopen(argv[i], "rb");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::vector<uint8_t> bytes;
      uint8_t chunk[4096];
      size_t n;
      while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
        bytes.insert(bytes.end(), chunk, chunk + n);
      }
      std::fclose(f);
      LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
      std::printf("replayed %s (%zu bytes)\n", argv[i], bytes.size());
    }
    return 0;
  }

  uint64_t iterations = 2000;
  if (const char* env = std::getenv("ATR_FUZZ_ITERS")) {
    iterations = std::strtoull(env, nullptr, 10);
  }
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  if (const char* env = std::getenv("ATR_FUZZ_SEED")) {
    seed = std::strtoull(env, nullptr, 10) | 1;
  }

  std::vector<std::vector<uint8_t>> corpus = FuzzSeedCorpus();
  if (const char* dir = std::getenv("ATR_FUZZ_CORPUS")) {
    std::vector<std::vector<uint8_t>> extra = atr_fuzz::LoadCorpusDir(dir);
    for (std::vector<uint8_t>& input : extra) {
      corpus.push_back(std::move(input));
    }
  }
  for (const std::vector<uint8_t>& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  atr_fuzz::MutateAndRun(corpus, iterations, seed);
  std::printf("ok: %zu seed inputs + %llu mutations, no crash\n",
              corpus.size(), static_cast<unsigned long long>(iterations));
  return 0;
}

#endif  // ATR_FUZZ_WITH_LIBFUZZER

#endif  // ATR_FUZZ_STANDALONE_DRIVER_H_
