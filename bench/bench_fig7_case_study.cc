// Exp-4 (Fig. 7): case study comparing GAS, AKT (best k), and the
// edge-deletion selection with b = 3 anchors on a gowalla-like graph,
// reporting how many edges improve and at which trussness levels. GAS and
// the AKT sweep over k run through one AtrEngine, sharing the base
// decomposition.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "core/akt.h"
#include "core/edge_deletion.h"
#include "truss/decomposition.h"
#include "truss/gain.h"
#include "util/table_printer.h"

namespace atr {
namespace {

// Count of improved edges per (pre-anchor) trussness level.
std::map<uint32_t, uint32_t> ImprovedByLevel(const Graph& g,
                                             const TrussDecomposition& base,
                                             const std::vector<EdgeId>& set) {
  std::vector<bool> anchored(g.NumEdges(), false);
  for (EdgeId e : set) anchored[e] = true;
  const TrussDecomposition after = ComputeTrussDecomposition(g, anchored);
  std::map<uint32_t, uint32_t> by_level;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (anchored[e]) continue;
    if (after.trussness[e] > base.trussness[e]) ++by_level[base.trussness[e]];
  }
  return by_level;
}

std::string LevelsToString(const std::map<uint32_t, uint32_t>& by_level) {
  std::string out;
  uint32_t total = 0;
  for (const auto& [level, count] : by_level) {
    out += "t" + std::to_string(level) + ":" + std::to_string(count) + " ";
    total += count;
  }
  if (out.empty()) out = "(none) ";
  out += "| total " + std::to_string(total);
  return out;
}

void Run() {
  PrintBenchHeader("bench_fig7_case_study", "Fig. 7 (Exp-4)");
  // Small case-study instance: the edge-deletion baseline needs one
  // decomposition per candidate edge.
  const double scale = std::min(0.18, BenchScale() * 0.9);
  const DatasetInstance data = MakeDataset("gowalla", scale);
  AtrEngine engine = MakeEngine(data);
  const Graph& g = engine.graph();
  const TrussDecomposition& base = engine.Decomposition();
  std::printf("case study on gowalla stand-in: |V|=%u |E|=%u, b=3\n\n",
              g.NumVertices(), g.NumEdges());

  SolverOptions options;
  options.budget = 3;
  const SolveResult gas = RunOrDie(engine, "gas", options);

  uint64_t best_akt_gain = 0;
  uint32_t best_k = 0;
  std::vector<VertexId> best_akt_anchors;
  for (uint32_t k = 4; k <= engine.MaxTrussness() + 1; ++k) {
    const SolveResult akt =
        RunOrDie(engine, "akt:" + std::to_string(k), options);
    if (akt.total_gain > best_akt_gain) {
      best_akt_gain = akt.total_gain;
      best_k = k;
      best_akt_anchors = akt.anchor_vertices;
    }
  }

  const EdgeDeletionResult deletion = RunEdgeDeletionBaseline(g, 3);

  TablePrinter table({"Method", "Anchors", "Improved edges by level"});
  table.AddRow({"GAS (edges)", TablePrinter::FormatInt(3),
                LevelsToString(ImprovedByLevel(g, base, gas.anchor_edges))});
  std::map<uint32_t, uint32_t> akt_levels;
  if (best_k > 0) {
    for (EdgeId e : AktFollowers(g, base, best_k, best_akt_anchors)) {
      ++akt_levels[base.trussness[e]];
    }
  }
  table.AddRow({"AKT (vertices, best k=" + std::to_string(best_k) + ")",
                TablePrinter::FormatInt(3), LevelsToString(akt_levels)});
  table.AddRow({"Edge-deletion", TablePrinter::FormatInt(3),
                LevelsToString(ImprovedByLevel(g, base, deletion.anchors))});
  table.Print();
  std::printf(
      "\nexpected shape (paper Fig. 7: 1714 vs 413 vs 46 improved edges): "
      "GAS improves the most edges across multiple levels; AKT only lifts "
      "level k-1; deletion-critical anchors improve the fewest.\n");
}

}  // namespace
}  // namespace atr

int main() {
  atr::Run();
  return 0;
}
