// Connection-churn soak for the ATR server: several driver threads
// hammer a live AtrServer through a SimTransport — connect/disconnect
// churn, pipelined requests, torn reads, short writes, resets, wire
// graph updates, and in-process submits racing the network thread — with
// the virtual clock in auto-advance mode so idle reaping and
// retry-after paths fire "naturally" under load. The nightly CI leg runs
// this under TSan (the cross-thread surface: network loop vs worker
// pool vs driver threads) and a short run is registered as a ctest
// smoke with the `soak` label.
//
// Knobs (environment, like every bench):
//   ATR_SOAK_THREADS   driver threads            (default 4)
//   ATR_SOAK_OPS       operations per thread     (default 300)
//   ATR_SOAK_SEED      PRNG seed                 (default 1)
//
// Exit status is nonzero when an invariant breaks: a malformed frame
// from the server, a wedged driver, or a leaked connection descriptor
// after shutdown.

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "api/service.h"
#include "graph/graph.h"
#include "net/server.h"
#include "net/sim_transport.h"
#include "net/wire.h"
#include "util/env.h"
#include "util/prng.h"

using namespace atr;
using namespace atr::net;

namespace {

Graph SeedGraph() {
  GraphBuilder builder;
  for (VertexId u = 0; u < 12; ++u) {
    for (VertexId v = u + 1; v < 12; ++v) {
      if ((u * 3 + v) % 5 != 0) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

struct Totals {
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> reconnects{0};
  std::atomic<uint64_t> errors{0};  // structured kError responses (expected)
  std::atomic<bool> failed{false};
};

class Driver {
 public:
  Driver(SimTransport& sim, AtrServer& server, Totals& totals, uint64_t seed)
      : sim_(sim), server_(server), totals_(totals), rng_(seed) {}

  void Run(int64_t ops) {
    for (int64_t i = 0; i < ops && !totals_.failed.load(); ++i) {
      totals_.ops.fetch_add(1, std::memory_order_relaxed);
      Step();
    }
  }

 private:
  uint64_t Rand() { return SplitMix64(rng_); }

  void Reconnect() {
    conn_ = sim_.Connect();
    parser_ = FrameParser();
    totals_.reconnects.fetch_add(1, std::memory_order_relaxed);
  }

  void EnsureConnected() {
    if (conn_ == nullptr || conn_->closed_by_server()) Reconnect();
  }

  // Sends one request frame and pumps its response. A false return means
  // the connection died under us (reap, reset, overflow) — that is churn,
  // not failure; the next op reconnects.
  bool RoundTrip(const std::vector<uint8_t>& frame) {
    conn_->Send(frame);
    std::vector<Frame> frames;
    if (!PumpFrames(*conn_, parser_, 1, &frames, 2000)) return false;
    if (!parser_.ok()) {
      std::fprintf(stderr, "soak_churn: malformed frame from server: %s\n",
                   parser_.status().message().c_str());
      totals_.failed.store(true);
      return false;
    }
    totals_.responses.fetch_add(1, std::memory_order_relaxed);
    if (frames.back().type == MsgType::kError) {
      totals_.errors.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  void Step() {
    EnsureConnected();
    const uint64_t pick = Rand() % 100;
    if (pick < 40) {
      PingRequest ping;
      ping.request_id = next_id_++;
      RoundTrip(ping.EncodeFrame());
    } else if (pick < 58) {
      SubmitRequest submit;
      submit.request_id = next_id_++;
      submit.graph = "g";
      submit.solver = "gas";
      submit.options.budget = 1;
      submit.tenant = Rand() % 3 == 0 ? "acme" : "";
      conn_->Send(submit.EncodeFrame());
      std::vector<Frame> frames;
      if (!PumpFrames(*conn_, parser_, 1, &frames, 2000)) return;
      totals_.responses.fetch_add(1, std::memory_order_relaxed);
      if (frames.back().type != MsgType::kSubmitResponse) {
        totals_.errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      StatusOr<SubmitResponse> submitted =
          SubmitResponse::Decode(frames.back().payload);
      if (!submitted.ok()) {
        std::fprintf(stderr, "soak_churn: undecodable SubmitResponse\n");
        totals_.failed.store(true);
        return;
      }
      if (Rand() % 2 == 0) {
        WaitRequest wait;
        wait.request_id = next_id_++;
        wait.job_id = submitted->job_id;
        RoundTrip(wait.EncodeFrame());
      } else {
        CancelRequest cancel;
        cancel.request_id = next_id_++;
        cancel.job_id = submitted->job_id;
        RoundTrip(cancel.EncodeFrame());
      }
    } else if (pick < 66) {
      ListGraphsRequest list;
      list.request_id = next_id_++;
      RoundTrip(list.EncodeFrame());
    } else if (pick < 73) {
      // Wire graph update: incremental truss maintenance runs inline on
      // the network thread while other drivers read the same graph.
      UpdateGraphRequest update;
      update.request_id = next_id_++;
      update.graph = "g";
      const VertexId u = VertexId(Rand() % 12);
      const VertexId v = VertexId(Rand() % 12);
      if (u != v) {
        if (Rand() % 2 == 0) {
          update.delta.add.push_back({u, v});
        } else {
          update.delta.remove.push_back({u, v});
        }
      }
      RoundTrip(update.EncodeFrame());
    } else if (pick < 78) {
      conn_->set_max_read_chunk(1 + Rand() % 5);
      conn_->set_max_write_chunk(1 + Rand() % 5);
    } else if (pick < 82) {
      // Auto-advance only jumps the clock when the loop goes fully idle,
      // which a busy soak rarely is — explicit jumps make sure the idle
      // reaper actually runs against everyone else's parked connections.
      sim_.AdvanceTimeMs(int64_t(Rand() % 40));
    } else if (pick < 86) {
      conn_->Close();
      Reconnect();
    } else if (pick < 90) {
      conn_->Reset(ECONNRESET);
    } else if (pick < 96) {
      // In-process traffic racing the wire path through the same service.
      SolverOptions options;
      options.budget = 1;
      if (StatusOr<JobHandle> job =
              server_.service().Submit("g", "gas", options);
          job.ok()) {
        if (Rand() % 2 == 0) job->Cancel();
        (void)job->Wait();  // churn only needs completion; result discarded
      }
    } else {
      const std::vector<uint8_t> bytes = conn_->TakeOutput();
      if (!bytes.empty()) parser_.Feed(bytes.data(), bytes.size());
      while (parser_.Next()) {
      }
    }
  }

  SimTransport& sim_;
  AtrServer& server_;
  Totals& totals_;
  uint64_t rng_;
  uint64_t next_id_ = 1;
  std::shared_ptr<SimTransport::Connection> conn_;
  FrameParser parser_;
};

}  // namespace

int main() {
  const int64_t threads = GetEnvInt64("ATR_SOAK_THREADS", 4);
  const int64_t ops = GetEnvInt64("ATR_SOAK_OPS", 300);
  const uint64_t seed =
      static_cast<uint64_t>(GetEnvInt64("ATR_SOAK_SEED", 1));
  std::printf("soak_churn: threads=%lld ops=%lld seed=%llu\n",
              static_cast<long long>(threads), static_cast<long long>(ops),
              static_cast<unsigned long long>(seed));

  SimTransport sim;
  sim.set_auto_advance(true);  // idle loop jumps the clock: reaps fire
  Totals totals;
  {
    AtrServer::Options options;
    options.workers = 2;
    options.shards = 2;
    options.queue_capacity = 8;
    options.idle_timeout_ms = 50;
    options.retry_after_base_ms = 5;
    options.transport = &sim;
    AtrServer server(options);
    if (!server.Start().ok() || !server.AddGraph("g", SeedGraph()).ok()) {
      std::fprintf(stderr, "soak_churn: server failed to start\n");
      return 1;
    }

    std::vector<std::thread> drivers;
    for (int64_t t = 0; t < threads; ++t) {
      drivers.emplace_back([&, t] {
        uint64_t thread_seed = seed ^ (0x9e3779b97f4a7c15ULL * (t + 1));
        Driver driver(sim, server, totals, SplitMix64(thread_seed));
        driver.Run(ops);
      });
    }
    for (std::thread& t : drivers) t.join();

    if (!server.Stop().ok()) {
      std::fprintf(stderr, "soak_churn: Stop failed\n");
      return 1;
    }
    if (sim.open_connection_fds() != 0) {
      std::fprintf(stderr, "soak_churn: %d leaked connection fds after Stop\n",
                   sim.open_connection_fds());
      return 1;
    }
    std::printf(
        "soak_churn: ops=%llu responses=%llu structured_errors=%llu "
        "reconnects=%llu accepts=%llu idle_reaps=%llu slow_consumer=%llu "
        "accept_sheds=%llu virtual_ms=%lld\n",
        static_cast<unsigned long long>(totals.ops.load()),
        static_cast<unsigned long long>(totals.responses.load()),
        static_cast<unsigned long long>(totals.errors.load()),
        static_cast<unsigned long long>(totals.reconnects.load()),
        static_cast<unsigned long long>(sim.accepts()),
        static_cast<unsigned long long>(server.idle_disconnects()),
        static_cast<unsigned long long>(server.slow_consumer_disconnects()),
        static_cast<unsigned long long>(server.accept_sheds()),
        static_cast<long long>(sim.now_ms()));
  }
  if (totals.failed.load()) {
    std::fprintf(stderr, "soak_churn: invariant violated\n");
    return 1;
  }
  if (sim.open_fds() != 0) {
    std::fprintf(stderr, "soak_churn: %d leaked fds after destruction\n",
                 sim.open_fds());
    return 1;
  }
  std::printf("soak_churn: ok\n");
  return 0;
}
