// Exp-3 (Fig. 6): trussness gain of GAS vs Rand/Sup/Tur as the budget b
// sweeps 20%..100% of the default budget, on facebook and brightkite.
// One GAS run serves every checkpoint (prefix gains of the greedy).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/gas.h"
#include "core/random_baselines.h"
#include "util/table_printer.h"

namespace atr {
namespace {

void RunDataset(const char* name) {
  const DatasetInstance data = MakeDataset(name, BenchScale());
  const uint32_t b = BenchBudget();
  const uint32_t trials = BenchTrials();
  std::vector<uint32_t> checkpoints;
  for (int i = 1; i <= 5; ++i) {
    checkpoints.push_back(std::max<uint32_t>(1, b * i / 5));
  }

  const AnchorResult gas = RunGas(data.graph, b);
  const RandomBaselineResult rand = RunRandomBaseline(
      data.graph, RandomPoolKind::kAllEdges, checkpoints, trials, 11);
  const RandomBaselineResult sup = RunRandomBaseline(
      data.graph, RandomPoolKind::kTopSupport, checkpoints, trials, 12);
  const RandomBaselineResult tur = RunRandomBaseline(
      data.graph, RandomPoolKind::kTopRouteSize, checkpoints, trials, 13);

  std::printf("dataset %s (|E|=%u)\n", name, data.graph.NumEdges());
  TablePrinter table({"b", "GAS", "Rand", "Sup", "Tur"});
  for (size_t c = 0; c < checkpoints.size(); ++c) {
    uint64_t gas_gain = 0;
    for (uint32_t r = 0; r < checkpoints[c] && r < gas.rounds.size(); ++r) {
      gas_gain += gas.rounds[r].gain;
    }
    table.AddRow({TablePrinter::FormatInt(checkpoints[c]),
                  TablePrinter::FormatInt(gas_gain),
                  TablePrinter::FormatInt(rand.gain_at_checkpoint[c]),
                  TablePrinter::FormatInt(sup.gain_at_checkpoint[c]),
                  TablePrinter::FormatInt(tur.gain_at_checkpoint[c])});
  }
  table.Print();
}

}  // namespace
}  // namespace atr

int main() {
  atr::PrintBenchHeader("bench_fig6_effectiveness_vary_b", "Fig. 6 (Exp-3)");
  atr::RunDataset("facebook");
  atr::RunDataset("brightkite");
  std::printf(
      "\nexpected shape (paper): GAS dominates at every budget; Tur is the "
      "best random baseline, Sup the worst (high-support edges only help "
      "already-strong levels).\n");
  return 0;
}
