// Exp-3 (Fig. 6): trussness gain of GAS vs Rand/Sup/Tur as the budget b
// sweeps 20%..100% of the default budget, on facebook and brightkite.
// One RunSweep per solver serves every checkpoint (prefix gains of the
// greedy, best-draw prefixes of the randomized baselines).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "util/table_printer.h"

namespace atr {
namespace {

void RunDataset(const char* name) {
  const DatasetInstance data = MakeDataset(name, BenchScale());
  AtrEngine engine = MakeEngine(data);
  // One checkpoint list shared by all four solvers, so the rows stay
  // comparable; the Sup/Tur pool is the tightest budget ceiling.
  const uint32_t b =
      ClampBudget(BenchBudget(), BaselinePoolCap(engine.graph()));
  const std::vector<uint32_t> checkpoints = BudgetCheckpoints(b);

  SolverOptions random_options;
  random_options.trials = BenchTrials();

  const SolveResult gas = SweepOrDie(engine, "gas", checkpoints);
  random_options.seed = 11;
  const SolveResult rand =
      SweepOrDie(engine, "rand", checkpoints, random_options);
  random_options.seed = 12;
  const SolveResult sup =
      SweepOrDie(engine, "sup", checkpoints, random_options);
  random_options.seed = 13;
  const SolveResult tur =
      SweepOrDie(engine, "tur", checkpoints, random_options);

  std::printf("dataset %s (|E|=%u)\n", name, engine.graph().NumEdges());
  TablePrinter table({"b", "GAS", "Rand", "Sup", "Tur"});
  for (size_t c = 0; c < checkpoints.size(); ++c) {
    table.AddRow({TablePrinter::FormatInt(checkpoints[c]),
                  TablePrinter::FormatInt(gas.gain_at_checkpoint[c]),
                  TablePrinter::FormatInt(rand.gain_at_checkpoint[c]),
                  TablePrinter::FormatInt(sup.gain_at_checkpoint[c]),
                  TablePrinter::FormatInt(tur.gain_at_checkpoint[c])});
  }
  table.Print();
}

}  // namespace
}  // namespace atr

int main() {
  atr::PrintBenchHeader("bench_fig6_effectiveness_vary_b", "Fig. 6 (Exp-3)");
  atr::RunDataset("facebook");
  atr::RunDataset("brightkite");
  std::printf(
      "\nexpected shape (paper): GAS dominates at every budget; Tur is the "
      "best random baseline, Sup the worst (high-support edges only help "
      "already-strong levels).\n");
  return 0;
}
