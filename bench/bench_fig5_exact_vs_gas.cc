// Exp-2 (Fig. 5): GAS vs Exact on small ego-ball extracts (150-250 edges,
// the extraction method of Linghu et al. the paper follows), budgets 1-3.
// Reports average gain ratio and average runtimes per budget. One AtrEngine
// per extract serves every budget of both solvers.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "graph/subgraph.h"
#include "util/table_printer.h"

namespace atr {
namespace {

void RunDataset(const char* name, int num_extracts) {
  const DatasetInstance data = MakeDataset(name, BenchScale());
  // Extract around the highest-degree vertices: the paper's extracts come
  // from the dense regions of the SNAP graphs, where single anchors already
  // gain (sparse fringes are dominated by pairwise synergies, which no
  // greedy can see).
  std::vector<VertexId> seeds_by_degree(data.graph.NumVertices());
  for (VertexId v = 0; v < data.graph.NumVertices(); ++v) {
    seeds_by_degree[v] = v;
  }
  std::sort(seeds_by_degree.begin(), seeds_by_degree.end(),
            [&](VertexId a, VertexId b) {
              return data.graph.Degree(a) != data.graph.Degree(b)
                         ? data.graph.Degree(a) > data.graph.Degree(b)
                         : a < b;
            });
  // One engine per extract, shared across every budget below.
  std::vector<std::unique_ptr<AtrEngine>> engines;
  for (int i = 0; i < num_extracts; ++i) {
    Graph extract = ExtractEgoBall(data.graph, seeds_by_degree[i], 150, 250);
    if (extract.NumEdges() < 20) continue;
    engines.push_back(std::make_unique<AtrEngine>(std::move(extract)));
  }
  std::printf("dataset %s (extracts of 150-250 edges, %d hub seeds)\n", name,
              num_extracts);
  TablePrinter table({"b", "Exact gain", "GAS gain", "GAS/Exact", "Exact(s)",
                      "GAS(s)", "subsets"});
  for (uint32_t b = 1; b <= 3; ++b) {
    double exact_gain = 0;
    double gas_gain = 0;
    double exact_seconds = 0;
    double gas_seconds = 0;
    uint64_t subsets = 0;
    for (const std::unique_ptr<AtrEngine>& engine : engines) {
      SolverOptions options;
      options.budget = b;
      const SolveResult exact = RunOrDie(*engine, "exact", options);
      const SolveResult gas = RunOrDie(*engine, "gas", options);
      exact_gain += static_cast<double>(exact.total_gain);
      gas_gain += static_cast<double>(gas.total_gain);
      exact_seconds += exact.seconds;
      gas_seconds += gas.seconds;
      subsets += exact.subsets_evaluated;
    }
    const double ratio = exact_gain > 0 ? gas_gain / exact_gain : 1.0;
    table.AddRow({TablePrinter::FormatInt(b),
                  TablePrinter::FormatDouble(exact_gain / num_extracts, 1),
                  TablePrinter::FormatDouble(gas_gain / num_extracts, 1),
                  TablePrinter::FormatDouble(ratio, 2),
                  TablePrinter::FormatSeconds(exact_seconds / num_extracts),
                  TablePrinter::FormatSeconds(gas_seconds / num_extracts),
                  TablePrinter::FormatInt(subsets)});
  }
  table.Print();
}

}  // namespace
}  // namespace atr

int main() {
  atr::PrintBenchHeader("bench_fig5_exact_vs_gas", "Fig. 5 (Exp-2)");
  atr::RunDataset("facebook", 3);
  atr::RunDataset("brightkite", 3);
  std::printf(
      "\nexpected shape (paper): GAS/Exact >= ~0.9 for b <= 3 while Exact "
      "runtime grows by orders of magnitude per +1 budget.\n");
  return 0;
}
