// Exp-8 (Fig. 10): reuse test — the fraction of candidate edges whose
// follower results are fully reusable (FR), partially reusable (PR), or
// non-reusable (NR) after the first greedy round, on facebook and gowalla.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/table_printer.h"

namespace atr {
namespace {

void Run() {
  PrintBenchHeader("bench_fig10_reuse", "Fig. 10 (Exp-8)");
  const uint32_t b = std::max<uint32_t>(4, BenchBudget() / 5);
  SolverOptions options;
  for (const char* name : {"facebook", "gowalla"}) {
    const DatasetInstance data = MakeDataset(name, BenchScale());
    AtrEngine engine = MakeEngine(data);
    options.budget = ClampBudget(b, engine.graph().NumEdges());
    const SolveResult gas = RunOrDie(engine, "gas", options);
    std::printf("dataset %s (|E|=%u, %u rounds)\n", name,
                engine.graph().NumEdges(), b);
    TablePrinter table({"Round", "FR", "PR", "NR"});
    double fr_sum = 0;
    double pr_sum = 0;
    double nr_sum = 0;
    for (size_t r = 1; r < gas.rounds.size(); ++r) {  // round 1 is all-NR
      const AnchorRound& round = gas.rounds[r];
      const double total =
          round.fully_reusable + round.partially_reusable + round.non_reusable;
      const double fr = round.fully_reusable / total;
      const double pr = round.partially_reusable / total;
      const double nr = round.non_reusable / total;
      fr_sum += fr;
      pr_sum += pr;
      nr_sum += nr;
      table.AddRow({TablePrinter::FormatInt(static_cast<int64_t>(r + 1)),
                    TablePrinter::FormatPercent(fr),
                    TablePrinter::FormatPercent(pr),
                    TablePrinter::FormatPercent(nr)});
    }
    const double rounds = static_cast<double>(gas.rounds.size() - 1);
    table.AddRow({"avg", TablePrinter::FormatPercent(fr_sum / rounds),
                  TablePrinter::FormatPercent(pr_sum / rounds),
                  TablePrinter::FormatPercent(nr_sum / rounds)});
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper: FR 81.7%% facebook / 83.5%% gowalla): the "
      "large majority of follower results carry over between rounds.\n");
}

}  // namespace
}  // namespace atr

int main() {
  atr::Run();
  return 0;
}
