// Shared helpers for the table/figure reproduction harnesses.
//
// Every harness runs with no CLI arguments (scaling comes from ATR_* env
// vars, see eval/datasets.h) and prints: the experiment id it reproduces,
// the effective configuration, and the paper-style rows.
//
// Harnesses run every solver through the unified API (api/engine.h): one
// AtrEngine per dataset so the truss decomposition is shared across the
// solvers being compared.

#ifndef ATR_BENCH_BENCH_COMMON_H_
#define ATR_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/engine.h"
#include "core/random_baselines.h"
#include "eval/datasets.h"
#include "graph/generators/social_profiles.h"
#include "util/env.h"

namespace atr {

// --- Machine-readable bench output (--json / ATR_BENCH_JSON) -------------
//
// When enabled, benches additionally emit one self-contained JSON object
// per table row on stdout (one line each, prefixed with nothing), so CI
// can grep them into perf-trajectory files:
//
//   {"experiment":"bench_table3_overview","dataset":"college",...}
//
// Enable with the --json CLI flag (pass argc/argv to ParseBenchFlags) or
// by setting ATR_BENCH_JSON=1 in the environment.

inline bool& BenchJsonEnabledFlag() {
  static bool enabled = GetEnvInt64("ATR_BENCH_JSON", 0) != 0;
  return enabled;
}

inline bool BenchJsonEnabled() { return BenchJsonEnabledFlag(); }

// Call first thing in main(); recognizes --json and ignores everything
// else (benches keep their no-argument contract).
inline void ParseBenchFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") BenchJsonEnabledFlag() = true;
  }
}

inline std::string BenchJsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// One bench row as a flat JSON object; Emit() prints it iff JSON output is
// enabled, so call sites wire rows unconditionally.
class BenchJsonRow {
 public:
  explicit BenchJsonRow(const char* experiment) : experiment_(experiment) {
    Add("experiment", experiment_);
  }

  BenchJsonRow& Add(const char* key, const std::string& value) {
    Field(key) += "\"" + BenchJsonEscape(value) + "\"";
    return *this;
  }
  BenchJsonRow& Add(const char* key, const char* value) {
    return Add(key, std::string(value));
  }
  BenchJsonRow& AddInt(const char* key, int64_t value) {
    Field(key) += std::to_string(value);
    return *this;
  }
  BenchJsonRow& AddDouble(const char* key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    Field(key) += buf;
    return *this;
  }

  // Prints the row (when enabled) and resets to a fresh row carrying the
  // same experiment id, so one instance can emit a whole table.
  void Emit() {
    if (BenchJsonEnabled()) std::printf("%s}\n", body_.c_str());
    body_ = "{";
    first_ = true;
    Add("experiment", experiment_);
  }

 private:
  std::string& Field(const char* key) {
    if (!first_) body_ += ",";
    first_ = false;
    body_ += "\"" + BenchJsonEscape(key) + "\":";
    return body_;
  }

  std::string experiment_;
  std::string body_ = "{";
  bool first_ = true;
};

inline void PrintBenchHeader(const char* experiment, const char* paper_ref) {
  std::printf("\n=== %s — reproduces %s ===\n", experiment, paper_ref);
  std::printf(
      "config: ATR_BENCH_SCALE=%.2f ATR_BENCH_B=%u ATR_BENCH_TRIALS=%u "
      "(synthetic SNAP stand-ins; see DESIGN.md §3)\n\n",
      BenchScale(), BenchBudget(), BenchTrials());
}

// An engine over a benchmark dataset, borrowing its graph and primed with
// the decomposition the dataset registry already computed. `data` must
// outlive the returned engine.
inline AtrEngine MakeEngine(const DatasetInstance& data) {
  return AtrEngine(data.graph, data.decomposition);
}

// Solve-or-abort: harness configurations are static, so an error here is a
// harness bug, not an input problem.
inline SolveResult RunOrDie(AtrEngine& engine, const std::string& solver,
                            const SolverOptions& options) {
  StatusOr<SolveResult> result = engine.Run(solver, options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench: solver \"%s\" failed: %s\n", solver.c_str(),
                 result.status().message().c_str());
    std::abort();
  }
  return *std::move(result);
}

inline SolveResult SweepOrDie(AtrEngine& engine, const std::string& solver,
                              const std::vector<uint32_t>& checkpoints,
                              SolverOptions options = {}) {
  StatusOr<SolveResult> result =
      engine.RunSweep(solver, checkpoints, std::move(options));
  if (!result.ok()) {
    std::fprintf(stderr, "bench: sweep \"%s\" failed: %s\n", solver.c_str(),
                 result.status().message().c_str());
    std::abort();
  }
  return *std::move(result);
}

// Benchmark budgets come from the environment and can exceed what a small
// dataset supports; clamp to the feasible range instead of letting the
// solver reject the run (the legacy entry points clamped silently).
inline uint32_t ClampBudget(uint32_t b, uint32_t cap) {
  return std::max<uint32_t>(1, std::min(b, cap));
}

// Effective budget ceiling of the Sup/Tur baselines: the size of their
// top-20% candidate pool, straight from the authoritative helper.
inline uint32_t BaselinePoolCap(const Graph& g) {
  return BaselinePoolCapacity(g, RandomPoolKind::kTopSupport);
}

// The 20%..100% budget checkpoints the Fig. 6 / Fig. 8 sweeps report.
inline std::vector<uint32_t> BudgetCheckpoints(uint32_t b) {
  std::vector<uint32_t> checkpoints;
  for (int i = 1; i <= 5; ++i) {
    const uint32_t c = std::max<uint32_t>(1, b * i / 5);
    if (checkpoints.empty() || c > checkpoints.back()) {
      checkpoints.push_back(c);
    }
  }
  return checkpoints;
}

}  // namespace atr

#endif  // ATR_BENCH_BENCH_COMMON_H_
