// Shared helpers for the table/figure reproduction harnesses.
//
// Every harness runs with no CLI arguments (scaling comes from ATR_* env
// vars, see eval/datasets.h) and prints: the experiment id it reproduces,
// the effective configuration, and the paper-style rows.
//
// Harnesses run every solver through the unified API (api/engine.h): one
// AtrEngine per dataset so the truss decomposition is shared across the
// solvers being compared.

#ifndef ATR_BENCH_BENCH_COMMON_H_
#define ATR_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/engine.h"
#include "core/random_baselines.h"
#include "eval/datasets.h"
#include "graph/generators/social_profiles.h"

namespace atr {

inline void PrintBenchHeader(const char* experiment, const char* paper_ref) {
  std::printf("\n=== %s — reproduces %s ===\n", experiment, paper_ref);
  std::printf(
      "config: ATR_BENCH_SCALE=%.2f ATR_BENCH_B=%u ATR_BENCH_TRIALS=%u "
      "(synthetic SNAP stand-ins; see DESIGN.md §3)\n\n",
      BenchScale(), BenchBudget(), BenchTrials());
}

// An engine over a benchmark dataset, borrowing its graph and primed with
// the decomposition the dataset registry already computed. `data` must
// outlive the returned engine.
inline AtrEngine MakeEngine(const DatasetInstance& data) {
  return AtrEngine(data.graph, data.decomposition);
}

// Solve-or-abort: harness configurations are static, so an error here is a
// harness bug, not an input problem.
inline SolveResult RunOrDie(AtrEngine& engine, const std::string& solver,
                            const SolverOptions& options) {
  StatusOr<SolveResult> result = engine.Run(solver, options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench: solver \"%s\" failed: %s\n", solver.c_str(),
                 result.status().message().c_str());
    std::abort();
  }
  return *std::move(result);
}

inline SolveResult SweepOrDie(AtrEngine& engine, const std::string& solver,
                              const std::vector<uint32_t>& checkpoints,
                              SolverOptions options = {}) {
  StatusOr<SolveResult> result =
      engine.RunSweep(solver, checkpoints, std::move(options));
  if (!result.ok()) {
    std::fprintf(stderr, "bench: sweep \"%s\" failed: %s\n", solver.c_str(),
                 result.status().message().c_str());
    std::abort();
  }
  return *std::move(result);
}

// Benchmark budgets come from the environment and can exceed what a small
// dataset supports; clamp to the feasible range instead of letting the
// solver reject the run (the legacy entry points clamped silently).
inline uint32_t ClampBudget(uint32_t b, uint32_t cap) {
  return std::max<uint32_t>(1, std::min(b, cap));
}

// Effective budget ceiling of the Sup/Tur baselines: the size of their
// top-20% candidate pool, straight from the authoritative helper.
inline uint32_t BaselinePoolCap(const Graph& g) {
  return BaselinePoolCapacity(g, RandomPoolKind::kTopSupport);
}

// The 20%..100% budget checkpoints the Fig. 6 / Fig. 8 sweeps report.
inline std::vector<uint32_t> BudgetCheckpoints(uint32_t b) {
  std::vector<uint32_t> checkpoints;
  for (int i = 1; i <= 5; ++i) {
    const uint32_t c = std::max<uint32_t>(1, b * i / 5);
    if (checkpoints.empty() || c > checkpoints.back()) {
      checkpoints.push_back(c);
    }
  }
  return checkpoints;
}

}  // namespace atr

#endif  // ATR_BENCH_BENCH_COMMON_H_
