// Shared helpers for the table/figure reproduction harnesses.
//
// Every harness runs with no CLI arguments (scaling comes from ATR_* env
// vars, see eval/datasets.h) and prints: the experiment id it reproduces,
// the effective configuration, and the paper-style rows.

#ifndef ATR_BENCH_BENCH_COMMON_H_
#define ATR_BENCH_BENCH_COMMON_H_

#include <cstdio>

#include "eval/datasets.h"
#include "graph/generators/social_profiles.h"

namespace atr {

inline void PrintBenchHeader(const char* experiment, const char* paper_ref) {
  std::printf("\n=== %s — reproduces %s ===\n", experiment, paper_ref);
  std::printf(
      "config: ATR_BENCH_SCALE=%.2f ATR_BENCH_B=%u ATR_BENCH_TRIALS=%u "
      "(synthetic SNAP stand-ins; see DESIGN.md §3)\n\n",
      BenchScale(), BenchBudget(), BenchTrials());
}

}  // namespace atr

#endif  // ATR_BENCH_BENCH_COMMON_H_
