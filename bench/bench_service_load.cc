// Service-layer load benchmark for the sharded catalog + fair-share batch
// scheduler: a mixed-tenant job stream with Zipf-skewed graph popularity
// (a few hot graphs take most submits, like a real serving catalog) is
// pushed through three service configurations —
//
//   serial    shards=1 max_batch=1   the pre-sharding single queue
//   sharded   shards=4 max_batch=1   sharding alone
//   fused     shards=4 max_batch=8   sharding + batch fusion
//
// Three sections:
//   1. Saturation throughput: submit the whole stream as fast as the
//      bounded queue admits it, measure jobs/sec end to end. Most of the
//      stream is same-graph greedy budget sweeps, so batch fusion
//      collapses queue backlogs into single solver walks; on a one-core
//      host the fused speedup is pure work reduction, not parallelism.
//   2. Target-QPS driver: an open-loop arrival process at fixed QPS
//      levels; reports achieved QPS and p50/p95 job latency per config.
//   3. Fusion microbench: one graph, one tenant, a burst of identical
//      budget sweeps — max_batch=8 vs max_batch=1, the distilled case
//      behind the ISSUE's >= 1.5x fusion acceptance bar.
//
// Knobs: ATR_BENCH_LOAD_JOBS (stream length, default 240),
// ATR_BENCH_LOAD_GRAPHS (catalog size, default 6), ATR_BENCH_LOAD_QPS
// (comma-free single target, default 200). `--json` emits one row per
// table line for CI's perf-trajectory diff.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "bench/bench_common.h"
#include "graph/generators/generators.h"
#include "util/env.h"
#include "util/prng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace atr {
namespace {

struct LoadConfig {
  const char* label;
  int shards;
  size_t max_batch;
};

constexpr LoadConfig kConfigs[] = {
    {"serial", 1, 1},
    {"sharded", 4, 1},
    {"fused", 4, 8},
};

// One synthetic submit: which graph, which tenant, what work.
struct LoadJob {
  int graph = 0;
  int tenant = 0;
  uint32_t budget = 1;
  bool randomized = false;  // non-fusable baseline traffic
};

Graph LoadGraph(uint64_t seed) { return HolmeKimGraph(120, 4, 0.6, seed); }

// Zipf(s=1.1) CDF over `n` graphs: graph 0 is hottest.
std::vector<double> ZipfCdf(int n) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), 1.1);
    cdf[i] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

double UniformDouble(Rng& rng) {
  return static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
}

// The job stream is generated once and replayed identically against every
// config, so the comparison is apples to apples.
std::vector<LoadJob> MakeStream(int jobs, int graphs, int tenants) {
  const std::vector<double> cdf = ZipfCdf(graphs);
  Rng rng(0x10adbe9cULL);
  std::vector<LoadJob> stream;
  stream.reserve(jobs);
  for (int i = 0; i < jobs; ++i) {
    LoadJob job;
    const double pick = UniformDouble(rng);
    job.graph = static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), pick) - cdf.begin());
    job.tenant = static_cast<int>(rng.Next() % tenants);
    job.budget = 1 + static_cast<uint32_t>(rng.Next() % 4);
    job.randomized = rng.Next() % 10 == 0;  // 10% non-fusable traffic
    stream.push_back(job);
  }
  return stream;
}

std::unique_ptr<AtrService> MakeService(const LoadConfig& config, int graphs) {
  AtrService::Options options;
  options.workers = 2;
  options.queue_capacity = 512;
  options.shards = config.shards;
  options.max_batch = config.max_batch;
  auto service = std::make_unique<AtrService>(options);
  for (int g = 0; g < graphs; ++g) {
    Status added = service->AddGraph("g" + std::to_string(g), LoadGraph(40 + g));
    if (!added.ok()) std::abort();
  }
  // Pay every graph's one-time decomposition build up front so the timed
  // sections measure scheduling + solving, not first-touch builds.
  for (int g = 0; g < graphs; ++g) {
    if (!service->Snapshot("g" + std::to_string(g)).ok()) std::abort();
  }
  return service;
}

StatusOr<JobHandle> SubmitOne(AtrService& service, const LoadJob& job,
                              std::function<void()> done = nullptr) {
  SolverOptions options;
  options.budget = job.budget;
  const char* solver = "gas";
  if (job.randomized) {
    solver = "rand";
    options.trials = 10;
    options.seed = 3;
  }
  AtrService::SubmitOptions submit;
  submit.tenant = "tenant-" + std::to_string(job.tenant);
  return service.Submit("g" + std::to_string(job.graph), solver, options,
                        submit, std::move(done));
}

struct RunStats {
  double wall_ms = 0.0;
  double jobs_per_sec = 0.0;
  uint64_t jobs_fused = 0;
  uint64_t batches_executed = 0;
};

// Section 1: everything submitted as fast as the queue admits it.
RunStats RunSaturation(const LoadConfig& config,
                       const std::vector<LoadJob>& stream, int graphs) {
  std::unique_ptr<AtrService> service = MakeService(config, graphs);
  std::vector<JobHandle> handles;
  handles.reserve(stream.size());
  WallTimer timer;
  for (const LoadJob& job : stream) {
    StatusOr<JobHandle> handle = SubmitOne(*service, job);
    if (!handle.ok()) std::abort();
    handles.push_back(*handle);
  }
  for (JobHandle& handle : handles) {
    if (!handle.Wait().ok()) std::abort();
  }
  RunStats stats;
  stats.wall_ms = timer.ElapsedMillis();
  stats.jobs_per_sec = stream.size() / (stats.wall_ms / 1e3);
  const AtrService::SchedulerStats sched = service->Stats();
  stats.jobs_fused = sched.jobs_fused;
  stats.batches_executed = sched.batches_executed;
  return stats;
}

struct QpsStats {
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

// Section 2: open-loop arrivals at `target_qps`; per-job latency is
// submit-to-done (the done callback fires when the result is observable).
QpsStats RunTargetQps(const LoadConfig& config,
                      const std::vector<LoadJob>& stream, int graphs,
                      double target_qps) {
  std::unique_ptr<AtrService> service = MakeService(config, graphs);
  using Clock = std::chrono::steady_clock;
  std::vector<Clock::time_point> submitted(stream.size());
  std::vector<Clock::time_point> completed(stream.size());
  std::atomic<size_t> done_count{0};
  std::vector<JobHandle> handles;
  handles.reserve(stream.size());

  const auto interval =
      std::chrono::duration<double>(1.0 / target_qps);
  const Clock::time_point start = Clock::now();
  for (size_t i = 0; i < stream.size(); ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<Clock::duration>(interval * i));
    submitted[i] = Clock::now();
    StatusOr<JobHandle> handle =
        SubmitOne(*service, stream[i], [&, i] {
          completed[i] = Clock::now();
          done_count.fetch_add(1, std::memory_order_release);
        });
    if (!handle.ok()) std::abort();
    handles.push_back(*handle);
  }
  for (JobHandle& handle : handles) {
    if (!handle.Wait().ok()) std::abort();
  }
  while (done_count.load(std::memory_order_acquire) < stream.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> latencies_ms(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    latencies_ms[i] =
        std::chrono::duration<double>(completed[i] - submitted[i]).count() *
        1e3;
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  QpsStats stats;
  stats.achieved_qps = stream.size() / wall_s;
  stats.p50_ms = latencies_ms[latencies_ms.size() / 2];
  stats.p95_ms = latencies_ms[latencies_ms.size() * 95 / 100];
  return stats;
}

// Section 3: the distilled fusion case — one graph, one tenant, a burst
// of identical greedy budget sweeps.
double RunFusionBurst(size_t max_batch, int sweep_jobs, uint64_t* fused_out) {
  AtrService::Options options;
  options.workers = 1;
  options.shards = 1;
  options.max_batch = max_batch;
  options.queue_capacity = 512;
  AtrService service(options);
  if (!service.AddGraph("g", LoadGraph(40)).ok()) std::abort();
  if (!service.Snapshot("g").ok()) std::abort();

  WallTimer timer;
  std::vector<JobHandle> handles;
  for (int i = 0; i < sweep_jobs; ++i) {
    SolverOptions o;
    o.budget = 1 + static_cast<uint32_t>(i % 4);
    StatusOr<JobHandle> handle = service.Submit("g", "gas", o);
    if (!handle.ok()) std::abort();
    handles.push_back(*handle);
  }
  for (JobHandle& handle : handles) {
    if (!handle.Wait().ok()) std::abort();
  }
  const double wall_ms = timer.ElapsedMillis();
  if (fused_out != nullptr) *fused_out = service.Stats().jobs_fused;
  return wall_ms;
}

void Run() {
  PrintBenchHeader("bench_service_load",
                   "sharded catalog + fair-share batch scheduling");
  const int jobs =
      static_cast<int>(GetEnvInt64("ATR_BENCH_LOAD_JOBS", 240));
  const int graphs =
      static_cast<int>(GetEnvInt64("ATR_BENCH_LOAD_GRAPHS", 6));
  const double target_qps =
      static_cast<double>(GetEnvInt64("ATR_BENCH_LOAD_QPS", 200));
  constexpr int kTenants = 4;
  std::printf("stream: %d jobs, %d graphs (Zipf 1.1), %d tenants\n\n", jobs,
              graphs, kTenants);

  const std::vector<LoadJob> stream = MakeStream(jobs, graphs, kTenants);
  BenchJsonRow json("bench_service_load_saturation");

  TablePrinter table({"config", "shards", "max_batch", "wall (ms)",
                      "jobs/sec", "speedup", "fused", "batches"});
  double serial_jps = 0.0;
  for (const LoadConfig& config : kConfigs) {
    const RunStats stats = RunSaturation(config, stream, graphs);
    if (config.shards == 1 && config.max_batch == 1) {
      serial_jps = stats.jobs_per_sec;
    }
    const double speedup =
        serial_jps > 0.0 ? stats.jobs_per_sec / serial_jps : 1.0;
    table.AddRow({config.label, std::to_string(config.shards),
                  std::to_string(config.max_batch),
                  TablePrinter::FormatDouble(stats.wall_ms, 1),
                  TablePrinter::FormatDouble(stats.jobs_per_sec, 1),
                  TablePrinter::FormatDouble(speedup, 2) + "x",
                  std::to_string(stats.jobs_fused),
                  std::to_string(stats.batches_executed)});
    json.Add("config", config.label)
        .AddInt("shards", config.shards)
        .AddInt("max_batch", static_cast<int64_t>(config.max_batch))
        .AddInt("jobs", jobs)
        .AddDouble("wall_ms", stats.wall_ms)
        .AddDouble("jobs_per_sec", stats.jobs_per_sec)
        .AddDouble("speedup_vs_serial", speedup)
        .AddInt("jobs_fused", static_cast<int64_t>(stats.jobs_fused))
        .AddInt("batches_executed",
                static_cast<int64_t>(stats.batches_executed))
        .Emit();
  }
  std::printf("saturation throughput (whole stream submitted at once):\n");
  table.Print();
  std::printf("\n");

  BenchJsonRow qps_json("bench_service_load_qps");
  TablePrinter qps_table({"config", "target QPS", "achieved QPS", "p50 (ms)",
                          "p95 (ms)"});
  for (const LoadConfig& config : kConfigs) {
    const QpsStats stats = RunTargetQps(config, stream, graphs, target_qps);
    qps_table.AddRow({config.label, TablePrinter::FormatDouble(target_qps, 0),
                      TablePrinter::FormatDouble(stats.achieved_qps, 1),
                      TablePrinter::FormatDouble(stats.p50_ms, 2),
                      TablePrinter::FormatDouble(stats.p95_ms, 2)});
    qps_json.Add("config", config.label)
        .AddDouble("target_qps", target_qps)
        .AddDouble("achieved_qps", stats.achieved_qps)
        .AddDouble("p50_ms", stats.p50_ms)
        .AddDouble("p95_ms", stats.p95_ms)
        .Emit();
  }
  std::printf("open-loop target-QPS driver:\n");
  qps_table.Print();
  std::printf("\n");

  const int sweep_jobs = 32;
  uint64_t fused = 0;
  const double unfused_ms = RunFusionBurst(1, sweep_jobs, nullptr);
  const double fused_ms = RunFusionBurst(8, sweep_jobs, &fused);
  const double fusion_speedup = unfused_ms / fused_ms;
  std::printf(
      "fusion burst (%d same-graph budget sweeps, 1 worker): "
      "unfused %.1f ms, fused %.1f ms (%.2fx, %llu jobs fused)\n",
      sweep_jobs, unfused_ms, fused_ms, fusion_speedup,
      static_cast<unsigned long long>(fused));
  BenchJsonRow fusion_json("bench_service_load_fusion");
  fusion_json.AddInt("sweep_jobs", sweep_jobs)
      .AddDouble("unfused_ms", unfused_ms)
      .AddDouble("fused_ms", fused_ms)
      .AddDouble("speedup", fusion_speedup)
      .AddInt("jobs_fused", static_cast<int64_t>(fused))
      .Emit();
}

}  // namespace
}  // namespace atr

int main(int argc, char** argv) {
  atr::ParseBenchFlags(argc, argv);
  atr::Run();
  return 0;
}
