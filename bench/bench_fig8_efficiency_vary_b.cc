// Exp-5 (Fig. 8): runtime of BASE+ vs GAS as the budget sweeps 20%..100%
// of the default, on every dataset. One RunSweep per solver reports all
// checkpoints via the per-round cumulative timestamps.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/table_printer.h"

namespace atr {
namespace {

double TimeAtCheckpoint(const SolveResult& result, uint32_t budget) {
  if (result.rounds.empty()) return 0.0;
  const size_t idx = std::min<size_t>(budget, result.rounds.size()) - 1;
  return result.rounds[idx].cumulative_seconds;
}

void Run() {
  PrintBenchHeader("bench_fig8_efficiency_vary_b", "Fig. 8 (Exp-5)");
  const uint32_t b = BenchBudget();
  const std::vector<uint32_t> checkpoints = BudgetCheckpoints(b);

  std::vector<std::string> header = {"Dataset", "Solver"};
  for (uint32_t c : checkpoints) header.push_back("b=" + std::to_string(c));
  TablePrinter table(header);

  for (const DatasetSpec& spec : SocialProfileSpecs()) {
    const DatasetInstance data = MakeDataset(spec.name, BenchScale());
    AtrEngine engine = MakeEngine(data);
    std::fprintf(stderr, "[fig8] %s |E|=%u\n", spec.name.c_str(),
                 engine.graph().NumEdges());
    // Sweep with per-dataset-feasible checkpoints; the shared header
    // columns are served by TimeAtCheckpoint's index clamp.
    const std::vector<uint32_t> dataset_checkpoints =
        BudgetCheckpoints(ClampBudget(b, engine.graph().NumEdges()));
    const SolveResult plus = SweepOrDie(engine, "base+", dataset_checkpoints);
    const SolveResult gas = SweepOrDie(engine, "gas", dataset_checkpoints);
    std::vector<std::string> plus_row = {spec.name, "BASE+"};
    std::vector<std::string> gas_row = {"", "GAS"};
    for (uint32_t c : checkpoints) {
      plus_row.push_back(TablePrinter::FormatSeconds(TimeAtCheckpoint(plus, c)));
      gas_row.push_back(TablePrinter::FormatSeconds(TimeAtCheckpoint(gas, c)));
    }
    table.AddRow(plus_row);
    table.AddRow(gas_row);
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper): GAS beats BASE+ at every budget and the gap "
      "widens with b (reuse amortizes the round-1 investment; paper reports "
      "GAS at ~20%% of BASE+ on facebook/google).\n");
}

}  // namespace
}  // namespace atr

int main() {
  atr::Run();
  return 0;
}
