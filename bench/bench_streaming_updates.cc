// Streaming edge arrivals on the Fig. 9 scalability graphs: per-insert
// incremental truss maintenance (IncrementalTruss::InsertEdge) vs a
// from-scratch decomposition of the same alive subset after every arrival.
// A batch of edges is first retired (untimed), then streamed back one at a
// time; both paths are verified byte-identical at every step's endpoint
// (the final state must also equal the dataset's pristine decomposition).
//
// A second section measures the service-layer path: one
// AtrService::UpdateGraph batch delta (seeded from the previous snapshot
// version across the edge-id remap) vs rebuilding the new snapshot's
// decomposition from scratch.
//
// Knobs: ATR_BENCH_SCALE (dataset size), ATR_BENCH_STREAM_EDGES (arrivals
// measured per dataset, default 16).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/service.h"
#include "bench/bench_common.h"
#include "truss/incremental.h"
#include "util/env.h"
#include "util/prng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace atr {
namespace {

void DieOnDivergence(const TrussDecomposition& a, const TrussDecomposition& b,
                     const char* dataset, const char* what) {
  if (a.trussness != b.trussness || a.layer != b.layer ||
      a.max_trussness != b.max_trussness) {
    std::fprintf(stderr, "bench: %s diverged on %s\n", what, dataset);
    std::abort();
  }
}

void Run() {
  PrintBenchHeader("bench_streaming_updates", "Fig. 9 graphs (streaming)");
  const uint32_t stream_edges = static_cast<uint32_t>(
      GetEnvInt64("ATR_BENCH_STREAM_EDGES", 16));
  std::printf("edge arrivals per dataset: %u\n\n", stream_edges);

  TablePrinter table({"Dataset", "|V|", "|E|", "inserts", "full (ms/insert)",
                      "incremental (ms/insert)", "speedup",
                      "region edges/insert"});
  TablePrinter service_table(
      {"Dataset", "delta edges", "UpdateGraph (ms)", "rebuild (ms)",
       "speedup"});
  for (const char* name : {"patents", "pokec"}) {
    const DatasetInstance data = MakeDataset(name, BenchScale());
    const Graph& g = data.graph;
    const uint32_t m = g.NumEdges();
    const uint32_t budget = std::min(stream_edges, m);

    // A deterministic arrival sequence: distinct random edges.
    Rng rng(0x57ea11u + m);
    std::vector<bool> chosen(m, false);
    std::vector<EdgeId> sequence;
    while (sequence.size() < budget) {
      const EdgeId e = static_cast<EdgeId>(rng.NextBounded(m));
      if (chosen[e]) continue;
      chosen[e] = true;
      sequence.push_back(e);
    }

    // Retire the batch (untimed) so the arrivals stream into a live,
    // already-maintained engine — the serving shape.
    IncrementalTruss engine(g, data.decomposition);
    for (const EdgeId e : sequence) engine.RemoveEdge(e);
    engine.ClearUndoLog();
    // region_edges_total above covers the untimed retire removals too;
    // subtract it so the reported metric is per *insert* only.
    const uint64_t retire_region_edges = engine.stats().region_edges_total;
    std::vector<bool> alive(m, true);
    for (const EdgeId e : sequence) alive[e] = false;

    double incremental_ms = 0.0;
    double full_ms = 0.0;
    TrussDecomposition full;
    for (const EdgeId e : sequence) {
      {
        WallTimer timer;
        engine.InsertEdge(e);
        incremental_ms += timer.ElapsedMillis();
      }
      alive[e] = true;
      std::vector<EdgeId> subset;
      subset.reserve(m);
      for (EdgeId s = 0; s < m; ++s) {
        if (alive[s]) subset.push_back(s);
      }
      WallTimer timer;
      full = ComputeTrussDecompositionOnSubset(g, {}, subset);
      full_ms += timer.ElapsedMillis();
    }
    DieOnDivergence(full, engine.decomposition(), name,
                    "incremental and full streaming decompositions");
    DieOnDivergence(engine.decomposition(), data.decomposition, name,
                    "post-stream and pristine decompositions");

    const double per_full = full_ms / budget;
    const double per_incremental = incremental_ms / budget;
    const IncrementalTruss::Stats& stats = engine.stats();
    const double region_per_insert =
        static_cast<double>(stats.region_edges_total - retire_region_edges) /
        std::max<uint64_t>(1, stats.edges_inserted);
    table.AddRow(
        {name, TablePrinter::FormatInt(g.NumVertices()),
         TablePrinter::FormatInt(m), TablePrinter::FormatInt(budget),
         TablePrinter::FormatDouble(per_full, 3),
         TablePrinter::FormatDouble(per_incremental, 3),
         TablePrinter::FormatDouble(per_full / per_incremental, 1) + "x",
         TablePrinter::FormatDouble(region_per_insert, 1)});
    BenchJsonRow("bench_streaming_updates")
        .Add("dataset", name)
        .AddInt("vertices", g.NumVertices())
        .AddInt("edges", m)
        .AddInt("inserts", budget)
        .AddDouble("full_ms_per_insert", per_full)
        .AddDouble("incremental_ms_per_insert", per_incremental)
        .AddDouble("speedup", per_full / per_incremental)
        .AddDouble("region_edges_per_insert", region_per_insert)
        .Emit();

    // --- Service path: one UpdateGraph batch delta vs a rebuild ----------
    AtrService service;
    if (!service.AddGraph(name, g).ok()) std::abort();
    (void)service.Snapshot(name);  // pay the one lazy build up front
    GraphDelta delta;
    for (const EdgeId e : sequence) delta.remove.push_back(g.Edge(e));
    WallTimer update_timer;
    StatusOr<GraphSnapshot> next = service.UpdateGraph(name, delta);
    const double update_ms = update_timer.ElapsedMillis();
    if (!next.ok()) {
      std::fprintf(stderr, "bench: UpdateGraph failed on %s: %s\n", name,
                   next.status().message().c_str());
      std::abort();
    }
    double rebuild_ms = 0.0;
    {
      WallTimer timer;
      const TrussDecomposition rebuilt =
          ComputeTrussDecomposition(*next->graph);
      rebuild_ms = timer.ElapsedMillis();
      DieOnDivergence(rebuilt, *next->decomposition, name,
                      "UpdateGraph-seeded and rebuilt decompositions");
    }
    service_table.AddRow(
        {name, TablePrinter::FormatInt(budget),
         TablePrinter::FormatDouble(update_ms, 3),
         TablePrinter::FormatDouble(rebuild_ms, 3),
         TablePrinter::FormatDouble(rebuild_ms / update_ms, 1) + "x"});
    BenchJsonRow("bench_streaming_updates_service")
        .Add("dataset", name)
        .AddInt("delta_edges", budget)
        .AddDouble("update_graph_ms", update_ms)
        .AddDouble("rebuild_ms", rebuild_ms)
        .AddDouble("speedup", rebuild_ms / update_ms)
        .Emit();
  }
  table.Print();
  std::printf(
      "\nexpected shape: per-insert localized maintenance beats the "
      "from-scratch subset decomposition by >= 10x on these graphs (the "
      "affected region is a tiny fraction of |E|).\n\n");
  service_table.Print();
  std::printf(
      "\nexpected shape: one UpdateGraph publication (remap carry + "
      "incremental retire of the delta) undercuts rebuilding the new "
      "version's decomposition, and GraphInfo::decomposition_builds stays "
      "at 1.\n");
}

}  // namespace
}  // namespace atr

int main(int argc, char** argv) {
  atr::ParseBenchFlags(argc, argv);
  atr::Run();
  return 0;
}
