// Exp-9 (Table V + Fig. 11): AKT vs GAS.
//  * Table V row: AKT's trussness gain as a fraction of GAS's at the same
//    budget — the average and the maximum over all k values.
//  * Fig. 11(a): AKT gain per (k, b) grid cell, with the GAS gain row.
//  * Fig. 11(b): distribution of GAS's followers across trussness levels.
//
// The GAS sweep and every AKT level run through one AtrEngine, sharing a
// single truss decomposition.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "util/env.h"
#include "util/table_printer.h"

namespace atr {
namespace {

void Run() {
  PrintBenchHeader("bench_table5_fig11_akt", "Table V + Fig. 11 (Exp-9)");
  const double scale =
      std::min(GetEnvDouble("ATR_BENCH_AKT_SCALE", 0.15), BenchScale());
  const DatasetInstance data = MakeDataset("gowalla", scale);
  AtrEngine engine = MakeEngine(data);
  const Graph& g = engine.graph();
  // GAS budgets are edge-bounded, AKT budgets vertex-bounded; one clamped
  // budget keeps the (k, b) grid columns aligned.
  const uint32_t b = ClampBudget(
      BenchBudget(), std::min(g.NumEdges(), g.NumVertices()));
  std::printf("dataset gowalla stand-in (|V|=%u |E|=%u), b=%u\n\n",
              g.NumVertices(), g.NumEdges(), b);

  const std::vector<uint32_t> checkpoints = BudgetCheckpoints(b);
  const SolveResult gas = SweepOrDie(engine, "gas", checkpoints);

  // Fig. 11(a): AKT gain over the (k, b) grid.
  std::vector<std::string> header = {"k"};
  for (uint32_t c : checkpoints) header.push_back("b=" + std::to_string(c));
  TablePrinter grid(header);
  uint64_t akt_best = 0;
  uint64_t akt_sum = 0;
  uint32_t akt_count = 0;
  for (uint32_t k = 4; k <= data.k_max + 1; ++k) {
    const SolveResult akt =
        SweepOrDie(engine, "akt:" + std::to_string(k), checkpoints);
    std::vector<std::string> row = {TablePrinter::FormatInt(k)};
    for (uint64_t gain : akt.gain_at_checkpoint) {
      row.push_back(TablePrinter::FormatInt(gain));
    }
    grid.AddRow(row);
    akt_best = std::max(akt_best, akt.total_gain);
    akt_sum += akt.total_gain;
    ++akt_count;
  }
  std::vector<std::string> gas_row = {"GAS"};
  for (uint64_t gain : gas.gain_at_checkpoint) {
    gas_row.push_back(TablePrinter::FormatInt(gain));
  }
  grid.AddRow(gas_row);
  std::printf("Fig. 11(a): AKT trussness gain per (k, b); GAS row below\n");
  grid.Print();

  // Table V: gain ratios at the full budget.
  const double gas_gain = static_cast<double>(gas.total_gain);
  std::printf("\nTable V: AKT / GAS trussness-gain ratio at b=%u\n", b);
  TablePrinter ratios({"avg gain ratio", "max gain ratio"});
  ratios.AddRow(
      {TablePrinter::FormatPercent(akt_count > 0 && gas_gain > 0
                                       ? (akt_sum / akt_count) / gas_gain
                                       : 0.0),
       TablePrinter::FormatPercent(gas_gain > 0 ? akt_best / gas_gain : 0.0)});
  ratios.Print();

  // Fig. 11(b): GAS follower distribution across trussness levels.
  std::printf("\nFig. 11(b): GAS followers by trussness level (cumulative)\n");
  TablePrinter dist_header(header);
  std::map<uint32_t, std::vector<uint64_t>> by_level;  // level -> per budget
  for (size_t r = 0; r < gas.rounds.size(); ++r) {
    for (uint32_t t : gas.rounds[r].follower_trussness) {
      auto [it, inserted] =
          by_level.emplace(t, std::vector<uint64_t>(checkpoints.size(), 0));
      for (size_t c = 0; c < checkpoints.size(); ++c) {
        if (r < checkpoints[c]) ++it->second[c];
      }
    }
  }
  for (const auto& [level, counts] : by_level) {
    std::vector<std::string> row = {"t=" + std::to_string(level)};
    for (uint64_t v : counts) row.push_back(TablePrinter::FormatInt(v));
    dist_header.AddRow(row);
  }
  dist_header.Print();
  std::printf(
      "\nexpected shape (paper): AKT reaches only a fraction of GAS even at "
      "its best k (8-74%%); GAS followers span many trussness levels while "
      "AKT is confined to k-1.\n");
}

}  // namespace
}  // namespace atr

int main() {
  atr::Run();
  return 0;
}
