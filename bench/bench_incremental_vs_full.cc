// Incremental truss maintenance vs. from-scratch recomputation on the
// Fig. 9 scalability graphs (patents, pokec stand-ins): commit a sequence
// of anchors and, after each commit, bring the decomposition up to date
// either with IncrementalTruss::ApplyAnchor (affected-region re-peel) or
// with a full ComputeTrussDecomposition. Both paths are verified to
// produce byte-identical decompositions at every step; the table reports
// the per-anchor update times and the resulting speedup.
//
// Knobs: ATR_BENCH_SCALE (dataset size), ATR_BENCH_INC_ANCHORS (number of
// anchor commits measured per dataset, default 16).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "truss/incremental.h"
#include "util/env.h"
#include "util/prng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace atr {
namespace {

void Run() {
  PrintBenchHeader("bench_incremental_vs_full", "Fig. 9 graphs (dynamic)");
  const uint32_t anchors = static_cast<uint32_t>(
      GetEnvInt64("ATR_BENCH_INC_ANCHORS", 16));
  std::printf("anchor commits per dataset: %u\n\n", anchors);

  TablePrinter table({"Dataset", "|V|", "|E|", "anchors", "full (ms/anchor)",
                      "incremental (ms/anchor)", "speedup",
                      "region edges/anchor"});
  for (const char* name : {"patents", "pokec"}) {
    const DatasetInstance data = MakeDataset(name, BenchScale());
    const Graph& g = data.graph;
    const uint32_t m = g.NumEdges();
    const uint32_t budget = std::min(anchors, m);

    // A deterministic mixed anchor sequence: random eligible edges.
    Rng rng(0x5eedu + m);
    std::vector<bool> chosen(m, false);
    std::vector<EdgeId> sequence;
    while (sequence.size() < budget) {
      const EdgeId e = static_cast<EdgeId>(rng.NextBounded(m));
      if (chosen[e]) continue;
      chosen[e] = true;
      sequence.push_back(e);
    }

    // Incremental path: one engine, localized updates.
    IncrementalTruss engine(g, data.decomposition);
    double incremental_ms = 0.0;
    for (const EdgeId e : sequence) {
      WallTimer timer;
      engine.ApplyAnchor(e);
      incremental_ms += timer.ElapsedMillis();
    }

    // Full path: recompute the decomposition after every commit.
    std::vector<bool> anchored(m, false);
    double full_ms = 0.0;
    TrussDecomposition full = data.decomposition;
    for (const EdgeId e : sequence) {
      anchored[e] = true;
      WallTimer timer;
      full = ComputeTrussDecomposition(g, anchored);
      full_ms += timer.ElapsedMillis();
    }

    // Both paths must land on the same decomposition, byte for byte.
    if (full.trussness != engine.decomposition().trussness ||
        full.layer != engine.decomposition().layer ||
        full.max_trussness != engine.decomposition().max_trussness) {
      std::fprintf(stderr,
                   "bench: incremental and full decompositions diverged on "
                   "%s\n",
                   name);
      std::abort();
    }

    const double per_full = full_ms / budget;
    const double per_incremental = incremental_ms / budget;
    const IncrementalTruss::Stats& stats = engine.stats();
    table.AddRow(
        {name, TablePrinter::FormatInt(g.NumVertices()),
         TablePrinter::FormatInt(m), TablePrinter::FormatInt(budget),
         TablePrinter::FormatDouble(per_full, 3),
         TablePrinter::FormatDouble(per_incremental, 3),
         TablePrinter::FormatDouble(per_full / per_incremental, 1) + "x",
         TablePrinter::FormatDouble(
             static_cast<double>(stats.region_edges_total) /
                 std::max<uint64_t>(1, stats.anchors_applied),
             1)});
    BenchJsonRow("bench_incremental_vs_full")
        .Add("dataset", name)
        .AddInt("vertices", g.NumVertices())
        .AddInt("edges", m)
        .AddInt("anchors", budget)
        .AddDouble("full_ms_per_anchor", per_full)
        .AddDouble("incremental_ms_per_anchor", per_incremental)
        .AddDouble("speedup", per_full / per_incremental)
        .AddDouble("region_edges_per_anchor",
                   static_cast<double>(stats.region_edges_total) /
                       std::max<uint64_t>(1, stats.anchors_applied))
        .Emit();
  }
  table.Print();
  std::printf(
      "\nexpected shape: the localized update beats the full recomputation "
      "by >= 5x per anchor on the largest graph (the affected region is a "
      "tiny fraction of |E|).\n");
}

}  // namespace
}  // namespace atr

int main(int argc, char** argv) {
  atr::ParseBenchFlags(argc, argv);
  atr::Run();
  return 0;
}
