// Exp-6 (Fig. 9): scalability of GAS under |E| and |V| sampling (50%-100%)
// on the two largest datasets (patents, pokec stand-ins). Reports GAS
// runtime plus the vertex/edge ratios of the samples.

#include <cstdio>

#include "bench/bench_common.h"
#include "graph/subgraph.h"
#include "util/env.h"
#include "util/prng.h"
#include "util/table_printer.h"

namespace atr {
namespace {

void Run() {
  PrintBenchHeader("bench_fig9_scalability", "Fig. 9 (Exp-6)");
  const uint32_t b = static_cast<uint32_t>(
      GetEnvInt64("ATR_BENCH_SCAL_B", std::min<int64_t>(10, BenchBudget())));
  const int threads =
      static_cast<int>(GetEnvInt64("ATR_BENCH_THREADS", 0));
  std::printf("GAS budget per sample: %u, threads: %d (0 = ambient; the "
              "shared decomposition uses the parallel peel when > 1)\n",
              b, threads);

  SolverOptions options;
  options.budget = b;
  options.threads = threads;

  for (const char* name : {"patents", "pokec"}) {
    const DatasetInstance data = MakeDataset(name, BenchScale());
    const Graph& g = data.graph;
    std::printf("\ndataset %s (|V|=%u |E|=%u)\n", name, g.NumVertices(),
                g.NumEdges());
    TablePrinter table({"Sample", "Rate", "|V|", "|E|", "vertex ratio",
                        "edge ratio", "GAS(s)"});
    for (int mode = 0; mode < 2; ++mode) {
      for (int pct = 50; pct <= 100; pct += 10) {
        Rng rng(1000 + pct);
        const double fraction = pct / 100.0;
        Graph sample = (mode == 0) ? SampleEdges(g, fraction, rng)
                                   : SampleVertices(g, fraction, rng);
        // Count non-isolated vertices for the ratio columns.
        uint32_t active_vertices = 0;
        for (VertexId v = 0; v < sample.NumVertices(); ++v) {
          if (sample.Degree(v) > 0) ++active_vertices;
        }
        const uint32_t sample_edges = sample.NumEdges();
        AtrEngine engine(std::move(sample));
        SolveResult gas;  // edgeless samples have nothing to solve
        if (sample_edges > 0) {
          options.budget = ClampBudget(b, sample_edges);
          gas = RunOrDie(engine, "gas", options);
        }
        table.AddRow(
            {mode == 0 ? "vary |E|" : "vary |V|",
             TablePrinter::FormatDouble(fraction, 1),
             TablePrinter::FormatInt(active_vertices),
             TablePrinter::FormatInt(sample_edges),
             TablePrinter::FormatDouble(
                 static_cast<double>(active_vertices) / g.NumVertices(), 2),
             TablePrinter::FormatDouble(
                 static_cast<double>(sample_edges) / g.NumEdges(), 2),
             TablePrinter::FormatSeconds(gas.seconds)});
        BenchJsonRow("bench_fig9_scalability")
            .Add("dataset", name)
            .Add("mode", mode == 0 ? "vary_edges" : "vary_vertices")
            .AddDouble("rate", fraction)
            .AddInt("vertices", active_vertices)
            .AddInt("edges", sample_edges)
            .AddInt("threads", threads)
            .AddDouble("gas_seconds", gas.seconds)
            .Emit();
      }
    }
    table.Print();
  }
  std::printf(
      "\nexpected shape (paper): GAS runtime grows smoothly with both "
      "sampled |E| and |V|, with no blow-up at full size.\n");
}

}  // namespace
}  // namespace atr

int main(int argc, char** argv) {
  atr::ParseBenchFlags(argc, argv);
  atr::Run();
  return 0;
}
