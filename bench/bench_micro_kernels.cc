// Google-benchmark microbenchmarks for the computational kernels:
// support computation, truss decomposition, component-tree construction,
// follower search, route-size probes, and the solver-API dispatch layer
// (registry lookup, engine decomposition cache).

#include <benchmark/benchmark.h>

#include "api/engine.h"
#include "api/registry.h"
#include "graph/generators/generators.h"
#include "graph/triangles.h"
#include "route/follower_search.h"
#include "tree/component_tree.h"
#include "truss/decomposition.h"

namespace atr {
namespace {

Graph MakeBenchGraph(int64_t scale) {
  // Triangle-rich social-style graph; size grows with the benchmark range.
  return HolmeKimGraph(static_cast<uint32_t>(1000 * scale), 8, 0.8, 42);
}

void BM_ComputeSupport(benchmark::State& state) {
  const Graph g = MakeBenchGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSupport(g));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_ComputeSupport)->Arg(1)->Arg(4)->Arg(16);

void BM_TrussDecomposition(benchmark::State& state) {
  const Graph g = MakeBenchGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTrussDecomposition(g));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_TrussDecomposition)->Arg(1)->Arg(4)->Arg(16);

void BM_ComponentTreeBuild(benchmark::State& state) {
  const Graph g = MakeBenchGraph(state.range(0));
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  for (auto _ : state) {
    TrussComponentTree tree;
    tree.Build(g, d, {});
    benchmark::DoNotOptimize(tree.nodes().size());
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_ComponentTreeBuild)->Arg(1)->Arg(4)->Arg(16);

void BM_FollowerSearchPerEdge(benchmark::State& state) {
  const Graph g = MakeBenchGraph(state.range(0));
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  FollowerSearch search(g);
  search.SetState(&d, nullptr);
  EdgeId e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.CountFollowers(e));
    e = (e + 1) % g.NumEdges();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FollowerSearchPerEdge)->Arg(1)->Arg(4)->Arg(16);

void BM_RouteSizePerEdge(benchmark::State& state) {
  const Graph g = MakeBenchGraph(state.range(0));
  const TrussDecomposition d = ComputeTrussDecomposition(g);
  FollowerSearch search(g);
  search.SetState(&d, nullptr);
  EdgeId e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.RouteSize(e));
    e = (e + 1) % g.NumEdges();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteSizePerEdge)->Arg(1)->Arg(4)->Arg(16);

void BM_RegistryCreate(benchmark::State& state) {
  // Per-solve dispatch cost of the unified API: name lookup + adapter
  // construction. Must stay negligible next to any real solve.
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolverRegistry::Create("gas"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryCreate);

void BM_EngineDecompositionCacheHit(benchmark::State& state) {
  AtrEngine engine(MakeBenchGraph(state.range(0)));
  engine.Decomposition();  // prime the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(&engine.Decomposition());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineDecompositionCacheHit)->Arg(1)->Arg(4);

}  // namespace
}  // namespace atr

BENCHMARK_MAIN();
