// Exp-7 (Table IV): upward-route size of every edge on every dataset —
// min / max / sum / average — demonstrating that the route restriction
// shrinks the follower search space to a tiny fraction of |E|.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/route_stats.h"
#include "util/table_printer.h"

namespace atr {
namespace {

void Run() {
  PrintBenchHeader("bench_table4_route_size", "Table IV (Exp-7)");
  TablePrinter table(
      {"Dataset", "|E|", "Min size", "Max size", "Sum size", "Average size"});
  for (const DatasetSpec& spec : SocialProfileSpecs()) {
    const DatasetInstance data = MakeDataset(spec.name, BenchScale());
    const std::vector<uint32_t> sizes =
        ComputeAllRouteSizes(data.graph, data.decomposition);
    const RouteSizeStats stats = SummarizeRouteSizes(sizes);
    table.AddRow({spec.name, TablePrinter::FormatInt(data.graph.NumEdges()),
                  TablePrinter::FormatInt(stats.min_size),
                  TablePrinter::FormatInt(stats.max_size),
                  TablePrinter::FormatInt(stats.sum_size),
                  TablePrinter::FormatDouble(stats.average_size, 2)});
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper): min 0 everywhere; average a small constant "
      "(0.6-15); max a tiny fraction of |E|.\n");
}

}  // namespace
}  // namespace atr

int main() {
  atr::Run();
  return 0;
}
