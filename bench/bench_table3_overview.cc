// Exp-1 (Table III): dataset statistics, trussness gain of Rand/Sup/Tur/GAS
// at the default budget, and running time of BASE / BASE+ / GAS.
//
// BASE is only run on the smallest dataset (college), as in the paper where
// it exceeds three days everywhere else.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "core/base_greedy.h"
#include "core/base_plus.h"
#include "core/gas.h"
#include "core/random_baselines.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace atr {
namespace {

void Run() {
  PrintBenchHeader("bench_table3_overview", "Table III (Exp-1)");
  const uint32_t b = BenchBudget();
  const uint32_t trials = BenchTrials();
  const double scale = BenchScale();

  TablePrinter table({"Dataset", "|V|", "|E|", "k_max", "sup_max", "Rand",
                      "Sup", "Tur", "GAS", "BASE(s)", "BASE+(s)", "GAS(s)"});
  for (const DatasetSpec& spec : SocialProfileSpecs()) {
    const DatasetInstance data = MakeDataset(spec.name, scale);
    const Graph& g = data.graph;
    std::fprintf(stderr, "[table3] %s: |V|=%u |E|=%u\n", spec.name.c_str(),
                 g.NumVertices(), g.NumEdges());

    const RandomBaselineResult rand =
        RunRandomBaseline(g, RandomPoolKind::kAllEdges, {b}, trials, 1);
    const RandomBaselineResult sup =
        RunRandomBaseline(g, RandomPoolKind::kTopSupport, {b}, trials, 2);
    const RandomBaselineResult tur =
        RunRandomBaseline(g, RandomPoolKind::kTopRouteSize, {b}, trials, 3);

    std::string base_time = "-";
    if (spec.name == "college") {
      WallTimer timer;
      RunBaseGreedy(g, b);
      base_time = TablePrinter::FormatSeconds(timer.ElapsedSeconds());
    }
    WallTimer plus_timer;
    const AnchorResult plus = RunBasePlus(g, b);
    const double plus_seconds = plus_timer.ElapsedSeconds();
    WallTimer gas_timer;
    const AnchorResult gas = RunGas(g, b);
    const double gas_seconds = gas_timer.ElapsedSeconds();
    if (plus.total_gain != gas.total_gain) {
      std::fprintf(stderr, "WARNING: BASE+ and GAS disagree on %s\n",
                   spec.name.c_str());
    }

    table.AddRow({spec.name, TablePrinter::FormatInt(g.NumVertices()),
                  TablePrinter::FormatInt(g.NumEdges()),
                  TablePrinter::FormatInt(data.k_max),
                  TablePrinter::FormatInt(data.sup_max),
                  TablePrinter::FormatInt(rand.best_gain),
                  TablePrinter::FormatInt(sup.best_gain),
                  TablePrinter::FormatInt(tur.best_gain),
                  TablePrinter::FormatInt(gas.total_gain), base_time,
                  TablePrinter::FormatSeconds(plus_seconds),
                  TablePrinter::FormatSeconds(gas_seconds)});
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper): GAS gain >> Tur > Rand > Sup on most "
      "datasets; GAS time well below BASE+; BASE only feasible on college.\n");
}

}  // namespace
}  // namespace atr

int main() {
  atr::Run();
  return 0;
}
