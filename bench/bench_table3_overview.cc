// Exp-1 (Table III): dataset statistics, trussness gain of Rand/Sup/Tur/GAS
// at the default budget, and running time of BASE / BASE+ / GAS.
//
// BASE is only run on the smallest dataset (college), as in the paper where
// it exceeds three days everywhere else. All solvers run through one
// AtrEngine per dataset, so the randomized baselines and GAS share the
// dataset's truss decomposition.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "util/table_printer.h"

namespace atr {
namespace {

void Run() {
  PrintBenchHeader("bench_table3_overview", "Table III (Exp-1)");
  const uint32_t b = BenchBudget();
  const uint32_t trials = BenchTrials();
  const double scale = BenchScale();

  TablePrinter table({"Dataset", "|V|", "|E|", "k_max", "sup_max", "Rand",
                      "Sup", "Tur", "GAS", "BASE(s)", "BASE+(s)", "GAS(s)"});
  for (const DatasetSpec& spec : SocialProfileSpecs()) {
    const DatasetInstance data = MakeDataset(spec.name, scale);
    AtrEngine engine = MakeEngine(data);
    const Graph& g = engine.graph();
    std::fprintf(stderr, "[table3] %s: |V|=%u |E|=%u\n", spec.name.c_str(),
                 g.NumVertices(), g.NumEdges());

    SolverOptions random_options;
    random_options.budget = ClampBudget(b, g.NumEdges());
    random_options.trials = trials;
    random_options.seed = 1;
    const SolveResult rand = RunOrDie(engine, "rand", random_options);
    // Sup/Tur draw from the top-20% pool, a tighter ceiling on tiny graphs.
    random_options.budget = ClampBudget(b, BaselinePoolCap(g));
    random_options.seed = 2;
    const SolveResult sup = RunOrDie(engine, "sup", random_options);
    random_options.seed = 3;
    const SolveResult tur = RunOrDie(engine, "tur", random_options);

    SolverOptions greedy_options;
    greedy_options.budget = ClampBudget(b, g.NumEdges());
    std::string base_time = "-";
    if (spec.name == "college") {
      const SolveResult base = RunOrDie(engine, "base", greedy_options);
      base_time = TablePrinter::FormatSeconds(base.seconds);
    }
    const SolveResult plus = RunOrDie(engine, "base+", greedy_options);
    const SolveResult gas = RunOrDie(engine, "gas", greedy_options);
    if (plus.total_gain != gas.total_gain) {
      std::fprintf(stderr, "WARNING: BASE+ and GAS disagree on %s\n",
                   spec.name.c_str());
    }

    table.AddRow({spec.name, TablePrinter::FormatInt(g.NumVertices()),
                  TablePrinter::FormatInt(g.NumEdges()),
                  TablePrinter::FormatInt(data.k_max),
                  TablePrinter::FormatInt(data.sup_max),
                  TablePrinter::FormatInt(rand.total_gain),
                  TablePrinter::FormatInt(sup.total_gain),
                  TablePrinter::FormatInt(tur.total_gain),
                  TablePrinter::FormatInt(gas.total_gain), base_time,
                  TablePrinter::FormatSeconds(plus.seconds),
                  TablePrinter::FormatSeconds(gas.seconds)});
    BenchJsonRow("bench_table3_overview")
        .Add("dataset", spec.name)
        .AddInt("vertices", g.NumVertices())
        .AddInt("edges", g.NumEdges())
        .AddInt("k_max", data.k_max)
        .AddInt("sup_max", data.sup_max)
        .AddInt("rand_gain", static_cast<int64_t>(rand.total_gain))
        .AddInt("sup_gain", static_cast<int64_t>(sup.total_gain))
        .AddInt("tur_gain", static_cast<int64_t>(tur.total_gain))
        .AddInt("gas_gain", static_cast<int64_t>(gas.total_gain))
        .AddDouble("base_plus_seconds", plus.seconds)
        .AddDouble("gas_seconds", gas.seconds)
        .Emit();
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper): GAS gain >> Tur > Rand > Sup on most "
      "datasets; GAS time well below BASE+; BASE only feasible on college.\n");
}

}  // namespace
}  // namespace atr

int main(int argc, char** argv) {
  atr::ParseBenchFlags(argc, argv);
  atr::Run();
  return 0;
}
