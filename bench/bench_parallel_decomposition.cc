// Speedup of the round-synchronous parallel truss decomposition
// (truss/parallel_peel.h) over the serial Algorithm 1 peel on the Fig. 9
// scalability graphs (patents, pokec stand-ins) — the hot path PR 3
// parallelizes. Every parallel run is asserted byte-identical to the
// serial result before its time is reported, so the table can never show
// a "speedup" that changed the answer.
//
// --plan switches to the DecompositionPlan sweep: every plan
// (truss/plan.h) at a single thread against the serial oracle, reporting
// the flat SoA kernels' single-thread advantage (the PR 10 acceptance bar
// is > 2x for bsp on the Fig. 9 graphs). Rows carry
// config = "plan:<name>" so scripts/bench_diff.py tracks each plan as its
// own trajectory.
//
// Knobs:
//   ATR_BENCH_PAR_THREADS — comma-separated thread counts (default 1,2,4,8)
//   ATR_BENCH_PAR_REPS    — repetitions per configuration, best is kept
//                           (default 3)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "truss/decomposition.h"
#include "truss/parallel_peel.h"
#include "truss/plan.h"
#include "util/env.h"
#include "util/parallel_for.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace atr {
namespace {

std::vector<int> ThreadList() {
  const std::string spec = GetEnvString("ATR_BENCH_PAR_THREADS", "1,2,4,8");
  std::vector<int> threads;
  int value = 0;
  bool have_digit = false;
  for (const char ch : spec + ",") {
    if (ch >= '0' && ch <= '9') {
      value = value * 10 + (ch - '0');
      have_digit = true;
    } else {
      if (have_digit && value > 0) threads.push_back(value);
      value = 0;
      have_digit = false;
    }
  }
  if (threads.empty()) threads = {1, 2, 4, 8};
  return threads;
}

void ExpectIdentical(const TrussDecomposition& serial,
                     const TrussDecomposition& parallel, const char* dataset,
                     int threads) {
  if (serial.trussness != parallel.trussness ||
      serial.layer != parallel.layer ||
      serial.max_trussness != parallel.max_trussness) {
    std::fprintf(stderr,
                 "bench: parallel decomposition diverged from serial on %s "
                 "at %d threads\n",
                 dataset, threads);
    std::abort();
  }
}

template <typename Fn>
double BestSeconds(int reps, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    const double elapsed = timer.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

void Run() {
  PrintBenchHeader("bench_parallel_decomposition", "Fig. 9 hot path");
  const int reps = static_cast<int>(
      std::max<int64_t>(1, GetEnvInt64("ATR_BENCH_PAR_REPS", 3)));
  const std::vector<int> threads = ThreadList();
  std::printf("reps per configuration: %d (best kept)\n", reps);

  for (const char* name : {"patents", "pokec"}) {
    const DatasetInstance data = MakeDataset(name, BenchScale());
    const Graph& g = data.graph;
    std::printf("\ndataset %s (|V|=%u |E|=%u k_max=%u)\n", name,
                g.NumVertices(), g.NumEdges(), data.k_max);

    TrussDecomposition serial;
    const double serial_seconds = BestSeconds(
        reps, [&] { serial = ComputeTrussDecompositionSerial(g); });

    TablePrinter table({"Engine", "Threads", "ms", "speedup"});
    table.AddRow({"serial", "1",
                  TablePrinter::FormatDouble(serial_seconds * 1e3, 2),
                  "1.00"});
    BenchJsonRow json("bench_parallel_decomposition");
    json.Add("dataset", name)
        .Add("engine", "serial")
        .AddInt("threads", 1)
        .AddInt("edges", g.NumEdges())
        .AddDouble("ms", serial_seconds * 1e3)
        .AddDouble("speedup", 1.0)
        .Emit();
    for (const int t : threads) {
      ScopedParallelism parallelism(t);
      TrussDecomposition parallel;
      const double seconds = BestSeconds(
          reps, [&] { parallel = ComputeTrussDecompositionParallel(g); });
      ExpectIdentical(serial, parallel, name, t);
      table.AddRow({"parallel", std::to_string(t),
                    TablePrinter::FormatDouble(seconds * 1e3, 2),
                    TablePrinter::FormatDouble(serial_seconds / seconds, 2)});
      json.Add("dataset", name)
          .Add("engine", "parallel")
          .AddInt("threads", t)
          .AddInt("edges", g.NumEdges())
          .AddDouble("ms", seconds * 1e3)
          .AddDouble("speedup", serial_seconds / seconds)
          .Emit();
    }
    table.Print();
  }
  std::printf(
      "\nexpected shape: speedup grows with threads up to the physical core "
      "count; the acceptance bar is >= 3x at 8 threads on the largest "
      "Fig. 9 graph (pokec) on an 8-core host. Single-core containers "
      "report ~1x by construction — the byte-identical assertion is the "
      "hardware-independent signal.\n");
}

// The --plan sweep: every DecompositionPlan at one thread, byte-identity
// asserted against the serial oracle before any time is reported.
void RunPlanSweep() {
  PrintBenchHeader("bench_plan_sweep", "Fig. 9 hot path, plan kernels");
  const int reps = static_cast<int>(
      std::max<int64_t>(1, GetEnvInt64("ATR_BENCH_PAR_REPS", 3)));
  std::printf("reps per configuration: %d (best kept), 1 thread\n", reps);

  for (const char* name : {"patents", "pokec"}) {
    const DatasetInstance data = MakeDataset(name, BenchScale());
    const Graph& g = data.graph;
    std::printf("\ndataset %s (|V|=%u |E|=%u k_max=%u)\n", name,
                g.NumVertices(), g.NumEdges(), data.k_max);

    ScopedParallelism parallelism(1);
    TrussDecomposition serial;
    const double serial_seconds = BestSeconds(
        reps, [&] { serial = ComputeTrussDecompositionSerial(g); });

    TablePrinter table({"Plan", "ms", "speedup_vs_serial"});
    table.AddRow({"serial-oracle",
                  TablePrinter::FormatDouble(serial_seconds * 1e3, 2),
                  "1.00"});
    BenchJsonRow json("bench_plan_sweep");
    for (const DecompositionPlan& plan :
         {DecompositionPlan::Serial(), DecompositionPlan::Bsp(),
          DecompositionPlan::BspCoreThenTruss()}) {
      TrussDecomposition result;
      const double seconds = BestSeconds(reps, [&] {
        result = ComputeTrussDecompositionWithPlan(g, {}, plan);
      });
      ExpectIdentical(serial, result, name, 1);
      table.AddRow({plan.Name(), TablePrinter::FormatDouble(seconds * 1e3, 2),
                    TablePrinter::FormatDouble(serial_seconds / seconds, 2)});
      json.Add("dataset", name)
          .Add("config", "plan:" + plan.Name())
          .AddInt("threads", 1)
          .AddInt("edges", g.NumEdges())
          .AddDouble("ms", seconds * 1e3)
          .AddDouble("speedup_vs_serial", serial_seconds / seconds)
          .Emit();
    }
    table.Print();
  }
  std::printf(
      "\nexpected shape: the flat bsp kernels beat the serial bucket peel "
      "at one thread (acceptance bar > 2x on the Fig. 9 graphs); "
      "bsp-core-truss adds the k-core prefilter, which pays on graphs with "
      "a large triangle-free fringe.\n");
}

}  // namespace
}  // namespace atr

int main(int argc, char** argv) {
  atr::ParseBenchFlags(argc, argv);
  bool plan_sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--plan") == 0) plan_sweep = true;
  }
  if (plan_sweep) {
    atr::RunPlanSweep();
  } else {
    atr::Run();
  }
  return 0;
}
