#include "tree/component_tree.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "graph/triangles.h"
#include "util/macros.h"

namespace atr {
namespace {

// Union-find over edge ids with per-root pending-child node lists.
class EdgeUnionFind {
 public:
  explicit EdgeUnionFind(uint32_t m) : parent_(m), size_(m, 1), pending_(m) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  // Unions the classes of a and b; pending child lists are merged
  // small-to-large. Returns the surviving root.
  uint32_t Union(uint32_t a, uint32_t b) {
    uint32_t ra = Find(a);
    uint32_t rb = Find(b);
    if (ra == rb) return ra;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    if (!pending_[rb].empty()) {
      if (pending_[ra].size() < pending_[rb].size()) {
        pending_[ra].swap(pending_[rb]);
      }
      pending_[ra].insert(pending_[ra].end(), pending_[rb].begin(),
                          pending_[rb].end());
      pending_[rb].clear();
      pending_[rb].shrink_to_fit();
    }
    return ra;
  }

  std::vector<int32_t>& Pending(uint32_t root) { return pending_[root]; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  std::vector<std::vector<int32_t>> pending_;
};

}  // namespace

void TrussComponentTree::Build(const Graph& g,
                               const TrussDecomposition& decomp,
                               const std::vector<bool>& anchored) {
  const uint32_t m = g.NumEdges();
  ATR_CHECK(decomp.trussness.size() == m);
  nodes_.clear();
  edge_node_index_.assign(m, kNoTreeNode);
  edge_node_ids_.assign(m, kNoTreeNode);

  const bool has_anchors = !anchored.empty();
  auto is_anchored = [&](EdgeId e) { return has_anchors && anchored[e]; };

  // Bucket triangles by connection level: the min trussness among their
  // non-anchored edges (anchors belong to every truss level). Anchored
  // edges join the unions too — two triangles sharing only an anchored edge
  // are triangle-connected through it, so anchors act as bridges even
  // though they belong to no node themselves.
  const uint32_t kmax = decomp.max_trussness;
  std::vector<std::vector<std::pair<EdgeId, EdgeId>>> tri_buckets(kmax + 1);
  ForEachTriangle(g, [&](TriangleEdges t) {
    uint32_t kmin = kAnchoredTrussness;
    for (EdgeId e : {t.e1, t.e2, t.e3}) {
      if (!is_anchored(e)) kmin = std::min(kmin, decomp.trussness[e]);
    }
    // All-anchor triangles exist at every level; kmax is the highest level
    // where their bridging can matter.
    if (kmin == kAnchoredTrussness) kmin = kmax;
    if (kmin < 3) return;  // no nodes below level 3 can be connected
    ATR_DCHECK(kmin <= kmax);
    tri_buckets[kmin].emplace_back(t.e1, t.e2);
    tri_buckets[kmin].emplace_back(t.e1, t.e3);
  });

  // Per-level edge lists (ascending edge id within a level by construction).
  // Edges outside the decomposition's subset (trussness
  // kTrussnessNotComputed, e.g. removed by an incremental session) belong
  // to no node, like anchors; any triangle touching one was already dropped
  // above because its kmin is 0.
  std::vector<std::vector<EdgeId>> hull(kmax + 1);
  for (EdgeId e = 0; e < m; ++e) {
    if (is_anchored(e)) continue;
    const uint32_t t = decomp.trussness[e];
    if (t == kTrussnessNotComputed) continue;
    ATR_DCHECK(t >= 2 && t <= kmax);
    hull[t].push_back(e);
  }

  EdgeUnionFind uf(m);
  std::unordered_map<uint32_t, int32_t> level_nodes;  // UF root -> node index
  for (uint32_t k = kmax; k >= 3; --k) {
    for (const auto& [a, b] : tri_buckets[k]) uf.Union(a, b);
    if (hull[k].empty()) continue;
    level_nodes.clear();
    for (EdgeId e : hull[k]) {
      const uint32_t root = uf.Find(e);
      auto [it, inserted] =
          level_nodes.emplace(root, static_cast<int32_t>(nodes_.size()));
      if (inserted) {
        TrussTreeNode node;
        node.k = k;
        // Adopt the classes' previous top nodes as children.
        node.children = std::move(uf.Pending(root));
        nodes_.push_back(std::move(node));
      }
      nodes_[it->second].edges.push_back(e);
    }
    for (const auto& [root, node_index] : level_nodes) {
      TrussTreeNode& node = nodes_[node_index];
      node.id = node.edges.front();  // ascending push order
      for (int32_t child : node.children) nodes_[child].parent = node_index;
      std::vector<int32_t>& pending = uf.Pending(root);
      pending.clear();
      pending.push_back(node_index);
    }
  }

  // Trussness-2 edges: no triangles, one singleton node each.
  for (EdgeId e : hull[2]) {
    TrussTreeNode node;
    node.k = 2;
    node.id = e;
    node.edges.push_back(e);
    nodes_.push_back(std::move(node));
  }

  for (uint32_t idx = 0; idx < nodes_.size(); ++idx) {
    for (EdgeId e : nodes_[idx].edges) {
      edge_node_index_[e] = idx;
      edge_node_ids_[e] = nodes_[idx].id;
    }
  }
}

std::vector<EdgeId> TrussComponentTree::SubtreeEdges(
    uint32_t node_index) const {
  ATR_CHECK(node_index < nodes_.size());
  std::vector<EdgeId> out;
  std::vector<uint32_t> stack = {node_index};
  while (!stack.empty()) {
    const uint32_t idx = stack.back();
    stack.pop_back();
    const TrussTreeNode& node = nodes_[idx];
    out.insert(out.end(), node.edges.begin(), node.edges.end());
    for (int32_t child : node.children) {
      stack.push_back(static_cast<uint32_t>(child));
    }
  }
  return out;
}

void TrussComponentTree::CheckInvariants(
    const Graph& g, const TrussDecomposition& decomp,
    const std::vector<bool>& anchored) const {
  const uint32_t m = g.NumEdges();
  const bool has_anchors = !anchored.empty();
  std::vector<uint32_t> seen(m, 0);
  for (uint32_t idx = 0; idx < nodes_.size(); ++idx) {
    const TrussTreeNode& node = nodes_[idx];
    ATR_CHECK(!node.edges.empty());
    EdgeId min_edge = node.edges.front();
    for (EdgeId e : node.edges) {
      ATR_CHECK(decomp.trussness[e] == node.k);
      ATR_CHECK(edge_node_index_[e] == idx);
      min_edge = std::min(min_edge, e);
      ++seen[e];
    }
    ATR_CHECK(node.id == min_edge);
    if (node.parent >= 0) {
      const TrussTreeNode& parent = nodes_[node.parent];
      ATR_CHECK(parent.k < node.k);
      ATR_CHECK(std::find(parent.children.begin(), parent.children.end(),
                          static_cast<int32_t>(idx)) != parent.children.end());
    }
    for (int32_t child : node.children) {
      ATR_CHECK(nodes_[child].parent == static_cast<int32_t>(idx));
    }
  }
  for (EdgeId e = 0; e < m; ++e) {
    const bool nodeless =
        (has_anchors && anchored[e]) ||
        decomp.trussness[e] == kTrussnessNotComputed;
    ATR_CHECK(seen[e] == (nodeless ? 0u : 1u));
    if (nodeless) ATR_CHECK(edge_node_index_[e] == kNoTreeNode);
  }
}

}  // namespace atr
