// Truss-component tree (Algorithm 4 / §III-C of the paper).
//
// Every non-anchored edge belongs to exactly one tree node; all edges in a
// node share one trussness K, and the subgraph induced by the edges in the
// subtree rooted at a node is a K-truss component (a maximal
// triangle-connected K-truss). Nodes carry the paper's TN.I identifier — the
// smallest edge id in TN.E — which is the stable key the GAS reuse caches
// are indexed by: a node whose edge set is unchanged across greedy rounds
// keeps its id.
//
// Construction runs one triangle sweep bucketing each triangle at
// kmin = min trussness of its edges (anchored edges count as +inf, so an
// anchor-mediated triangle connects its two non-anchored edges — anchors are
// members of every truss level), then sweeps levels from k_max downward
// with a union-find dendrogram: unions at level k merge the classes'
// previous top nodes as children of the level-k node. O(m^1.5 α) total.
//
// Trussness-2 edges participate in no triangle and form singleton nodes.

#ifndef ATR_TREE_COMPONENT_TREE_H_
#define ATR_TREE_COMPONENT_TREE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

// Node-id sentinel for anchored edges (they belong to no node).
inline constexpr uint32_t kNoTreeNode = 0xffffffffu;

struct TrussTreeNode {
  // Trussness level K shared by all edges in this node.
  uint32_t k = 0;
  // TN.I: smallest edge id in `edges`.
  uint32_t id = 0;
  // Index of the parent node, or -1 for top-level nodes.
  int32_t parent = -1;
  std::vector<int32_t> children;
  // TN.E, ascending edge ids.
  std::vector<EdgeId> edges;
};

class TrussComponentTree {
 public:
  TrussComponentTree() = default;

  // (Re)builds the tree. `anchored` may be empty. `decomp` must belong to
  // the same anchor state.
  void Build(const Graph& g, const TrussDecomposition& decomp,
             const std::vector<bool>& anchored);

  const std::vector<TrussTreeNode>& nodes() const { return nodes_; }

  // Index into nodes() of the node containing `e`; kNoTreeNode for anchors.
  uint32_t NodeIndexOf(EdgeId e) const { return edge_node_index_[e]; }

  // TN.I of the node containing `e`; kNoTreeNode for anchors.
  uint32_t NodeIdOf(EdgeId e) const {
    const uint32_t idx = edge_node_index_[e];
    return idx == kNoTreeNode ? kNoTreeNode : nodes_[idx].id;
  }

  // Per-edge TN.I array (kNoTreeNode entries for anchors); the map
  // FollowerSearch::FollowersByNode consumes.
  const std::vector<uint32_t>& edge_node_ids() const { return edge_node_ids_; }

  // All edges in the subtree rooted at `node_index` (the K-truss component
  // of that node).
  std::vector<EdgeId> SubtreeEdges(uint32_t node_index) const;

  // Structural self-checks (used by tests): partition of non-anchored
  // edges, per-node uniform trussness, child K > parent K, id == min edge.
  // Aborts on violation.
  void CheckInvariants(const Graph& g, const TrussDecomposition& decomp,
                       const std::vector<bool>& anchored) const;

 private:
  std::vector<TrussTreeNode> nodes_;
  std::vector<uint32_t> edge_node_index_;  // EdgeId -> node index
  std::vector<uint32_t> edge_node_ids_;    // EdgeId -> TN.I
};

}  // namespace atr

#endif  // ATR_TREE_COMPONENT_TREE_H_
