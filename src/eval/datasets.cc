#include "eval/datasets.h"

#include <algorithm>

#include "graph/generators/social_profiles.h"
#include "graph/triangles.h"
#include "util/env.h"

namespace atr {

double BenchScale() { return GetEnvDouble("ATR_BENCH_SCALE", 0.2); }

uint32_t BenchBudget() {
  return static_cast<uint32_t>(GetEnvInt64("ATR_BENCH_B", 32));
}

uint32_t BenchTrials() {
  return static_cast<uint32_t>(GetEnvInt64("ATR_BENCH_TRIALS", 120));
}

DatasetInstance MakeDataset(const std::string& name, double scale) {
  DatasetInstance instance;
  instance.name = name;
  instance.graph = MakeSocialProfile(name, scale, /*seed=*/0);
  instance.decomposition = ComputeTrussDecomposition(instance.graph);
  instance.k_max = instance.decomposition.max_trussness;
  uint32_t sup_max = 0;
  for (uint32_t s : ComputeSupport(instance.graph)) {
    sup_max = std::max(sup_max, s);
  }
  instance.sup_max = sup_max;
  return instance;
}

std::vector<DatasetInstance> MakeBenchmarkDatasets(double scale, int limit) {
  std::vector<DatasetInstance> out;
  int built = 0;
  for (const DatasetSpec& spec : SocialProfileSpecs()) {
    if (limit > 0 && built >= limit) break;
    out.push_back(MakeDataset(spec.name, scale));
    ++built;
  }
  return out;
}

}  // namespace atr
