// Benchmark dataset registry: instantiates the synthetic SNAP stand-ins at
// the scale requested via environment knobs and computes the Table III
// statistics columns (|V|, |E|, k_max, sup_max).

#ifndef ATR_EVAL_DATASETS_H_
#define ATR_EVAL_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

struct DatasetInstance {
  std::string name;
  Graph graph;
  TrussDecomposition decomposition;  // no anchors
  uint32_t k_max = 0;
  uint32_t sup_max = 0;
};

// Effective benchmark knobs (each printed by the benches that use them):
//   ATR_BENCH_SCALE  — dataset size multiplier (default 0.2)
//   ATR_BENCH_B      — anchor budget b (default 32; paper: 100)
//   ATR_BENCH_TRIALS — randomized-baseline trials (default 120; paper: 2000)
double BenchScale();
uint32_t BenchBudget();
uint32_t BenchTrials();

// Builds dataset `name` at the given scale and decomposes it.
DatasetInstance MakeDataset(const std::string& name, double scale);

// All eight stand-ins, in the paper's Table III order. When `limit` > 0,
// only the `limit` smallest datasets are built (for quicker harness runs).
std::vector<DatasetInstance> MakeBenchmarkDatasets(double scale,
                                                   int limit = 0);

}  // namespace atr

#endif  // ATR_EVAL_DATASETS_H_
