// Upward-route size statistics (the paper's Table IV): for each edge taken
// as an anchor, the number of candidate edges its upward routes reach.

#ifndef ATR_EVAL_ROUTE_STATS_H_
#define ATR_EVAL_ROUTE_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

struct RouteSizeStats {
  uint32_t min_size = 0;
  uint32_t max_size = 0;
  uint64_t sum_size = 0;
  double average_size = 0.0;  // sum / |E|
};

// Route size of every edge (parallelized).
std::vector<uint32_t> ComputeAllRouteSizes(const Graph& g,
                                           const TrussDecomposition& decomp);

RouteSizeStats SummarizeRouteSizes(const std::vector<uint32_t>& sizes);

}  // namespace atr

#endif  // ATR_EVAL_ROUTE_STATS_H_
