#include "eval/route_stats.h"

#include <algorithm>

#include "route/follower_search.h"
#include "util/parallel_for.h"

namespace atr {

std::vector<uint32_t> ComputeAllRouteSizes(const Graph& g,
                                           const TrussDecomposition& decomp) {
  std::vector<uint32_t> sizes(g.NumEdges(), 0);
  ParallelFor(g.NumEdges(), [&](int64_t begin, int64_t end) {
    FollowerSearch search(g);
    search.SetState(&decomp, nullptr);
    for (int64_t i = begin; i < end; ++i) {
      sizes[i] = search.RouteSize(static_cast<EdgeId>(i));
    }
  });
  return sizes;
}

RouteSizeStats SummarizeRouteSizes(const std::vector<uint32_t>& sizes) {
  RouteSizeStats stats;
  if (sizes.empty()) return stats;
  stats.min_size = sizes.front();
  for (uint32_t s : sizes) {
    stats.min_size = std::min(stats.min_size, s);
    stats.max_size = std::max(stats.max_size, s);
    stats.sum_size += s;
  }
  stats.average_size =
      static_cast<double>(stats.sum_size) / static_cast<double>(sizes.size());
  return stats;
}

}  // namespace atr
