// Per-graph delta log: every UpdateGraph appends one checksummed record,
// so the durable state of a graph is  base snapshot ⊕ logged deltas.
//
// Record layout (little-endian, appended back to back):
//
//   u32 payload_len
//   u32 payload_crc32    CRC-32 (IEEE) of the payload bytes
//   payload:
//     u64 version        the version this delta PRODUCED (base + k)
//     u32 add_count,    (u32 u, u32 v) * add_count
//     u32 remove_count, (u32 u, u32 v) * remove_count
//
// Reads are crash-tolerant: a record whose length field, bytes, or
// checksum are cut off mid-append (the process died between write and
// fsync) terminates the replay cleanly — everything before the torn tail
// is served, the tail is reported so the caller can truncate it. A
// corrupt record mid-log is indistinguishable from a torn tail and is
// treated the same way; records never straddle it. Nothing in here may
// crash on hostile bytes (fuzz/fuzz_persist.cc drives this decoder).

#ifndef ATR_PERSIST_DELTA_LOG_H_
#define ATR_PERSIST_DELTA_LOG_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace atr {
namespace persist {

// One logged update: the delta plus the version it produced.
struct DeltaRecord {
  uint64_t version = 0;
  GraphDelta delta;
};

// Serializes one record (length + crc + payload).
std::vector<uint8_t> EncodeDeltaRecord(uint64_t version,
                                       const GraphDelta& delta);

// Parse result of a whole log image.
struct DeltaLogContents {
  std::vector<DeltaRecord> records;  // every intact record, in file order
  // Bytes of torn/corrupt tail that were ignored (0 = clean log). The
  // owner may truncate the file to drop them.
  size_t tail_bytes_dropped = 0;
};

// Decodes a delta-log image. Never fails on truncation/corruption — the
// torn tail is dropped and reported (see header comment); the only hard
// errors are per-record internal inconsistencies that a crash cannot
// produce mid-record (none currently), so the return is always Ok-shaped
// data. Callers that require a clean log check tail_bytes_dropped.
DeltaLogContents DecodeDeltaLog(std::span<const uint8_t> bytes);

// Append-mode writer with fsync-per-record durability: Append returns
// only after the record's bytes are flushed and fsync'd, so a crash can
// tear at most the record being written — exactly what DecodeDeltaLog
// tolerates.
class DeltaLogWriter {
 public:
  DeltaLogWriter() = default;
  ~DeltaLogWriter() { Close(); }

  DeltaLogWriter(const DeltaLogWriter&) = delete;
  DeltaLogWriter& operator=(const DeltaLogWriter&) = delete;

  // Opens `path` for appending (creating it when absent).
  Status Open(const std::string& path);

  bool is_open() const { return file_ != nullptr; }

  // Appends one record durably (write + flush + fsync).
  Status Append(uint64_t version, const GraphDelta& delta);

  void Close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace persist
}  // namespace atr

#endif  // ATR_PERSIST_DELTA_LOG_H_
