#include "persist/delta_log.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/binary_io.h"

namespace atr {
namespace persist {
namespace {

void WriteEndpointVector(ByteWriter& writer,
                         const std::vector<EdgeEndpoints>& edges) {
  writer.WriteU32(static_cast<uint32_t>(edges.size()));
  for (const EdgeEndpoints& e : edges) {
    writer.WriteU32(e.u);
    writer.WriteU32(e.v);
  }
}

bool ReadEndpointVector(ByteReader& reader, std::vector<EdgeEndpoints>* out) {
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) return false;
  if (reader.remaining() / 8 < count) return false;
  out->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    reader.ReadU32(&(*out)[i].u);
    reader.ReadU32(&(*out)[i].v);
  }
  return reader.ok();
}

}  // namespace

std::vector<uint8_t> EncodeDeltaRecord(uint64_t version,
                                       const GraphDelta& delta) {
  ByteWriter payload;
  payload.WriteU64(version);
  WriteEndpointVector(payload, delta.add);
  WriteEndpointVector(payload, delta.remove);

  ByteWriter out;
  out.WriteU32(static_cast<uint32_t>(payload.size()));
  out.WriteU32(Crc32(payload.buffer().data(), payload.size()));
  out.WriteBytes(payload.buffer().data(), payload.size());
  return out.TakeBuffer();
}

DeltaLogContents DecodeDeltaLog(std::span<const uint8_t> bytes) {
  DeltaLogContents contents;
  size_t pos = 0;
  while (pos < bytes.size()) {
    ByteReader header(bytes.data() + pos, bytes.size() - pos);
    uint32_t payload_len = 0, crc = 0;
    if (!header.ReadU32(&payload_len) || !header.ReadU32(&crc) ||
        header.remaining() < payload_len) {
      break;  // torn tail: the record being appended when the crash hit
    }
    const uint8_t* payload = bytes.data() + pos + header.position();
    if (Crc32(payload, payload_len) != crc) {
      break;  // corrupt bytes: same treatment as a torn tail
    }
    ByteReader reader(payload, payload_len);
    DeltaRecord record;
    if (!reader.ReadU64(&record.version) ||
        !ReadEndpointVector(reader, &record.delta.add) ||
        !ReadEndpointVector(reader, &record.delta.remove) ||
        reader.remaining() != 0) {
      break;  // checksum passed but the payload shape is wrong: stop here
    }
    contents.records.push_back(std::move(record));
    pos += 8 + payload_len;
  }
  contents.tail_bytes_dropped = bytes.size() - pos;
  return contents;
}

Status DeltaLogWriter::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("DeltaLogWriter: fopen(" + path +
                            ") failed: " + std::strerror(errno));
  }
  path_ = path;
  return Status::Ok();
}

Status DeltaLogWriter::Append(uint64_t version, const GraphDelta& delta) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("DeltaLogWriter: Append before Open");
  }
  const std::vector<uint8_t> record = EncodeDeltaRecord(version, delta);
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size() ||
      std::fflush(file_) != 0) {
    return Status::Internal("DeltaLogWriter: short write to " + path_ + ": " +
                            std::strerror(errno));
  }
  if (::fsync(::fileno(file_)) != 0) {
    return Status::Internal("DeltaLogWriter: fsync(" + path_ +
                            ") failed: " + std::strerror(errno));
  }
  return Status::Ok();
}

void DeltaLogWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  path_.clear();
}

}  // namespace persist
}  // namespace atr
