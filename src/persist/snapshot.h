// Base snapshot files: one graph version (CSR topology + its truss
// decomposition) as a single checksummed, versioned binary blob.
//
// A snapshot is the "base" of a graph's durable state; deltas appended
// after it live in the per-graph delta log (persist/delta_log.h), and
// compaction folds log + base into a fresh snapshot (persist/catalog.h).
// Restoring a snapshot hands back the EXACT decomposition bytes that were
// saved — a restarted server serves the catalog with zero recomputation.
//
// On-disk layout (all little-endian, see docs/PROTOCOL.md):
//
//   u32 magic            "ATRS" (0x53525441)
//   u32 format_version   1
//   u32 payload_crc32    CRC-32 (IEEE) of the payload bytes
//   u32 payload_len      payload size in bytes
//   payload:
//     string graph_name  (u32 length + bytes)
//     u64    version     snapshot version (AtrService version counter)
//     graph              Graph::SerializeTo
//     decomposition      SerializeTrussDecomposition
//
// Decoding is a hard validation boundary: snapshot files can arrive
// truncated (crash mid-write is prevented by write-temp-then-rename, but
// disks and operators do worse things) or corrupt, and every failure mode
// must come back as a Status, never a crash. The fuzz harness
// (fuzz/fuzz_persist.cc) drives arbitrary bytes through DecodeSnapshot.

#ifndef ATR_PERSIST_SNAPSHOT_H_
#define ATR_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "truss/decomposition.h"
#include "util/status.h"

namespace atr {
namespace persist {

inline constexpr uint32_t kSnapshotMagic = 0x53525441u;  // "ATRS"
inline constexpr uint32_t kSnapshotFormatVersion = 1;

// One decoded snapshot: a graph version and its decomposition, exactly as
// saved.
struct SnapshotRecord {
  std::string graph_name;
  uint64_t version = 1;
  Graph graph;
  TrussDecomposition decomposition;
};

// Serializes a snapshot blob (header + checksummed payload).
std::vector<uint8_t> EncodeSnapshot(const std::string& graph_name,
                                    uint64_t version, const Graph& graph,
                                    const TrussDecomposition& decomposition);

// Decodes and fully validates a snapshot blob: magic, format version,
// length, checksum, then the graph and decomposition sections (including
// the decomposition/graph shape cross-check). kInvalidArgument on any
// mismatch.
StatusOr<SnapshotRecord> DecodeSnapshot(std::span<const uint8_t> bytes);

// --- Crash-safe file helpers ---------------------------------------------

// Writes `bytes` to `path` via write-temp-then-rename: the temp file is
// written and fsync'd, renamed over `path`, and the containing directory
// fsync'd — readers see either the old file or the complete new one,
// never a torn write.
Status WriteFileAtomic(const std::string& path,
                       std::span<const uint8_t> bytes);

// Whole-file read. kNotFound when the file does not exist.
StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

}  // namespace persist
}  // namespace atr

#endif  // ATR_PERSIST_SNAPSHOT_H_
