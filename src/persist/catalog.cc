#include "persist/catalog.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <functional>
#include <utility>

namespace atr {
namespace persist {
namespace {

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".atrsnap";
constexpr char kDeltaLogName[] = "deltas.log";

// Parses "snapshot-<version>.atrsnap"; returns 0 (never a valid version)
// on anything else.
uint64_t ParseSnapshotVersion(const std::string& file_name) {
  const size_t prefix_len = sizeof(kSnapshotPrefix) - 1;
  const size_t suffix_len = sizeof(kSnapshotSuffix) - 1;
  if (file_name.size() <= prefix_len + suffix_len) return 0;
  if (file_name.compare(0, prefix_len, kSnapshotPrefix) != 0) return 0;
  if (file_name.compare(file_name.size() - suffix_len, suffix_len,
                        kSnapshotSuffix) != 0) {
    return 0;
  }
  uint64_t version = 0;
  for (size_t i = prefix_len; i < file_name.size() - suffix_len; ++i) {
    const char c = file_name[i];
    if (c < '0' || c > '9') return 0;
    if (version > (UINT64_MAX - (c - '0')) / 10) return 0;
    version = version * 10 + (c - '0');
  }
  return version;
}

Status MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return Status::Ok();
  return Status::Internal("mkdir(" + path +
                          ") failed: " + std::strerror(errno));
}

// Versions (descending) of every snapshot file in `dir`.
std::vector<uint64_t> SnapshotVersionsIn(const std::string& dir) {
  std::vector<uint64_t> versions;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return versions;
  while (dirent* entry = ::readdir(d)) {
    const uint64_t v = ParseSnapshotVersion(entry->d_name);
    if (v > 0) versions.push_back(v);
  }
  ::closedir(d);
  std::sort(versions.rbegin(), versions.rend());
  return versions;
}

}  // namespace

// --- CatalogStore ---------------------------------------------------------

bool CatalogStore::ValidGraphName(const std::string& name) {
  if (name.empty() || name.size() > 128 || name[0] == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string CatalogStore::GraphDir(const std::string& name) const {
  return root_ + "/" + name;
}

std::string CatalogStore::SnapshotPath(const std::string& name,
                                       uint64_t version) const {
  return GraphDir(name) + "/" + kSnapshotPrefix + std::to_string(version) +
         kSnapshotSuffix;
}

std::string CatalogStore::DeltaLogPath(const std::string& name) const {
  return GraphDir(name) + "/" + kDeltaLogName;
}

Status CatalogStore::Init() {
  // mkdir -p: create each component of the root path in turn.
  std::string prefix;
  size_t start = 0;
  while (start <= root_.size()) {
    size_t slash = root_.find('/', start);
    if (slash == std::string::npos) slash = root_.size();
    prefix = root_.substr(0, slash);
    start = slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    Status made = MakeDir(prefix);
    if (!made.ok()) return made;
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> CatalogStore::ListGraphNames() const {
  std::vector<std::string> names;
  DIR* d = ::opendir(root_.c_str());
  if (d == nullptr) {
    return Status::Internal("CatalogStore: opendir(" + root_ +
                            ") failed: " + std::strerror(errno));
  }
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (!ValidGraphName(name)) continue;
    if (!SnapshotVersionsIn(GraphDir(name)).empty()) names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<CatalogStore::LoadedGraph> CatalogStore::Load(
    const std::string& name) {
  if (!ValidGraphName(name)) {
    return Status::InvalidArgument("CatalogStore: invalid graph name \"" +
                                   name + "\"");
  }
  // Newest decodable base wins; older bases exist only in the window
  // between a compaction's snapshot write and its old-file cleanup (or
  // after on-disk corruption), and are the fallback.
  const std::vector<uint64_t> versions = SnapshotVersionsIn(GraphDir(name));
  if (versions.empty()) {
    return Status::NotFound("CatalogStore: no snapshot for graph \"" + name +
                            "\"");
  }
  LoadedGraph loaded;
  Status last_error = Status::Ok();
  bool decoded = false;
  for (const uint64_t version : versions) {
    StatusOr<std::vector<uint8_t>> bytes =
        ReadFileBytes(SnapshotPath(name, version));
    if (!bytes.ok()) {
      last_error = bytes.status();
      continue;
    }
    StatusOr<SnapshotRecord> record = DecodeSnapshot(*bytes);
    if (!record.ok()) {
      last_error = record.status();
      continue;
    }
    loaded.base = *std::move(record);
    decoded = true;
    break;
  }
  if (!decoded) {
    return Status::InvalidArgument(
        "CatalogStore: every snapshot of graph \"" + name +
        "\" is unreadable; last error: " + last_error.message());
  }

  StatusOr<std::vector<uint8_t>> log_bytes = ReadFileBytes(DeltaLogPath(name));
  if (log_bytes.ok()) {
    DeltaLogContents contents = DecodeDeltaLog(*log_bytes);
    loaded.log_tail_dropped = contents.tail_bytes_dropped;
    uint64_t expect = loaded.base.version + 1;
    for (DeltaRecord& record : contents.records) {
      if (record.version <= loaded.base.version) continue;  // pre-compaction
      if (record.version != expect) break;  // gap: stop replaying here
      loaded.deltas.push_back(std::move(record));
      ++expect;
    }
  } else if (log_bytes.status().code() != StatusCode::kNotFound) {
    return log_bytes.status();
  }
  return loaded;
}

Status CatalogStore::SaveBaseSnapshot(const std::string& name,
                                      uint64_t version, const Graph& graph,
                                      const TrussDecomposition& decomposition) {
  if (!ValidGraphName(name)) {
    return Status::InvalidArgument("CatalogStore: invalid graph name \"" +
                                   name + "\"");
  }
  Status made = MakeDir(GraphDir(name));
  if (!made.ok()) return made;

  const std::vector<uint8_t> bytes =
      EncodeSnapshot(name, version, graph, decomposition);
  Status wrote = WriteFileAtomic(SnapshotPath(name, version), bytes);
  if (!wrote.ok()) return wrote;

  // The new base is durable; the log it subsumes resets to empty. A crash
  // between the two leaves stale records at or below the base version,
  // which Load() skips.
  {
    // Drop the open append handle before the swap.
    MutexLock lock(&writers_mu_);
    writers_.erase(name);
  }
  Status reset = WriteFileAtomic(DeltaLogPath(name), {});
  if (!reset.ok()) return reset;

  for (const uint64_t old : SnapshotVersionsIn(GraphDir(name))) {
    if (old != version) ::unlink(SnapshotPath(name, old).c_str());
  }
  return Status::Ok();
}

DeltaLogWriter* CatalogStore::Writer(const std::string& name) {
  {
    MutexLock lock(&writers_mu_);
    auto it = writers_.find(name);
    if (it != writers_.end()) return it->second.get();
  }
  // Open outside the lock: one graph's slow open must not stall appends
  // to every other graph. The caller's per-graph exclusion means no other
  // thread races THIS name into the map.
  auto writer = std::make_unique<DeltaLogWriter>();
  if (!writer->Open(DeltaLogPath(name)).ok()) return nullptr;
  MutexLock lock(&writers_mu_);
  return writers_.emplace(name, std::move(writer)).first->second.get();
}

Status CatalogStore::AppendDelta(const std::string& name, uint64_t version,
                                 const GraphDelta& delta) {
  if (!ValidGraphName(name)) {
    return Status::InvalidArgument("CatalogStore: invalid graph name \"" +
                                   name + "\"");
  }
  DeltaLogWriter* writer = Writer(name);
  if (writer == nullptr) {
    return Status::Internal("CatalogStore: cannot open delta log for \"" +
                            name + "\"");
  }
  return writer->Append(version, delta);
}

Status CatalogStore::RewriteDeltaLog(const std::string& name,
                                     const std::vector<DeltaRecord>& records) {
  std::vector<uint8_t> bytes;
  for (const DeltaRecord& record : records) {
    const std::vector<uint8_t> one =
        EncodeDeltaRecord(record.version, record.delta);
    bytes.insert(bytes.end(), one.begin(), one.end());
  }
  {
    MutexLock lock(&writers_mu_);
    writers_.erase(name);
  }
  return WriteFileAtomic(DeltaLogPath(name), bytes);
}

// --- PersistentCatalog ----------------------------------------------------

PersistentCatalog::PersistentCatalog(AtrService& service, Options options)
    : service_(service), options_(std::move(options)), store_(options_.root_dir) {}

PersistentCatalog::~PersistentCatalog() {
  // The listener captures `this`; detach before the store goes away.
  service_.SetUpdateListener(nullptr);
}

Status PersistentCatalog::Open() {
  Status init = store_.Init();
  if (!init.ok()) return init;

  StatusOr<std::vector<std::string>> names = store_.ListGraphNames();
  if (!names.ok()) return names.status();
  for (const std::string& name : *names) {
    Status restored = RestoreOne(name);
    if (!restored.ok()) {
      // A graph whose files are beyond repair is skipped, not fatal: the
      // rest of the catalog still serves. The files stay on disk for
      // forensics; re-adding the name writes a fresh base.
      ++restore_stats_.graphs_failed;
    }
  }

  // From here on, every UpdateGraph persists its delta before publishing.
  service_.SetUpdateListener(
      [this](const std::string& name, uint64_t version,
             const GraphDelta& delta) {
        return store_.AppendDelta(name, version, delta);
      });
  return Status::Ok();
}

Status PersistentCatalog::RestoreOne(const std::string& name) {
  StatusOr<CatalogStore::LoadedGraph> loaded = store_.Load(name);
  if (!loaded.ok()) return loaded.status();

  Status restored = service_.RestoreGraph(
      name, std::make_shared<const Graph>(std::move(loaded->base.graph)),
      std::move(loaded->base.decomposition), loaded->base.version,
      /*delta_chain_length=*/0);
  if (!restored.ok()) return restored;
  ++restore_stats_.graphs_restored;

  // Replay the log through the normal incremental-update path (the
  // listener is not installed yet, so nothing is re-appended). Each step
  // seeds from its predecessor — still zero decomposition builds.
  for (const DeltaRecord& record : loaded->deltas) {
    StatusOr<GraphSnapshot> updated = service_.UpdateGraph(name, record.delta);
    if (!updated.ok()) return updated.status();
    if (updated->version != record.version) {
      return Status::Internal(
          "restore of \"" + name + "\": replayed version " +
          std::to_string(updated->version) + " does not match logged " +
          std::to_string(record.version));
    }
    ++restore_stats_.deltas_replayed;
  }

  if (loaded->log_tail_dropped > 0) {
    // Drop the torn tail on disk too, so later appends extend an intact
    // log instead of burying records behind garbage.
    Status rewritten = store_.RewriteDeltaLog(name, loaded->deltas);
    if (!rewritten.ok()) return rewritten;
    ++restore_stats_.torn_tails_truncated;
  }
  return Status::Ok();
}

Mutex& PersistentCatalog::StripeFor(const std::string& name) {
  return stripes_[std::hash<std::string>{}(name) % kLockStripes];
}

Status PersistentCatalog::AddGraph(const std::string& name, Graph graph) {
  if (!CatalogStore::ValidGraphName(name)) {
    return Status::InvalidArgument("PersistentCatalog: invalid graph name \"" +
                                   name + "\"");
  }
  MutexLock lock(&StripeFor(name));
  Status added = service_.AddGraph(name, std::move(graph));
  if (!added.ok()) return added;
  // Pay the one build now; the base snapshot needs the decomposition and a
  // restart must never recompute it.
  StatusOr<GraphSnapshot> snapshot = service_.Snapshot(name);
  if (!snapshot.ok()) return snapshot.status();
  return store_.SaveBaseSnapshot(name, snapshot->version, *snapshot->graph,
                                 *snapshot->decomposition);
}

StatusOr<GraphSnapshot> PersistentCatalog::UpdateGraph(
    const std::string& name, const GraphDelta& delta) {
  MutexLock lock(&StripeFor(name));
  StatusOr<GraphSnapshot> updated = service_.UpdateGraph(name, delta);
  if (!updated.ok()) return updated;
  if (options_.compact_threshold > 0) {
    StatusOr<AtrService::GraphInfo> info = service_.Info(name);
    if (info.ok() && info->delta_chain_length >= options_.compact_threshold) {
      Status compacted = CompactLocked(name);
      if (!compacted.ok()) return compacted;
    }
  }
  return updated;
}

Status PersistentCatalog::Compact(const std::string& name) {
  MutexLock lock(&StripeFor(name));
  return CompactLocked(name);
}

Status PersistentCatalog::CompactLocked(const std::string& name) {
  StatusOr<GraphSnapshot> snapshot = service_.Snapshot(name);
  if (!snapshot.ok()) return snapshot.status();
  Status saved = store_.SaveBaseSnapshot(name, snapshot->version,
                                         *snapshot->graph,
                                         *snapshot->decomposition);
  if (!saved.ok()) return saved;
  return service_.ResetDeltaChain(name);
}

Status PersistentCatalog::PersistAll() {
  Status first_error = Status::Ok();
  for (const std::string& name : service_.GraphNames()) {
    if (!CatalogStore::ValidGraphName(name)) continue;  // not persisted
    MutexLock lock(&StripeFor(name));
    Status compacted = CompactLocked(name);
    if (!compacted.ok() && first_error.ok()) first_error = compacted;
  }
  return first_error;
}

}  // namespace persist
}  // namespace atr
