// Durable catalog state: base snapshots + delta logs per graph, glued to
// an AtrService so a restarted process resumes serving every graph at its
// latest version without recomputing a single decomposition.
//
// On-disk layout under one root directory:
//
//   <root>/<graph>/snapshot-<version>.atrsnap   base (persist/snapshot.h)
//   <root>/<graph>/deltas.log                   appended per UpdateGraph
//
// Write path (PersistentCatalog):
//   * AddGraph computes the one decomposition and writes base snapshot v1.
//   * UpdateGraph goes through the service's write-ahead update listener:
//     the delta record is appended (fsync'd) BEFORE the new version is
//     published, so every served version is covered by base ⊕ log.
//   * Compaction folds the chain into a fresh base snapshot
//     (write-temp-then-rename), resets the log, and resets the service's
//     delta_chain_length counter; it runs automatically once a chain
//     exceeds Options::compact_threshold, and for every graph on graceful
//     shutdown (PersistAll — the persist-on-stop half of the
//     persist-on-stop / reload-on-start idiom).
//
// Restore path (Open on a non-empty root):
//   * the newest valid base snapshot is loaded per graph (a corrupt or
//     torn newest base falls back to the previous one, which compaction
//     deletes only after the new base and log reset are durable),
//   * the graph is installed via AtrService::RestoreGraph — born built,
//     decomposition_builds stays 0,
//   * logged deltas beyond the base version are replayed through
//     AtrService::UpdateGraph, which seeds each version incrementally
//     from its predecessor (still no rebuild), and a torn log tail from a
//     mid-append crash is dropped and truncated away.
//
// Thread-safety: PersistentCatalog serializes mutating calls (AddGraph /
// UpdateGraph / Compact) PER GRAPH behind striped locks, so updates to
// different graphs persist in parallel — matching the service's sharded
// catalog. PersistAll takes each graph's stripe in turn. Mutate cataloged
// graphs ONLY through it — calling AtrService::UpdateGraph directly on a
// persisted graph would still log the delta (the listener fires) but
// could interleave with a concurrent compaction's log reset and lose the
// record.

#ifndef ATR_PERSIST_CATALOG_H_
#define ATR_PERSIST_CATALOG_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/service.h"
#include "persist/delta_log.h"
#include "persist/snapshot.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace atr {
namespace persist {

// Disk-layout half: file and directory operations, no service knowledge.
// Per-graph exclusion is the caller's job (PersistentCatalog's striped
// locks, or a test); the open-writer table itself is internally
// synchronized so operations on DIFFERENT graphs may run concurrently.
class CatalogStore {
 public:
  explicit CatalogStore(std::string root) : root_(std::move(root)) {}

  // Graph names double as directory names, so the charset is restricted:
  // [A-Za-z0-9_.-], 1..128 chars, no leading '.'. Everything arriving
  // over the wire goes through this before touching the filesystem.
  static bool ValidGraphName(const std::string& name);

  const std::string& root() const { return root_; }

  // Creates the root directory (parents included) when absent.
  Status Init();

  // Graph directories under the root that hold at least one snapshot file.
  StatusOr<std::vector<std::string>> ListGraphNames() const;

  struct LoadedGraph {
    SnapshotRecord base;
    std::vector<DeltaRecord> deltas;   // versions > base.version, ascending
    size_t log_tail_dropped = 0;       // torn tail bytes ignored (pre-truncate)
  };

  // Loads `name`: newest decodable base snapshot + the intact delta
  // records beyond it. Delta records at or below the base version (a
  // crash between compaction's snapshot rename and log reset) are
  // skipped; a version gap ends the replay list. kNotFound when no valid
  // snapshot exists.
  StatusOr<LoadedGraph> Load(const std::string& name);

  // Writes the base snapshot for `version` crash-safely, resets the delta
  // log to empty, then deletes older snapshot files. Order matters: the
  // new base is durable before the log (whose records it subsumes) and
  // the old base disappear.
  Status SaveBaseSnapshot(const std::string& name, uint64_t version,
                          const Graph& graph,
                          const TrussDecomposition& decomposition);

  // Appends one delta record durably (fsync before returning).
  Status AppendDelta(const std::string& name, uint64_t version,
                     const GraphDelta& delta);

  // Rewrites `name`'s delta log to exactly `records` (used to truncate a
  // torn tail discovered during Load).
  Status RewriteDeltaLog(const std::string& name,
                         const std::vector<DeltaRecord>& records);

 private:
  std::string GraphDir(const std::string& name) const;
  std::string SnapshotPath(const std::string& name, uint64_t version) const;
  std::string DeltaLogPath(const std::string& name) const;
  DeltaLogWriter* Writer(const std::string& name);

  std::string root_;
  // Guards the writers_ MAP (lookup / insert / erase), not the writers:
  // append I/O on one graph's writer happens outside the lock, relying on
  // the caller's per-graph exclusion.
  Mutex writers_mu_;
  std::map<std::string, std::unique_ptr<DeltaLogWriter>> writers_
      ATR_GUARDED_BY(writers_mu_);
};

// Service glue: restore-on-open, write-ahead delta logging, compaction.
class PersistentCatalog {
 public:
  struct Options {
    std::string root_dir;
    // Auto-compact a graph once its delta chain reaches this many
    // records; 0 disables auto-compaction (PersistAll still compacts).
    uint64_t compact_threshold = 64;
  };

  PersistentCatalog(AtrService& service, Options options);
  ~PersistentCatalog();

  PersistentCatalog(const PersistentCatalog&) = delete;
  PersistentCatalog& operator=(const PersistentCatalog&) = delete;

  struct RestoreStats {
    size_t graphs_restored = 0;
    size_t deltas_replayed = 0;
    size_t torn_tails_truncated = 0;
    size_t graphs_failed = 0;  // undecodable graphs skipped (left on disk)
  };

  // Initializes the store, restores every stored graph into the service
  // (zero decomposition builds), and installs the write-ahead update
  // listener. Call once, before the service takes traffic.
  Status Open();

  const RestoreStats& restore_stats() const { return restore_stats_; }

  // Registers a NEW graph: adds it to the service, pays its one
  // decomposition build, and writes base snapshot v1.
  Status AddGraph(const std::string& name, Graph graph);

  // UpdateGraph through the service (the listener persists the delta
  // before publication), then auto-compacts when the chain is long.
  StatusOr<GraphSnapshot> UpdateGraph(const std::string& name,
                                      const GraphDelta& delta);

  // Folds `name`'s chain into a fresh base snapshot at the current
  // version and resets its delta log + chain counter.
  Status Compact(const std::string& name);

  // Compacts every cataloged graph — the persist-on-stop hook.
  Status PersistAll();

 private:
  Status RestoreOne(const std::string& name);
  // Caller holds name's stripe. A dependent capability (which stripe is a
  // hash of the argument) is outside what the clang analysis can express
  // (docs/STATIC_ANALYSIS.md, known limits), so the contract is the
  // naming convention plus the MutexLock at every call site.
  Status CompactLocked(const std::string& name);
  Mutex& StripeFor(const std::string& name);

  AtrService& service_;
  Options options_;
  CatalogStore store_;
  RestoreStats restore_stats_;
  // Striped per-graph locks: same graph serializes, different graphs
  // persist concurrently (collisions just serialize harmlessly).
  static constexpr size_t kLockStripes = 16;
  std::array<Mutex, kLockStripes> stripes_;
};

}  // namespace persist
}  // namespace atr

#endif  // ATR_PERSIST_CATALOG_H_
