#include "persist/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/binary_io.h"

namespace atr {
namespace persist {

std::vector<uint8_t> EncodeSnapshot(const std::string& graph_name,
                                    uint64_t version, const Graph& graph,
                                    const TrussDecomposition& decomposition) {
  ByteWriter payload;
  payload.WriteString(graph_name);
  payload.WriteU64(version);
  graph.SerializeTo(payload);
  SerializeTrussDecomposition(decomposition, payload);

  ByteWriter out;
  out.WriteU32(kSnapshotMagic);
  out.WriteU32(kSnapshotFormatVersion);
  out.WriteU32(Crc32(payload.buffer().data(), payload.size()));
  out.WriteU32(static_cast<uint32_t>(payload.size()));
  out.WriteBytes(payload.buffer().data(), payload.size());
  return out.TakeBuffer();
}

StatusOr<SnapshotRecord> DecodeSnapshot(std::span<const uint8_t> bytes) {
  ByteReader header(bytes.data(), bytes.size());
  uint32_t magic = 0, format = 0, crc = 0, payload_len = 0;
  if (!header.ReadU32(&magic) || !header.ReadU32(&format) ||
      !header.ReadU32(&crc) || !header.ReadU32(&payload_len)) {
    return Status::InvalidArgument("snapshot: truncated header");
  }
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("snapshot: bad magic (not a snapshot file)");
  }
  if (format != kSnapshotFormatVersion) {
    return Status::InvalidArgument("snapshot: unsupported format version " +
                                   std::to_string(format));
  }
  if (header.remaining() != payload_len) {
    return Status::InvalidArgument(
        "snapshot: payload length mismatch (header says " +
        std::to_string(payload_len) + ", file carries " +
        std::to_string(header.remaining()) + ")");
  }
  const uint8_t* payload = bytes.data() + header.position();
  if (Crc32(payload, payload_len) != crc) {
    return Status::InvalidArgument("snapshot: payload checksum mismatch");
  }

  ByteReader reader(payload, payload_len);
  SnapshotRecord record;
  if (!reader.ReadString(&record.graph_name) ||
      !reader.ReadU64(&record.version)) {
    return Status::InvalidArgument("snapshot: truncated payload preamble");
  }
  if (record.version == 0) {
    return Status::InvalidArgument("snapshot: version must be >= 1");
  }
  StatusOr<Graph> graph = Graph::DeserializeFrom(reader);
  if (!graph.ok()) return graph.status();
  record.graph = *std::move(graph);
  StatusOr<TrussDecomposition> decomposition =
      DeserializeTrussDecomposition(reader, record.graph.NumEdges());
  if (!decomposition.ok()) return decomposition.status();
  record.decomposition = *std::move(decomposition);
  if (reader.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes after payload");
  }
  // Semantic validation: a base snapshot is a FULL anchor-free
  // decomposition, so every edge carries a real trussness in
  // [2, max_trussness] — the kTrussnessNotComputed / kAnchoredTrussness
  // sentinels must not be injectable from disk (downstream code DCHECKs
  // against them, and checks must come back as Status here, not aborts).
  if (record.decomposition.max_trussness < 2 ||
      record.decomposition.max_trussness == kAnchoredTrussness) {
    return Status::InvalidArgument("snapshot: max_trussness out of range");
  }
  for (EdgeId e = 0; e < record.graph.NumEdges(); ++e) {
    const uint32_t t = record.decomposition.trussness[e];
    if (t < 2 || t > record.decomposition.max_trussness) {
      return Status::InvalidArgument(
          "snapshot: trussness of edge " + std::to_string(e) +
          " is outside [2, max_trussness]");
    }
  }
  return record;
}

Status WriteFileAtomic(const std::string& path,
                       std::span<const uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("WriteFileAtomic: open(" + tmp +
                            ") failed: " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("WriteFileAtomic: write(" + tmp +
                              ") failed: " + std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::Internal("WriteFileAtomic: fsync/close(" + tmp +
                            ") failed: " + std::strerror(err));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::Internal("WriteFileAtomic: rename to " + path +
                            " failed: " + std::strerror(err));
  }
  // Durability of the rename itself: fsync the containing directory.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best-effort; some filesystems reject directory fsync
    ::close(dfd);
  }
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("ReadFileBytes: " + path + " does not exist");
    }
    return Status::Internal("ReadFileBytes: open(" + path +
                            ") failed: " + std::strerror(errno));
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::Internal("ReadFileBytes: read(" + path +
                              ") failed: " + std::strerror(err));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  ::close(fd);
  return bytes;
}

}  // namespace persist
}  // namespace atr
