// Follower computation for a single anchor edge — Algorithm 3 of the paper
// (upward-route search with the effective-triangle support check and the
// retract cascade), plus the route-size probe used by Table IV and the Tur
// baseline.
//
// Given the current decomposition (t(e), l(e)) of the anchored graph, the
// followers F(x) of anchoring edge x are exactly the edges whose trussness
// rises (each by 1, Lemma 1). The search:
//   1. seeds with the neighbor-edges of x satisfying Lemma 2 condition (i)
//      (t > t(x), or equal trussness and strictly later layer),
//   2. processes each trussness level independently with a min-heap keyed by
//      layer (pops are nondecreasing in layer, which is what makes the
//      optimistic support counting consistent),
//   3. counts s+(e), the effective triangles of Definition 8: a triangle
//      counts when both partner edges are "countable" — the hypothetical
//      anchor, an existing anchor, a higher-trussness edge, or a same-level
//      edge that is not eliminated and either survived or ordered no earlier
//      than e (e ≺ partner),
//   4. survives e when s+(e) >= t(e) - 1 (Lemma 3 threshold), expanding the
//      route to same-level neighbor-edges with e ≺ e'; otherwise eliminates
//      e and retracts: survived edges that counted a triangle through the
//      eliminated edge lose it and may cascade.
//
// Levels are independent because a level-k follower rises to exactly k+1 and
// is therefore not in T_{k+2}; per-level batches also never interact across
// truss components (a counted triangle's same-level edges are always in the
// same k-truss component), which is what makes GAS's per-tree-node caching
// (FollowersByNode) coherent with the full search.
//
// All scratch state is epoch-stamped, so one FollowerSearch instance can be
// reused across the m candidate evaluations of a greedy round with O(route)
// cost per call instead of O(m).

#ifndef ATR_ROUTE_FOLLOWER_SEARCH_H_
#define ATR_ROUTE_FOLLOWER_SEARCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

class FollowerSearch {
 public:
  explicit FollowerSearch(const Graph& g);

  FollowerSearch(const FollowerSearch&) = delete;
  FollowerSearch& operator=(const FollowerSearch&) = delete;

  // Binds the current decomposition and anchor mask. Both must outlive the
  // subsequent calls and reflect the same anchored graph. `anchored` may be
  // null when no anchors exist yet.
  void SetState(const TrussDecomposition* decomp,
                const std::vector<bool>* anchored);

  // Computes F(x): all followers of hypothetically anchoring `x`. When
  // `followers` is non-null it receives the follower edge ids (unsorted but
  // deterministic). Returns |F(x)|, i.e. TG({x}) by Lemma 1.
  uint32_t CountFollowers(EdgeId x, std::vector<EdgeId>* followers = nullptr);

  // GAS variant: computes followers restricted to the tree nodes listed in
  // `allowed_nodes` (sorted node ids). `edge_node` maps every edge to its
  // tree-node id. Appends (node id, follower count) pairs for each allowed
  // node that produced at least one follower.
  //
  // Exactness contract: same-level nodes can be coupled through the
  // candidate's own triangles, so the caller must list *all* nodes of a
  // coupled level group whenever it lists one of them (see gas.cc).
  void FollowersByNode(EdgeId x, const std::vector<uint32_t>& edge_node,
                       const std::vector<uint32_t>& allowed_nodes,
                       std::vector<std::pair<uint32_t, uint32_t>>* counts);

  // Size of the upward-route candidate set of `x` (Table IV / Tur): the
  // number of distinct edges reachable from the Lemma 2 seeds along
  // same-trussness routes with nondecreasing deletion order, with no
  // support check applied.
  uint32_t RouteSize(EdgeId x);

 private:
  enum Status : uint8_t {
    kUnchecked = 0,
    kInHeap = 1,
    kSurvived = 2,
    kEliminated = 3,
  };

  Status GetStatus(EdgeId e) const {
    return epoch_[e] == current_epoch_ ? static_cast<Status>(status_[e])
                                       : kUnchecked;
  }
  void SetStatus(EdgeId e, Status s) {
    epoch_[e] = current_epoch_;
    status_[e] = static_cast<uint8_t>(s);
  }

  // Whether partner `p` can support a level-`level` candidate `e` in an
  // effective triangle (Definition 8), given current statuses.
  bool Countable(EdgeId p, EdgeId e, uint32_t level) const;

  // Effective-triangle count s+(e) for candidate `e` at its own level.
  uint32_t ComputeSPlus(EdgeId e, uint32_t level) const;

  // Eliminates `e` (which had `was_survived` status) and cascades
  // (Algorithm 3's Retract), updating stored s+ of survived edges.
  void Retract(EdgeId e, bool was_survived, uint32_t level);

  // Marks `r` eliminated and, atomically with that state change, queues a
  // decrement for every survived partner that was counting a triangle
  // through `r`.
  void EliminateAndScan(EdgeId r, bool was_survived, uint32_t level);

  // Runs one level batch given seeds already marked kInHeap and pushed onto
  // heap_. When `allowed_nodes` is non-null, route expansion is confined to
  // edges whose tree node is listed. Survivors are appended to survivors_.
  void ProcessLevel(uint32_t level, const std::vector<uint32_t>* edge_node,
                    const std::vector<uint32_t>* allowed_nodes);

  // Collects the Lemma 2 condition (i) seeds of x into seeds_.
  void CollectSeeds(EdgeId x);

  bool IsAnchoredEdge(EdgeId e) const {
    return anchored_ != nullptr && !anchored_->empty() && (*anchored_)[e];
  }

  const Graph& g_;
  const TrussDecomposition* decomp_ = nullptr;
  const std::vector<bool>* anchored_ = nullptr;

  EdgeId current_anchor_ = kInvalidEdge;
  uint32_t current_epoch_ = 0;

  std::vector<uint32_t> epoch_;
  std::vector<uint8_t> status_;
  std::vector<uint32_t> splus_;

  // Min-heap of (layer << 32 | edge) for the level being processed.
  std::vector<uint64_t> heap_;
  std::vector<EdgeId> seeds_;
  std::vector<EdgeId> survivors_;
  std::vector<EdgeId> decrement_queue_;
  std::vector<std::pair<uint32_t, uint32_t>> node_count_scratch_;
};

}  // namespace atr

#endif  // ATR_ROUTE_FOLLOWER_SEARCH_H_
