#include "route/follower_search.h"

#include <algorithm>

#include "graph/triangles.h"
#include "util/macros.h"

namespace atr {
namespace {

uint64_t HeapKey(uint32_t layer, EdgeId e) {
  return (static_cast<uint64_t>(layer) << 32) | e;
}

}  // namespace

FollowerSearch::FollowerSearch(const Graph& g)
    : g_(g),
      epoch_(g.NumEdges(), 0),
      status_(g.NumEdges(), 0),
      splus_(g.NumEdges(), 0) {}

void FollowerSearch::SetState(const TrussDecomposition* decomp,
                              const std::vector<bool>* anchored) {
  ATR_CHECK(decomp != nullptr);
  ATR_CHECK(decomp->trussness.size() == g_.NumEdges());
  decomp_ = decomp;
  anchored_ = anchored;
}

bool FollowerSearch::Countable(EdgeId p, EdgeId e, uint32_t level) const {
  if (p == current_anchor_ || IsAnchoredEdge(p)) return true;
  const uint32_t tp = decomp_->trussness[p];
  if (tp < level) return false;  // eliminated wholesale (Alg. 3 line 6)
  if (tp > level) return true;   // already in T_{level+1}
  // Same level: consult the batch status.
  switch (GetStatus(p)) {
    case kEliminated:
      return false;
    case kSurvived:
      return true;
    case kUnchecked:
    case kInHeap:
      // Optimistic: p is deleted no earlier than e in the original order.
      return decomp_->layer[e] <= decomp_->layer[p];
  }
  return false;
}

uint32_t FollowerSearch::ComputeSPlus(EdgeId e, uint32_t level) const {
  uint32_t count = 0;
  ForEachTriangleOfEdge(g_, e, [&](VertexId, EdgeId e1, EdgeId e2) {
    if (Countable(e1, e, level) && Countable(e2, e, level)) ++count;
  });
  return count;
}

void FollowerSearch::EliminateAndScan(EdgeId r, bool was_survived,
                                      uint32_t level) {
  // Marking r eliminated and scanning its triangles must be one atomic
  // step: a triangle dies the moment its first edge dies, and every
  // countability test below has to observe exactly that moment's state.
  // (Deferring the scan lets a second partner of the same triangle die
  // first, after which neither death would decrement the surviving third
  // edge.) The decrements themselves are pure bookkeeping and are queued.
  SetStatus(r, kEliminated);
  ForEachTriangleOfEdge(g_, r, [&](VertexId, EdgeId a, EdgeId b) {
    // The survived partner p may lose this triangle; o is the third edge.
    for (int side = 0; side < 2; ++side) {
      const EdgeId p = (side == 0) ? a : b;
      const EdgeId o = (side == 0) ? b : a;
      if (p == current_anchor_ || IsAnchoredEdge(p)) continue;
      if (decomp_->trussness[p] != level) continue;
      if (GetStatus(p) != kSurvived) continue;
      // Was r counted by p? Either p ≺ r statically, or r had survived
      // (layer-ordered pops make this time-consistent; see header).
      if (!was_survived && decomp_->layer[p] > decomp_->layer[r]) {
        continue;
      }
      // The triangle only counted if the third edge is countable too.
      if (!Countable(o, p, level)) continue;
      decrement_queue_.push_back(p);
    }
  });
}

void FollowerSearch::Retract(EdgeId e, bool was_survived, uint32_t level) {
  decrement_queue_.clear();
  EliminateAndScan(e, was_survived, level);
  for (size_t head = 0; head < decrement_queue_.size(); ++head) {
    const EdgeId p = decrement_queue_[head];
    // Decrements owed to an edge that has died in the meantime are dropped:
    // its own death already scanned its triangles with the correct state.
    if (GetStatus(p) != kSurvived) continue;
    ATR_DCHECK(splus_[p] > 0);
    --splus_[p];
    if (splus_[p] < level - 1) {
      EliminateAndScan(p, /*was_survived=*/true, level);
    }
  }
}

void FollowerSearch::ProcessLevel(uint32_t level,
                                  const std::vector<uint32_t>* edge_node,
                                  const std::vector<uint32_t>* allowed_nodes) {
  std::make_heap(heap_.begin(), heap_.end(), std::greater<uint64_t>());
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<uint64_t>());
    const EdgeId e = static_cast<EdgeId>(heap_.back() & 0xffffffffu);
    heap_.pop_back();
    if (GetStatus(e) != kInHeap) continue;  // eliminated while queued
    const uint32_t threshold = level - 1;   // sup needed inside T_{level+1}
    const uint32_t splus = ComputeSPlus(e, level);
    if (splus >= threshold) {
      SetStatus(e, kSurvived);
      splus_[e] = splus;
      survivors_.push_back(e);
      // Expand the upward route: same-level neighbor-edges ordered no
      // earlier than e (Algorithm 3 lines 12-14).
      ForEachTriangleOfEdge(g_, e, [&](VertexId, EdgeId e1, EdgeId e2) {
        for (const EdgeId p : {e1, e2}) {
          if (p == current_anchor_ || IsAnchoredEdge(p)) continue;
          if (decomp_->trussness[p] != level) continue;
          if (decomp_->layer[p] < decomp_->layer[e]) continue;  // need e ≺ p
          if (allowed_nodes != nullptr &&
              !std::binary_search(allowed_nodes->begin(),
                                  allowed_nodes->end(), (*edge_node)[p])) {
            continue;
          }
          if (GetStatus(p) == kUnchecked) {
            SetStatus(p, kInHeap);
            heap_.push_back(HeapKey(decomp_->layer[p], p));
            std::push_heap(heap_.begin(), heap_.end(),
                           std::greater<uint64_t>());
          }
        }
      });
    } else {
      Retract(e, /*was_survived=*/false, level);
    }
  }
}

void FollowerSearch::CollectSeeds(EdgeId x) {
  seeds_.clear();
  ForEachTriangleOfEdge(g_, x, [&](VertexId, EdgeId e1, EdgeId e2) {
    for (const EdgeId p : {e1, e2}) {
      if (IsAnchoredEdge(p)) continue;
      // The CSR enumerates triangles of the full graph, so a partner may
      // have been removed from the maintained subgraph — its sentinel
      // trussness must not enter the ≺ comparison.
      if (!decomp_->IsComputed(p)) continue;
      // Lemma 2 condition (i): t(p) > t(x), or equal trussness with a
      // strictly later deletion layer.
      if (!decomp_->StrictlyPrecedes(x, p)) continue;
      seeds_.push_back(p);
    }
  });
  std::sort(seeds_.begin(), seeds_.end());
  seeds_.erase(std::unique(seeds_.begin(), seeds_.end()), seeds_.end());
}

uint32_t FollowerSearch::CountFollowers(EdgeId x,
                                        std::vector<EdgeId>* followers) {
  ATR_CHECK(decomp_ != nullptr);
  ATR_CHECK(x < g_.NumEdges());
  ATR_CHECK_MSG(!IsAnchoredEdge(x), "candidate is already anchored");
  current_anchor_ = x;
  CollectSeeds(x);
  // Group seeds by trussness level; each level is an independent batch.
  std::stable_sort(seeds_.begin(), seeds_.end(), [this](EdgeId a, EdgeId b) {
    return decomp_->trussness[a] < decomp_->trussness[b];
  });
  if (followers != nullptr) followers->clear();
  uint32_t total = 0;
  size_t i = 0;
  while (i < seeds_.size()) {
    const uint32_t level = decomp_->trussness[seeds_[i]];
    ++current_epoch_;
    heap_.clear();
    survivors_.clear();
    while (i < seeds_.size() && decomp_->trussness[seeds_[i]] == level) {
      const EdgeId s = seeds_[i++];
      if (GetStatus(s) == kUnchecked) {
        SetStatus(s, kInHeap);
        heap_.push_back(HeapKey(decomp_->layer[s], s));
      }
    }
    ProcessLevel(level, nullptr, nullptr);
    for (EdgeId e : survivors_) {
      if (GetStatus(e) != kSurvived) continue;  // retracted later
      ++total;
      if (followers != nullptr) followers->push_back(e);
    }
  }
  current_anchor_ = kInvalidEdge;
  return total;
}

void FollowerSearch::FollowersByNode(
    EdgeId x, const std::vector<uint32_t>& edge_node,
    const std::vector<uint32_t>& allowed_nodes,
    std::vector<std::pair<uint32_t, uint32_t>>* counts) {
  ATR_CHECK(decomp_ != nullptr);
  ATR_CHECK(edge_node.size() == g_.NumEdges());
  ATR_CHECK_MSG(!IsAnchoredEdge(x), "candidate is already anchored");
  current_anchor_ = x;
  CollectSeeds(x);
  // Batches are per trussness LEVEL, not per node: the candidate's own
  // triangles can couple two same-level nodes (their edges support each
  // other through the always-countable hypothetical anchor), so same-level
  // nodes must be solved as one fixed point. Different levels stay
  // independent. Seeds whose node is not allowed are skipped, and route
  // expansion is confined to allowed nodes; the caller guarantees that
  // coupled nodes are always recomputed together (level groups).
  std::stable_sort(seeds_.begin(), seeds_.end(), [this](EdgeId a, EdgeId b) {
    return decomp_->trussness[a] < decomp_->trussness[b];
  });
  size_t i = 0;
  while (i < seeds_.size()) {
    const uint32_t level = decomp_->trussness[seeds_[i]];
    ++current_epoch_;
    heap_.clear();
    survivors_.clear();
    bool any_seed = false;
    while (i < seeds_.size() && decomp_->trussness[seeds_[i]] == level) {
      const EdgeId s = seeds_[i++];
      if (!std::binary_search(allowed_nodes.begin(), allowed_nodes.end(),
                              edge_node[s])) {
        continue;
      }
      if (GetStatus(s) == kUnchecked) {
        SetStatus(s, kInHeap);
        heap_.push_back(HeapKey(decomp_->layer[s], s));
        any_seed = true;
      }
    }
    if (!any_seed) continue;
    ProcessLevel(level, &edge_node, &allowed_nodes);
    // Attribute survivors to their nodes.
    node_count_scratch_.clear();
    for (EdgeId e : survivors_) {
      if (GetStatus(e) != kSurvived) continue;
      node_count_scratch_.emplace_back(edge_node[e], 1u);
    }
    std::sort(node_count_scratch_.begin(), node_count_scratch_.end());
    size_t j = 0;
    while (j < node_count_scratch_.size()) {
      const uint32_t node = node_count_scratch_[j].first;
      uint32_t count = 0;
      while (j < node_count_scratch_.size() &&
             node_count_scratch_[j].first == node) {
        ++count;
        ++j;
      }
      counts->emplace_back(node, count);
    }
  }
  current_anchor_ = kInvalidEdge;
}

uint32_t FollowerSearch::RouteSize(EdgeId x) {
  ATR_CHECK(decomp_ != nullptr);
  if (IsAnchoredEdge(x)) return 0;
  current_anchor_ = x;
  CollectSeeds(x);
  ++current_epoch_;
  // Plain reachability along upward routes (no support check): BFS from the
  // seeds expanding to same-level neighbor-edges with e ≺ e'.
  std::vector<EdgeId> stack;
  uint32_t count = 0;
  for (EdgeId s : seeds_) {
    if (GetStatus(s) == kUnchecked) {
      SetStatus(s, kInHeap);
      stack.push_back(s);
      ++count;
    }
  }
  while (!stack.empty()) {
    const EdgeId e = stack.back();
    stack.pop_back();
    const uint32_t level = decomp_->trussness[e];
    ForEachTriangleOfEdge(g_, e, [&](VertexId, EdgeId e1, EdgeId e2) {
      for (const EdgeId p : {e1, e2}) {
        if (p == current_anchor_ || IsAnchoredEdge(p)) continue;
        if (decomp_->trussness[p] != level) continue;
        if (decomp_->layer[p] < decomp_->layer[e]) continue;
        if (GetStatus(p) == kUnchecked) {
          SetStatus(p, kInHeap);
          stack.push_back(p);
          ++count;
        }
      }
    });
  }
  current_anchor_ = kInvalidEdge;
  return count;
}

}  // namespace atr
