#include "graph/triangles.h"

#include <algorithm>

#include "util/env.h"
#include "util/macros.h"
#include "util/parallel_for.h"

namespace atr {
namespace internal {
namespace {

double g_triangle_cutoff =
    GetEnvDouble("ATR_TRIANGLE_CUTOFF", kDefaultTriangleCutoff);

}  // namespace

double TriangleCutoff() { return g_triangle_cutoff; }

double SetTriangleCutoffForTest(double cutoff) {
  const double previous = g_triangle_cutoff;
  g_triangle_cutoff = cutoff;
  return previous;
}

OrientedAdjacency BuildOrientedAdjacency(const Graph& g) {
  const uint32_t n = g.NumVertices();
  // Orientation: u -> v iff (deg(u), u) < (deg(v), v). This bounds every
  // out-degree by O(sqrt(m)), which is what gives the O(m^1.5) sweep.
  auto precedes = [&g](VertexId a, VertexId b) {
    const uint32_t da = g.Degree(a);
    const uint32_t db = g.Degree(b);
    return da != db ? da < db : a < b;
  };

  OrientedAdjacency out;
  out.offsets.assign(n + 1, 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const EdgeEndpoints ends = g.Edge(e);
    ++out.offsets[precedes(ends.u, ends.v) ? ends.u : ends.v];
  }
  uint32_t running = 0;
  for (uint32_t v = 0; v <= n; ++v) {
    const uint32_t count = (v < n) ? out.offsets[v] : 0;
    out.offsets[v] = running;
    running += count;
  }
  out.out.resize(g.NumEdges());
  std::vector<uint32_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const EdgeEndpoints ends = g.Edge(e);
    const VertexId from = precedes(ends.u, ends.v) ? ends.u : ends.v;
    const VertexId to = (from == ends.u) ? ends.v : ends.u;
    out.out[cursor[from]++] = AdjEntry{to, e};
  }
  for (uint32_t v = 0; v < n; ++v) {
    std::sort(out.out.begin() + out.offsets[v],
              out.out.begin() + out.offsets[v + 1],
              [](const AdjEntry& a, const AdjEntry& b) {
                return a.neighbor < b.neighbor;
              });
  }
  return out;
}

}  // namespace internal

uint32_t EdgeSupport(const Graph& g, EdgeId e) {
  uint32_t support = 0;
  ForEachTriangleOfEdge(g, e, [&support](VertexId, EdgeId, EdgeId) {
    ++support;
  });
  return support;
}

uint32_t EdgeSupportWithin(const Graph& g, EdgeId e,
                           const std::vector<bool>& within) {
  uint32_t support = 0;
  if (within.empty()) {
    ForEachTriangleOfEdgeAdaptive(
        g, e, [&](VertexId, EdgeId, EdgeId) { ++support; });
  } else {
    ForEachTriangleOfEdgeAdaptive(g, e, [&](VertexId, EdgeId e1, EdgeId e2) {
      if (within[e1] && within[e2]) ++support;
    });
  }
  return support;
}

std::vector<uint32_t> ComputeSupport(const Graph& g) {
  std::vector<uint32_t> support(g.NumEdges(), 0);
  ForEachTriangle(g, [&support](TriangleEdges t) {
    ++support[t.e1];
    ++support[t.e2];
    ++support[t.e3];
  });
  return support;
}

std::vector<uint32_t> ComputeSupportParallel(const Graph& g,
                                             const std::vector<bool>& within) {
  const uint32_t m = g.NumEdges();
  ATR_CHECK(within.empty() || within.size() == m);
  // Per-edge counting does ~3x the work of the oriented whole-graph sweep
  // (each triangle is enumerated once per member edge), so sharding it
  // only pays off from ~3-4 workers; below that — including inside a
  // ParallelFor body, where nested calls run inline — use the sweep. The
  // counts are identical either way.
  if (ParallelWorkerCount() < 4) {
    if (within.empty()) return ComputeSupport(g);
    std::vector<uint32_t> support(m, 0);
    ForEachTriangle(g, [&](TriangleEdges t) {
      if (within[t.e1] && within[t.e2] && within[t.e3]) {
        ++support[t.e1];
        ++support[t.e2];
        ++support[t.e3];
      }
    });
    return support;
  }
  std::vector<uint32_t> support(m, 0);
  ParallelFor(m, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const EdgeId e = static_cast<EdgeId>(i);
      if (!within.empty() && !within[e]) continue;
      support[e] = EdgeSupportWithin(g, e, within);
    }
  });
  return support;
}

uint64_t CountTriangles(const Graph& g) {
  uint64_t count = 0;
  ForEachTriangle(g, [&count](TriangleEdges) { ++count; });
  return count;
}

}  // namespace atr
