#include "graph/triangles.h"

#include <algorithm>

namespace atr {
namespace internal {

OrientedAdjacency BuildOrientedAdjacency(const Graph& g) {
  const uint32_t n = g.NumVertices();
  // Orientation: u -> v iff (deg(u), u) < (deg(v), v). This bounds every
  // out-degree by O(sqrt(m)), which is what gives the O(m^1.5) sweep.
  auto precedes = [&g](VertexId a, VertexId b) {
    const uint32_t da = g.Degree(a);
    const uint32_t db = g.Degree(b);
    return da != db ? da < db : a < b;
  };

  OrientedAdjacency out;
  out.offsets.assign(n + 1, 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const EdgeEndpoints ends = g.Edge(e);
    ++out.offsets[precedes(ends.u, ends.v) ? ends.u : ends.v];
  }
  uint32_t running = 0;
  for (uint32_t v = 0; v <= n; ++v) {
    const uint32_t count = (v < n) ? out.offsets[v] : 0;
    out.offsets[v] = running;
    running += count;
  }
  out.out.resize(g.NumEdges());
  std::vector<uint32_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const EdgeEndpoints ends = g.Edge(e);
    const VertexId from = precedes(ends.u, ends.v) ? ends.u : ends.v;
    const VertexId to = (from == ends.u) ? ends.v : ends.u;
    out.out[cursor[from]++] = AdjEntry{to, e};
  }
  for (uint32_t v = 0; v < n; ++v) {
    std::sort(out.out.begin() + out.offsets[v],
              out.out.begin() + out.offsets[v + 1],
              [](const AdjEntry& a, const AdjEntry& b) {
                return a.neighbor < b.neighbor;
              });
  }
  return out;
}

}  // namespace internal

uint32_t EdgeSupport(const Graph& g, EdgeId e) {
  uint32_t support = 0;
  ForEachTriangleOfEdge(g, e, [&support](VertexId, EdgeId, EdgeId) {
    ++support;
  });
  return support;
}

std::vector<uint32_t> ComputeSupport(const Graph& g) {
  std::vector<uint32_t> support(g.NumEdges(), 0);
  ForEachTriangle(g, [&support](TriangleEdges t) {
    ++support[t.e1];
    ++support[t.e2];
    ++support[t.e3];
  });
  return support;
}

uint64_t CountTriangles(const Graph& g) {
  uint64_t count = 0;
  ForEachTriangle(g, [&count](TriangleEdges) { ++count; });
  return count;
}

}  // namespace atr
