#include "graph/graph.h"

#include <algorithm>
#include <string>

namespace atr {
namespace {

// The (u, v) lexicographic edge order every sorted edge list in this file
// shares: FromSortedEdges' precondition, the Build() sort, and the
// ApplyEdits merge must all agree on it.
bool EndpointsPrecede(EdgeEndpoints a, EdgeEndpoints b) {
  return a.u != b.u ? a.u < b.u : a.v < b.v;
}

}  // namespace

EdgeId Graph::FindEdge(VertexId u, VertexId v) const {
  if (u >= num_vertices_ || v >= num_vertices_ || u == v) return kInvalidEdge;
  // Search the smaller adjacency list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  std::span<const AdjEntry> nbrs = Neighbors(u);
  auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), v,
      [](const AdjEntry& a, VertexId target) { return a.neighbor < target; });
  if (it != nbrs.end() && it->neighbor == v) return it->edge;
  return kInvalidEdge;
}

uint64_t Graph::TriangleWorkBound() const {
  uint64_t total = 0;
  for (const EdgeEndpoints& e : edges_) {
    total += std::min(Degree(e.u), Degree(e.v));
  }
  return total;
}

Graph Graph::FromSortedEdges(uint32_t num_vertices,
                             std::vector<EdgeEndpoints> edges) {
  Graph g;
  g.num_vertices_ = num_vertices;
  g.edges_ = std::move(edges);

  const uint32_t n = g.num_vertices_;
  const uint32_t m = static_cast<uint32_t>(g.edges_.size());
  std::vector<uint32_t> degree(n, 0);
  for (const EdgeEndpoints& e : g.edges_) {
    ++degree[e.u];
    ++degree[e.v];
  }
  g.offsets_.assign(n + 1, 0);
  for (uint32_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  g.adj_.resize(2ull * m);
  std::vector<uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const EdgeEndpoints ends = g.edges_[e];
    g.adj_[cursor[ends.u]++] = AdjEntry{ends.v, e};
    g.adj_[cursor[ends.v]++] = AdjEntry{ends.u, e};
  }
  // Edges arrive in (u, v) order, so each vertex's higher neighbors are
  // already sorted, but lower neighbors interleave; sort each range.
  for (uint32_t v = 0; v < n; ++v) {
    std::sort(g.adj_.begin() + g.offsets_[v], g.adj_.begin() + g.offsets_[v + 1],
              [](const AdjEntry& a, const AdjEntry& b) {
                return a.neighbor < b.neighbor;
              });
  }
  return g;
}

StatusOr<GraphEditResult> Graph::ApplyEdits(const GraphDelta& delta) const {
  return ApplyEdits(delta.add, delta.remove);
}

StatusOr<GraphEditResult> Graph::ApplyEdits(
    const std::vector<EdgeEndpoints>& adds,
    const std::vector<EdgeEndpoints>& removes) const {
  const uint32_t old_m = NumEdges();

  // Resolve removals to old edge ids (absent edges are a caller error — a
  // streaming feed that deletes a never-inserted edge is out of sync).
  std::vector<bool> removed(old_m, false);
  for (const EdgeEndpoints& r : removes) {
    const EdgeId e = FindEdge(r.u, r.v);
    if (e == kInvalidEdge) {
      return Status::InvalidArgument(
          "ApplyEdits: removed edge {" + std::to_string(r.u) + ", " +
          std::to_string(r.v) + "} is not in the graph");
    }
    removed[e] = true;
  }

  // Normalize + dedup the additions; re-adding an existing edge is an
  // idempotent no-op unless the same delta also removes it (ambiguous).
  std::vector<EdgeEndpoints> pending;
  pending.reserve(adds.size());
  uint32_t new_n = num_vertices_;
  for (EdgeEndpoints a : adds) {
    if (a.u == a.v) {
      return Status::InvalidArgument(
          "ApplyEdits: added edge {" + std::to_string(a.u) + ", " +
          std::to_string(a.v) + "} is a self-loop");
    }
    if (a.u > a.v) std::swap(a.u, a.v);
    if (a.v >= kInvalidVertex) {
      return Status::InvalidArgument(
          "ApplyEdits: vertex id " + std::to_string(a.v) +
          " overflows the VertexId space");
    }
    const EdgeId existing = FindEdge(a.u, a.v);
    if (existing != kInvalidEdge) {
      if (removed[existing]) {
        return Status::InvalidArgument(
            "ApplyEdits: edge {" + std::to_string(a.u) + ", " +
            std::to_string(a.v) + "} is both added and removed");
      }
      continue;
    }
    new_n = std::max(new_n, a.v + 1);
    pending.push_back(a);
  }
  std::sort(pending.begin(), pending.end(), EndpointsPrecede);
  pending.erase(std::unique(pending.begin(), pending.end()), pending.end());

  // Merge the surviving old edges (edges_ is (u, v)-sorted by construction)
  // with the sorted additions, assigning new ids in merge order and
  // recording the remap as each old edge lands.
  GraphEditResult result;
  result.edge_remap.assign(old_m, kInvalidEdge);
  std::vector<EdgeEndpoints> merged;
  merged.reserve(old_m + pending.size());
  EdgeId old_e = 0;
  size_t add_i = 0;
  while (old_e < old_m || add_i < pending.size()) {
    const bool take_old =
        add_i == pending.size() ||
        (old_e < old_m && EndpointsPrecede(edges_[old_e], pending[add_i]));
    if (take_old) {
      if (!removed[old_e]) {
        result.edge_remap[old_e] = static_cast<EdgeId>(merged.size());
        merged.push_back(edges_[old_e]);
      }
      ++old_e;
    } else {
      result.added_edges.push_back(static_cast<EdgeId>(merged.size()));
      merged.push_back(pending[add_i]);
      ++add_i;
    }
  }
  result.graph = FromSortedEdges(new_n, std::move(merged));
  return result;
}

void Graph::SerializeTo(ByteWriter& writer) const {
  writer.WriteU32(num_vertices_);
  writer.WriteU32(static_cast<uint32_t>(edges_.size()));
  for (const EdgeEndpoints& e : edges_) {
    writer.WriteU32(e.u);
    writer.WriteU32(e.v);
  }
}

StatusOr<Graph> Graph::DeserializeFrom(ByteReader& reader) {
  uint32_t n = 0;
  uint32_t m = 0;
  if (!reader.ReadU32(&n) || !reader.ReadU32(&m)) {
    return Status::InvalidArgument("Graph::Deserialize: truncated header");
  }
  if (n >= kInvalidVertex) {
    return Status::InvalidArgument(
        "Graph::Deserialize: vertex count overflows the VertexId space");
  }
  // 8 bytes per edge must still be present; checking before the resize
  // keeps a hostile edge count from driving a huge allocation.
  if (reader.remaining() / 8 < m) {
    return Status::InvalidArgument("Graph::Deserialize: truncated edge list");
  }
  std::vector<EdgeEndpoints> edges(m);
  for (EdgeId e = 0; e < m; ++e) {
    reader.ReadU32(&edges[e].u);
    reader.ReadU32(&edges[e].v);
  }
  ATR_CHECK(reader.ok());
  for (EdgeId e = 0; e < m; ++e) {
    const EdgeEndpoints ends = edges[e];
    if (ends.u >= ends.v || ends.v >= n) {
      return Status::InvalidArgument(
          "Graph::Deserialize: edge " + std::to_string(e) +
          " is not normalized (u < v) or exceeds the vertex count");
    }
    if (e > 0 && !EndpointsPrecede(edges[e - 1], ends)) {
      return Status::InvalidArgument(
          "Graph::Deserialize: edge list is not sorted / duplicate-free at "
          "edge " +
          std::to_string(e));
    }
  }
  return FromSortedEdges(n, std::move(edges));
}

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  if (u == v) return;
  if (u > v) std::swap(u, v);
  // v + 1 below would wrap to 0 on the sentinel and silently corrupt
  // num_vertices_; ids this large are a caller bug (the IO layer rejects
  // them with a Status before they reach the builder).
  ATR_CHECK_MSG(v < kInvalidVertex,
                "AddEdge: vertex id overflows the VertexId space");
  num_vertices_ = std::max(num_vertices_, v + 1);
  pending_.push_back(EdgeEndpoints{u, v});
}

Graph GraphBuilder::Build() {
  std::sort(pending_.begin(), pending_.end(), EndpointsPrecede);
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());
  std::vector<EdgeEndpoints> edges = std::move(pending_);
  pending_.clear();
  return Graph::FromSortedEdges(num_vertices_, std::move(edges));
}

}  // namespace atr
