#include "graph/graph.h"

#include <algorithm>

namespace atr {

EdgeId Graph::FindEdge(VertexId u, VertexId v) const {
  if (u >= num_vertices_ || v >= num_vertices_ || u == v) return kInvalidEdge;
  // Search the smaller adjacency list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  std::span<const AdjEntry> nbrs = Neighbors(u);
  auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), v,
      [](const AdjEntry& a, VertexId target) { return a.neighbor < target; });
  if (it != nbrs.end() && it->neighbor == v) return it->edge;
  return kInvalidEdge;
}

uint64_t Graph::TriangleWorkBound() const {
  uint64_t total = 0;
  for (const EdgeEndpoints& e : edges_) {
    total += std::min(Degree(e.u), Degree(e.v));
  }
  return total;
}

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  if (u == v) return;
  if (u > v) std::swap(u, v);
  num_vertices_ = std::max(num_vertices_, v + 1);
  pending_.push_back(EdgeEndpoints{u, v});
}

Graph GraphBuilder::Build() {
  std::sort(pending_.begin(), pending_.end(),
            [](EdgeEndpoints a, EdgeEndpoints b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());

  Graph g;
  g.num_vertices_ = num_vertices_;
  g.edges_ = std::move(pending_);
  pending_.clear();

  const uint32_t n = g.num_vertices_;
  const uint32_t m = static_cast<uint32_t>(g.edges_.size());
  std::vector<uint32_t> degree(n, 0);
  for (const EdgeEndpoints& e : g.edges_) {
    ++degree[e.u];
    ++degree[e.v];
  }
  g.offsets_.assign(n + 1, 0);
  for (uint32_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  g.adj_.resize(2ull * m);
  std::vector<uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const EdgeEndpoints ends = g.edges_[e];
    g.adj_[cursor[ends.u]++] = AdjEntry{ends.v, e};
    g.adj_[cursor[ends.v]++] = AdjEntry{ends.u, e};
  }
  // Edges were added in (u, v) order, so each vertex's higher neighbors are
  // already sorted, but lower neighbors interleave; sort each range.
  for (uint32_t v = 0; v < n; ++v) {
    std::sort(g.adj_.begin() + g.offsets_[v], g.adj_.begin() + g.offsets_[v + 1],
              [](const AdjEntry& a, const AdjEntry& b) {
                return a.neighbor < b.neighbor;
              });
  }
  return g;
}

}  // namespace atr
