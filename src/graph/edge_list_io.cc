#include "graph/edge_list_io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace atr {
namespace {

// Parses a base-10 unsigned integer starting at `*pos`, advancing it.
// Returns false when no digits are present or when another digit could
// overflow uint64_t (the guard is conservative: values in the top decade,
// above (UINT64_MAX - 9) / 10 * 10 + 9 = 18446744073709551609, are
// rejected even when they fit).
bool ParseUint(const char* line, size_t& pos, uint64_t& value) {
  while (std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
  if (!std::isdigit(static_cast<unsigned char>(line[pos]))) return false;
  value = 0;
  while (std::isdigit(static_cast<unsigned char>(line[pos]))) {
    if (value > (UINT64_MAX - 9) / 10) return false;
    value = value * 10 + static_cast<uint64_t>(line[pos] - '0');
    ++pos;
  }
  return true;
}

}  // namespace

StatusOr<Graph> LoadSnapEdgeList(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::NotFound("cannot open edge list: " + path);
  }

  GraphBuilder builder;
  std::unordered_map<uint64_t, VertexId> remap;

  // std::getline grows the buffer to the true line length: a fixed fgets
  // buffer would split any line that outgrows it, silently re-parsing the
  // tail of a long comment (or the second endpoint of a whitespace-padded
  // edge line) as bogus edges. It also counts embedded NUL bytes, so a
  // NUL never swallows a newline and merges two physical lines.
  std::string line;
  size_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    // Parsing via c_str() stops at an embedded NUL — the tail of such a
    // (malformed, binary) line is ignored, never re-parsed as new edges.
    const char* text = line.c_str();
    size_t pos = 0;
    while (std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
    if (text[pos] == '\0' || text[pos] == '#' || text[pos] == '%') continue;
    uint64_t raw[2] = {0, 0};
    if (!ParseUint(text, pos, raw[0]) || !ParseUint(text, pos, raw[1])) {
      return Status::InvalidArgument("malformed edge at " + path + ":" +
                                     std::to_string(line_number));
    }
    VertexId ids[2];
    for (int i = 0; i < 2; ++i) {
      auto it = remap.find(raw[i]);
      if (it == remap.end()) {
        // The dense id is remap.size(); past the sentinel it would truncate
        // and alias an earlier vertex (and wrap GraphBuilder's count).
        if (remap.size() >= kInvalidVertex) {
          return Status::InvalidArgument(
              "vertex-id space overflow (>= 2^32 - 1 distinct ids) at " +
              path + ":" + std::to_string(line_number));
        }
        it = remap.emplace(raw[i], static_cast<VertexId>(remap.size())).first;
      }
      ids[i] = it->second;
    }
    builder.AddEdge(ids[0], ids[1]);
  }
  // getline fails for a mid-file read error exactly as it does for EOF;
  // without this check a failing disk would yield a silently truncated
  // graph with an Ok status.
  if (file.bad()) return Status::Internal("read error: " + path);
  return builder.Build();
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  std::fprintf(file, "# vertices %u edges %u\n", g.NumVertices(),
               g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const EdgeEndpoints ends = g.Edge(e);
    std::fprintf(file, "%u %u\n", ends.u, ends.v);
  }
  // fclose flushes the stdio buffer, so a write error (e.g. a full disk)
  // can first surface there — checking ferror alone misses it.
  const bool write_failed = std::ferror(file) != 0;
  const bool close_failed = std::fclose(file) != 0;
  if (write_failed || close_failed) {
    return Status::Internal("write error: " + path);
  }
  return Status::Ok();
}

}  // namespace atr
