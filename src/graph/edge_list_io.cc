#include "graph/edge_list_io.h"

#include <cctype>
#include <cstdio>
#include <unordered_map>
#include <vector>

namespace atr {
namespace {

// Parses a base-10 unsigned integer starting at `*pos`, advancing it.
// Returns false when no digits are present or on overflow past 2^63.
bool ParseUint(const char* line, size_t& pos, uint64_t& value) {
  while (std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
  if (!std::isdigit(static_cast<unsigned char>(line[pos]))) return false;
  value = 0;
  while (std::isdigit(static_cast<unsigned char>(line[pos]))) {
    if (value > (UINT64_MAX - 9) / 10) return false;
    value = value * 10 + static_cast<uint64_t>(line[pos] - '0');
    ++pos;
  }
  return true;
}

}  // namespace

StatusOr<Graph> LoadSnapEdgeList(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound("cannot open edge list: " + path);
  }

  GraphBuilder builder;
  std::unordered_map<uint64_t, VertexId> remap;
  auto dense_id = [&remap](uint64_t raw) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  char line[512];
  size_t line_number = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    ++line_number;
    size_t pos = 0;
    while (std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
    if (line[pos] == '\0' || line[pos] == '#' || line[pos] == '%') continue;
    uint64_t a = 0;
    uint64_t b = 0;
    if (!ParseUint(line, pos, a) || !ParseUint(line, pos, b)) {
      std::fclose(file);
      return Status::InvalidArgument("malformed edge at " + path + ":" +
                                     std::to_string(line_number));
    }
    builder.AddEdge(dense_id(a), dense_id(b));
  }
  std::fclose(file);
  return builder.Build();
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  std::fprintf(file, "# vertices %u edges %u\n", g.NumVertices(),
               g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const EdgeEndpoints ends = g.Edge(e);
    std::fprintf(file, "%u %u\n", ends.u, ends.v);
  }
  const bool write_failed = std::ferror(file) != 0;
  std::fclose(file);
  if (write_failed) return Status::Internal("write error: " + path);
  return Status::Ok();
}

}  // namespace atr
