// Synthetic graph generators.
//
// The paper evaluates on eight SNAP social/web networks; this environment is
// offline, so experiments run on deterministic synthetic stand-ins drawn
// from these families (see generators/social_profiles.h for the mapping).
// Every generator is a pure function of its parameters and seed.

#ifndef ATR_GRAPH_GENERATORS_GENERATORS_H_
#define ATR_GRAPH_GENERATORS_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace atr {

// G(n, m): m distinct uniform edges among n vertices.
Graph ErdosRenyiGraph(uint32_t num_vertices, uint32_t num_edges,
                      uint64_t seed);

// Preferential attachment: each new vertex attaches to `edges_per_vertex`
// existing vertices chosen proportionally to degree. Produces power-law
// degrees but low clustering (citation-network-like).
Graph BarabasiAlbertGraph(uint32_t num_vertices, uint32_t edges_per_vertex,
                          uint64_t seed);

// Holme-Kim power-law cluster model: preferential attachment where each
// additional link follows a triad-closure step with probability
// `triad_probability`. High clustering + power-law degrees, the profile of
// friendship networks, and the main source of rich truss structure.
Graph HolmeKimGraph(uint32_t num_vertices, uint32_t edges_per_vertex,
                    double triad_probability, uint64_t seed);

// Watts-Strogatz small world: ring lattice with `lattice_degree` (even)
// neighbors, each edge rewired with probability `rewire_probability`.
Graph WattsStrogatzGraph(uint32_t num_vertices, uint32_t lattice_degree,
                         double rewire_probability, uint64_t seed);

// Random geometric graph on the unit square: vertices connect when within
// `radius`. Location-based check-in networks (Brightkite/Gowalla) have this
// geometry-dominated structure.
Graph RandomGeometricGraph(uint32_t num_vertices, double radius,
                           uint64_t seed);

// R-MAT / Kronecker-style recursive generator (web-graph-like skew).
// `a + b + c + d` must be ~1; 2^scale vertices, `num_edges` samples.
Graph RMatGraph(uint32_t scale, uint32_t num_edges, double a, double b,
                double c, uint64_t seed);

// Dense planted communities over a sparse Erdos-Renyi background:
// `num_communities` vertex blocks of size `community_size` with internal
// edge probability `p_in`, plus `background_edges` uniform edges. Creates
// well-separated truss components across several trussness levels.
Graph PlantedCommunitiesGraph(uint32_t num_vertices, uint32_t num_communities,
                              uint32_t community_size, double p_in,
                              uint32_t background_edges, uint64_t seed);

}  // namespace atr

#endif  // ATR_GRAPH_GENERATORS_GENERATORS_H_
