#include "graph/generators/generators.h"

#include <vector>

#include "util/macros.h"
#include "util/prng.h"

namespace atr {

Graph BarabasiAlbertGraph(uint32_t num_vertices, uint32_t edges_per_vertex,
                          uint64_t seed) {
  ATR_CHECK(edges_per_vertex >= 1);
  ATR_CHECK(num_vertices > edges_per_vertex);

  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  // `targets` holds one entry per edge endpoint, so uniform sampling from it
  // is sampling proportional to degree (the standard repeated-nodes trick).
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(2ull * num_vertices * edges_per_vertex);

  // Seed clique over the first edges_per_vertex + 1 vertices so every early
  // vertex has nonzero degree.
  const uint32_t seed_size = edges_per_vertex + 1;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }

  std::vector<VertexId> chosen;
  for (VertexId w = seed_size; w < num_vertices; ++w) {
    chosen.clear();
    // Draw `edges_per_vertex` distinct degree-proportional targets.
    while (chosen.size() < edges_per_vertex) {
      const VertexId candidate =
          endpoint_pool[rng.NextBounded(endpoint_pool.size())];
      bool duplicate = false;
      for (VertexId existing : chosen) duplicate |= (existing == candidate);
      if (!duplicate) chosen.push_back(candidate);
    }
    for (VertexId target : chosen) {
      builder.AddEdge(w, target);
      endpoint_pool.push_back(w);
      endpoint_pool.push_back(target);
    }
  }
  return builder.Build();
}

}  // namespace atr
