#include "graph/generators/social_profiles.h"

#include <cmath>

#include "graph/generators/generators.h"
#include "util/macros.h"

namespace atr {
namespace {

// Base seed; each profile derives its own stream from it plus its index.
constexpr uint64_t kProfileSeed = 0x41545221ull;  // "ATR!"

uint32_t Scaled(uint32_t base, double scale, uint32_t minimum) {
  const double v = static_cast<double>(base) * scale;
  return std::max(minimum, static_cast<uint32_t>(v + 0.5));
}

}  // namespace

std::vector<DatasetSpec> SocialProfileSpecs() {
  return {
      {"college",
       "SNAP CollegeMsg stand-in: small message network; planted dense "
       "groups over an Erdos-Renyi background reproduce its low k_max and "
       "mixed-density structure"},
      {"facebook",
       "SNAP ego-Facebook stand-in: dense friendship circles; Holme-Kim with "
       "high triad closure reproduces its extreme clustering and deep truss "
       "hierarchy"},
      {"brightkite",
       "SNAP Brightkite stand-in: location check-in network; random "
       "geometric graph reproduces its spatially clustered structure"},
      {"gowalla",
       "SNAP Gowalla stand-in: larger location check-in network; random "
       "geometric graph at larger scale"},
      {"youtube",
       "SNAP com-Youtube stand-in: sparse social network with moderate "
       "clustering; Holme-Kim with low triad probability"},
      {"google",
       "SNAP web-Google stand-in: web graph; R-MAT skew reproduces its "
       "hub-dominated degree distribution"},
      {"patents",
       "SNAP cit-Patents stand-in: citation network with low clustering; "
       "preferential attachment with rare triad closure"},
      {"pokec",
       "SNAP soc-Pokec stand-in: large friendship network; Holme-Kim with "
       "moderate triad closure at the largest scale"},
  };
}

Graph MakeSocialProfile(const std::string& name, double scale,
                        uint64_t seed) {
  ATR_CHECK(scale > 0.0 && scale <= 4.0);
  const uint64_t s = seed ^ kProfileSeed;
  if (name == "college") {
    const uint32_t n = Scaled(1900, scale, 200);
    return PlantedCommunitiesGraph(n, /*num_communities=*/n / 30,
                                   /*community_size=*/12, /*p_in=*/0.85,
                                   /*background_edges=*/Scaled(8500, scale, 500),
                                   s + 1);
  }
  if (name == "facebook") {
    return HolmeKimGraph(Scaled(4000, scale, 300), /*edges_per_vertex=*/22,
                         /*triad_probability=*/0.92, s + 2);
  }
  if (name == "brightkite") {
    const uint32_t n = Scaled(20000, scale, 1000);
    const double radius = std::sqrt(2.0 * 4.0 * n / 3.14159265 /
                                    (static_cast<double>(n) * n));
    return RandomGeometricGraph(n, radius, s + 3);
  }
  if (name == "gowalla") {
    const uint32_t n = Scaled(40000, scale, 2000);
    const double radius = std::sqrt(2.0 * 3.6 * n / 3.14159265 /
                                    (static_cast<double>(n) * n));
    return RandomGeometricGraph(n, radius, s + 4);
  }
  if (name == "youtube") {
    return HolmeKimGraph(Scaled(80000, scale, 4000), /*edges_per_vertex=*/3,
                         /*triad_probability=*/0.35, s + 5);
  }
  if (name == "google") {
    const uint32_t n = Scaled(65536, scale, 4096);
    uint32_t bits = 12;
    while ((1u << bits) < n) ++bits;
    return RMatGraph(bits, Scaled(260000, scale, 16000), 0.57, 0.19, 0.19,
                     s + 6);
  }
  if (name == "patents") {
    return HolmeKimGraph(Scaled(100000, scale, 5000), /*edges_per_vertex=*/4,
                         /*triad_probability=*/0.15, s + 7);
  }
  if (name == "pokec") {
    return HolmeKimGraph(Scaled(110000, scale, 5000), /*edges_per_vertex=*/5,
                         /*triad_probability=*/0.55, s + 8);
  }
  ATR_CHECK_MSG(false, ("unknown dataset profile: " + name).c_str());
  return Graph();
}

std::vector<NamedGraph> MakeAllSocialProfiles(double scale) {
  std::vector<NamedGraph> out;
  for (const DatasetSpec& spec : SocialProfileSpecs()) {
    out.push_back(NamedGraph{spec.name, MakeSocialProfile(spec.name, scale,
                                                          /*seed=*/0)});
  }
  return out;
}

}  // namespace atr
