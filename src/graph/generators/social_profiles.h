// Named synthetic stand-ins for the paper's eight SNAP datasets.
//
// Table III of the paper evaluates on College, Facebook, Brightkite,
// Gowalla, Youtube, Google, Patents, Pokec. Offline, we substitute each with
// a deterministic generator whose family matches the original's structural
// profile (documented per profile below and in DESIGN.md §3), scaled to
// laptop size. `scale` in (0, 1] shrinks vertex counts proportionally so
// the scalability experiments can sweep sizes.

#ifndef ATR_GRAPH_GENERATORS_SOCIAL_PROFILES_H_
#define ATR_GRAPH_GENERATORS_SOCIAL_PROFILES_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace atr {

struct DatasetSpec {
  // Stand-in name, lower-case, mirroring the paper's dataset order.
  std::string name;
  // Which SNAP dataset this profile substitutes and why the family matches.
  std::string provenance;
};

// The eight dataset specs in the paper's Table III order.
std::vector<DatasetSpec> SocialProfileSpecs();

// Builds stand-in dataset `name` at the given scale. Aborts on unknown
// names (programming error: names come from SocialProfileSpecs()).
Graph MakeSocialProfile(const std::string& name, double scale, uint64_t seed);

// Convenience: the default-seed, given-scale instantiation of all 8.
struct NamedGraph {
  std::string name;
  Graph graph;
};
std::vector<NamedGraph> MakeAllSocialProfiles(double scale);

}  // namespace atr

#endif  // ATR_GRAPH_GENERATORS_SOCIAL_PROFILES_H_
