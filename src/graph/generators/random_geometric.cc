#include "graph/generators/generators.h"

#include <cmath>
#include <vector>

#include "util/macros.h"
#include "util/prng.h"

namespace atr {

Graph RandomGeometricGraph(uint32_t num_vertices, double radius,
                           uint64_t seed) {
  ATR_CHECK(radius > 0.0 && radius < 1.0);

  Rng rng(seed);
  std::vector<double> x(num_vertices);
  std::vector<double> y(num_vertices);
  for (uint32_t i = 0; i < num_vertices; ++i) {
    x[i] = rng.NextDouble();
    y[i] = rng.NextDouble();
  }

  // Grid bucketing with cell size `radius`: neighbors can only be in the
  // 3x3 cell neighborhood, making the sweep near-linear.
  const uint32_t cells = std::max<uint32_t>(1, static_cast<uint32_t>(1.0 / radius));
  const double cell_size = 1.0 / cells;
  std::vector<std::vector<VertexId>> grid(
      static_cast<size_t>(cells) * cells);
  auto cell_index = [&](double coord) {
    uint32_t c = static_cast<uint32_t>(coord / cell_size);
    return std::min(c, cells - 1);
  };
  for (VertexId i = 0; i < num_vertices; ++i) {
    grid[cell_index(x[i]) * cells + cell_index(y[i])].push_back(i);
  }

  const double r2 = radius * radius;
  GraphBuilder builder(num_vertices);
  for (VertexId i = 0; i < num_vertices; ++i) {
    const uint32_t ci = cell_index(x[i]);
    const uint32_t cj = cell_index(y[i]);
    for (int di = -1; di <= 1; ++di) {
      for (int dj = -1; dj <= 1; ++dj) {
        const int ni = static_cast<int>(ci) + di;
        const int nj = static_cast<int>(cj) + dj;
        if (ni < 0 || nj < 0 || ni >= static_cast<int>(cells) ||
            nj >= static_cast<int>(cells)) {
          continue;
        }
        for (VertexId j : grid[static_cast<size_t>(ni) * cells + nj]) {
          if (j <= i) continue;  // each pair once
          const double dx = x[i] - x[j];
          const double dy = y[i] - y[j];
          if (dx * dx + dy * dy <= r2) builder.AddEdge(i, j);
        }
      }
    }
  }
  return builder.Build();
}

}  // namespace atr
