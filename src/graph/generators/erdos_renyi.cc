#include "graph/generators/generators.h"

#include <unordered_set>

#include "util/macros.h"
#include "util/prng.h"

namespace atr {

Graph ErdosRenyiGraph(uint32_t num_vertices, uint32_t num_edges,
                      uint64_t seed) {
  ATR_CHECK(num_vertices >= 2);
  const uint64_t max_edges =
      static_cast<uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  ATR_CHECK_MSG(num_edges <= max_edges, "more edges than the complete graph");

  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (seen.size() < num_edges) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) builder.AddEdge(u, v);
  }
  return builder.Build();
}

}  // namespace atr
