#include "graph/generators/generators.h"

#include <cmath>

#include "util/macros.h"
#include "util/prng.h"

namespace atr {

Graph RMatGraph(uint32_t scale, uint32_t num_edges, double a, double b,
                double c, uint64_t seed) {
  ATR_CHECK(scale >= 1 && scale <= 30);
  const double d = 1.0 - a - b - c;
  ATR_CHECK_MSG(d > -1e-9, "R-MAT quadrant probabilities exceed 1");

  Rng rng(seed);
  GraphBuilder builder(1u << scale);
  // Oversample: self-loops and duplicates are dropped by the builder, and
  // R-MAT naturally produces repeats in its dense corner.
  const uint32_t attempts = num_edges + num_edges / 4;
  for (uint32_t i = 0; i < attempts && builder.PendingEdges() < num_edges;
       ++i) {
    VertexId u = 0;
    VertexId v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double roll = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (roll < a) {
        // top-left quadrant: no bits set
      } else if (roll < a + b) {
        v |= 1;
      } else if (roll < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

}  // namespace atr
