#include "graph/generators/generators.h"

#include <unordered_set>
#include <vector>

#include "util/macros.h"
#include "util/prng.h"

namespace atr {

Graph HolmeKimGraph(uint32_t num_vertices, uint32_t edges_per_vertex,
                    double triad_probability, uint64_t seed) {
  ATR_CHECK(edges_per_vertex >= 1);
  ATR_CHECK(num_vertices > edges_per_vertex);
  ATR_CHECK(triad_probability >= 0.0 && triad_probability <= 1.0);

  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  std::vector<VertexId> endpoint_pool;  // degree-proportional sampling pool
  std::vector<std::vector<VertexId>> adjacency(num_vertices);

  auto connect = [&](VertexId a, VertexId b) {
    builder.AddEdge(a, b);
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
    endpoint_pool.push_back(a);
    endpoint_pool.push_back(b);
  };

  const uint32_t seed_size = edges_per_vertex + 1;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) connect(u, v);
  }

  std::unordered_set<VertexId> linked;  // targets of the current new vertex
  for (VertexId w = seed_size; w < num_vertices; ++w) {
    linked.clear();
    VertexId last_target = kInvalidVertex;
    for (uint32_t i = 0; i < edges_per_vertex; ++i) {
      VertexId target = kInvalidVertex;
      // Triad-closure step: connect to a random neighbor of the previous
      // preferential target, closing a triangle through it. This is what
      // gives friendship-network clustering and deep truss levels.
      if (i > 0 && last_target != kInvalidVertex &&
          rng.NextBernoulli(triad_probability)) {
        const std::vector<VertexId>& candidates = adjacency[last_target];
        for (int attempt = 0; attempt < 8 && target == kInvalidVertex;
             ++attempt) {
          const VertexId pick = candidates[rng.NextBounded(candidates.size())];
          if (pick != w && linked.find(pick) == linked.end()) target = pick;
        }
      }
      // Preferential-attachment fallback (also the i == 0 path).
      while (target == kInvalidVertex) {
        const VertexId pick =
            endpoint_pool[rng.NextBounded(endpoint_pool.size())];
        if (pick != w && linked.find(pick) == linked.end()) target = pick;
      }
      linked.insert(target);
      connect(w, target);
      last_target = target;
    }
  }
  return builder.Build();
}

}  // namespace atr
