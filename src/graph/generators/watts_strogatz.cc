#include "graph/generators/generators.h"

#include <unordered_set>

#include "util/macros.h"
#include "util/prng.h"

namespace atr {

Graph WattsStrogatzGraph(uint32_t num_vertices, uint32_t lattice_degree,
                         double rewire_probability, uint64_t seed) {
  ATR_CHECK(lattice_degree >= 2 && lattice_degree % 2 == 0);
  ATR_CHECK(num_vertices > lattice_degree);
  ATR_CHECK(rewire_probability >= 0.0 && rewire_probability <= 1.0);

  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  std::unordered_set<uint64_t> present;
  auto key = [](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  };

  const uint32_t half = lattice_degree / 2;
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (uint32_t offset = 1; offset <= half; ++offset) {
      VertexId v = (u + offset) % num_vertices;
      // Rewire the lattice edge's far endpoint with probability p.
      if (rng.NextBernoulli(rewire_probability)) {
        for (int attempt = 0; attempt < 16; ++attempt) {
          const VertexId candidate =
              static_cast<VertexId>(rng.NextBounded(num_vertices));
          if (candidate == u) continue;
          if (present.find(key(u, candidate)) != present.end()) continue;
          v = candidate;
          break;
        }
      }
      if (present.insert(key(u, v)).second) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

}  // namespace atr
