#include "graph/generators/generators.h"

#include "util/macros.h"
#include "util/prng.h"

namespace atr {

Graph PlantedCommunitiesGraph(uint32_t num_vertices, uint32_t num_communities,
                              uint32_t community_size, double p_in,
                              uint32_t background_edges, uint64_t seed) {
  ATR_CHECK(community_size >= 3);
  ATR_CHECK(p_in > 0.0 && p_in <= 1.0);
  ATR_CHECK(static_cast<uint64_t>(num_communities) * community_size <=
            num_vertices);

  Rng rng(seed);
  GraphBuilder builder(num_vertices);

  // Dense blocks over disjoint vertex ranges. With p_in near 1 these are
  // near-cliques, planting high-trussness components of size
  // ~community_size + 1 trussness.
  for (uint32_t cidx = 0; cidx < num_communities; ++cidx) {
    const VertexId base = cidx * community_size;
    for (uint32_t i = 0; i < community_size; ++i) {
      for (uint32_t j = i + 1; j < community_size; ++j) {
        if (rng.NextBernoulli(p_in)) builder.AddEdge(base + i, base + j);
      }
    }
  }

  // Sparse uniform background stitching communities together (duplicates
  // with block edges are merged by the builder).
  for (uint32_t i = 0; i < background_edges; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (u != v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

}  // namespace atr
