#include "graph/flat_view.h"

#include <utility>

namespace atr {
namespace {

// Orientation rule shared with graph/triangles.cc: the half-edge points
// from the (degree, id)-smaller endpoint to the larger one.
bool OrientedPrecedes(const Graph& g, VertexId a, VertexId b) {
  const uint32_t da = g.Degree(a);
  const uint32_t db = g.Degree(b);
  return da < db || (da == db && a < b);
}

}  // namespace

FlatGraphView FlatGraphView::Build(const Graph& g) {
  FlatGraphView view;
  view.num_vertices = g.NumVertices();
  view.num_edges = g.NumEdges();

  view.offsets.assign(view.num_vertices + 1, 0);
  view.adj.reserve(static_cast<size_t>(view.num_edges) * 2);
  for (VertexId u = 0; u < view.num_vertices; ++u) {
    view.offsets[u] = static_cast<uint32_t>(view.adj.size());
    for (const AdjEntry& entry : g.Neighbors(u)) {
      view.adj.push_back(FlatZip(entry.neighbor, entry.edge));
    }
  }
  view.offsets[view.num_vertices] = static_cast<uint32_t>(view.adj.size());

  // Oriented half-edges fall out of the already-sorted adjacency in one
  // linear pass: keeping only the (degree, id)-forward entries of each
  // vertex preserves ascending-neighbor order, so no per-vertex sort is
  // needed (unlike internal::BuildOrientedAdjacency).
  view.oriented_offsets.assign(view.num_vertices + 1, 0);
  view.oriented.reserve(view.num_edges);
  for (VertexId u = 0; u < view.num_vertices; ++u) {
    view.oriented_offsets[u] = static_cast<uint32_t>(view.oriented.size());
    for (const AdjEntry& entry : g.Neighbors(u)) {
      if (OrientedPrecedes(g, u, entry.neighbor)) {
        view.oriented.push_back(FlatZip(entry.neighbor, entry.edge));
      }
    }
  }
  view.oriented_offsets[view.num_vertices] =
      static_cast<uint32_t>(view.oriented.size());

  view.edge_ends.reserve(view.num_edges);
  for (const EdgeEndpoints& e : g.edges()) {
    view.edge_ends.push_back(FlatZip(e.u, e.v));
  }
  return view;
}

}  // namespace atr
