// Subgraph extraction and sampling, used by the experiment harnesses:
//  * vertex-induced subgraphs (Exp-6 scalability: sample |V|),
//  * edge-sampled subgraphs (Exp-6 scalability: sample |E|),
//  * ego-ball extraction of 150-250 edge fragments, the method of Linghu et
//    al. [3] the paper uses to make Exact tractable (Exp-2).

#ifndef ATR_GRAPH_SUBGRAPH_H_
#define ATR_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"
#include "util/prng.h"

namespace atr {

// Subgraph induced by `vertices` (deduplicated); vertices are relabeled to
// [0, k) following their order in the input. When `old_to_new` is non-null
// it receives the mapping (kInvalidVertex for dropped vertices).
Graph InducedSubgraph(const Graph& g, const std::vector<VertexId>& vertices,
                      std::vector<VertexId>* old_to_new = nullptr);

// Keeps each edge listed in `edge_ids`; vertex set is preserved (isolated
// vertices remain so vertex ids stay stable).
Graph EdgeSubgraph(const Graph& g, const std::vector<EdgeId>& edge_ids);

// Uniformly samples round(fraction * m) edges; vertex set preserved.
Graph SampleEdges(const Graph& g, double fraction, Rng& rng);

// Uniformly samples round(fraction * n) vertices and returns the induced
// subgraph (relabeled).
Graph SampleVertices(const Graph& g, double fraction, Rng& rng);

// BFS ball around `seed` grown vertex-by-vertex until the induced subgraph
// has at least `min_edges` edges (or the component is exhausted); stops
// before exceeding `max_edges` when possible. Returns the induced subgraph.
Graph ExtractEgoBall(const Graph& g, VertexId seed, uint32_t min_edges,
                     uint32_t max_edges);

}  // namespace atr

#endif  // ATR_GRAPH_SUBGRAPH_H_
