#include "graph/subgraph.h"

#include <algorithm>
#include <deque>

#include "util/macros.h"

namespace atr {

Graph InducedSubgraph(const Graph& g, const std::vector<VertexId>& vertices,
                      std::vector<VertexId>* old_to_new) {
  std::vector<VertexId> map(g.NumVertices(), kInvalidVertex);
  VertexId next = 0;
  for (VertexId v : vertices) {
    ATR_CHECK(v < g.NumVertices());
    if (map[v] == kInvalidVertex) map[v] = next++;
  }
  GraphBuilder builder(next);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const EdgeEndpoints ends = g.Edge(e);
    if (map[ends.u] != kInvalidVertex && map[ends.v] != kInvalidVertex) {
      builder.AddEdge(map[ends.u], map[ends.v]);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return builder.Build();
}

Graph EdgeSubgraph(const Graph& g, const std::vector<EdgeId>& edge_ids) {
  GraphBuilder builder(g.NumVertices());
  for (EdgeId e : edge_ids) {
    ATR_CHECK(e < g.NumEdges());
    const EdgeEndpoints ends = g.Edge(e);
    builder.AddEdge(ends.u, ends.v);
  }
  return builder.Build();
}

Graph SampleEdges(const Graph& g, double fraction, Rng& rng) {
  ATR_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const uint32_t m = g.NumEdges();
  const uint32_t keep =
      static_cast<uint32_t>(fraction * static_cast<double>(m) + 0.5);
  std::vector<uint32_t> chosen = rng.SampleWithoutReplacement(m, keep);
  std::vector<EdgeId> edges(chosen.begin(), chosen.end());
  return EdgeSubgraph(g, edges);
}

Graph SampleVertices(const Graph& g, double fraction, Rng& rng) {
  ATR_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const uint32_t n = g.NumVertices();
  const uint32_t keep =
      static_cast<uint32_t>(fraction * static_cast<double>(n) + 0.5);
  std::vector<uint32_t> chosen = rng.SampleWithoutReplacement(n, keep);
  std::vector<VertexId> vertices(chosen.begin(), chosen.end());
  return InducedSubgraph(g, vertices);
}

Graph ExtractEgoBall(const Graph& g, VertexId seed, uint32_t min_edges,
                     uint32_t max_edges) {
  ATR_CHECK(seed < g.NumVertices());
  ATR_CHECK(min_edges <= max_edges);
  std::vector<bool> in_ball(g.NumVertices(), false);
  std::vector<VertexId> ball;
  std::deque<VertexId> frontier;
  in_ball[seed] = true;
  ball.push_back(seed);
  frontier.push_back(seed);
  uint32_t induced_edges = 0;

  // Grow one vertex at a time so we can stop precisely inside the window.
  while (!frontier.empty() && induced_edges < min_edges) {
    const VertexId u = frontier.front();
    frontier.pop_front();
    for (const AdjEntry& entry : g.Neighbors(u)) {
      const VertexId w = entry.neighbor;
      if (in_ball[w]) continue;
      // Adding w contributes one induced edge per already-included neighbor.
      uint32_t new_edges = 0;
      for (const AdjEntry& wn : g.Neighbors(w)) {
        if (in_ball[wn.neighbor]) ++new_edges;
      }
      if (induced_edges + new_edges > max_edges && induced_edges >= min_edges) {
        break;
      }
      in_ball[w] = true;
      ball.push_back(w);
      frontier.push_back(w);
      induced_edges += new_edges;
      if (induced_edges >= min_edges) break;
    }
  }
  return InducedSubgraph(g, ball);
}

}  // namespace atr
