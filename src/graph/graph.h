// Immutable undirected simple graph in CSR form with dense edge ids.
//
// Every algorithm in this repository is edge-centric (truss decomposition,
// followers, anchoring), so edges carry first-class ids 0..m-1 and the
// adjacency stores (neighbor, edge id) pairs sorted by neighbor, giving
// O(log d) edge lookup and O(d(u) + d(v)) or O(min(d) * log max(d)) common
// neighbor iteration.
//
// Graphs are built through GraphBuilder, which deduplicates parallel edges
// and drops self-loops; topology is immutable afterwards. Anchoring never
// mutates the graph (anchors are flags interpreted by the truss layer).
//
// Streaming updates do not mutate a Graph either: Graph::ApplyEdits takes a
// GraphDelta (edge insertions + deletions) and materializes the NEXT
// immutable CSR snapshot, together with a stable old-edge-id -> new-edge-id
// remap table so per-edge state (a truss decomposition, anchor flags) can
// be carried across versions instead of recomputed (see
// AtrService::UpdateGraph and truss/incremental.h).

#ifndef ATR_GRAPH_GRAPH_H_
#define ATR_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/binary_io.h"
#include "util/macros.h"
#include "util/status.h"

namespace atr {

using VertexId = uint32_t;
using EdgeId = uint32_t;

inline constexpr EdgeId kInvalidEdge = 0xffffffffu;
inline constexpr VertexId kInvalidVertex = 0xffffffffu;

// Endpoints of an undirected edge, normalized so that u < v.
struct EdgeEndpoints {
  VertexId u;
  VertexId v;
};

inline bool operator==(EdgeEndpoints a, EdgeEndpoints b) {
  return a.u == b.u && a.v == b.v;
}

// One adjacency slot: the neighbor vertex and the id of the connecting edge.
struct AdjEntry {
  VertexId neighbor;
  EdgeId edge;
};

// A batch of edge mutations against one graph version (endpoints in either
// orientation). Consumed by Graph::ApplyEdits.
struct GraphDelta {
  std::vector<EdgeEndpoints> add;
  std::vector<EdgeEndpoints> remove;
};

struct GraphEditResult;

class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  uint32_t NumVertices() const { return num_vertices_; }
  uint32_t NumEdges() const { return static_cast<uint32_t>(edges_.size()); }

  // Endpoints of edge `e` with u < v.
  EdgeEndpoints Edge(EdgeId e) const {
    ATR_DCHECK(e < edges_.size());
    return edges_[e];
  }

  uint32_t Degree(VertexId u) const {
    ATR_DCHECK(u < num_vertices_);
    return offsets_[u + 1] - offsets_[u];
  }

  // Neighbors of `u` sorted by neighbor id.
  std::span<const AdjEntry> Neighbors(VertexId u) const {
    ATR_DCHECK(u < num_vertices_);
    return std::span<const AdjEntry>(adj_.data() + offsets_[u],
                                     offsets_[u + 1] - offsets_[u]);
  }

  // Returns the id of edge {u, v}, or kInvalidEdge when absent.
  // O(log min(d(u), d(v))).
  EdgeId FindEdge(VertexId u, VertexId v) const;

  bool HasEdge(VertexId u, VertexId v) const {
    return FindEdge(u, v) != kInvalidEdge;
  }

  // Sum over edges of min(d(u), d(v)); the classic O(m^1.5)-style cost bound
  // for triangle work on this graph. Used by benches to report workload size.
  uint64_t TriangleWorkBound() const;

  const std::vector<EdgeEndpoints>& edges() const { return edges_; }

  // Materializes the next immutable snapshot: this graph with every edge in
  // `delta.remove` deleted and every edge in `delta.add` inserted, plus the
  // edge-id remap that lets callers carry per-edge state across versions.
  // Vertex ids are stable — the vertex count only grows (to cover added
  // endpoints); deletions leave isolated vertices in place.
  //
  // Semantics: additions are normalized and deduplicated, and an addition
  // that already exists is an idempotent no-op (the edge keeps its remapped
  // id and is not reported in `added_edges`). Errors (kInvalidArgument):
  // self-loop or vertex id >= kInvalidVertex in `add`, a `remove` edge that
  // is absent, and an edge both added and removed in the same delta.
  StatusOr<GraphEditResult> ApplyEdits(const GraphDelta& delta) const;
  StatusOr<GraphEditResult> ApplyEdits(
      const std::vector<EdgeEndpoints>& adds,
      const std::vector<EdgeEndpoints>& removes) const;

  // --- Binary serialization (src/persist/ snapshot files) -----------------
  // Appends the topology to `writer`: vertex count, then the edge list in
  // edge-id order. Edge ids are part of the contract — Deserialize
  // reconstructs a graph whose edge ids (and therefore any per-edge state
  // indexed by them, e.g. a truss decomposition) match this graph exactly.
  void SerializeTo(ByteWriter& writer) const;

  // Mirror of SerializeTo. Fails with kInvalidArgument on truncated input
  // or an edge list that is not normalized (u < v, sorted by (u, v),
  // duplicate-free, endpoints < vertex count) — this is the validation
  // boundary for untrusted snapshot bytes, so it must never abort.
  static StatusOr<Graph> DeserializeFrom(ByteReader& reader);

 private:
  friend class GraphBuilder;

  // Shared CSR materialization for GraphBuilder::Build and ApplyEdits:
  // `edges` must be normalized (u < v), sorted by (u, v), duplicate-free,
  // with endpoints < num_vertices.
  static Graph FromSortedEdges(uint32_t num_vertices,
                               std::vector<EdgeEndpoints> edges);

  uint32_t num_vertices_ = 0;
  std::vector<uint32_t> offsets_;  // size num_vertices_ + 1
  std::vector<AdjEntry> adj_;      // size 2m, sorted per vertex
  std::vector<EdgeEndpoints> edges_;
};

// Result of Graph::ApplyEdits — the new snapshot plus the id translation
// downstream per-edge state (truss decompositions, anchor masks) needs to
// migrate from the previous version.
struct GraphEditResult {
  Graph graph;
  // Indexed by old EdgeId: the edge's id in `graph`, or kInvalidEdge for
  // edges the delta removed.
  std::vector<EdgeId> edge_remap;
  // Ids (in `graph`, ascending) of the edges the delta genuinely added —
  // idempotent re-additions of existing edges are not listed.
  std::vector<EdgeId> added_edges;
};

// Accumulates an edge list and produces a normalized Graph: self-loops
// dropped, duplicates (in either orientation) merged, adjacency sorted, edge
// ids assigned in the order edges were first added (after dedup, sorted by
// (u, v) to make ids independent of insertion order).
class GraphBuilder {
 public:
  explicit GraphBuilder(uint32_t num_vertices = 0)
      : num_vertices_(num_vertices) {}

  // Adds the undirected edge {u, v}; grows the vertex count as needed.
  void AddEdge(VertexId u, VertexId v);

  // Number of (not yet deduplicated) edges added so far.
  size_t PendingEdges() const { return pending_.size(); }

  uint32_t NumVertices() const { return num_vertices_; }

  // Builds the graph. The builder is left empty.
  Graph Build();

 private:
  uint32_t num_vertices_;
  std::vector<EdgeEndpoints> pending_;
};

}  // namespace atr

#endif  // ATR_GRAPH_GRAPH_H_
