// Flat structure-of-arrays mirror of an immutable Graph, the memory layout
// the flat peel kernels (truss/flat_peel.h) run on. The CSR in graph.h
// stores AdjEntry structs; the peel's inner loops want the MaxTruss-style
// packing instead: each adjacency entry is one zipped uint64_t holding
// (neighbor << 32) | edge_id, so a sorted-merge intersection compares raw
// 64-bit words and reads the closing edge ids from the low halves without
// a FindEdge binary search per probe.
//
// A view is built once per graph snapshot — the shared-decomposition build
// path (ComputeSharedTrussDecomposition, which the service layer invokes
// exactly once per published GraphVersion) constructs one view and every
// phase of the peel reuses it. Benches and repeated-decomposition callers
// can amortize further through the overloads in truss/flat_peel.h that
// accept a prebuilt view.

#ifndef ATR_GRAPH_FLAT_VIEW_H_
#define ATR_GRAPH_FLAT_VIEW_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace atr {

// Packs (hi, lo) as (hi << 32) | lo. Zipped arrays sort by the high half
// first, so adjacency zipped as (neighbor, edge) keeps exactly the
// ascending-neighbor order of Graph::Neighbors.
inline constexpr uint64_t FlatZip(uint32_t hi, uint32_t lo) {
  return (static_cast<uint64_t>(hi) << 32) | lo;
}
inline constexpr uint32_t FlatHi(uint64_t zipped) {
  return static_cast<uint32_t>(zipped >> 32);
}
inline constexpr uint32_t FlatLo(uint64_t zipped) {
  return static_cast<uint32_t>(zipped);
}

struct FlatGraphView {
  uint32_t num_vertices = 0;
  uint32_t num_edges = 0;

  // Full adjacency: adj[offsets[u] .. offsets[u+1]) holds
  // FlatZip(neighbor, edge) ascending by neighbor — the peel's per-edge
  // triangle kernel intersects two of these spans.
  std::vector<uint32_t> offsets;
  std::vector<uint64_t> adj;

  // Degree-ordered orientation (the same (degree, id) rule as the forward
  // triangle sweep in graph/triangles.h): half-edge u -> v exists iff
  // (deg(u), u) < (deg(v), v). Entries are FlatZip(to, edge) ascending by
  // `to`, which bounds every out-degree by O(sqrt(m)) and drives the
  // work-efficient support-initialization sweep.
  std::vector<uint32_t> oriented_offsets;
  std::vector<uint64_t> oriented;

  // Edge endpoints FlatZip(u, v) with u < v, indexed by EdgeId.
  std::vector<uint64_t> edge_ends;

  std::span<const uint64_t> AdjOf(VertexId u) const {
    return std::span<const uint64_t>(adj).subspan(offsets[u],
                                                  offsets[u + 1] - offsets[u]);
  }
  std::span<const uint64_t> OrientedOf(VertexId u) const {
    return std::span<const uint64_t>(oriented)
        .subspan(oriented_offsets[u],
                 oriented_offsets[u + 1] - oriented_offsets[u]);
  }

  static FlatGraphView Build(const Graph& g);
};

// Shared-ownership handle mirroring SharedTrussDecomposition: one view per
// immutable snapshot, shared by every consumer that peels it.
using SharedFlatGraphView = std::shared_ptr<const FlatGraphView>;

}  // namespace atr

#endif  // ATR_GRAPH_FLAT_VIEW_H_
