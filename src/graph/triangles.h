// Triangle enumeration and per-edge support computation.
//
// Two access patterns are provided:
//  * ForEachTriangle enumerates every triangle of the graph exactly once
//    using the degree-ordered "forward" algorithm (O(m^1.5) on bounded
//    arboricity inputs). Used for support computation and for building the
//    truss-component tree.
//  * ForEachTriangleOfEdge enumerates the triangles containing one specific
//    edge in O(min(d(u), d(v)) * log max(d(u), d(v))), which is the inner
//    loop of peeling and of the follower search.

#ifndef ATR_GRAPH_TRIANGLES_H_
#define ATR_GRAPH_TRIANGLES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace atr {

// A triangle reported as its three edge ids plus the apex vertex that
// completes the queried/iterated edge.
struct TriangleEdges {
  EdgeId e1;
  EdgeId e2;
  EdgeId e3;
};

// Calls `fn(TriangleEdges)` once per triangle in the graph. Edge order
// within the callback is unspecified but deterministic.
template <typename Fn>
void ForEachTriangle(const Graph& g, Fn&& fn);

// Calls `fn(w, ew_u, ew_v)` for every common neighbor `w` of the endpoints
// (u, v) of edge `e`, where ew_u = edge {u, w} and ew_v = edge {v, w}.
template <typename Fn>
void ForEachTriangleOfEdge(const Graph& g, EdgeId e, Fn&& fn) {
  const EdgeEndpoints ends = g.Edge(e);
  VertexId a = ends.u;
  VertexId b = ends.v;
  if (g.Degree(a) > g.Degree(b)) std::swap(a, b);
  for (const AdjEntry& entry : g.Neighbors(a)) {
    if (entry.neighbor == b) continue;
    const EdgeId other = g.FindEdge(b, entry.neighbor);
    if (other == kInvalidEdge) continue;
    // entry.edge connects a-w; `other` connects b-w. Report in (u, v) order.
    if (a == ends.u) {
      fn(entry.neighbor, entry.edge, other);
    } else {
      fn(entry.neighbor, other, entry.edge);
    }
  }
}

// Number of triangles containing edge `e` (its support).
uint32_t EdgeSupport(const Graph& g, EdgeId e);

// Support of every edge, computed with one triangle sweep.
std::vector<uint32_t> ComputeSupport(const Graph& g);

// Total number of triangles in the graph.
uint64_t CountTriangles(const Graph& g);

namespace internal {

// Degree-ordered orientation used by ForEachTriangle: for each vertex, the
// out-neighbors are those later in the (degree, id) order, sorted by id.
struct OrientedAdjacency {
  std::vector<uint32_t> offsets;
  std::vector<AdjEntry> out;
};

OrientedAdjacency BuildOrientedAdjacency(const Graph& g);

}  // namespace internal

template <typename Fn>
void ForEachTriangle(const Graph& g, Fn&& fn) {
  const internal::OrientedAdjacency oriented =
      internal::BuildOrientedAdjacency(g);
  const uint32_t n = g.NumVertices();
  for (VertexId u = 0; u < n; ++u) {
    const AdjEntry* ubeg = oriented.out.data() + oriented.offsets[u];
    const AdjEntry* uend = oriented.out.data() + oriented.offsets[u + 1];
    for (const AdjEntry* uv = ubeg; uv != uend; ++uv) {
      const VertexId v = uv->neighbor;
      // Two-pointer intersection of out(u) and out(v): every common
      // out-neighbor w closes triangle (u, v, w) exactly once, since the
      // orientation is acyclic (degree-then-id order).
      const AdjEntry* p = ubeg;
      const AdjEntry* q = oriented.out.data() + oriented.offsets[v];
      const AdjEntry* qend = oriented.out.data() + oriented.offsets[v + 1];
      while (p != uend && q != qend) {
        if (p->neighbor < q->neighbor) {
          ++p;
        } else if (q->neighbor < p->neighbor) {
          ++q;
        } else {
          fn(TriangleEdges{uv->edge, p->edge, q->edge});
          ++p;
          ++q;
        }
      }
    }
  }
}

}  // namespace atr

#endif  // ATR_GRAPH_TRIANGLES_H_
