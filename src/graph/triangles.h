// Triangle enumeration and per-edge support computation.
//
// Two access patterns are provided:
//  * ForEachTriangle enumerates every triangle of the graph exactly once
//    using the degree-ordered "forward" algorithm (O(m^1.5) on bounded
//    arboricity inputs). Used for support computation and for building the
//    truss-component tree.
//  * ForEachTriangleOfEdge enumerates the triangles containing one specific
//    edge in O(min(d(u), d(v)) * log max(d(u), d(v))), which is the inner
//    loop of peeling and of the follower search.

#ifndef ATR_GRAPH_TRIANGLES_H_
#define ATR_GRAPH_TRIANGLES_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace atr {

// A triangle reported as its three edge ids plus the apex vertex that
// completes the queried/iterated edge.
struct TriangleEdges {
  EdgeId e1;
  EdgeId e2;
  EdgeId e3;
};

// Calls `fn(TriangleEdges)` once per triangle in the graph. Edge order
// within the callback is unspecified but deterministic.
template <typename Fn>
void ForEachTriangle(const Graph& g, Fn&& fn);

// Calls `fn(w, ew_u, ew_v)` for every common neighbor `w` of the endpoints
// (u, v) of edge `e`, where ew_u = edge {u, w} and ew_v = edge {v, w}.
template <typename Fn>
void ForEachTriangleOfEdge(const Graph& g, EdgeId e, Fn&& fn) {
  const EdgeEndpoints ends = g.Edge(e);
  VertexId a = ends.u;
  VertexId b = ends.v;
  if (g.Degree(a) > g.Degree(b)) std::swap(a, b);
  for (const AdjEntry& entry : g.Neighbors(a)) {
    if (entry.neighbor == b) continue;
    const EdgeId other = g.FindEdge(b, entry.neighbor);
    if (other == kInvalidEdge) continue;
    // entry.edge connects a-w; `other` connects b-w. Report in (u, v) order.
    if (a == ends.u) {
      fn(entry.neighbor, entry.edge, other);
    } else {
      fn(entry.neighbor, other, entry.edge);
    }
  }
}

// Cost model of the adaptive triangle kernels: the binary-search walk is
// chosen when  dmin * (bit_width(dmax) + 1) <= cutoff * (d(u) + d(v)).
// kDefaultTriangleCutoff = 1.0 weighs a walk probe equal to a merge step;
// override per process with the ATR_TRIANGLE_CUTOFF env var (a double: 0
// forces the merge everywhere, a large value forces the walk). Both paths
// report the same triangles in the same ascending-common-neighbor order,
// so the cutoff is tunable without affecting any result — the cutoff-sweep
// differential test in tests/graph_test.cc pins that down.
inline constexpr double kDefaultTriangleCutoff = 1.0;

namespace internal {

// The effective walk-vs-merge cutoff factor: ATR_TRIANGLE_CUTOFF if set
// (read once per process), else kDefaultTriangleCutoff, unless overridden
// by the test hook below.
double TriangleCutoff();

// Overrides the cutoff factor (for cutoff-sweep tests). Returns the
// previous value.
double SetTriangleCutoffForTest(double cutoff);

}  // namespace internal

// Adaptive variant of ForEachTriangleOfEdge: per edge, picks the cheaper
// of the sorted-merge intersection (O(d(u) + d(v))) and the binary-search
// walk (O(min d · log max d)) — merge wins on comparable degrees, the walk
// on hub edges; internal::TriangleCutoff() weighs the two cost models.
// Same callback contract and the same ascending-common-neighbor order.
// This is the kernel of the parallel support init and the parallel peel's
// frontier rounds, where each edge is queried independently from CSR and
// per-edge cost dominates.
template <typename Fn>
void ForEachTriangleOfEdgeAdaptive(const Graph& g, EdgeId e, Fn&& fn) {
  const EdgeEndpoints ends = g.Edge(e);
  const std::span<const AdjEntry> nu = g.Neighbors(ends.u);
  const std::span<const AdjEntry> nv = g.Neighbors(ends.v);
  const uint64_t dmin = std::min(nu.size(), nv.size());
  const uint64_t dmax = std::max(nu.size(), nv.size());
  const uint64_t walk_cost = dmin * (std::bit_width(dmax) + 1);
  if (static_cast<double>(walk_cost) <=
      internal::TriangleCutoff() * static_cast<double>(nu.size() + nv.size())) {
    ForEachTriangleOfEdge(g, e, std::forward<Fn>(fn));
    return;
  }
  // Two-pointer intersection; a common neighbor can never be u or v (that
  // would require a self-loop), so every match closes a triangle.
  size_t i = 0;
  size_t j = 0;
  while (i < nu.size() && j < nv.size()) {
    const VertexId a = nu[i].neighbor;
    const VertexId b = nv[j].neighbor;
    if (a < b) {
      ++i;
    } else if (b < a) {
      ++j;
    } else {
      fn(a, nu[i].edge, nv[j].edge);
      ++i;
      ++j;
    }
  }
}

// Number of triangles containing edge `e` (its support).
uint32_t EdgeSupport(const Graph& g, EdgeId e);

// Support of `e` restricted to triangles whose other two edges are set in
// `within` (empty = every edge counts; callers query in-subset edges, so
// `within[e]` itself is not consulted). Unlike ForEachTriangle — a serial
// whole-graph sweep — this queries one edge independently and only reads
// the immutable CSR plus `within`, so callers may evaluate disjoint edges
// concurrently. This is the parallel-friendly triangle primitive behind
// ComputeSupportParallel and the parallel truss peel.
uint32_t EdgeSupportWithin(const Graph& g, EdgeId e,
                           const std::vector<bool>& within);

// Support of every edge, computed with one triangle sweep.
std::vector<uint32_t> ComputeSupport(const Graph& g);

// Support of every edge in `within` (empty = all edges), computed by
// per-edge common-neighbor counting sharded across ParallelFor workers,
// chunked by edge id. Deterministic: each worker writes only its own
// edges' counts. Edges outside `within` report 0. With a single worker
// available (including inside a ParallelFor body) this falls back to the
// work-efficient oriented sweep — identical counts, ~3x less work.
std::vector<uint32_t> ComputeSupportParallel(const Graph& g,
                                             const std::vector<bool>& within =
                                                 {});

// Total number of triangles in the graph.
uint64_t CountTriangles(const Graph& g);

namespace internal {

// Degree-ordered orientation used by ForEachTriangle: for each vertex, the
// out-neighbors are those later in the (degree, id) order, sorted by id.
struct OrientedAdjacency {
  std::vector<uint32_t> offsets;
  std::vector<AdjEntry> out;
};

OrientedAdjacency BuildOrientedAdjacency(const Graph& g);

}  // namespace internal

template <typename Fn>
void ForEachTriangle(const Graph& g, Fn&& fn) {
  const internal::OrientedAdjacency oriented =
      internal::BuildOrientedAdjacency(g);
  const uint32_t n = g.NumVertices();
  for (VertexId u = 0; u < n; ++u) {
    const AdjEntry* ubeg = oriented.out.data() + oriented.offsets[u];
    const AdjEntry* uend = oriented.out.data() + oriented.offsets[u + 1];
    for (const AdjEntry* uv = ubeg; uv != uend; ++uv) {
      const VertexId v = uv->neighbor;
      // Two-pointer intersection of out(u) and out(v): every common
      // out-neighbor w closes triangle (u, v, w) exactly once, since the
      // orientation is acyclic (degree-then-id order).
      const AdjEntry* p = ubeg;
      const AdjEntry* q = oriented.out.data() + oriented.offsets[v];
      const AdjEntry* qend = oriented.out.data() + oriented.offsets[v + 1];
      while (p != uend && q != qend) {
        if (p->neighbor < q->neighbor) {
          ++p;
        } else if (q->neighbor < p->neighbor) {
          ++q;
        } else {
          fn(TriangleEdges{uv->edge, p->edge, q->edge});
          ++p;
          ++q;
        }
      }
    }
  }
}

}  // namespace atr

#endif  // ATR_GRAPH_TRIANGLES_H_
