// SNAP-style edge-list text I/O.
//
// The loader accepts the format the paper's datasets are distributed in
// (https://snap.stanford.edu): one edge per line, two whitespace-separated
// integer vertex ids, with '#' comment lines. Directed inputs are treated as
// undirected (duplicates and self-loops dropped), and vertex ids are
// remapped to a dense [0, n) range in order of first appearance.

#ifndef ATR_GRAPH_EDGE_LIST_IO_H_
#define ATR_GRAPH_EDGE_LIST_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace atr {

// Loads an edge list. Fails with InvalidArgument on malformed lines and
// NotFound when the file cannot be opened.
StatusOr<Graph> LoadSnapEdgeList(const std::string& path);

// Writes `g` as "u v" lines (one normalized edge per line), preceded by a
// '#' header with the vertex/edge counts.
Status SaveEdgeList(const Graph& g, const std::string& path);

}  // namespace atr

#endif  // ATR_GRAPH_EDGE_LIST_IO_H_
