#include "util/binary_io.h"

namespace atr {
namespace {

// Table-driven CRC-32 (IEEE), table built once at first use.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace atr
