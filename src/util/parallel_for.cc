#include "util/parallel_for.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "util/env.h"

namespace atr {
namespace {

// Per-thread override installed by ScopedParallelism; 0 means none. The
// override is read on the thread that calls ParallelFor (solvers fan out
// from the caller's thread), so concurrent engines don't interfere.
thread_local int t_worker_override = 0;

}  // namespace

int ParallelWorkerCount() {
  if (t_worker_override > 0) return t_worker_override;
  static const int count = [] {
    int64_t requested = GetEnvInt64("ATR_THREADS", 0);
    if (requested > 0) return static_cast<int>(requested);
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return count;
}

ScopedParallelism::ScopedParallelism(int threads)
    : previous_(t_worker_override) {
  if (threads > 0) t_worker_override = threads;
}

ScopedParallelism::~ScopedParallelism() { t_worker_override = previous_; }

void ParallelFor(int64_t n,
                 const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  const int workers =
      static_cast<int>(std::min<int64_t>(ParallelWorkerCount(), n));
  if (workers == 1) {
    body(0, n);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const int64_t chunk = (n + workers - 1) / workers;
  for (int w = 0; w < workers; ++w) {
    const int64_t begin = w * chunk;
    const int64_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&body, begin, end] { body(begin, end); });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace atr
