#include "util/parallel_for.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "util/env.h"

namespace atr {
namespace {

// Per-thread override installed by ScopedParallelism; 0 means none. The
// override is read on the thread that calls ParallelFor (solvers fan out
// from the caller's thread), so concurrent engines don't interfere.
thread_local int t_worker_override = 0;

// Set for the lifetime of a ParallelFor worker body: nested data-parallel
// calls (e.g. a truss decomposition computed inside a candidate-evaluation
// worker) collapse to one inline chunk instead of spawning a second level
// of threads. Results are unchanged — chunked reductions are fold-order
// deterministic at every chunk count, including one.
thread_local bool t_inside_worker = false;

int EffectiveWorkers(int64_t n) {
  if (t_inside_worker) return 1;
  return static_cast<int>(std::min<int64_t>(ParallelWorkerCount(), n));
}

void RunChunks(int64_t n,
               const std::function<void(int, int64_t, int64_t)>& body) {
  if (n <= 0) return;
  const int workers = EffectiveWorkers(n);
  if (workers == 1) {
    body(0, 0, n);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  // Balanced partition: chunk w is [n*w/workers, n*(w+1)/workers). Since
  // workers <= n, every chunk is non-empty — the old uniform-length split
  // (ceil(n/workers) each, stop at n) could starve the tail workers, e.g.
  // n=5 with 4 workers produced chunks of 2/2/1 and left one worker idle.
  for (int w = 0; w < workers; ++w) {
    const int64_t begin = n * w / workers;
    const int64_t end = n * (w + 1) / workers;
    threads.emplace_back([&body, w, begin, end] {
      t_inside_worker = true;
      body(w, begin, end);
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace

int ParallelWorkerCount() {
  if (t_inside_worker) return 1;
  if (t_worker_override > 0) return t_worker_override;
  static const int count = [] {
    int64_t requested = GetEnvInt64("ATR_THREADS", 0);
    if (requested > 0) return static_cast<int>(requested);
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return count;
}

ScopedParallelism::ScopedParallelism(int threads)
    : previous_(t_worker_override) {
  if (threads > 0) t_worker_override = threads;
}

ScopedParallelism::~ScopedParallelism() { t_worker_override = previous_; }

void ParallelFor(int64_t n,
                 const std::function<void(int64_t, int64_t)>& body) {
  RunChunks(n, [&body](int, int64_t begin, int64_t end) { body(begin, end); });
}

int ParallelChunkCount(int64_t n) {
  if (n <= 0) return 0;
  // One chunk per effective worker — the partition in RunChunks never
  // leaves a chunk empty, so every worker gets work even on tiny ranges.
  return EffectiveWorkers(n);
}

void ParallelForChunked(
    int64_t n,
    const std::function<void(int, int64_t, int64_t)>& body) {
  RunChunks(n, body);
}

}  // namespace atr
