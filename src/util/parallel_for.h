// Deterministic data-parallel loop used by the embarrassingly parallel
// pieces of the harness (Exact subset enumeration, randomized-baseline
// trials) and by the round-synchronous parallel truss peel. Work is split
// into fixed contiguous chunks per worker so results folded per-chunk in
// index order are reproducible regardless of thread scheduling.

#ifndef ATR_UTIL_PARALLEL_FOR_H_
#define ATR_UTIL_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace atr {

// Number of workers ParallelFor uses: an active ScopedParallelism override
// on the calling thread, else the ATR_THREADS env override, else
// hardware_concurrency(), at least 1. Inside a ParallelFor worker body this
// returns 1 — nested data-parallel calls run inline instead of
// oversubscribing with a second level of thread fan-out.
int ParallelWorkerCount();

// RAII worker-count override for ParallelFor calls made from the
// constructing thread (the API layer's SolverOptions::threads). A
// non-positive `threads` leaves the current setting untouched; overrides
// nest and are restored in destruction order.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(int threads);
  ~ScopedParallelism();

  ScopedParallelism(const ScopedParallelism&) = delete;
  ScopedParallelism& operator=(const ScopedParallelism&) = delete;

 private:
  int previous_;
};

// Invokes `body(begin, end)` over a partition of [0, n) into at most
// `ParallelWorkerCount()` contiguous chunks, one thread per chunk. `body`
// must be safe to call concurrently on disjoint ranges. Runs inline when n
// is small or only one worker is available.
void ParallelFor(int64_t n,
                 const std::function<void(int64_t begin, int64_t end)>& body);

// The number of chunks the chunked variant below will partition [0, n)
// into if called right now from this thread: one non-empty chunk per
// effective worker, i.e. min(ParallelWorkerCount(), n), or 0 when n <= 0.
// Callers size per-chunk accumulation buffers with this before fanning
// out.
int ParallelChunkCount(int64_t n);

// Same partition as ParallelFor, additionally passing the chunk's ordinal
// (0-based, dense, in ascending `begin` order) so the body can write into
// per-chunk buffers that the caller folds in chunk order afterwards — the
// deterministic-reduction pattern: the fold sees the same sequence of
// contributions for a given worker count no matter how the chunks were
// scheduled. The partition is balanced (chunk lengths differ by at most
// one) and covers [0, n) with ParallelChunkCount(n) non-empty chunks.
// Runs inline as chunk 0 when only one worker is available.
void ParallelForChunked(
    int64_t n,
    const std::function<void(int chunk, int64_t begin, int64_t end)>& body);

}  // namespace atr

#endif  // ATR_UTIL_PARALLEL_FOR_H_
