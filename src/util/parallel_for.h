// Deterministic data-parallel loop used by the embarrassingly parallel
// pieces of the harness (Exact subset enumeration, randomized-baseline
// trials). Work is split into fixed contiguous chunks per worker so results
// folded per-chunk in index order are reproducible regardless of thread
// scheduling.

#ifndef ATR_UTIL_PARALLEL_FOR_H_
#define ATR_UTIL_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace atr {

// Number of workers ParallelFor uses: an active ScopedParallelism override
// on the calling thread, else the ATR_THREADS env override, else
// hardware_concurrency(), at least 1.
int ParallelWorkerCount();

// RAII worker-count override for ParallelFor calls made from the
// constructing thread (the API layer's SolverOptions::threads). A
// non-positive `threads` leaves the current setting untouched; overrides
// nest and are restored in destruction order.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(int threads);
  ~ScopedParallelism();

  ScopedParallelism(const ScopedParallelism&) = delete;
  ScopedParallelism& operator=(const ScopedParallelism&) = delete;

 private:
  int previous_;
};

// Invokes `body(begin, end)` over a partition of [0, n) into at most
// `ParallelWorkerCount()` contiguous chunks, one thread per chunk. `body`
// must be safe to call concurrently on disjoint ranges. Runs inline when n
// is small or only one worker is available.
void ParallelFor(int64_t n,
                 const std::function<void(int64_t begin, int64_t end)>& body);

}  // namespace atr

#endif  // ATR_UTIL_PARALLEL_FOR_H_
