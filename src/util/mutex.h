// Annotated mutex / scoped-lock / condition-variable wrappers — the
// capability types behind the project's clang thread-safety analysis
// (util/thread_annotations.h, docs/STATIC_ANALYSIS.md).
//
// std::mutex carries no capability attributes in libstdc++, so fields
// declared ATR_GUARDED_BY(a std::mutex) would be unenforceable: clang
// would never see an acquire. These wrappers are zero-cost forwarding
// shims around the std types with the attributes attached:
//
//   class Account {
//    public:
//     void Deposit(int64_t amount) ATR_EXCLUDES(mu_) {
//       MutexLock lock(&mu_);
//       balance_ += amount;         // OK: mu_ is held
//       cv_.NotifyAll();
//     }
//    private:
//     Mutex mu_;
//     CondVar cv_;
//     int64_t balance_ ATR_GUARDED_BY(mu_) = 0;
//   };
//
// Condition waits never use predicate lambdas: clang analyzes a lambda as
// a free function that holds nothing, so `cv.wait(lock, [&]{ ...guarded
// fields... })` reports false positives. Write the loop out instead —
// `while (!ready_) cv_.Wait(mu_);` — which the analysis follows exactly.
//
// Lock/Unlock are public so the wrapper stays general, but hand-written
// lock/unlock pairs are banned by tools/atr_lint.py outside this file:
// every acquisition in src/ goes through MutexLock so early returns and
// exceptions cannot leak a held mutex.

#ifndef ATR_UTIL_MUTEX_H_
#define ATR_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace atr {

// Exclusive capability wrapping std::mutex.
class ATR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ATR_ACQUIRE() { mu_.lock(); }
  void Unlock() ATR_RELEASE() { mu_.unlock(); }
  bool TryLock() ATR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // The wrapped handle, for CondVar's adopt-and-release wait below. Not
  // for direct locking — that would be invisible to the analysis.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII guard; the only sanctioned way to acquire a Mutex outside
// util/mutex.h. Shape follows the scoped-capability example in the LLVM
// thread-safety docs: Unlock/Lock allow dropping the mutex mid-scope
// (publishing a result before invoking a caller-owned hook), and the
// destructor releases only when still held.
class ATR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ATR_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu->Lock();
  }
  ~MutexLock() ATR_RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Early release / re-acquire inside the scope.
  void Unlock() ATR_RELEASE() {
    mu_->Unlock();
    held_ = false;
  }
  void Lock() ATR_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* mu_;
  bool held_;
};

// Condition variable paired with Mutex. Waits temporarily adopt the
// wrapped std::mutex so the fast std::condition_variable (not
// condition_variable_any) does the parking; the capability is held at
// entry and at exit, which is exactly what ATR_REQUIRES states.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  // Blocks until notified (spurious wakeups included — always wait in a
  // `while (!predicate)` loop).
  void Wait(Mutex& mu) ATR_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.native(), std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // the caller's MutexLock still owns the mutex
  }

  // Returns false when `deadline` passed without a notification.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      ATR_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(adopted, deadline);
    adopted.release();
    return status == std::cv_status::no_timeout;
  }

  // Returns false on timeout. Negative or zero waits time out immediately
  // after one predicate-free check, like std::condition_variable.
  bool WaitForMs(Mutex& mu, int64_t timeout_ms) ATR_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(timeout_ms));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace atr

#endif  // ATR_UTIL_MUTEX_H_
