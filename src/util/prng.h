// Deterministic, portable pseudo-random number generation.
//
// The standard <random> distributions are implementation-defined, which
// would make "same seed, same dataset" break across standard libraries.
// Every randomized component in this repository (graph generators, random
// baselines, test sweeps) uses atr::Rng so results are bit-reproducible.
//
// Engine: xoshiro256** (Blackman & Vigna) seeded via SplitMix64.
// Bounded integers use Lemire's multiply-shift rejection method.

#ifndef ATR_UTIL_PRNG_H_
#define ATR_UTIL_PRNG_H_

#include <cstdint>
#include <vector>

#include "util/macros.h"

namespace atr {

// Stateless seed-scrambler; also usable as a cheap standalone generator.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** engine with convenience sampling helpers. Copyable so
// experiments can fork deterministic sub-streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (uint64_t& word : s_) word = SplitMix64(sm);
  }

  // Returns the next 64 uniformly random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Returns a uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound) {
    ATR_DCHECK(bound > 0);
    // Lemire's method: unbiased via rejection on the low product half.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Returns a uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    ATR_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Returns a uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  // Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  // Samples `k` distinct values uniformly from [0, n) (selection sampling;
  // output is in increasing order). Requires k <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace atr

#endif  // ATR_UTIL_PRNG_H_
