// Wall-clock timing for the benchmark harnesses.

#ifndef ATR_UTIL_TIMER_H_
#define ATR_UTIL_TIMER_H_

#include <chrono>

namespace atr {

// Monotonic stopwatch started at construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace atr

#endif  // ATR_UTIL_TIMER_H_
