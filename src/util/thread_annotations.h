// Clang thread-safety-analysis annotation macros (ATR_GUARDED_BY,
// ATR_REQUIRES, ...). Under clang with -Wthread-safety these expand to the
// capability attributes the static analysis consumes; under every other
// compiler they expand to nothing, so gcc builds are unaffected.
//
// The annotations only bite on capability types. std::mutex carries no
// capability attributes in libstdc++, so the lockable layers use the
// annotated wrappers in util/mutex.h (atr::Mutex / atr::MutexLock /
// atr::CondVar) instead — see docs/STATIC_ANALYSIS.md for the conventions
// and the suppression policy.
//
// Naming follows the LLVM documentation (Acquire/Release spelling), with
// an ATR_ prefix so the macros cannot collide with a vendored library's.

#ifndef ATR_UTIL_THREAD_ANNOTATIONS_H_
#define ATR_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define ATR_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ATR_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

// Class attribute: the type is a capability ("mutex" in diagnostics).
#define ATR_CAPABILITY(x) ATR_THREAD_ANNOTATION_(capability(x))

// Class attribute: RAII object that acquires on construction and releases
// on destruction (MutexLock).
#define ATR_SCOPED_CAPABILITY ATR_THREAD_ANNOTATION_(scoped_lockable)

// Data member: may only be touched while holding the given capability.
#define ATR_GUARDED_BY(x) ATR_THREAD_ANNOTATION_(guarded_by(x))

// Pointer member: the pointee (not the pointer) needs the capability.
#define ATR_PT_GUARDED_BY(x) ATR_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function: caller must hold the capability (the *Locked() helpers).
#define ATR_REQUIRES(...) \
  ATR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define ATR_REQUIRES_SHARED(...) \
  ATR_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// Function: acquires / releases the capability (Mutex::Lock / Unlock).
#define ATR_ACQUIRE(...) \
  ATR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ATR_ACQUIRE_SHARED(...) \
  ATR_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define ATR_RELEASE(...) \
  ATR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define ATR_RELEASE_SHARED(...) \
  ATR_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// Function: acquires the capability iff the return value equals the first
// argument (Mutex::TryLock).
#define ATR_TRY_ACQUIRE(...) \
  ATR_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Function: caller must NOT hold the capability (public entry points of a
// class that lock internally — turns self-deadlock into a compile error).
#define ATR_EXCLUDES(...) ATR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Function: tells the analysis the capability is held from here on
// (runtime-checked assertion, e.g. Mutex::AssertHeld).
#define ATR_ASSERT_CAPABILITY(x) \
  ATR_THREAD_ANNOTATION_(assert_capability(x))

// Function: returns a reference to the given capability.
#define ATR_RETURN_CAPABILITY(x) ATR_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch. Every use must carry a justification comment and is
// audited by docs/STATIC_ANALYSIS.md's suppression policy.
#define ATR_NO_THREAD_SAFETY_ANALYSIS \
  ATR_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // ATR_UTIL_THREAD_ANNOTATIONS_H_
