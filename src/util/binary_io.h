// Little-endian binary encode/decode over in-memory byte buffers, shared by
// the persistence layer (src/persist/) and the wire protocol (src/net/).
//
// ByteWriter appends fixed-width integers, length-prefixed strings, and
// POD vectors to a growable buffer. ByteReader is the bounds-checked
// mirror: every Read* reports truncation through its bool return (or a
// Status helper) instead of reading past the end — both the snapshot/delta
// readers and the frame decoder are fed attacker-controlled bytes, so
// nothing here may abort or overflow on malformed input.
//
// All multi-byte values are little-endian on the wire and on disk,
// regardless of host endianness.

#ifndef ATR_UTIL_BINARY_IO_H_
#define ATR_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace atr {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`.
// Used as the integrity checksum of snapshot files, delta-log records, and
// nothing security-sensitive (it detects corruption, not tampering).
uint32_t Crc32(const uint8_t* data, size_t size);
inline uint32_t Crc32(std::span<const uint8_t> data) {
  return Crc32(data.data(), data.size());
}

class ByteWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(v); }
  void WriteU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buffer_.push_back(uint8_t(v >> (8 * i)));
  }
  void WriteU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buffer_.push_back(uint8_t(v >> (8 * i)));
  }
  void WriteDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }
  void WriteBytes(const uint8_t* data, size_t size) {
    buffer_.insert(buffer_.end(), data, data + size);
  }
  // u32 length prefix + raw bytes.
  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }
  void WriteU32Vector(const std::vector<uint32_t>& v) {
    WriteU32(static_cast<uint32_t>(v.size()));
    for (const uint32_t x : v) WriteU32(x);
  }
  void WriteU64Vector(const std::vector<uint64_t>& v) {
    WriteU32(static_cast<uint32_t>(v.size()));
    for (const uint64_t x : v) WriteU64(x);
  }

  // Overwrites 4 bytes at `offset` (already written) with `v`; used to
  // back-patch length/checksum fields after the payload is known.
  void PatchU32(size_t offset, uint32_t v) {
    for (int i = 0; i < 4; ++i) buffer_[offset + i] = uint8_t(v >> (8 * i));
  }

  size_t size() const { return buffer_.size(); }
  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

// Bounds-checked sequential reader over a borrowed byte span. Every Read*
// returns false (leaving the output untouched and the cursor unmoved) when
// fewer bytes remain than requested; `ok()` stays false afterwards so a
// caller can batch reads and check once.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::span<const uint8_t> data)
      : ByteReader(data.data(), data.size()) {}
  explicit ByteReader(const std::vector<uint8_t>& data)
      : ByteReader(data.data(), data.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  bool ReadU8(uint8_t* out) {
    if (!Require(1)) return false;
    *out = data_[pos_++];
    return true;
  }
  bool ReadU32(uint32_t* out) {
    if (!Require(4)) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *out = v;
    return true;
  }
  bool ReadU64(uint64_t* out) {
    if (!Require(8)) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *out = v;
    return true;
  }
  bool ReadDouble(double* out) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }
  bool ReadString(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (!Require(len)) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }
  // Element-count prefixed vectors. The count is validated against the
  // bytes actually remaining BEFORE any allocation, so a hostile
  // 0xffffffff count cannot drive a multi-GiB reserve.
  bool ReadU32Vector(std::vector<uint32_t>* out) {
    uint32_t count = 0;
    if (!ReadU32(&count)) return false;
    if (remaining() / 4 < count) return Fail();
    out->resize(count);
    for (uint32_t i = 0; i < count; ++i) ReadU32(&(*out)[i]);
    return ok_;
  }
  bool ReadU64Vector(std::vector<uint64_t>* out) {
    uint32_t count = 0;
    if (!ReadU32(&count)) return false;
    if (remaining() / 8 < count) return Fail();
    out->resize(count);
    for (uint32_t i = 0; i < count; ++i) ReadU64(&(*out)[i]);
    return ok_;
  }

  // Status adapter for readers that report through util/status.h.
  Status TruncationStatus(const char* what) const {
    return ok_ ? Status::Ok()
               : Status::InvalidArgument(std::string(what) +
                                         ": truncated or malformed input");
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || size_ - pos_ < n) return Fail();
    return true;
  }
  bool Fail() {
    ok_ = false;
    return false;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace atr

#endif  // ATR_UTIL_BINARY_IO_H_
