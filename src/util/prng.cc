#include "util/prng.h"

namespace atr {

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  ATR_CHECK(k <= n);
  std::vector<uint32_t> out;
  out.reserve(k);
  // Knuth's selection sampling (Algorithm S): one pass, O(n) time, sorted
  // output, no auxiliary n-sized allocation.
  uint32_t remaining = k;
  for (uint32_t i = 0; i < n && remaining > 0; ++i) {
    // Select i with probability remaining / (n - i).
    if (NextBounded(n - i) < remaining) {
      out.push_back(i);
      --remaining;
    }
  }
  return out;
}

}  // namespace atr
