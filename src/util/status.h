// Minimal Status / StatusOr error model (the library builds without
// exceptions; recoverable failures flow through these types).
//
// Usage:
//   atr::StatusOr<Graph> g = LoadSnapEdgeList(path);
//   if (!g.ok()) { ... g.status().message() ... }

#ifndef ATR_UTIL_STATUS_H_
#define ATR_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/macros.h"

namespace atr {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kInternal = 4,
  kCancelled = 5,
  // A bounded resource (the service's pending-job queue) is saturated; the
  // caller should back off and retry. The networked front end maps this to
  // a structured reject carrying a retry-after hint (docs/PROTOCOL.md).
  kResourceExhausted = 6,
  // An I/O deadline elapsed before the operation completed (e.g. a client
  // configured with AtrClientOptions::io_timeout_ms talking to a hung
  // server). The operation may or may not have taken effect remotely.
  kDeadlineExceeded = 7,
};

// Value-semantic error carrier. An engaged message is only present for
// non-OK statuses.
//
// [[nodiscard]]: a dropped Status is a swallowed failure — the compiler
// rejects call sites that ignore one. Genuinely best-effort paths (e.g.
// a drain-phase write whose peer may already be gone) must say so with
// `(void)` and a reason comment; see docs/STATIC_ANALYSIS.md.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

 private:
  StatusCode code_;
  std::string message_;
};

// Human-readable name of `code` ("kOk", "kNotFound", ...); "kUnknown(<n>)"
// style fallback is not needed — unknown numeric codes arriving over the
// wire are rejected at decode time.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "kOk";
    case StatusCode::kInvalidArgument: return "kInvalidArgument";
    case StatusCode::kNotFound: return "kNotFound";
    case StatusCode::kFailedPrecondition: return "kFailedPrecondition";
    case StatusCode::kInternal: return "kInternal";
    case StatusCode::kCancelled: return "kCancelled";
    case StatusCode::kResourceExhausted: return "kResourceExhausted";
    case StatusCode::kDeadlineExceeded: return "kDeadlineExceeded";
  }
  return "kInternal";
}

// Holds either a value of type T or a non-OK Status. Accessing value() on an
// errored StatusOr aborts (programming error). [[nodiscard]] like Status:
// discarding one silently drops both the value and the error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  StatusOr(T value) : status_(), value_(std::move(value)), has_value_(true) {}
  StatusOr(Status status) : status_(std::move(status)), has_value_(false) {
    ATR_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    ATR_CHECK_MSG(has_value_, status_.message().c_str());
    return value_;
  }
  T& value() & {
    ATR_CHECK_MSG(has_value_, status_.message().c_str());
    return value_;
  }
  T&& value() && {
    ATR_CHECK_MSG(has_value_, status_.message().c_str());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
  bool has_value_;
};

}  // namespace atr

#endif  // ATR_UTIL_STATUS_H_
