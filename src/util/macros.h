// Project-wide invariant-check and assertion macros.
//
// The library does not use C++ exceptions. Programming errors (violated
// invariants, out-of-contract calls) abort the process with a diagnostic via
// ATR_CHECK; recoverable errors (I/O, malformed input) are reported through
// atr::Status (see util/status.h).
//
// ATR_CHECK is active in every build type: truss/anchor algorithms are
// intricate enough that silent invariant corruption is far more expensive
// than the branch. ATR_DCHECK compiles away outside debug builds and guards
// the hot inner loops.

#ifndef ATR_UTIL_MACROS_H_
#define ATR_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define ATR_CHECK(condition)                                                \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "ATR_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define ATR_CHECK_MSG(condition, msg)                                       \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "ATR_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #condition, msg);                    \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define ATR_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define ATR_DCHECK(condition) ATR_CHECK(condition)
#endif

#endif  // ATR_UTIL_MACROS_H_
