// Environment-variable knobs for the benchmark harnesses.
//
// Benchmarks are invoked without CLI arguments (`for b in build/bench/*; do
// $b; done`), so runtime scaling is controlled through ATR_* environment
// variables. Each bench prints the effective values it used.

#ifndef ATR_UTIL_ENV_H_
#define ATR_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace atr {

// Returns the value of env var `name` parsed as int64, or `default_value`
// when unset or unparsable.
int64_t GetEnvInt64(const char* name, int64_t default_value);

// Returns the value of env var `name` parsed as double, or `default_value`.
double GetEnvDouble(const char* name, double default_value);

// Returns the value of env var `name`, or `default_value` when unset.
std::string GetEnvString(const char* name, const std::string& default_value);

}  // namespace atr

#endif  // ATR_UTIL_ENV_H_
