// Bounded FIFO worker pool for job-level concurrency (the AtrService's
// async solve jobs).
//
// A TaskQueue runs submitted closures on a fixed set of worker threads,
// with a bounded pending queue: Submit blocks the producer once the queue
// is full (backpressure), TrySubmit fails fast instead. Tasks run in
// submission order across the pool (FIFO dequeue), though completion order
// depends on task durations.
//
// Composition with data parallelism: each worker thread installs a
// ScopedParallelism override (util/parallel_for.h) for its lifetime, so
// the inner-loop ParallelFor fan-out of a task and the job-level
// concurrency of the pool share one thread budget instead of multiplying.
// By default the process-wide worker count is split evenly across the pool
// (at least 1 per worker); a task that sets its own ScopedParallelism
// (e.g. from SolverOptions::threads) still wins — overrides nest.
//
//   TaskQueue pool({.workers = 4});
//   pool.Submit([] { ... ParallelFor sees 1/4 of the default budget ... });
//   pool.WaitIdle();   // all submitted tasks have finished

#ifndef ATR_UTIL_TASK_QUEUE_H_
#define ATR_UTIL_TASK_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace atr {

class TaskQueue {
 public:
  struct Options {
    // Worker threads. 0 = min(4, the calling thread's ParallelWorkerCount).
    int workers = 0;
    // Max tasks waiting to run (excludes the ones already running); Submit
    // blocks / TrySubmit fails while the queue holds this many. 0 = 4x the
    // effective worker count.
    size_t capacity = 0;
    // ParallelFor worker budget installed on each pool thread. 0 = the
    // calling thread's ParallelWorkerCount() split evenly across the pool
    // (at least 1), so inner loops never oversubscribe the machine.
    int threads_per_task = 0;
  };

  TaskQueue() : TaskQueue(Options()) {}
  explicit TaskQueue(const Options& options);

  // Drains the queue and joins the workers (every submitted task runs).
  ~TaskQueue();

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  // Enqueues `task`; blocks while the pending queue is at capacity. A
  // Submit after Shutdown (or one that was blocked on a full queue when
  // Shutdown arrived) rejects with kFailedPrecondition instead of
  // enqueueing — the task is dropped, never run, and no caller deadlocks
  // against a pool that will not drain. Must not be called from a pool
  // worker (CHECK: a full queue would deadlock the worker against itself).
  Status Submit(std::function<void()> task) ATR_EXCLUDES(mu_);

  // Non-blocking Submit: kResourceExhausted when the queue is at capacity
  // (the admission-control signal the networked front end turns into a
  // structured retry-after reject), kFailedPrecondition after Shutdown.
  Status TrySubmit(std::function<void()> task) ATR_EXCLUDES(mu_);

  // Blocks until every task submitted so far has finished and the queue is
  // empty. Tasks submitted concurrently with WaitIdle may or may not be
  // waited on.
  void WaitIdle() ATR_EXCLUDES(mu_);

  // Stops accepting work, runs everything already queued, joins the
  // workers. Idempotent; the destructor calls it.
  void Shutdown() ATR_EXCLUDES(mu_);

  int workers() const { return static_cast<int>(threads_.size()); }
  size_t capacity() const { return capacity_; }
  int threads_per_task() const { return threads_per_task_; }

  // Total tasks that finished running (monotonic).
  uint64_t tasks_executed() const ATR_EXCLUDES(mu_);

  // Tasks waiting to run right now (excludes the ones already running).
  // Racy by nature — admission-control heuristics only.
  size_t pending() const ATR_EXCLUDES(mu_);

  // Pending plus running: the load signal behind retry-after estimates.
  size_t Load() const ATR_EXCLUDES(mu_);

 private:
  void WorkerLoop() ATR_EXCLUDES(mu_);

  size_t capacity_ = 0;
  int threads_per_task_ = 1;

  mutable Mutex mu_;
  CondVar not_empty_;  // workers wait for tasks
  CondVar not_full_;   // producers wait for space
  CondVar idle_;       // WaitIdle waits for quiescence
  std::deque<std::function<void()>> pending_ ATR_GUARDED_BY(mu_);
  size_t running_ ATR_GUARDED_BY(mu_) = 0;
  uint64_t executed_ ATR_GUARDED_BY(mu_) = 0;
  bool shutdown_ ATR_GUARDED_BY(mu_) = false;

  // Immutable between the constructor's spawns and Shutdown's joins.
  std::vector<std::thread> threads_;
};

}  // namespace atr

#endif  // ATR_UTIL_TASK_QUEUE_H_
