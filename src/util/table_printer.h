// Console table rendering for the benchmark harnesses. Produces the aligned
// rows the paper's tables report (Table III, Table IV, Table V, ...).

#ifndef ATR_UTIL_TABLE_PRINTER_H_
#define ATR_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace atr {

// Collects rows of string cells and renders them with per-column alignment.
// Example:
//   TablePrinter t({"Dataset", "|V|", "|E|", "k_max"});
//   t.AddRow({"college", "1899", "13838", "7"});
//   t.Print();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends one row; pads or truncates to the header width.
  void AddRow(std::vector<std::string> cells);

  // Renders to stdout with a separator under the header.
  void Print() const;

  // Renders into a string (used by tests).
  std::string ToString() const;

  // Numeric formatting helpers shared by the benches.
  static std::string FormatInt(int64_t v);
  static std::string FormatDouble(double v, int precision);
  // Seconds with ms resolution, e.g. "12.345".
  static std::string FormatSeconds(double seconds);
  // Percentage with one decimal, e.g. "81.7%".
  static std::string FormatPercent(double fraction);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace atr

#endif  // ATR_UTIL_TABLE_PRINTER_H_
