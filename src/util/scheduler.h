// FairScheduler — multi-tenant batch scheduler for job-level concurrency
// (the sharded AtrService's submit path).
//
// Where TaskQueue is one FIFO, FairScheduler keeps one FIFO *per tenant
// per priority* and dispatches across tenants with weighted deficit
// round-robin (WDRR): each tenant in the ready ring gets a deficit of
// quantum x weight jobs per visit, so a tenant flooding the queue cannot
// starve a light one — the light tenant's next job dispatches after at
// most one DRR cycle, not after the flood drains. Within a tenant, higher
// priority buckets drain first and each bucket is FIFO.
//
// Batch fusion: a job may carry a `batch_key` naming the work it could
// share with compatible jobs (same graph version + solver family). When a
// worker dequeues a keyed job, the scheduler sweeps every queue for other
// jobs with the same key (up to max_batch, preserving per-queue FIFO
// order) and hands the whole batch to the runner in one call. The runner
// owns fusion semantics — the scheduler only groups; it never reorders
// jobs *within* a tenant's priority bucket. Jobs with an empty batch_key
// always run alone.
//
// Capacity and backpressure mirror TaskQueue: Submit blocks while the
// total pending count is at capacity, TrySubmit fails fast with
// kResourceExhausted, and both reject with kFailedPrecondition after
// Shutdown. Worker threads install a ScopedParallelism override so inner
// ParallelFor fan-out shares one machine budget with job concurrency.
//
//   FairScheduler sched({.workers = 4}, [](std::vector<FairScheduler::Job> b) {
//     ... run the batch; b.size() == 1 unless batch keys matched ...
//   });
//   sched.Submit({.tenant = "acme", .priority = 1, .payload = state});

#ifndef ATR_UTIL_SCHEDULER_H_
#define ATR_UTIL_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace atr {

class FairScheduler {
 public:
  // One schedulable unit. The scheduler never looks inside `payload`; the
  // runner downcasts it back to whatever the submitter enqueued.
  struct Job {
    std::string tenant;     // "" is the default tenant (still fair-shared)
    int priority = 0;       // higher runs first within the tenant
    std::string batch_key;  // "" = never fused with other jobs
    std::shared_ptr<void> payload;
  };

  // Receives a non-empty batch; every job in it shares one batch_key
  // (or the batch is a singleton). Runs on a scheduler worker thread.
  using BatchRunner = std::function<void(std::vector<Job>)>;

  struct Options {
    // Worker threads. 0 = min(4, the calling thread's ParallelWorkerCount).
    int workers = 0;
    // Max jobs waiting to run across all tenants (excludes running jobs);
    // Submit blocks / TrySubmit fails at this count. 0 = 4x workers.
    size_t capacity = 0;
    // ParallelFor budget per worker thread. 0 = the calling thread's
    // ParallelWorkerCount() split evenly across the pool (at least 1).
    int threads_per_job = 0;
    // Most jobs one batch may fuse. 1 disables fusion entirely.
    size_t max_batch = 8;
    // Jobs a weight-1 tenant may dispatch per DRR visit.
    uint32_t quantum = 1;
  };

  FairScheduler(const Options& options, BatchRunner runner);
  ~FairScheduler();

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  // Enqueues `job`; blocks while the pending count is at capacity.
  // kFailedPrecondition after Shutdown. Must not be called from a
  // scheduler worker (CHECK: a full queue would deadlock the worker).
  Status Submit(Job job) ATR_EXCLUDES(mu_);

  // Non-blocking Submit: kResourceExhausted at capacity.
  Status TrySubmit(Job job) ATR_EXCLUDES(mu_);

  // Dispatch share for `tenant` (default weight 1). Takes effect at the
  // tenant's next DRR visit. Weight 0 is clamped to 1.
  void SetTenantWeight(const std::string& tenant, uint32_t weight)
      ATR_EXCLUDES(mu_);

  // Blocks until no job is pending or running.
  void WaitIdle() ATR_EXCLUDES(mu_);

  // Stops accepting work, drains everything queued, joins the workers.
  // Idempotent; the destructor calls it.
  void Shutdown() ATR_EXCLUDES(mu_);

  int workers() const { return static_cast<int>(threads_.size()); }
  size_t capacity() const { return capacity_; }
  size_t max_batch() const { return max_batch_; }

  // Jobs waiting to run right now. Racy — admission heuristics only.
  size_t pending() const ATR_EXCLUDES(mu_);
  // Pending plus running: the load signal behind retry-after estimates.
  size_t Load() const ATR_EXCLUDES(mu_);
  // Pending plus running for one tenant (per-tenant retry-after hints).
  size_t TenantLoad(const std::string& tenant) const ATR_EXCLUDES(mu_);

  // Monotonic counters. jobs_executed counts individual jobs;
  // batches_executed counts runner invocations, so the difference is the
  // work fusion saved; jobs_fused counts jobs that rode in a batch of >1.
  uint64_t jobs_executed() const ATR_EXCLUDES(mu_);
  uint64_t batches_executed() const ATR_EXCLUDES(mu_);
  uint64_t jobs_fused() const ATR_EXCLUDES(mu_);

 private:
  // Per-tenant state: priority buckets (higher first), each FIFO.
  struct TenantQueue {
    uint32_t weight = 1;
    uint64_t deficit = 0;
    std::map<int, std::deque<Job>, std::greater<int>> buckets;
    size_t queued = 0;
    size_t running = 0;
    bool in_ring = false;
  };

  void WorkerLoop() ATR_EXCLUDES(mu_);
  // Picks the next batch under mu_. Requires total_pending_ > 0.
  std::vector<Job> NextBatchLocked() ATR_REQUIRES(mu_);
  // Removes up to max_batch_-1 additional jobs matching `key` from every
  // queue (FIFO within each bucket), appending to `batch`. Takes the key
  // by value: the caller's copy lives inside `batch`, which reallocates.
  void CollectBatchLocked(std::string key, std::vector<Job>* batch)
      ATR_REQUIRES(mu_);
  void DropFromRingLocked(const std::string& tenant) ATR_REQUIRES(mu_);

  size_t capacity_ = 0;
  int threads_per_job_ = 1;
  size_t max_batch_ = 8;
  uint32_t quantum_ = 1;
  BatchRunner runner_;

  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  CondVar idle_;
  std::map<std::string, TenantQueue> tenants_ ATR_GUARDED_BY(mu_);
  // Tenants with queued jobs, DRR order.
  std::vector<std::string> ring_ ATR_GUARDED_BY(mu_);
  // ring_ index of the next tenant to serve.
  size_t cursor_ ATR_GUARDED_BY(mu_) = 0;
  size_t total_pending_ ATR_GUARDED_BY(mu_) = 0;
  size_t running_ ATR_GUARDED_BY(mu_) = 0;
  uint64_t jobs_executed_ ATR_GUARDED_BY(mu_) = 0;
  uint64_t batches_executed_ ATR_GUARDED_BY(mu_) = 0;
  uint64_t jobs_fused_ ATR_GUARDED_BY(mu_) = 0;
  bool shutdown_ ATR_GUARDED_BY(mu_) = false;

  std::vector<std::thread> threads_;
};

}  // namespace atr

#endif  // ATR_UTIL_SCHEDULER_H_
