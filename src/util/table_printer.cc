#include "util/table_printer.h"

#include <cstdio>
#include <sstream>

namespace atr {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
      out << " |";
    }
    out << '\n';
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-") << std::string(width[c], '-') << "-|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const {
  std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

std::string TablePrinter::FormatInt(int64_t v) {
  // Thousands separators make the dataset-statistics tables readable.
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%lld", static_cast<long long>(v));
  std::string raw(digits);
  std::string out;
  size_t start = (raw[0] == '-') ? 1 : 0;
  out.append(raw, 0, start);
  const size_t len = raw.size() - start;
  for (size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out.push_back(',');
    out.push_back(raw[start + i]);
  }
  return out;
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

std::string TablePrinter::FormatSeconds(double seconds) {
  return FormatDouble(seconds, 3);
}

std::string TablePrinter::FormatPercent(double fraction) {
  return FormatDouble(fraction * 100.0, 1) + "%";
}

}  // namespace atr
