#include "util/scheduler.h"

#include <algorithm>
#include <utility>

#include "util/macros.h"
#include "util/parallel_for.h"

namespace atr {
namespace {

// Set while a thread is executing scheduler batches; Submit CHECKs against
// it so a job can never block on the queue its own worker is draining.
thread_local bool t_sched_worker = false;

}  // namespace

FairScheduler::FairScheduler(const Options& options, BatchRunner runner)
    : runner_(std::move(runner)) {
  ATR_CHECK_MSG(runner_ != nullptr, "FairScheduler needs a BatchRunner");
  // Resolve defaults on the constructing thread: its worker budget is the
  // one the pool must share, not whatever the pool threads would see.
  const int machine = ParallelWorkerCount();
  const int workers =
      options.workers > 0 ? options.workers : std::min(4, machine);
  capacity_ = options.capacity > 0 ? options.capacity
                                   : static_cast<size_t>(4 * workers);
  threads_per_job_ = options.threads_per_job > 0
                         ? options.threads_per_job
                         : std::max(1, machine / workers);
  max_batch_ = std::max<size_t>(1, options.max_batch);
  quantum_ = std::max<uint32_t>(1, options.quantum);
  threads_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

FairScheduler::~FairScheduler() { Shutdown(); }

Status FairScheduler::Submit(Job job) {
  ATR_CHECK_MSG(!t_sched_worker,
                "FairScheduler::Submit called from a scheduler worker; a "
                "full queue would deadlock the worker against itself");
  MutexLock lock(&mu_);
  while (total_pending_ >= capacity_ && !shutdown_) not_full_.Wait(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("FairScheduler::Submit after Shutdown");
  }
  TenantQueue& t = tenants_[job.tenant];
  if (!t.in_ring) {
    t.in_ring = true;
    ring_.push_back(job.tenant);
  }
  t.buckets[job.priority].push_back(std::move(job));
  ++t.queued;
  ++total_pending_;
  not_empty_.NotifyOne();
  return Status::Ok();
}

Status FairScheduler::TrySubmit(Job job) {
  MutexLock lock(&mu_);
  if (shutdown_) {
    return Status::FailedPrecondition(
        "FairScheduler::TrySubmit after Shutdown");
  }
  if (total_pending_ >= capacity_) {
    return Status::ResourceExhausted(
        "FairScheduler::TrySubmit: pending queue is at capacity (" +
        std::to_string(capacity_) + ")");
  }
  TenantQueue& t = tenants_[job.tenant];
  if (!t.in_ring) {
    t.in_ring = true;
    ring_.push_back(job.tenant);
  }
  t.buckets[job.priority].push_back(std::move(job));
  ++t.queued;
  ++total_pending_;
  not_empty_.NotifyOne();
  return Status::Ok();
}

void FairScheduler::SetTenantWeight(const std::string& tenant,
                                    uint32_t weight) {
  MutexLock lock(&mu_);
  tenants_[tenant].weight = std::max<uint32_t>(1, weight);
}

void FairScheduler::WaitIdle() {
  MutexLock lock(&mu_);
  while (!(total_pending_ == 0 && running_ == 0)) idle_.Wait(mu_);
}

void FairScheduler::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t FairScheduler::pending() const {
  MutexLock lock(&mu_);
  return total_pending_;
}

size_t FairScheduler::Load() const {
  MutexLock lock(&mu_);
  return total_pending_ + running_;
}

size_t FairScheduler::TenantLoad(const std::string& tenant) const {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  return it->second.queued + it->second.running;
}

uint64_t FairScheduler::jobs_executed() const {
  MutexLock lock(&mu_);
  return jobs_executed_;
}

uint64_t FairScheduler::batches_executed() const {
  MutexLock lock(&mu_);
  return batches_executed_;
}

uint64_t FairScheduler::jobs_fused() const {
  MutexLock lock(&mu_);
  return jobs_fused_;
}

void FairScheduler::DropFromRingLocked(const std::string& tenant) {
  auto it = std::find(ring_.begin(), ring_.end(), tenant);
  if (it == ring_.end()) return;
  const size_t index = static_cast<size_t>(it - ring_.begin());
  ring_.erase(it);
  if (index < cursor_) --cursor_;
  if (cursor_ >= ring_.size()) cursor_ = 0;
  TenantQueue& t = tenants_[tenant];
  t.in_ring = false;
  t.deficit = 0;
}

std::vector<FairScheduler::Job> FairScheduler::NextBatchLocked() {
  ATR_CHECK_MSG(!ring_.empty(), "NextBatchLocked with an empty ring");
  if (cursor_ >= ring_.size()) cursor_ = 0;
  const std::string tenant = ring_[cursor_];
  TenantQueue& t = tenants_[tenant];
  if (t.deficit == 0) {
    t.deficit = uint64_t(quantum_) * std::max<uint32_t>(1, t.weight);
  }
  auto bucket = t.buckets.begin();
  ATR_CHECK_MSG(
      bucket != t.buckets.end() && !bucket->second.empty(),
      "ring tenant with no queued jobs");
  Job job = std::move(bucket->second.front());
  bucket->second.pop_front();
  if (bucket->second.empty()) t.buckets.erase(bucket);
  --t.queued;
  --total_pending_;
  --t.deficit;
  if (t.queued == 0) {
    DropFromRingLocked(tenant);
  } else if (t.deficit == 0) {
    // Deficit spent: the next dispatch serves the next tenant in the ring.
    if (++cursor_ >= ring_.size()) cursor_ = 0;
  }
  std::vector<Job> batch;
  batch.push_back(std::move(job));
  if (!batch.front().batch_key.empty() && max_batch_ > 1) {
    CollectBatchLocked(batch.front().batch_key, &batch);
  }
  return batch;
}

void FairScheduler::CollectBatchLocked(std::string key,
                                       std::vector<Job>* batch) {
  // Fused riders are not charged against their tenant's deficit: the
  // marginal cost of riding an already-dispatched decomposition walk is
  // near zero, so fusing them early is strictly better for everyone than
  // making them wait their DRR turn to redo the same work.
  for (auto& [name, t] : tenants_) {
    if (batch->size() >= max_batch_) break;
    if (t.queued == 0) continue;
    for (auto bucket = t.buckets.begin();
         bucket != t.buckets.end() && batch->size() < max_batch_;) {
      std::deque<Job>& queue = bucket->second;
      for (auto it = queue.begin();
           it != queue.end() && batch->size() < max_batch_;) {
        if (it->batch_key == key) {
          batch->push_back(std::move(*it));
          it = queue.erase(it);
          --t.queued;
          --total_pending_;
        } else {
          ++it;
        }
      }
      if (queue.empty()) {
        bucket = t.buckets.erase(bucket);
      } else {
        ++bucket;
      }
    }
    if (t.queued == 0 && t.in_ring) DropFromRingLocked(name);
  }
}

void FairScheduler::WorkerLoop() {
  t_sched_worker = true;
  // One thread budget for the pool: inner ParallelFor calls issued by jobs
  // on this worker see threads_per_job_ instead of the machine default.
  ScopedParallelism inner(threads_per_job_);
  for (;;) {
    std::vector<Job> batch;
    std::vector<std::string> batch_tenants;
    {
      MutexLock lock(&mu_);
      while (total_pending_ == 0 && !shutdown_) not_empty_.Wait(mu_);
      if (total_pending_ == 0) return;  // shutdown with a drained queue
      batch = NextBatchLocked();
      running_ += batch.size();
      batch_tenants.reserve(batch.size());
      for (const Job& job : batch) {
        ++tenants_[job.tenant].running;
        batch_tenants.push_back(job.tenant);
      }
      // A batch may have freed several capacity slots at once.
      not_full_.NotifyAll();
    }
    const size_t fused = batch.size();
    runner_(std::move(batch));
    {
      MutexLock lock(&mu_);
      running_ -= fused;
      for (const std::string& tenant : batch_tenants) {
        --tenants_[tenant].running;
      }
      jobs_executed_ += fused;
      ++batches_executed_;
      if (fused > 1) jobs_fused_ += fused;
      if (total_pending_ == 0 && running_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace atr
