#include "util/task_queue.h"

#include <algorithm>
#include <utility>

#include "util/macros.h"
#include "util/parallel_for.h"

namespace atr {
namespace {

// Set while a thread is executing pool tasks; Submit CHECKs against it so a
// task can never block on the queue it is draining.
thread_local bool t_pool_worker = false;

}  // namespace

TaskQueue::TaskQueue(const Options& options) {
  // Resolve the defaults on the constructing thread: its worker budget is
  // the one the pool must share, not whatever the pool threads would see.
  const int machine = ParallelWorkerCount();
  const int workers =
      options.workers > 0 ? options.workers : std::min(4, machine);
  capacity_ = options.capacity > 0 ? options.capacity
                                   : static_cast<size_t>(4 * workers);
  threads_per_task_ = options.threads_per_task > 0
                          ? options.threads_per_task
                          : std::max(1, machine / workers);
  threads_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskQueue::~TaskQueue() { Shutdown(); }

void TaskQueue::Submit(std::function<void()> task) {
  ATR_CHECK_MSG(!t_pool_worker,
                "TaskQueue::Submit called from a pool worker; a full queue "
                "would deadlock the worker against itself");
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [this] { return pending_.size() < capacity_ || shutdown_; });
  ATR_CHECK_MSG(!shutdown_, "TaskQueue::Submit after Shutdown");
  pending_.push_back(std::move(task));
  not_empty_.notify_one();
}

bool TaskQueue::TrySubmit(std::function<void()> task) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_ || pending_.size() >= capacity_) return false;
  pending_.push_back(std::move(task));
  not_empty_.notify_one();
  return true;
}

void TaskQueue::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return pending_.empty() && running_ == 0; });
}

void TaskQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

uint64_t TaskQueue::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

void TaskQueue::WorkerLoop() {
  t_pool_worker = true;
  // One thread budget for the pool: inner ParallelFor calls issued by tasks
  // on this worker see threads_per_task_ instead of the machine default.
  ScopedParallelism inner(threads_per_task_);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock,
                      [this] { return !pending_.empty() || shutdown_; });
      if (pending_.empty()) return;  // shutdown with a drained queue
      task = std::move(pending_.front());
      pending_.pop_front();
      ++running_;
      not_full_.notify_one();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      ++executed_;
      if (pending_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace atr
