#include "util/task_queue.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/macros.h"
#include "util/parallel_for.h"

namespace atr {
namespace {

// Set while a thread is executing pool tasks; Submit CHECKs against it so a
// task can never block on the queue it is draining.
thread_local bool t_pool_worker = false;

}  // namespace

TaskQueue::TaskQueue(const Options& options) {
  // Resolve the defaults on the constructing thread: its worker budget is
  // the one the pool must share, not whatever the pool threads would see.
  const int machine = ParallelWorkerCount();
  const int workers =
      options.workers > 0 ? options.workers : std::min(4, machine);
  capacity_ = options.capacity > 0 ? options.capacity
                                   : static_cast<size_t>(4 * workers);
  threads_per_task_ = options.threads_per_task > 0
                          ? options.threads_per_task
                          : std::max(1, machine / workers);
  threads_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskQueue::~TaskQueue() { Shutdown(); }

Status TaskQueue::Submit(std::function<void()> task) {
  ATR_CHECK_MSG(!t_pool_worker,
                "TaskQueue::Submit called from a pool worker; a full queue "
                "would deadlock the worker against itself");
  MutexLock lock(&mu_);
  while (pending_.size() >= capacity_ && !shutdown_) not_full_.Wait(mu_);
  if (shutdown_) {
    // Shutdown raced (or preceded) this Submit: the workers are draining or
    // joined, so enqueueing would either run nothing or deadlock a blocked
    // producer forever. Reject instead — the task is dropped untouched.
    return Status::FailedPrecondition("TaskQueue::Submit after Shutdown");
  }
  pending_.push_back(std::move(task));
  not_empty_.NotifyOne();
  return Status::Ok();
}

Status TaskQueue::TrySubmit(std::function<void()> task) {
  MutexLock lock(&mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("TaskQueue::TrySubmit after Shutdown");
  }
  if (pending_.size() >= capacity_) {
    return Status::ResourceExhausted(
        "TaskQueue::TrySubmit: pending queue is at capacity (" +
        std::to_string(capacity_) + ")");
  }
  pending_.push_back(std::move(task));
  not_empty_.NotifyOne();
  return Status::Ok();
}

void TaskQueue::WaitIdle() {
  MutexLock lock(&mu_);
  while (!(pending_.empty() && running_ == 0)) idle_.Wait(mu_);
}

void TaskQueue::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

uint64_t TaskQueue::tasks_executed() const {
  MutexLock lock(&mu_);
  return executed_;
}

size_t TaskQueue::pending() const {
  MutexLock lock(&mu_);
  return pending_.size();
}

size_t TaskQueue::Load() const {
  MutexLock lock(&mu_);
  return pending_.size() + running_;
}

void TaskQueue::WorkerLoop() {
  t_pool_worker = true;
  // One thread budget for the pool: inner ParallelFor calls issued by tasks
  // on this worker see threads_per_task_ instead of the machine default.
  ScopedParallelism inner(threads_per_task_);
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (pending_.empty() && !shutdown_) not_empty_.Wait(mu_);
      if (pending_.empty()) return;  // shutdown with a drained queue
      task = std::move(pending_.front());
      pending_.pop_front();
      ++running_;
      not_full_.NotifyOne();
    }
    task();
    {
      MutexLock lock(&mu_);
      --running_;
      ++executed_;
      if (pending_.empty() && running_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace atr
