#include "core/gas.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "core/greedy_internal.h"
#include "graph/triangles.h"
#include "route/follower_search.h"
#include "tree/component_tree.h"
#include "truss/decomposition.h"
#include "truss/incremental.h"
#include "util/macros.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace atr {
namespace {

// One cached follower partition for a candidate: nonzero follower counts per
// tree-node id, sorted by node id. A clean node id absent from the cache has
// zero followers (only nonzero counts are stored).
using NodeCounts = std::vector<std::pair<uint32_t, uint32_t>>;

struct CandidateOutcome {
  uint64_t gain = 0;
  // Reuse classification for Exp-8: 0 = FR, 1 = PR, 2 = NR.
  int reuse_class = 0;
};

// Per-candidate evaluation with reuse. `dirty_nodes` is the sorted ES set;
// `full_recompute` forces recomputation of every group (round 1 or the
// candidate's own (t, l) changed).
//
// The candidate's seed nodes are grouped by trussness level: same-level
// nodes can be coupled through the candidate's own triangles (see
// FollowerSearch::FollowersByNode), so a level group is recomputed as a
// whole whenever any of its nodes is dirty, and reused as a whole when all
// are clean.
CandidateOutcome EvaluateCandidate(
    const Graph& g, const TrussDecomposition& decomp,
    const TrussComponentTree& tree, const std::vector<uint32_t>& dirty_nodes,
    bool full_recompute, EdgeId e, FollowerSearch& search, NodeCounts& cache,
    std::vector<std::pair<uint32_t, uint32_t>>& scratch) {
  // Seed nodes of e as (level, node) pairs: nodes of neighbor-edges
  // satisfying Lemma 2 condition (i).
  scratch.clear();
  const std::vector<uint32_t>& edge_node = tree.edge_node_ids();
  ForEachTriangleOfEdge(g, e, [&](VertexId, EdgeId e1, EdgeId e2) {
    for (const EdgeId p : {e1, e2}) {
      if (edge_node[p] == kNoTreeNode) continue;  // anchors have no node
      if (!decomp.StrictlyPrecedes(e, p)) continue;
      scratch.emplace_back(decomp.trussness[p], edge_node[p]);
    }
  });
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());

  CandidateOutcome outcome;
  if (scratch.empty()) {
    // No seeds: no followers possible; trivially reusable.
    cache.clear();
    outcome.reuse_class = full_recompute ? 2 : 0;
    return outcome;
  }

  // Walk the level groups and collect the nodes to recompute.
  std::vector<uint32_t> recompute_nodes;
  uint32_t groups_total = 0;
  uint32_t groups_dirty = 0;
  size_t i = 0;
  while (i < scratch.size()) {
    const uint32_t level = scratch[i].first;
    const size_t group_begin = i;
    bool dirty = full_recompute;
    while (i < scratch.size() && scratch[i].first == level) {
      dirty = dirty || std::binary_search(dirty_nodes.begin(),
                                          dirty_nodes.end(),
                                          scratch[i].second);
      ++i;
    }
    ++groups_total;
    if (dirty) {
      ++groups_dirty;
      for (size_t j = group_begin; j < i; ++j) {
        recompute_nodes.push_back(scratch[j].second);
      }
    }
  }
  std::sort(recompute_nodes.begin(), recompute_nodes.end());
  recompute_nodes.erase(
      std::unique(recompute_nodes.begin(), recompute_nodes.end()),
      recompute_nodes.end());
  outcome.reuse_class =
      groups_dirty == 0 ? 0 : (groups_dirty == groups_total ? 2 : 1);

  if (full_recompute) {
    cache.clear();
  } else {
    // Drop entries that are about to be recomputed or whose node is dirty
    // (dead ids are always dirty, so stale entries cannot survive here).
    cache.erase(
        std::remove_if(cache.begin(), cache.end(),
                       [&](const std::pair<uint32_t, uint32_t>& c) {
                         return std::binary_search(dirty_nodes.begin(),
                                                   dirty_nodes.end(),
                                                   c.first) ||
                                std::binary_search(recompute_nodes.begin(),
                                                   recompute_nodes.end(),
                                                   c.first);
                       }),
        cache.end());
  }

  if (!recompute_nodes.empty()) {
    NodeCounts fresh;
    search.FollowersByNode(e, edge_node, recompute_nodes, &fresh);
    cache.insert(cache.end(), fresh.begin(), fresh.end());
    std::sort(cache.begin(), cache.end());
  }
  for (const auto& [node, count] : cache) outcome.gain += count;
  return outcome;
}

}  // namespace

AnchorResult RunGas(const Graph& g, uint32_t budget,
                    const GreedyControl* control,
                    const TrussDecomposition* seed_decomposition,
                    const std::vector<bool>* initial_anchors) {
  const uint32_t m = g.NumEdges();
  AnchorResult result;
  if (m == 0) return result;
  budget = std::min<uint32_t>(budget, m);

  WallTimer timer;
  // Shared (decomposition, anchors) state: recomputed from scratch after
  // each commit (classic), or maintained by the incremental engine. The
  // candidate evaluation and reuse logic read the same state either way.
  const bool use_incremental =
      control != nullptr && control->use_incremental;
  std::unique_ptr<IncrementalTruss> engine;
  GreedySeedState state;
  const TrussDecomposition* current = nullptr;
  const std::vector<bool>* anchored_view = nullptr;
  if (use_incremental) {
    engine = std::make_unique<IncrementalTruss>(
        MakeGreedyEngine(g, seed_decomposition, initial_anchors));
    current = &engine->decomposition();
    anchored_view = &engine->anchored();
  } else {
    state = MakeGreedySeedState(g, seed_decomposition, initial_anchors);
    current = &state.current;
    anchored_view = &state.anchored;
  }
  TrussComponentTree tree;
  tree.Build(g, *current, *anchored_view);

  std::vector<NodeCounts> caches(m);
  std::vector<uint32_t> dirty_nodes;  // sorted ES node ids for this round
  // Edges whose own (t, l) state is new this round: their seed sets and ≺
  // comparisons changed, so every cached entry is invalid. Round 1: all.
  std::vector<uint8_t> needs_full(m, 1);
  FollowerSearch main_search(g);

  while (result.anchors.size() < budget) {
    if (control != nullptr && control->ShouldStop(timer.ElapsedSeconds())) {
      result.stopped_early = true;
      break;
    }
    struct Best {
      uint64_t gain = 0;
      EdgeId edge = kInvalidEdge;
      uint32_t fr = 0;
      uint32_t pr = 0;
      uint32_t nr = 0;
    };
    std::vector<Best> bests;
    std::mutex mu;
    ParallelFor(m, [&](int64_t begin, int64_t end) {
      FollowerSearch search(g);
      search.SetState(current, anchored_view);
      std::vector<std::pair<uint32_t, uint32_t>> scratch;
      Best local;
      for (int64_t i = begin; i < end; ++i) {
        const EdgeId e = static_cast<EdgeId>(i);
        if (!EligibleCandidate(*current, *anchored_view, e)) continue;
        const CandidateOutcome outcome =
            EvaluateCandidate(g, *current, tree, dirty_nodes,
                              needs_full[e] != 0, e, search, caches[e],
                              scratch);
        local.fr += outcome.reuse_class == 0;
        local.pr += outcome.reuse_class == 1;
        local.nr += outcome.reuse_class == 2;
        if (local.edge == kInvalidEdge ||
            BetterCandidate(outcome.gain, e, local.gain, local.edge)) {
          local.gain = outcome.gain;
          local.edge = e;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      bests.push_back(local);
    });
    Best best;
    for (const Best& b : bests) {
      best.fr += b.fr;
      best.pr += b.pr;
      best.nr += b.nr;
      if (b.edge == kInvalidEdge) continue;
      if (best.edge == kInvalidEdge ||
          BetterCandidate(b.gain, b.edge, best.gain, best.edge)) {
        best.gain = b.gain;
        best.edge = b.edge;
      }
    }
    if (best.edge == kInvalidEdge) break;  // no eligible candidate left
    const EdgeId x = best.edge;

    AnchorRound round;
    round.anchor = x;
    round.gain = static_cast<uint32_t>(best.gain);
    round.fully_reusable = best.fr;
    round.partially_reusable = best.pr;
    round.non_reusable = best.nr;

    // Followers of the chosen anchor (for follower-trussness stats and as a
    // cross-check that the cached gain is exact).
    std::vector<EdgeId> followers;
    main_search.SetState(current, anchored_view);
    const uint32_t recount = main_search.CountFollowers(x, &followers);
    ATR_CHECK_MSG(recount == best.gain, "reused gain diverged from recount");
    for (EdgeId f : followers) {
      round.follower_trussness.push_back(current->trussness[f]);
    }

    // sla(x) under the *old* tree: every node currently triangle-adjacent to
    // x from above. These become dirty because x turns into an
    // always-countable partner inside them (DESIGN.md §4 deviation).
    std::vector<uint32_t> next_dirty;
    const uint32_t tx = current->trussness[x];
    {
      const std::vector<uint32_t>& edge_node = tree.edge_node_ids();
      ForEachTriangleOfEdge(g, x, [&](VertexId, EdgeId e1, EdgeId e2) {
        for (const EdgeId p : {e1, e2}) {
          if (edge_node[p] == kNoTreeNode) continue;
          if (current->trussness[p] >= tx) next_dirty.push_back(edge_node[p]);
        }
      });
      if (tree.NodeIdOf(x) != kNoTreeNode) {
        next_dirty.push_back(tree.NodeIdOf(x));
      }
    }

    // Apply the anchor and rebuild decomposition + tree. The incremental
    // path must copy the pre-anchor state (the engine updates in place);
    // the classic path moves it out before recomputing.
    TrussDecomposition previous;
    const std::vector<uint32_t> previous_nodes = tree.edge_node_ids();
    if (use_incremental) {
      previous = *current;
      const uint32_t committed = engine->ApplyAnchor(x);
      ATR_CHECK(committed == best.gain);
      engine->ClearUndoLog();
    } else {
      previous = std::move(state.current);
      state.anchored[x] = true;
      state.current = RecomputeGreedyState(g, state.anchored, state.alive);
    }
    tree.Build(g, *current, *anchored_view);

    // ES: nodes (old and new) of every edge whose (t, l) changed — this
    // covers follower nodes, merged/renumbered nodes, and layer shifts —
    // plus sla(x) and x's old node collected above. Candidates whose own
    // (t, l) changed lose their whole cache (seeds and ≺ comparisons depend
    // on it).
    const std::vector<uint32_t>& new_nodes = tree.edge_node_ids();
    for (EdgeId e = 0; e < m; ++e) {
      const bool own_changed =
          e == x || previous.trussness[e] != current->trussness[e] ||
          previous.layer[e] != current->layer[e];
      needs_full[e] = own_changed ? 1 : 0;
      if (own_changed) caches[e].clear();
      // A node whose identity changed is dirty under both ids. This covers
      // renames with unchanged member state — e.g. the anchored edge was
      // the node's minimum edge id, so the node's TN.I moves even though no
      // member's (t, l) changed — as well as merges and follower moves.
      if (own_changed || previous_nodes[e] != new_nodes[e]) {
        if (previous_nodes[e] != kNoTreeNode) {
          next_dirty.push_back(previous_nodes[e]);
        }
        if (new_nodes[e] != kNoTreeNode) next_dirty.push_back(new_nodes[e]);
      }
    }
    std::sort(next_dirty.begin(), next_dirty.end());
    next_dirty.erase(std::unique(next_dirty.begin(), next_dirty.end()),
                     next_dirty.end());
    dirty_nodes = std::move(next_dirty);

    round.cumulative_seconds = timer.ElapsedSeconds();
    result.total_gain += best.gain;
    result.anchors.push_back(x);
    result.rounds.push_back(std::move(round));
    if (!NotifyRound(control, budget, result)) break;
  }
  return result;
}

}  // namespace atr
