// BASE+ (paper §IV): the greedy framework where each candidate's gain is
// computed with the upward-route follower search (Algorithm 3) instead of a
// full truss decomposition. One decomposition per round, plus m follower
// searches; no result reuse across rounds.
//
// With GreedyControl::use_incremental the per-round decomposition is
// maintained by truss/incremental.h instead of recomputed from scratch
// after every committed anchor; candidate evaluation is unchanged, and so
// are the selected anchors and gains.

#ifndef ATR_CORE_BASE_PLUS_H_
#define ATR_CORE_BASE_PLUS_H_

#include <vector>

#include "core/atr_problem.h"
#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

// Runs BASE+ with the given budget. Candidate evaluation is parallelized
// across edges with one FollowerSearch instance per worker (deterministic
// reduction). `control` may carry a per-round progress callback, a
// cancellation flag, a wall-clock limit, and the use_incremental switch.
// `seed_decomposition`, when non-null, must be the decomposition of `g`
// under `initial_anchors` (no anchors when null) and replaces the round-1
// computation (the api layer passes its cached copy); edges it reports as
// kTrussnessNotComputed are treated as removed. `initial_anchors` edges are
// never candidates and gains are measured on top of them.
AnchorResult RunBasePlus(
    const Graph& g, uint32_t budget, const GreedyControl* control = nullptr,
    const TrussDecomposition* seed_decomposition = nullptr,
    const std::vector<bool>* initial_anchors = nullptr);

}  // namespace atr

#endif  // ATR_CORE_BASE_PLUS_H_
