// BASE+ (paper §IV): the greedy framework where each candidate's gain is
// computed with the upward-route follower search (Algorithm 3) instead of a
// full truss decomposition. One decomposition per round, plus m follower
// searches; no result reuse across rounds.

#ifndef ATR_CORE_BASE_PLUS_H_
#define ATR_CORE_BASE_PLUS_H_

#include "core/atr_problem.h"
#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

// Runs BASE+ with the given budget. Candidate evaluation is parallelized
// across edges with one FollowerSearch instance per worker (deterministic
// reduction). `control` may carry a per-round progress callback, a
// cancellation flag, and a wall-clock limit. `seed_decomposition`, when
// non-null, must be the anchor-free decomposition of `g` and replaces the
// round-1 computation (the api layer passes its cached copy).
AnchorResult RunBasePlus(
    const Graph& g, uint32_t budget, const GreedyControl* control = nullptr,
    const TrussDecomposition* seed_decomposition = nullptr);

}  // namespace atr

#endif  // ATR_CORE_BASE_PLUS_H_
