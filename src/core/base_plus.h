// BASE+ (paper §IV): the greedy framework where each candidate's gain is
// computed with the upward-route follower search (Algorithm 3) instead of a
// full truss decomposition. One decomposition per round, plus m follower
// searches; no result reuse across rounds.

#ifndef ATR_CORE_BASE_PLUS_H_
#define ATR_CORE_BASE_PLUS_H_

#include "core/atr_problem.h"
#include "graph/graph.h"

namespace atr {

// Runs BASE+ with the given budget. Candidate evaluation is parallelized
// across edges with one FollowerSearch instance per worker (deterministic
// reduction).
AnchorResult RunBasePlus(const Graph& g, uint32_t budget);

}  // namespace atr

#endif  // ATR_CORE_BASE_PLUS_H_
