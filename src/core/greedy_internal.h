// Shared round-state plumbing of the greedy family (BASE, BASE+, GAS):
// seeding from an optional cached decomposition and optional pre-existing
// anchors (the api layer's mutable sessions), recomputing with the alive
// subset respected, and constructing the incremental engine behind
// GreedyControl::use_incremental.
//
// The greedy cores keep no private support state of their own: every
// (re)decomposition below goes through truss/decomposition.h, which
// dispatches to the round-synchronous parallel peel under the solver's
// ScopedParallelism worker count with byte-identical results.

#ifndef ATR_CORE_GREEDY_INTERNAL_H_
#define ATR_CORE_GREEDY_INTERNAL_H_

#include <vector>

#include "graph/graph.h"
#include "truss/decomposition.h"
#include "truss/incremental.h"
#include "util/macros.h"

namespace atr {

struct GreedySeedState {
  std::vector<bool> anchored;
  TrussDecomposition current;
  // Edges participating in the decomposition; empty = all of them. Fixed
  // for the whole run (anchoring never removes edges).
  std::vector<EdgeId> alive;
};

inline GreedySeedState MakeGreedySeedState(
    const Graph& g, const TrussDecomposition* seed,
    const std::vector<bool>* initial_anchors) {
  GreedySeedState state;
  state.anchored = initial_anchors != nullptr
                       ? *initial_anchors
                       : std::vector<bool>(g.NumEdges(), false);
  ATR_CHECK(state.anchored.size() == g.NumEdges());
  state.current = seed != nullptr ? *seed
                                  : ComputeTrussDecomposition(g, state.anchored);
  state.alive = AliveSubsetOf(state.current);
  return state;
}

inline TrussDecomposition RecomputeGreedyState(
    const Graph& g, const std::vector<bool>& anchored,
    const std::vector<EdgeId>& alive) {
  return alive.empty() ? ComputeTrussDecomposition(g, anchored)
                       : ComputeTrussDecompositionOnSubset(g, anchored, alive);
}

// An edge the greedy may anchor this round: present and not yet anchored.
inline bool EligibleCandidate(const TrussDecomposition& current,
                              const std::vector<bool>& anchored, EdgeId e) {
  return !anchored[e] &&
         current.trussness[e] != kTrussnessNotComputed;
}

inline IncrementalTruss MakeGreedyEngine(
    const Graph& g, const TrussDecomposition* seed,
    const std::vector<bool>* initial_anchors) {
  const std::vector<bool> no_anchors;
  const std::vector<bool>& anchors =
      initial_anchors != nullptr ? *initial_anchors : no_anchors;
  if (seed != nullptr) return IncrementalTruss(g, *seed, anchors);
  if (!anchors.empty()) {
    return IncrementalTruss(g, ComputeTrussDecomposition(g, anchors),
                            anchors);
  }
  return IncrementalTruss(g);
}

}  // namespace atr

#endif  // ATR_CORE_GREEDY_INTERNAL_H_
