// BASE (Algorithm 2): the greedy framework with brute-force gain
// computation. Every round, the trussness gain of every candidate edge is
// obtained by a full truss decomposition of the anchored graph —
// O(b * m^2.5). Only feasible on small graphs; it is the reference
// implementation the accelerated solvers are verified against.
//
// With GreedyControl::use_incremental the same greedy runs on an
// IncrementalTruss engine: candidates are evaluated by speculative
// ApplyAnchor + rollback and commits update the decomposition locally.
// The anchor sequence and gains are identical to the brute-force path.

#ifndef ATR_CORE_BASE_GREEDY_H_
#define ATR_CORE_BASE_GREEDY_H_

#include <vector>

#include "core/atr_problem.h"
#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

// Runs BASE with the given budget. Candidate evaluation is parallelized
// across edges (deterministic reduction). `control` may carry a per-round
// progress callback, a cancellation flag, a wall-clock limit, and the
// use_incremental switch. `seed_decomposition`, when non-null, must be the
// decomposition of `g` under `initial_anchors` (no anchors when null) and
// replaces the round-1 computation (the api layer passes its cached copy);
// edges it reports as kTrussnessNotComputed are treated as removed.
// `initial_anchors` edges are never candidates and gains are measured on
// top of them.
AnchorResult RunBaseGreedy(
    const Graph& g, uint32_t budget, const GreedyControl* control = nullptr,
    const TrussDecomposition* seed_decomposition = nullptr,
    const std::vector<bool>* initial_anchors = nullptr);

}  // namespace atr

#endif  // ATR_CORE_BASE_GREEDY_H_
