// BASE (Algorithm 2): the greedy framework with brute-force gain
// computation. Every round, the trussness gain of every candidate edge is
// obtained by a full truss decomposition of the anchored graph —
// O(b * m^2.5). Only feasible on small graphs; it is the reference
// implementation the accelerated solvers are verified against.

#ifndef ATR_CORE_BASE_GREEDY_H_
#define ATR_CORE_BASE_GREEDY_H_

#include "core/atr_problem.h"
#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

// Runs BASE with the given budget. Candidate evaluation is parallelized
// across edges (deterministic reduction). `control` may carry a per-round
// progress callback, a cancellation flag, and a wall-clock limit.
// `seed_decomposition`, when non-null, must be the anchor-free
// decomposition of `g` and replaces the round-1 computation (the api layer
// passes its cached copy).
AnchorResult RunBaseGreedy(
    const Graph& g, uint32_t budget, const GreedyControl* control = nullptr,
    const TrussDecomposition* seed_decomposition = nullptr);

}  // namespace atr

#endif  // ATR_CORE_BASE_GREEDY_H_
