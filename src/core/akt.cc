#include "core/akt.h"

#include <algorithm>
#include <mutex>

#include "graph/triangles.h"
#include "util/macros.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace atr {
namespace {

// Peeling engine for the anchored k-truss restricted to the (k-1)-truss.
// Edges with t >= k never leave the k-truss (they self-support within it),
// so only (k-1)-hull edges are peelable; supports are counted within the
// t >= k-1 subgraph. An engine instance is reusable across candidate
// evaluations (touched state is restored after each run).
class AnchoredKTrussEngine {
 public:
  AnchoredKTrussEngine(const Graph& g, const TrussDecomposition& decomp,
                       uint32_t k)
      : g_(g), decomp_(decomp), k_(k) {
    const uint32_t m = g.NumEdges();
    in_scope_.assign(m, false);
    for (EdgeId e = 0; e < m; ++e) {
      const uint32_t t = decomp.trussness[e];
      if (t != kAnchoredTrussness && t >= k - 1) in_scope_[e] = true;
      if (decomp.trussness[e] == k - 1) hull_.push_back(e);
    }
    // Scope-restricted supports via the shared parallel helper (engines
    // constructed inside candidate-evaluation workers run it inline).
    base_support_ = ComputeSupportParallel(g, in_scope_);
    support_ = base_support_;
    removed_.assign(m, false);
  }

  const std::vector<EdgeId>& hull() const { return hull_; }

  // Number of (k-1)-hull edges retained in the anchored k-truss when the
  // vertices in `anchored_vertex` (a mask) are anchored. When `followers`
  // is non-null the retained hull edges are appended.
  //
  // Exemption semantics (Zhang et al., cf. the paper's Example 1): an edge
  // incident to an anchored vertex keeps infinite support as long as it
  // still closes at least one triangle in the remaining subgraph — it is
  // only peeled when its support reaches zero.
  uint32_t Evaluate(const std::vector<bool>& anchored_vertex,
                    std::vector<EdgeId>* followers = nullptr) {
    auto exempt = [&](EdgeId e) {
      const EdgeEndpoints ends = g_.Edge(e);
      return anchored_vertex[ends.u] || anchored_vertex[ends.v];
    };
    auto peelable = [&](EdgeId e) {
      return exempt(e) ? support_[e] == 0 : support_[e] < k_ - 2;
    };
    // Edges are marked removed one at a time when popped, never in batch: a
    // triangle whose two other edges both die must decrement the third
    // exactly once, which requires the second death to still see the first
    // edge dead but happen *after* the first death's scan.
    std::vector<EdgeId> frontier;
    for (EdgeId e : hull_) {
      if (peelable(e)) frontier.push_back(e);
    }
    while (!frontier.empty()) {
      const EdgeId e = frontier.back();
      frontier.pop_back();
      if (removed_[e] || !peelable(e)) continue;
      removed_[e] = true;
      touched_removed_.push_back(e);
      ForEachTriangleOfEdge(g_, e, [&](VertexId, EdgeId e1, EdgeId e2) {
        if (!Alive(e1) || !Alive(e2)) return;
        for (const EdgeId p : {e1, e2}) {
          // Only hull edges can be peeled; t >= k edges self-support.
          if (decomp_.trussness[p] != k_ - 1) continue;
          if (support_[p] == base_support_[p]) touched_support_.push_back(p);
          --support_[p];
          if (!removed_[p] && peelable(p)) frontier.push_back(p);
        }
      });
    }
    uint32_t retained = 0;
    for (EdgeId e : hull_) {
      if (!removed_[e]) {
        ++retained;
        if (followers != nullptr) followers->push_back(e);
      }
    }
    // Restore scratch state.
    for (EdgeId e : touched_support_) support_[e] = base_support_[e];
    for (EdgeId e : touched_removed_) removed_[e] = false;
    touched_support_.clear();
    touched_removed_.clear();
    return retained;
  }

 private:
  bool Alive(EdgeId e) const { return in_scope_[e] && !removed_[e]; }

  const Graph& g_;
  const TrussDecomposition& decomp_;
  const uint32_t k_;
  std::vector<EdgeId> hull_;
  std::vector<uint32_t> base_support_;
  std::vector<uint32_t> support_;
  std::vector<bool> in_scope_;
  std::vector<bool> removed_;
  std::vector<EdgeId> touched_support_;
  std::vector<EdgeId> touched_removed_;
};

}  // namespace

std::vector<EdgeId> AktFollowers(const Graph& g,
                                 const TrussDecomposition& decomp, uint32_t k,
                                 const std::vector<VertexId>& anchors) {
  ATR_CHECK(k >= 3);
  AnchoredKTrussEngine engine(g, decomp, k);
  std::vector<bool> mask(g.NumVertices(), false);
  for (VertexId v : anchors) mask[v] = true;
  std::vector<EdgeId> followers;
  engine.Evaluate(mask, &followers);
  return followers;
}

AktResult RunAkt(const Graph& g, const TrussDecomposition& decomp, uint32_t k,
                 uint32_t budget, const GreedyControl* control) {
  ATR_CHECK(k >= 3);
  AktResult result;
  result.k = k;

  AnchoredKTrussEngine probe(g, decomp, k);
  if (probe.hull().empty()) return result;

  // Candidate vertices: endpoints of (k-1)-hull edges.
  std::vector<VertexId> candidates;
  for (EdgeId e : probe.hull()) {
    candidates.push_back(g.Edge(e).u);
    candidates.push_back(g.Edge(e).v);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<bool> anchored_vertex(g.NumVertices(), false);
  uint64_t current_gain = 0;
  budget = std::min<uint32_t>(budget, candidates.size());

  WallTimer timer;
  for (uint32_t round = 0; round < budget; ++round) {
    if (control != nullptr && control->ShouldStop(timer.ElapsedSeconds())) {
      result.stopped_early = true;
      break;
    }
    struct Best {
      uint64_t gain = 0;
      VertexId vertex = kInvalidVertex;
    };
    std::vector<Best> bests;
    std::mutex mu;
    ParallelFor(candidates.size(), [&](int64_t begin, int64_t end) {
      AnchoredKTrussEngine engine(g, decomp, k);
      std::vector<bool> mask = anchored_vertex;
      Best local;
      for (int64_t i = begin; i < end; ++i) {
        const VertexId v = candidates[i];
        if (anchored_vertex[v]) continue;
        mask[v] = true;
        const uint64_t gain = engine.Evaluate(mask);
        mask[v] = false;
        if (local.vertex == kInvalidVertex || gain > local.gain ||
            (gain == local.gain && v < local.vertex)) {
          local = Best{gain, v};
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      bests.push_back(local);
    });
    Best best;
    for (const Best& b : bests) {
      if (b.vertex == kInvalidVertex) continue;
      if (best.vertex == kInvalidVertex || b.gain > best.gain ||
          (b.gain == best.gain && b.vertex < best.vertex)) {
        best = b;
      }
    }
    ATR_CHECK(best.vertex != kInvalidVertex);
    anchored_vertex[best.vertex] = true;
    const uint64_t marginal = best.gain - current_gain;
    current_gain = best.gain;
    result.anchors.push_back(best.vertex);
    result.gain_after.push_back(current_gain);
    if (control != nullptr && control->on_round) {
      GreedyProgress progress;
      progress.round = round + 1;
      progress.budget = budget;
      progress.gain = static_cast<uint32_t>(marginal);
      progress.total_gain = current_gain;
      progress.elapsed_seconds = timer.ElapsedSeconds();
      if (!control->on_round(progress)) {
        result.stopped_early = true;
        break;
      }
    }
  }
  result.total_gain = current_gain;
  return result;
}

}  // namespace atr
