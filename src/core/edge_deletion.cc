#include "core/edge_deletion.h"

#include <algorithm>
#include <numeric>

#include "truss/decomposition.h"
#include "truss/gain.h"
#include "util/macros.h"
#include "util/parallel_for.h"

namespace atr {
namespace {

// Total trussness of all edges except `deleted` in the subgraph without it.
uint64_t TotalTrussnessWithout(const Graph& g, EdgeId deleted) {
  std::vector<EdgeId> subset;
  subset.reserve(g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (e != deleted) subset.push_back(e);
  }
  const TrussDecomposition decomp =
      ComputeTrussDecompositionOnSubset(g, {}, subset);
  uint64_t total = 0;
  for (EdgeId e : subset) total += decomp.trussness[e];
  return total;
}

}  // namespace

EdgeDeletionResult RunEdgeDeletionBaseline(const Graph& g, uint32_t budget) {
  const uint32_t m = g.NumEdges();
  EdgeDeletionResult result;
  if (m == 0) return result;
  budget = std::min<uint32_t>(budget, m);

  const TrussDecomposition base = ComputeTrussDecomposition(g);
  uint64_t baseline_total = 0;
  for (EdgeId e = 0; e < m; ++e) baseline_total += base.trussness[e];

  // Deletion impact of each edge: the trussness lost by the *other* edges
  // when it is removed. Impacts are independent per candidate, so the
  // "greedy" selection is the top-b ranking.
  std::vector<uint64_t> impact(m, 0);
  ParallelFor(m, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const EdgeId e = static_cast<EdgeId>(i);
      const uint64_t remaining = TotalTrussnessWithout(g, e);
      const uint64_t own = base.trussness[e];
      ATR_DCHECK(baseline_total >= remaining + own);
      impact[e] = baseline_total - remaining - own;
    }
  });

  std::vector<EdgeId> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&impact](EdgeId a, EdgeId b) {
    return impact[a] != impact[b] ? impact[a] > impact[b] : a < b;
  });
  result.anchors.assign(order.begin(), order.begin() + budget);
  result.total_gain = TrussnessGain(g, base, {}, result.anchors);
  return result;
}

}  // namespace atr
