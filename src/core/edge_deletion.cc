#include "core/edge_deletion.h"

#include <algorithm>
#include <numeric>

#include "truss/decomposition.h"
#include "truss/gain.h"
#include "truss/incremental.h"
#include "util/macros.h"
#include "util/parallel_for.h"

namespace atr {

EdgeDeletionResult RunEdgeDeletionBaseline(const Graph& g, uint32_t budget) {
  const uint32_t m = g.NumEdges();
  EdgeDeletionResult result;
  if (m == 0) return result;
  budget = std::min<uint32_t>(budget, m);

  const IncrementalTruss engine(g);
  const TrussDecomposition& base = engine.decomposition();

  // Deletion impact of each edge: the trussness lost by the *other* edges
  // when it is removed. Impacts are independent per candidate, so the
  // "greedy" selection is the top-b ranking. Each candidate is scored by a
  // speculative RemoveEdge + rollback on a per-worker clone of the
  // incremental engine — one localized update per candidate instead of one
  // full decomposition, and the rollback guarantees the next candidate of
  // the chunk never sees stale support state from the previous one.
  std::vector<uint64_t> impact(m, 0);
  ParallelFor(m, [&](int64_t begin, int64_t end) {
    IncrementalTruss local(engine);
    for (int64_t i = begin; i < end; ++i) {
      const EdgeId e = static_cast<EdgeId>(i);
      const IncrementalTruss::Checkpoint cp = local.MarkRollbackPoint();
      impact[e] = local.RemoveEdge(e);
      local.RollbackTo(cp);
    }
  });

  std::vector<EdgeId> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&impact](EdgeId a, EdgeId b) {
    return impact[a] != impact[b] ? impact[a] > impact[b] : a < b;
  });
  result.anchors.assign(order.begin(), order.begin() + budget);
  result.total_gain = TrussnessGain(g, base, {}, result.anchors);
  return result;
}

}  // namespace atr
