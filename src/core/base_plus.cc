#include "core/base_plus.h"

#include <memory>
#include <mutex>

#include "core/greedy_internal.h"
#include "route/follower_search.h"
#include "truss/decomposition.h"
#include "truss/incremental.h"
#include "util/macros.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace atr {

AnchorResult RunBasePlus(const Graph& g, uint32_t budget,
                         const GreedyControl* control,
                         const TrussDecomposition* seed_decomposition,
                         const std::vector<bool>* initial_anchors) {
  const uint32_t m = g.NumEdges();
  AnchorResult result;
  if (m == 0) return result;
  budget = std::min<uint32_t>(budget, m);

  WallTimer timer;
  // Two ways to keep the shared (decomposition, anchors) state current:
  // recompute from scratch after each commit (classic), or maintain it with
  // the incremental engine. Candidate evaluation reads the same state
  // either way, so the selected anchors are identical.
  const bool use_incremental =
      control != nullptr && control->use_incremental;
  std::unique_ptr<IncrementalTruss> engine;
  GreedySeedState state;
  const TrussDecomposition* current = nullptr;
  const std::vector<bool>* anchored = nullptr;
  if (use_incremental) {
    engine = std::make_unique<IncrementalTruss>(
        MakeGreedyEngine(g, seed_decomposition, initial_anchors));
    current = &engine->decomposition();
    anchored = &engine->anchored();
  } else {
    state = MakeGreedySeedState(g, seed_decomposition, initial_anchors);
    current = &state.current;
    anchored = &state.anchored;
  }
  FollowerSearch main_search(g);

  while (result.anchors.size() < budget) {
    if (control != nullptr && control->ShouldStop(timer.ElapsedSeconds())) {
      result.stopped_early = true;
      break;
    }
    struct Best {
      uint64_t gain = 0;
      EdgeId edge = kInvalidEdge;
    };
    std::vector<Best> bests;
    std::mutex mu;
    ParallelFor(m, [&](int64_t begin, int64_t end) {
      // Worker-local search state (epoch-stamped scratch arrays).
      FollowerSearch search(g);
      search.SetState(current, anchored);
      Best local;
      for (int64_t i = begin; i < end; ++i) {
        const EdgeId e = static_cast<EdgeId>(i);
        if (!EligibleCandidate(*current, *anchored, e)) continue;
        const uint64_t gain = search.CountFollowers(e);
        if (local.edge == kInvalidEdge ||
            BetterCandidate(gain, e, local.gain, local.edge)) {
          local = Best{gain, e};
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      bests.push_back(local);
    });
    Best best;
    for (const Best& b : bests) {
      if (b.edge == kInvalidEdge) continue;
      if (best.edge == kInvalidEdge ||
          BetterCandidate(b.gain, b.edge, best.gain, best.edge)) {
        best = b;
      }
    }
    if (best.edge == kInvalidEdge) break;  // no eligible candidate left

    AnchorRound round;
    round.anchor = best.edge;
    round.gain = static_cast<uint32_t>(best.gain);
    if (use_incremental) {
      std::vector<EdgeId> followers;
      const uint32_t recount = engine->ApplyAnchor(best.edge, &followers);
      ATR_CHECK(recount == best.gain);
      for (const EdgeId f : followers) {
        // Each follower rose by exactly 1; recover the pre-anchor value.
        round.follower_trussness.push_back(current->trussness[f] - 1);
      }
      engine->ClearUndoLog();
    } else {
      std::vector<EdgeId> followers;
      main_search.SetState(current, anchored);
      const uint32_t recount =
          main_search.CountFollowers(best.edge, &followers);
      ATR_CHECK(recount == best.gain);
      for (const EdgeId f : followers) {
        round.follower_trussness.push_back(current->trussness[f]);
      }
      state.anchored[best.edge] = true;
      state.current = RecomputeGreedyState(g, state.anchored, state.alive);
    }
    round.cumulative_seconds = timer.ElapsedSeconds();
    result.total_gain += best.gain;
    result.anchors.push_back(best.edge);
    result.rounds.push_back(std::move(round));
    if (!NotifyRound(control, budget, result)) break;
  }
  return result;
}

}  // namespace atr
