#include "core/random_baselines.h"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "graph/triangles.h"
#include "route/follower_search.h"
#include "truss/decomposition.h"
#include "truss/gain.h"
#include "util/macros.h"
#include "util/parallel_for.h"
#include "util/prng.h"

namespace atr {
namespace {

std::vector<EdgeId> TopFractionByScore(const std::vector<uint64_t>& score,
                                       double fraction) {
  std::vector<EdgeId> order(score.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&score](EdgeId a, EdgeId b) {
    return score[a] != score[b] ? score[a] > score[b] : a < b;
  });
  const size_t keep = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(order.size())));
  order.resize(std::min(order.size(), keep));
  return order;
}

}  // namespace

std::vector<EdgeId> BaselinePool(const Graph& g, RandomPoolKind kind) {
  const uint32_t m = g.NumEdges();
  switch (kind) {
    case RandomPoolKind::kAllEdges: {
      std::vector<EdgeId> all(m);
      std::iota(all.begin(), all.end(), 0u);
      return all;
    }
    case RandomPoolKind::kTopSupport: {
      const std::vector<uint32_t> support = ComputeSupport(g);
      std::vector<uint64_t> score(support.begin(), support.end());
      return TopFractionByScore(score, 0.2);
    }
    case RandomPoolKind::kTopRouteSize: {
      const TrussDecomposition decomp = ComputeTrussDecomposition(g);
      std::vector<uint64_t> score(m, 0);
      ParallelFor(m, [&](int64_t begin, int64_t end) {
        FollowerSearch search(g);
        search.SetState(&decomp, nullptr);
        for (int64_t i = begin; i < end; ++i) {
          score[i] = search.RouteSize(static_cast<EdgeId>(i));
        }
      });
      return TopFractionByScore(score, 0.2);
    }
  }
  return {};
}

RandomBaselineResult RunRandomBaseline(
    const Graph& g, RandomPoolKind kind,
    const std::vector<uint32_t>& budget_checkpoints, uint32_t trials,
    uint64_t seed) {
  ATR_CHECK(!budget_checkpoints.empty());
  ATR_CHECK(std::is_sorted(budget_checkpoints.begin(),
                           budget_checkpoints.end()));
  const uint32_t m = g.NumEdges();
  const uint32_t budget = std::min<uint32_t>(budget_checkpoints.back(), m);
  const std::vector<EdgeId> pool = BaselinePool(g, kind);
  ATR_CHECK(!pool.empty());
  const TrussDecomposition base = ComputeTrussDecomposition(g);

  struct TrialBest {
    uint64_t gain = 0;
    uint32_t trial = 0xffffffffu;
    std::vector<EdgeId> anchors;
    std::vector<uint64_t> checkpoint_gain;
  };
  std::vector<TrialBest> partials;
  std::mutex mu;

  ParallelFor(trials, [&](int64_t begin, int64_t end) {
    TrialBest local;
    local.checkpoint_gain.assign(budget_checkpoints.size(), 0);
    for (int64_t trial = begin; trial < end; ++trial) {
      // Independent deterministic stream per trial.
      Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1)));
      const uint32_t draw = std::min<uint32_t>(budget, pool.size());
      std::vector<uint32_t> picks = rng.SampleWithoutReplacement(
          static_cast<uint32_t>(pool.size()), draw);
      rng.Shuffle(picks);  // checkpoint prefixes must be a random order
      std::vector<EdgeId> anchors;
      anchors.reserve(draw);
      for (uint32_t p : picks) anchors.push_back(pool[p]);

      // Evaluate each checkpoint prefix.
      for (size_t c = 0; c < budget_checkpoints.size(); ++c) {
        const uint32_t prefix =
            std::min<uint32_t>(budget_checkpoints[c], draw);
        std::vector<EdgeId> subset(anchors.begin(),
                                   anchors.begin() + prefix);
        const uint64_t gain = TrussnessGain(g, base, {}, subset);
        local.checkpoint_gain[c] = std::max(local.checkpoint_gain[c], gain);
        if (c + 1 == budget_checkpoints.size()) {
          const uint32_t t32 = static_cast<uint32_t>(trial);
          if (gain > local.gain || (gain == local.gain && t32 < local.trial)) {
            local.gain = gain;
            local.trial = t32;
            local.anchors = subset;
          }
        }
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    partials.push_back(std::move(local));
  });

  RandomBaselineResult result;
  result.trials = trials;
  result.gain_at_checkpoint.assign(budget_checkpoints.size(), 0);
  uint32_t best_trial = 0xffffffffu;
  for (const TrialBest& p : partials) {
    for (size_t c = 0; c < result.gain_at_checkpoint.size(); ++c) {
      result.gain_at_checkpoint[c] =
          std::max(result.gain_at_checkpoint[c], p.checkpoint_gain[c]);
    }
    if (p.trial == 0xffffffffu) continue;
    if (p.gain > result.best_gain ||
        (p.gain == result.best_gain && p.trial < best_trial)) {
      result.best_gain = p.gain;
      result.best_anchors = p.anchors;
      best_trial = p.trial;
    }
  }
  return result;
}

}  // namespace atr
