#include "core/random_baselines.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <string>

#include "graph/triangles.h"
#include "route/follower_search.h"
#include "truss/decomposition.h"
#include "truss/gain.h"
#include "util/macros.h"
#include "util/parallel_for.h"
#include "util/prng.h"
#include "util/timer.h"

namespace atr {
namespace {

// Keep fraction of the Sup/Tur pools. BaselinePoolCapacity must stay in
// lockstep with the truncation below.
constexpr double kTopPoolFraction = 0.2;

size_t TopPoolKeepCount(size_t total) {
  return std::max<size_t>(
      1, static_cast<size_t>(kTopPoolFraction * static_cast<double>(total)));
}

std::vector<EdgeId> TopFractionByScore(const std::vector<uint64_t>& score) {
  std::vector<EdgeId> order(score.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&score](EdgeId a, EdgeId b) {
    return score[a] != score[b] ? score[a] > score[b] : a < b;
  });
  order.resize(std::min(order.size(), TopPoolKeepCount(order.size())));
  return order;
}

}  // namespace

uint32_t BaselinePoolCapacity(const Graph& g, RandomPoolKind kind) {
  const uint32_t m = g.NumEdges();
  if (kind == RandomPoolKind::kAllEdges || m == 0) return m;
  return static_cast<uint32_t>(TopPoolKeepCount(m));
}

std::vector<EdgeId> BaselinePool(const Graph& g, RandomPoolKind kind,
                                 const TrussDecomposition* base) {
  const uint32_t m = g.NumEdges();
  switch (kind) {
    case RandomPoolKind::kAllEdges: {
      std::vector<EdgeId> all(m);
      std::iota(all.begin(), all.end(), 0u);
      return all;
    }
    case RandomPoolKind::kTopSupport: {
      const std::vector<uint32_t> support = ComputeSupport(g);
      std::vector<uint64_t> score(support.begin(), support.end());
      return TopFractionByScore(score);
    }
    case RandomPoolKind::kTopRouteSize: {
      TrussDecomposition local;
      if (base == nullptr) {
        local = ComputeTrussDecomposition(g);
        base = &local;
      }
      std::vector<uint64_t> score(m, 0);
      ParallelFor(m, [&](int64_t begin, int64_t end) {
        FollowerSearch search(g);
        search.SetState(base, nullptr);
        for (int64_t i = begin; i < end; ++i) {
          score[i] = search.RouteSize(static_cast<EdgeId>(i));
        }
      });
      return TopFractionByScore(score);
    }
  }
  return {};
}

namespace {

// Input checks shared by both entry points; cheap, so they run before any
// decomposition work.
Status ValidateRandomBaselineInputs(
    uint32_t num_edges, const std::vector<uint32_t>& budget_checkpoints,
    uint32_t trials) {
  if (num_edges == 0) {
    return Status::InvalidArgument("random baseline: graph has no edges");
  }
  if (budget_checkpoints.empty()) {
    return Status::InvalidArgument(
        "random baseline: budget_checkpoints must be non-empty");
  }
  for (size_t i = 1; i < budget_checkpoints.size(); ++i) {
    if (budget_checkpoints[i] <= budget_checkpoints[i - 1]) {
      return Status::InvalidArgument(
          "random baseline: budget_checkpoints must be strictly ascending");
    }
  }
  if (budget_checkpoints.front() < 1 || budget_checkpoints.back() > num_edges) {
    return Status::InvalidArgument(
        "random baseline: checkpoints must satisfy 1 <= b <= |E| (|E| = " +
        std::to_string(num_edges) + ")");
  }
  if (trials == 0) {
    return Status::InvalidArgument("random baseline: trials must be >= 1");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<RandomBaselineResult> RunRandomBaseline(
    const Graph& g, RandomPoolKind kind,
    const std::vector<uint32_t>& budget_checkpoints, uint32_t trials,
    uint64_t seed, const GreedyControl* control) {
  Status status =
      ValidateRandomBaselineInputs(g.NumEdges(), budget_checkpoints, trials);
  if (!status.ok()) return status;
  const TrussDecomposition base = ComputeTrussDecomposition(g);
  return RunRandomBaseline(g, base, kind, budget_checkpoints, trials, seed,
                           control);
}

StatusOr<RandomBaselineResult> RunRandomBaseline(
    const Graph& g, const TrussDecomposition& base, RandomPoolKind kind,
    const std::vector<uint32_t>& budget_checkpoints, uint32_t trials,
    uint64_t seed, const GreedyControl* control) {
  Status status =
      ValidateRandomBaselineInputs(g.NumEdges(), budget_checkpoints, trials);
  if (!status.ok()) return status;
  const uint32_t budget = budget_checkpoints.back();
  const std::vector<EdgeId> pool = BaselinePool(g, kind, &base);
  ATR_CHECK(!pool.empty());
  // Sup/Tur draw from the top-20% pool, so their effective budget ceiling
  // is the pool size — reject rather than silently drawing fewer anchors
  // than requested.
  if (budget > pool.size()) {
    return Status::InvalidArgument(
        "random baseline: budget " + std::to_string(budget) +
        " exceeds the candidate pool size " + std::to_string(pool.size()) +
        " for this pool kind");
  }

  struct TrialBest {
    uint64_t gain = 0;
    uint32_t trial = 0xffffffffu;
    std::vector<EdgeId> anchors;
    std::vector<uint64_t> checkpoint_gain;
  };
  std::vector<TrialBest> partials;
  std::mutex mu;
  WallTimer timer;
  std::atomic<bool> stopped{false};
  std::atomic<uint32_t> trials_done{0};

  ParallelFor(trials, [&](int64_t begin, int64_t end) {
    TrialBest local;
    local.checkpoint_gain.assign(budget_checkpoints.size(), 0);
    for (int64_t trial = begin; trial < end; ++trial) {
      if (control != nullptr && control->ShouldStop(timer.ElapsedSeconds())) {
        stopped.store(true, std::memory_order_relaxed);
        break;
      }
      trials_done.fetch_add(1, std::memory_order_relaxed);
      // Independent deterministic stream per trial.
      Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1)));
      const uint32_t draw = std::min<uint32_t>(budget, pool.size());
      std::vector<uint32_t> picks = rng.SampleWithoutReplacement(
          static_cast<uint32_t>(pool.size()), draw);
      rng.Shuffle(picks);  // checkpoint prefixes must be a random order
      std::vector<EdgeId> anchors;
      anchors.reserve(draw);
      for (uint32_t p : picks) anchors.push_back(pool[p]);

      // Evaluate each checkpoint prefix.
      for (size_t c = 0; c < budget_checkpoints.size(); ++c) {
        const uint32_t prefix =
            std::min<uint32_t>(budget_checkpoints[c], draw);
        std::vector<EdgeId> subset(anchors.begin(),
                                   anchors.begin() + prefix);
        const uint64_t gain = TrussnessGain(g, base, {}, subset);
        local.checkpoint_gain[c] = std::max(local.checkpoint_gain[c], gain);
        if (c + 1 == budget_checkpoints.size()) {
          const uint32_t t32 = static_cast<uint32_t>(trial);
          if (gain > local.gain || (gain == local.gain && t32 < local.trial)) {
            local.gain = gain;
            local.trial = t32;
            local.anchors = subset;
          }
        }
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    partials.push_back(std::move(local));
  });

  RandomBaselineResult result;
  result.trials = trials_done.load(std::memory_order_relaxed);
  result.stopped_early = stopped.load(std::memory_order_relaxed);
  result.gain_at_checkpoint.assign(budget_checkpoints.size(), 0);
  uint32_t best_trial = 0xffffffffu;
  for (const TrialBest& p : partials) {
    for (size_t c = 0; c < result.gain_at_checkpoint.size(); ++c) {
      result.gain_at_checkpoint[c] =
          std::max(result.gain_at_checkpoint[c], p.checkpoint_gain[c]);
    }
    if (p.trial == 0xffffffffu) continue;
    if (p.gain > result.best_gain ||
        (p.gain == result.best_gain && p.trial < best_trial)) {
      result.best_gain = p.gain;
      result.best_anchors = p.anchors;
      best_trial = p.trial;
    }
  }
  return result;
}

}  // namespace atr
