// Edge-deletion baseline of the paper's Fig. 7 case study: greedily pick
// the b edges whose *removal* would reduce global trussness the most, then
// anchor those edges and measure the resulting trussness gain. The paper
// uses it to show that deletion-criticality targets high-trussness edges,
// which are poor anchors (an anchor only lifts edges at its own level or
// above).

#ifndef ATR_CORE_EDGE_DELETION_H_
#define ATR_CORE_EDGE_DELETION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace atr {

struct EdgeDeletionResult {
  std::vector<EdgeId> anchors;  // selection order
  uint64_t total_gain = 0;      // TG of anchoring the selected edges
};

// Brute-force greedy (one decomposition per candidate per round); intended
// for the case-study-sized graphs only.
EdgeDeletionResult RunEdgeDeletionBaseline(const Graph& g, uint32_t budget);

}  // namespace atr

#endif  // ATR_CORE_EDGE_DELETION_H_
