// Randomized baselines of the paper's effectiveness experiments:
//  * Rand — b anchors uniform over all edges;
//  * Sup  — b anchors uniform over the top 20% of edges by support;
//  * Tur  — b anchors uniform over the top 20% by upward-route size.
// Each runs `trials` independent draws and reports the best trussness gain
// found (the paper uses 2000 trials and reports the maximum).

#ifndef ATR_CORE_RANDOM_BASELINES_H_
#define ATR_CORE_RANDOM_BASELINES_H_

#include <cstdint>
#include <vector>

#include "core/atr_problem.h"
#include "graph/graph.h"
#include "truss/decomposition.h"
#include "util/status.h"

namespace atr {

struct RandomBaselineResult {
  uint64_t best_gain = 0;
  std::vector<EdgeId> best_anchors;
  // Draws actually performed (== the requested trials unless a
  // GreedyControl stopped the run early).
  uint32_t trials = 0;
  // best_gain at each requested budget checkpoint (ascending budgets), so
  // one call serves a whole Fig. 6 sweep. Entry i corresponds to
  // budget_checkpoints[i] anchors (prefixes of each trial's draw).
  std::vector<uint64_t> gain_at_checkpoint;
  // True when a GreedyControl stopped the run before all trials finished;
  // the result then reflects only the trials completed by that point.
  bool stopped_early = false;
};

enum class RandomPoolKind {
  kAllEdges,       // Rand
  kTopSupport,     // Sup: top 20% by support
  kTopRouteSize,   // Tur: top 20% by upward-route size
};

// Runs the baseline. Returns InvalidArgument (instead of aborting) when the
// graph has no edges, `budget_checkpoints` is empty, not strictly
// ascending, starts below 1, or ends beyond |E| — or beyond the candidate
// pool size for the top-20% pools (Sup/Tur) — or `trials` is zero. The
// final checkpoint is the full budget b. Deterministic in `seed` (trials
// are independent streams; parallelized with ordered reduction) as long as
// `control` does not interrupt the run. `control->cancel` and the
// wall-clock limit are checked between trials on every worker; the
// per-round progress callback is unused (trials are not rounds).
StatusOr<RandomBaselineResult> RunRandomBaseline(
    const Graph& g, RandomPoolKind kind,
    const std::vector<uint32_t>& budget_checkpoints, uint32_t trials,
    uint64_t seed, const GreedyControl* control = nullptr);

// As above, but reuses `base` — the anchor-free truss decomposition of `g`
// — instead of recomputing it (the Tur pool and all gain evaluations need
// one). This is the entry point the api/ solvers use so an AtrEngine's
// cached decomposition is shared.
StatusOr<RandomBaselineResult> RunRandomBaseline(
    const Graph& g, const TrussDecomposition& base, RandomPoolKind kind,
    const std::vector<uint32_t>& budget_checkpoints, uint32_t trials,
    uint64_t seed, const GreedyControl* control = nullptr);

// The candidate pool used by `kind` (exposed for tests): all edges, or the
// top-20% edge ids under the respective score, descending score order.
// When `base` is non-null it is used for the route-size scores instead of
// a fresh decomposition.
std::vector<EdgeId> BaselinePool(const Graph& g, RandomPoolKind kind,
                                 const TrussDecomposition* base = nullptr);

// Number of candidates in the pool `kind` draws from — |E| for Rand, the
// top-20% count for Sup/Tur — without computing the pool. This is the
// budget ceiling RunRandomBaseline enforces, exposed so harnesses can
// clamp environment-supplied budgets instead of tripping the validation.
uint32_t BaselinePoolCapacity(const Graph& g, RandomPoolKind kind);

}  // namespace atr

#endif  // ATR_CORE_RANDOM_BASELINES_H_
