// Randomized baselines of the paper's effectiveness experiments:
//  * Rand — b anchors uniform over all edges;
//  * Sup  — b anchors uniform over the top 20% of edges by support;
//  * Tur  — b anchors uniform over the top 20% by upward-route size.
// Each runs `trials` independent draws and reports the best trussness gain
// found (the paper uses 2000 trials and reports the maximum).

#ifndef ATR_CORE_RANDOM_BASELINES_H_
#define ATR_CORE_RANDOM_BASELINES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace atr {

struct RandomBaselineResult {
  uint64_t best_gain = 0;
  std::vector<EdgeId> best_anchors;
  uint32_t trials = 0;
  // best_gain at each requested budget checkpoint (ascending budgets), so
  // one call serves a whole Fig. 6 sweep. Entry i corresponds to
  // budget_checkpoints[i] anchors (prefixes of each trial's draw).
  std::vector<uint64_t> gain_at_checkpoint;
};

enum class RandomPoolKind {
  kAllEdges,       // Rand
  kTopSupport,     // Sup: top 20% by support
  kTopRouteSize,   // Tur: top 20% by upward-route size
};

// Runs the baseline. `budget_checkpoints` must be ascending and non-empty;
// the final checkpoint is the full budget b. Deterministic in `seed`
// (trials are independent streams; parallelized with ordered reduction).
RandomBaselineResult RunRandomBaseline(const Graph& g, RandomPoolKind kind,
                                       const std::vector<uint32_t>& budget_checkpoints,
                                       uint32_t trials, uint64_t seed);

// The candidate pool used by `kind` (exposed for tests): all edges, or the
// top-20% edge ids under the respective score, descending score order.
std::vector<EdgeId> BaselinePool(const Graph& g, RandomPoolKind kind);

}  // namespace atr

#endif  // ATR_CORE_RANDOM_BASELINES_H_
