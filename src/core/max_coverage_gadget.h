// Construction of the NP-hardness reduction (Theorem 1 / Fig. 2 of the
// paper): a maximum-coverage instance becomes an ATR instance whose optimal
// b-anchor gain equals the optimal b-set coverage. Used by the validation
// suite to exercise the problem structure end-to-end.
//
// Layout (see DESIGN.md): a hub vertex h; per set T_i a "set edge"
// a_i = (h, A_i); per element e_j an "element edge" f_j = (h, F_j). For
// every (i, j) with e_j in T_i, a (t+3)-clique containing A_i and F_j closes
// the triangle {a_i, f_j, (A_i, F_j)}. Each f_j additionally gets t
// triangles against 2t private (t+3)-cliques, pinning t(f_j) = t+2 so that
// anchoring a_i lifts exactly its covered element edges by one.

#ifndef ATR_CORE_MAX_COVERAGE_GADGET_H_
#define ATR_CORE_MAX_COVERAGE_GADGET_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace atr {

struct MaxCoverageGadget {
  Graph graph;
  // Edge id of a_i for each input set.
  std::vector<EdgeId> set_edges;
  // Edge id of f_j for each element.
  std::vector<EdgeId> element_edges;
  uint32_t num_elements = 0;
};

// `sets` lists, per set, the element indices it covers (elements are
// 0..num_elements-1; every element must appear in at least one set).
MaxCoverageGadget BuildMaxCoverageGadget(
    const std::vector<std::vector<uint32_t>>& sets, uint32_t num_elements);

}  // namespace atr

#endif  // ATR_CORE_MAX_COVERAGE_GADGET_H_
