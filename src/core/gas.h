// GAS (Algorithm 6): the full greedy solver combining the upward-route
// follower search (Algorithm 3) with the truss-component tree (Algorithm 4)
// and cross-round result reuse (Algorithm 5).
//
// Per round:
//  1. every candidate edge e keeps a cache F[e][TN.I] of follower counts per
//     subtree-adjacent tree node; only entries for "dirty" nodes (the ES set
//     of Algorithm 5) are recomputed, the rest are reused;
//  2. the best candidate is anchored, the decomposition and component tree
//     are rebuilt, and the dirty-node set for the next round is derived from
//     the edges whose (trussness, layer) changed plus the anchored edge's
//     subtree-adjacency (a correctness-preserving superset of the paper's
//     ES — see DESIGN.md §4).
//
// GAS must select exactly the same anchor sequence as BASE and BASE+ (the
// reuse is exact); the property tests enforce this.

#ifndef ATR_CORE_GAS_H_
#define ATR_CORE_GAS_H_

#include <vector>

#include "core/atr_problem.h"
#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

// Runs GAS with the given budget. `control` may carry a per-round progress
// callback, a cancellation flag, a wall-clock limit, and the
// use_incremental switch (the post-commit decomposition is then maintained
// by truss/incremental.h instead of recomputed; the component tree is
// still rebuilt per round). `seed_decomposition`, when non-null, must be
// the decomposition of `g` under `initial_anchors` (no anchors when null)
// and replaces the round-1 computation (the api layer passes its cached
// copy); edges it reports as kTrussnessNotComputed are treated as removed.
// `initial_anchors` edges are never candidates and gains are measured on
// top of them.
AnchorResult RunGas(const Graph& g, uint32_t budget,
                    const GreedyControl* control = nullptr,
                    const TrussDecomposition* seed_decomposition = nullptr,
                    const std::vector<bool>* initial_anchors = nullptr);

}  // namespace atr

#endif  // ATR_CORE_GAS_H_
