// AKT baseline — the anchored k-truss vertex-anchoring approach of Zhang et
// al. (ICDE 2018), reimplemented from its published semantics for the
// paper's Exp-4 / Exp-9 comparisons.
//
// Semantics: for a fixed k, anchoring a vertex exempts its incident edges
// from peeling during the k-truss computation (their support is treated as
// infinite). This can retain edges of trussness k-1 inside the k-truss; a
// vertex's followers are the (k-1)-trussness edges that join the anchored
// k-truss, each contributing +1 trussness gain (the paper notes AKT can
// only lift (k-1)-edges, by at most 1). The greedy picks b vertices, each
// round choosing the vertex with the largest marginal follower gain among
// the endpoints of (k-1)-hull edges.

#ifndef ATR_CORE_AKT_H_
#define ATR_CORE_AKT_H_

#include <cstdint>
#include <vector>

#include "core/atr_problem.h"
#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

struct AktResult {
  uint32_t k = 0;
  std::vector<VertexId> anchors;      // chosen vertices, in order
  std::vector<uint64_t> gain_after;   // cumulative gain after each round
  uint64_t total_gain = 0;            // followers of the final anchor set
  // True when a GreedyControl stopped the run before the budget was
  // exhausted; the anchors selected so far are a valid greedy prefix.
  bool stopped_early = false;
};

// Runs the AKT greedy for one k. `decomp` must be the plain decomposition
// of g. Returns zero gain when the (k-1)-hull is empty. `control` may carry
// a per-round progress callback, a cancellation flag, and a wall-clock
// limit (GreedyProgress::anchor is kInvalidEdge — AKT anchors vertices).
AktResult RunAkt(const Graph& g, const TrussDecomposition& decomp, uint32_t k,
                 uint32_t budget, const GreedyControl* control = nullptr);

// Follower edges (trussness k-1, in the anchored k-truss) for a given
// anchor-vertex set; exposed for tests and the Fig. 7 case study.
std::vector<EdgeId> AktFollowers(const Graph& g,
                                 const TrussDecomposition& decomp, uint32_t k,
                                 const std::vector<VertexId>& anchors);

}  // namespace atr

#endif  // ATR_CORE_AKT_H_
