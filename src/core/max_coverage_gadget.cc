#include "core/max_coverage_gadget.h"

#include "util/macros.h"

namespace atr {
namespace {

// Adds a clique over `size` vertices, the first `pinned` of which are the
// given existing vertices; the rest are fresh. Returns the fresh-vertex
// base index.
void AddClique(GraphBuilder& builder, std::vector<VertexId>& members,
               uint32_t size, uint32_t& next_vertex) {
  while (members.size() < size) members.push_back(next_vertex++);
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      builder.AddEdge(members[i], members[j]);
    }
  }
}

}  // namespace

MaxCoverageGadget BuildMaxCoverageGadget(
    const std::vector<std::vector<uint32_t>>& sets, uint32_t num_elements) {
  ATR_CHECK(num_elements >= 1);
  const uint32_t t = num_elements;
  const uint32_t clique_size = t + 3;

  GraphBuilder builder;
  uint32_t next_vertex = 0;
  const VertexId hub = next_vertex++;

  // Set edges a_i = (hub, A_i) and element edges f_j = (hub, F_j).
  std::vector<VertexId> set_tip(sets.size());
  for (size_t i = 0; i < sets.size(); ++i) set_tip[i] = next_vertex++;
  std::vector<VertexId> element_tip(num_elements);
  for (uint32_t j = 0; j < num_elements; ++j) element_tip[j] = next_vertex++;

  for (VertexId tip : set_tip) builder.AddEdge(hub, tip);
  for (VertexId tip : element_tip) builder.AddEdge(hub, tip);

  // Coverage triangles: for e_j in T_i, a clique through {A_i, F_j} closes
  // the triangle {a_i, f_j, (A_i, F_j)}.
  for (size_t i = 0; i < sets.size(); ++i) {
    for (uint32_t j : sets[i]) {
      ATR_CHECK(j < num_elements);
      std::vector<VertexId> members = {set_tip[i], element_tip[j]};
      AddClique(builder, members, clique_size, next_vertex);
    }
  }

  // Support triangles pinning t(f_j) = t+2: t triangles per element edge,
  // each through a fresh bridge vertex z with one clique containing
  // {F_j, z} and another containing {z, hub}.
  for (uint32_t j = 0; j < num_elements; ++j) {
    for (uint32_t r = 0; r < t; ++r) {
      const VertexId z = next_vertex++;
      std::vector<VertexId> clique1 = {element_tip[j], z};
      AddClique(builder, clique1, clique_size, next_vertex);
      std::vector<VertexId> clique2 = {z, hub};
      AddClique(builder, clique2, clique_size, next_vertex);
    }
  }

  MaxCoverageGadget gadget;
  gadget.graph = builder.Build();
  gadget.num_elements = num_elements;
  for (size_t i = 0; i < sets.size(); ++i) {
    const EdgeId a = gadget.graph.FindEdge(hub, set_tip[i]);
    ATR_CHECK(a != kInvalidEdge);
    gadget.set_edges.push_back(a);
  }
  for (uint32_t j = 0; j < num_elements; ++j) {
    const EdgeId f = gadget.graph.FindEdge(hub, element_tip[j]);
    ATR_CHECK(f != kInvalidEdge);
    gadget.element_edges.push_back(f);
  }
  return gadget;
}

}  // namespace atr
