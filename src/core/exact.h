// Exact ATR solver: exhaustively evaluates every b-subset of edges and
// returns one with maximum trussness gain (Exp-2 of the paper). Cost is
// C(m, b) anchored decompositions — only viable for the 150-250 edge
// extracts the paper uses.

#ifndef ATR_CORE_EXACT_H_
#define ATR_CORE_EXACT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

struct ExactResult {
  std::vector<EdgeId> anchors;  // ascending edge ids
  uint64_t gain = 0;
  uint64_t subsets_evaluated = 0;
};

// Evaluates all C(m, budget) anchor sets (parallelized over the first
// element; deterministic tie-break: max gain, then lexicographically
// smallest subset). Budget must satisfy 1 <= budget <= m.
// `base_decomposition`, when non-null, must be the anchor-free
// decomposition of `g` and replaces the internal computation (the api
// layer passes its cached copy).
ExactResult RunExact(const Graph& g, uint32_t budget,
                     const TrussDecomposition* base_decomposition = nullptr);

}  // namespace atr

#endif  // ATR_CORE_EXACT_H_
