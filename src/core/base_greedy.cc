#include "core/base_greedy.h"

#include <mutex>

#include "core/greedy_internal.h"
#include "truss/decomposition.h"
#include "truss/gain.h"
#include "truss/incremental.h"
#include "util/macros.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace atr {
namespace {

struct Best {
  uint64_t gain = 0;
  EdgeId edge = kInvalidEdge;
};

Best MergeBests(const std::vector<Best>& bests) {
  Best best;
  for (const Best& b : bests) {
    if (b.edge == kInvalidEdge) continue;
    if (best.edge == kInvalidEdge ||
        BetterCandidate(b.gain, b.edge, best.gain, best.edge)) {
      best = b;
    }
  }
  return best;
}

// Same greedy on an IncrementalTruss engine: candidate gains come from
// speculative ApplyAnchor + rollback on per-worker clones, the committed
// anchor updates the shared decomposition locally. Anchor sequences and
// gains are identical to the brute-force path below.
AnchorResult RunBaseGreedyIncremental(
    const Graph& g, uint32_t budget, const GreedyControl* control,
    const TrussDecomposition* seed_decomposition,
    const std::vector<bool>* initial_anchors) {
  const uint32_t m = g.NumEdges();
  AnchorResult result;
  WallTimer timer;
  IncrementalTruss engine =
      MakeGreedyEngine(g, seed_decomposition, initial_anchors);

  while (result.anchors.size() < budget) {
    if (control != nullptr && control->ShouldStop(timer.ElapsedSeconds())) {
      result.stopped_early = true;
      break;
    }
    std::vector<Best> bests;
    std::mutex mu;
    ParallelFor(m, [&](int64_t begin, int64_t end) {
      IncrementalTruss local(engine);
      Best chunk;
      for (int64_t i = begin; i < end; ++i) {
        const EdgeId e = static_cast<EdgeId>(i);
        if (!local.IsAlive(e) || local.IsAnchored(e)) continue;
        const IncrementalTruss::Checkpoint cp = local.MarkRollbackPoint();
        const uint64_t gain = local.ApplyAnchor(e);
        local.RollbackTo(cp);
        if (chunk.edge == kInvalidEdge ||
            BetterCandidate(gain, e, chunk.gain, chunk.edge)) {
          chunk = Best{gain, e};
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      bests.push_back(chunk);
    });
    const Best best = MergeBests(bests);
    if (best.edge == kInvalidEdge) break;  // no eligible candidate left

    AnchorRound round;
    round.anchor = best.edge;
    std::vector<EdgeId> followers;
    const uint32_t gain = engine.ApplyAnchor(best.edge, &followers);
    ATR_CHECK_MSG(gain == best.gain,
                  "committed gain diverged from speculative evaluation");
    round.gain = gain;
    for (const EdgeId f : followers) {
      // Each follower rose by exactly 1; recover its pre-anchor trussness.
      round.follower_trussness.push_back(
          engine.decomposition().trussness[f] - 1);
    }
    engine.ClearUndoLog();
    round.cumulative_seconds = timer.ElapsedSeconds();
    result.total_gain += gain;
    result.anchors.push_back(best.edge);
    result.rounds.push_back(std::move(round));
    if (!NotifyRound(control, budget, result)) break;
  }
  return result;
}

}  // namespace

AnchorResult RunBaseGreedy(const Graph& g, uint32_t budget,
                           const GreedyControl* control,
                           const TrussDecomposition* seed_decomposition,
                           const std::vector<bool>* initial_anchors) {
  const uint32_t m = g.NumEdges();
  AnchorResult result;
  if (m == 0) return result;
  budget = std::min<uint32_t>(budget, m);
  if (control != nullptr && control->use_incremental) {
    return RunBaseGreedyIncremental(g, budget, control, seed_decomposition,
                                    initial_anchors);
  }

  WallTimer timer;
  GreedySeedState state =
      MakeGreedySeedState(g, seed_decomposition, initial_anchors);
  std::vector<bool>& anchored = state.anchored;
  TrussDecomposition& current = state.current;

  while (result.anchors.size() < budget) {
    if (control != nullptr && control->ShouldStop(timer.ElapsedSeconds())) {
      result.stopped_early = true;
      break;
    }
    // Chunk-local winners merged deterministically by (gain, edge id).
    std::vector<Best> bests;
    std::mutex mu;
    ParallelFor(m, [&](int64_t begin, int64_t end) {
      Best local;
      for (int64_t i = begin; i < end; ++i) {
        const EdgeId e = static_cast<EdgeId>(i);
        if (!EligibleCandidate(current, anchored, e)) continue;
        const uint64_t gain = TrussnessGain(g, current, anchored, {e});
        if (local.edge == kInvalidEdge ||
            BetterCandidate(gain, e, local.gain, local.edge)) {
          local = Best{gain, e};
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      bests.push_back(local);
    });
    const Best best = MergeBests(bests);
    if (best.edge == kInvalidEdge) break;  // no eligible candidate left

    // Record the followers' trussness before applying the anchor.
    AnchorRound round;
    round.anchor = best.edge;
    round.gain = static_cast<uint32_t>(best.gain);
    for (EdgeId f : BruteForceFollowers(g, current, anchored, best.edge)) {
      round.follower_trussness.push_back(current.trussness[f]);
    }

    anchored[best.edge] = true;
    current = RecomputeGreedyState(g, anchored, state.alive);
    round.cumulative_seconds = timer.ElapsedSeconds();
    result.total_gain += best.gain;
    result.anchors.push_back(best.edge);
    result.rounds.push_back(std::move(round));
    if (!NotifyRound(control, budget, result)) break;
  }
  return result;
}

}  // namespace atr
