#include "core/base_greedy.h"

#include <mutex>

#include "truss/decomposition.h"
#include "truss/gain.h"
#include "util/macros.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace atr {

AnchorResult RunBaseGreedy(const Graph& g, uint32_t budget,
                           const GreedyControl* control,
                           const TrussDecomposition* seed_decomposition) {
  const uint32_t m = g.NumEdges();
  AnchorResult result;
  if (m == 0) return result;
  budget = std::min<uint32_t>(budget, m);

  WallTimer timer;
  std::vector<bool> anchored(m, false);
  TrussDecomposition current = seed_decomposition != nullptr
                                   ? *seed_decomposition
                                   : ComputeTrussDecomposition(g, anchored);

  while (result.anchors.size() < budget) {
    if (control != nullptr && control->ShouldStop(timer.ElapsedSeconds())) {
      result.stopped_early = true;
      break;
    }
    // Chunk-local winners merged deterministically by (gain, edge id).
    struct Best {
      uint64_t gain = 0;
      EdgeId edge = kInvalidEdge;
    };
    std::vector<Best> bests;
    std::mutex mu;
    ParallelFor(m, [&](int64_t begin, int64_t end) {
      Best local;
      for (int64_t i = begin; i < end; ++i) {
        const EdgeId e = static_cast<EdgeId>(i);
        if (anchored[e]) continue;
        const uint64_t gain = TrussnessGain(g, current, anchored, {e});
        if (local.edge == kInvalidEdge ||
            BetterCandidate(gain, e, local.gain, local.edge)) {
          local = Best{gain, e};
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      bests.push_back(local);
    });
    Best best;
    for (const Best& b : bests) {
      if (b.edge == kInvalidEdge) continue;
      if (best.edge == kInvalidEdge ||
          BetterCandidate(b.gain, b.edge, best.gain, best.edge)) {
        best = b;
      }
    }
    ATR_CHECK(best.edge != kInvalidEdge);

    // Record the followers' trussness before applying the anchor.
    AnchorRound round;
    round.anchor = best.edge;
    round.gain = static_cast<uint32_t>(best.gain);
    for (EdgeId f : BruteForceFollowers(g, current, anchored, best.edge)) {
      round.follower_trussness.push_back(current.trussness[f]);
    }

    anchored[best.edge] = true;
    current = ComputeTrussDecomposition(g, anchored);
    round.cumulative_seconds = timer.ElapsedSeconds();
    result.total_gain += best.gain;
    result.anchors.push_back(best.edge);
    result.rounds.push_back(std::move(round));
    if (!NotifyRound(control, budget, result)) break;
  }
  return result;
}

}  // namespace atr
