// Shared types for the Anchor Trussness Reinforcement (ATR) problem.
//
// Problem statement (paper §II): given graph G and budget b, pick an edge
// set A, |A| = b, maximizing TG(A, G) = sum over e in E\A of
// t_A(e) - t(e), where anchored edges have infinite support.
//
// All greedy solvers (BASE, BASE+, GAS) implement the same contract and
// break ties identically (largest marginal gain, then smallest edge id), so
// they must produce identical anchor sequences — a property the test suite
// enforces.

#ifndef ATR_CORE_ATR_PROBLEM_H_
#define ATR_CORE_ATR_PROBLEM_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace atr {

// Per-greedy-round record. `cumulative_seconds` lets one budget-b run report
// every intermediate budget (the paper's Fig. 6 / Fig. 8 sweeps).
struct AnchorRound {
  EdgeId anchor = kInvalidEdge;
  // Marginal trussness gain of this round's anchor (= its follower count).
  uint32_t gain = 0;
  double cumulative_seconds = 0.0;
  // Reuse classification of candidate edges this round (GAS only; zero
  // elsewhere). FR: every cached follower result reused; PR: some reused;
  // NR: fully recomputed. Round 1 is always all-NR.
  uint32_t fully_reusable = 0;
  uint32_t partially_reusable = 0;
  uint32_t non_reusable = 0;
  // Trussness values (pre-anchoring, this round) of the chosen anchor's
  // followers, for the paper's Fig. 11(b) distribution.
  std::vector<uint32_t> follower_trussness;
};

struct AnchorResult {
  std::vector<EdgeId> anchors;     // in selection order
  std::vector<AnchorRound> rounds;  // one per anchor
  uint64_t total_gain = 0;          // sum of round gains = TG(A, G)
};

// Deterministic tie-break shared by every solver: prefer larger gain, then
// smaller edge id.
inline bool BetterCandidate(uint64_t gain, EdgeId edge, uint64_t best_gain,
                            EdgeId best_edge) {
  if (gain != best_gain) return gain > best_gain;
  return edge < best_edge;
}

}  // namespace atr

#endif  // ATR_CORE_ATR_PROBLEM_H_
