// Shared types for the Anchor Trussness Reinforcement (ATR) problem.
//
// Problem statement (paper §II): given graph G and budget b, pick an edge
// set A, |A| = b, maximizing TG(A, G) = sum over e in E\A of
// t_A(e) - t(e), where anchored edges have infinite support.
//
// All greedy solvers (BASE, BASE+, GAS) implement the same contract and
// break ties identically (largest marginal gain, then smallest edge id), so
// they must produce identical anchor sequences — a property the test suite
// enforces.

#ifndef ATR_CORE_ATR_PROBLEM_H_
#define ATR_CORE_ATR_PROBLEM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"

namespace atr {

// Per-greedy-round record. `cumulative_seconds` lets one budget-b run report
// every intermediate budget (the paper's Fig. 6 / Fig. 8 sweeps).
struct AnchorRound {
  EdgeId anchor = kInvalidEdge;
  // Marginal trussness gain of this round's anchor (= its follower count).
  uint32_t gain = 0;
  double cumulative_seconds = 0.0;
  // Reuse classification of candidate edges this round (GAS only; zero
  // elsewhere). FR: every cached follower result reused; PR: some reused;
  // NR: fully recomputed. Round 1 is always all-NR.
  uint32_t fully_reusable = 0;
  uint32_t partially_reusable = 0;
  uint32_t non_reusable = 0;
  // Trussness values (pre-anchoring, this round) of the chosen anchor's
  // followers, for the paper's Fig. 11(b) distribution.
  std::vector<uint32_t> follower_trussness;
};

struct AnchorResult {
  std::vector<EdgeId> anchors;     // in selection order
  std::vector<AnchorRound> rounds;  // one per anchor
  uint64_t total_gain = 0;          // sum of round gains = TG(A, G)
  // True when the run ended before exhausting the budget because a
  // GreedyControl asked it to (cancellation, wall-clock limit, or an
  // on_round callback returning false). The rounds selected so far are
  // still a valid greedy prefix.
  bool stopped_early = false;
};

// Progress event handed to GreedyControl::on_round after each completed
// greedy round.
struct GreedyProgress {
  uint32_t round = 0;   // 1-based index of the round just completed
  uint32_t budget = 0;  // effective budget of the run
  EdgeId anchor = kInvalidEdge;
  uint32_t gain = 0;          // marginal gain of this round's anchor
  uint64_t total_gain = 0;    // cumulative gain so far
  double elapsed_seconds = 0.0;
};

// Optional cooperative control shared by the greedy solvers (BASE, BASE+,
// GAS). All members are optional; a default-constructed control never
// interrupts a run. Cancellation is checked between rounds — a round in
// flight always completes, so interrupted results are valid greedy prefixes.
struct GreedyControl {
  // Called after every round; returning false stops the run.
  std::function<bool(const GreedyProgress&)> on_round;
  // When non-null, the run stops before the next round once it reads true.
  const std::atomic<bool>* cancel = nullptr;
  // When positive, the run stops before the next round once the elapsed
  // wall-clock time exceeds this many seconds.
  double wall_clock_limit_seconds = 0.0;
  // Maintain the decomposition across rounds with truss/incremental.h
  // instead of recomputing it from scratch after every committed anchor
  // (BASE additionally evaluates candidates by speculative apply/rollback).
  // Anchor sequences and gains are identical on both paths; this only
  // changes how the shared state is kept up to date.
  bool use_incremental = false;

  bool ShouldStop(double elapsed_seconds) const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    return wall_clock_limit_seconds > 0.0 &&
           elapsed_seconds >= wall_clock_limit_seconds;
  }
};

// Delivers the just-completed round (result.rounds.back()) to
// `control->on_round` when one is set, recording an early stop on `result`
// if the callback declined to continue. Returns true when the run may
// proceed to the next round.
inline bool NotifyRound(const GreedyControl* control, uint32_t budget,
                        AnchorResult& result) {
  if (control == nullptr || !control->on_round) return true;
  const AnchorRound& round = result.rounds.back();
  GreedyProgress progress;
  progress.round = static_cast<uint32_t>(result.rounds.size());
  progress.budget = budget;
  progress.anchor = round.anchor;
  progress.gain = round.gain;
  progress.total_gain = result.total_gain;
  progress.elapsed_seconds = round.cumulative_seconds;
  if (control->on_round(progress)) return true;
  result.stopped_early = true;
  return false;
}

// Deterministic tie-break shared by every solver: prefer larger gain, then
// smaller edge id.
inline bool BetterCandidate(uint64_t gain, EdgeId edge, uint64_t best_gain,
                            EdgeId best_edge) {
  if (gain != best_gain) return gain > best_gain;
  return edge < best_edge;
}

}  // namespace atr

#endif  // ATR_CORE_ATR_PROBLEM_H_
