#include "core/exact.h"

#include <mutex>

#include "truss/decomposition.h"
#include "truss/gain.h"
#include "util/macros.h"
#include "util/parallel_for.h"

namespace atr {
namespace {

struct BestSet {
  uint64_t gain = 0;
  std::vector<EdgeId> anchors;
  uint64_t evaluated = 0;

  void Consider(uint64_t candidate_gain, const std::vector<EdgeId>& set) {
    ++evaluated;
    if (anchors.empty() || candidate_gain > gain ||
        (candidate_gain == gain && set < anchors)) {
      gain = candidate_gain;
      anchors = set;
    }
  }

  void Merge(const BestSet& other) {
    evaluated += other.evaluated;
    if (other.anchors.empty()) return;
    if (anchors.empty() || other.gain > gain ||
        (other.gain == gain && other.anchors < anchors)) {
      gain = other.gain;
      anchors = other.anchors;
    }
  }
};

// Enumerates all extensions of `prefix` with `remaining` more edges drawn
// from ids > prefix.back().
void Enumerate(const Graph& g, const TrussDecomposition& base,
               std::vector<EdgeId>& prefix, uint32_t remaining,
               BestSet& best) {
  if (remaining == 0) {
    best.Consider(TrussnessGain(g, base, {}, prefix), prefix);
    return;
  }
  const EdgeId start = prefix.empty() ? 0 : prefix.back() + 1;
  // Leave room for the rest of the subset.
  for (EdgeId e = start; e + remaining <= g.NumEdges(); ++e) {
    prefix.push_back(e);
    Enumerate(g, base, prefix, remaining - 1, best);
    prefix.pop_back();
  }
}

}  // namespace

ExactResult RunExact(const Graph& g, uint32_t budget,
                     const TrussDecomposition* base_decomposition) {
  const uint32_t m = g.NumEdges();
  ATR_CHECK(budget >= 1 && budget <= m);
  const TrussDecomposition base = base_decomposition != nullptr
                                      ? *base_decomposition
                                      : ComputeTrussDecomposition(g);

  std::vector<BestSet> partials;
  std::mutex mu;
  // Parallelize over the first subset element; each worker enumerates the
  // completions of its first-element range.
  ParallelFor(m, [&](int64_t begin, int64_t end) {
    BestSet local;
    std::vector<EdgeId> prefix;
    for (int64_t i = begin; i < end; ++i) {
      const EdgeId first = static_cast<EdgeId>(i);
      if (first + budget > m) continue;  // not enough ids left to complete
      prefix.assign(1, first);
      Enumerate(g, base, prefix, budget - 1, local);
    }
    std::lock_guard<std::mutex> lock(mu);
    partials.push_back(std::move(local));
  });

  BestSet best;
  for (const BestSet& p : partials) best.Merge(p);
  ATR_CHECK(!best.anchors.empty());
  return ExactResult{best.anchors, best.gain, best.evaluated};
}

}  // namespace atr
