// Truss decomposition with peeling layers and anchored-edge support
// (Algorithm 1 of the paper, extended as §II requires for anchored graphs).
//
// For every edge the decomposition produces:
//  * trussness t(e): the largest k such that a k-truss contains e, and
//  * layer l(e): the batch-peeling round within e's k-hull in which e was
//    removed (Definition 5 context; L^i_k in the paper). Layers drive the
//    deletion order `≺` that the upward-route machinery relies on.
//
// Anchored edges have infinite support by definition, are never peeled, and
// report the kAnchoredTrussness sentinel; because peeling rounds are
// per-triangle-connected-component by construction, layers computed on a
// component in isolation equal the layers computed on the whole graph, which
// is what makes the GAS local-rebuild (Algorithm 5) exact.

#ifndef ATR_TRUSS_DECOMPOSITION_H_
#define ATR_TRUSS_DECOMPOSITION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "truss/plan.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace atr {

// Sentinel trussness for anchored edges: compares greater than any real
// trussness so anchors sort last in the deletion order.
inline constexpr uint32_t kAnchoredTrussness = 0xffffffffu;

// Sentinel for edges outside the requested edge subset (equivalently:
// removed from the maintained subgraph). The value 0 can never alias a
// real trussness: every edge that participates in a decomposition has
// trussness >= 2 — even a triangle-free edge sits in the trivial 2-truss.
// Subset consumers must therefore test for this sentinel explicitly
// (TrussDecomposition::IsComputed) and must NOT treat 0 as "trussness-2
// edge" or fold it into hull/gain arithmetic: a sentinel read where a real
// trussness was expected means the caller queried an edge it previously
// removed. Precedes/StrictlyPrecedes DCHECK against such queries, and
// HullSizes / TrussnessGain / BruteForceFollowers reject or skip them.
inline constexpr uint32_t kTrussnessNotComputed = 0;

// Decomposition result; indexed by EdgeId.
struct TrussDecomposition {
  std::vector<uint32_t> trussness;
  std::vector<uint32_t> layer;
  // Maximum trussness over non-anchored edges (>= 2 when any edge exists).
  uint32_t max_trussness = 2;

  bool IsAnchored(EdgeId e) const {
    return trussness[e] == kAnchoredTrussness;
  }

  // Whether `e` participated in this decomposition: false means the edge
  // was outside the requested subset (or removed) and its trussness reads
  // the kTrussnessNotComputed sentinel, not a real value.
  bool IsComputed(EdgeId e) const {
    return trussness[e] != kTrussnessNotComputed;
  }

  // The paper's total order contribution: e1 "is deleted no later than" e2.
  // e1 ≺ e2  iff  t(e1) < t(e2), or t(e1) == t(e2) and l(e1) <= l(e2).
  // Anchors compare as +inf trussness (never deleted). Both edges must be
  // in the decomposed subset — comparing a removed edge's sentinel would
  // silently sort it before genuine trussness-2 edges.
  bool Precedes(EdgeId e1, EdgeId e2) const {
    ATR_DCHECK(IsComputed(e1) && IsComputed(e2));
    const uint32_t t1 = trussness[e1];
    const uint32_t t2 = trussness[e2];
    if (t1 != t2) return t1 < t2;
    return layer[e1] <= layer[e2];
  }

  // Strict variant used for seed condition (i) of Lemma 2:
  // t(e1) < t(e2) or (equal trussness and l(e1) < l(e2)).
  bool StrictlyPrecedes(EdgeId e1, EdgeId e2) const {
    ATR_DCHECK(IsComputed(e1) && IsComputed(e2));
    const uint32_t t1 = trussness[e1];
    const uint32_t t2 = trussness[e2];
    if (t1 != t2) return t1 < t2;
    return layer[e1] < layer[e2];
  }
};

// Shared-ownership handle to an immutable decomposition snapshot. The
// service layer (api/service.h) computes one decomposition per graph and
// hands every concurrent job this handle: jobs read the same bytes, the
// snapshot outlives graph eviction while any job still holds it, and
// mutable checkouts copy-on-write from it instead of locking it.
using SharedTrussDecomposition = std::shared_ptr<const TrussDecomposition>;

// ComputeTrussDecomposition wrapped in a shared snapshot handle. The
// plan-less overload uses DecompositionPlan::Ambient().
SharedTrussDecomposition ComputeSharedTrussDecomposition(
    const Graph& g, const std::vector<bool>& anchored = {});
SharedTrussDecomposition ComputeSharedTrussDecompositionWithPlan(
    const Graph& g, const std::vector<bool>& anchored,
    const DecompositionPlan& plan);

// Full-graph decomposition. `anchored` is either empty (no anchors) or a
// size-m mask; anchored edges are retained throughout peeling.
//
// Every entry point dispatches through a DecompositionPlan (truss/plan.h):
// kSerial routes to the reference peel below, kBsp / kBspCoreThenTruss to
// the flat SoA engine (truss/flat_peel.h). All engines are byte-identical
// in trussness, layer, and max_trussness at any thread count, so callers
// never observe the choice. The plan-less overloads use
// DecompositionPlan::Ambient() — the innermost ScopedDecompositionPlan on
// this thread (installed by the solver adapters from SolverOptions::plan),
// else the ATR_PLAN process default.
TrussDecomposition ComputeTrussDecomposition(
    const Graph& g, const std::vector<bool>& anchored = {});
TrussDecomposition ComputeTrussDecompositionWithPlan(
    const Graph& g, const std::vector<bool>& anchored,
    const DecompositionPlan& plan);

// Restricted decomposition over the subgraph formed by `edge_subset`
// (anchored edges that the caller wants present must be listed too).
// Edges outside the subset get trussness kTrussnessNotComputed and do not
// participate in triangles. Used by the GAS local subtree rebuild. Same
// plan dispatch as ComputeTrussDecomposition.
TrussDecomposition ComputeTrussDecompositionOnSubset(
    const Graph& g, const std::vector<bool>& anchored,
    const std::vector<EdgeId>& edge_subset);
TrussDecomposition ComputeTrussDecompositionOnSubsetWithPlan(
    const Graph& g, const std::vector<bool>& anchored,
    const std::vector<EdgeId>& edge_subset, const DecompositionPlan& plan);

// The serial Algorithm 1 peel, always single-threaded. This is the
// reference engine the parallel peel is differentially tested against;
// production callers should use the dispatching entry points above.
TrussDecomposition ComputeTrussDecompositionSerial(
    const Graph& g, const std::vector<bool>& anchored = {});
TrussDecomposition ComputeTrussDecompositionOnSubsetSerial(
    const Graph& g, const std::vector<bool>& anchored,
    const std::vector<EdgeId>& edge_subset);

// Sizes of each k-hull H_k(G) = {e : t(e) == k}, indexed by k (size
// max_trussness + 1). Anchors are excluded.
std::vector<uint32_t> HullSizes(const TrussDecomposition& decomp);

// The edge subset `decomp` was computed over: every edge whose trussness is
// not kTrussnessNotComputed (anchored edges carry the anchored sentinel and
// are included). Returns an EMPTY vector when all edges participate, so
// callers can branch between ComputeTrussDecomposition and the subset
// variant without materializing the trivial subset.
std::vector<EdgeId> AliveSubsetOf(const TrussDecomposition& decomp);

// --- Binary serialization (src/persist/ snapshot files) -------------------
// Appends `decomp` to `writer`: max_trussness, then the trussness and layer
// arrays in edge-id order. The byte image is exact — a restored snapshot
// serves the identical decomposition without recomputing anything.
void SerializeTrussDecomposition(const TrussDecomposition& decomp,
                                 ByteWriter& writer);

// Mirror of SerializeTrussDecomposition. `num_edges` is the edge count of
// the graph the decomposition belongs to (from the already-decoded graph
// section); array lengths must match it exactly. Fails with
// kInvalidArgument on truncation or mismatched lengths — untrusted-bytes
// boundary, never aborts.
StatusOr<TrussDecomposition> DeserializeTrussDecomposition(
    ByteReader& reader, uint32_t num_edges);

}  // namespace atr

#endif  // ATR_TRUSS_DECOMPOSITION_H_
