// k-core decomposition: per-vertex core numbers via the linear bin-sort
// peel (Batagelj–Zaversnik). Two consumers today, shaped for more:
//
//   * The kBspCoreThenTruss prefilter (truss/flat_peel.cc) discards edges
//     outside the 2-core of the alive subgraph before the triangle phase —
//     a triangle lies entirely inside the 2-core, so such edges close no
//     alive triangle and their trussness is forced.
//   * ROADMAP's k-core objective family (anchored k-core / core
//     reinforcement) needs exactly these core numbers as its baseline
//     decomposition; keep this header free of truss-specific types so that
//     work can reuse it unchanged.

#ifndef ATR_TRUSS_CORE_DECOMPOSE_H_
#define ATR_TRUSS_CORE_DECOMPOSE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace atr {

struct CoreDecomposition {
  // core[v] = largest k such that v belongs to a subgraph with minimum
  // degree k. Isolated vertices get 0.
  std::vector<uint32_t> core;
  uint32_t max_core = 0;
};

// Core numbers of `g`, restricted to the subgraph of edges with
// alive_edges[e] != 0. An empty mask means every edge is alive. O(n + m).
CoreDecomposition ComputeCoreDecomposition(
    const Graph& g, const std::vector<uint8_t>& alive_edges = {});

}  // namespace atr

#endif  // ATR_TRUSS_CORE_DECOMPOSE_H_
