#include "truss/plan.h"

#include "util/env.h"

namespace atr {
namespace {

thread_local const DecompositionPlan* t_plan_override = nullptr;

DecompositionPlan ParseDefaultPlan() {
  const std::string name = GetEnvString("ATR_PLAN", "bsp");
  StatusOr<DecompositionPlan> parsed = DecompositionPlanFromName(name);
  // The env knob is tolerant (benches run with ad-hoc environments); the
  // strict path is DecompositionPlanFromName for CLI/wire input.
  return parsed.ok() ? parsed.value() : DecompositionPlan::Bsp();
}

}  // namespace

DecompositionPlan DecompositionPlan::Default() {
  static const DecompositionPlan plan = ParseDefaultPlan();
  return plan;
}

DecompositionPlan DecompositionPlan::Ambient() {
  return t_plan_override != nullptr ? *t_plan_override : Default();
}

std::string DecompositionPlan::Name() const {
  switch (algorithm) {
    case PeelAlgorithm::kSerial:
      return "serial";
    case PeelAlgorithm::kBsp:
      return "bsp";
    case PeelAlgorithm::kBspCoreThenTruss:
      return "bsp-core-truss";
  }
  return "unknown";
}

std::string DecompositionPlan::CacheKey() const {
  return Name() + ":c" + std::to_string(chunk_size) + ":f" +
         std::to_string(fanout_cutoff) + (prefilter ? ":pre" : "");
}

StatusOr<DecompositionPlan> DecompositionPlanFromName(
    const std::string& name) {
  if (name == "serial") return DecompositionPlan::Serial();
  if (name == "bsp") return DecompositionPlan::Bsp();
  if (name == "bsp-core-truss") return DecompositionPlan::BspCoreThenTruss();
  return Status::InvalidArgument(
      "unknown decomposition plan \"" + name +
      "\" (expected serial, bsp, or bsp-core-truss)");
}

ScopedDecompositionPlan::ScopedDecompositionPlan(const DecompositionPlan& plan)
    : plan_(plan), previous_(t_plan_override) {
  t_plan_override = &plan_;
}

ScopedDecompositionPlan::~ScopedDecompositionPlan() {
  t_plan_override = previous_;
}

}  // namespace atr
