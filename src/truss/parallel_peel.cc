#include "truss/parallel_peel.h"

#include <algorithm>

#include "graph/triangles.h"
#include "util/macros.h"
#include "util/parallel_for.h"

namespace atr {
namespace {

size_t g_min_parallel_frontier = 256;

// Round-synchronous peel. `alive` marks edges participating in the
// decomposition (already excludes out-of-subset edges); anchored edges are
// alive forever. `full_graph` is true when every edge is alive, letting the
// support init skip the mask checks. Mirrors the serial Peel in
// decomposition.cc phase-for-phase and round-for-round — only the
// within-round execution differs.
TrussDecomposition PeelParallel(const Graph& g,
                                const std::vector<bool>& anchored,
                                std::vector<bool> alive, bool full_graph) {
  const uint32_t m = g.NumEdges();
  TrussDecomposition out;
  out.trussness.assign(m, kTrussnessNotComputed);
  out.layer.assign(m, 0);

  const bool has_anchors = !anchored.empty();
  auto is_anchored = [&](EdgeId e) { return has_anchors && anchored[e]; };

  // Stage 1: parallel support initialization, chunked by edge id. Small
  // graphs stay inline — same per-edge computation, no thread spawn.
  const std::vector<bool> no_mask;
  const std::vector<bool>& mask = full_graph ? no_mask : alive;
  std::vector<uint32_t> support;
  if (m >= g_min_parallel_frontier) {
    support = ComputeSupportParallel(g, mask);
  } else {
    support.assign(m, 0);
    for (EdgeId e = 0; e < m; ++e) {
      if (alive[e]) support[e] = EdgeSupportWithin(g, e, mask);
    }
  }

  // Bucket queue keyed by support; entries are validated lazily on pop,
  // exactly like the serial engine (stale entries are skipped — a support
  // value only decreases, and each decrease re-files the edge).
  uint32_t max_support = 0;
  for (EdgeId e = 0; e < m; ++e) {
    if (alive[e]) max_support = std::max(max_support, support[e]);
  }
  std::vector<std::vector<EdgeId>> buckets(max_support + 1);
  uint32_t remaining = 0;
  for (EdgeId e = 0; e < m; ++e) {
    if (!alive[e]) continue;
    if (is_anchored(e)) {
      out.trussness[e] = kAnchoredTrussness;  // never peeled
      continue;
    }
    buckets[support[e]].push_back(e);
    ++remaining;
  }

  // `queued` dedupes frontier membership; `in_frontier` marks the round's
  // batch so the parallel triangle checks see the graph as it stood at
  // round start (batch semantics of Definition 5).
  std::vector<bool> queued(m, false);
  std::vector<bool> in_frontier(m, false);
  std::vector<EdgeId> frontier;
  std::vector<EdgeId> next_frontier;
  std::vector<std::vector<EdgeId>> chunk_decrements;

  uint32_t k = 2;
  uint32_t peak = 2;
  while (remaining > 0) {
    const uint32_t threshold = k - 2;
    frontier.clear();
    const uint32_t scan_limit = std::min<uint32_t>(threshold, max_support);
    for (uint32_t s = 0; s <= scan_limit; ++s) {
      for (EdgeId e : buckets[s]) {
        if (alive[e] && !queued[e] && support[e] <= threshold) {
          queued[e] = true;
          frontier.push_back(e);
        }
      }
      buckets[s].clear();
    }

    uint32_t round = 1;
    while (!frontier.empty()) {
      peak = std::max(peak, k);
      for (EdgeId e : frontier) in_frontier[e] = true;

      // Stage 2a: enumerate the dying edges' triangles in parallel. No
      // shared state is written except out.trussness/out.layer at the
      // (disjoint) frontier indices and the per-chunk decrement buffers.
      const int64_t n = static_cast<int64_t>(frontier.size());
      const bool fan_out = frontier.size() >= g_min_parallel_frontier;
      const int chunks = fan_out ? ParallelChunkCount(n) : 1;
      if (static_cast<int>(chunk_decrements.size()) < chunks) {
        chunk_decrements.resize(chunks);
      }
      for (std::vector<EdgeId>& decs : chunk_decrements) decs.clear();
      auto process = [&](int chunk, int64_t begin, int64_t end) {
        std::vector<EdgeId>& decs = chunk_decrements[chunk];
        for (int64_t i = begin; i < end; ++i) {
          const EdgeId e = frontier[i];
          out.trussness[e] = k;
          out.layer[e] = round;
          ForEachTriangleOfEdgeAdaptive(g, e, [&](VertexId, EdgeId e1,
                                                  EdgeId e2) {
            // `alive` still includes the current frontier: a triangle
            // exists for this round iff it existed at round start.
            if (!alive[e1] || !alive[e2]) return;
            // Triangle ownership: the smallest in-frontier edge applies
            // the decrements, so a triangle losing several edges in one
            // round decrements each survivor exactly once — the same net
            // effect the serial peel's first-death-scans rule produces.
            if ((in_frontier[e1] && e1 < e) ||
                (in_frontier[e2] && e2 < e)) {
              return;
            }
            for (const EdgeId partner : {e1, e2}) {
              if (in_frontier[partner]) continue;  // dies this round anyway
              if (is_anchored(partner)) continue;  // infinite support
              decs.push_back(partner);
            }
          });
        }
      };
      if (fan_out) {
        ParallelForChunked(n, process);
      } else {
        process(0, 0, n);
      }

      // Stage 2b: fold the decrement buffers on one thread in chunk index
      // order. Decrements are commutative counts, so the folded supports —
      // and with them the next frontier's membership — are identical at
      // any chunk count.
      next_frontier.clear();
      for (int c = 0; c < chunks; ++c) {
        for (const EdgeId partner : chunk_decrements[c]) {
          ATR_DCHECK(support[partner] > 0);
          --support[partner];
          const uint32_t s = support[partner];
          if (s <= threshold) {
            if (!queued[partner]) {
              queued[partner] = true;
              next_frontier.push_back(partner);
            }
          } else {
            buckets[s].push_back(partner);
          }
        }
      }

      // Retire the batch only after every triangle check has run.
      for (EdgeId e : frontier) {
        alive[e] = false;
        queued[e] = false;
        in_frontier[e] = false;
      }
      remaining -= static_cast<uint32_t>(frontier.size());
      frontier.swap(next_frontier);
      ++round;
    }
    ++k;
  }
  out.max_trussness = peak;
  return out;
}

}  // namespace

TrussDecomposition ComputeTrussDecompositionParallel(
    const Graph& g, const std::vector<bool>& anchored) {
  ATR_CHECK(anchored.empty() || anchored.size() == g.NumEdges());
  std::vector<bool> alive(g.NumEdges(), true);
  return PeelParallel(g, anchored, std::move(alive), /*full_graph=*/true);
}

TrussDecomposition ComputeTrussDecompositionOnSubsetParallel(
    const Graph& g, const std::vector<bool>& anchored,
    const std::vector<EdgeId>& edge_subset) {
  ATR_CHECK(anchored.empty() || anchored.size() == g.NumEdges());
  std::vector<bool> alive(g.NumEdges(), false);
  size_t alive_count = 0;
  for (EdgeId e : edge_subset) {
    ATR_CHECK(e < g.NumEdges());
    if (!alive[e]) ++alive_count;
    alive[e] = true;
  }
  return PeelParallel(g, anchored, std::move(alive),
                      /*full_graph=*/alive_count == g.NumEdges());
}

namespace internal {

size_t ParallelPeelMinFrontier() { return g_min_parallel_frontier; }

size_t SetParallelPeelMinFrontierForTest(size_t min_frontier) {
  const size_t previous = g_min_parallel_frontier;
  g_min_parallel_frontier = min_frontier;
  return previous;
}

}  // namespace internal

}  // namespace atr
