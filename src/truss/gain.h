// Trussness-gain oracle (Definition 4) computed by full anchored truss
// decomposition. This is the ground truth the fast follower machinery is
// verified against, and the engine behind the BASE algorithm, the Exact
// algorithm, and the randomized baselines.

#ifndef ATR_TRUSS_GAIN_H_
#define ATR_TRUSS_GAIN_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

// TG(A, G): total trussness increase over non-anchored edges when the edges
// in `anchor_set` are anchored, measured against `base` (the decomposition
// of G with `base_anchored` anchors, which must be a subset of the new
// anchor state). `base_anchored` may be empty.
//
// Equivalently: decompose with anchors = base_anchored ∪ anchor_set, sum
// t_new(e) - t_base(e) over edges that are unanchored in the new state.
uint64_t TrussnessGain(const Graph& g, const TrussDecomposition& base,
                       const std::vector<bool>& base_anchored,
                       const std::vector<EdgeId>& anchor_set);

// Followers of a single anchor `x` (edges whose trussness strictly
// increases), computed by brute-force re-decomposition. Ground truth for
// FollowerSearch. `anchored` is the pre-existing anchor mask (may be empty);
// `base` must be the decomposition for that mask.
std::vector<EdgeId> BruteForceFollowers(const Graph& g,
                                        const TrussDecomposition& base,
                                        const std::vector<bool>& anchored,
                                        EdgeId x);

}  // namespace atr

#endif  // ATR_TRUSS_GAIN_H_
