#include "truss/flat_peel.h"

#include <algorithm>

#include "truss/core_decompose.h"
#include "truss/parallel_peel.h"
#include "util/macros.h"
#include "util/parallel_for.h"

namespace atr {
namespace {

// An explicit chunk_size of 1 on a million-edge frontier would allocate a
// million decrement buffers; cap the chunk count at a worker-independent
// constant so the partition stays deterministic but bounded.
constexpr int64_t kMaxExplicitChunks = 4096;

// Triangle incidence over the alive subgraph in CSR form: for edge e,
// pairs[offsets[e] .. offsets[e+1]) holds FlatZip(e1, e2) for every alive
// triangle {e, e1, e2}. Materializing this once is what makes the flat
// peel scan-free: every later round touches exactly the stored pairs of
// its dying edges — O(1) per triangle visit, never a re-walk of the two
// endpoints' adjacency lists. The classic per-edge intersection peel pays
// O(d(u) + d(v)) per dying edge, which on skewed (hub-heavy) graphs is
// orders of magnitude more than the triangle count; here that adjacency
// volume is paid once, in the single forward sweep below.
struct TriangleIncidence {
  std::vector<uint64_t> offsets;  // size m + 1
  std::vector<uint64_t> pairs;    // 3 entries per alive triangle
};

// One forward oriented sweep (each triangle visited exactly once): counts
// per-edge support and materializes the incidence CSR. O(sum of oriented
// out-degrees intersected) time, 3 CSR entries + one 12-byte scratch
// record per alive triangle.
TriangleIncidence BuildTriangleIncidence(const FlatGraphView& view,
                                         const std::vector<uint8_t>& alive,
                                         bool full_graph,
                                         std::vector<uint32_t>& support) {
  std::vector<uint32_t> triangles;  // flat (euv, euw, evw) triples
  for (VertexId u = 0; u < view.num_vertices; ++u) {
    const std::span<const uint64_t> ou = view.OrientedOf(u);
    for (const uint64_t hv : ou) {
      const VertexId v = FlatHi(hv);
      const EdgeId euv = FlatLo(hv);
      if (!full_graph && !alive[euv]) continue;
      const std::span<const uint64_t> ov = view.OrientedOf(v);
      size_t i = 0;
      size_t j = 0;
      while (i < ou.size() && j < ov.size()) {
        const uint32_t wa = FlatHi(ou[i]);
        const uint32_t wb = FlatHi(ov[j]);
        if (wa < wb) {
          ++i;
        } else if (wb < wa) {
          ++j;
        } else {
          const EdgeId euw = FlatLo(ou[i]);
          const EdgeId evw = FlatLo(ov[j]);
          if (full_graph || (alive[euw] && alive[evw])) {
            ++support[euv];
            ++support[euw];
            ++support[evw];
            triangles.push_back(euv);
            triangles.push_back(euw);
            triangles.push_back(evw);
          }
          ++i;
          ++j;
        }
      }
    }
  }

  const uint32_t m = view.num_edges;
  TriangleIncidence tri;
  tri.offsets.assign(m + 1, 0);
  for (EdgeId e = 0; e < m; ++e) tri.offsets[e + 1] = support[e];
  for (EdgeId e = 0; e < m; ++e) tri.offsets[e + 1] += tri.offsets[e];
  tri.pairs.resize(triangles.size());
  std::vector<uint64_t> cursor(tri.offsets.begin(), tri.offsets.end() - 1);
  for (size_t t = 0; t < triangles.size(); t += 3) {
    const EdgeId a = triangles[t];
    const EdgeId b = triangles[t + 1];
    const EdgeId c = triangles[t + 2];
    tri.pairs[cursor[a]++] = FlatZip(b, c);
    tri.pairs[cursor[b]++] = FlatZip(a, c);
    tri.pairs[cursor[c]++] = FlatZip(a, b);
  }
  return tri;
}

// The peel proper. `alive` already excludes out-of-subset edges;
// `full_graph` is true when every edge is alive. Mirrors PeelParallel
// phase-for-phase and round-for-round (same frontier membership, same
// triangle-ownership rule, same chunk-ordered fold), so the byte-identity
// argument of truss/parallel_peel.h carries over; only the bucket
// mechanics and the memory layout differ.
TrussDecomposition PeelFlat(const Graph& g, const FlatGraphView& view,
                            const std::vector<bool>& anchored,
                            std::vector<uint8_t> alive, bool full_graph,
                            const DecompositionPlan& plan) {
  const uint32_t m = view.num_edges;
  TrussDecomposition out;
  out.trussness.assign(m, kTrussnessNotComputed);
  out.layer.assign(m, 0);

  const bool has_anchors = !anchored.empty();
  auto is_anchored = [&](EdgeId e) { return has_anchors && anchored[e]; };

  // Optional k-core prefilter: a triangle lies inside the 2-core of the
  // alive subgraph, so an alive edge with an endpoint of core number < 2
  // closes no alive triangle — its support is 0 and the serial oracle
  // peels it in phase 2 round 1 (support-0 removals trigger no decrements,
  // so later rounds are unaffected). Assign that forced result up front
  // and drop the edge from the triangle phase entirely.
  if (plan.PrefilterEnabled() && m > 0) {
    const CoreDecomposition cores = ComputeCoreDecomposition(
        g, full_graph ? std::vector<uint8_t>() : alive);
    for (EdgeId e = 0; e < m; ++e) {
      if (!alive[e] || is_anchored(e)) continue;
      const uint64_t ends = view.edge_ends[e];
      if (cores.core[FlatHi(ends)] < 2 || cores.core[FlatLo(ends)] < 2) {
        out.trussness[e] = 2;
        out.layer[e] = 1;
        alive[e] = 0;
        full_graph = false;
      }
    }
  }

  const size_t fanout_cutoff = plan.fanout_cutoff > 0
                                   ? plan.fanout_cutoff
                                   : internal::ParallelPeelMinFrontier();

  // One oriented sweep yields both the support array and the triangle
  // incidence CSR the rounds below consume.
  std::vector<uint32_t> support(m, 0);
  const TriangleIncidence tri =
      BuildTriangleIncidence(view, alive, full_graph, support);

  // Bin-sort bucket structure over the peelable (alive, non-anchored)
  // edges: `sorted` ascending by support, pos[e] its slot, bin_start[s]
  // the first slot of support-s edges. Unlike the lazily validated bucket
  // queue of the serial/parallel engines, a decrement moves its edge in
  // O(1) (swap with its bin's front), so no stale entries exist and no
  // phase ever re-scans buckets.
  uint32_t remaining = 0;
  uint32_t max_support = 0;
  for (EdgeId e = 0; e < m; ++e) {
    if (!alive[e]) continue;
    if (is_anchored(e)) {
      out.trussness[e] = kAnchoredTrussness;  // never peeled
      continue;
    }
    ++remaining;
    max_support = std::max(max_support, support[e]);
  }

  std::vector<uint32_t> sorted(remaining);
  std::vector<uint32_t> pos(m, 0);
  std::vector<uint32_t> bin_start(max_support + 2, 0);
  for (EdgeId e = 0; e < m; ++e) {
    if (alive[e] && !is_anchored(e)) ++bin_start[support[e] + 1];
  }
  for (uint32_t s = 1; s < bin_start.size(); ++s) {
    bin_start[s] += bin_start[s - 1];
  }
  {
    std::vector<uint32_t> cursor(bin_start.begin(), bin_start.end() - 1);
    for (EdgeId e = 0; e < m; ++e) {
      if (!alive[e] || is_anchored(e)) continue;
      pos[e] = cursor[support[e]];
      sorted[pos[e]] = e;
      ++cursor[support[e]];
    }
  }

  // Invariant maintained below: slots [0, head) hold consumed edges
  // (current or past frontiers); every edge in [head, remaining) has
  // support above the current phase threshold once the phase frontier has
  // been collected, so bin boundaries at or below the threshold are never
  // consulted again.
  uint32_t head = 0;

  // Moves structure edge e one support bin down by swapping it with the
  // front of its bin. An edge that lands at or below the phase threshold
  // lands exactly at `head` (all lower bins are exhausted) and is consumed
  // by the caller.
  auto decrement_support = [&](EdgeId e) {
    const uint32_t s = support[e];
    const uint32_t slot = pos[e];
    const uint32_t front = bin_start[s];
    const uint32_t other = sorted[front];
    sorted[front] = e;
    sorted[slot] = other;
    pos[e] = front;
    pos[other] = slot;
    ++bin_start[s];
    support[e] = s - 1;
  };

  std::vector<uint8_t> queued(m, 0);
  std::vector<uint8_t> in_frontier(m, 0);
  std::vector<EdgeId> frontier;
  std::vector<EdgeId> next_frontier;
  std::vector<std::vector<EdgeId>> chunk_decrements;

  const uint32_t total = remaining;
  uint32_t k = 2;
  uint32_t peak = 2;
  while (remaining > 0) {
    const uint32_t threshold = k - 2;
    // Phase frontier: the contiguous slice of unconsumed edges in bins
    // <= threshold. bin_start[limit] is current — boundaries strictly
    // above every previous threshold are maintained by the swaps.
    frontier.clear();
    const uint32_t limit = std::min(threshold + 1, max_support + 1);
    const uint32_t bound = std::max(head, bin_start[limit]);
    for (uint32_t slot = head; slot < bound; ++slot) {
      const EdgeId e = sorted[slot];
      queued[e] = 1;
      frontier.push_back(e);
    }
    head = bound;

    uint32_t round = 1;
    while (!frontier.empty()) {
      peak = std::max(peak, k);
      for (const EdgeId e : frontier) in_frontier[e] = 1;

      // Enumerate the dying edges' triangles; same ownership rule and
      // per-chunk decrement buffers as PeelParallel. chunk_size > 0 pins
      // the partition independent of the worker count; 0 splits across
      // the effective workers.
      const int64_t n = static_cast<int64_t>(frontier.size());
      const bool fan_out = frontier.size() >= fanout_cutoff;
      int chunks = 1;
      int64_t chunk_len = n;
      if (fan_out) {
        if (plan.chunk_size > 0) {
          chunk_len = std::max<int64_t>(
              plan.chunk_size, (n + kMaxExplicitChunks - 1) / kMaxExplicitChunks);
          chunks = static_cast<int>((n + chunk_len - 1) / chunk_len);
        } else {
          chunks = std::max(1, ParallelChunkCount(n));
        }
      }
      if (static_cast<int>(chunk_decrements.size()) < chunks) {
        chunk_decrements.resize(chunks);
      }
      for (std::vector<EdgeId>& decs : chunk_decrements) decs.clear();
      auto process = [&](int chunk, int64_t begin, int64_t end) {
        std::vector<EdgeId>& decs = chunk_decrements[chunk];
        for (int64_t i = begin; i < end; ++i) {
          const EdgeId e = frontier[i];
          out.trussness[e] = k;
          out.layer[e] = round;
          const uint64_t* p = tri.pairs.data() + tri.offsets[e];
          const uint64_t* p_end = tri.pairs.data() + tri.offsets[e + 1];
          for (; p != p_end; ++p) {
            const EdgeId e1 = FlatHi(*p);
            const EdgeId e2 = FlatLo(*p);
            // `alive` still includes the current frontier: a triangle
            // exists for this round iff it existed at round start.
            if (!alive[e1] || !alive[e2]) continue;
            // Triangle ownership: the smallest in-frontier edge applies
            // the decrements (see PeelParallel).
            if ((in_frontier[e1] && e1 < e) || (in_frontier[e2] && e2 < e)) {
              continue;
            }
            if (!in_frontier[e1] && !is_anchored(e1)) decs.push_back(e1);
            if (!in_frontier[e2] && !is_anchored(e2)) decs.push_back(e2);
          }
        }
      };
      if (!fan_out) {
        process(0, 0, n);
      } else if (plan.chunk_size > 0) {
        ParallelFor(chunks, [&](int64_t cb, int64_t ce) {
          for (int64_t c = cb; c < ce; ++c) {
            const int64_t begin = c * chunk_len;
            const int64_t end = std::min(n, begin + chunk_len);
            process(static_cast<int>(c), begin, end);
          }
        });
      } else {
        ParallelForChunked(n, process);
      }

      // Fold on one thread in chunk index order. Once an edge is queued
      // its result is forced, so further decrements are skipped — they
      // would only churn the (never again consulted) sub-threshold bins.
      next_frontier.clear();
      for (int c = 0; c < chunks; ++c) {
        for (const EdgeId partner : chunk_decrements[c]) {
          if (queued[partner]) continue;
          ATR_DCHECK(support[partner] > 0);
          decrement_support(partner);
          if (support[partner] <= threshold) {
            ATR_DCHECK(pos[partner] == head);
            queued[partner] = 1;
            next_frontier.push_back(partner);
            ++head;
          }
        }
      }

      // Retire the batch only after every triangle check has run.
      for (const EdgeId e : frontier) {
        alive[e] = 0;
        queued[e] = 0;
        in_frontier[e] = 0;
      }
      remaining -= static_cast<uint32_t>(frontier.size());
      frontier.swap(next_frontier);
      ++round;
    }
    ++k;
  }
  ATR_DCHECK(head == total);
  out.max_trussness = peak;
  return out;
}

}  // namespace

TrussDecomposition ComputeTrussDecompositionFlat(
    const Graph& g, const FlatGraphView& view,
    const std::vector<bool>& anchored, const DecompositionPlan& plan) {
  ATR_CHECK(anchored.empty() || anchored.size() == g.NumEdges());
  ATR_CHECK(view.num_edges == g.NumEdges());
  std::vector<uint8_t> alive(g.NumEdges(), 1);
  return PeelFlat(g, view, anchored, std::move(alive), /*full_graph=*/true,
                  plan);
}

TrussDecomposition ComputeTrussDecompositionFlat(
    const Graph& g, const std::vector<bool>& anchored,
    const DecompositionPlan& plan) {
  return ComputeTrussDecompositionFlat(g, FlatGraphView::Build(g), anchored,
                                       plan);
}

TrussDecomposition ComputeTrussDecompositionOnSubsetFlat(
    const Graph& g, const FlatGraphView& view,
    const std::vector<bool>& anchored,
    const std::vector<EdgeId>& edge_subset, const DecompositionPlan& plan) {
  ATR_CHECK(anchored.empty() || anchored.size() == g.NumEdges());
  ATR_CHECK(view.num_edges == g.NumEdges());
  std::vector<uint8_t> alive(g.NumEdges(), 0);
  size_t alive_count = 0;
  for (const EdgeId e : edge_subset) {
    ATR_CHECK(e < g.NumEdges());
    if (!alive[e]) ++alive_count;
    alive[e] = 1;
  }
  return PeelFlat(g, view, anchored, std::move(alive),
                  /*full_graph=*/alive_count == g.NumEdges(), plan);
}

TrussDecomposition ComputeTrussDecompositionOnSubsetFlat(
    const Graph& g, const std::vector<bool>& anchored,
    const std::vector<EdgeId>& edge_subset, const DecompositionPlan& plan) {
  return ComputeTrussDecompositionOnSubsetFlat(g, FlatGraphView::Build(g),
                                               anchored, edge_subset, plan);
}

}  // namespace atr
