// Incremental truss maintenance (the dynamic-graph counterpart of
// truss/decomposition.h).
//
// A full truss decomposition costs a whole-graph triangle sweep plus a
// global peel; the greedy anchor solvers pay that price after every
// committed anchor, and the edge-deletion baseline pays it once per
// *candidate*. IncrementalTruss instead maintains the decomposition under
// two single-edge mutations:
//
//   * ApplyAnchor(x)  — x becomes anchored (infinite support),
//   * RemoveEdge(x)   — x leaves the maintained subgraph,
//
// and one streaming arrival:
//
//   * InsertEdge(x)   — x (re-)joins the maintained subgraph,
//
// by re-running the peel only over a localized affected region, in the
// spirit of the k-core insertion-maintenance literature (see PAPERS.md,
// "K-Core Maximization through Edge Additions"): trussness and layer of an
// edge are functions of *when* its triangle partners disappear from the
// peel, so a mutation can only reach edges that are triangle-connected to
// it through edges whose own (trussness, layer) changed.
//
// Insertion works over the fixed CSR topology: the inserted edge must have
// a slot in the Graph (it was removed earlier, or the snapshot was
// materialized with the edge pre-declared via Graph::ApplyEdits and seeded
// dead). Arrivals of genuinely new topology go through
// Graph::ApplyEdits + a seeded engine on the new snapshot — the pattern
// AtrService::UpdateGraph packages up.
//
// The update is exact, not approximate: the affected-region re-peel
// replays the batch-peeling process of ComputeTrussDecomposition with
// out-of-region edges acting as fixed "context" whose removal times are
// read off their unchanged (t, l) values, and the region grows until no
// change touches its boundary. The maintained decomposition — trussness,
// layer, and max_trussness — is therefore byte-identical to a from-scratch
// ComputeTrussDecompositionOnSubset over the alive edges at every step,
// which the randomized differential harness in
// tests/incremental_truss_test.cc asserts after every operation.
//
// Every mutation appends to an undo log, so greedy solvers can
// speculatively try a candidate and roll it back:
//
//   IncrementalTruss inc(graph);
//   const IncrementalTruss::Checkpoint cp = inc.MarkRollbackPoint();
//   const uint32_t gain = inc.ApplyAnchor(e);   // trussness gain of e
//   inc.RollbackTo(cp);                          // state byte-identical
//
// Instances are single-threaded; they are copyable so per-worker clones
// can evaluate candidates in parallel (the BASE incremental path).

#ifndef ATR_TRUSS_INCREMENTAL_H_
#define ATR_TRUSS_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "truss/decomposition.h"
#include "util/status.h"

namespace atr {

class FollowerSearch;

class IncrementalTruss {
 public:
  // Position in the undo log, obtained from MarkRollbackPoint(). The
  // boundary serial identifies the entry the checkpoint sits on, so a
  // checkpoint invalidated by a deeper rollback (its prefix was popped and
  // the log regrew) is detected instead of silently restoring a
  // mid-mutation state.
  struct Checkpoint {
    size_t position = 0;
    uint64_t boundary_serial = 0;
  };

  // Decomposes `g` from scratch (all edges alive, no anchors). `g` must
  // outlive the engine.
  explicit IncrementalTruss(const Graph& g);

  // Adopts a precomputed decomposition of `g` instead of recomputing.
  // `seed` must be the decomposition ComputeTrussDecomposition(g, anchored)
  // produced for `anchored` (empty = no anchors); edges with trussness
  // kTrussnessNotComputed are treated as removed.
  IncrementalTruss(const Graph& g, TrussDecomposition seed,
                   std::vector<bool> anchored = {});

  // Copyable so parallel candidate evaluation can clone one engine per
  // worker; the copy shares nothing with the original. Movable so a
  // factory-constructed engine transfers without the deep copy (scratch
  // state is rebound lazily — every use re-binds before touching it).
  IncrementalTruss(const IncrementalTruss& other);
  IncrementalTruss(IncrementalTruss&& other) noexcept = default;
  IncrementalTruss& operator=(const IncrementalTruss&) = delete;
  IncrementalTruss& operator=(IncrementalTruss&&) = delete;
  ~IncrementalTruss();

  const Graph& graph() const { return *g_; }

  // The maintained decomposition. Anchored edges read kAnchoredTrussness,
  // removed edges kTrussnessNotComputed, exactly as the batch APIs report.
  const TrussDecomposition& decomposition() const { return decomp_; }
  const std::vector<bool>& anchored() const { return anchored_; }

  bool IsAlive(EdgeId e) const {
    return decomp_.trussness[e] != kTrussnessNotComputed;
  }
  bool IsAnchored(EdgeId e) const { return anchored_[e]; }

  // Ascending ids of the alive edges (the subset a from-scratch
  // ComputeTrussDecompositionOnSubset call would be given).
  std::vector<EdgeId> AliveEdges() const;

  // Sum of trussness over alive non-anchored edges, maintained O(1).
  uint64_t total_trussness() const { return total_trussness_; }

  // Anchors `e` (alive, not yet anchored) and updates the decomposition
  // locally. Returns the trussness gain — the number of followers, each of
  // which rises by exactly 1 (Lemma 1). When `followers` is non-null it
  // receives their edge ids (post-anchor trussness minus 1 recovers the
  // pre-anchor value).
  uint32_t ApplyAnchor(EdgeId e, std::vector<EdgeId>* followers = nullptr);

  // Removes `e` (alive, not anchored) from the maintained subgraph and
  // updates the decomposition locally. Returns the total trussness lost by
  // the *other* edges (the edge-deletion baseline's impact metric).
  uint64_t RemoveEdge(EdgeId e);

  // (Re-)inserts `e` — present in the topology, currently removed — into
  // the maintained subgraph and updates the decomposition locally via the
  // same affected-region machinery (with the full-rebuild fallback).
  // Returns the trussness the inserted edge settles at.
  uint32_t InsertEdge(EdgeId e);

  // Streaming-arrival flavor: resolves {u, v} against the topology.
  // kNotFound when the topology has no such slot (materialize a new
  // snapshot with Graph::ApplyEdits first), kFailedPrecondition when the
  // edge is already alive. Returns the edge id on success.
  StatusOr<EdgeId> InsertEdge(VertexId u, VertexId v);

  // Undo-log cursor for speculative apply/rollback. Rolling back restores
  // the decomposition, anchor set, and alive set byte-identically; marks
  // taken after the target checkpoint are invalidated (RollbackTo aborts
  // on them — probe with IsValidCheckpoint for a recoverable answer).
  Checkpoint MarkRollbackPoint() const {
    return Checkpoint{undo_.size(), undo_.empty() ? undo_base_serial_
                                                  : undo_.back().serial};
  }
  bool IsValidCheckpoint(Checkpoint checkpoint) const {
    if (checkpoint.position > undo_.size()) return false;
    if (checkpoint.position == 0) {
      return checkpoint.boundary_serial == undo_base_serial_;
    }
    return undo_[checkpoint.position - 1].serial ==
           checkpoint.boundary_serial;
  }
  void RollbackTo(Checkpoint checkpoint);

  // Drops the undo history (the committed state is untouched); ALL
  // outstanding checkpoints are invalidated, including pristine ones — the
  // clear point becomes the new floor. Greedy loops call this after
  // committing a round so per-worker clones stay cheap to copy.
  void ClearUndoLog() {
    undo_.clear();
    undo_base_serial_ = next_undo_serial_++;
  }

  struct Stats {
    uint64_t anchors_applied = 0;
    uint64_t edges_removed = 0;
    uint64_t edges_inserted = 0;
    uint64_t rollbacks = 0;
    // Sum over updates of the final affected-region size (edges re-peeled).
    uint64_t region_edges_total = 0;
    // Region-growth re-simulations beyond the first pass of each update.
    uint64_t expansion_passes = 0;
    // Updates that fell back to a from-scratch subset decomposition
    // (region outgrew the locality budget). Correct either way.
    uint64_t full_rebuilds = 0;
    // ApplyAnchor updates where the re-peel disagreed with FollowerSearch
    // (always resolved by a full rebuild; the differential suite asserts
    // this stays 0).
    uint64_t follower_mismatches = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct UndoEntry {
    uint64_t serial;  // never reused, even after rollbacks
    EdgeId edge;
    uint32_t trussness;
    uint32_t layer;
    uint8_t anchored;
  };
  struct ContextEvent {
    uint32_t trussness;
    uint32_t layer;
    EdgeId edge;
  };

  void InitScratch();
  void AdoptSeed(TrussDecomposition seed, std::vector<bool> anchored);

  // Histogram + running-total bookkeeping around every edge-state write.
  void HistAdd(uint32_t trussness);
  void HistRemove(uint32_t trussness);
  void RecomputeMaxTrussness();

  // Records the pre-state of `e` in the undo log and writes the new state.
  void CommitEdgeState(EdgeId e, uint32_t trussness, uint32_t layer,
                       bool anchored);

  bool InRegion(EdgeId e) const { return region_epoch_[e] == region_pass_; }
  void AddToRegion(EdgeId e);

  // Replays the batch peel over the current region; fills sim_t_ / sim_l_
  // for region edges. Out-of-region edges act as context removed at their
  // stored (t, l).
  void SimulateRegion();

  // Appends out-of-region boundary edges whose peel could be affected by a
  // region edge whose simulated (t, l) differs from its stored one.
  // Returns true when the region grew.
  bool ExpandRegion();

  // Runs simulate-expand to a fixpoint and commits the simulated values;
  // falls back to a from-scratch subset decomposition when the region
  // outgrows the locality budget. Returns the number of region edges whose
  // trussness changed.
  uint32_t RunLocalizedUpdate();

  // From-scratch fallback: recomputes over the alive subset and commits
  // every difference.
  void FullRebuild();

  // Whether `z` is still present in the replayed peel at (phase, round).
  bool PresentNow(EdgeId z, uint32_t phase, uint32_t round) const;

  const Graph* g_;
  TrussDecomposition decomp_;
  std::vector<bool> anchored_;
  // hull_count_[t] = number of alive non-anchored edges with trussness t.
  std::vector<uint32_t> hull_count_;
  uint64_t total_trussness_ = 0;

  std::vector<UndoEntry> undo_;
  uint64_t next_undo_serial_ = 1;
  uint64_t undo_base_serial_ = 0;  // serial "under" position 0
  Stats stats_;

  std::unique_ptr<FollowerSearch> search_;  // lazily created

  // --- re-peel scratch (epoch-stamped; excluded from copies) -------------
  uint32_t region_pass_ = 0;  // bumped per mutation
  uint32_t sim_pass_ = 0;     // bumped per SimulateRegion call
  std::vector<EdgeId> region_;
  std::vector<uint32_t> region_epoch_;
  std::vector<uint32_t> removed_epoch_;  // edge removed in current sim pass
  std::vector<uint32_t> queued_epoch_;   // edge queued in current frontier
  std::vector<uint32_t> event_epoch_;    // context event already recorded
  std::vector<uint32_t> sim_support_;
  std::vector<uint32_t> sim_t_;
  std::vector<uint32_t> sim_l_;
  std::vector<ContextEvent> events_;
  std::vector<std::vector<EdgeId>> buckets_;
  std::vector<EdgeId> frontier_;
  std::vector<EdgeId> next_frontier_;
  std::vector<EdgeId> follower_scratch_;
};

}  // namespace atr

#endif  // ATR_TRUSS_INCREMENTAL_H_
