#include "truss/gain.h"

#include "util/macros.h"

namespace atr {

uint64_t TrussnessGain(const Graph& g, const TrussDecomposition& base,
                       const std::vector<bool>& base_anchored,
                       const std::vector<EdgeId>& anchor_set) {
  const uint32_t m = g.NumEdges();
  std::vector<bool> anchored =
      base_anchored.empty() ? std::vector<bool>(m, false) : base_anchored;
  ATR_CHECK(anchored.size() == m);
  for (EdgeId e : anchor_set) {
    ATR_CHECK(e < m);
    anchored[e] = true;
  }
  const TrussDecomposition after = ComputeTrussDecomposition(g, anchored);

  uint64_t gain = 0;
  for (EdgeId e = 0; e < m; ++e) {
    if (anchored[e]) continue;  // Definition 4 sums over E \ A.
    const uint32_t before = base.trussness[e];
    const uint32_t now = after.trussness[e];
    ATR_DCHECK(before != kAnchoredTrussness);
    ATR_DCHECK(now >= before);  // anchoring never lowers trussness
    gain += now - before;
  }
  return gain;
}

std::vector<EdgeId> BruteForceFollowers(const Graph& g,
                                        const TrussDecomposition& base,
                                        const std::vector<bool>& anchored,
                                        EdgeId x) {
  const uint32_t m = g.NumEdges();
  std::vector<bool> mask =
      anchored.empty() ? std::vector<bool>(m, false) : anchored;
  ATR_CHECK(x < m);
  ATR_CHECK_MSG(!mask[x], "anchor candidate is already anchored");
  mask[x] = true;
  const TrussDecomposition after = ComputeTrussDecomposition(g, mask);

  std::vector<EdgeId> followers;
  for (EdgeId e = 0; e < m; ++e) {
    if (mask[e]) continue;
    if (after.trussness[e] > base.trussness[e]) followers.push_back(e);
  }
  return followers;
}

}  // namespace atr
