#include "truss/gain.h"

#include "util/macros.h"

namespace atr {

namespace {

// Re-decomposes under `anchored`, honoring the subgraph `base` was computed
// over: edges `base` reports as kTrussnessNotComputed were removed from the
// maintained subgraph and must stay absent, not silently resurrected by a
// full-graph recompute (the stale-support trap for anchored-graph callers
// that also delete edges).
TrussDecomposition RedecomposeLikeBase(const Graph& g,
                                       const TrussDecomposition& base,
                                       const std::vector<bool>& anchored) {
  ATR_CHECK(base.trussness.size() == g.NumEdges());
  const std::vector<EdgeId> alive = AliveSubsetOf(base);
  return alive.empty() ? ComputeTrussDecomposition(g, anchored)
                       : ComputeTrussDecompositionOnSubset(g, anchored, alive);
}

}  // namespace

uint64_t TrussnessGain(const Graph& g, const TrussDecomposition& base,
                       const std::vector<bool>& base_anchored,
                       const std::vector<EdgeId>& anchor_set) {
  const uint32_t m = g.NumEdges();
  std::vector<bool> anchored =
      base_anchored.empty() ? std::vector<bool>(m, false) : base_anchored;
  ATR_CHECK(anchored.size() == m);
  for (EdgeId e : anchor_set) {
    ATR_CHECK(e < m);
    ATR_CHECK_MSG(base.trussness[e] != kTrussnessNotComputed,
                  "anchor candidate was removed from the subgraph");
    anchored[e] = true;
  }
  const TrussDecomposition after = RedecomposeLikeBase(g, base, anchored);

  uint64_t gain = 0;
  for (EdgeId e = 0; e < m; ++e) {
    if (anchored[e]) continue;  // Definition 4 sums over E \ A.
    const uint32_t before = base.trussness[e];
    const uint32_t now = after.trussness[e];
    ATR_DCHECK(before != kAnchoredTrussness);
    ATR_DCHECK(now >= before);  // anchoring never lowers trussness
    gain += now - before;
  }
  return gain;
}

std::vector<EdgeId> BruteForceFollowers(const Graph& g,
                                        const TrussDecomposition& base,
                                        const std::vector<bool>& anchored,
                                        EdgeId x) {
  const uint32_t m = g.NumEdges();
  std::vector<bool> mask =
      anchored.empty() ? std::vector<bool>(m, false) : anchored;
  ATR_CHECK(x < m);
  ATR_CHECK_MSG(!mask[x], "anchor candidate is already anchored");
  ATR_CHECK_MSG(base.trussness[x] != kTrussnessNotComputed,
                "anchor candidate was removed from the subgraph");
  mask[x] = true;
  const TrussDecomposition after = RedecomposeLikeBase(g, base, mask);

  std::vector<EdgeId> followers;
  for (EdgeId e = 0; e < m; ++e) {
    if (mask[e]) continue;
    if (after.trussness[e] > base.trussness[e]) followers.push_back(e);
  }
  return followers;
}

}  // namespace atr
