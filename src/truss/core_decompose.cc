#include "truss/core_decompose.h"

#include <algorithm>

#include "util/macros.h"

namespace atr {

CoreDecomposition ComputeCoreDecomposition(
    const Graph& g, const std::vector<uint8_t>& alive_edges) {
  const uint32_t n = g.NumVertices();
  CoreDecomposition out;
  out.core.assign(n, 0);
  if (n == 0) return out;

  const bool masked = !alive_edges.empty();
  auto edge_alive = [&](EdgeId e) { return !masked || alive_edges[e] != 0; };

  std::vector<uint32_t> degree(n, 0);
  uint32_t max_degree = 0;
  for (VertexId u = 0; u < n; ++u) {
    uint32_t d = 0;
    for (const AdjEntry& entry : g.Neighbors(u)) {
      if (edge_alive(entry.edge)) ++d;
    }
    degree[u] = d;
    max_degree = std::max(max_degree, d);
  }

  // Bin-sort vertices by degree: sorted ascending, pos[v] its slot,
  // bin_start[d] the first slot of degree-d vertices.
  std::vector<uint32_t> bin_start(max_degree + 2, 0);
  for (VertexId u = 0; u < n; ++u) ++bin_start[degree[u] + 1];
  for (uint32_t d = 1; d < bin_start.size(); ++d) bin_start[d] += bin_start[d - 1];
  std::vector<uint32_t> sorted(n);
  std::vector<uint32_t> pos(n);
  {
    std::vector<uint32_t> cursor(bin_start.begin(), bin_start.end() - 1);
    for (VertexId u = 0; u < n; ++u) {
      pos[u] = cursor[degree[u]];
      sorted[pos[u]] = u;
      ++cursor[degree[u]];
    }
  }

  // Peel in degree order. When v is removed with current degree d, its core
  // number is d; each alive neighbor with a higher current degree moves one
  // bin down in O(1) by swapping with its bin's front.
  for (uint32_t i = 0; i < n; ++i) {
    const VertexId v = sorted[i];
    const uint32_t dv = degree[v];
    out.core[v] = dv;
    out.max_core = std::max(out.max_core, dv);
    for (const AdjEntry& entry : g.Neighbors(v)) {
      if (!edge_alive(entry.edge)) continue;
      const VertexId w = entry.neighbor;
      const uint32_t dw = degree[w];
      if (dw <= dv) continue;  // already peeled or tied with v's bin
      const uint32_t slot = pos[w];
      const uint32_t front = bin_start[dw];
      ATR_DCHECK(front > i);
      const VertexId moved = sorted[front];
      sorted[front] = w;
      sorted[slot] = moved;
      pos[w] = front;
      pos[moved] = slot;
      ++bin_start[dw];
      degree[w] = dw - 1;
    }
  }
  return out;
}

}  // namespace atr
