#include "truss/decomposition.h"

#include <algorithm>

#include "graph/triangles.h"
#include "truss/flat_peel.h"
#include "truss/plan.h"
#include "util/macros.h"
#include "util/parallel_for.h"

namespace atr {
namespace {

// Shared peeling engine. `alive` marks edges participating in the
// decomposition (already excludes out-of-subset edges); anchored edges are
// alive forever.
TrussDecomposition Peel(const Graph& g, const std::vector<bool>& anchored,
                        std::vector<bool> alive) {
  const uint32_t m = g.NumEdges();
  TrussDecomposition out;
  out.trussness.assign(m, kTrussnessNotComputed);
  out.layer.assign(m, 0);

  // Support restricted to alive edges.
  std::vector<uint32_t> support(m, 0);
  ForEachTriangle(g, [&](TriangleEdges t) {
    if (alive[t.e1] && alive[t.e2] && alive[t.e3]) {
      ++support[t.e1];
      ++support[t.e2];
      ++support[t.e3];
    }
  });

  const bool has_anchors = !anchored.empty();
  auto is_anchored = [&](EdgeId e) { return has_anchors && anchored[e]; };

  // Bucket queue keyed by support; entries are validated lazily on pop.
  uint32_t max_support = 0;
  for (EdgeId e = 0; e < m; ++e) {
    if (alive[e]) max_support = std::max(max_support, support[e]);
  }
  std::vector<std::vector<EdgeId>> buckets(max_support + 1);
  uint32_t remaining = 0;
  for (EdgeId e = 0; e < m; ++e) {
    if (!alive[e]) continue;
    if (is_anchored(e)) continue;  // never peeled
    buckets[support[e]].push_back(e);
    ++remaining;
  }
  out.trussness.assign(m, kTrussnessNotComputed);
  for (EdgeId e = 0; e < m; ++e) {
    if (alive[e] && is_anchored(e)) out.trussness[e] = kAnchoredTrussness;
  }

  // `queued` dedupes frontier membership per phase round.
  std::vector<bool> queued(m, false);
  std::vector<EdgeId> frontier;
  std::vector<EdgeId> next_frontier;

  uint32_t k = 2;
  uint32_t peak = 2;
  while (remaining > 0) {
    const uint32_t threshold = k - 2;
    // Round 1 frontier: alive non-anchor edges with support <= k-2. Bucket
    // entries are consumed; stale ones (dead or support changed) are skipped
    // — a support value only decreases, and each decrease re-files the edge.
    frontier.clear();
    const uint32_t scan_limit = std::min<uint32_t>(threshold, max_support);
    for (uint32_t s = 0; s <= scan_limit; ++s) {
      for (EdgeId e : buckets[s]) {
        if (alive[e] && !queued[e] && support[e] <= threshold) {
          queued[e] = true;
          frontier.push_back(e);
        }
      }
      buckets[s].clear();
    }

    uint32_t round = 1;
    while (!frontier.empty()) {
      next_frontier.clear();
      for (EdgeId e : frontier) {
        ATR_DCHECK(alive[e]);
        alive[e] = false;
        queued[e] = false;
        out.trussness[e] = k;
        out.layer[e] = round;
        --remaining;
        peak = std::max(peak, k);
        ForEachTriangleOfEdge(g, e, [&](VertexId, EdgeId e1, EdgeId e2) {
          if (!alive[e1] || !alive[e2]) return;
          for (EdgeId partner : {e1, e2}) {
            if (is_anchored(partner)) continue;
            ATR_DCHECK(support[partner] > 0);
            --support[partner];
            const uint32_t s = support[partner];
            if (s <= threshold) {
              if (!queued[partner]) {
                queued[partner] = true;
                next_frontier.push_back(partner);
              }
            } else {
              buckets[s].push_back(partner);
            }
          }
        });
      }
      frontier.swap(next_frontier);
      ++round;
    }
    ++k;
  }
  out.max_trussness = peak;
  return out;
}

}  // namespace

TrussDecomposition ComputeTrussDecompositionWithPlan(
    const Graph& g, const std::vector<bool>& anchored,
    const DecompositionPlan& plan) {
  if (plan.algorithm == PeelAlgorithm::kSerial) {
    return ComputeTrussDecompositionSerial(g, anchored);
  }
  return ComputeTrussDecompositionFlat(g, anchored, plan);
}

TrussDecomposition ComputeTrussDecomposition(
    const Graph& g, const std::vector<bool>& anchored) {
  return ComputeTrussDecompositionWithPlan(g, anchored,
                                           DecompositionPlan::Ambient());
}

SharedTrussDecomposition ComputeSharedTrussDecompositionWithPlan(
    const Graph& g, const std::vector<bool>& anchored,
    const DecompositionPlan& plan) {
  return std::make_shared<const TrussDecomposition>(
      ComputeTrussDecompositionWithPlan(g, anchored, plan));
}

SharedTrussDecomposition ComputeSharedTrussDecomposition(
    const Graph& g, const std::vector<bool>& anchored) {
  return ComputeSharedTrussDecompositionWithPlan(g, anchored,
                                                 DecompositionPlan::Ambient());
}

TrussDecomposition ComputeTrussDecompositionOnSubsetWithPlan(
    const Graph& g, const std::vector<bool>& anchored,
    const std::vector<EdgeId>& edge_subset, const DecompositionPlan& plan) {
  if (plan.algorithm == PeelAlgorithm::kSerial) {
    return ComputeTrussDecompositionOnSubsetSerial(g, anchored, edge_subset);
  }
  return ComputeTrussDecompositionOnSubsetFlat(g, anchored, edge_subset,
                                               plan);
}

TrussDecomposition ComputeTrussDecompositionOnSubset(
    const Graph& g, const std::vector<bool>& anchored,
    const std::vector<EdgeId>& edge_subset) {
  return ComputeTrussDecompositionOnSubsetWithPlan(
      g, anchored, edge_subset, DecompositionPlan::Ambient());
}

TrussDecomposition ComputeTrussDecompositionSerial(
    const Graph& g, const std::vector<bool>& anchored) {
  ATR_CHECK(anchored.empty() || anchored.size() == g.NumEdges());
  std::vector<bool> alive(g.NumEdges(), true);
  return Peel(g, anchored, std::move(alive));
}

TrussDecomposition ComputeTrussDecompositionOnSubsetSerial(
    const Graph& g, const std::vector<bool>& anchored,
    const std::vector<EdgeId>& edge_subset) {
  ATR_CHECK(anchored.empty() || anchored.size() == g.NumEdges());
  std::vector<bool> alive(g.NumEdges(), false);
  for (EdgeId e : edge_subset) {
    ATR_CHECK(e < g.NumEdges());
    alive[e] = true;
  }
  return Peel(g, anchored, std::move(alive));
}

std::vector<EdgeId> AliveSubsetOf(const TrussDecomposition& decomp) {
  const uint32_t m = static_cast<uint32_t>(decomp.trussness.size());
  std::vector<EdgeId> alive;
  alive.reserve(m);
  for (EdgeId e = 0; e < m; ++e) {
    if (decomp.trussness[e] != kTrussnessNotComputed) alive.push_back(e);
  }
  if (alive.size() == m) alive.clear();
  return alive;
}

void SerializeTrussDecomposition(const TrussDecomposition& decomp,
                                 ByteWriter& writer) {
  ATR_CHECK(decomp.trussness.size() == decomp.layer.size());
  writer.WriteU32(decomp.max_trussness);
  writer.WriteU32Vector(decomp.trussness);
  writer.WriteU32Vector(decomp.layer);
}

StatusOr<TrussDecomposition> DeserializeTrussDecomposition(
    ByteReader& reader, uint32_t num_edges) {
  TrussDecomposition decomp;
  if (!reader.ReadU32(&decomp.max_trussness) ||
      !reader.ReadU32Vector(&decomp.trussness) ||
      !reader.ReadU32Vector(&decomp.layer)) {
    return Status::InvalidArgument(
        "TrussDecomposition::Deserialize: truncated input");
  }
  if (decomp.trussness.size() != num_edges ||
      decomp.layer.size() != num_edges) {
    return Status::InvalidArgument(
        "TrussDecomposition::Deserialize: array lengths do not match the "
        "graph's edge count");
  }
  return decomp;
}

std::vector<uint32_t> HullSizes(const TrussDecomposition& decomp) {
  std::vector<uint32_t> sizes(decomp.max_trussness + 1, 0);
  for (uint32_t t : decomp.trussness) {
    if (t == kAnchoredTrussness || t == kTrussnessNotComputed) continue;
    ATR_DCHECK(t < sizes.size());
    ++sizes[t];
  }
  return sizes;
}

}  // namespace atr
