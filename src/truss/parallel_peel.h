// Round-synchronous parallel truss decomposition.
//
// The paper defines deletion layers L^i_k by *batch* peeling rounds
// (Definition 5): round r of phase k removes every surviving edge whose
// support dropped to <= k-2 after the removals of rounds 1..r-1. Batch
// rounds are a data-parallel unit — within one round no removed edge
// observes another's removal — so the peel parallelizes without perturbing
// the deletion order `≺` the upward-route machinery depends on:
//
//  * support initialization is per-edge common-neighbor counting sharded
//    across ParallelFor workers (ComputeSupportParallel);
//  * each round's frontier is processed in parallel chunks that record
//    triangle-support decrements into per-chunk buffers, folded on one
//    thread in chunk index order.
//
// The result — trussness, layer, max_trussness — is byte-identical to the
// serial Algorithm 1 peel (ComputeTrussDecompositionSerial) at ANY worker
// count: decrements are commutative counts, frontier membership depends
// only on the folded support values, and (k, round) assignment is
// position-independent within a round. tests/parallel_decomposition_test.cc
// asserts this across a thread sweep on hundreds of seeded graphs.
//
// Prefer the dispatching entry points in truss/decomposition.h
// (ComputeTrussDecomposition / ...OnSubset), which pick this engine
// whenever more than one worker is available.

#ifndef ATR_TRUSS_PARALLEL_PEEL_H_
#define ATR_TRUSS_PARALLEL_PEEL_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "truss/decomposition.h"

namespace atr {

// Parallel counterpart of ComputeTrussDecompositionSerial. Honors the
// calling thread's ScopedParallelism / ATR_THREADS worker count; with one
// worker every stage runs inline (still byte-identical).
TrussDecomposition ComputeTrussDecompositionParallel(
    const Graph& g, const std::vector<bool>& anchored = {});

// Parallel counterpart of ComputeTrussDecompositionOnSubsetSerial.
TrussDecomposition ComputeTrussDecompositionOnSubsetParallel(
    const Graph& g, const std::vector<bool>& anchored,
    const std::vector<EdgeId>& edge_subset);

namespace internal {

// Fan-out cutoff shared by the peel's rounds, its support init, and the
// serial/parallel dispatch in decomposition.cc: work units (frontier
// edges, graph edges) below it run inline or serially — spawning worker
// threads for a handful of edges costs more than the work itself.
size_t ParallelPeelMinFrontier();

// The differential tests lower the cutoff to 1 to force the fan-out path
// on small graphs. Returns the previous value.
size_t SetParallelPeelMinFrontierForTest(size_t min_frontier);

}  // namespace internal

}  // namespace atr

#endif  // ATR_TRUSS_PARALLEL_PEEL_H_
