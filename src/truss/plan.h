// DecompositionPlan: selects and tunes the truss-peel kernel.
//
// Every ComputeTrussDecomposition* entry point dispatches through a plan
// (truss/decomposition.h), so kernel experiments swap behind one seam —
// the shape follows Katana's KTrussPlan. All algorithms are byte-identical
// to the serial oracle (same trussness, layer, and max_trussness for every
// edge at every thread count); a plan only chooses how the answer is
// computed, never what it is. The differential suites in
// tests/parallel_decomposition_test.cc enforce this per plan.
//
// Selection flows through the stack: SolverOptions::plan (api/solver.h)
// governs a solver run, AtrService::SubmitOptions::plan overrides it per
// submit, and the wire protocol carries the plan as a revision-3 trailing
// field (docs/PROTOCOL.md). Library callers that cannot pass options
// install a ScopedDecompositionPlan; otherwise the ambient default applies
// (ATR_PLAN env var, falling back to kBsp).

#ifndef ATR_TRUSS_PLAN_H_
#define ATR_TRUSS_PLAN_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace atr {

// Wire-stable algorithm ids (docs/PROTOCOL.md revision 3) — append only.
enum class PeelAlgorithm : uint8_t {
  // Reference bucket peel from truss/decomposition.cc — the oracle every
  // other engine is differentially tested against.
  kSerial = 0,
  // Flat SoA bucket-queue peel (truss/flat_peel.h): zipped uint64_t
  // half-edge arrays over a FlatGraphView, O(1) support decrements with no
  // per-round bucket re-scan, round-synchronous fan-out above the cutoff.
  kBsp = 1,
  // kBsp preceded by a k-core prefilter (truss/core_decompose.h): edges
  // outside the 2-core close no triangle, so their trussness is forced and
  // the triangle phase skips them.
  kBspCoreThenTruss = 2,
};

struct DecompositionPlan {
  PeelAlgorithm algorithm = PeelAlgorithm::kBsp;

  // Frontier edges per fan-out chunk. 0 = split the frontier evenly across
  // the effective workers (ParallelChunkCount). Chunking only changes how
  // decrement buffers are batched, never the result.
  uint32_t chunk_size = 0;

  // Frontier size below which rounds stay serial. 0 = the process default
  // (internal::ParallelPeelMinFrontier, honoring the test hook).
  uint32_t fanout_cutoff = 0;

  // Run the k-core prefilter even for plain kBsp. kBspCoreThenTruss
  // implies it regardless of this flag.
  bool prefilter = false;

  bool PrefilterEnabled() const {
    return prefilter || algorithm == PeelAlgorithm::kBspCoreThenTruss;
  }

  static DecompositionPlan Serial() {
    return DecompositionPlan{PeelAlgorithm::kSerial, 0, 0, false};
  }
  static DecompositionPlan Bsp() {
    return DecompositionPlan{PeelAlgorithm::kBsp, 0, 0, false};
  }
  static DecompositionPlan BspCoreThenTruss() {
    return DecompositionPlan{PeelAlgorithm::kBspCoreThenTruss, 0, 0, false};
  }

  // Process-wide default: ATR_PLAN env var ("serial", "bsp",
  // "bsp-core-truss"; unknown values fall back to bsp), read once.
  static DecompositionPlan Default();

  // The plan in effect for plan-less entry points: the innermost
  // ScopedDecompositionPlan on this thread, else Default().
  static DecompositionPlan Ambient();

  // Canonical algorithm name ("serial" / "bsp" / "bsp-core-truss").
  std::string Name() const;

  // Stable key covering every knob — used to partition service batch keys
  // so jobs with different plans never fuse.
  std::string CacheKey() const;

  friend bool operator==(const DecompositionPlan&,
                         const DecompositionPlan&) = default;
};

// Parses a canonical algorithm name into a plan with default knobs.
StatusOr<DecompositionPlan> DecompositionPlanFromName(const std::string& name);

// Installs `plan` as the ambient plan for the current thread (RAII,
// nestable). The solver adapters wrap each Solve with one so that lazy
// SolverContext::Decomposition builds and nested subset recomputes inside
// the objective engines all honor SolverOptions::plan.
class ScopedDecompositionPlan {
 public:
  explicit ScopedDecompositionPlan(const DecompositionPlan& plan);
  ~ScopedDecompositionPlan();

  ScopedDecompositionPlan(const ScopedDecompositionPlan&) = delete;
  ScopedDecompositionPlan& operator=(const ScopedDecompositionPlan&) = delete;

 private:
  DecompositionPlan plan_;
  const DecompositionPlan* previous_;
};

}  // namespace atr

#endif  // ATR_TRUSS_PLAN_H_
