// Flat SoA truss peel — the kBsp / kBspCoreThenTruss engines.
//
// Same round-synchronous batch-peel semantics as truss/parallel_peel.h
// (Definition 5 deletion layers, byte-identical to the serial oracle at
// any worker count), rebuilt on MaxTruss-style flat buffers:
//
//  * adjacency and oriented half-edges packed into zipped uint64_t arrays
//    (graph/flat_view.h) — one forward oriented sweep intersects raw
//    words (no FindEdge binary searches) and materializes the triangle
//    incidence CSR: per edge, its triangles' other two edge ids zipped
//    into uint64_t pairs. Peel rounds then touch exactly the stored pairs
//    of their dying edges — O(1) per triangle visit — instead of
//    re-intersecting the endpoints' adjacency lists, which on hub-heavy
//    graphs costs orders of magnitude more than the triangle count;
//  * edge support / edge id in flat SoA arrays ordered by a bin-sort
//    bucket structure (sorted / pos / bin_start): a support decrement is
//    an O(1) swap with its bin's front, and each phase's frontier is a
//    contiguous slice — no per-round bucket re-scan like the serial
//    engine's scan of buckets[0..threshold];
//  * optional k-core prefilter (truss/core_decompose.h): edges outside
//    the 2-core of the alive subgraph close no alive triangle, so they are
//    retired with their forced result (trussness 2, layer 1 — exactly what
//    the oracle assigns) before any support is counted.
//
// Plan knobs (truss/plan.h): chunk_size fixes the fan-out chunk length,
// fanout_cutoff overrides the minimum frontier that fans out. Both change
// scheduling only; results are invariant.

#ifndef ATR_TRUSS_FLAT_PEEL_H_
#define ATR_TRUSS_FLAT_PEEL_H_

#include <vector>

#include "graph/flat_view.h"
#include "graph/graph.h"
#include "truss/decomposition.h"
#include "truss/plan.h"

namespace atr {

// Flat-engine counterpart of ComputeTrussDecompositionSerial. Builds a
// FlatGraphView internally; callers that decompose the same snapshot
// repeatedly should build one view and use the overload below.
TrussDecomposition ComputeTrussDecompositionFlat(
    const Graph& g, const std::vector<bool>& anchored,
    const DecompositionPlan& plan);

// As above with a prebuilt view; `view` must be FlatGraphView::Build(g)
// of this exact graph.
TrussDecomposition ComputeTrussDecompositionFlat(
    const Graph& g, const FlatGraphView& view,
    const std::vector<bool>& anchored, const DecompositionPlan& plan);

// Flat-engine counterpart of ComputeTrussDecompositionOnSubsetSerial:
// edges outside `edge_subset` keep kTrussnessNotComputed.
TrussDecomposition ComputeTrussDecompositionOnSubsetFlat(
    const Graph& g, const std::vector<bool>& anchored,
    const std::vector<EdgeId>& edge_subset, const DecompositionPlan& plan);

TrussDecomposition ComputeTrussDecompositionOnSubsetFlat(
    const Graph& g, const FlatGraphView& view,
    const std::vector<bool>& anchored,
    const std::vector<EdgeId>& edge_subset, const DecompositionPlan& plan);

}  // namespace atr

#endif  // ATR_TRUSS_FLAT_PEEL_H_
