#include "truss/incremental.h"

#include <algorithm>

#include "graph/triangles.h"
#include "route/follower_search.h"
#include "util/macros.h"

namespace atr {

// The affected-region re-peel replays the exact batch-peeling process of
// decomposition.cc's Peel() restricted to a region S of edges, treating
// every out-of-region edge as "context" that disappears at the (t, l)
// time the stored decomposition records for it. That replay is exact as
// long as no out-of-region edge's own (t, l) would change — so after each
// pass the boundary is checked: an out-of-region partner w of a changed
// region edge e (old (t1, l1), new (t2, l2)) can only be affected when
// the phases where e's presence differs overlap w's own peel:
//
//   * presence-shrinking change (lex (t2,l2) < (t1,l1)): support losses at
//     phases [t2, t1] can pull w down to any level >= t2, so every w with
//     t(w) >= min(t1, t2) is suspect;
//   * presence-growing change: support gains never remove edges, so only
//     w whose own level lies inside [t1, t2] (its layer is decided there)
//     can move.
//
// Suspects join the region and the simulation re-runs; every changed edge
// is triangle-adjacent to another changed edge or to the mutated edge
// itself (a peel trace can only diverge when a partner's removal time
// diverges), so this fixpoint reaches the full changed set from any seed.

IncrementalTruss::IncrementalTruss(const Graph& g) : g_(&g) {
  AdoptSeed(ComputeTrussDecomposition(g), {});
}

IncrementalTruss::IncrementalTruss(const Graph& g, TrussDecomposition seed,
                                   std::vector<bool> anchored)
    : g_(&g) {
  AdoptSeed(std::move(seed), std::move(anchored));
}

IncrementalTruss::IncrementalTruss(const IncrementalTruss& other)
    : g_(other.g_),
      decomp_(other.decomp_),
      anchored_(other.anchored_),
      hull_count_(other.hull_count_),
      total_trussness_(other.total_trussness_),
      undo_(other.undo_),
      next_undo_serial_(other.next_undo_serial_),
      undo_base_serial_(other.undo_base_serial_),
      stats_(other.stats_) {
  InitScratch();
}

IncrementalTruss::~IncrementalTruss() = default;

void IncrementalTruss::AdoptSeed(TrussDecomposition seed,
                                 std::vector<bool> anchored) {
  const uint32_t m = g_->NumEdges();
  ATR_CHECK(seed.trussness.size() == m);
  ATR_CHECK(seed.layer.size() == m);
  ATR_CHECK(anchored.empty() || anchored.size() == m);
  const uint32_t seed_max = seed.max_trussness;
  decomp_ = std::move(seed);
  anchored_ = anchored.empty() ? std::vector<bool>(m, false)
                               : std::move(anchored);
  for (EdgeId e = 0; e < m; ++e) {
    if (decomp_.trussness[e] == kAnchoredTrussness) anchored_[e] = true;
    ATR_CHECK(anchored_[e] ==
              (decomp_.trussness[e] == kAnchoredTrussness));
    HistAdd(decomp_.trussness[e]);
  }
  RecomputeMaxTrussness();
  ATR_CHECK_MSG(decomp_.max_trussness == seed_max,
                "seed decomposition is inconsistent with its graph");
  InitScratch();
}

void IncrementalTruss::InitScratch() {
  const uint32_t m = g_->NumEdges();
  region_pass_ = 0;
  sim_pass_ = 0;
  region_.clear();
  region_epoch_.assign(m, 0);
  removed_epoch_.assign(m, 0);
  queued_epoch_.assign(m, 0);
  event_epoch_.assign(m, 0);
  sim_support_.assign(m, 0);
  sim_t_.assign(m, 0);
  sim_l_.assign(m, 0);
  search_.reset();
}

std::vector<EdgeId> IncrementalTruss::AliveEdges() const {
  std::vector<EdgeId> alive;
  alive.reserve(g_->NumEdges());
  for (EdgeId e = 0; e < g_->NumEdges(); ++e) {
    if (IsAlive(e)) alive.push_back(e);
  }
  return alive;
}

void IncrementalTruss::HistAdd(uint32_t trussness) {
  if (trussness == kTrussnessNotComputed || trussness == kAnchoredTrussness) {
    return;
  }
  if (trussness >= hull_count_.size()) hull_count_.resize(trussness + 1, 0);
  ++hull_count_[trussness];
  total_trussness_ += trussness;
}

void IncrementalTruss::HistRemove(uint32_t trussness) {
  if (trussness == kTrussnessNotComputed || trussness == kAnchoredTrussness) {
    return;
  }
  ATR_DCHECK(trussness < hull_count_.size() && hull_count_[trussness] > 0);
  --hull_count_[trussness];
  total_trussness_ -= trussness;
}

void IncrementalTruss::RecomputeMaxTrussness() {
  uint32_t peak = 2;
  for (uint32_t t = static_cast<uint32_t>(hull_count_.size()); t-- > 2;) {
    if (hull_count_[t] > 0) {
      peak = t;
      break;
    }
  }
  decomp_.max_trussness = peak;
}

void IncrementalTruss::CommitEdgeState(EdgeId e, uint32_t trussness,
                                       uint32_t layer, bool anchored) {
  undo_.push_back(UndoEntry{next_undo_serial_++, e, decomp_.trussness[e],
                            decomp_.layer[e],
                            static_cast<uint8_t>(anchored_[e] ? 1 : 0)});
  HistRemove(decomp_.trussness[e]);
  decomp_.trussness[e] = trussness;
  decomp_.layer[e] = layer;
  anchored_[e] = anchored;
  HistAdd(trussness);
}

void IncrementalTruss::RollbackTo(Checkpoint checkpoint) {
  ATR_CHECK_MSG(IsValidCheckpoint(checkpoint),
                "stale or unknown rollback checkpoint");
  if (checkpoint.position == undo_.size()) return;
  ++stats_.rollbacks;
  while (undo_.size() > checkpoint.position) {
    const UndoEntry& u = undo_.back();
    HistRemove(decomp_.trussness[u.edge]);
    decomp_.trussness[u.edge] = u.trussness;
    decomp_.layer[u.edge] = u.layer;
    anchored_[u.edge] = u.anchored != 0;
    HistAdd(u.trussness);
    undo_.pop_back();
  }
  RecomputeMaxTrussness();
}

void IncrementalTruss::AddToRegion(EdgeId e) {
  if (region_epoch_[e] == region_pass_) return;
  if (anchored_[e] || !IsAlive(e)) return;
  region_epoch_[e] = region_pass_;
  region_.push_back(e);
}

bool IncrementalTruss::PresentNow(EdgeId z, uint32_t phase,
                                  uint32_t round) const {
  if (removed_epoch_[z] == sim_pass_) return false;
  if (region_epoch_[z] == region_pass_) return true;
  const uint32_t t = decomp_.trussness[z];  // anchors: +inf, removed: 0
  return t > phase || (t == phase && decomp_.layer[z] >= round);
}

void IncrementalTruss::SimulateRegion() {
  ++sim_pass_;
  events_.clear();

  // Initial supports: triangles whose partners are all present at the very
  // start of the peel, i.e. alive (region edges are alive by construction).
  // Alive non-anchored out-of-region partners become context events.
  uint32_t max_sup = 0;
  for (const EdgeId e : region_) {
    sim_support_[e] = 0;
    ForEachTriangleOfEdge(*g_, e, [&](VertexId, EdgeId p, EdgeId q) {
      if (decomp_.trussness[p] == kTrussnessNotComputed ||
          decomp_.trussness[q] == kTrussnessNotComputed) {
        return;
      }
      ++sim_support_[e];
      for (const EdgeId c : {p, q}) {
        if (region_epoch_[c] == region_pass_ || anchored_[c]) continue;
        if (event_epoch_[c] == sim_pass_) continue;
        event_epoch_[c] = sim_pass_;
        events_.push_back(
            ContextEvent{decomp_.trussness[c], decomp_.layer[c], c});
      }
    });
    max_sup = std::max(max_sup, sim_support_[e]);
  }
  std::sort(events_.begin(), events_.end(),
            [](const ContextEvent& a, const ContextEvent& b) {
              if (a.trussness != b.trussness) return a.trussness < b.trussness;
              if (a.layer != b.layer) return a.layer < b.layer;
              return a.edge < b.edge;
            });

  if (buckets_.size() < static_cast<size_t>(max_sup) + 1) {
    buckets_.resize(max_sup + 1);
  }
  for (auto& bucket : buckets_) bucket.clear();
  for (const EdgeId e : region_) buckets_[sim_support_[e]].push_back(e);

  // Removing edge x during round r decrements the support of every partner
  // in a still-standing triangle; Peel()'s sequential mark-then-scan makes
  // each lost triangle count exactly once per surviving partner, which
  // this replays (only region supports are tracked — context edges carry
  // their removal time instead of a support).
  auto scan_removal = [&](EdgeId x, uint32_t phase, uint32_t round,
                          uint32_t threshold) {
    ForEachTriangleOfEdge(*g_, x, [&](VertexId, EdgeId p, EdgeId q) {
      if (!PresentNow(p, phase, round) || !PresentNow(q, phase, round)) {
        return;
      }
      for (const EdgeId z : {p, q}) {
        if (region_epoch_[z] != region_pass_ ||
            removed_epoch_[z] == sim_pass_) {
          continue;
        }
        ATR_DCHECK(sim_support_[z] > 0);
        const uint32_t s = --sim_support_[z];
        if (s <= threshold) {
          if (queued_epoch_[z] != sim_pass_) {
            queued_epoch_[z] = sim_pass_;
            next_frontier_.push_back(z);
          }
        } else {
          buckets_[s].push_back(z);
        }
      }
    });
  };

  uint32_t unassigned = static_cast<uint32_t>(region_.size());
  size_t ev = 0;
  uint32_t k = 2;
  while (unassigned > 0) {
    const uint32_t threshold = k - 2;
    size_t ev_end = ev;
    while (ev_end < events_.size() && events_[ev_end].trussness == k) {
      ++ev_end;
    }

    // Round-1 frontier: region edges at or below the phase threshold
    // (bucket entries are lazily validated, exactly as in Peel()).
    frontier_.clear();
    const uint32_t scan_limit = std::min(threshold, max_sup);
    for (uint32_t s = 0; s <= scan_limit; ++s) {
      for (const EdgeId e : buckets_[s]) {
        if (removed_epoch_[e] != sim_pass_ &&
            queued_epoch_[e] != sim_pass_ && sim_support_[e] <= threshold) {
          queued_epoch_[e] = sim_pass_;
          frontier_.push_back(e);
        }
      }
      buckets_[s].clear();
    }

    if (frontier_.empty() && ev == ev_end) {
      // Inactive phase: nothing can change until the threshold reaches the
      // smallest remaining support or the next context removal fires.
      uint32_t next_k = kAnchoredTrussness;
      for (uint32_t s = scan_limit + 1; s <= max_sup; ++s) {
        bool found = false;
        for (const EdgeId e : buckets_[s]) {
          if (removed_epoch_[e] != sim_pass_ && sim_support_[e] == s) {
            found = true;
            break;
          }
        }
        if (found) {
          next_k = s + 2;
          break;
        }
      }
      ATR_CHECK(next_k != kAnchoredTrussness || ev < events_.size());
      if (ev < events_.size()) {
        next_k = std::min(next_k, events_[ev].trussness);
      }
      ATR_DCHECK(next_k > k);
      k = next_k;
      continue;
    }

    uint32_t round = 1;
    while (!frontier_.empty() || ev < ev_end) {
      next_frontier_.clear();
      for (const EdgeId e : frontier_) {
        removed_epoch_[e] = sim_pass_;
        sim_t_[e] = k;
        sim_l_[e] = round;
        --unassigned;
        scan_removal(e, k, round, threshold);
      }
      while (ev < ev_end && events_[ev].layer == round) {
        const EdgeId c = events_[ev].edge;
        ++ev;
        removed_epoch_[c] = sim_pass_;
        scan_removal(c, k, round, threshold);
      }
      frontier_.swap(next_frontier_);
      ++round;
    }
    ++k;
  }
  // Unconsumed context events lie above every region edge's final level;
  // they cannot influence the region.
}

bool IncrementalTruss::ExpandRegion() {
  const size_t snapshot = region_.size();
  for (size_t i = 0; i < snapshot; ++i) {
    const EdgeId e = region_[i];
    const uint32_t t1 = decomp_.trussness[e];
    const uint32_t l1 = decomp_.layer[e];
    const uint32_t t2 = sim_t_[e];
    const uint32_t l2 = sim_l_[e];
    if (t1 == t2 && l1 == l2) continue;
    const bool shrinking = t2 < t1 || (t2 == t1 && l2 < l1);
    const uint32_t lo = std::min(t1, t2);
    const uint32_t hi = std::max(t1, t2);
    ForEachTriangleOfEdge(*g_, e, [&](VertexId, EdgeId p, EdgeId q) {
      for (const EdgeId w : {p, q}) {
        if (region_epoch_[w] == region_pass_ || anchored_[w]) continue;
        const uint32_t tw = decomp_.trussness[w];
        if (tw == kTrussnessNotComputed) continue;
        const bool affected = shrinking ? tw >= lo : (tw >= lo && tw <= hi);
        if (affected) AddToRegion(w);
      }
    });
  }
  return region_.size() > snapshot;
}

void IncrementalTruss::FullRebuild() {
  // Dispatches to the round-synchronous parallel peel when the calling
  // thread has workers available; either engine commits identical state.
  const TrussDecomposition fresh =
      ComputeTrussDecompositionOnSubset(*g_, anchored_, AliveEdges());
  for (EdgeId e = 0; e < g_->NumEdges(); ++e) {
    if (fresh.trussness[e] != decomp_.trussness[e] ||
        fresh.layer[e] != decomp_.layer[e]) {
      CommitEdgeState(e, fresh.trussness[e], fresh.layer[e], anchored_[e]);
    }
  }
}

uint32_t IncrementalTruss::RunLocalizedUpdate() {
  // Locality budget: once the region covers most of the graph (or keeps
  // rippling), a from-scratch subset decomposition is cheaper and equally
  // correct.
  const size_t max_region = g_->NumEdges() / 2 + 1;
  constexpr int kMaxPasses = 64;
  int passes = 0;
  for (;;) {
    if (region_.size() > max_region || passes >= kMaxPasses) {
      ++stats_.full_rebuilds;
      FullRebuild();
      return kAnchoredTrussness;  // caller-side validation is moot
    }
    SimulateRegion();
    ++passes;
    if (!ExpandRegion()) break;
    ++stats_.expansion_passes;
  }
  stats_.region_edges_total += region_.size();
  uint32_t trussness_changes = 0;
  for (const EdgeId e : region_) {
    if (sim_t_[e] != decomp_.trussness[e]) ++trussness_changes;
  }
  return trussness_changes;
}

uint32_t IncrementalTruss::ApplyAnchor(EdgeId e,
                                       std::vector<EdgeId>* followers) {
  ATR_CHECK(e < g_->NumEdges());
  ATR_CHECK_MSG(IsAlive(e), "ApplyAnchor: edge was removed");
  ATR_CHECK_MSG(!anchored_[e], "ApplyAnchor: edge is already anchored");
  ++stats_.anchors_applied;

  if (search_ == nullptr) search_ = std::make_unique<FollowerSearch>(*g_);
  search_->SetState(&decomp_, &anchored_);
  follower_scratch_.clear();
  const uint32_t gain = search_->CountFollowers(e, &follower_scratch_);
  if (followers != nullptr) *followers = follower_scratch_;

  const uint32_t old_t = decomp_.trussness[e];
  // Commit the anchor state before seeding: the region filter must already
  // see `e` as anchored (it is triangle-adjacent to its own followers and
  // must act as always-present context, never as a peelable region edge).
  CommitEdgeState(e, kAnchoredTrussness, 0, /*anchored=*/true);

  ++region_pass_;
  region_.clear();
  // Seeds: the followers themselves (each rises by exactly 1), the
  // partners the anchor's eternal presence can delay ([old_t, inf)), and
  // each follower's immediate layer-suspects; ExpandRegion() catches
  // anything further out.
  for (const EdgeId f : follower_scratch_) AddToRegion(f);
  ForEachTriangleOfEdge(*g_, e, [&](VertexId, EdgeId p, EdgeId q) {
    for (const EdgeId w : {p, q}) {
      if (anchored_[w] || !IsAlive(w)) continue;
      if (decomp_.trussness[w] >= old_t) AddToRegion(w);
    }
  });
  for (const EdgeId f : follower_scratch_) {
    const uint32_t tf = decomp_.trussness[f];
    ForEachTriangleOfEdge(*g_, f, [&](VertexId, EdgeId p, EdgeId q) {
      for (const EdgeId w : {p, q}) {
        if (anchored_[w] || !IsAlive(w)) continue;
        const uint32_t tw = decomp_.trussness[w];
        if (tw >= tf && tw <= tf + 1) AddToRegion(w);
      }
    });
  }

  const uint32_t trussness_changes = RunLocalizedUpdate();

  if (trussness_changes != kAnchoredTrussness) {
    // Cross-check the re-peel against the follower search: exactly the
    // followers rise, each by 1. A disagreement means one of the two is
    // wrong — resolve with the authoritative from-scratch path and leave a
    // breadcrumb the differential suite turns into a failure.
    bool consistent = trussness_changes == follower_scratch_.size();
    for (const EdgeId f : follower_scratch_) {
      consistent = consistent && InRegion(f) &&
                   sim_t_[f] == decomp_.trussness[f] + 1;
    }
    if (consistent) {
      for (const EdgeId r : region_) {
        if (sim_t_[r] != decomp_.trussness[r] ||
            sim_l_[r] != decomp_.layer[r]) {
          CommitEdgeState(r, sim_t_[r], sim_l_[r], false);
        }
      }
    } else {
      ++stats_.follower_mismatches;
      ++stats_.full_rebuilds;
#ifdef ATR_INC_DEBUG
      {
        const TrussDecomposition oracle =
            ComputeTrussDecompositionOnSubset(*g_, anchored_, AliveEdges());
        // atr-lint: allow(stderr) — ATR_INC_DEBUG-only oracle diagnostics
        std::fprintf(stderr, "mismatch anchor=%u changes=%u followers=%zu\n",
                     e, trussness_changes, follower_scratch_.size());
        for (const EdgeId r : region_) {
          if (sim_t_[r] != decomp_.trussness[r] ||
              sim_l_[r] != decomp_.layer[r] ||
              oracle.trussness[r] != decomp_.trussness[r] ||
              oracle.layer[r] != decomp_.layer[r]) {
            // atr-lint: allow(stderr) — ATR_INC_DEBUG-only oracle diagnostics
            std::fprintf(stderr,
                         "  region e=%u stored=(%u,%u) sim=(%u,%u) "
                         "oracle=(%u,%u)\n",
                         r, decomp_.trussness[r], decomp_.layer[r], sim_t_[r],
                         sim_l_[r], oracle.trussness[r], oracle.layer[r]);
          }
        }
      }
#endif
      FullRebuild();
    }
  }
  RecomputeMaxTrussness();
  return gain;
}

uint32_t IncrementalTruss::InsertEdge(EdgeId e) {
  ATR_CHECK(e < g_->NumEdges());
  ATR_CHECK_MSG(!IsAlive(e), "InsertEdge: edge is already alive");
  ++stats_.edges_inserted;

  // Commit a provisional alive state before seeding: the simulation must
  // see `e` as a peelable region edge whose triangles contribute to its
  // partners' initial supports. The stored (2, 0) reads as "removed before
  // every real peel event" (real layers start at 1), so ExpandRegion
  // classifies the insertion as a presence-growing change over exactly
  // [2, sim_t(e)] — partners above the settled trussness keep their trace.
  CommitEdgeState(e, 2, 0, /*anchored=*/false);

  ++region_pass_;
  region_.clear();
  AddToRegion(e);
  // Every partner of a now-standing triangle through `e` gains support at
  // all phases up to e's settled removal time, which can lift any of them.
  ForEachTriangleOfEdge(*g_, e, [&](VertexId, EdgeId p, EdgeId q) {
    if (!IsAlive(p) || !IsAlive(q)) return;
    AddToRegion(p);
    AddToRegion(q);
  });

  if (RunLocalizedUpdate() != kAnchoredTrussness) {
    for (const EdgeId r : region_) {
      if (sim_t_[r] != decomp_.trussness[r] ||
          sim_l_[r] != decomp_.layer[r]) {
        CommitEdgeState(r, sim_t_[r], sim_l_[r], false);
      }
    }
  }
  RecomputeMaxTrussness();
  return decomp_.trussness[e];
}

StatusOr<EdgeId> IncrementalTruss::InsertEdge(VertexId u, VertexId v) {
  const EdgeId e = g_->FindEdge(u, v);
  if (e == kInvalidEdge) {
    return Status::NotFound(
        "InsertEdge: the topology has no {" + std::to_string(u) + ", " +
        std::to_string(v) +
        "} slot; materialize a new snapshot with Graph::ApplyEdits");
  }
  if (IsAlive(e)) {
    return Status::FailedPrecondition(
        "InsertEdge: edge {" + std::to_string(u) + ", " + std::to_string(v) +
        "} is already alive");
  }
  InsertEdge(e);
  return e;
}

uint64_t IncrementalTruss::RemoveEdge(EdgeId e) {
  ATR_CHECK(e < g_->NumEdges());
  ATR_CHECK_MSG(IsAlive(e), "RemoveEdge: edge was already removed");
  ATR_CHECK_MSG(!anchored_[e], "RemoveEdge: cannot remove an anchored edge");
  ++stats_.edges_removed;

  const uint32_t old_t = decomp_.trussness[e];
  const uint64_t others_before = total_trussness_ - old_t;

  ++region_pass_;
  region_.clear();
  // Every partner of a standing triangle through `e` loses support at all
  // phases up to e's old removal time, which can pull any of them down;
  // seed them all (gather before the edge dies).
  ForEachTriangleOfEdge(*g_, e, [&](VertexId, EdgeId p, EdgeId q) {
    if (!IsAlive(p) || !IsAlive(q)) return;
    AddToRegion(p);
    AddToRegion(q);
  });

  CommitEdgeState(e, kTrussnessNotComputed, 0, /*anchored=*/false);
  if (RunLocalizedUpdate() != kAnchoredTrussness) {
    for (const EdgeId r : region_) {
      if (sim_t_[r] != decomp_.trussness[r] ||
          sim_l_[r] != decomp_.layer[r]) {
        CommitEdgeState(r, sim_t_[r], sim_l_[r], false);
      }
    }
  }
  RecomputeMaxTrussness();
  return others_before - total_trussness_;
}

}  // namespace atr
