// AtrEngine — session facade over one graph.
//
// An engine owns a Graph plus the lazily-computed, cached anchor-free
// truss decomposition (a SolverContext), and runs any registered solver
// against that shared state:
//
//   AtrEngine engine(std::move(graph));
//   StatusOr<SolveResult> gas = engine.Run("gas", options);
//   StatusOr<SolveResult> akt = engine.Run("akt:5", options);  // reuses
//                                                 // the cached decomposition
//
// Budget sweeps (the paper's Fig. 5/6/8 experiments) run one solve at the
// largest budget and report every intermediate checkpoint:
//
//   StatusOr<SolveResult> sweep = engine.RunSweep("gas", {20, 40, 60});
//
// Engines are single-session objects: not thread-safe, cheap to create
// (nothing is computed until a solver needs it).

#ifndef ATR_API_ENGINE_H_
#define ATR_API_ENGINE_H_

#include <string>
#include <vector>

#include "api/solver.h"
#include "graph/graph.h"
#include "util/status.h"

namespace atr {

class AtrEngine {
 public:
  // Owning: the engine holds the graph for its lifetime.
  explicit AtrEngine(Graph graph)
      : owned_graph_(std::move(graph)),
        graph_(&owned_graph_),
        context_(owned_graph_) {}

  // Borrowing: `graph` must outlive the engine (benchmark DatasetInstances
  // already own one). `decomposition` primes the cache with a precomputed
  // anchor-free decomposition, so the engine never recomputes it.
  AtrEngine(const Graph& graph, TrussDecomposition decomposition);

  // Engines hold a self-referencing context; copying/moving is disabled.
  AtrEngine(const AtrEngine&) = delete;
  AtrEngine& operator=(const AtrEngine&) = delete;

  const Graph& graph() const { return *graph_; }

  // Creates solver `name` via SolverRegistry and solves against the shared
  // context. Errors (unknown name, invalid options) flow back as Status.
  StatusOr<SolveResult> Run(const std::string& solver,
                            const SolverOptions& options);

  // One solve at checkpoints.back() reporting the gain at every
  // checkpoint (SolveResult::gain_at_checkpoint). `options.budget` and
  // `options.budget_checkpoints` are overwritten from `checkpoints`.
  StatusOr<SolveResult> RunSweep(const std::string& solver,
                                 const std::vector<uint32_t>& checkpoints,
                                 SolverOptions options = {});

  // Cached shared state (computed on first use).
  const TrussDecomposition& Decomposition() { return context_.Decomposition(); }
  uint32_t MaxTrussness() { return context_.MaxTrussness(); }

  // Cache instrumentation, forwarded from the context.
  uint32_t decomposition_builds() const {
    return context_.decomposition_builds();
  }
  uint32_t decomposition_reuses() const {
    return context_.decomposition_reuses();
  }

 private:
  Graph owned_graph_;    // empty in borrowing mode
  const Graph* graph_;   // &owned_graph_, or the borrowed graph
  SolverContext context_;
};

}  // namespace atr

#endif  // ATR_API_ENGINE_H_
