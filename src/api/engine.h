// AtrEngine — session facade over one graph.
//
// An engine owns a Graph plus the lazily-computed, cached anchor-free
// truss decomposition (a SolverContext), and runs any registered solver
// against that shared state:
//
//   AtrEngine engine(std::move(graph));
//   StatusOr<SolveResult> gas = engine.Run("gas", options);
//   StatusOr<SolveResult> akt = engine.Run("akt:5", options);  // reuses
//                                                 // the cached decomposition
//
// Budget sweeps (the paper's Fig. 5/6/8 experiments) run one solve at the
// largest budget and report every intermediate checkpoint:
//
//   StatusOr<SolveResult> sweep = engine.RunSweep("gas", {20, 40, 60});
//
// Mutable session mode: anchors can be committed (and edges removed)
// directly on the engine. The cached decomposition is NOT invalidated —
// it is updated in place by the incremental maintenance engine
// (truss/incremental.h), and later greedy solver runs start from the
// committed state:
//
//   StatusOr<uint32_t> gain = engine.ApplyAnchor(e);   // trussness gain
//   AtrEngine::SessionCheckpoint cp = engine.MarkRollbackPoint();
//   engine.ApplyAnchor(f);                              // speculate...
//   engine.RollbackTo(cp);                              // ...and undo
//   StatusOr<SolveResult> more = engine.Run("gas", options);  // residual
//
// Engines are single-session objects: not thread-safe, cheap to create
// (nothing is computed until a solver needs it). For many concurrent
// callers against a few shared graphs, use AtrService (api/service.h): it
// serves every job from one immutable snapshot per graph and hands out
// engines like this one as copy-on-write session checkouts.

#ifndef ATR_API_ENGINE_H_
#define ATR_API_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "api/solver.h"
#include "graph/graph.h"
#include "truss/incremental.h"
#include "util/status.h"

namespace atr {

class AtrEngine {
 public:
  // Owning: the engine holds the graph for its lifetime.
  explicit AtrEngine(Graph graph)
      : owned_graph_(std::move(graph)),
        graph_(&owned_graph_),
        context_(owned_graph_) {}

  // Borrowing: `graph` must outlive the engine (benchmark DatasetInstances
  // already own one). `decomposition` primes the cache with a precomputed
  // anchor-free decomposition, so the engine never recomputes it.
  AtrEngine(const Graph& graph, TrussDecomposition decomposition);

  // Snapshot checkout (AtrService::CheckoutSession): the engine keeps the
  // shared graph alive and primes its cache with the shared immutable
  // decomposition — nothing is copied until the first mutable-session
  // commit, which copy-on-writes the decomposition into the session's
  // incremental engine. Readers of the originating snapshot are never
  // blocked or affected.
  AtrEngine(std::shared_ptr<const Graph> graph,
            SharedTrussDecomposition decomposition);

  // Engines hold a self-referencing context; copying/moving is disabled.
  AtrEngine(const AtrEngine&) = delete;
  AtrEngine& operator=(const AtrEngine&) = delete;

  const Graph& graph() const { return *graph_; }

  // Creates solver `name` via SolverRegistry and solves against the shared
  // context. Errors (unknown name, invalid options) flow back as Status.
  StatusOr<SolveResult> Run(const std::string& solver,
                            const SolverOptions& options);

  // One solve at checkpoints.back() reporting the gain at every
  // checkpoint (SolveResult::gain_at_checkpoint). `options.budget` and
  // `options.budget_checkpoints` are overwritten from `checkpoints`.
  StatusOr<SolveResult> RunSweep(const std::string& solver,
                                 const std::vector<uint32_t>& checkpoints,
                                 SolverOptions options = {});

  // Cached shared state (computed on first use). In mutable session mode
  // this reflects every committed mutation without ever being rebuilt.
  const TrussDecomposition& Decomposition() { return context_.Decomposition(); }
  uint32_t MaxTrussness() { return context_.MaxTrussness(); }

  // --- Mutable session mode ---------------------------------------------
  // Commits `e` as an anchor of the session graph; the cached decomposition
  // is updated incrementally. Returns the trussness gain of the commit.
  // Errors (out of range, removed, already anchored) flow back as Status.
  StatusOr<uint32_t> ApplyAnchor(EdgeId e);

  // Removes edge `e` from the session graph (its trussness reads
  // kTrussnessNotComputed afterwards). Returns the total trussness lost by
  // the other edges.
  StatusOr<uint64_t> RemoveEdge(EdgeId e);

  // Streaming arrival: (re-)inserts edge {u, v} into the session graph.
  // The topology must have a slot for it (kNotFound otherwise — only
  // edges removed earlier in the session, or pre-declared dead by a
  // primed subset decomposition, can arrive; new topology needs a new
  // snapshot via Graph::ApplyEdits / AtrService::UpdateGraph). A failed
  // probe leaves the engine pristine (HasSessionMutations() stays false).
  // Returns the trussness the inserted edge settles at.
  StatusOr<uint32_t> InsertEdge(VertexId u, VertexId v);

  // Undo-log cursor over the session mutations. MarkRollbackPoint() before
  // any mutation returns the pristine checkpoint (0); RollbackTo() restores
  // the session state byte-identically.
  using SessionCheckpoint = IncrementalTruss::Checkpoint;
  SessionCheckpoint MarkRollbackPoint() const;
  Status RollbackTo(SessionCheckpoint checkpoint);

  // Whether any session mutation was ever committed (a rolled-back session
  // still counts: non-greedy solvers reject it conservatively).
  bool HasSessionMutations() const { return session_ != nullptr; }

  // The incremental engine backing the session (stats, anchor mask, alive
  // set); nullptr before the first mutation.
  const IncrementalTruss* session() const { return session_.get(); }

  // Cache instrumentation, forwarded from the context.
  uint32_t decomposition_builds() const {
    return context_.decomposition_builds();
  }
  uint32_t decomposition_reuses() const {
    return context_.decomposition_reuses();
  }

 private:
  // Creates the session engine from the cached decomposition and binds it
  // to the context (idempotent).
  IncrementalTruss& EnsureSession();

  Graph owned_graph_;    // empty in borrowing / snapshot mode
  std::shared_ptr<const Graph> shared_graph_;  // snapshot-checkout keep-alive
  const Graph* graph_;   // &owned_graph_, the borrowed graph, or the snapshot
  SolverContext context_;
  std::unique_ptr<IncrementalTruss> session_;
};

}  // namespace atr

#endif  // ATR_API_ENGINE_H_
