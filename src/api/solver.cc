#include "api/solver.h"

#include <string>

namespace atr {

const TrussDecomposition& SolverContext::Decomposition() {
  if (session_decomposition_ != nullptr) {
    // The bound session's incrementally maintained state IS the cache; it
    // was seeded from it and stays valid across commits.
    ++decomposition_reuses_;
    return *session_decomposition_;
  }
  if (decomposition_ == nullptr) {
    decomposition_ = ComputeSharedTrussDecomposition(*graph_);
    ++decomposition_builds_;
  } else {
    ++decomposition_reuses_;
  }
  return *decomposition_;
}

SharedTrussDecomposition SolverContext::SharedDecomposition() {
  ATR_CHECK_MSG(session_decomposition_ == nullptr,
                "SharedDecomposition: a bound mutable session is updated in "
                "place and cannot be shared as an immutable snapshot");
  Decomposition();  // build on first use; counts as build or reuse
  return decomposition_;
}

void SolverContext::BindSession(const TrussDecomposition* decomposition,
                                const std::vector<bool>* anchors) {
  ATR_CHECK((decomposition == nullptr) == (anchors == nullptr));
  session_decomposition_ = decomposition;
  session_anchors_ = anchors;
  // The session state supersedes the context's own copy permanently; free
  // it rather than keeping a stale O(|E|) duplicate alive.
  if (decomposition != nullptr) decomposition_.reset();
}

uint32_t SolverContext::MaxTrussness() { return Decomposition().max_trussness; }

void SolverContext::PrimeDecomposition(TrussDecomposition decomposition) {
  decomposition_ =
      std::make_shared<const TrussDecomposition>(std::move(decomposition));
}

void SolverContext::PrimeDecomposition(SharedTrussDecomposition decomposition) {
  ATR_CHECK(decomposition != nullptr);
  decomposition_ = std::move(decomposition);
}

namespace {

Status ValidateOptionsWithBudgetLimit(const Graph& g,
                                      const SolverOptions& options,
                                      uint32_t budget_limit,
                                      const char* limit_name);

}  // namespace

Status ValidateSolverOptions(const Graph& g, const SolverOptions& options) {
  return ValidateOptionsWithBudgetLimit(g, options, g.NumEdges(), "|E|");
}

Status ValidateVertexSolverOptions(const Graph& g,
                                   const SolverOptions& options) {
  return ValidateOptionsWithBudgetLimit(g, options, g.NumVertices(), "|V|");
}

namespace {

Status ValidateOptionsWithBudgetLimit(const Graph& g,
                                      const SolverOptions& options,
                                      uint32_t budget_limit,
                                      const char* limit_name) {
  if (g.NumEdges() == 0) {
    return Status::InvalidArgument("solver options: graph has no edges");
  }
  if (options.budget < 1 || options.budget > budget_limit) {
    return Status::InvalidArgument(
        "solver options: budget must satisfy 1 <= budget <= " +
        std::string(limit_name) + " (budget = " +
        std::to_string(options.budget) + ", " + limit_name + " = " +
        std::to_string(budget_limit) + ")");
  }
  const std::vector<uint32_t>& cps = options.budget_checkpoints;
  if (!cps.empty()) {
    for (size_t i = 1; i < cps.size(); ++i) {
      if (cps[i] <= cps[i - 1]) {
        return Status::InvalidArgument(
            "solver options: budget_checkpoints must be strictly ascending");
      }
    }
    if (cps.front() < 1) {
      return Status::InvalidArgument(
          "solver options: budget_checkpoints must start at >= 1");
    }
    if (cps.back() != options.budget) {
      return Status::InvalidArgument(
          "solver options: the last checkpoint (" +
          std::to_string(cps.back()) + ") must equal budget (" +
          std::to_string(options.budget) + ")");
    }
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("solver options: threads must be >= 0");
  }
  if (options.wall_clock_limit_seconds < 0.0) {
    return Status::InvalidArgument(
        "solver options: wall_clock_limit_seconds must be >= 0");
  }
  return Status::Ok();
}

}  // namespace

std::vector<uint32_t> EffectiveCheckpoints(const SolverOptions& options) {
  if (!options.budget_checkpoints.empty()) return options.budget_checkpoints;
  return {options.budget};
}

StatusOr<SolveResult> Solver::Solve(const Graph& g,
                                    const SolverOptions& options) const {
  SolverContext context(g);
  return Solve(context, options);
}

}  // namespace atr
