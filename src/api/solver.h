// Unified solver API for the ATR problem family.
//
// Every selection algorithm in the repository — the greedy family (BASE,
// BASE+, GAS), the exhaustive Exact solver, the randomized baselines
// (Rand/Sup/Tur), and the AKT vertex-anchoring baseline — is exposed as an
// atr::Solver behind one options struct and one result struct, so benches,
// examples, and services call every algorithm the same way:
//
//   StatusOr<std::unique_ptr<Solver>> solver = SolverRegistry::Create("gas");
//   SolverOptions options;
//   options.budget = 100;
//   StatusOr<SolveResult> result = (*solver)->Solve(graph, options);
//
// Solvers validate their inputs and report recoverable failures through
// atr::Status; they never abort on bad options. Long-running solves can be
// observed and cancelled through SolverOptions::progress / ::cancel, and
// bounded with ::wall_clock_limit_seconds.
//
// SolverContext carries the lazily-computed, cached anchor-free truss
// decomposition of a graph. AtrEngine (api/engine.h) keeps one context
// alive across Run() calls so cross-solver comparisons and budget sweeps
// (the paper's Fig. 5/6/8, Table III/V experiments) share that state
// instead of recomputing it per call.

#ifndef ATR_API_SOLVER_H_
#define ATR_API_SOLVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/atr_problem.h"
#include "graph/graph.h"
#include "truss/decomposition.h"
#include "util/status.h"

namespace atr {

// Progress event delivered to SolverOptions::progress after each completed
// round of a round-based solver (greedy family, AKT). Exact emits one
// event per finished checkpoint; the randomized baselines emit a single
// completion event (their trials run as one parallel batch, though the
// cancel flag and wall-clock limit are still checked between trials).
struct SolveProgress {
  std::string solver;          // registry name of the running solver
  uint32_t round = 0;          // 1-based round / checkpoint just completed
  uint32_t budget = 0;         // effective budget of the run
  uint64_t total_gain = 0;     // cumulative trussness gain so far
  double elapsed_seconds = 0.0;
};

// Options shared by every solver. Fields a solver does not use are
// ignored (e.g. `trials` outside the randomized baselines); fields it does
// use are validated and rejected with InvalidArgument when out of range.
struct SolverOptions {
  // Number of anchors to select. Must satisfy 1 <= budget <= |E| (AKT:
  // <= |V|).
  uint32_t budget = 1;
  // Optional ascending budgets at which the gain is additionally reported
  // in SolveResult::gain_at_checkpoint. When empty, {budget} is used. When
  // provided, checkpoints must be strictly ascending, start at >= 1, and
  // end exactly at `budget`.
  std::vector<uint32_t> budget_checkpoints;
  // Randomized baselines: deterministic stream seed and number of
  // independent draws (best draw is reported, as in the paper's Exp-1).
  uint64_t seed = 1;
  uint32_t trials = 100;
  // When positive, round-based solvers stop before the next round once the
  // elapsed wall clock exceeds this; the result is a valid greedy prefix
  // with stopped_early set.
  double wall_clock_limit_seconds = 0.0;
  // Worker threads for the parallel inner loops, including the truss
  // decomposition itself (the round-synchronous parallel peel is
  // byte-identical to the serial result at every thread count, so results
  // never depend on this setting); 0 keeps the process-wide default
  // (ATR_THREADS env, else hardware concurrency).
  int threads = 0;
  // Greedy family only (base/base+/gas): maintain the truss decomposition
  // across rounds with truss/incremental.h instead of recomputing it after
  // every committed anchor (BASE additionally evaluates candidates by
  // speculative apply/rollback). Results are identical to the
  // full-recompute path; ignored by the other solvers.
  bool use_incremental = false;
  // Decomposition kernel selection (truss/plan.h). The solver adapters
  // install this as the thread's ambient plan for the whole Solve call, so
  // the lazy SolverContext::Decomposition build and every nested subset
  // recompute inside the objective engines dispatch through it. Every plan
  // is byte-identical to the serial oracle, so — like `threads` — this
  // never changes a result.
  DecompositionPlan plan = DecompositionPlan::Default();
  // Called after every round/checkpoint; returning false cancels the run
  // (result is the prefix selected so far, stopped_early set).
  std::function<bool(const SolveProgress&)> progress;
  // When non-null, setting the flag to true cancels the run between
  // rounds/checkpoints.
  const std::atomic<bool>* cancel = nullptr;
};

// Unified result. Exactly one of anchor_edges / anchor_vertices is
// populated (AKT anchors vertices; everything else anchors edges).
struct SolveResult {
  std::string solver;  // registry name of the solver that produced this

  std::vector<EdgeId> anchor_edges;       // in selection order
  std::vector<VertexId> anchor_vertices;  // AKT only, in selection order
  // One record per selected anchor for the edge-greedy solvers
  // (base/base+/gas): marginal gain, cumulative timing, GAS reuse
  // classification, follower trussness. AnchorRound is edge-typed, so AKT
  // leaves this empty and reports its per-round cumulative gains through
  // gain_at_checkpoint instead.
  std::vector<AnchorRound> rounds;
  uint64_t total_gain = 0;  // TG(A, G) of the full selection

  // Gain at each effective checkpoint (options.budget_checkpoints, or
  // {budget}): greedy/AKT report prefix gains of the one run, randomized
  // baselines the best draw per prefix, Exact one exhaustive run per
  // checkpoint.
  std::vector<uint64_t> gain_at_checkpoint;

  double seconds = 0.0;       // wall-clock time of the whole solve
  bool stopped_early = false; // cancelled / wall-clock limit hit

  // Solver-specific extras (zero elsewhere):
  uint64_t subsets_evaluated = 0;  // Exact: anchor sets scored
  uint32_t trials = 0;             // randomized: draws performed
  // GAS: reuse classification totals over all rounds (Exp-8).
  uint64_t fully_reusable = 0;
  uint64_t partially_reusable = 0;
  uint64_t non_reusable = 0;
};

// Shared per-graph state handed to solvers: the graph plus its
// lazily-computed, cached anchor-free truss decomposition. The context
// never recomputes: the first accessor call builds, every later call
// reuses (instrumented via decomposition_builds / decomposition_reuses,
// which the cache tests assert on).
//
// The cached decomposition is held through a SharedTrussDecomposition
// handle, so contexts can be forked cheaply from one immutable snapshot:
// the service layer (api/service.h) computes a graph's decomposition once
// and primes a fresh per-job context with the shared handle for every
// concurrent solve. A context itself is single-job state (the counters and
// lazy build are unsynchronized) — share the snapshot, not the context.
//
// The referenced Graph must outlive the context.
class SolverContext {
 public:
  explicit SolverContext(const Graph& g) : graph_(&g) {}

  const Graph& graph() const { return *graph_; }

  // Anchor-free decomposition of the graph; built on first call.
  const TrussDecomposition& Decomposition();
  // max_trussness of Decomposition() (builds it when needed).
  uint32_t MaxTrussness();

  // Shared handle to the cached decomposition (builds it when needed).
  // Stays valid after the context is destroyed.
  SharedTrussDecomposition SharedDecomposition();

  // Whether the cache already holds a decomposition (primed or built) —
  // probes that must not trigger the lazy build branch on this first.
  bool HasCachedDecomposition() const { return decomposition_ != nullptr; }

  // Seeds the cache with a precomputed anchor-free decomposition of the
  // graph; later Decomposition() calls count as reuses, not builds. The
  // shared overload adopts an existing immutable snapshot without copying
  // — the per-job fork path.
  void PrimeDecomposition(TrussDecomposition decomposition);
  void PrimeDecomposition(SharedTrussDecomposition decomposition);

  // Binds a mutable session (api/engine.h): `decomposition` and `anchors`
  // are the engine's incrementally maintained state and must outlive the
  // binding. While bound, Decomposition() serves the session decomposition
  // (still counted as reuses — it is the same cached state, updated in
  // place) and session_anchors() exposes the committed anchor mask that
  // greedy solvers start from. Pass nullptrs to unbind.
  void BindSession(const TrussDecomposition* decomposition,
                   const std::vector<bool>* anchors);
  bool has_session() const { return session_decomposition_ != nullptr; }
  // Committed anchors of the bound session; nullptr when no session is
  // bound (solvers then start from an anchor-free graph).
  const std::vector<bool>* session_anchors() const { return session_anchors_; }

  // Cache instrumentation: how many times the decomposition was computed
  // (at most 1) vs. served from cache.
  uint32_t decomposition_builds() const { return decomposition_builds_; }
  uint32_t decomposition_reuses() const { return decomposition_reuses_; }

 private:
  const Graph* graph_;
  SharedTrussDecomposition decomposition_;
  const TrussDecomposition* session_decomposition_ = nullptr;
  const std::vector<bool>* session_anchors_ = nullptr;
  uint32_t decomposition_builds_ = 0;
  uint32_t decomposition_reuses_ = 0;
};

// Validates the fields of `options` every solver agrees on: budget within
// [1, |E|], checkpoints (when provided) strictly ascending within [1,
// budget] and ending at `budget`, threads >= 0. Solver-specific fields
// (trials) are validated by the solver itself.
Status ValidateSolverOptions(const Graph& g, const SolverOptions& options);

// Variant for vertex-anchoring solvers (AKT): the budget is bounded by |V|
// instead of |E|.
Status ValidateVertexSolverOptions(const Graph& g,
                                   const SolverOptions& options);

// The checkpoint list a solve reports on: options.budget_checkpoints, or
// {options.budget} when none were requested.
std::vector<uint32_t> EffectiveCheckpoints(const SolverOptions& options);

// The solver interface. Implementations are stateless and cheap to create;
// all per-run state lives in the SolverContext and on the stack.
class Solver {
 public:
  virtual ~Solver() = default;

  // Registry name of this solver ("gas", "akt:5", ...).
  virtual std::string Name() const = 0;

  // Solves against shared context state (preferred: AtrEngine keeps one
  // context per graph so the decomposition is computed once).
  virtual StatusOr<SolveResult> Solve(SolverContext& context,
                                      const SolverOptions& options) const = 0;

  // One-shot convenience: solves with a throwaway context.
  StatusOr<SolveResult> Solve(const Graph& g,
                              const SolverOptions& options) const;
};

}  // namespace atr

#endif  // ATR_API_SOLVER_H_
