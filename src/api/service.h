// AtrService — thread-safe multi-graph service layer with async solve jobs.
//
// The engine facade (api/engine.h) is a single-session object: every
// concurrent caller needs a private AtrEngine and pays for (or copies) a
// private truss decomposition. AtrService is the layer above it for the
// read-mostly serving shape — many queries against a few shared graphs:
//
//   AtrService service;                      // worker pool + graph catalog
//   service.AddGraph("social", std::move(g));
//
//   SolverOptions options;
//   options.budget = 50;
//   StatusOr<JobHandle> job = service.Submit("social", "gas", options);
//   ...                                      // do other work, poll progress
//   StatusOr<SolveResult> result = job->Wait();
//
// One decomposition per graph, ever: the first job against a graph builds
// its anchor-free truss decomposition (std::call_once), every later job —
// no matter how many run concurrently — forks a cheap per-job SolverContext
// primed with the same immutable SharedTrussDecomposition snapshot. Results
// are byte-identical to a serial AtrEngine::Run because solver results
// never depend on scheduling or thread count (see docs/API.md, threading
// and determinism).
//
// Jobs are asynchronous: Submit enqueues onto a bounded FairScheduler
// (util/scheduler.h) whose workers split the machine's thread budget with
// the solvers' inner ParallelFor loops, and returns a JobHandle with
// Wait() / TryGet() / Cancel() and a polled Progress() snapshot.
//
// Sharding: with Options::shards = N, the catalog and the scheduler are
// split into N independent shards keyed by hash(graph name) — unrelated
// graphs never contend on one mutex or one queue. Fair-share dispatch is
// per shard: every Submit may carry a SubmitOptions{tenant, priority},
// and each shard's scheduler serves tenants with weighted deficit
// round-robin so a flooding tenant cannot starve a light one.
//
// Batch fusion: compatible queued jobs — same graph version, same solver
// (greedy family or exact), same use_incremental/threads, and no
// caller-owned progress/cancel/wall-clock hooks — coalesce into one
// solver run. One greedy walk at the max budget serves every member as a
// prefix; one exact enumeration per distinct checkpoint budget serves all
// members' sweeps. Each member's SolveResult is carved out exactly as if
// it had run alone (the scheduler differential tests assert
// byte-identity), and decomposition_builds still moves at most once per
// graph version.
//
// Mutations never touch served snapshots: CheckoutSession hands out a
// private AtrEngine primed with the shared snapshot; its first committed
// mutation copies the decomposition into the session (copy-on-write), so
// readers are never blocked. RemoveGraph only unlists a graph — jobs and
// checkouts in flight keep the snapshot alive through their shared_ptr.
//
// Streaming updates are VERSIONED snapshots: UpdateGraph(name, delta)
// applies a GraphDelta through Graph::ApplyEdits and publishes a new
// immutable snapshot whose decomposition is seeded from the previous
// version via the edge-id remap plus incremental truss maintenance
// (truss/incremental.h) — never a from-scratch rebuild, so
// GraphInfo::decomposition_builds does not move on a delta update. Jobs
// pin the version that was current when they were submitted; Submits after
// UpdateGraph returns see the new version, and old versions stay alive
// while any job, checkout, or caller-held GraphSnapshot references them.
//
// Thread-safety: every AtrService and JobHandle method may be called from
// any thread. JobHandle is a cheap shared-state handle; copies observe the
// same job.

#ifndef ATR_API_SERVICE_H_
#define ATR_API_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/solver.h"
#include "graph/graph.h"
#include "truss/decomposition.h"
#include "util/mutex.h"
#include "util/scheduler.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace atr {

// Immutable per-graph state served to jobs. Both pointers are read-only
// snapshots; holding a GraphSnapshot keeps them alive across RemoveGraph
// and across any number of later UpdateGraph versions.
struct GraphSnapshot {
  std::shared_ptr<const Graph> graph;
  SharedTrussDecomposition decomposition;
  // 1 for the AddGraph snapshot, bumped by every successful UpdateGraph.
  uint64_t version = 1;
};

using JobId = uint64_t;

namespace internal {
struct JobState;
}  // namespace internal

// Handle to one submitted solve job. Default-constructed handles are empty
// (valid() is false; accessors return errors / zero values).
class JobHandle {
 public:
  enum class State {
    kQueued,     // waiting for a pool worker
    kRunning,    // solver in flight
    kDone,       // result available (ok, solver error, or stopped_early)
    kCancelled,  // cancelled before the solver started; result is kCancelled
  };

  JobHandle() = default;

  bool valid() const { return state_ != nullptr; }
  JobId id() const;
  const std::string& graph_name() const;
  const std::string& solver_name() const;

  State state() const;
  bool Done() const;  // kDone or kCancelled

  // Blocks until the job finishes and returns its result. A job cancelled
  // before it started returns kCancelled; a job cancelled mid-solve
  // returns ok with SolveResult::stopped_early set and a valid prefix.
  StatusOr<SolveResult> Wait();

  // Non-blocking: the result when the job has finished, nullopt otherwise.
  std::optional<StatusOr<SolveResult>> TryGet() const;

  // Requests cancellation: a queued job completes as kCancelled without
  // running; a running job observes the flag at its solver's native
  // granularity (between rounds / checkpoints / trials) and finishes with
  // stopped_early. Returns false when the job had already finished.
  bool Cancel();

  // Latest progress event (zero-valued before the first round completes).
  SolveProgress Progress() const;

 private:
  friend class AtrService;
  explicit JobHandle(std::shared_ptr<internal::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::JobState> state_;
};

class AtrService {
 public:
  struct Options {
    // Concurrent solve jobs. 0 = min(4, this thread's worker budget).
    int workers = 0;
    // Bounded pending-job queue: Submit blocks while this many jobs wait
    // (backpressure). 0 = 4x workers.
    size_t queue_capacity = 0;
    // Inner-loop ParallelFor budget per job; 0 splits the submitting
    // thread's budget evenly across the workers so job-level concurrency
    // and data parallelism compose without oversubscription. A job whose
    // SolverOptions::threads is set still overrides this for its own run.
    int threads_per_job = 0;
    // Independent catalog + scheduler shards keyed by hash(graph name).
    // `workers` and `queue_capacity` are totals, split evenly across the
    // shards (at least 1 worker / 1 slot each). 1 (the default) is the
    // pre-sharding single-queue behavior.
    int shards = 1;
    // Most compatible jobs one batch may fuse into a single solver run.
    // 1 disables batch fusion entirely.
    size_t max_batch = 8;
  };

  // Fair-share identity of one Submit. Tenants are created on first use;
  // "" is the default tenant (still fair-shared against named ones).
  // Higher priority runs first within a tenant; tenants are isolated from
  // each other's priorities by the deficit round-robin.
  struct SubmitOptions {
    std::string tenant;
    int priority = 0;
    // When set, overrides SolverOptions::plan for this job — the wire
    // layer's submit-scoped decomposition-plan selection (protocol rev 3).
    // The effective plan governs the snapshot's lazy decomposition build
    // and partitions the fusion batch key, so jobs with different plans
    // never fuse.
    std::optional<DecompositionPlan> plan;
  };

  AtrService() : AtrService(Options()) {}
  explicit AtrService(const Options& options);

  // Drains: every submitted job runs (or completes as cancelled) before
  // the workers join.
  ~AtrService();

  AtrService(const AtrService&) = delete;
  AtrService& operator=(const AtrService&) = delete;

  // --- Graph catalog ------------------------------------------------------

  // Registers `graph` under `name`. The decomposition is NOT computed here;
  // the first job (or Snapshot/CheckoutSession call) builds it, exactly
  // once. Fails with kFailedPrecondition when the name is taken.
  Status AddGraph(const std::string& name, Graph graph);
  Status AddGraph(const std::string& name, std::shared_ptr<const Graph> graph);

  // Restore path (src/persist/): registers `name` at `version` with a
  // decomposition that was already computed in a previous process life.
  // The version is born built — decomposition_builds stays 0, and the
  // acceptance tests assert a restarted server serves its whole catalog
  // without a single rebuild. `delta_chain_length` seeds the compaction
  // counter (deltas replayed on top of the restored base add to it).
  // Fails with kFailedPrecondition when the name is taken and
  // kInvalidArgument when the decomposition's shape does not match the
  // graph's edge count.
  Status RestoreGraph(const std::string& name,
                      std::shared_ptr<const Graph> graph,
                      TrussDecomposition decomposition, uint64_t version,
                      uint64_t delta_chain_length = 0);

  // Unlists `name`. Jobs and checkouts in flight keep the snapshot alive;
  // new Submits against the name fail with kNotFound.
  Status RemoveGraph(const std::string& name);

  // Registered names, sorted.
  std::vector<std::string> GraphNames() const;

  // The current shared snapshot for `name`, building the decomposition on
  // first use. Blocks only while that one build is in flight.
  StatusOr<GraphSnapshot> Snapshot(const std::string& name);

  // Publishes the next version of `name`: `delta` is applied through
  // Graph::ApplyEdits, and the new snapshot's decomposition is seeded from
  // the previous version across the edge-id remap, brought up to date with
  // incremental RemoveEdge/InsertEdge maintenance — decomposition_builds
  // does NOT increment (a never-used graph pays its one lazy build first).
  // In-flight jobs, checkouts, and held snapshots keep the version they
  // pinned; Submits after this returns see the new one. Delta validation
  // errors (kInvalidArgument, see Graph::ApplyEdits) leave the current
  // version untouched. Concurrent updates to one graph serialize.
  StatusOr<GraphSnapshot> UpdateGraph(const std::string& name,
                                      const GraphDelta& delta);

  // Durability hook: when set, UpdateGraph invokes the listener AFTER the
  // next version is fully materialized but BEFORE it is published — i.e.
  // write-ahead semantics: a listener failure aborts the update (the error
  // is returned, the current version stays), so a version is never served
  // that the log does not cover. Invoked under the per-graph update lock,
  // so calls for one graph arrive in version order, exactly once each.
  // The persistence layer (persist/catalog.h) appends the delta record
  // here. Pass nullptr to clear.
  using UpdateListener = std::function<Status(
      const std::string& name, uint64_t new_version, const GraphDelta& delta)>;
  void SetUpdateListener(UpdateListener listener);

  // Compaction hook (persist/catalog.h): resets the delta-chain counter
  // after the chain was folded into a fresh base snapshot, so
  // GraphInfo::delta_chain_length reports the deltas since the LAST base,
  // not since AddGraph. Without compaction the chain grows without bound —
  // the counter is how operators (and the regression tests) see it.
  Status ResetDeltaChain(const std::string& name);

  struct GraphInfo {
    std::string name;
    // Counts of the CURRENT version's topology.
    uint32_t num_vertices = 0;
    uint32_t num_edges = 0;
    // Times the service built a decomposition for this graph from scratch:
    // 0 before first use, 1 forever after — delta updates seed the next
    // version incrementally and never add to it (the acceptance tests
    // assert it never reaches 2).
    uint32_t decomposition_builds = 0;
    // max_trussness of the current snapshot; 0 while it is unbuilt.
    uint32_t max_trussness = 0;
    // Current snapshot version (1 = the AddGraph snapshot) and the number
    // of UpdateGraph publications since this process registered the graph
    // (== version - version_at_registration).
    uint64_t version = 1;
    uint64_t delta_updates = 0;
    // Deltas accumulated since the last base snapshot (ResetDeltaChain).
    // Grows with every UpdateGraph; compaction folds the chain into a new
    // base and resets it. Unbounded growth here means nobody compacts.
    uint64_t delta_chain_length = 0;
    uint64_t jobs_submitted = 0;
  };
  StatusOr<GraphInfo> Info(const std::string& name) const;

  // --- Async jobs ---------------------------------------------------------

  // Enqueues `solver_name` against graph `graph_name`. Unknown graph /
  // solver names fail synchronously (kNotFound / kInvalidArgument); option
  // validation errors surface in the JobHandle result. Blocks while the
  // pending queue is full. `options.cancel` stays under the caller's
  // control and is additionally observed at progress-event granularity;
  // `options.progress` is invoked from the worker thread.
  StatusOr<JobHandle> Submit(const std::string& graph_name,
                             const std::string& solver_name,
                             const SolverOptions& options);

  // Submit with a completion hook: `done` is invoked exactly once, from
  // the worker thread, after the job's result became observable (Wait/
  // TryGet return it). A job cancelled before running still invokes it.
  // The networked front end uses this to push Wait responses instead of
  // blocking a thread per pending job.
  StatusOr<JobHandle> Submit(const std::string& graph_name,
                             const std::string& solver_name,
                             const SolverOptions& options,
                             std::function<void()> done);

  // Submit under a fair-share identity (tenant + priority).
  StatusOr<JobHandle> Submit(const std::string& graph_name,
                             const std::string& solver_name,
                             const SolverOptions& options,
                             const SubmitOptions& submit,
                             std::function<void()> done = nullptr);

  // Non-blocking admission-controlled Submit: where Submit would block on
  // a full pending queue, this rejects with kResourceExhausted (the
  // server layer turns that into a structured retry-after response).
  StatusOr<JobHandle> TrySubmit(const std::string& graph_name,
                                const std::string& solver_name,
                                const SolverOptions& options,
                                std::function<void()> done = nullptr);
  StatusOr<JobHandle> TrySubmit(const std::string& graph_name,
                                const std::string& solver_name,
                                const SolverOptions& options,
                                const SubmitOptions& submit,
                                std::function<void()> done = nullptr);

  // Dispatch weight of `tenant` on every shard (default 1; 0 clamps to 1).
  void SetTenantWeight(const std::string& tenant, uint32_t weight);

  // Pending + running jobs for one tenant, summed over the shards — the
  // signal behind the server's per-tenant retry-after estimate.
  size_t TenantLoad(const std::string& tenant) const;

  // Pending + running jobs / pending-queue capacity / worker count —
  // the load signals behind the server's retry-after estimate. All three
  // are totals summed over the shards.
  size_t QueueLoad() const;
  size_t QueueCapacity() const;
  int Workers() const;
  int Shards() const { return static_cast<int>(shards_.size()); }

  // Scheduler counters summed over the shards. jobs_executed counts
  // individual jobs, batches_executed counts solver dispatches; the gap
  // between them is the work batch fusion saved. jobs_fused counts jobs
  // that rode in a batch of more than one.
  struct SchedulerStats {
    uint64_t jobs_executed = 0;
    uint64_t batches_executed = 0;
    uint64_t jobs_fused = 0;
  };
  SchedulerStats Stats() const;

  // Blocks until every job submitted so far has finished.
  void Drain();

  // --- Mutable sessions ---------------------------------------------------

  // A private single-session engine primed with the shared snapshot.
  // Commits copy-on-write into the session; the served snapshot and other
  // checkouts are unaffected, and no reader is ever blocked.
  StatusOr<std::unique_ptr<AtrEngine>> CheckoutSession(
      const std::string& graph_name);

 private:
  struct GraphVersion;
  struct CatalogEntry;

  // One catalog + scheduler shard. The scheduler is declared after the
  // catalog so shard destruction drains and joins its workers before the
  // catalog entries go away (running jobs additionally pin their entry
  // through shared_ptrs).
  struct Shard {
    mutable Mutex mu;
    std::map<std::string, std::shared_ptr<CatalogEntry>> catalog
        ATR_GUARDED_BY(mu);
    std::unique_ptr<FairScheduler> scheduler;
  };

  // Shared Submit/TrySubmit implementation; `blocking` picks the queue
  // entry point (blocking backpressure vs kResourceExhausted reject).
  StatusOr<JobHandle> SubmitInternal(const std::string& graph_name,
                                     const std::string& solver_name,
                                     const SolverOptions& options,
                                     const SubmitOptions& submit,
                                     std::function<void()> done,
                                     bool blocking);

  Shard& ShardFor(const std::string& name) const;
  // Registers `entry` under `name` in its shard (the AddGraph /
  // RestoreGraph tail); fails when the name is taken.
  Status InsertEntry(const std::string& name, const char* what,
                     std::shared_ptr<CatalogEntry> entry);

  // The entry for `name`, or nullptr (caller turns that into kNotFound).
  std::shared_ptr<CatalogEntry> FindEntry(const std::string& name) const;

  // Builds the version's decomposition exactly once (counted on the entry)
  // and returns its snapshot.
  static GraphSnapshot SnapshotOf(CatalogEntry& entry, GraphVersion& version);

  // Scheduler entry point: singleton batches run the classic RunJob path,
  // fused batches one shared solver walk carved per member.
  static void RunBatch(std::vector<FairScheduler::Job> batch);
  static void RunJob(const std::shared_ptr<internal::JobState>& state);
  static void RunFusedGreedy(
      const std::vector<std::shared_ptr<internal::JobState>>& members);
  static void RunFusedExact(
      const std::vector<std::shared_ptr<internal::JobState>>& members);

  std::atomic<JobId> next_job_id_{1};
  mutable Mutex listener_mu_;
  std::shared_ptr<const UpdateListener> update_listener_
      ATR_GUARDED_BY(listener_mu_);

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace atr

#endif  // ATR_API_SERVICE_H_
