#include "api/engine.h"

#include <memory>
#include <utility>

#include "api/registry.h"

namespace atr {

AtrEngine::AtrEngine(const Graph& graph, TrussDecomposition decomposition)
    : graph_(&graph), context_(graph) {
  context_.PrimeDecomposition(std::move(decomposition));
}

AtrEngine::AtrEngine(std::shared_ptr<const Graph> graph,
                     SharedTrussDecomposition decomposition)
    : shared_graph_(std::move(graph)),
      graph_(shared_graph_.get()),
      context_(*shared_graph_) {
  context_.PrimeDecomposition(std::move(decomposition));
}

StatusOr<SolveResult> AtrEngine::Run(const std::string& solver,
                                     const SolverOptions& options) {
  StatusOr<std::unique_ptr<Solver>> instance = SolverRegistry::Create(solver);
  if (!instance.ok()) return instance.status();
  return (*instance)->Solve(context_, options);
}

StatusOr<SolveResult> AtrEngine::RunSweep(
    const std::string& solver, const std::vector<uint32_t>& checkpoints,
    SolverOptions options) {
  if (checkpoints.empty()) {
    return Status::InvalidArgument("RunSweep: checkpoints must be non-empty");
  }
  options.budget = checkpoints.back();
  options.budget_checkpoints = checkpoints;
  return Run(solver, options);
}

IncrementalTruss& AtrEngine::EnsureSession() {
  if (session_ == nullptr) {
    // Seed from the cached decomposition (a build if this is the first
    // consumer, a reuse otherwise); from here on the session keeps that
    // state current in place.
    session_ = std::make_unique<IncrementalTruss>(*graph_,
                                                  context_.Decomposition());
    context_.BindSession(&session_->decomposition(), &session_->anchored());
  }
  return *session_;
}

StatusOr<uint32_t> AtrEngine::ApplyAnchor(EdgeId e) {
  if (e >= graph_->NumEdges()) {
    return Status::InvalidArgument("ApplyAnchor: edge id out of range");
  }
  IncrementalTruss& session = EnsureSession();
  if (!session.IsAlive(e)) {
    return Status::InvalidArgument("ApplyAnchor: edge was removed");
  }
  if (session.IsAnchored(e)) {
    return Status::InvalidArgument("ApplyAnchor: edge is already anchored");
  }
  return session.ApplyAnchor(e);
}

StatusOr<uint64_t> AtrEngine::RemoveEdge(EdgeId e) {
  if (e >= graph_->NumEdges()) {
    return Status::InvalidArgument("RemoveEdge: edge id out of range");
  }
  IncrementalTruss& session = EnsureSession();
  if (!session.IsAlive(e)) {
    return Status::InvalidArgument("RemoveEdge: edge was already removed");
  }
  if (session.IsAnchored(e)) {
    return Status::InvalidArgument(
        "RemoveEdge: anchored edges cannot be removed");
  }
  return session.RemoveEdge(e);
}

AtrEngine::SessionCheckpoint AtrEngine::MarkRollbackPoint() const {
  return session_ == nullptr ? SessionCheckpoint{}
                             : session_->MarkRollbackPoint();
}

Status AtrEngine::RollbackTo(SessionCheckpoint checkpoint) {
  if (session_ == nullptr) {
    if (checkpoint.position != 0) {
      return Status::InvalidArgument("RollbackTo: unknown checkpoint");
    }
    return Status::Ok();
  }
  if (!session_->IsValidCheckpoint(checkpoint)) {
    // Out of range, or invalidated by a deeper rollback after which the
    // log regrew — restoring it would land mid-mutation.
    return Status::InvalidArgument(
        "RollbackTo: stale or unknown session checkpoint");
  }
  session_->RollbackTo(checkpoint);
  return Status::Ok();
}

}  // namespace atr
