#include "api/engine.h"

#include <memory>
#include <utility>

#include "api/registry.h"

namespace atr {

AtrEngine::AtrEngine(const Graph& graph, TrussDecomposition decomposition)
    : graph_(&graph), context_(graph) {
  context_.PrimeDecomposition(std::move(decomposition));
}

AtrEngine::AtrEngine(std::shared_ptr<const Graph> graph,
                     SharedTrussDecomposition decomposition)
    : shared_graph_(std::move(graph)),
      graph_(shared_graph_.get()),
      context_(*shared_graph_) {
  context_.PrimeDecomposition(std::move(decomposition));
}

StatusOr<SolveResult> AtrEngine::Run(const std::string& solver,
                                     const SolverOptions& options) {
  StatusOr<std::unique_ptr<Solver>> instance = SolverRegistry::Create(solver);
  if (!instance.ok()) return instance.status();
  return (*instance)->Solve(context_, options);
}

StatusOr<SolveResult> AtrEngine::RunSweep(
    const std::string& solver, const std::vector<uint32_t>& checkpoints,
    SolverOptions options) {
  if (checkpoints.empty()) {
    return Status::InvalidArgument("RunSweep: checkpoints must be non-empty");
  }
  options.budget = checkpoints.back();
  options.budget_checkpoints = checkpoints;
  return Run(solver, options);
}

IncrementalTruss& AtrEngine::EnsureSession() {
  if (session_ == nullptr) {
    // Seed from the cached decomposition (a build if this is the first
    // consumer, a reuse otherwise); from here on the session keeps that
    // state current in place.
    session_ = std::make_unique<IncrementalTruss>(*graph_,
                                                  context_.Decomposition());
    context_.BindSession(&session_->decomposition(), &session_->anchored());
  }
  return *session_;
}

StatusOr<uint32_t> AtrEngine::ApplyAnchor(EdgeId e) {
  if (e >= graph_->NumEdges()) {
    return Status::InvalidArgument("ApplyAnchor: edge id out of range");
  }
  IncrementalTruss& session = EnsureSession();
  if (!session.IsAlive(e)) {
    return Status::InvalidArgument("ApplyAnchor: edge was removed");
  }
  if (session.IsAnchored(e)) {
    return Status::InvalidArgument("ApplyAnchor: edge is already anchored");
  }
  return session.ApplyAnchor(e);
}

StatusOr<uint64_t> AtrEngine::RemoveEdge(EdgeId e) {
  if (e >= graph_->NumEdges()) {
    return Status::InvalidArgument("RemoveEdge: edge id out of range");
  }
  IncrementalTruss& session = EnsureSession();
  if (!session.IsAlive(e)) {
    return Status::InvalidArgument("RemoveEdge: edge was already removed");
  }
  if (session.IsAnchored(e)) {
    return Status::InvalidArgument(
        "RemoveEdge: anchored edges cannot be removed");
  }
  return session.RemoveEdge(e);
}

StatusOr<uint32_t> AtrEngine::InsertEdge(VertexId u, VertexId v) {
  // A pristine engine rejects failed probes without creating a session:
  // the documented fall-back-to-ApplyEdits flow must not pay the
  // session's decomposition copy or mark the engine as mutated for later
  // solvers. Without a session the edge is alive unless a primed
  // decomposition seeds it dead (the pre-declared-arrival flow) — and a
  // never-built cache cannot seed anything dead, so the probe never
  // triggers the lazy build either.
  if (session_ == nullptr) {
    const EdgeId e = graph_->FindEdge(u, v);
    if (e == kInvalidEdge) {
      return Status::NotFound(
          "InsertEdge: the topology has no {" + std::to_string(u) + ", " +
          std::to_string(v) +
          "} slot; materialize a new snapshot with Graph::ApplyEdits");
    }
    if (!context_.HasCachedDecomposition() ||
        context_.Decomposition().IsComputed(e)) {
      return Status::FailedPrecondition(
          "InsertEdge: edge {" + std::to_string(u) + ", " +
          std::to_string(v) + "} is already alive");
    }
  }
  StatusOr<EdgeId> inserted = EnsureSession().InsertEdge(u, v);
  if (!inserted.ok()) return inserted.status();
  return session_->decomposition().trussness[*inserted];
}

AtrEngine::SessionCheckpoint AtrEngine::MarkRollbackPoint() const {
  return session_ == nullptr ? SessionCheckpoint{}
                             : session_->MarkRollbackPoint();
}

Status AtrEngine::RollbackTo(SessionCheckpoint checkpoint) {
  if (session_ == nullptr) {
    if (checkpoint.position != 0) {
      return Status::InvalidArgument("RollbackTo: unknown checkpoint");
    }
    return Status::Ok();
  }
  if (!session_->IsValidCheckpoint(checkpoint)) {
    // Out of range, or invalidated by a deeper rollback after which the
    // log regrew — restoring it would land mid-mutation.
    return Status::InvalidArgument(
        "RollbackTo: stale or unknown session checkpoint");
  }
  session_->RollbackTo(checkpoint);
  return Status::Ok();
}

}  // namespace atr
