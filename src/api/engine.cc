#include "api/engine.h"

#include <memory>
#include <utility>

#include "api/registry.h"

namespace atr {

AtrEngine::AtrEngine(const Graph& graph, TrussDecomposition decomposition)
    : graph_(&graph), context_(graph) {
  context_.PrimeDecomposition(std::move(decomposition));
}

StatusOr<SolveResult> AtrEngine::Run(const std::string& solver,
                                     const SolverOptions& options) {
  StatusOr<std::unique_ptr<Solver>> instance = SolverRegistry::Create(solver);
  if (!instance.ok()) return instance.status();
  return (*instance)->Solve(context_, options);
}

StatusOr<SolveResult> AtrEngine::RunSweep(
    const std::string& solver, const std::vector<uint32_t>& checkpoints,
    SolverOptions options) {
  if (checkpoints.empty()) {
    return Status::InvalidArgument("RunSweep: checkpoints must be non-empty");
  }
  options.budget = checkpoints.back();
  options.budget_checkpoints = checkpoints;
  return Run(solver, options);
}

}  // namespace atr
