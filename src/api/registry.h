// String-keyed factory for the unified solvers (api/solver.h).
//
// Built-in names:
//   "base"    — greedy with brute-force gain computation (Algorithm 2)
//   "base+"   — greedy with upward-route follower search (paper §IV)
//   "gas"     — greedy with follower search + component-tree reuse (Alg. 6)
//   "exact"   — exhaustive b-subset enumeration (Exp-2)
//   "rand"    — best of N uniform draws over all edges
//   "sup"     — best of N draws over the top-20% edges by support
//   "tur"     — best of N draws over the top-20% edges by route size
//   "akt:<k>" — AKT vertex anchoring at level k (Zhang et al., ICDE 2018),
//               e.g. "akt:5"; k must be an integer >= 3
//
// Additional solvers can be registered at runtime (Register /
// RegisterPrefix); names are case-sensitive and registration of a taken
// name replaces the previous factory.
//
// Thread-safety: all four entry points may be called concurrently from any
// thread. The registry state is mutex-protected and the builtin set is
// installed through std::call_once on first lookup, so concurrent
// first-touch Create calls each see the full builtin table
// (tests/api_test.cc, Registry.ConcurrentCreateAndRegisterAreSafe).
// Factories themselves run outside the lock and must be thread-safe if
// shared.

#ifndef ATR_API_REGISTRY_H_
#define ATR_API_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/solver.h"
#include "util/status.h"

namespace atr {

class SolverRegistry {
 public:
  // Receives the full requested name (so prefix factories can parse their
  // parameter, e.g. the k of "akt:5").
  using Factory =
      std::function<StatusOr<std::unique_ptr<Solver>>(const std::string&)>;

  // Creates the solver registered under `name`. Exact-name matches win;
  // otherwise the longest matching registered prefix handles the name.
  // Unknown names return NotFound listing the known solvers; malformed
  // parameterized names (e.g. "akt:x") return InvalidArgument.
  static StatusOr<std::unique_ptr<Solver>> Create(const std::string& name);

  // The registered names, sorted; prefix entries are listed with a
  // "<k>"-style placeholder (e.g. "akt:<k>").
  static std::vector<std::string> KnownSolvers();

  // Registers `factory` under an exact name / a name prefix.
  static void Register(const std::string& name, Factory factory);
  static void RegisterPrefix(const std::string& prefix, Factory factory);
};

}  // namespace atr

#endif  // ATR_API_REGISTRY_H_
