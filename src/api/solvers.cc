// Built-in solver adapters: every legacy entry point (RunBaseGreedy,
// RunBasePlus, RunGas, RunExact, RunRandomBaseline, RunAkt) wrapped behind
// the unified Solver interface and registered with SolverRegistry.

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/solver.h"
#include "core/akt.h"
#include "core/base_greedy.h"
#include "core/base_plus.h"
#include "core/exact.h"
#include "core/gas.h"
#include "core/random_baselines.h"
#include "truss/plan.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace atr {
namespace {

bool CancelRequested(const SolverOptions& options) {
  return options.cancel != nullptr &&
         options.cancel->load(std::memory_order_relaxed);
}

// The greedy family starts from a mutable session's committed anchors; the
// other solvers have no notion of pre-existing anchors or removed edges and
// would silently solve the wrong problem.
Status RejectMutatedSession(const SolverContext& context,
                            const std::string& name) {
  if (context.has_session()) {
    return Status::FailedPrecondition(
        name +
        ": engine sessions with committed mutations are only supported by "
        "the greedy solvers (base, base+, gas)");
  }
  return Status::Ok();
}

// Wires SolverOptions into the core GreedyControl: cancel flag and
// wall-clock limit pass through; the progress callback (when set) is
// adapted from GreedyProgress to SolveProgress under `name`. The returned
// control captures `options` by reference — it must not outlive the Solve
// call.
GreedyControl MakeRoundControl(std::string name,
                               const SolverOptions& options) {
  GreedyControl control;
  control.cancel = options.cancel;
  control.wall_clock_limit_seconds = options.wall_clock_limit_seconds;
  if (options.progress) {
    control.on_round = [name = std::move(name),
                        &options](const GreedyProgress& progress) {
      SolveProgress event;
      event.solver = name;
      event.round = progress.round;
      event.budget = progress.budget;
      event.total_gain = progress.total_gain;
      event.elapsed_seconds = progress.elapsed_seconds;
      return options.progress(event);
    };
  }
  return control;
}

// Gains of the greedy prefixes at each checkpoint (a budget-b greedy run
// reports every intermediate budget for free — the paper's Fig. 6 sweeps).
std::vector<uint64_t> PrefixGains(const std::vector<AnchorRound>& rounds,
                                  const std::vector<uint32_t>& checkpoints) {
  std::vector<uint64_t> gains;
  gains.reserve(checkpoints.size());
  for (uint32_t c : checkpoints) {
    uint64_t gain = 0;
    for (size_t r = 0; r < rounds.size() && r < c; ++r) {
      gain += rounds[r].gain;
    }
    gains.push_back(gain);
  }
  return gains;
}

// BASE / BASE+ / GAS behind one adapter: identical contract, different
// gain-computation engine (they must produce identical anchor sequences —
// the api tests re-assert this through the registry).
class GreedySolver : public Solver {
 public:
  enum class Kind { kBase, kBasePlus, kGas };

  GreedySolver(std::string name, Kind kind)
      : name_(std::move(name)), kind_(kind) {}

  std::string Name() const override { return name_; }

  StatusOr<SolveResult> Solve(SolverContext& context,
                              const SolverOptions& options) const override {
    const Graph& g = context.graph();
    Status status = ValidateSolverOptions(g, options);
    if (!status.ok()) return status;

    ScopedParallelism parallelism(options.threads);
    ScopedDecompositionPlan plan_scope(options.plan);
    GreedyControl control = MakeRoundControl(name_, options);
    control.use_incremental = options.use_incremental;

    // Round 1 of every greedy equals the cached decomposition — the
    // anchor-free one, or the mutable session's incrementally maintained
    // state, whose committed anchors the run then builds on.
    const TrussDecomposition& seed = context.Decomposition();
    const std::vector<bool>* initial_anchors = context.session_anchors();
    WallTimer timer;
    AnchorResult run;
    switch (kind_) {
      case Kind::kBase:
        run = RunBaseGreedy(g, options.budget, &control, &seed,
                            initial_anchors);
        break;
      case Kind::kBasePlus:
        run = RunBasePlus(g, options.budget, &control, &seed,
                          initial_anchors);
        break;
      case Kind::kGas:
        run = RunGas(g, options.budget, &control, &seed, initial_anchors);
        break;
    }

    SolveResult result;
    result.solver = name_;
    result.anchor_edges = std::move(run.anchors);
    result.rounds = std::move(run.rounds);
    result.total_gain = run.total_gain;
    result.stopped_early = run.stopped_early;
    result.seconds = timer.ElapsedSeconds();
    for (const AnchorRound& round : result.rounds) {
      result.fully_reusable += round.fully_reusable;
      result.partially_reusable += round.partially_reusable;
      result.non_reusable += round.non_reusable;
    }
    result.gain_at_checkpoint =
        PrefixGains(result.rounds, EffectiveCheckpoints(options));
    return result;
  }

 private:
  std::string name_;
  Kind kind_;
};

// Exact enumeration. Checkpoints are independent exhaustive runs (a
// b-subset optimum is not a prefix of a (b+1)-subset optimum), which is
// exactly the Fig. 5 usage: RunSweep("exact", {1, 2, 3}). Cancellation and
// the wall-clock limit are checked between checkpoints only — a checkpoint
// in flight always completes.
class ExactSolver : public Solver {
 public:
  std::string Name() const override { return "exact"; }

  StatusOr<SolveResult> Solve(SolverContext& context,
                              const SolverOptions& options) const override {
    const Graph& g = context.graph();
    Status status = ValidateSolverOptions(g, options);
    if (!status.ok()) return status;
    status = RejectMutatedSession(context, Name());
    if (!status.ok()) return status;

    ScopedParallelism parallelism(options.threads);
    ScopedDecompositionPlan plan_scope(options.plan);
    // Fetch the shared decomposition before the timer so `seconds` means
    // the same thing for every adapter: solve time on warm shared state.
    const TrussDecomposition& base = context.Decomposition();
    WallTimer timer;
    SolveResult result;
    result.solver = Name();
    const std::vector<uint32_t> checkpoints = EffectiveCheckpoints(options);
    for (size_t c = 0; c < checkpoints.size(); ++c) {
      if (CancelRequested(options) ||
          (options.wall_clock_limit_seconds > 0.0 && c > 0 &&
           timer.ElapsedSeconds() >= options.wall_clock_limit_seconds)) {
        result.stopped_early = true;
        break;
      }
      const ExactResult exact = RunExact(g, checkpoints[c], &base);
      result.gain_at_checkpoint.push_back(exact.gain);
      result.subsets_evaluated += exact.subsets_evaluated;
      result.anchor_edges = exact.anchors;
      result.total_gain = exact.gain;
      if (options.progress) {
        SolveProgress event;
        event.solver = Name();
        event.round = static_cast<uint32_t>(c + 1);
        event.budget = options.budget;
        event.total_gain = exact.gain;
        event.elapsed_seconds = timer.ElapsedSeconds();
        if (!options.progress(event)) {
          result.stopped_early = true;
          break;
        }
      }
    }
    result.seconds = timer.ElapsedSeconds();
    return result;
  }
};

// Rand / Sup / Tur randomized baselines (best of `trials` draws).
class RandomSolver : public Solver {
 public:
  RandomSolver(std::string name, RandomPoolKind kind)
      : name_(std::move(name)), kind_(kind) {}

  std::string Name() const override { return name_; }

  StatusOr<SolveResult> Solve(SolverContext& context,
                              const SolverOptions& options) const override {
    const Graph& g = context.graph();
    Status status = ValidateSolverOptions(g, options);
    if (!status.ok()) return status;
    status = RejectMutatedSession(context, name_);
    if (!status.ok()) return status;

    ScopedParallelism parallelism(options.threads);
    ScopedDecompositionPlan plan_scope(options.plan);
    // Trials are not rounds: only the cancel flag and wall-clock limit
    // apply (checked between trials on every worker).
    GreedyControl control;
    control.cancel = options.cancel;
    control.wall_clock_limit_seconds = options.wall_clock_limit_seconds;
    const TrussDecomposition& base = context.Decomposition();
    WallTimer timer;
    StatusOr<RandomBaselineResult> run = RunRandomBaseline(
        g, base, kind_, EffectiveCheckpoints(options), options.trials,
        options.seed, &control);
    if (!run.ok()) return run.status();

    SolveResult result;
    result.solver = name_;
    result.anchor_edges = std::move(run->best_anchors);
    result.total_gain = run->best_gain;
    result.gain_at_checkpoint = std::move(run->gain_at_checkpoint);
    result.trials = run->trials;
    result.stopped_early = run->stopped_early;
    result.seconds = timer.ElapsedSeconds();
    if (options.progress) {
      SolveProgress event;
      event.solver = name_;
      event.round = static_cast<uint32_t>(result.gain_at_checkpoint.size());
      event.budget = options.budget;
      event.total_gain = result.total_gain;
      event.elapsed_seconds = result.seconds;
      options.progress(event);  // run already finished; result unaffected
    }
    return result;
  }

 private:
  std::string name_;
  RandomPoolKind kind_;
};

// AKT vertex anchoring at a fixed level k ("akt:<k>").
class AktSolver : public Solver {
 public:
  explicit AktSolver(uint32_t k) : k_(k) {}

  std::string Name() const override { return "akt:" + std::to_string(k_); }

  StatusOr<SolveResult> Solve(SolverContext& context,
                              const SolverOptions& options) const override {
    const Graph& g = context.graph();
    Status status = ValidateVertexSolverOptions(g, options);
    if (!status.ok()) return status;
    status = RejectMutatedSession(context, Name());
    if (!status.ok()) return status;

    ScopedParallelism parallelism(options.threads);
    ScopedDecompositionPlan plan_scope(options.plan);
    const GreedyControl control = MakeRoundControl(Name(), options);

    const TrussDecomposition& base = context.Decomposition();
    WallTimer timer;
    SolveResult result;
    result.solver = Name();
    const AktResult run = RunAkt(g, base, k_, options.budget, &control);
    result.anchor_vertices = run.anchors;
    result.total_gain = run.total_gain;
    result.stopped_early = run.stopped_early;
    for (uint32_t c : EffectiveCheckpoints(options)) {
      const uint64_t gain =
          run.gain_after.empty()
              ? 0
              : run.gain_after[std::min<size_t>(c, run.gain_after.size()) - 1];
      result.gain_at_checkpoint.push_back(gain);
    }
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

 private:
  uint32_t k_;
};

StatusOr<std::unique_ptr<Solver>> MakeAktSolver(const std::string& name) {
  // name is "akt:<k>"; the prefix match guarantees the "akt:" head.
  const std::string param = name.substr(4);
  if (param.empty() ||
      param.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument(
        "akt solver: expected \"akt:<k>\" with integer k >= 3, got \"" +
        name + "\"");
  }
  uint64_t k = 0;
  for (char ch : param) {
    k = k * 10 + static_cast<uint64_t>(ch - '0');
    if (k > 0xffffffffu) {
      return Status::InvalidArgument("akt solver: k out of range in \"" +
                                     name + "\"");
    }
  }
  if (k < 3) {
    return Status::InvalidArgument(
        "akt solver: k must satisfy 3 <= k (got \"" + name + "\")");
  }
  return std::unique_ptr<Solver>(
      std::make_unique<AktSolver>(static_cast<uint32_t>(k)));
}

}  // namespace

void EnsureBuiltinSolversRegistered() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto greedy = [](const char* name, GreedySolver::Kind kind) {
      SolverRegistry::Register(
          name, [name, kind](const std::string&)
                    -> StatusOr<std::unique_ptr<Solver>> {
            return std::unique_ptr<Solver>(
                std::make_unique<GreedySolver>(name, kind));
          });
    };
    greedy("base", GreedySolver::Kind::kBase);
    greedy("base+", GreedySolver::Kind::kBasePlus);
    greedy("gas", GreedySolver::Kind::kGas);

    SolverRegistry::Register(
        "exact",
        [](const std::string&) -> StatusOr<std::unique_ptr<Solver>> {
          return std::unique_ptr<Solver>(std::make_unique<ExactSolver>());
        });

    auto random = [](const char* name, RandomPoolKind kind) {
      SolverRegistry::Register(
          name, [name, kind](const std::string&)
                    -> StatusOr<std::unique_ptr<Solver>> {
            return std::unique_ptr<Solver>(
                std::make_unique<RandomSolver>(name, kind));
          });
    };
    random("rand", RandomPoolKind::kAllEdges);
    random("sup", RandomPoolKind::kTopSupport);
    random("tur", RandomPoolKind::kTopRouteSize);

    SolverRegistry::RegisterPrefix("akt:", MakeAktSolver);
  });
}

}  // namespace atr
