#include "api/service.h"

#include <atomic>
#include <condition_variable>
#include <utility>

#include "api/registry.h"

namespace atr {
namespace internal {

// Shared state behind one JobHandle. The submitting thread, the pool
// worker, and any number of handle copies coordinate through `mu`/`cv`;
// the cancel flag is the std::atomic the running solver polls between
// rounds, so Cancel() reaches mid-solve jobs without the mutex.
struct JobState {
  JobId id = 0;
  std::string graph_name;
  std::string solver_name;
  SolverOptions options;            // the caller's options, unmodified
  std::unique_ptr<Solver> solver;   // resolved at Submit time
  std::function<GraphSnapshot()> snapshot;  // service's build-once entry

  mutable std::mutex mu;
  std::condition_variable cv;
  JobHandle::State state = JobHandle::State::kQueued;   // guarded by mu
  std::optional<StatusOr<SolveResult>> result;          // guarded by mu
  SolveProgress progress;                               // guarded by mu
  std::atomic<bool> cancel{false};
};

}  // namespace internal

// --- JobHandle ------------------------------------------------------------

namespace {
const std::string kEmptyString;
}  // namespace

JobId JobHandle::id() const { return state_ == nullptr ? 0 : state_->id; }

const std::string& JobHandle::graph_name() const {
  return state_ == nullptr ? kEmptyString : state_->graph_name;
}

const std::string& JobHandle::solver_name() const {
  return state_ == nullptr ? kEmptyString : state_->solver_name;
}

JobHandle::State JobHandle::state() const {
  if (state_ == nullptr) return State::kQueued;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->state;
}

bool JobHandle::Done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->result.has_value();
}

StatusOr<SolveResult> JobHandle::Wait() {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("Wait: empty JobHandle");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->result.has_value(); });
  return *state_->result;
}

std::optional<StatusOr<SolveResult>> JobHandle::TryGet() const {
  if (state_ == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(state_->mu);
  if (!state_->result.has_value()) return std::nullopt;
  return *state_->result;
}

bool JobHandle::Cancel() {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->result.has_value()) return false;
  state_->cancel.store(true, std::memory_order_relaxed);
  return true;
}

SolveProgress JobHandle::Progress() const {
  if (state_ == nullptr) return SolveProgress{};
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->progress;
}

// --- AtrService -----------------------------------------------------------

// One catalog slot: the immutable graph plus its decomposition snapshot,
// built exactly once under `once`. `builds` is written with release order
// inside the call_once and read with acquire by Info(), so an observed 1
// implies a fully published `decomposition`.
struct AtrService::CatalogEntry {
  std::shared_ptr<const Graph> graph;
  std::once_flag once;
  SharedTrussDecomposition decomposition;
  std::atomic<uint32_t> builds{0};
  std::atomic<uint64_t> jobs_submitted{0};
};

AtrService::AtrService(const Options& options)
    : queue_(TaskQueue::Options{options.workers, options.queue_capacity,
                                options.threads_per_job}) {}

AtrService::~AtrService() = default;

Status AtrService::AddGraph(const std::string& name, Graph graph) {
  return AddGraph(name, std::make_shared<const Graph>(std::move(graph)));
}

Status AtrService::AddGraph(const std::string& name,
                            std::shared_ptr<const Graph> graph) {
  if (graph == nullptr) {
    return Status::InvalidArgument("AddGraph: graph must not be null");
  }
  auto entry = std::make_shared<CatalogEntry>();
  entry->graph = std::move(graph);
  std::lock_guard<std::mutex> lock(mu_);
  const bool inserted = catalog_.emplace(name, std::move(entry)).second;
  if (!inserted) {
    return Status::FailedPrecondition("AddGraph: graph \"" + name +
                                      "\" is already registered");
  }
  return Status::Ok();
}

Status AtrService::RemoveGraph(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (catalog_.erase(name) == 0) {
    return Status::NotFound("RemoveGraph: unknown graph \"" + name + "\"");
  }
  return Status::Ok();
}

std::vector<std::string> AtrService::GraphNames() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mu_);
  names.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) names.push_back(name);
  return names;
}

std::shared_ptr<AtrService::CatalogEntry> AtrService::FindEntry(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : it->second;
}

GraphSnapshot AtrService::SnapshotOf(CatalogEntry& entry) {
  std::call_once(entry.once, [&entry] {
    entry.decomposition = ComputeSharedTrussDecomposition(*entry.graph);
    entry.builds.store(1, std::memory_order_release);
  });
  return GraphSnapshot{entry.graph, entry.decomposition};
}

StatusOr<GraphSnapshot> AtrService::Snapshot(const std::string& name) {
  std::shared_ptr<CatalogEntry> entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("Snapshot: unknown graph \"" + name + "\"");
  }
  return SnapshotOf(*entry);
}

StatusOr<AtrService::GraphInfo> AtrService::Info(
    const std::string& name) const {
  std::shared_ptr<CatalogEntry> entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("Info: unknown graph \"" + name + "\"");
  }
  GraphInfo info;
  info.name = name;
  info.num_vertices = entry->graph->NumVertices();
  info.num_edges = entry->graph->NumEdges();
  info.decomposition_builds = entry->builds.load(std::memory_order_acquire);
  if (info.decomposition_builds > 0) {
    info.max_trussness = entry->decomposition->max_trussness;
  }
  info.jobs_submitted = entry->jobs_submitted.load(std::memory_order_relaxed);
  return info;
}

StatusOr<JobHandle> AtrService::Submit(const std::string& graph_name,
                                       const std::string& solver_name,
                                       const SolverOptions& options) {
  std::shared_ptr<CatalogEntry> entry = FindEntry(graph_name);
  if (entry == nullptr) {
    return Status::NotFound("Submit: unknown graph \"" + graph_name + "\"");
  }
  StatusOr<std::unique_ptr<Solver>> solver = SolverRegistry::Create(solver_name);
  if (!solver.ok()) return solver.status();

  auto state = std::make_shared<internal::JobState>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    state->id = next_job_id_++;
  }
  state->graph_name = graph_name;
  state->solver_name = solver_name;
  state->options = options;
  state->solver = std::move(*solver);
  state->snapshot = [entry] { return SnapshotOf(*entry); };
  entry->jobs_submitted.fetch_add(1, std::memory_order_relaxed);

  queue_.Submit([state] { RunJob(state); });
  return JobHandle(state);
}

void AtrService::Drain() { queue_.WaitIdle(); }

StatusOr<std::unique_ptr<AtrEngine>> AtrService::CheckoutSession(
    const std::string& graph_name) {
  std::shared_ptr<CatalogEntry> entry = FindEntry(graph_name);
  if (entry == nullptr) {
    return Status::NotFound("CheckoutSession: unknown graph \"" + graph_name +
                            "\"");
  }
  GraphSnapshot snapshot = SnapshotOf(*entry);
  return std::make_unique<AtrEngine>(std::move(snapshot.graph),
                                     std::move(snapshot.decomposition));
}

void AtrService::RunJob(const std::shared_ptr<internal::JobState>& state) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->cancel.load(std::memory_order_relaxed)) {
      state->state = JobHandle::State::kCancelled;
      state->result = StatusOr<SolveResult>(Status::Cancelled(
          "job " + std::to_string(state->id) + " (" + state->solver_name +
          " on \"" + state->graph_name + "\") cancelled before it started"));
      state->snapshot = nullptr;
      state->solver.reset();
      state->options = SolverOptions();
      state->cv.notify_all();
      return;
    }
    state->state = JobHandle::State::kRunning;
  }

  // Fork the per-job read path: a private context primed with the shared
  // immutable snapshot. The solver mutates only this context (counters)
  // and its own stack — the snapshot is never written.
  const GraphSnapshot snapshot = state->snapshot();
  SolverContext context(*snapshot.graph);
  context.PrimeDecomposition(snapshot.decomposition);

  // Rewire the control surface onto the job: the solver polls the job's
  // cancel flag (JobHandle::Cancel at native round/trial granularity), and
  // the progress chain records a pollable snapshot, relays a caller-owned
  // cancel flag, and forwards to the caller's callback.
  SolverOptions effective = state->options;
  const std::atomic<bool>* user_cancel = state->options.cancel;
  const std::function<bool(const SolveProgress&)> user_progress =
      state->options.progress;
  effective.cancel = &state->cancel;
  // A caller-owned flag already raised folds into the job flag now, so the
  // solver's own cancel polling (every solver checks it, including the
  // randomized trial loop) observes it from the first check; later raises
  // are relayed at progress-event granularity below.
  if (user_cancel != nullptr && user_cancel->load(std::memory_order_relaxed)) {
    state->cancel.store(true, std::memory_order_relaxed);
  }
  effective.progress = [state, user_cancel,
                        user_progress](const SolveProgress& event) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->progress = event;
    }
    if (user_cancel != nullptr &&
        user_cancel->load(std::memory_order_relaxed)) {
      state->cancel.store(true, std::memory_order_relaxed);
    }
    bool keep_going = true;
    if (user_progress) keep_going = user_progress(event);
    return keep_going && !state->cancel.load(std::memory_order_relaxed);
  };

  StatusOr<SolveResult> result = state->solver->Solve(context, effective);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->result = std::move(result);
    state->state = JobHandle::State::kDone;
    // Long-lived JobHandle copies must pin only the result, not the graph
    // snapshot, the solver, or the caller's closures.
    state->snapshot = nullptr;
    state->solver.reset();
    state->options = SolverOptions();
    state->cv.notify_all();
  }
}

}  // namespace atr
