#include "api/service.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <utility>
#include <vector>

#include "api/registry.h"
#include "core/exact.h"
#include "truss/incremental.h"
#include "truss/plan.h"
#include "util/mutex.h"
#include "util/parallel_for.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace atr {
namespace internal {

// Shared state behind one JobHandle. The submitting thread, the pool
// worker, and any number of handle copies coordinate through `mu`/`cv`;
// the cancel flag is the std::atomic the running solver polls between
// rounds, so Cancel() reaches mid-solve jobs without the mutex.
struct JobState {
  JobId id = 0;
  std::string graph_name;
  std::string solver_name;
  SolverOptions options;            // the caller's options, unmodified
  std::unique_ptr<Solver> solver;   // resolved at Submit time
  std::function<GraphSnapshot()> snapshot;  // service's build-once entry

  mutable Mutex mu;
  CondVar cv;
  JobHandle::State state ATR_GUARDED_BY(mu) = JobHandle::State::kQueued;
  std::optional<StatusOr<SolveResult>> result ATR_GUARDED_BY(mu);
  SolveProgress progress ATR_GUARDED_BY(mu);
  std::atomic<bool> cancel{false};
  // Completion hook (worker thread): taken out under mu when the result is
  // published, invoked after the lock drops so it may call handle methods.
  std::function<void()> on_done ATR_GUARDED_BY(mu);
};

// Publishes `result` as the job's terminal state and fires the completion
// hook outside the lock. Long-lived JobHandle copies must pin only the
// result, not the graph snapshot, the solver, or the caller's closures.
void PublishResult(const std::shared_ptr<JobState>& state,
                   StatusOr<SolveResult> result, JobHandle::State terminal) {
  std::function<void()> done;
  {
    MutexLock lock(&state->mu);
    state->result = std::move(result);
    state->state = terminal;
    state->snapshot = nullptr;
    state->solver.reset();
    state->options = SolverOptions();
    done = std::move(state->on_done);
    state->on_done = nullptr;
    state->cv.NotifyAll();
  }
  // Outside the lock: the hook may call JobHandle methods (TryGet sees the
  // result — it was published above).
  if (done) done();
}

void PublishCancelledBeforeStart(const std::shared_ptr<JobState>& state) {
  PublishResult(
      state,
      StatusOr<SolveResult>(Status::Cancelled(
          "job " + std::to_string(state->id) + " (" + state->solver_name +
          " on \"" + state->graph_name + "\") cancelled before it started")),
      JobHandle::State::kCancelled);
}

// Gains of the greedy prefixes at each checkpoint — must stay in lockstep
// with the PrefixGains helper the GreedySolver adapter applies to a solo
// run (api/solvers.cc), or fused results drift from the serial oracle.
std::vector<uint64_t> GreedyPrefixGains(const std::vector<AnchorRound>& rounds,
                                        const std::vector<uint32_t>& checkpoints) {
  std::vector<uint64_t> gains;
  gains.reserve(checkpoints.size());
  for (uint32_t c : checkpoints) {
    uint64_t gain = 0;
    for (size_t r = 0; r < rounds.size() && r < c; ++r) {
      gain += rounds[r].gain;
    }
    gains.push_back(gain);
  }
  return gains;
}

}  // namespace internal

// --- JobHandle ------------------------------------------------------------

namespace {
const std::string kEmptyString;
}  // namespace

JobId JobHandle::id() const { return state_ == nullptr ? 0 : state_->id; }

const std::string& JobHandle::graph_name() const {
  return state_ == nullptr ? kEmptyString : state_->graph_name;
}

const std::string& JobHandle::solver_name() const {
  return state_ == nullptr ? kEmptyString : state_->solver_name;
}

JobHandle::State JobHandle::state() const {
  if (state_ == nullptr) return State::kQueued;
  MutexLock lock(&state_->mu);
  return state_->state;
}

bool JobHandle::Done() const {
  if (state_ == nullptr) return false;
  MutexLock lock(&state_->mu);
  return state_->result.has_value();
}

StatusOr<SolveResult> JobHandle::Wait() {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("Wait: empty JobHandle");
  }
  MutexLock lock(&state_->mu);
  while (!state_->result.has_value()) state_->cv.Wait(state_->mu);
  return *state_->result;
}

std::optional<StatusOr<SolveResult>> JobHandle::TryGet() const {
  if (state_ == nullptr) return std::nullopt;
  MutexLock lock(&state_->mu);
  if (!state_->result.has_value()) return std::nullopt;
  return *state_->result;
}

bool JobHandle::Cancel() {
  if (state_ == nullptr) return false;
  MutexLock lock(&state_->mu);
  if (state_->result.has_value()) return false;
  state_->cancel.store(true, std::memory_order_relaxed);
  return true;
}

SolveProgress JobHandle::Progress() const {
  if (state_ == nullptr) return SolveProgress{};
  MutexLock lock(&state_->mu);
  return state_->progress;
}

// --- AtrService -----------------------------------------------------------

// One immutable snapshot version of a cataloged graph. The AddGraph
// version's decomposition is built lazily (exactly once, under `once`);
// UpdateGraph versions are born built — their decomposition is seeded
// eagerly and the once flag is consumed at construction. `built` is set
// with release order after `decomposition` is published and read with
// acquire by Info(), so an observed true implies a readable snapshot.
struct AtrService::GraphVersion {
  std::shared_ptr<const Graph> graph;
  uint64_t version = 1;
  std::once_flag once;
  SharedTrussDecomposition decomposition;
  std::atomic<bool> built{false};

  // Marks this version born built (UpdateGraph publications and restored
  // snapshots): the once flag is consumed here so SnapshotOf never counts
  // a build for it.
  void InstallPrebuilt(SharedTrussDecomposition prebuilt) {
    std::call_once(once, [this, &prebuilt] {
      decomposition = std::move(prebuilt);
      built.store(true, std::memory_order_release);
    });
  }
};

// One catalog slot: the chain of snapshot versions, of which `current` is
// the one new submits pin. `version_mu` guards the `current` pointer only
// (reads are brief); `update_mu` serializes whole UpdateGraph calls so
// concurrent updates to one graph cannot both seed from the same
// predecessor and lose one delta.
struct AtrService::CatalogEntry {
  mutable Mutex version_mu;
  std::shared_ptr<GraphVersion> current ATR_GUARDED_BY(version_mu);
  // Serializes whole UpdateGraph calls; guards no fields itself.
  Mutex update_mu;
  std::atomic<uint32_t> builds{0};
  std::atomic<uint64_t> delta_updates{0};
  // Deltas since the last base snapshot; compaction resets it.
  std::atomic<uint64_t> delta_chain{0};
  std::atomic<uint64_t> jobs_submitted{0};

  std::shared_ptr<GraphVersion> Current() const ATR_EXCLUDES(version_mu) {
    MutexLock lock(&version_mu);
    return current;
  }
};

AtrService::AtrService(const Options& options) {
  // Resolve the worker/capacity totals once (on the constructing thread,
  // whose ParallelFor budget is the one the pools must share), then split
  // them evenly across the shards.
  const int machine = ParallelWorkerCount();
  const int num_shards = std::max(1, options.shards);
  const int total_workers =
      options.workers > 0 ? options.workers : std::min(4, machine);
  const size_t total_capacity = options.queue_capacity > 0
                                    ? options.queue_capacity
                                    : static_cast<size_t>(4 * total_workers);
  FairScheduler::Options sched;
  sched.workers = std::max(1, total_workers / num_shards);
  sched.capacity = std::max<size_t>(
      1, total_capacity / static_cast<size_t>(num_shards));
  sched.threads_per_job = options.threads_per_job > 0
                              ? options.threads_per_job
                              : std::max(1, machine / total_workers);
  sched.max_batch = std::max<size_t>(1, options.max_batch);
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // The runner is stateless (payloads carry everything), so a shard
    // never dangles a reference to the service during teardown.
    shard->scheduler = std::make_unique<FairScheduler>(
        sched,
        [](std::vector<FairScheduler::Job> batch) {
          RunBatch(std::move(batch));
        });
    shards_.push_back(std::move(shard));
  }
}

AtrService::~AtrService() = default;

AtrService::Shard& AtrService::ShardFor(const std::string& name) const {
  return *shards_[std::hash<std::string>{}(name) % shards_.size()];
}

Status AtrService::InsertEntry(const std::string& name, const char* what,
                               std::shared_ptr<CatalogEntry> entry) {
  Shard& shard = ShardFor(name);
  MutexLock lock(&shard.mu);
  const bool inserted = shard.catalog.emplace(name, std::move(entry)).second;
  if (!inserted) {
    return Status::FailedPrecondition(std::string(what) + ": graph \"" + name +
                                      "\" is already registered");
  }
  return Status::Ok();
}

Status AtrService::AddGraph(const std::string& name, Graph graph) {
  return AddGraph(name, std::make_shared<const Graph>(std::move(graph)));
}

Status AtrService::AddGraph(const std::string& name,
                            std::shared_ptr<const Graph> graph) {
  if (graph == nullptr) {
    return Status::InvalidArgument("AddGraph: graph must not be null");
  }
  auto entry = std::make_shared<CatalogEntry>();
  entry->current = std::make_shared<GraphVersion>();
  entry->current->graph = std::move(graph);
  return InsertEntry(name, "AddGraph", std::move(entry));
}

Status AtrService::RestoreGraph(const std::string& name,
                                std::shared_ptr<const Graph> graph,
                                TrussDecomposition decomposition,
                                uint64_t version,
                                uint64_t delta_chain_length) {
  if (graph == nullptr) {
    return Status::InvalidArgument("RestoreGraph: graph must not be null");
  }
  if (decomposition.trussness.size() != graph->NumEdges() ||
      decomposition.layer.size() != graph->NumEdges()) {
    return Status::InvalidArgument(
        "RestoreGraph: decomposition shape does not match the graph (" +
        std::to_string(decomposition.trussness.size()) + " trussness / " +
        std::to_string(decomposition.layer.size()) + " layer entries for " +
        std::to_string(graph->NumEdges()) + " edges)");
  }
  if (version == 0) {
    return Status::InvalidArgument("RestoreGraph: version must be >= 1");
  }
  auto entry = std::make_shared<CatalogEntry>();
  entry->current = std::make_shared<GraphVersion>();
  entry->current->graph = std::move(graph);
  entry->current->version = version;
  entry->current->InstallPrebuilt(
      std::make_shared<TrussDecomposition>(std::move(decomposition)));
  entry->delta_chain.store(delta_chain_length, std::memory_order_relaxed);
  return InsertEntry(name, "RestoreGraph", std::move(entry));
}

void AtrService::SetUpdateListener(UpdateListener listener) {
  MutexLock lock(&listener_mu_);
  update_listener_ =
      listener ? std::make_shared<const UpdateListener>(std::move(listener))
               : nullptr;
}

Status AtrService::ResetDeltaChain(const std::string& name) {
  std::shared_ptr<CatalogEntry> entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("ResetDeltaChain: unknown graph \"" + name + "\"");
  }
  entry->delta_chain.store(0, std::memory_order_relaxed);
  return Status::Ok();
}

Status AtrService::RemoveGraph(const std::string& name) {
  Shard& shard = ShardFor(name);
  MutexLock lock(&shard.mu);
  if (shard.catalog.erase(name) == 0) {
    return Status::NotFound("RemoveGraph: unknown graph \"" + name + "\"");
  }
  return Status::Ok();
}

std::vector<std::string> AtrService::GraphNames() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (const auto& [name, entry] : shard->catalog) names.push_back(name);
  }
  // Each shard map is sorted, but names hash across shards arbitrarily.
  std::sort(names.begin(), names.end());
  return names;
}

std::shared_ptr<AtrService::CatalogEntry> AtrService::FindEntry(
    const std::string& name) const {
  Shard& shard = ShardFor(name);
  MutexLock lock(&shard.mu);
  auto it = shard.catalog.find(name);
  return it == shard.catalog.end() ? nullptr : it->second;
}

GraphSnapshot AtrService::SnapshotOf(CatalogEntry& entry,
                                     GraphVersion& version) {
  std::call_once(version.once, [&entry, &version] {
    version.decomposition = ComputeSharedTrussDecomposition(*version.graph);
    entry.builds.fetch_add(1, std::memory_order_relaxed);
    version.built.store(true, std::memory_order_release);
  });
  return GraphSnapshot{version.graph, version.decomposition, version.version};
}

StatusOr<GraphSnapshot> AtrService::Snapshot(const std::string& name) {
  std::shared_ptr<CatalogEntry> entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("Snapshot: unknown graph \"" + name + "\"");
  }
  std::shared_ptr<GraphVersion> version = entry->Current();
  return SnapshotOf(*entry, *version);
}

StatusOr<GraphSnapshot> AtrService::UpdateGraph(const std::string& name,
                                                const GraphDelta& delta) {
  std::shared_ptr<CatalogEntry> entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("UpdateGraph: unknown graph \"" + name + "\"");
  }
  // One update at a time per graph; Submits/Snapshots stay lock-free with
  // respect to this (they only graze version_mu to read `current`).
  MutexLock update_lock(&entry->update_mu);
  std::shared_ptr<GraphVersion> prev = entry->Current();

  // Validate the delta before anything expensive: a rejected delta must
  // not force the predecessor's lazy decomposition build.
  StatusOr<GraphEditResult> edited = prev->graph->ApplyEdits(delta);
  if (!edited.ok()) return edited.status();

  // Seeding needs the predecessor's decomposition; a graph updated before
  // any job ever touched it pays its single lazy build here.
  const GraphSnapshot prev_snapshot = SnapshotOf(*entry, *prev);

  auto next_graph = std::make_shared<const Graph>(std::move(edited->graph));
  const uint32_t next_m = next_graph->NumEdges();

  // Retire the delta-removed edges on the OLD topology first: the carried
  // (t, l) state must describe exactly the surviving edge set before it
  // can be re-homed under the new edge ids.
  const TrussDecomposition* carried_source = prev_snapshot.decomposition.get();
  std::unique_ptr<IncrementalTruss> retire;
  std::vector<EdgeId> removed_old_ids;
  for (EdgeId e = 0; e < prev->graph->NumEdges(); ++e) {
    if (edited->edge_remap[e] == kInvalidEdge) removed_old_ids.push_back(e);
  }
  if (!removed_old_ids.empty()) {
    retire = std::make_unique<IncrementalTruss>(*prev->graph,
                                                *prev_snapshot.decomposition);
    for (const EdgeId e : removed_old_ids) retire->RemoveEdge(e);
    carried_source = &retire->decomposition();
  }

  // Re-home the surviving state across the remap. Added edges start
  // removed (kTrussnessNotComputed) and then stream in one at a time: the
  // subset decomposition over the survivors is identical in both
  // topologies (same edges, same vertex ids, and the dead additions take
  // part in no triangle), so this seed is exact.
  TrussDecomposition carried;
  carried.trussness.assign(next_m, kTrussnessNotComputed);
  carried.layer.assign(next_m, 0);
  carried.max_trussness = carried_source->max_trussness;
  for (EdgeId e = 0; e < prev->graph->NumEdges(); ++e) {
    const EdgeId mapped = edited->edge_remap[e];
    if (mapped == kInvalidEdge) continue;
    carried.trussness[mapped] = carried_source->trussness[e];
    carried.layer[mapped] = carried_source->layer[e];
  }
  IncrementalTruss maintained(*next_graph, std::move(carried));
  for (const EdgeId e : edited->added_edges) maintained.InsertEdge(e);

  auto next = std::make_shared<GraphVersion>();
  next->graph = next_graph;
  next->version = prev->version + 1;
  next->InstallPrebuilt(
      std::make_shared<TrussDecomposition>(maintained.decomposition()));

  // Write-ahead durability: the persistence listener records the delta
  // BEFORE the version becomes visible. On failure the update aborts and
  // the current version stays — a served version is never missing from
  // the log. (Still under update_mu, so log records arrive in version
  // order with no gaps.)
  std::shared_ptr<const UpdateListener> listener;
  {
    MutexLock lock(&listener_mu_);
    listener = update_listener_;
  }
  if (listener != nullptr && *listener) {
    Status persisted = (*listener)(name, next->version, delta);
    if (!persisted.ok()) return persisted;
  }

  {
    // Count the update inside the publication so a concurrent Info()
    // never observes delta_updates ahead of the published version.
    MutexLock lock(&entry->version_mu);
    entry->current = next;
    entry->delta_updates.fetch_add(1, std::memory_order_relaxed);
    entry->delta_chain.fetch_add(1, std::memory_order_relaxed);
  }
  return GraphSnapshot{next->graph, next->decomposition, next->version};
}

StatusOr<AtrService::GraphInfo> AtrService::Info(
    const std::string& name) const {
  std::shared_ptr<CatalogEntry> entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("Info: unknown graph \"" + name + "\"");
  }
  std::shared_ptr<GraphVersion> version;
  uint64_t delta_updates = 0;
  {
    // One critical section for both so delta_updates == version - 1 holds
    // for every reader (updates publish them together).
    MutexLock lock(&entry->version_mu);
    version = entry->current;
    delta_updates = entry->delta_updates.load(std::memory_order_relaxed);
  }
  GraphInfo info;
  info.name = name;
  info.num_vertices = version->graph->NumVertices();
  info.num_edges = version->graph->NumEdges();
  info.decomposition_builds = entry->builds.load(std::memory_order_relaxed);
  if (version->built.load(std::memory_order_acquire)) {
    info.max_trussness = version->decomposition->max_trussness;
  }
  info.version = version->version;
  info.delta_updates = delta_updates;
  info.delta_chain_length = entry->delta_chain.load(std::memory_order_relaxed);
  info.jobs_submitted = entry->jobs_submitted.load(std::memory_order_relaxed);
  return info;
}

StatusOr<JobHandle> AtrService::Submit(const std::string& graph_name,
                                       const std::string& solver_name,
                                       const SolverOptions& options) {
  return SubmitInternal(graph_name, solver_name, options, SubmitOptions{},
                        nullptr, /*blocking=*/true);
}

StatusOr<JobHandle> AtrService::Submit(const std::string& graph_name,
                                       const std::string& solver_name,
                                       const SolverOptions& options,
                                       std::function<void()> done) {
  return SubmitInternal(graph_name, solver_name, options, SubmitOptions{},
                        std::move(done), /*blocking=*/true);
}

StatusOr<JobHandle> AtrService::Submit(const std::string& graph_name,
                                       const std::string& solver_name,
                                       const SolverOptions& options,
                                       const SubmitOptions& submit,
                                       std::function<void()> done) {
  return SubmitInternal(graph_name, solver_name, options, submit,
                        std::move(done), /*blocking=*/true);
}

StatusOr<JobHandle> AtrService::TrySubmit(const std::string& graph_name,
                                          const std::string& solver_name,
                                          const SolverOptions& options,
                                          std::function<void()> done) {
  return SubmitInternal(graph_name, solver_name, options, SubmitOptions{},
                        std::move(done), /*blocking=*/false);
}

StatusOr<JobHandle> AtrService::TrySubmit(const std::string& graph_name,
                                          const std::string& solver_name,
                                          const SolverOptions& options,
                                          const SubmitOptions& submit,
                                          std::function<void()> done) {
  return SubmitInternal(graph_name, solver_name, options, submit,
                        std::move(done), /*blocking=*/false);
}

namespace {

// Only the prefix-consistent solvers fuse: the greedy family picks each
// round's argmax independent of the remaining budget (a budget-b run IS
// the first b rounds of a budget-B run), and exact runs one independent
// enumeration per checkpoint budget that members can share. The
// randomized baselines (draw length depends on budget) and AKT are
// excluded; so is any job whose caller holds a live control surface
// (progress callback, external cancel flag, wall-clock limit) — those
// semantics are per-job and do not survive fusion.
bool FusableSolver(const std::string& solver_name) {
  return solver_name == "base" || solver_name == "base+" ||
         solver_name == "gas" || solver_name == "exact";
}

bool FusableOptions(const SolverOptions& options) {
  return !options.progress && options.cancel == nullptr &&
         options.wall_clock_limit_seconds == 0.0;
}

}  // namespace

StatusOr<JobHandle> AtrService::SubmitInternal(const std::string& graph_name,
                                               const std::string& solver_name,
                                               const SolverOptions& options,
                                               const SubmitOptions& submit,
                                               std::function<void()> done,
                                               bool blocking) {
  Shard& shard = ShardFor(graph_name);
  std::shared_ptr<CatalogEntry> entry = FindEntry(graph_name);
  if (entry == nullptr) {
    return Status::NotFound("Submit: unknown graph \"" + graph_name + "\"");
  }
  StatusOr<std::unique_ptr<Solver>> solver = SolverRegistry::Create(solver_name);
  if (!solver.ok()) return solver.status();

  auto state = std::make_shared<internal::JobState>();
  state->id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  state->graph_name = graph_name;
  state->solver_name = solver_name;
  state->options = options;
  if (submit.plan.has_value()) state->options.plan = *submit.plan;
  state->solver = std::move(*solver);
  state->on_done = std::move(done);
  // Pin the version that is current NOW: a queued job is unaffected by
  // UpdateGraph publications between submit and run (the decomposition
  // build itself stays lazy until the job actually starts).
  std::shared_ptr<GraphVersion> version = entry->Current();
  state->snapshot = [entry, version] { return SnapshotOf(*entry, *version); };

  FairScheduler::Job job;
  job.tenant = submit.tenant;
  job.priority = submit.priority;
  if (FusableSolver(solver_name) && FusableOptions(options)) {
    // The pinned GraphVersion's address identifies graph + version with no
    // ABA risk (every queued member's snapshot closure keeps it alive), so
    // jobs only fuse when they would walk the same immutable snapshot with
    // the same engine configuration.
    job.batch_key = solver_name + "|" +
                    std::to_string(reinterpret_cast<uintptr_t>(version.get())) +
                    "|i" + (options.use_incremental ? "1" : "0") + "|t" +
                    std::to_string(options.threads) + "|p" +
                    state->options.plan.CacheKey();
  }
  job.payload = state;

  Status queued = blocking ? shard.scheduler->Submit(std::move(job))
                           : shard.scheduler->TrySubmit(std::move(job));
  if (!queued.ok()) return queued;  // saturated (TrySubmit) or shut down
  entry->jobs_submitted.fetch_add(1, std::memory_order_relaxed);
  return JobHandle(state);
}

void AtrService::SetTenantWeight(const std::string& tenant, uint32_t weight) {
  for (const auto& shard : shards_) {
    shard->scheduler->SetTenantWeight(tenant, weight);
  }
}

size_t AtrService::TenantLoad(const std::string& tenant) const {
  size_t load = 0;
  for (const auto& shard : shards_) {
    load += shard->scheduler->TenantLoad(tenant);
  }
  return load;
}

size_t AtrService::QueueLoad() const {
  size_t load = 0;
  for (const auto& shard : shards_) load += shard->scheduler->Load();
  return load;
}

size_t AtrService::QueueCapacity() const {
  size_t capacity = 0;
  for (const auto& shard : shards_) capacity += shard->scheduler->capacity();
  return capacity;
}

int AtrService::Workers() const {
  int workers = 0;
  for (const auto& shard : shards_) workers += shard->scheduler->workers();
  return workers;
}

AtrService::SchedulerStats AtrService::Stats() const {
  SchedulerStats stats;
  for (const auto& shard : shards_) {
    stats.jobs_executed += shard->scheduler->jobs_executed();
    stats.batches_executed += shard->scheduler->batches_executed();
    stats.jobs_fused += shard->scheduler->jobs_fused();
  }
  return stats;
}

void AtrService::Drain() {
  for (const auto& shard : shards_) shard->scheduler->WaitIdle();
}

StatusOr<std::unique_ptr<AtrEngine>> AtrService::CheckoutSession(
    const std::string& graph_name) {
  std::shared_ptr<CatalogEntry> entry = FindEntry(graph_name);
  if (entry == nullptr) {
    return Status::NotFound("CheckoutSession: unknown graph \"" + graph_name +
                            "\"");
  }
  std::shared_ptr<GraphVersion> version = entry->Current();
  GraphSnapshot snapshot = SnapshotOf(*entry, *version);
  return std::make_unique<AtrEngine>(std::move(snapshot.graph),
                                     std::move(snapshot.decomposition));
}

void AtrService::RunBatch(std::vector<FairScheduler::Job> batch) {
  if (batch.size() == 1) {
    RunJob(std::static_pointer_cast<internal::JobState>(batch[0].payload));
    return;
  }
  // A multi-member batch only forms for fusable jobs sharing one batch
  // key, i.e. one pinned GraphVersion + one solver + one engine config.
  std::vector<std::shared_ptr<internal::JobState>> members;
  members.reserve(batch.size());
  for (FairScheduler::Job& job : batch) {
    auto state = std::static_pointer_cast<internal::JobState>(job.payload);
    MutexLock lock(&state->mu);
    if (state->cancel.load(std::memory_order_relaxed)) {
      lock.Unlock();
      internal::PublishCancelledBeforeStart(state);
      continue;
    }
    state->state = JobHandle::State::kRunning;
    lock.Unlock();
    members.push_back(std::move(state));
  }
  if (members.empty()) return;
  if (members.front()->solver_name == "exact") {
    RunFusedExact(members);
  } else {
    RunFusedGreedy(members);
  }
}

void AtrService::RunJob(const std::shared_ptr<internal::JobState>& state) {
  {
    MutexLock lock(&state->mu);
    if (state->cancel.load(std::memory_order_relaxed)) {
      lock.Unlock();
      internal::PublishCancelledBeforeStart(state);
      return;
    }
    state->state = JobHandle::State::kRunning;
  }

  // The job's plan governs the snapshot's lazy decomposition build too —
  // it happens on this worker thread, inside state->snapshot(), before
  // the solver adapter installs its own scope.
  ScopedDecompositionPlan plan_scope(state->options.plan);

  // Fork the per-job read path: a private context primed with the shared
  // immutable snapshot. The solver mutates only this context (counters)
  // and its own stack — the snapshot is never written.
  const GraphSnapshot snapshot = state->snapshot();
  SolverContext context(*snapshot.graph);
  context.PrimeDecomposition(snapshot.decomposition);

  // Rewire the control surface onto the job: the solver polls the job's
  // cancel flag (JobHandle::Cancel at native round/trial granularity), and
  // the progress chain records a pollable snapshot, relays a caller-owned
  // cancel flag, and forwards to the caller's callback.
  SolverOptions effective = state->options;
  const std::atomic<bool>* user_cancel = state->options.cancel;
  const std::function<bool(const SolveProgress&)> user_progress =
      state->options.progress;
  effective.cancel = &state->cancel;
  // A caller-owned flag already raised folds into the job flag now, so the
  // solver's own cancel polling (every solver checks it, including the
  // randomized trial loop) observes it from the first check; later raises
  // are relayed at progress-event granularity below.
  if (user_cancel != nullptr && user_cancel->load(std::memory_order_relaxed)) {
    state->cancel.store(true, std::memory_order_relaxed);
  }
  effective.progress = [state, user_cancel,
                        user_progress](const SolveProgress& event) {
    {
      MutexLock lock(&state->mu);
      state->progress = event;
    }
    if (user_cancel != nullptr &&
        user_cancel->load(std::memory_order_relaxed)) {
      state->cancel.store(true, std::memory_order_relaxed);
    }
    bool keep_going = true;
    if (user_progress) keep_going = user_progress(event);
    return keep_going && !state->cancel.load(std::memory_order_relaxed);
  };

  StatusOr<SolveResult> result = state->solver->Solve(context, effective);
  internal::PublishResult(state, std::move(result), JobHandle::State::kDone);
}

// One greedy walk at the max member budget; every member's result is the
// b-round prefix, assembled with exactly the bookkeeping the GreedySolver
// adapter applies to a solo run (api/solvers.cc) so fused and solo results
// are byte-identical.
void AtrService::RunFusedGreedy(
    const std::vector<std::shared_ptr<internal::JobState>>& members) {
  // The batch key includes the plan's cache key, so every member shares
  // one plan; it governs the snapshot's lazy decomposition build below.
  ScopedDecompositionPlan plan_scope(members.front()->options.plan);
  const GraphSnapshot snapshot = members.front()->snapshot();

  // Per-member validation must match the solo path: a member with an
  // invalid budget fails alone with its own error; the others still fuse.
  std::vector<std::shared_ptr<internal::JobState>> live;
  live.reserve(members.size());
  uint32_t max_budget = 0;
  for (const auto& state : members) {
    Status valid = ValidateSolverOptions(*snapshot.graph, state->options);
    if (!valid.ok()) {
      internal::PublishResult(state, StatusOr<SolveResult>(std::move(valid)),
                              JobHandle::State::kDone);
      continue;
    }
    max_budget = std::max(max_budget, state->options.budget);
    live.push_back(state);
  }
  if (live.empty()) return;

  SolverContext context(*snapshot.graph);
  context.PrimeDecomposition(snapshot.decomposition);

  SolverOptions fused;
  fused.budget = max_budget;
  fused.use_incremental = live.front()->options.use_incremental;
  fused.threads = live.front()->options.threads;
  fused.plan = live.front()->options.plan;
  // The batch's native cancel granularity: after each round, members that
  // already have their budget covered record progress, and the walk stops
  // only when EVERY member wants out (one live member keeps it running —
  // its prefix must reach its own budget).
  fused.progress = [&live](const SolveProgress& event) {
    bool any_live = false;
    for (const auto& state : live) {
      {
        MutexLock lock(&state->mu);
        if (event.round <= state->options.budget) {
          state->progress = event;
          state->progress.budget = state->options.budget;
        }
      }
      if (!state->cancel.load(std::memory_order_relaxed) &&
          event.round < state->options.budget) {
        any_live = true;
      }
    }
    // False once no un-cancelled member needs another round. The greedy
    // core may then flag stopped_early even when the max budget was fully
    // served; the per-member carve below re-derives the solo flag from
    // prefix < budget, so that over-report never leaks into a result.
    return any_live;
  };

  StatusOr<SolveResult> run = live.front()->solver->Solve(context, fused);
  if (!run.ok()) {
    for (const auto& state : live) {
      internal::PublishResult(state, StatusOr<SolveResult>(run.status()),
                              JobHandle::State::kDone);
    }
    return;
  }

  for (const auto& state : live) {
    const uint32_t budget = state->options.budget;
    const size_t prefix = std::min<size_t>(budget, run->rounds.size());
    SolveResult result;
    result.solver = run->solver;
    result.anchor_edges.assign(run->anchor_edges.begin(),
                               run->anchor_edges.begin() + prefix);
    result.rounds.assign(run->rounds.begin(), run->rounds.begin() + prefix);
    for (const AnchorRound& round : result.rounds) {
      result.total_gain += round.gain;
      result.fully_reusable += round.fully_reusable;
      result.partially_reusable += round.partially_reusable;
      result.non_reusable += round.non_reusable;
    }
    result.gain_at_checkpoint = internal::GreedyPrefixGains(
        result.rounds, EffectiveCheckpoints(state->options));
    // A walk that ran out of eligible candidates before this member's
    // budget is natural exhaustion (solo reports it the same way, not
    // stopped_early); a cancelled walk is stopped_early only for members
    // whose budget the prefix did not reach.
    result.stopped_early = run->stopped_early && prefix < budget;
    result.seconds = run->seconds;
    internal::PublishResult(state, std::move(result), JobHandle::State::kDone);
  }
}

// One exact enumeration per DISTINCT checkpoint budget across the batch;
// members assemble their sweeps from the shared runs with the solo
// adapter's exact bookkeeping (per-member subsets_evaluated sums its own
// checkpoints, so results match a solo run bit for bit).
void AtrService::RunFusedExact(
    const std::vector<std::shared_ptr<internal::JobState>>& members) {
  // One plan per batch (see RunFusedGreedy).
  ScopedDecompositionPlan plan_scope(members.front()->options.plan);
  const GraphSnapshot snapshot = members.front()->snapshot();

  std::vector<std::shared_ptr<internal::JobState>> live;
  live.reserve(members.size());
  std::set<uint32_t> budgets;
  for (const auto& state : members) {
    Status valid = ValidateSolverOptions(*snapshot.graph, state->options);
    if (!valid.ok()) {
      internal::PublishResult(state, StatusOr<SolveResult>(std::move(valid)),
                              JobHandle::State::kDone);
      continue;
    }
    for (uint32_t c : EffectiveCheckpoints(state->options)) budgets.insert(c);
    live.push_back(state);
  }
  if (live.empty()) return;

  SolverContext context(*snapshot.graph);
  context.PrimeDecomposition(snapshot.decomposition);
  ScopedParallelism parallelism(live.front()->options.threads);
  const TrussDecomposition& base = context.Decomposition();

  WallTimer timer;
  std::map<uint32_t, ExactResult> computed;
  for (uint32_t b : budgets) {  // std::set: ascending, cheap runs first
    bool any_live = false;
    for (const auto& state : live) {
      if (!state->cancel.load(std::memory_order_relaxed)) any_live = true;
    }
    if (!any_live) break;
    computed.emplace(b, RunExact(*snapshot.graph, b, &base));
    const double elapsed = timer.ElapsedSeconds();
    for (const auto& state : live) {
      // Mirror the solo adapter's per-checkpoint progress events for
      // members whose sweep includes this budget.
      const std::vector<uint32_t> checkpoints =
          EffectiveCheckpoints(state->options);
      auto it = std::find(checkpoints.begin(), checkpoints.end(), b);
      if (it == checkpoints.end()) continue;
      MutexLock lock(&state->mu);
      state->progress.solver = state->solver_name;
      state->progress.round =
          static_cast<uint32_t>(it - checkpoints.begin()) + 1;
      state->progress.budget = state->options.budget;
      state->progress.total_gain = computed.at(b).gain;
      state->progress.elapsed_seconds = elapsed;
    }
  }
  const double seconds = timer.ElapsedSeconds();

  for (const auto& state : live) {
    SolveResult result;
    result.solver = state->solver_name;
    for (uint32_t c : EffectiveCheckpoints(state->options)) {
      auto it = computed.find(c);
      if (it == computed.end()) {
        // The batch stopped (all members cancelled) before this budget
        // ran — the member keeps the prefix of its sweep, like a solo
        // exact run cancelled between checkpoints.
        result.stopped_early = true;
        break;
      }
      result.gain_at_checkpoint.push_back(it->second.gain);
      result.subsets_evaluated += it->second.subsets_evaluated;
      result.anchor_edges = it->second.anchors;
      result.total_gain = it->second.gain;
    }
    result.seconds = seconds;
    internal::PublishResult(state, std::move(result), JobHandle::State::kDone);
  }
}

}  // namespace atr
