#include "api/registry.h"

#include <algorithm>
#include <map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace atr {
namespace {

struct RegistryState {
  Mutex mu;
  std::map<std::string, SolverRegistry::Factory> exact ATR_GUARDED_BY(mu);
  // prefix -> (placeholder display name, factory), longest prefix wins.
  std::map<std::string, std::pair<std::string, SolverRegistry::Factory>>
      prefixes ATR_GUARDED_BY(mu);
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();
  return *state;
}

}  // namespace

// Defined in api/solvers.cc; registers the built-in solver set once.
void EnsureBuiltinSolversRegistered();

StatusOr<std::unique_ptr<Solver>> SolverRegistry::Create(
    const std::string& name) {
  EnsureBuiltinSolversRegistered();
  RegistryState& state = State();
  Factory factory;
  {
    MutexLock lock(&state.mu);
    auto it = state.exact.find(name);
    if (it != state.exact.end()) {
      factory = it->second;
    } else {
      // Longest registered prefix of `name`.
      size_t best_len = 0;
      for (const auto& [prefix, entry] : state.prefixes) {
        if (name.size() >= prefix.size() &&
            name.compare(0, prefix.size(), prefix) == 0 &&
            prefix.size() > best_len) {
          best_len = prefix.size();
          factory = entry.second;
        }
      }
    }
  }
  if (!factory) {
    std::string known;
    for (const std::string& s : KnownSolvers()) {
      if (!known.empty()) known += ", ";
      known += s;
    }
    return Status::NotFound("unknown solver \"" + name +
                            "\" (known: " + known + ")");
  }
  return factory(name);
}

std::vector<std::string> SolverRegistry::KnownSolvers() {
  EnsureBuiltinSolversRegistered();
  RegistryState& state = State();
  std::vector<std::string> names;
  {
    MutexLock lock(&state.mu);
    for (const auto& [name, factory] : state.exact) names.push_back(name);
    for (const auto& [prefix, entry] : state.prefixes) {
      names.push_back(entry.first);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

void SolverRegistry::Register(const std::string& name, Factory factory) {
  RegistryState& state = State();
  MutexLock lock(&state.mu);
  state.exact[name] = std::move(factory);
}

void SolverRegistry::RegisterPrefix(const std::string& prefix,
                                    Factory factory) {
  RegistryState& state = State();
  MutexLock lock(&state.mu);
  state.prefixes[prefix] = {prefix + "<k>", std::move(factory)};
}

}  // namespace atr
