#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace atr {
namespace net {
namespace {

// Every response payload leads with the request id it answers.
uint64_t ResponseRequestId(const Frame& frame) {
  ByteReader reader(frame.payload);
  uint64_t id = 0;
  reader.ReadU64(&id);
  return id;
}

}  // namespace

Status AtrClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("AtrClient: already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("AtrClient: socket failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("AtrClient: bad host address " + host);
  }
  if (options_.io_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(options_.io_timeout_ms % 1000) * 1000;
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
        ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
      const int err = errno;
      Close();
      return Status::Internal(
          std::string("AtrClient: setting the I/O timeout failed: ") +
          std::strerror(err));
    }
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    Close();
    return Status::Internal("AtrClient: connect to " + host + ":" +
                            std::to_string(port) +
                            " failed: " + std::strerror(err));
  }
  return Status::Ok();
}

void AtrClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  parser_ = FrameParser();
  stash_.clear();
}

Status AtrClient::SendBytes(const std::vector<uint8_t>& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("AtrClient: not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO elapsed with the socket unwritable.
        return Status::DeadlineExceeded(
            "AtrClient: send made no progress within io_timeout_ms=" +
            std::to_string(options_.io_timeout_ms));
      }
      return Status::Internal(std::string("AtrClient: send failed: ") +
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

StatusOr<Frame> AtrClient::ReceiveFor(uint64_t request_id, MsgType expected) {
  last_retry_after_ms_ = 0;
  for (;;) {
    // Serve from the stash first: the frame may have arrived while an
    // earlier call was blocked on a different id.
    if (auto it = stash_.find(request_id); it != stash_.end()) {
      Frame frame = std::move(it->second);
      stash_.erase(it);
      if (frame.type == MsgType::kError) {
        StatusOr<ErrorResponse> error = ErrorResponse::Decode(frame.payload);
        if (!error.ok()) return error.status();
        last_retry_after_ms_ = error->retry_after_ms;
        return error->ToStatus();
      }
      if (frame.type != expected) {
        return Status::Internal(
            std::string("AtrClient: expected ") + MsgTypeName(expected) +
            " but the server answered " + MsgTypeName(frame.type));
      }
      return frame;
    }

    if (std::optional<Frame> frame = parser_.Next()) {
      stash_[ResponseRequestId(*frame)] = std::move(*frame);
      continue;
    }
    if (!parser_.ok()) return parser_.status();

    if (fd_ < 0) return Status::FailedPrecondition("AtrClient: not connected");
    uint8_t chunk[1 << 16];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::Internal(
          "AtrClient: server closed the connection mid-request");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO elapsed with no bytes from the server. The request
        // is still in flight remotely; only this wait is abandoned.
        return Status::DeadlineExceeded(
            "AtrClient: no response within io_timeout_ms=" +
            std::to_string(options_.io_timeout_ms));
      }
      return Status::Internal(std::string("AtrClient: recv failed: ") +
                              std::strerror(errno));
    }
    parser_.Feed(chunk, static_cast<size_t>(n));
  }
}

Status AtrClient::Ping() {
  PingRequest request;
  request.request_id = NextRequestId();
  if (Status s = SendBytes(request.EncodeFrame()); !s.ok()) return s;
  StatusOr<Frame> frame =
      ReceiveFor(request.request_id, MsgType::kPingResponse);
  if (!frame.ok()) return frame.status();
  StatusOr<PingResponse> response = PingResponse::Decode(frame->payload);
  if (!response.ok()) return response.status();
  return Status::Ok();
}

StatusOr<std::vector<std::string>> AtrClient::ListGraphs() {
  ListGraphsRequest request;
  request.request_id = NextRequestId();
  if (Status s = SendBytes(request.EncodeFrame()); !s.ok()) return s;
  StatusOr<Frame> frame =
      ReceiveFor(request.request_id, MsgType::kListGraphsResponse);
  if (!frame.ok()) return frame.status();
  StatusOr<ListGraphsResponse> response =
      ListGraphsResponse::Decode(frame->payload);
  if (!response.ok()) return response.status();
  return std::move(response->names);
}

StatusOr<AtrService::GraphInfo> AtrClient::Info(const std::string& graph) {
  InfoRequest request;
  request.request_id = NextRequestId();
  request.graph = graph;
  if (Status s = SendBytes(request.EncodeFrame()); !s.ok()) return s;
  StatusOr<Frame> frame =
      ReceiveFor(request.request_id, MsgType::kInfoResponse);
  if (!frame.ok()) return frame.status();
  StatusOr<InfoResponse> response = InfoResponse::Decode(frame->payload);
  if (!response.ok()) return response.status();
  return std::move(response->info);
}

StatusOr<uint64_t> AtrClient::SendSubmit(
    const std::string& graph, const std::string& solver,
    const WireSolverOptions& options, const std::string& tenant, int priority,
    const std::optional<DecompositionPlan>& plan) {
  SubmitRequest request;
  request.request_id = NextRequestId();
  request.graph = graph;
  request.solver = solver;
  request.options = options;
  request.tenant = tenant;
  request.priority = priority;
  request.plan = plan;
  if (Status s = SendBytes(request.EncodeFrame()); !s.ok()) return s;
  return request.request_id;
}

StatusOr<uint64_t> AtrClient::ReceiveSubmit(uint64_t request_id) {
  StatusOr<Frame> frame = ReceiveFor(request_id, MsgType::kSubmitResponse);
  if (!frame.ok()) return frame.status();
  StatusOr<SubmitResponse> response = SubmitResponse::Decode(frame->payload);
  if (!response.ok()) return response.status();
  return response->job_id;
}

StatusOr<uint64_t> AtrClient::Submit(
    const std::string& graph, const std::string& solver,
    const WireSolverOptions& options, const std::string& tenant, int priority,
    const std::optional<DecompositionPlan>& plan) {
  StatusOr<uint64_t> request_id =
      SendSubmit(graph, solver, options, tenant, priority, plan);
  if (!request_id.ok()) return request_id.status();
  return ReceiveSubmit(*request_id);
}

StatusOr<uint64_t> AtrClient::SendWait(uint64_t job_id) {
  WaitRequest request;
  request.request_id = NextRequestId();
  request.job_id = job_id;
  if (Status s = SendBytes(request.EncodeFrame()); !s.ok()) return s;
  return request.request_id;
}

StatusOr<WireSolveResult> AtrClient::ReceiveWait(uint64_t request_id) {
  StatusOr<Frame> frame = ReceiveFor(request_id, MsgType::kWaitResponse);
  if (!frame.ok()) return frame.status();
  StatusOr<WaitResponse> response = WaitResponse::Decode(frame->payload);
  if (!response.ok()) return response.status();
  return std::move(response->result);
}

StatusOr<WireSolveResult> AtrClient::Wait(uint64_t job_id) {
  StatusOr<uint64_t> request_id = SendWait(job_id);
  if (!request_id.ok()) return request_id.status();
  return ReceiveWait(*request_id);
}

StatusOr<bool> AtrClient::Cancel(uint64_t job_id) {
  CancelRequest request;
  request.request_id = NextRequestId();
  request.job_id = job_id;
  if (Status s = SendBytes(request.EncodeFrame()); !s.ok()) return s;
  StatusOr<Frame> frame =
      ReceiveFor(request.request_id, MsgType::kCancelResponse);
  if (!frame.ok()) return frame.status();
  StatusOr<CancelResponse> response = CancelResponse::Decode(frame->payload);
  if (!response.ok()) return response.status();
  return response->cancelled;
}

StatusOr<UpdateGraphResponse> AtrClient::UpdateGraph(const std::string& graph,
                                                     const GraphDelta& delta) {
  UpdateGraphRequest request;
  request.request_id = NextRequestId();
  request.graph = graph;
  request.delta = delta;
  if (Status s = SendBytes(request.EncodeFrame()); !s.ok()) return s;
  StatusOr<Frame> frame =
      ReceiveFor(request.request_id, MsgType::kUpdateGraphResponse);
  if (!frame.ok()) return frame.status();
  return UpdateGraphResponse::Decode(frame->payload);
}

Status AtrClient::Compact(const std::string& graph) {
  CompactRequest request;
  request.request_id = NextRequestId();
  request.graph = graph;
  if (Status s = SendBytes(request.EncodeFrame()); !s.ok()) return s;
  StatusOr<Frame> frame =
      ReceiveFor(request.request_id, MsgType::kCompactResponse);
  if (!frame.ok()) return frame.status();
  StatusOr<CompactResponse> response = CompactResponse::Decode(frame->payload);
  if (!response.ok()) return response.status();
  return Status::Ok();
}

Status AtrClient::Shutdown() {
  ShutdownRequest request;
  request.request_id = NextRequestId();
  if (Status s = SendBytes(request.EncodeFrame()); !s.ok()) return s;
  StatusOr<Frame> frame =
      ReceiveFor(request.request_id, MsgType::kShutdownResponse);
  if (!frame.ok()) return frame.status();
  StatusOr<ShutdownResponse> response =
      ShutdownResponse::Decode(frame->payload);
  if (!response.ok()) return response.status();
  return Status::Ok();
}

}  // namespace net
}  // namespace atr
